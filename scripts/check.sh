#!/usr/bin/env bash
# Full local gate: everything CI would require, in dependency order.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== no bare #[ignore] (every ignored test must say why) =="
# #[ignore] without a reason string hides work with no paper trail;
# require #[ignore = "reason"] so the suite documents its own gaps.
if grep -rn --include='*.rs' -E '#\[ignore\]|#\[ignore[[:space:]]*\(' crates tests examples; then
    echo "error: bare #[ignore] found — use #[ignore = \"reason\"]" >&2
    exit 1
fi

echo "== cargo build --release (all targets) =="
cargo build --release --all-targets

echo "== cargo test -q =="
cargo test -q

echo "== fault-injection conformance + harness determinism =="
# One release-mode pass over the two contracts the fault layer must keep:
# mitigations/degradation conformance, and byte-identical bench output
# under any --jobs count with a fault-enabled figure in the plan.
cargo test --release -q -p wifi-backscatter --test fault_injection
cargo test --release -q -p bs-bench --test determinism

echo "== public-API drift gate + observability conformance =="
# The prelude is the blessed API surface; its manifest is pinned against
# tests/golden/prelude_api.txt. Observability must never perturb a run.
cargo test --release -q -p wifi-backscatter --test api_snapshot
cargo test --release -q -p wifi-backscatter --test obs_conformance

echo "== examples run clean =="
for ex in quickstart sensor_network ambient_traffic energy_budget long_range inventory observability; do
    echo "-- example: $ex"
    cargo run --release -q --example "$ex" > /dev/null
done

echo "== cargo clippy -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== cargo doc --no-deps (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

echo "== all checks passed =="
