#!/usr/bin/env bash
# Full local gate: everything CI would require, in dependency order.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release (all targets) =="
cargo build --release --all-targets

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== cargo doc --no-deps (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

echo "== all checks passed =="
