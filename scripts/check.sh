#!/usr/bin/env bash
# Full local gate: everything CI would require, in dependency order.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== no bare #[ignore] (every ignored test must say why) =="
# #[ignore] without a reason string hides work with no paper trail;
# require #[ignore = "reason"] so the suite documents its own gaps.
if grep -rn --include='*.rs' -E '#\[ignore\]|#\[ignore[[:space:]]*\(' crates tests examples; then
    echo "error: bare #[ignore] found — use #[ignore = \"reason\"]" >&2
    exit 1
fi

echo "== cargo build --release (all targets) =="
cargo build --release --all-targets

echo "== cargo test -q =="
cargo test -q

echo "== fault-injection conformance + harness determinism =="
# One release-mode pass over the two contracts the fault layer must keep:
# mitigations/degradation conformance, and byte-identical bench output
# under any --jobs count with a fault-enabled figure in the plan.
cargo test --release -q -p wifi-backscatter --test fault_injection
cargo test --release -q -p bs-bench --test determinism

echo "== cargo clippy -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== cargo doc --no-deps (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

echo "== all checks passed =="
