#!/usr/bin/env bash
# Full local gate: everything CI would require, in dependency order.
# Usage: scripts/check.sh [--bench-smoke]
#   --bench-smoke  additionally run the decode, stream, fec, phy, fleet
#                  and energy microbench smoke modes in release, writing
#                  BENCH_decode.json, BENCH_stream.json, BENCH_fec.json,
#                  BENCH_phy.json, BENCH_fleet.json and
#                  BENCH_energy.json at the repo root. The decode bench
#                  exits non-zero if the slot-indexed decode path
#                  does more packet-stream passes than the reference
#                  baseline or if its alignment-search work scales with
#                  the candidate count; the stream bench if streaming
#                  decode is not bit-identical to batch/reference, the
#                  session buffers more than one frame, or feed+finish
#                  falls under 2x the reference per-packet throughput;
#                  the fec bench if Reed-Solomon decode is not exact at
#                  capacity, adaptive FEC loses any paired run to plain
#                  ARQ, the wild-regime severity-0.5 goodput ratio
#                  falls under 1.5x, or the adaptive rule fails to
#                  disable itself on benign traffic; the phy bench if
#                  the presence PHY is not bit-identical across the
#                  routed/direct/deprecated decode paths, or codeword
#                  translation's goodput falls under 10x presence at
#                  equal helper traffic in the benign regime; the fleet
#                  bench if the 10^5-tag FleetRun JSON is not
#                  byte-identical across worker counts, the per-tag
#                  digest changes with the shard count, or (on hosts
#                  with >= 4 cores) 4 workers fail to beat 1 worker by
#                  2x on wall clock; the energy bench if always-powered
#                  mode is not bit-identical to the pre-energy engine on
#                  the golden workloads, energy-aware polling trails
#                  naive DRR on any paired wild-harvest run, the
#                  starving scenario misses its waste/recovery bounds
#                  (naive wastes >= 30% of poll slots, aware recovers
#                  >= half of them), or the 10^5-tag intermittent fleet
#                  is not byte-identical across worker counts.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_SMOKE=0
for arg in "$@"; do
    case "$arg" in
        --bench-smoke) BENCH_SMOKE=1 ;;
        *)
            echo "usage: scripts/check.sh [--bench-smoke]" >&2
            exit 2
            ;;
    esac
done

echo "== no bare #[ignore] (every ignored test must say why) =="
# #[ignore] without a reason string hides work with no paper trail;
# require #[ignore = "reason"] so the suite documents its own gaps.
if grep -rn --include='*.rs' -E '#\[ignore\]|#\[ignore[[:space:]]*\(' crates tests examples; then
    echo "error: bare #[ignore] found — use #[ignore = \"reason\"]" >&2
    exit 1
fi

echo "== cargo build --release (all targets) =="
cargo build --release --all-targets

echo "== cargo test -q =="
cargo test -q

echo "== cargo test --doc (runnable API examples) =="
# Every public item in the bs-dsp streaming/stats modules and the
# core streaming sessions carries a runnable doc-example; keep them
# compiling and passing like any other test.
cargo test --doc -q

echo "== fault-injection conformance + harness determinism =="
# One release-mode pass over the two contracts the fault layer must keep:
# mitigations/degradation conformance, and byte-identical bench output
# under any --jobs count with a fault-enabled figure in the plan.
cargo test --release -q -p wifi-backscatter --test fault_injection
cargo test --release -q -p bs-bench --test determinism

echo "== public-API drift gate + observability conformance =="
# The preludes (core and bs-net) are the blessed API surface; both
# manifests are pinned against tests/golden/prelude_api.txt (re-bless
# intentionally with GOLDEN_BLESS=1). Observability must never perturb a
# run.
cargo test --release -q -p wifi-backscatter --test api_snapshot
cargo test --release -q -p wifi-backscatter --test obs_conformance

echo "== phy mode conformance (presence identity, codeword round-trip, determinism) =="
# The PhyMode redesign's contract: the presence PHY is bit-identical
# across the routed, direct and deprecated entry points (faults
# included), codeword translation round-trips random payloads in the
# benign regime, and both modes are pure functions of the seed.
cargo test --release -q -p wifi-backscatter --test phy_conformance

echo "== net transport conformance =="
# The connectivity layer's contract: exact bytes at every tested
# severity/seed, monotone goodput, window > stop-and-wait, and
# bit-for-bit reproducible transfers and gateway runs.
cargo test --release -q -p bs-net --test net_transport

echo "== fec conformance (cross-layer: dsp GF(256) -> net coder -> wild traffic) =="
# The FEC path's contract: adaptive FEC never lowers goodput on paired
# links, repairs are byte-perfect, transfers reproduce bit for bit with
# the coder on, and the rate rule disables itself on benign traffic.
cargo test --release -q -p bs-net --test fec_transport

echo "== fleet conformance (jobs determinism, shard invariance, truncation/duplicate regressions) =="
# The sharded fleet engine's contract: byte-identical FleetRun JSON
# under any worker count, per-tag outcomes invariant under the shard
# count (property test), duplicate addresses rejected with a typed
# error, and max_cycles truncation mirrored per shard.
cargo test --release -q -p bs-net --test fleet_conformance

echo "== energy conformance (always-powered bit-identity, brownout physics, aware >= naive, jobs determinism) =="
# The energy co-simulation's contract: energy off and always-powered
# both reproduce the pre-energy engine bit for bit (pinned digests),
# harvest and brownouts are monotone in distance, the energy-aware
# scheduler never lowers goodput on paired seeds, and FleetRun JSON
# stays byte-identical across worker counts with the model armed.
cargo test --release -q -p bs-net --test energy_conformance

echo "== examples run clean =="
for ex in quickstart sensor_network ambient_traffic energy_budget long_range inventory observability; do
    echo "-- example: $ex"
    cargo run --release -q -p wifi-backscatter --example "$ex" > /dev/null
done
echo "-- example: gateway"
cargo run --release -q -p bs-net --example gateway > /dev/null
echo "-- example: fleet"
cargo run --release -q -p bs-net --example fleet > /dev/null
echo "-- example: energy"
cargo run --release -q -p bs-net --example energy > /dev/null

echo "== cargo clippy -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== cargo doc --no-deps (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

if [ "$BENCH_SMOKE" -eq 1 ]; then
    echo "== decode microbench smoke (slot-index pass-count gate) =="
    # Absolute path: cargo runs bench binaries with CWD = the package
    # dir, and the record belongs at the repo root.
    cargo bench -q -p bs-bench --bench decoder_micro -- --json "$PWD/BENCH_decode.json"
    echo "== stream microbench smoke (streaming == batch, residency, throughput) =="
    cargo bench -q -p bs-bench --bench stream_micro -- --json "$PWD/BENCH_stream.json"
    echo "== fec bench smoke (RS exactness, paired goodput, wild 1.5x gate) =="
    cargo bench -q -p bs-bench --bench fec_micro -- --json "$PWD/BENCH_fec.json"
    echo "== phy bench smoke (presence bit identity, codeword 10x goodput gate) =="
    cargo bench -q -p bs-bench --bench phy_micro -- --json "$PWD/BENCH_phy.json"
    echo "== fleet bench smoke (10^5-tag jobs determinism, shard invariance, core scaling) =="
    cargo bench -q -p bs-bench --bench fleet_micro -- --json "$PWD/BENCH_fleet.json"
    echo "== energy bench smoke (always-powered identity, aware >= naive, starving recovery, intermittent determinism) =="
    cargo bench -q -p bs-bench --bench energy_micro -- --json "$PWD/BENCH_energy.json"
fi

echo "== all checks passed =="
