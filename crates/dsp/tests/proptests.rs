//! Property-based tests for the DSP substrate's core invariants.

use bs_dsp::bits::{bits_to_bytes, bytes_to_bits, crc8, BerCounter};
use bs_dsp::codes::OrthogonalPair;
use bs_dsp::complex::Complex;
use bs_dsp::correlate;
use bs_dsp::filter::{condition, moving_average};
use bs_dsp::slicer::{majority, Decision};
use bs_dsp::stats::{mean, mean_abs, percentile, Histogram, Running};
use proptest::prelude::*;

proptest! {
    // ---- complex arithmetic ----

    #[test]
    fn complex_mul_is_commutative(
        a in -1e6f64..1e6, b in -1e6f64..1e6,
        c in -1e6f64..1e6, d in -1e6f64..1e6,
    ) {
        let x = Complex::new(a, b);
        let y = Complex::new(c, d);
        let xy = x * y;
        let yx = y * x;
        prop_assert!((xy.re - yx.re).abs() <= 1e-6 * xy.re.abs().max(1.0));
        prop_assert!((xy.im - yx.im).abs() <= 1e-6 * xy.im.abs().max(1.0));
    }

    #[test]
    fn complex_abs_is_multiplicative(
        a in -1e3f64..1e3, b in -1e3f64..1e3,
        c in -1e3f64..1e3, d in -1e3f64..1e3,
    ) {
        let x = Complex::new(a, b);
        let y = Complex::new(c, d);
        let lhs = (x * y).abs();
        let rhs = x.abs() * y.abs();
        prop_assert!((lhs - rhs).abs() <= 1e-9 * rhs.max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn complex_conj_preserves_abs(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let z = Complex::new(a, b);
        prop_assert_eq!(z.abs(), z.conj().abs());
    }

    // ---- bit packing and CRC ----

    #[test]
    fn bytes_bits_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(bits_to_bytes(&bytes_to_bits(&data)), data);
    }

    #[test]
    fn crc_detects_any_single_bit_flip(
        data in proptest::collection::vec(any::<u8>(), 1..32),
        byte_idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let good = crc8(&data);
        let mut corrupt = data.clone();
        let i = byte_idx.index(corrupt.len());
        corrupt[i] ^= 1 << bit;
        prop_assert_ne!(crc8(&corrupt), good);
    }

    // ---- statistics ----

    #[test]
    fn running_mean_matches_slice(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut r = Running::new();
        for &x in &xs {
            r.push(x);
        }
        let m = mean(&xs);
        prop_assert!((r.mean() - m).abs() <= 1e-6 * m.abs().max(1.0));
        prop_assert!(r.population_variance() >= -1e-9);
    }

    #[test]
    fn running_merge_matches_whole(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
        split in any::<prop::sample::Index>(),
    ) {
        let k = split.index(xs.len());
        let mut whole = Running::new();
        for &x in &xs { whole.push(x); }
        let mut a = Running::new();
        let mut b = Running::new();
        for &x in &xs[..k] { a.push(x); }
        for &x in &xs[k..] { b.push(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-7);
        prop_assert!((a.population_variance() - whole.population_variance()).abs() < 1e-6);
    }

    #[test]
    fn percentile_is_monotone(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile(&xs, lo) <= percentile(&xs, hi) + 1e-12);
    }

    #[test]
    fn histogram_mass_conserved(
        xs in proptest::collection::vec(-5.0f64..5.0, 0..500),
    ) {
        let mut h = Histogram::new(-3.0, 3.0, 30);
        for &x in &xs { h.push(x); }
        let in_bins: u64 = (0..h.bins()).map(|i| h.count(i)).sum();
        let (under, over) = h.out_of_range();
        prop_assert_eq!(in_bins + under + over, h.total());
        prop_assert_eq!(h.total(), xs.len() as u64);
    }

    // ---- filtering ----

    #[test]
    fn moving_average_bounded_by_extremes(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..200),
        half in 0usize..20,
    ) {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for m in moving_average(&xs, half) {
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }
    }

    #[test]
    fn condition_is_offset_and_scale_invariant(
        xs in proptest::collection::vec(-100.0f64..100.0, 10..100),
        offset in -1e3f64..1e3,
        scale in 0.1f64..100.0,
    ) {
        let shifted: Vec<f64> = xs.iter().map(|x| x * scale + offset).collect();
        let a = condition(&xs, 5);
        let b = condition(&shifted, 5);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn condition_output_mean_abs_is_unit_or_zero(
        xs in proptest::collection::vec(-100.0f64..100.0, 1..100),
        half in 1usize..30,
    ) {
        let y = condition(&xs, half);
        let ma = mean_abs(&y);
        prop_assert!(ma.abs() < 1e-9 || (ma - 1.0).abs() < 1e-9, "mean abs {ma}");
    }

    // ---- correlation & codes ----

    #[test]
    fn normalized_correlation_bounded(
        sig in proptest::collection::vec(-1e3f64..1e3, 13..64),
    ) {
        let score = correlate::normalized(&sig[..13], &bs_dsp::codes::BARKER13);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&score), "{score}");
    }

    #[test]
    fn orthogonal_pair_always_orthogonal(len_half in 1usize..128) {
        let p = OrthogonalPair::new(len_half * 2);
        let dot: i32 = p.one.iter().zip(&p.zero)
            .map(|(&a, &b)| i32::from(a) * i32::from(b)).sum();
        prop_assert_eq!(dot, 0);
    }

    #[test]
    fn orthogonal_decode_inverts_encode(
        bits in proptest::collection::vec(any::<bool>(), 1..40),
        len_half in 1usize..32,
    ) {
        let p = OrthogonalPair::new(len_half * 2);
        let chips = p.encode(&bits);
        prop_assert_eq!(chips.len(), bits.len() * p.len());
        for (i, &bit) in bits.iter().enumerate() {
            let window: Vec<f64> = chips[i * p.len()..(i + 1) * p.len()]
                .iter().map(|&c| f64::from(c)).collect();
            prop_assert_eq!(p.decode_bit(&window).0, bit);
        }
    }

    // ---- slicing ----

    #[test]
    fn majority_matches_naive_count(
        votes in proptest::collection::vec(0u8..3, 0..50),
    ) {
        let decisions: Vec<Decision> = votes.iter().map(|&v| match v {
            0 => Decision::Zero,
            1 => Decision::One,
            _ => Decision::Indeterminate,
        }).collect();
        let ones = votes.iter().filter(|&&v| v == 1).count();
        let zeros = votes.iter().filter(|&&v| v == 0).count();
        let expect = if ones > zeros { Some(true) }
            else if zeros > ones { Some(false) }
            else { None };
        prop_assert_eq!(majority(&decisions), expect);
    }

    // ---- BER accounting ----

    #[test]
    fn ber_counter_compare_bounds(
        tx in proptest::collection::vec(any::<bool>(), 0..100),
        rx in proptest::collection::vec(any::<bool>(), 0..100),
    ) {
        let mut c = BerCounter::new();
        c.compare(&tx, &rx);
        prop_assert_eq!(c.bits(), tx.len() as u64);
        prop_assert!(c.errors() <= c.bits());
        prop_assert!(c.raw_ber() <= 1.0);
    }
}
