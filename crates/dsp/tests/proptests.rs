//! Property-based tests for the DSP substrate's core invariants,
//! driven by the deterministic in-repo [`bs_dsp::testkit`] generator.

use bs_dsp::bits::{bits_to_bytes, bytes_to_bits, crc8, BerCounter};
use bs_dsp::codes::OrthogonalPair;
use bs_dsp::complex::Complex;
use bs_dsp::correlate;
use bs_dsp::filter::{condition, moving_average};
use bs_dsp::slicer::{majority, Decision};
use bs_dsp::slotstats::{SlotPartition, SlotStats, WindowStats};
use bs_dsp::stats::{mean, mean_abs, percentile, Histogram, Running};
use bs_dsp::stream::{axpy, BoundedQueue, CountMedian, MovingAvg, StreamBlock};
use bs_dsp::testkit::check;
use std::collections::VecDeque;

// ---- complex arithmetic ----

#[test]
fn complex_mul_is_commutative() {
    check("complex-mul-commutative", 256, |g| {
        let x = Complex::new(g.f64_in(-1e6, 1e6), g.f64_in(-1e6, 1e6));
        let y = Complex::new(g.f64_in(-1e6, 1e6), g.f64_in(-1e6, 1e6));
        let xy = x * y;
        let yx = y * x;
        assert!((xy.re - yx.re).abs() <= 1e-6 * xy.re.abs().max(1.0));
        assert!((xy.im - yx.im).abs() <= 1e-6 * xy.im.abs().max(1.0));
    });
}

#[test]
fn complex_abs_is_multiplicative() {
    check("complex-abs-multiplicative", 256, |g| {
        let x = Complex::new(g.f64_in(-1e3, 1e3), g.f64_in(-1e3, 1e3));
        let y = Complex::new(g.f64_in(-1e3, 1e3), g.f64_in(-1e3, 1e3));
        let lhs = (x * y).abs();
        let rhs = x.abs() * y.abs();
        assert!((lhs - rhs).abs() <= 1e-9 * rhs.max(1.0), "{lhs} vs {rhs}");
    });
}

#[test]
fn complex_conj_preserves_abs() {
    check("complex-conj-abs", 256, |g| {
        let z = Complex::new(g.f64_in(-1e6, 1e6), g.f64_in(-1e6, 1e6));
        assert_eq!(z.abs(), z.conj().abs());
    });
}

// ---- bit packing and CRC ----

#[test]
fn bytes_bits_roundtrip() {
    check("bytes-bits-roundtrip", 256, |g| {
        let data = g.vec_u8(0, 64);
        assert_eq!(bits_to_bytes(&bytes_to_bits(&data)), data);
    });
}

#[test]
fn crc_detects_any_single_bit_flip() {
    check("crc-single-flip", 256, |g| {
        let data = g.vec_u8(1, 32);
        let i = g.usize_in(0, data.len());
        let bit = g.usize_in(0, 8) as u8;
        let good = crc8(&data);
        let mut corrupt = data.clone();
        corrupt[i] ^= 1 << bit;
        assert_ne!(crc8(&corrupt), good);
    });
}

// ---- statistics ----

#[test]
fn running_mean_matches_slice() {
    check("running-mean", 256, |g| {
        let xs = g.vec_f64(-1e6, 1e6, 1, 200);
        let mut r = Running::new();
        for &x in &xs {
            r.push(x);
        }
        let m = mean(&xs);
        assert!((r.mean() - m).abs() <= 1e-6 * m.abs().max(1.0));
        assert!(r.population_variance() >= -1e-9);
    });
}

#[test]
fn running_merge_matches_whole() {
    check("running-merge", 256, |g| {
        let xs = g.vec_f64(-1e3, 1e3, 2, 100);
        let k = g.usize_in(0, xs.len());
        let mut whole = Running::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Running::new();
        let mut b = Running::new();
        for &x in &xs[..k] {
            a.push(x);
        }
        for &x in &xs[k..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-7);
        assert!((a.population_variance() - whole.population_variance()).abs() < 1e-6);
    });
}

#[test]
fn percentile_is_monotone() {
    check("percentile-monotone", 256, |g| {
        let xs = g.vec_f64(-1e3, 1e3, 1, 100);
        let p1 = g.f64_in(0.0, 100.0);
        let p2 = g.f64_in(0.0, 100.0);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        assert!(percentile(&xs, lo) <= percentile(&xs, hi) + 1e-12);
    });
}

#[test]
fn histogram_mass_conserved() {
    check("histogram-mass", 256, |g| {
        let xs = g.vec_f64(-5.0, 5.0, 0, 500);
        let mut h = Histogram::new(-3.0, 3.0, 30);
        for &x in &xs {
            h.push(x);
        }
        let in_bins: u64 = (0..h.bins()).map(|i| h.count(i)).sum();
        let (under, over) = h.out_of_range();
        assert_eq!(in_bins + under + over, h.total());
        assert_eq!(h.total(), xs.len() as u64);
    });
}

// ---- filtering ----

#[test]
fn moving_average_bounded_by_extremes() {
    check("moving-average-bounded", 256, |g| {
        let xs = g.vec_f64(-1e3, 1e3, 1, 200);
        let half = g.usize_in(0, 20);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for m in moving_average(&xs, half) {
            assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }
    });
}

#[test]
fn condition_is_offset_and_scale_invariant() {
    check("condition-invariance", 256, |g| {
        let xs = g.vec_f64(-100.0, 100.0, 10, 100);
        let offset = g.f64_in(-1e3, 1e3);
        let scale = g.f64_in(0.1, 100.0);
        let shifted: Vec<f64> = xs.iter().map(|x| x * scale + offset).collect();
        let a = condition(&xs, 5);
        let b = condition(&shifted, 5);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    });
}

#[test]
fn condition_output_mean_abs_is_unit_or_zero() {
    check("condition-unit-mean-abs", 256, |g| {
        let xs = g.vec_f64(-100.0, 100.0, 1, 100);
        let half = g.usize_in(1, 30);
        let y = condition(&xs, half);
        let ma = mean_abs(&y);
        assert!(ma.abs() < 1e-9 || (ma - 1.0).abs() < 1e-9, "mean abs {ma}");
    });
}

// ---- correlation & codes ----

#[test]
fn normalized_correlation_bounded() {
    check("correlation-bounded", 256, |g| {
        let sig = g.vec_f64(-1e3, 1e3, 13, 64);
        let score = correlate::normalized(&sig[..13], &bs_dsp::codes::BARKER13);
        assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&score), "{score}");
    });
}

#[test]
fn orthogonal_pair_always_orthogonal() {
    check("orthogonal-pair", 128, |g| {
        let len_half = g.usize_in(1, 128);
        let p = OrthogonalPair::new(len_half * 2);
        let dot: i32 = p
            .one
            .iter()
            .zip(&p.zero)
            .map(|(&a, &b)| i32::from(a) * i32::from(b))
            .sum();
        assert_eq!(dot, 0);
    });
}

#[test]
fn orthogonal_decode_inverts_encode() {
    check("orthogonal-roundtrip", 128, |g| {
        let bits = g.vec_bool(1, 40);
        let len_half = g.usize_in(1, 32);
        let p = OrthogonalPair::new(len_half * 2);
        let chips = p.encode(&bits);
        assert_eq!(chips.len(), bits.len() * p.len());
        for (i, &bit) in bits.iter().enumerate() {
            let window: Vec<f64> = chips[i * p.len()..(i + 1) * p.len()]
                .iter()
                .map(|&c| f64::from(c))
                .collect();
            assert_eq!(p.decode_bit(&window).0, bit);
        }
    });
}

// ---- slicing ----

#[test]
fn majority_matches_naive_count() {
    check("majority-naive", 256, |g| {
        let n = g.usize_in(0, 50);
        let votes: Vec<u8> = (0..n).map(|_| g.usize_in(0, 3) as u8).collect();
        let decisions: Vec<Decision> = votes
            .iter()
            .map(|&v| match v {
                0 => Decision::Zero,
                1 => Decision::One,
                _ => Decision::Indeterminate,
            })
            .collect();
        let ones = votes.iter().filter(|&&v| v == 1).count();
        let zeros = votes.iter().filter(|&&v| v == 0).count();
        let expect = if ones > zeros {
            Some(true)
        } else if zeros > ones {
            Some(false)
        } else {
            None
        };
        assert_eq!(majority(&decisions), expect);
    });
}

// ---- streaming windows & slot statistics ----

/// The ring-wrap pin (ISSUE 6 bugfix): however the window wraps, every
/// statistic must equal a fresh-accumulator rebuild over the window's
/// logical contents — to the bit. A storage-order refold fails this the
/// moment the first eviction happens.
#[test]
fn window_stats_any_push_sequence_matches_fresh_rebuild() {
    check("window-stats-rebuild", 256, |g| {
        let cap = g.usize_in(1, 12) + 1;
        let xs = g.vec_f64(-1e6, 1e6, 1, 60);
        let mut win = WindowStats::new(cap);
        let mut model: VecDeque<f64> = VecDeque::new();
        for &x in &xs {
            let evicted = win.push(x);
            if model.len() == cap {
                assert_eq!(
                    evicted.map(f64::to_bits),
                    model.pop_front().map(f64::to_bits)
                );
            } else {
                assert_eq!(evicted, None);
            }
            model.push_back(x);
            // Fresh accumulators over the logical window, arrival order.
            let mut sum = 0.0;
            let mut sum_sq = 0.0;
            let mut run = Running::new();
            for &y in &model {
                sum += y;
                sum_sq += y * y;
                run.push(y);
            }
            assert_eq!(win.len(), model.len());
            assert_eq!(win.sum().to_bits(), sum.to_bits());
            assert_eq!(win.sum_sq().to_bits(), sum_sq.to_bits());
            assert_eq!(
                win.population_variance().to_bits(),
                run.population_variance().to_bits()
            );
            assert_eq!(
                win.mean().map(f64::to_bits),
                Some((sum / model.len() as f64).to_bits())
            );
        }
    });
}

/// Growing a partition + stats incrementally in random steps lands on
/// exactly the state a fresh batch build produces.
#[test]
fn slot_extend_matches_fresh_build_bitwise() {
    check("slot-extend-rebuild", 128, |g| {
        let n = g.usize_in(4, 120);
        let width = 1 + g.usize_in(0, 900) as u64;
        let base = g.usize_in(0, 2_000) as u64;
        let mut t = 0u64;
        let mut t_us = Vec::with_capacity(n);
        for _ in 0..n {
            t += 1 + g.usize_in(0, 300) as u64;
            t_us.push(t);
        }
        let xs = g.vec_f64(-1e3, 1e3, n, n + 1);
        // Random monotone growth schedule over (packets, slots).
        let mut cut = g.usize_in(0, n);
        let mut slots = g.usize_in(0, 20);
        let mut part = SlotPartition::build(&t_us[..cut], base, width, slots);
        let mut stats = SlotStats::build(&part, &xs[..cut]);
        for _ in 0..3 {
            cut = cut.max(g.usize_in(0, n + 1)).min(n);
            slots = slots.max(g.usize_in(0, 40));
            let from = part.extend(&t_us[..cut], slots);
            stats.extend(&part, &xs[..cut], from);
            let fresh_part = SlotPartition::build(&t_us[..cut], base, width, slots);
            assert_eq!(part, fresh_part);
            let fresh = SlotStats::build(&fresh_part, &xs[..cut]);
            assert_eq!(stats, fresh);
            for k in 0..slots {
                assert_eq!(stats.sum(k).to_bits(), fresh.sum(k).to_bits());
                assert_eq!(stats.variance(k).to_bits(), fresh.variance(k).to_bits());
            }
        }
    });
}

// ---- streaming blocks ----

/// Chunk boundaries are invisible: feeding a signal through a block in
/// arbitrary pieces (riding out backpressure) yields the same output as
/// one large push.
#[test]
fn moving_avg_chunking_is_invisible() {
    check("moving-avg-chunking", 128, |g| {
        let xs = g.vec_f64(-1e3, 1e3, 1, 80);
        let window = g.usize_in(1, 16) + 1;
        let out_cap = g.usize_in(1, 8) + 1;
        let mut whole = MovingAvg::new(window, xs.len());
        whole.push(&xs);
        let want = whole.drain();
        let mut chunked = MovingAvg::new(window, out_cap);
        let mut got = Vec::new();
        let mut fed = 0;
        while fed < xs.len() {
            let hi = (fed + 1 + g.usize_in(0, 10)).min(xs.len());
            let c = chunked.push(&xs[fed..hi]);
            fed += c.accepted;
            got.extend(chunked.drain());
        }
        got.extend(chunked.drain());
        assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(&want) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    });
}

/// A bounded queue conserves samples: accepted prefix in, same samples
/// out, never exceeding capacity.
#[test]
fn bounded_queue_conserves_samples() {
    check("bounded-queue-conservation", 128, |g| {
        let xs = g.vec_f64(-1e6, 1e6, 0, 60);
        let cap = g.usize_in(1, 10) + 1;
        let mut q = BoundedQueue::new(cap);
        let mut out = Vec::new();
        let mut fed = 0;
        while fed < xs.len() {
            let hi = (fed + 1 + g.usize_in(0, 7)).min(xs.len());
            let c = q.push(&xs[fed..hi]);
            assert!(q.len() <= cap);
            assert_eq!(c.accepted, (hi - fed).min(cap - (q.len() - c.accepted)));
            fed += c.accepted;
            if g.usize_in(0, 2) == 0 {
                out.extend(q.drain());
            }
        }
        out.extend(q.drain());
        assert_eq!(out, xs);
    });
}

/// The incremental count-map median is the sort-then-index median.
#[test]
fn count_median_matches_sorted_index() {
    check("count-median-sorted", 256, |g| {
        let n = g.usize_in(1, 200);
        let mut m = CountMedian::new();
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            let v = g.usize_in(0, 50) as u64;
            m.push(v);
            vals.push(v);
        }
        let mut sorted = vals;
        sorted.sort_unstable();
        assert_eq!(m.median(), Some(sorted[sorted.len() / 2]));
    });
}

/// The chunked axpy kernel folds channels into the accumulator with the
/// exact additions of the scalar per-element loop.
#[test]
fn axpy_fold_matches_scalar_per_element() {
    check("axpy-scalar-fold", 128, |g| {
        let len = g.usize_in(0, 70);
        let rows: Vec<Vec<f64>> = (0..g.usize_in(1, 6))
            .map(|_| g.vec_f64(-1e4, 1e4, len, len + 1))
            .collect();
        let ws: Vec<f64> = rows.iter().map(|_| g.f64_in(-3.0, 3.0)).collect();
        let mut acc = vec![0.0; len];
        for (row, &w) in rows.iter().zip(&ws) {
            axpy(&mut acc, w, row);
        }
        for i in 0..len {
            let mut want = 0.0;
            for (row, &w) in rows.iter().zip(&ws) {
                want += w * row[i];
            }
            assert_eq!(acc[i].to_bits(), want.to_bits());
        }
    });
}

// ---- BER accounting ----

#[test]
fn ber_counter_compare_bounds() {
    check("ber-counter-bounds", 256, |g| {
        let tx = g.vec_bool(0, 100);
        let rx = g.vec_bool(0, 100);
        let mut c = BerCounter::new();
        c.compare(&tx, &rx);
        assert_eq!(c.bits(), tx.len() as u64);
        assert!(c.errors() <= c.bits());
        assert!(c.raw_ber() <= 1.0);
    });
}
