//! Statistics utilities: running moments, histograms and percentiles.
//!
//! The uplink decoder needs per-sub-channel noise variances (for
//! maximum-ratio combining, §3.2) and the mean/σ of the combined signal (for
//! the hysteresis thresholds). Fig. 4 of the paper is an empirical PDF of
//! normalised channel values, which [`Histogram`] reproduces.

/// Numerically-stable running mean/variance (Welford's algorithm).
///
/// ```
/// use bs_dsp::stats::Running;
/// let mut r = Running::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     r.push(x);
/// }
/// assert_eq!(r.mean(), 5.0);
/// assert_eq!(r.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`; 0 if empty).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divides by `n-1`; 0 if fewer than two samples).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

/// Mean of a slice (0 for an empty slice).
///
/// ```
/// use bs_dsp::stats::mean;
///
/// assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(mean(&[]), 0.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance of a slice (the same Welford recurrence as
/// [`Running`], so slice and streaming paths agree bitwise).
///
/// ```
/// use bs_dsp::stats::variance;
///
/// assert_eq!(variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]), 4.0);
/// ```
pub fn variance(xs: &[f64]) -> f64 {
    let mut r = Running::new();
    for &x in xs {
        r.push(x);
    }
    r.population_variance()
}

/// Mean of the absolute values of a slice — the normalisation constant used
/// by the paper's signal-conditioning step (§3.2 step 1).
///
/// ```
/// use bs_dsp::stats::mean_abs;
///
/// assert_eq!(mean_abs(&[3.0, -1.0, -2.0]), 2.0);
/// ```
pub fn mean_abs(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().map(|x| x.abs()).sum::<f64>() / xs.len() as f64
    }
}

/// Linear-interpolated percentile (`p` in `[0, 100]`) of *unsorted* data.
/// Returns 0 for an empty slice.
///
/// Non-finite handling (the fleet-report policy, matching the decoder's
/// PR-4 `total_cmp` sweep): NaN observations are *skipped* — under
/// `total_cmp` they would rank above `+∞` and poison the interpolation —
/// and `±∞` participate with their natural ordering. When a rank falls
/// between a finite value and an infinity, the nearer rank wins instead
/// of interpolating (interpolating across `-∞‥+∞` would manufacture a
/// NaN). All-NaN input degrades to the empty-slice result, 0.
///
/// ```
/// use bs_dsp::stats::percentile;
///
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(percentile(&xs, 0.0), 1.0);
/// assert_eq!(percentile(&xs, 50.0), 2.5);
/// assert_eq!(percentile(&xs, 100.0), 4.0);
/// // A stray NaN (an idle tag with no latency sample) is ignored:
/// assert_eq!(percentile(&[2.0, f64::NAN, 4.0], 50.0), 3.0);
/// ```
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    v.sort_by(f64::total_cmp);
    percentile_of_sorted(&v, p)
}

/// Several percentiles of the same data with one sort — what the fleet
/// report uses for its p50/p90/p99 latency columns over 10⁵-tag inputs,
/// where re-sorting per quantile would triple the dominant cost.
/// Returns one value per entry of `ps`, with the same non-finite policy
/// as [`percentile`].
///
/// ```
/// use bs_dsp::stats::percentile_many;
///
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(percentile_many(&xs, &[0.0, 50.0, 100.0]), vec![1.0, 2.5, 4.0]);
/// ```
pub fn percentile_many(xs: &[f64], ps: &[f64]) -> Vec<f64> {
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    v.sort_by(f64::total_cmp);
    ps.iter().map(|&p| percentile_of_sorted(&v, p)).collect()
}

/// Rank interpolation over already-sorted, NaN-free data.
fn percentile_of_sorted(v: &[f64], p: f64) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return v[lo];
    }
    let frac = rank - lo as f64;
    if v[lo].is_infinite() || v[hi].is_infinite() {
        // Nearest rank, ties toward the lower: interpolating with an
        // infinity either saturates or (for -∞‥+∞) yields NaN.
        return if frac <= 0.5 { v[lo] } else { v[hi] };
    }
    v[lo] * (1.0 - frac) + v[hi] * frac
}

/// Median of unsorted data (the 50th [`percentile`], interpolated).
///
/// ```
/// use bs_dsp::stats::median;
///
/// assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
/// assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
/// ```
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// A fixed-range histogram whose normalised counts form an empirical PDF.
///
/// Fig. 4 of the paper plots PDFs of normalised channel values over
/// `[-3, 3]`; `Histogram::new(-3.0, 3.0, 60)` reproduces that axis.
///
/// ```
/// use bs_dsp::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 4.0, 4);
/// for x in [0.5, 1.5, 1.6, 9.0] {
///     h.push(x);
/// }
/// assert_eq!(h.count(1), 2);
/// assert_eq!(h.out_of_range(), (0, 1)); // the 9.0
/// assert_eq!(h.total(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one observation. Out-of-range values are tallied separately and
    /// excluded from the PDF.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x >= self.hi {
            self.overflow += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = ((x - self.lo) / width) as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Width of one bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Raw count of bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Total observations pushed (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations that fell below / above the range.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// The empirical PDF: bin densities that integrate to ≤ 1 (exactly 1 if
    /// no observation fell out of range).
    pub fn pdf(&self) -> Vec<f64> {
        let in_range: u64 = self.counts.iter().sum();
        if in_range == 0 {
            return vec![0.0; self.counts.len()];
        }
        let norm = self.total as f64 * self.bin_width();
        self.counts.iter().map(|&c| c as f64 / norm).collect()
    }

    /// Probability mass per bin (sums to ≤ 1).
    pub fn pmf(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Indices of local maxima of the PMF that exceed `min_mass` — used in
    /// tests to verify the bimodal (±1) structure of Fig. 4.
    pub fn modes(&self, min_mass: f64) -> Vec<usize> {
        let pmf = self.pmf();
        let mut modes = Vec::new();
        for i in 0..pmf.len() {
            let left = if i == 0 { 0.0 } else { pmf[i - 1] };
            let right = if i + 1 == pmf.len() { 0.0 } else { pmf[i + 1] };
            if pmf[i] >= min_mass && pmf[i] >= left && pmf[i] > right {
                modes.push(i);
            }
        }
        modes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_empty_is_zero() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.population_variance(), 0.0);
        assert_eq!(r.count(), 0);
    }

    #[test]
    fn running_single_sample() {
        let mut r = Running::new();
        r.push(42.0);
        assert_eq!(r.mean(), 42.0);
        assert_eq!(r.population_variance(), 0.0);
        assert_eq!(r.sample_variance(), 0.0);
    }

    #[test]
    fn running_matches_slice_functions() {
        let xs = [1.0, -2.0, 3.5, 0.25, 9.0, -1.5];
        let mut r = Running::new();
        for &x in &xs {
            r.push(x);
        }
        assert!((r.mean() - mean(&xs)).abs() < 1e-12);
        assert!((r.population_variance() - variance(&xs)).abs() < 1e-12);
    }

    #[test]
    fn running_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0).collect();
        let mut whole = Running::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Running::new();
        let mut b = Running::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.population_variance() - whole.population_variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Running::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean(), a.m2);
        a.merge(&Running::new());
        assert_eq!((a.count(), a.mean(), a.m2), before);

        let mut e = Running::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
        assert_eq!(e.mean(), 2.0);
    }

    #[test]
    fn mean_abs_of_symmetric_signal() {
        let xs = [1.0, -1.0, 1.0, -1.0];
        assert_eq!(mean(&xs), 0.0);
        assert_eq!(mean_abs(&xs), 1.0);
    }

    #[test]
    fn percentile_basics() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(median(&xs), 3.0);
        assert_eq!(percentile(&xs, 25.0), 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 50.0), 5.0);
        assert_eq!(percentile(&xs, 75.0), 7.5);
    }

    #[test]
    fn percentile_empty_is_zero() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn percentile_skips_nan_instead_of_panicking() {
        // Regression: the old partial_cmp().expect sort panicked on the
        // first NaN; fleet-sized latency vectors legitimately carry
        // NaN placeholders for tags that never completed.
        assert_eq!(percentile(&[1.0, f64::NAN, 3.0], 50.0), 2.0);
        assert_eq!(percentile(&[f64::NAN, 5.0], 0.0), 5.0);
        assert_eq!(percentile(&[f64::NAN, 5.0], 100.0), 5.0);
        // All-NaN degrades to the empty-slice result.
        assert_eq!(percentile(&[f64::NAN, f64::NAN], 50.0), 0.0);
        assert_eq!(median(&[f64::NAN]), 0.0);
    }

    #[test]
    fn percentile_orders_infinities_without_nan() {
        let xs = [f64::NEG_INFINITY, 0.0, f64::INFINITY];
        assert_eq!(percentile(&xs, 0.0), f64::NEG_INFINITY);
        assert_eq!(percentile(&xs, 50.0), 0.0);
        assert_eq!(percentile(&xs, 100.0), f64::INFINITY);
        // Interpolating between -inf and +inf must not manufacture NaN:
        // nearest rank wins, ties toward the lower rank.
        let two = [f64::NEG_INFINITY, f64::INFINITY];
        assert_eq!(percentile(&two, 50.0), f64::NEG_INFINITY);
        assert_eq!(percentile(&two, 75.0), f64::INFINITY);
        // Finite-to-infinite ranks saturate instead of interpolating.
        let mix = [1.0, f64::INFINITY];
        assert_eq!(percentile(&mix, 25.0), 1.0);
        assert_eq!(percentile(&mix, 75.0), f64::INFINITY);
    }

    #[test]
    fn percentile_many_matches_single_calls() {
        let xs = [9.0, -2.0, 4.5, 0.0, 7.25, f64::NAN, 3.0];
        let ps = [0.0, 10.0, 50.0, 90.0, 99.0, 100.0];
        let many = percentile_many(&xs, &ps);
        for (i, &p) in ps.iter().enumerate() {
            assert_eq!(many[i], percentile(&xs, p), "p{p}");
        }
        assert!(percentile_many(&[], &[50.0]) == vec![0.0]);
        assert!(percentile_many(&xs, &[]).is_empty());
    }

    #[test]
    fn histogram_pdf_integrates_to_one() {
        let mut h = Histogram::new(-3.0, 3.0, 60);
        for i in 0..1000 {
            h.push(-2.9 + 5.8 * (i as f64 / 1000.0));
        }
        let integral: f64 = h.pdf().iter().sum::<f64>() * h.bin_width();
        assert!((integral - 1.0).abs() < 1e-9, "integral {integral}");
    }

    #[test]
    fn histogram_out_of_range_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.push(-1.0);
        h.push(0.5);
        h.push(2.0);
        assert_eq!(h.out_of_range(), (1, 1));
        assert_eq!(h.total(), 3);
        // PDF mass accounts only for in-range, normalised by total:
        let mass: f64 = h.pmf().iter().sum();
        assert!((mass - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bimodal_modes_found() {
        let mut h = Histogram::new(-3.0, 3.0, 30);
        // Two clusters near -1 and +1.
        for i in 0..500 {
            let jitter = (i % 10) as f64 * 0.01;
            h.push(-1.0 + jitter);
            h.push(1.0 + jitter);
        }
        let modes = h.modes(0.05);
        assert_eq!(modes.len(), 2, "modes {modes:?}");
        let centers: Vec<f64> = modes.iter().map(|&i| h.bin_center(i)).collect();
        assert!(centers[0] < 0.0 && centers[1] > 0.0, "{centers:?}");
    }

    #[test]
    fn histogram_boundary_values() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(0.0); // first bin
        h.push(0.999999); // last bin
        h.push(1.0); // overflow (half-open range)
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.out_of_range(), (0, 1));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn histogram_bad_range_panics() {
        Histogram::new(1.0, 1.0, 4);
    }
}
