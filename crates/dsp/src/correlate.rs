//! Correlation against known ±1 sequences.
//!
//! The Wi-Fi reader uses correlation in three places:
//!
//! * detecting the tag's preamble and recovering bit timing (§3.2),
//! * ranking sub-channels by how well they carry the tag's signal
//!   (§3.2 step 2 — "pick the top ten good sub-channels"),
//! * the long-range decoder, which correlates the conditioned channel stream
//!   with two orthogonal L-bit codes and picks the larger (§3.4).

/// Dot product of a real signal window with a ±1 reference sequence.
///
/// # Panics
/// Panics if `window.len() != reference.len()`.
pub fn dot(window: &[f64], reference: &[i8]) -> f64 {
    assert_eq!(
        window.len(),
        reference.len(),
        "correlation window and reference must have equal length"
    );
    window
        .iter()
        .zip(reference)
        .map(|(&x, &r)| x * f64::from(r))
        .sum()
}

/// Normalised correlation in `[-1, 1]`: the cosine similarity between the
/// window and the ±1 reference. Returns 0 for a zero-energy window.
pub fn normalized(window: &[f64], reference: &[i8]) -> f64 {
    let energy: f64 = window.iter().map(|x| x * x).sum();
    if energy == 0.0 {
        return 0.0;
    }
    dot(window, reference) / (energy.sqrt() * (reference.len() as f64).sqrt())
}

/// Sliding (valid-mode) correlation of `signal` against `reference`:
/// output `i` is the dot product of `signal[i .. i+L]` with the reference.
/// Output length is `signal.len() - L + 1`; empty if the signal is shorter
/// than the reference.
pub fn sliding(signal: &[f64], reference: &[i8]) -> Vec<f64> {
    let l = reference.len();
    if signal.len() < l || l == 0 {
        return Vec::new();
    }
    (0..=signal.len() - l)
        .map(|i| dot(&signal[i..i + l], reference))
        .collect()
}

/// Index and value of the maximum of a slice; `None` if empty.
pub fn peak(xs: &[f64]) -> Option<(usize, f64)> {
    xs.iter()
        .enumerate()
        .fold(None, |best, (i, &v)| match best {
            Some((_, bv)) if bv >= v => best,
            _ => Some((i, v)),
        })
}

/// Result of searching a stream for a preamble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreambleHit {
    /// Sample index where the preamble starts.
    pub start: usize,
    /// Normalised correlation value at the hit, in `[-1, 1]`.
    pub score: f64,
}

/// Finds the first window whose *normalised* correlation with the preamble
/// exceeds `threshold`. This is the reader's "wait for an incoming
/// transmission" loop (§3.2).
pub fn find_preamble(signal: &[f64], preamble: &[i8], threshold: f64) -> Option<PreambleHit> {
    let l = preamble.len();
    if signal.len() < l || l == 0 {
        return None;
    }
    for start in 0..=signal.len() - l {
        let score = normalized(&signal[start..start + l], preamble);
        if score >= threshold {
            return Some(PreambleHit { start, score });
        }
    }
    None
}

/// Finds the best-scoring window over the whole stream (used when the
/// approximate location is known and we want the exact alignment).
pub fn best_alignment(signal: &[f64], preamble: &[i8]) -> Option<PreambleHit> {
    let scores: Vec<f64> = {
        let l = preamble.len();
        if signal.len() < l || l == 0 {
            return None;
        }
        (0..=signal.len() - l)
            .map(|i| normalized(&signal[i..i + l], preamble))
            .collect()
    };
    peak(&scores).map(|(start, score)| PreambleHit { start, score })
}

#[cfg(test)]
mod tests {
    use super::*;

    const BARKER7: [i8; 7] = [1, 1, 1, -1, -1, 1, -1];

    fn as_f64(code: &[i8]) -> Vec<f64> {
        code.iter().map(|&c| f64::from(c)).collect()
    }

    #[test]
    fn dot_of_matching_code_is_length() {
        let sig = as_f64(&BARKER7);
        assert_eq!(dot(&sig, &BARKER7), 7.0);
    }

    #[test]
    fn dot_of_inverted_code_is_negative_length() {
        let sig: Vec<f64> = BARKER7.iter().map(|&c| -f64::from(c)).collect();
        assert_eq!(dot(&sig, &BARKER7), -7.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0, 2.0], &BARKER7);
    }

    #[test]
    fn normalized_is_one_for_exact_match() {
        let sig = as_f64(&BARKER7);
        assert!((normalized(&sig, &BARKER7) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_is_scale_invariant() {
        let sig: Vec<f64> = BARKER7.iter().map(|&c| 17.0 * f64::from(c)).collect();
        assert!((normalized(&sig, &BARKER7) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_zero_energy_is_zero() {
        assert_eq!(normalized(&[0.0; 7], &BARKER7), 0.0);
    }

    #[test]
    fn sliding_finds_embedded_code() {
        let mut sig = vec![0.0; 20];
        for (i, &c) in BARKER7.iter().enumerate() {
            sig[9 + i] = f64::from(c);
        }
        let corr = sliding(&sig, &BARKER7);
        let (idx, val) = peak(&corr).unwrap();
        assert_eq!(idx, 9);
        assert_eq!(val, 7.0);
    }

    #[test]
    fn sliding_too_short_is_empty() {
        assert!(sliding(&[1.0, 2.0], &BARKER7).is_empty());
        assert!(sliding(&[], &BARKER7).is_empty());
    }

    #[test]
    fn barker_sidelobes_are_small() {
        // Autocorrelation sidelobes of a Barker code are bounded by 1 in
        // magnitude — the property the paper relies on for clean preamble
        // detection (§6).
        let sig = as_f64(&BARKER7);
        let mut padded = vec![0.0; 6];
        padded.extend_from_slice(&sig);
        padded.extend(vec![0.0; 6]);
        let corr = sliding(&padded, &BARKER7);
        for (i, &c) in corr.iter().enumerate() {
            if i == 6 {
                assert_eq!(c, 7.0);
            } else {
                assert!(c.abs() <= 1.0 + 1e-12, "sidelobe {c} at {i}");
            }
        }
    }

    #[test]
    fn peak_empty_is_none() {
        assert_eq!(peak(&[]), None);
    }

    #[test]
    fn peak_first_of_ties() {
        assert_eq!(peak(&[1.0, 3.0, 3.0]), Some((1, 3.0)));
    }

    #[test]
    fn find_preamble_locates_code_in_noise() {
        // Normalised correlation is scale-invariant, so short codes can tie
        // with lucky noise; a 13-chip Barker code at threshold 0.9 makes a
        // false hit before the true location vanishingly unlikely.
        use crate::codes::BARKER13;
        use crate::SimRng;
        let mut rng = SimRng::new(3).stream("corr-test");
        let mut sig: Vec<f64> = (0..200).map(|_| rng.gaussian(0.0, 0.2)).collect();
        for (i, &c) in BARKER13.iter().enumerate() {
            sig[100 + i] += f64::from(c);
        }
        let hit = find_preamble(&sig, &BARKER13, 0.9).expect("preamble not found");
        assert_eq!(hit.start, 100);
        assert!(hit.score > 0.9);
    }

    #[test]
    fn find_preamble_none_in_pure_noise() {
        use crate::SimRng;
        let mut rng = SimRng::new(4).stream("corr-noise");
        let sig: Vec<f64> = (0..300).map(|_| rng.gaussian(0.0, 1.0)).collect();
        // A threshold of 0.95 on a length-7 code is nearly impossible to hit
        // by chance in 300 samples.
        assert!(find_preamble(&sig, &BARKER7, 0.97).is_none());
    }

    #[test]
    fn best_alignment_beats_threshold_scan_on_offset() {
        // Normalised correlation is scale-invariant, so the decoy must be a
        // *partial* match (two chips corrupted), not merely a weaker copy.
        let mut sig = vec![0.0; 40];
        for (i, &c) in BARKER7.iter().enumerate() {
            let decoy = if i < 2 { -c } else { c };
            sig[5 + i] = f64::from(decoy);
            sig[20 + i] = f64::from(c); // real
        }
        let hit = best_alignment(&sig, &BARKER7).unwrap();
        assert_eq!(hit.start, 20);
    }

    #[test]
    fn best_alignment_short_signal_is_none() {
        assert!(best_alignment(&[1.0], &BARKER7).is_none());
    }
}
