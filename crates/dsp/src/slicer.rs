//! Bit slicing: hysteresis thresholding and majority voting.
//!
//! §3.2 step 3 of the paper: the combined channel value is sliced against
//! two thresholds `Thresh1 = µ + σ/2` and `Thresh0 = µ − σ/2` (hysteresis,
//! to reject the Intel card's spurious CSI jumps); each transmitted bit
//! spans several Wi-Fi packets, and the per-packet decisions are combined
//! with a simple majority vote.

use crate::stats::Running;

/// Per-sample decision from the hysteresis slicer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Sample was above `Thresh1` → evidence for a `1` bit.
    One,
    /// Sample was below `Thresh0` → evidence for a `0` bit.
    Zero,
    /// Sample fell between the thresholds → no evidence (ignored by the
    /// majority vote).
    Indeterminate,
}

/// A hysteresis slicer with thresholds `µ ± σ/2` computed from a reference
/// population of combined channel values (the paper computes µ and σ of
/// `CSI_weighted` "across packets").
///
/// ```
/// use bs_dsp::slicer::{Decision, HysteresisSlicer};
///
/// let slicer = HysteresisSlicer::from_stats(0.0, 1.0); // thresholds ±0.5
/// assert_eq!(slicer.decide(0.9), Decision::One);
/// assert_eq!(slicer.decide(-0.9), Decision::Zero);
/// assert_eq!(slicer.decide(0.2), Decision::Indeterminate);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct HysteresisSlicer {
    thresh1: f64,
    thresh0: f64,
}

impl HysteresisSlicer {
    /// Builds a slicer from the reference samples. With no samples the
    /// thresholds are both zero, degenerating to a sign slicer.
    ///
    /// ```
    /// use bs_dsp::slicer::HysteresisSlicer;
    ///
    /// // A ±1 population has µ=0, σ=1 → thresholds ±0.5.
    /// let samples = [1.0, -1.0, 1.0, -1.0];
    /// let slicer = HysteresisSlicer::from_samples(&samples);
    /// assert!((slicer.thresh1() - 0.5).abs() < 1e-12);
    /// assert!((slicer.thresh0() + 0.5).abs() < 1e-12);
    /// ```
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut r = Running::new();
        for &s in samples {
            r.push(s);
        }
        Self::from_stats(r.mean(), r.std_dev())
    }

    /// Builds a slicer directly from µ and σ.
    ///
    /// ```
    /// use bs_dsp::slicer::HysteresisSlicer;
    ///
    /// let slicer = HysteresisSlicer::from_stats(2.0, 4.0);
    /// assert_eq!(slicer.thresh1(), 4.0);
    /// assert_eq!(slicer.thresh0(), 0.0);
    /// ```
    pub fn from_stats(mean: f64, std_dev: f64) -> Self {
        HysteresisSlicer {
            thresh1: mean + std_dev / 2.0,
            thresh0: mean - std_dev / 2.0,
        }
    }

    /// The upper (one) threshold.
    pub fn thresh1(&self) -> f64 {
        self.thresh1
    }

    /// The lower (zero) threshold.
    pub fn thresh0(&self) -> f64 {
        self.thresh0
    }

    /// Classifies one combined channel value. Values **on** a threshold
    /// are indeterminate (strict inequalities).
    ///
    /// ```
    /// use bs_dsp::slicer::{Decision, HysteresisSlicer};
    ///
    /// let slicer = HysteresisSlicer::from_stats(0.0, 1.0);
    /// assert_eq!(slicer.decide(0.5), Decision::Indeterminate); // boundary
    /// ```
    pub fn decide(&self, x: f64) -> Decision {
        if x > self.thresh1 {
            Decision::One
        } else if x < self.thresh0 {
            Decision::Zero
        } else {
            Decision::Indeterminate
        }
    }
}

/// A simple sign slicer (threshold at zero) — the non-hysteresis variant
/// mentioned first in §3.2 step 3 ("if CSI_weighted is greater than zero,
/// the receiver outputs a '1'").
///
/// ```
/// use bs_dsp::slicer::{sign_decision, Decision};
///
/// assert_eq!(sign_decision(3.0), Decision::One);
/// assert_eq!(sign_decision(-3.0), Decision::Zero);
/// assert_eq!(sign_decision(0.0), Decision::Indeterminate);
/// ```
pub fn sign_decision(x: f64) -> Decision {
    if x > 0.0 {
        Decision::One
    } else if x < 0.0 {
        Decision::Zero
    } else {
        Decision::Indeterminate
    }
}

/// Majority vote over per-packet decisions for one bit interval.
///
/// Indeterminate decisions abstain. A tie (including the all-abstain case)
/// returns `None` — the caller counts it as an erasure/error; the paper's
/// conservative rate selection (§5) is designed to make this rare.
///
/// ```
/// use bs_dsp::slicer::{majority, Decision::*};
///
/// assert_eq!(majority(&[One, One, Zero]), Some(true));
/// assert_eq!(majority(&[One, Indeterminate, Zero]), None); // tie
/// ```
pub fn majority(decisions: &[Decision]) -> Option<bool> {
    let mut ones = 0usize;
    let mut zeros = 0usize;
    for d in decisions {
        match d {
            Decision::One => ones += 1,
            Decision::Zero => zeros += 1,
            Decision::Indeterminate => {}
        }
    }
    match ones.cmp(&zeros) {
        std::cmp::Ordering::Greater => Some(true),
        std::cmp::Ordering::Less => Some(false),
        std::cmp::Ordering::Equal => None,
    }
}

/// Convenience: slice every sample in a bit interval with the given slicer
/// and majority-vote the result.
///
/// ```
/// use bs_dsp::slicer::{vote_bit, HysteresisSlicer};
///
/// let slicer = HysteresisSlicer::from_stats(0.0, 1.0);
/// // A spurious +8.0 spike in a zero interval cannot flip the vote.
/// assert_eq!(vote_bit(&slicer, &[-1.0, -1.1, 8.0, -0.9]), Some(false));
/// ```
pub fn vote_bit(slicer: &HysteresisSlicer, samples: &[f64]) -> Option<bool> {
    let decisions: Vec<Decision> = samples.iter().map(|&x| slicer.decide(x)).collect();
    majority(&decisions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_are_mu_pm_half_sigma() {
        let s = HysteresisSlicer::from_stats(2.0, 4.0);
        assert_eq!(s.thresh1(), 4.0);
        assert_eq!(s.thresh0(), 0.0);
    }

    #[test]
    fn from_samples_matches_from_stats() {
        // ±1 population: µ=0, σ=1 → thresholds ±0.5.
        let samples: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let s = HysteresisSlicer::from_samples(&samples);
        assert!((s.thresh1() - 0.5).abs() < 1e-12);
        assert!((s.thresh0() + 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_samples_degenerate_to_sign_slicer() {
        let s = HysteresisSlicer::from_samples(&[]);
        assert_eq!(s.decide(0.1), Decision::One);
        assert_eq!(s.decide(-0.1), Decision::Zero);
        assert_eq!(s.decide(0.0), Decision::Indeterminate);
    }

    #[test]
    fn decide_classifies_three_zones() {
        let s = HysteresisSlicer::from_stats(0.0, 1.0);
        assert_eq!(s.decide(0.9), Decision::One);
        assert_eq!(s.decide(-0.9), Decision::Zero);
        assert_eq!(s.decide(0.2), Decision::Indeterminate);
        assert_eq!(s.decide(-0.2), Decision::Indeterminate);
        // Boundary values are indeterminate (strict inequalities).
        assert_eq!(s.decide(0.5), Decision::Indeterminate);
        assert_eq!(s.decide(-0.5), Decision::Indeterminate);
    }

    #[test]
    fn sign_decision_basics() {
        assert_eq!(sign_decision(3.0), Decision::One);
        assert_eq!(sign_decision(-3.0), Decision::Zero);
        assert_eq!(sign_decision(0.0), Decision::Indeterminate);
    }

    #[test]
    fn majority_counts_votes() {
        use Decision::*;
        assert_eq!(majority(&[One, One, Zero]), Some(true));
        assert_eq!(majority(&[Zero, Zero, One]), Some(false));
        assert_eq!(majority(&[One, Zero]), None);
        assert_eq!(majority(&[]), None);
    }

    #[test]
    fn majority_ignores_indeterminate() {
        use Decision::*;
        assert_eq!(majority(&[Indeterminate, Indeterminate, One]), Some(true));
        assert_eq!(majority(&[Indeterminate; 5]), None);
    }

    #[test]
    fn hysteresis_rejects_spurious_jump() {
        // A bit interval of strong "one" samples with a single huge spurious
        // positive spike in a "zero" interval: the hysteresis + majority
        // pipeline must not flip the zero bit.
        let s = HysteresisSlicer::from_stats(0.0, 1.0);
        let zero_interval = [-1.0, -1.1, 8.0, -0.9, -1.0]; // spike at idx 2
        assert_eq!(vote_bit(&s, &zero_interval), Some(false));
    }

    #[test]
    fn vote_bit_on_clean_intervals() {
        let s = HysteresisSlicer::from_stats(0.0, 1.0);
        assert_eq!(vote_bit(&s, &[1.0, 0.9, 1.2]), Some(true));
        assert_eq!(vote_bit(&s, &[-1.0, -0.9, -1.2]), Some(false));
        assert_eq!(vote_bit(&s, &[0.1, -0.1, 0.0]), None);
    }

    #[test]
    fn noisy_majority_beats_single_sample() {
        // With 30 noisy samples per bit, majority voting decodes reliably at
        // an SNR where single samples frequently err — the mechanism behind
        // the packets/bit sweep in Fig. 10.
        use crate::SimRng;
        let mut rng = SimRng::new(9).stream("vote");
        let slicer = HysteresisSlicer::from_stats(0.0, 1.0);
        let trials = 300;
        let mut single_errors = 0;
        let mut voted_errors = 0;
        for t in 0..trials {
            let bit = t % 2 == 0;
            let level = if bit { 1.0 } else { -1.0 };
            let samples: Vec<f64> =
                (0..30).map(|_| level + rng.gaussian(0.0, 1.5)).collect();
            if matches!(
                (slicer.decide(samples[0]), bit),
                (Decision::One, false) | (Decision::Zero, true)
            ) {
                single_errors += 1;
            }
            match vote_bit(&slicer, &samples) {
                Some(b) if b == bit => {}
                _ => voted_errors += 1,
            }
        }
        assert!(voted_errors < single_errors, "{voted_errors} vs {single_errors}");
        assert!(voted_errors <= 3, "voted errors {voted_errors}");
    }
}
