//! Binned slot statistics over a timestamped packet stream.
//!
//! The uplink decoders (§3.2 steps 2–4, §3.4) repeatedly need per-slot
//! aggregates — packet counts, means, within-slot variances, chip
//! correlations — over windows `[start_us, start_us + n·width_us)` of a
//! time-sorted capture. Computed naively, every alignment candidate ×
//! channel × window costs a full pass over the packet stream. The types
//! here exploit the one structural fact that makes this cheap: the
//! timestamp axis is **ascending**, so every time window is a contiguous
//! packet-index range.
//!
//! * [`SlotPartition`] cuts the timestamp axis into fixed-width slots
//!   anchored at a base time, in one O(packets + slots) pass. Every slot
//!   becomes a `Range<usize>` of packet indices.
//! * [`SlotStats`] layers per-slot `(count, Σx, Σx², variance)` for one
//!   channel over a partition, plus prefix sums for O(1) window
//!   aggregates.
//!
//! # Bit-exactness contract
//!
//! The decoders that consume this index are required to be
//! *output-preserving* against their straight-line reference
//! implementations, down to the last ulp. Floating-point addition is not
//! associative, so prefix-sum differencing is **not** bit-exact against a
//! freshly accumulated window sum. The per-slot quantities therefore
//! follow the exact accumulation order of the naive code:
//!
//! * [`SlotStats::sum`]/[`SlotStats::mean`] accumulate each slot from a
//!   fresh `0.0` in packet order — identical to a naive
//!   "`sums[slot] += x[p]`" scan.
//! * [`SlotStats::variance`] runs the same Welford recurrence as
//!   [`crate::stats::variance`] over the slot's packets in order.
//! * Only the `window_*` prefix queries trade exactness for O(1) lookups;
//!   `window_count` stays exact (integer), the floating-point
//!   `window_sum`/`window_sum_sq` are documented as aggregates for
//!   scoring/diagnostics, not for decode decisions.

use crate::stats::Running;
use std::ops::Range;

/// A partition of an ascending timestamp axis into `n_slots` fixed-width
/// slots: slot `k` covers `[base_us + k·width_us, base_us + (k+1)·width_us)`.
///
/// Built in one merge pass; afterwards every slot is a contiguous
/// packet-index [`Range`], shared by all channels of the bundle. A
/// partition can also grow incrementally — see [`SlotPartition::extend`]
/// — when packets arrive on the stream or a decoder widens its window.
///
/// ```
/// use bs_dsp::slotstats::SlotPartition;
///
/// let t_us = [100, 250, 400, 550];
/// let part = SlotPartition::build(&t_us, 100, 300, 2);
/// assert_eq!(part.slot_range(0), 0..2); // 100, 250
/// assert_eq!(part.slot_range(1), 2..4); // 400, 550
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotPartition {
    base_us: u64,
    width_us: u64,
    /// `edges[k]` = first packet index with `t ≥ base_us + k·width_us`;
    /// length `n_slots + 1`.
    edges: Vec<usize>,
    /// Packets of the timestamp axis seen at the last build/extend;
    /// edges equal to this value point past all known data and may move
    /// when the axis grows.
    seen: usize,
}

impl SlotPartition {
    /// Builds the partition over `t_us` (which must be ascending).
    ///
    /// # Panics
    /// Panics if `width_us == 0`.
    pub fn build(t_us: &[u64], base_us: u64, width_us: u64, n_slots: usize) -> Self {
        assert!(width_us > 0, "slot width must be positive");
        let mut edges = Vec::with_capacity(n_slots + 1);
        let mut i = t_us.partition_point(|&t| t < base_us);
        edges.push(i);
        for k in 1..=n_slots as u64 {
            let boundary = base_us.saturating_add(k.saturating_mul(width_us));
            while i < t_us.len() && t_us[i] < boundary {
                i += 1;
            }
            edges.push(i);
        }
        SlotPartition {
            base_us,
            width_us,
            edges,
            seen: t_us.len(),
        }
    }

    /// Extends the partition incrementally: `t_us` is the same axis the
    /// partition was built over with zero or more packets **appended**
    /// (still ascending), and `n_slots` the same or larger slot count.
    /// Only edges that could have moved — those pointing past the data
    /// seen at the last build — are recomputed; the result is equal to a
    /// fresh [`SlotPartition::build`] over the new inputs.
    ///
    /// Returns the index of the first slot whose packet range is new or
    /// may have changed (`n_slots` if nothing changed), so per-channel
    /// [`SlotStats`] layered on top can resume from there via
    /// [`SlotStats::extend`].
    ///
    /// ```
    /// use bs_dsp::slotstats::SlotPartition;
    ///
    /// let mut live = SlotPartition::build(&[100, 250], 100, 300, 1);
    /// let grown = [100, 250, 400, 550];
    /// let from = live.extend(&grown, 2);
    /// assert_eq!(live, SlotPartition::build(&grown, 100, 300, 2));
    /// assert!(from <= 1);
    /// ```
    ///
    /// # Panics
    /// Panics if the axis shrank or `n_slots` decreased.
    pub fn extend(&mut self, t_us: &[u64], n_slots: usize) -> usize {
        assert!(t_us.len() >= self.seen, "timestamp axis shrank");
        let old_n = self.n_slots();
        assert!(n_slots >= old_n, "slot count shrank");
        let prev_seen = self.seen;
        // An edge equal to `prev_seen` pointed past every packet the
        // partition had seen; appended packets may fall before its
        // boundary, so it (and everything after it) must be recomputed.
        // Edges below `prev_seen` are pinned by an existing packet at or
        // beyond their boundary and cannot move.
        let first_movable = self
            .edges
            .iter()
            .position(|&e| e == prev_seen)
            .unwrap_or(self.edges.len());
        self.edges.truncate(first_movable);
        let mut i = self.edges.last().copied().unwrap_or(0);
        for k in first_movable as u64..=n_slots as u64 {
            let boundary = self.base_us.saturating_add(k.saturating_mul(self.width_us));
            if k == 0 {
                i = t_us.partition_point(|&t| t < boundary);
            } else {
                while i < t_us.len() && t_us[i] < boundary {
                    i += 1;
                }
            }
            self.edges.push(i);
        }
        self.seen = t_us.len();
        first_movable.saturating_sub(1).min(old_n)
    }

    /// The anchor time of slot 0.
    pub fn base_us(&self) -> u64 {
        self.base_us
    }

    /// The slot width in µs.
    pub fn width_us(&self) -> u64 {
        self.width_us
    }

    /// Number of slots.
    pub fn n_slots(&self) -> usize {
        self.edges.len() - 1
    }

    /// Packet-index range of slot `k`.
    ///
    /// # Panics
    /// Panics if `k ≥ n_slots`.
    pub fn slot_range(&self, k: usize) -> Range<usize> {
        self.edges[k]..self.edges[k + 1]
    }

    /// The slot containing time `t_us`, if it falls inside the coverage.
    pub fn slot_of(&self, t_us: u64) -> Option<usize> {
        if t_us < self.base_us {
            return None;
        }
        let k = ((t_us - self.base_us) / self.width_us) as usize;
        (k < self.n_slots()).then_some(k)
    }

    /// Total packets covered by the partition (one pass's worth of work
    /// for any per-channel statistics built over it).
    pub fn coverage_len(&self) -> usize {
        self.edges[self.n_slots()] - self.edges[0]
    }
}

/// Per-slot statistics of one channel over a [`SlotPartition`]:
/// `(count, Σx, Σx²)` and the within-slot population variance, plus
/// prefix sums for O(1) window aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotStats {
    count: Vec<u32>,
    sum: Vec<f64>,
    var: Vec<f64>,
    prefix_count: Vec<u64>,
    prefix_sum: Vec<f64>,
    prefix_sum_sq: Vec<f64>,
}

impl SlotStats {
    /// Builds the per-slot statistics for `values` (one sample per
    /// packet, same indexing as the partition's timestamp axis) in one
    /// O(coverage + slots) pass.
    ///
    /// ```
    /// use bs_dsp::slotstats::{SlotPartition, SlotStats};
    ///
    /// let part = SlotPartition::build(&[100, 250, 400], 100, 300, 2);
    /// let stats = SlotStats::build(&part, &[1.0, 3.0, 5.0]);
    /// assert_eq!(stats.mean(0), Some(2.0)); // slot 0 holds 1.0 and 3.0
    /// assert_eq!(stats.mean(1), Some(5.0));
    /// ```
    pub fn build(partition: &SlotPartition, values: &[f64]) -> Self {
        let mut stats = SlotStats {
            count: Vec::new(),
            sum: Vec::new(),
            var: Vec::new(),
            prefix_count: vec![0],
            prefix_sum: vec![0.0],
            prefix_sum_sq: vec![0.0],
        };
        stats.extend(partition, values, 0);
        stats
    }

    /// Incrementally re-derives the statistics for slots `from_slot..`
    /// after the partition grew (see [`SlotPartition::extend`]); slots
    /// below `from_slot` are untouched. Because every per-slot quantity
    /// is a fresh left fold over its own contiguous slice, and the
    /// prefix sums extend by the same `prefix[k+1] = prefix[k] + s`
    /// recurrence as a full build, the result is **bitwise identical**
    /// to a fresh [`SlotStats::build`] over the grown inputs.
    ///
    /// ```
    /// use bs_dsp::slotstats::{SlotPartition, SlotStats};
    ///
    /// let t_us = [100u64, 250, 400, 550];
    /// let xs = [1.0, 3.0, 5.0, 7.0];
    /// let mut part = SlotPartition::build(&t_us[..2], 100, 300, 1);
    /// let mut stats = SlotStats::build(&part, &xs[..2]);
    /// let from = part.extend(&t_us, 2);
    /// stats.extend(&part, &xs, from);
    /// assert_eq!(stats, SlotStats::build(&part, &xs));
    /// ```
    pub fn extend(&mut self, partition: &SlotPartition, values: &[f64], from_slot: usize) {
        let n = partition.n_slots();
        let from = from_slot.min(n).min(self.count.len());
        self.count.truncate(from);
        self.sum.truncate(from);
        self.var.truncate(from);
        self.prefix_count.truncate(from + 1);
        self.prefix_sum.truncate(from + 1);
        self.prefix_sum_sq.truncate(from + 1);
        self.count.reserve(n - from);
        self.sum.reserve(n - from);
        self.var.reserve(n - from);
        self.prefix_count.reserve(n - from);
        self.prefix_sum.reserve(n - from);
        self.prefix_sum_sq.reserve(n - from);
        for k in from..n {
            let slice = &values[partition.slot_range(k)];
            // Fresh accumulators per slot, packet order: bit-exact with a
            // naive "sums[slot] += x" scan.
            let mut s = 0.0;
            let mut sq = 0.0;
            let mut w = Running::new();
            for &x in slice {
                s += x;
                sq += x * x;
                w.push(x);
            }
            self.count.push(slice.len() as u32);
            self.sum.push(s);
            self.var.push(w.population_variance());
            self.prefix_count.push(self.prefix_count[k] + slice.len() as u64);
            self.prefix_sum.push(self.prefix_sum[k] + s);
            self.prefix_sum_sq.push(self.prefix_sum_sq[k] + sq);
        }
    }

    /// Packet count of slot `k`.
    pub fn count(&self, k: usize) -> u32 {
        self.count[k]
    }

    /// Σx of slot `k` (accumulated in packet order from 0.0).
    pub fn sum(&self, k: usize) -> f64 {
        self.sum[k]
    }

    /// Mean of slot `k`: `Σx / count` — `None` for an empty slot.
    pub fn mean(&self, k: usize) -> Option<f64> {
        let c = self.count[k];
        (c > 0).then(|| self.sum[k] / f64::from(c))
    }

    /// Within-slot population variance of slot `k` (Welford, matching
    /// [`crate::stats::variance`] exactly). 0 for slots with < 2 packets.
    pub fn variance(&self, k: usize) -> f64 {
        self.var[k]
    }

    /// Exact packet count over a slot window (prefix-differenced; integer
    /// arithmetic, so exact).
    pub fn window_count(&self, slots: Range<usize>) -> u64 {
        self.prefix_count[slots.end] - self.prefix_count[slots.start]
    }

    /// Σx over a slot window via prefix differencing. O(1), but **not**
    /// bit-exact against a direct in-order accumulation; use for scoring
    /// and diagnostics, not for decode decisions.
    pub fn window_sum(&self, slots: Range<usize>) -> f64 {
        self.prefix_sum[slots.end] - self.prefix_sum[slots.start]
    }

    /// Σx² over a slot window via prefix differencing; same caveat as
    /// [`Self::window_sum`].
    pub fn window_sum_sq(&self, slots: Range<usize>) -> f64 {
        self.prefix_sum_sq[slots.end] - self.prefix_sum_sq[slots.start]
    }
}

/// Sliding-window statistics over the last `capacity` samples, held in a
/// ring buffer, with results **bitwise identical** to rebuilding the
/// window's accumulators from scratch in arrival order.
///
/// Floating-point sums are left folds, so two regimes apply:
///
/// * **Filling** (no eviction yet): each [`WindowStats::push`] extends
///   the cached fold in O(1) — `sum + x` is exactly what a fresh rebuild
///   would compute last, so the cache stays bitwise equal to a rebuild.
/// * **Wrapped** (ring at capacity): evicting the oldest sample breaks
///   the prefix — f64 subtraction does *not* undo an addition bitwise —
///   so a push that evicts refolds the ring in **logical order**, oldest
///   to newest across the wrap point (the two storage slices
///   `buf[head..]` then `buf[..head]`). Refolding in *storage* order
///   would silently change the rounding the moment the window wraps;
///   that distinction is pinned by a proptest against a fresh-rebuild
///   model.
///
/// The O(window) refold per post-wrap push is the price of the
/// bit-exactness contract; the window sizes the decoders use keep it
/// cheap, and the filling phase (the common case for one tag session)
/// stays O(1).
///
/// ```
/// use bs_dsp::slotstats::WindowStats;
///
/// let mut w = WindowStats::new(3);
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     w.push(x);
/// }
/// // Window is now [2, 3, 4] — identical to folding those afresh.
/// assert_eq!(w.len(), 3);
/// assert_eq!(w.sum().to_bits(), (2.0 + 3.0 + 4.0f64).to_bits());
/// assert_eq!(w.mean(), Some(3.0));
/// ```
#[derive(Debug, Clone)]
pub struct WindowStats {
    buf: Vec<f64>,
    capacity: usize,
    /// Index of the oldest sample once the ring has wrapped; 0 before.
    head: usize,
    sum: f64,
    sum_sq: f64,
    welford: Running,
}

impl WindowStats {
    /// An empty window holding at most `capacity` samples.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        WindowStats {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            sum: 0.0,
            sum_sq: 0.0,
            welford: Running::new(),
        }
    }

    /// Samples currently in the window.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The construction-time bound on resident samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the next [`WindowStats::push`] will evict the oldest
    /// sample.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Pushes one sample; if the ring was full, evicts and returns the
    /// oldest. O(1) while filling, O(window) once wrapped (see the type
    /// docs for why the refold cannot be avoided bitwise).
    pub fn push(&mut self, x: f64) -> Option<f64> {
        if self.buf.len() < self.capacity {
            self.buf.push(x);
            // Left-fold extension: exactly the last step of a rebuild.
            self.sum += x;
            self.sum_sq += x * x;
            self.welford.push(x);
            None
        } else {
            let evicted = self.buf[self.head];
            self.buf[self.head] = x;
            self.head = (self.head + 1) % self.capacity;
            self.refold();
            Some(evicted)
        }
    }

    /// Rebuilds the cached folds in logical (arrival) order: the slice
    /// from `head` to the end holds the oldest run, the slice before
    /// `head` the newest.
    fn refold(&mut self) {
        self.sum = 0.0;
        self.sum_sq = 0.0;
        self.welford = Running::new();
        let (newest, oldest) = self.buf.split_at(self.head);
        for &x in oldest.iter().chain(newest) {
            self.sum += x;
            self.sum_sq += x * x;
            self.welford.push(x);
        }
    }

    /// Σx over the window, accumulated in arrival order.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Σx² over the window, accumulated in arrival order.
    pub fn sum_sq(&self) -> f64 {
        self.sum_sq
    }

    /// Mean of the window — `None` when empty.
    ///
    /// ```
    /// # use bs_dsp::slotstats::WindowStats;
    /// assert_eq!(WindowStats::new(4).mean(), None);
    /// ```
    pub fn mean(&self) -> Option<f64> {
        (!self.buf.is_empty()).then(|| self.sum / self.buf.len() as f64)
    }

    /// Population variance of the window via the same Welford recurrence
    /// as [`crate::stats::variance`], folded in arrival order.
    pub fn population_variance(&self) -> f64 {
        self.welford.population_variance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    fn synth(n: usize, gap: u64, seed: u64) -> (Vec<u64>, Vec<f64>) {
        let mut rng = SimRng::new(seed).stream("slotstats");
        let mut t = 0u64;
        let mut t_us = Vec::with_capacity(n);
        let mut xs = Vec::with_capacity(n);
        for _ in 0..n {
            t_us.push(t);
            t += 1 + (rng.gaussian(gap as f64, gap as f64 / 4.0).abs() as u64);
            xs.push(rng.gaussian(0.0, 1.0));
        }
        (t_us, xs)
    }

    /// The naive binning the decoder reference path uses: full scan,
    /// `sums[slot] += x` in packet order.
    fn naive_bins(
        t_us: &[u64],
        xs: &[f64],
        start: u64,
        width: u64,
        n_slots: usize,
    ) -> (Vec<u32>, Vec<f64>, Vec<f64>) {
        let mut counts = vec![0u32; n_slots];
        let mut sums = vec![0.0; n_slots];
        let mut per_slot: Vec<Vec<f64>> = vec![Vec::new(); n_slots];
        for (p, &t) in t_us.iter().enumerate() {
            if t < start {
                continue;
            }
            let slot = ((t - start) / width) as usize;
            if slot >= n_slots {
                continue;
            }
            counts[slot] += 1;
            sums[slot] += xs[p];
            per_slot[slot].push(xs[p]);
        }
        let vars = per_slot.iter().map(|s| crate::stats::variance(s)).collect();
        (counts, sums, vars)
    }

    #[test]
    fn partition_ranges_match_time_windows() {
        let (t_us, _) = synth(500, 300, 1);
        let part = SlotPartition::build(&t_us, 10_000, 1_000, 40);
        assert_eq!(part.n_slots(), 40);
        for k in 0..40 {
            let lo = 10_000 + k as u64 * 1_000;
            let hi = lo + 1_000;
            let want: Vec<usize> = (0..t_us.len())
                .filter(|&p| t_us[p] >= lo && t_us[p] < hi)
                .collect();
            let got: Vec<usize> = part.slot_range(k).collect();
            assert_eq!(got, want, "slot {k}");
            for &p in &want {
                assert_eq!(part.slot_of(t_us[p]), Some(k));
            }
        }
    }

    #[test]
    fn stats_bitwise_match_naive_binning() {
        let (t_us, xs) = synth(800, 250, 2);
        let start = 5_000u64;
        let width = 777u64;
        let n_slots = 60;
        let part = SlotPartition::build(&t_us, start, width, n_slots);
        let stats = SlotStats::build(&part, &xs);
        let (counts, sums, vars) = naive_bins(&t_us, &xs, start, width, n_slots);
        for k in 0..n_slots {
            assert_eq!(stats.count(k), counts[k], "count slot {k}");
            assert_eq!(stats.sum(k).to_bits(), sums[k].to_bits(), "sum slot {k}");
            assert_eq!(stats.variance(k).to_bits(), vars[k].to_bits(), "var slot {k}");
            let want_mean = (counts[k] > 0).then(|| sums[k] / f64::from(counts[k]));
            assert_eq!(
                stats.mean(k).map(f64::to_bits),
                want_mean.map(f64::to_bits),
                "mean slot {k}"
            );
        }
    }

    #[test]
    fn window_aggregates() {
        let (t_us, xs) = synth(400, 200, 3);
        let part = SlotPartition::build(&t_us, 0, 2_000, 30);
        let stats = SlotStats::build(&part, &xs);
        let direct_count: u64 = (5..19).map(|k| u64::from(stats.count(k))).sum();
        assert_eq!(stats.window_count(5..19), direct_count);
        let direct_sum: f64 = (5..19).map(|k| stats.sum(k)).sum();
        assert!((stats.window_sum(5..19) - direct_sum).abs() < 1e-9);
        let empty = stats.window_count(7..7);
        assert_eq!(empty, 0);
        assert_eq!(stats.window_sum(7..7), 0.0);
    }

    #[test]
    fn empty_and_out_of_range_slots() {
        let t_us = vec![100, 200, 300];
        let xs = vec![1.0, 2.0, 3.0];
        // Slots entirely after the data.
        let part = SlotPartition::build(&t_us, 1_000, 50, 4);
        let stats = SlotStats::build(&part, &xs);
        for k in 0..4 {
            assert_eq!(stats.count(k), 0);
            assert_eq!(stats.mean(k), None);
            assert_eq!(stats.variance(k), 0.0);
            assert!(part.slot_range(k).is_empty());
        }
        assert_eq!(part.coverage_len(), 0);
        assert_eq!(part.slot_of(50), None);
        assert_eq!(part.slot_of(1_000), Some(0));
        assert_eq!(part.slot_of(1_200), None);
    }

    #[test]
    fn empty_stream() {
        let part = SlotPartition::build(&[], 0, 10, 3);
        assert_eq!(part.n_slots(), 3);
        assert_eq!(part.coverage_len(), 0);
        let stats = SlotStats::build(&part, &[]);
        assert_eq!(stats.window_count(0..3), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        SlotPartition::build(&[0, 1], 0, 0, 1);
    }

    #[test]
    fn extend_matches_fresh_build_bitwise() {
        let (t_us, xs) = synth(600, 280, 4);
        // Grow the stream and the slot count together in uneven steps,
        // as a live session would.
        let steps = [(50usize, 4usize), (51, 4), (200, 11), (400, 30), (600, 47)];
        let (n0, s0) = steps[0];
        let mut part = SlotPartition::build(&t_us[..n0], 7_000, 913, s0);
        let mut stats = SlotStats::build(&part, &xs[..n0]);
        for &(n, slots) in &steps[1..] {
            let from = part.extend(&t_us[..n], slots);
            stats.extend(&part, &xs[..n], from);
            let fresh_part = SlotPartition::build(&t_us[..n], 7_000, 913, slots);
            assert_eq!(part, fresh_part, "partition at n={n} slots={slots}");
            let fresh = SlotStats::build(&fresh_part, &xs[..n]);
            assert_eq!(stats, fresh, "stats PartialEq at n={n}");
            for k in 0..slots {
                assert_eq!(stats.sum(k).to_bits(), fresh.sum(k).to_bits());
                assert_eq!(stats.variance(k).to_bits(), fresh.variance(k).to_bits());
            }
            assert_eq!(
                stats.window_sum(0..slots).to_bits(),
                fresh.window_sum(0..slots).to_bits()
            );
        }
    }

    #[test]
    fn extend_with_no_new_data_is_identity() {
        let (t_us, xs) = synth(100, 300, 5);
        let mut part = SlotPartition::build(&t_us, 0, 1_000, 10);
        let before = part.clone();
        let from = part.extend(&t_us, 10);
        assert_eq!(part, before);
        assert_eq!(from, 10, "nothing changed → first changed slot == n_slots");
        let mut stats = SlotStats::build(&part, &xs);
        let fresh = stats.clone();
        stats.extend(&part, &xs, from);
        assert_eq!(stats, fresh);
    }

    #[test]
    fn extend_from_empty_partition() {
        let (t_us, xs) = synth(120, 200, 6);
        let mut part = SlotPartition::build(&[], 3_000, 500, 0);
        let mut stats = SlotStats::build(&part, &[]);
        let from = part.extend(&t_us, 25);
        assert_eq!(from, 0);
        assert_eq!(part, SlotPartition::build(&t_us, 3_000, 500, 25));
        // A zero-slot build saw no slots; rebuild everything from 0.
        stats.extend(&part, &xs, from);
        assert_eq!(stats, SlotStats::build(&part, &xs));
    }

    #[test]
    fn window_stats_filling_phase_is_left_fold() {
        let (_, xs) = synth(40, 100, 7);
        let mut w = WindowStats::new(64);
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut run = Running::new();
        for &x in &xs {
            assert_eq!(w.push(x), None, "no eviction while filling");
            sum += x;
            sum_sq += x * x;
            run.push(x);
            assert_eq!(w.sum().to_bits(), sum.to_bits());
            assert_eq!(w.sum_sq().to_bits(), sum_sq.to_bits());
            assert_eq!(
                w.population_variance().to_bits(),
                run.population_variance().to_bits()
            );
        }
        assert!(!w.is_full());
    }

    #[test]
    fn window_stats_wrap_matches_fresh_rebuild_bitwise() {
        let (_, xs) = synth(100, 100, 8);
        let cap = 7;
        let mut w = WindowStats::new(cap);
        for (i, &x) in xs.iter().enumerate() {
            let evicted = w.push(x);
            if i >= cap {
                assert_eq!(evicted.map(f64::to_bits), Some(xs[i - cap].to_bits()));
            } else {
                assert_eq!(evicted, None);
            }
            // Fresh accumulators over the logical window contents.
            let lo = (i + 1).saturating_sub(cap);
            let mut sum = 0.0;
            let mut run = Running::new();
            for &y in &xs[lo..=i] {
                sum += y;
                run.push(y);
            }
            assert_eq!(w.len(), i + 1 - lo);
            assert_eq!(w.sum().to_bits(), sum.to_bits(), "i={i}");
            assert_eq!(
                w.population_variance().to_bits(),
                run.population_variance().to_bits(),
                "i={i}"
            );
            assert_eq!(
                w.mean().map(f64::to_bits),
                Some((sum / (i + 1 - lo) as f64).to_bits())
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_window_panics() {
        WindowStats::new(0);
    }
}
