//! Binned slot statistics over a timestamped packet stream.
//!
//! The uplink decoders (§3.2 steps 2–4, §3.4) repeatedly need per-slot
//! aggregates — packet counts, means, within-slot variances, chip
//! correlations — over windows `[start_us, start_us + n·width_us)` of a
//! time-sorted capture. Computed naively, every alignment candidate ×
//! channel × window costs a full pass over the packet stream. The types
//! here exploit the one structural fact that makes this cheap: the
//! timestamp axis is **ascending**, so every time window is a contiguous
//! packet-index range.
//!
//! * [`SlotPartition`] cuts the timestamp axis into fixed-width slots
//!   anchored at a base time, in one O(packets + slots) pass. Every slot
//!   becomes a `Range<usize>` of packet indices.
//! * [`SlotStats`] layers per-slot `(count, Σx, Σx², variance)` for one
//!   channel over a partition, plus prefix sums for O(1) window
//!   aggregates.
//!
//! # Bit-exactness contract
//!
//! The decoders that consume this index are required to be
//! *output-preserving* against their straight-line reference
//! implementations, down to the last ulp. Floating-point addition is not
//! associative, so prefix-sum differencing is **not** bit-exact against a
//! freshly accumulated window sum. The per-slot quantities therefore
//! follow the exact accumulation order of the naive code:
//!
//! * [`SlotStats::sum`]/[`SlotStats::mean`] accumulate each slot from a
//!   fresh `0.0` in packet order — identical to a naive
//!   "`sums[slot] += x[p]`" scan.
//! * [`SlotStats::variance`] runs the same Welford recurrence as
//!   [`crate::stats::variance`] over the slot's packets in order.
//! * Only the `window_*` prefix queries trade exactness for O(1) lookups;
//!   `window_count` stays exact (integer), the floating-point
//!   `window_sum`/`window_sum_sq` are documented as aggregates for
//!   scoring/diagnostics, not for decode decisions.

use crate::stats::Running;
use std::ops::Range;

/// A partition of an ascending timestamp axis into `n_slots` fixed-width
/// slots: slot `k` covers `[base_us + k·width_us, base_us + (k+1)·width_us)`.
///
/// Built in one merge pass; afterwards every slot is a contiguous
/// packet-index [`Range`], shared by all channels of the bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotPartition {
    base_us: u64,
    width_us: u64,
    /// `edges[k]` = first packet index with `t ≥ base_us + k·width_us`;
    /// length `n_slots + 1`.
    edges: Vec<usize>,
}

impl SlotPartition {
    /// Builds the partition over `t_us` (which must be ascending).
    ///
    /// # Panics
    /// Panics if `width_us == 0`.
    pub fn build(t_us: &[u64], base_us: u64, width_us: u64, n_slots: usize) -> Self {
        assert!(width_us > 0, "slot width must be positive");
        let mut edges = Vec::with_capacity(n_slots + 1);
        let mut i = t_us.partition_point(|&t| t < base_us);
        edges.push(i);
        for k in 1..=n_slots as u64 {
            let boundary = base_us.saturating_add(k.saturating_mul(width_us));
            while i < t_us.len() && t_us[i] < boundary {
                i += 1;
            }
            edges.push(i);
        }
        SlotPartition {
            base_us,
            width_us,
            edges,
        }
    }

    /// The anchor time of slot 0.
    pub fn base_us(&self) -> u64 {
        self.base_us
    }

    /// The slot width in µs.
    pub fn width_us(&self) -> u64 {
        self.width_us
    }

    /// Number of slots.
    pub fn n_slots(&self) -> usize {
        self.edges.len() - 1
    }

    /// Packet-index range of slot `k`.
    ///
    /// # Panics
    /// Panics if `k ≥ n_slots`.
    pub fn slot_range(&self, k: usize) -> Range<usize> {
        self.edges[k]..self.edges[k + 1]
    }

    /// The slot containing time `t_us`, if it falls inside the coverage.
    pub fn slot_of(&self, t_us: u64) -> Option<usize> {
        if t_us < self.base_us {
            return None;
        }
        let k = ((t_us - self.base_us) / self.width_us) as usize;
        (k < self.n_slots()).then_some(k)
    }

    /// Total packets covered by the partition (one pass's worth of work
    /// for any per-channel statistics built over it).
    pub fn coverage_len(&self) -> usize {
        self.edges[self.n_slots()] - self.edges[0]
    }
}

/// Per-slot statistics of one channel over a [`SlotPartition`]:
/// `(count, Σx, Σx²)` and the within-slot population variance, plus
/// prefix sums for O(1) window aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotStats {
    count: Vec<u32>,
    sum: Vec<f64>,
    var: Vec<f64>,
    prefix_count: Vec<u64>,
    prefix_sum: Vec<f64>,
    prefix_sum_sq: Vec<f64>,
}

impl SlotStats {
    /// Builds the per-slot statistics for `values` (one sample per
    /// packet, same indexing as the partition's timestamp axis) in one
    /// O(coverage + slots) pass.
    pub fn build(partition: &SlotPartition, values: &[f64]) -> Self {
        let n = partition.n_slots();
        let mut count = Vec::with_capacity(n);
        let mut sum = Vec::with_capacity(n);
        let mut var = Vec::with_capacity(n);
        let mut prefix_count = Vec::with_capacity(n + 1);
        let mut prefix_sum = Vec::with_capacity(n + 1);
        let mut prefix_sum_sq = Vec::with_capacity(n + 1);
        prefix_count.push(0);
        prefix_sum.push(0.0);
        prefix_sum_sq.push(0.0);
        for k in 0..n {
            let slice = &values[partition.slot_range(k)];
            // Fresh accumulators per slot, packet order: bit-exact with a
            // naive "sums[slot] += x" scan.
            let mut s = 0.0;
            let mut sq = 0.0;
            let mut w = Running::new();
            for &x in slice {
                s += x;
                sq += x * x;
                w.push(x);
            }
            count.push(slice.len() as u32);
            sum.push(s);
            var.push(w.population_variance());
            prefix_count.push(prefix_count[k] + slice.len() as u64);
            prefix_sum.push(prefix_sum[k] + s);
            prefix_sum_sq.push(prefix_sum_sq[k] + sq);
        }
        SlotStats {
            count,
            sum,
            var,
            prefix_count,
            prefix_sum,
            prefix_sum_sq,
        }
    }

    /// Packet count of slot `k`.
    pub fn count(&self, k: usize) -> u32 {
        self.count[k]
    }

    /// Σx of slot `k` (accumulated in packet order from 0.0).
    pub fn sum(&self, k: usize) -> f64 {
        self.sum[k]
    }

    /// Mean of slot `k`: `Σx / count` — `None` for an empty slot.
    pub fn mean(&self, k: usize) -> Option<f64> {
        let c = self.count[k];
        (c > 0).then(|| self.sum[k] / f64::from(c))
    }

    /// Within-slot population variance of slot `k` (Welford, matching
    /// [`crate::stats::variance`] exactly). 0 for slots with < 2 packets.
    pub fn variance(&self, k: usize) -> f64 {
        self.var[k]
    }

    /// Exact packet count over a slot window (prefix-differenced; integer
    /// arithmetic, so exact).
    pub fn window_count(&self, slots: Range<usize>) -> u64 {
        self.prefix_count[slots.end] - self.prefix_count[slots.start]
    }

    /// Σx over a slot window via prefix differencing. O(1), but **not**
    /// bit-exact against a direct in-order accumulation; use for scoring
    /// and diagnostics, not for decode decisions.
    pub fn window_sum(&self, slots: Range<usize>) -> f64 {
        self.prefix_sum[slots.end] - self.prefix_sum[slots.start]
    }

    /// Σx² over a slot window via prefix differencing; same caveat as
    /// [`Self::window_sum`].
    pub fn window_sum_sq(&self, slots: Range<usize>) -> f64 {
        self.prefix_sum_sq[slots.end] - self.prefix_sum_sq[slots.start]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    fn synth(n: usize, gap: u64, seed: u64) -> (Vec<u64>, Vec<f64>) {
        let mut rng = SimRng::new(seed).stream("slotstats");
        let mut t = 0u64;
        let mut t_us = Vec::with_capacity(n);
        let mut xs = Vec::with_capacity(n);
        for _ in 0..n {
            t_us.push(t);
            t += 1 + (rng.gaussian(gap as f64, gap as f64 / 4.0).abs() as u64);
            xs.push(rng.gaussian(0.0, 1.0));
        }
        (t_us, xs)
    }

    /// The naive binning the decoder reference path uses: full scan,
    /// `sums[slot] += x` in packet order.
    fn naive_bins(
        t_us: &[u64],
        xs: &[f64],
        start: u64,
        width: u64,
        n_slots: usize,
    ) -> (Vec<u32>, Vec<f64>, Vec<f64>) {
        let mut counts = vec![0u32; n_slots];
        let mut sums = vec![0.0; n_slots];
        let mut per_slot: Vec<Vec<f64>> = vec![Vec::new(); n_slots];
        for (p, &t) in t_us.iter().enumerate() {
            if t < start {
                continue;
            }
            let slot = ((t - start) / width) as usize;
            if slot >= n_slots {
                continue;
            }
            counts[slot] += 1;
            sums[slot] += xs[p];
            per_slot[slot].push(xs[p]);
        }
        let vars = per_slot.iter().map(|s| crate::stats::variance(s)).collect();
        (counts, sums, vars)
    }

    #[test]
    fn partition_ranges_match_time_windows() {
        let (t_us, _) = synth(500, 300, 1);
        let part = SlotPartition::build(&t_us, 10_000, 1_000, 40);
        assert_eq!(part.n_slots(), 40);
        for k in 0..40 {
            let lo = 10_000 + k as u64 * 1_000;
            let hi = lo + 1_000;
            let want: Vec<usize> = (0..t_us.len())
                .filter(|&p| t_us[p] >= lo && t_us[p] < hi)
                .collect();
            let got: Vec<usize> = part.slot_range(k).collect();
            assert_eq!(got, want, "slot {k}");
            for &p in &want {
                assert_eq!(part.slot_of(t_us[p]), Some(k));
            }
        }
    }

    #[test]
    fn stats_bitwise_match_naive_binning() {
        let (t_us, xs) = synth(800, 250, 2);
        let start = 5_000u64;
        let width = 777u64;
        let n_slots = 60;
        let part = SlotPartition::build(&t_us, start, width, n_slots);
        let stats = SlotStats::build(&part, &xs);
        let (counts, sums, vars) = naive_bins(&t_us, &xs, start, width, n_slots);
        for k in 0..n_slots {
            assert_eq!(stats.count(k), counts[k], "count slot {k}");
            assert_eq!(stats.sum(k).to_bits(), sums[k].to_bits(), "sum slot {k}");
            assert_eq!(stats.variance(k).to_bits(), vars[k].to_bits(), "var slot {k}");
            let want_mean = (counts[k] > 0).then(|| sums[k] / f64::from(counts[k]));
            assert_eq!(
                stats.mean(k).map(f64::to_bits),
                want_mean.map(f64::to_bits),
                "mean slot {k}"
            );
        }
    }

    #[test]
    fn window_aggregates() {
        let (t_us, xs) = synth(400, 200, 3);
        let part = SlotPartition::build(&t_us, 0, 2_000, 30);
        let stats = SlotStats::build(&part, &xs);
        let direct_count: u64 = (5..19).map(|k| u64::from(stats.count(k))).sum();
        assert_eq!(stats.window_count(5..19), direct_count);
        let direct_sum: f64 = (5..19).map(|k| stats.sum(k)).sum();
        assert!((stats.window_sum(5..19) - direct_sum).abs() < 1e-9);
        let empty = stats.window_count(7..7);
        assert_eq!(empty, 0);
        assert_eq!(stats.window_sum(7..7), 0.0);
    }

    #[test]
    fn empty_and_out_of_range_slots() {
        let t_us = vec![100, 200, 300];
        let xs = vec![1.0, 2.0, 3.0];
        // Slots entirely after the data.
        let part = SlotPartition::build(&t_us, 1_000, 50, 4);
        let stats = SlotStats::build(&part, &xs);
        for k in 0..4 {
            assert_eq!(stats.count(k), 0);
            assert_eq!(stats.mean(k), None);
            assert_eq!(stats.variance(k), 0.0);
            assert!(part.slot_range(k).is_empty());
        }
        assert_eq!(part.coverage_len(), 0);
        assert_eq!(part.slot_of(50), None);
        assert_eq!(part.slot_of(1_000), Some(0));
        assert_eq!(part.slot_of(1_200), None);
    }

    #[test]
    fn empty_stream() {
        let part = SlotPartition::build(&[], 0, 10, 3);
        assert_eq!(part.n_slots(), 3);
        assert_eq!(part.coverage_len(), 0);
        let stats = SlotStats::build(&part, &[]);
        assert_eq!(stats.window_count(0..3), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        SlotPartition::build(&[0, 1], 0, 0, 1);
    }
}
