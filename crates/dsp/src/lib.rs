//! # bs-dsp — signal-processing substrate for the Wi-Fi Backscatter reproduction
//!
//! This crate contains the numeric building blocks shared by every other
//! crate in the workspace:
//!
//! * [`complex`] — a small, dependency-free complex-number type used for
//!   baseband channel responses.
//! * [`rng`] — deterministic, named random streams so every experiment is
//!   exactly reproducible ([`rng::SimRng`]), plus the distributions the
//!   channel and traffic models need (Gaussian, Rayleigh, exponential).
//! * [`stats`] — running statistics (Welford), histograms / empirical PDFs
//!   (Fig. 4 of the paper), percentiles.
//! * [`filter`] — the moving-average detrender and normaliser that implement
//!   the paper's *signal conditioning* step (§3.2 step 1).
//! * [`correlate`] — sliding correlation against known ±1 preambles and
//!   codes; used for sub-channel selection (§3.2 step 2) and for the
//!   long-range correlation decoder (§3.4).
//! * [`fft`] — a radix-2 FFT backing `bs-wifi`'s OFDM waveform synthesis.
//! * [`codes`] — Barker preambles (§6) and the orthogonal code pairs used by
//!   the long-range uplink (§3.4).
//! * [`slicer`] — hysteresis thresholding (µ ± σ/2, §3.2 step 3) and
//!   majority voting over the channel measurements of one bit.
//! * [`slotstats`] — binned slot statistics over a timestamped packet
//!   stream: the O(packets)-build, O(slots)-query index behind the
//!   decoders' alignment search and MRC weighting, with incremental
//!   extension and ring-buffer window statistics for streaming use.
//! * [`stream`] — composable streaming blocks (`push → Consumed`
//!   backpressure protocol over bounded buffers) and the chunked vector
//!   kernels the decode hot path is written in terms of.
//! * [`bits`] — bit/byte packing, CRC-8 framing checks and bit-error-rate
//!   accounting used throughout the evaluation.
//! * [`obs`] — the deterministic observability layer: stage spans in
//!   simulated time, counters and gauges behind a zero-cost
//!   [`obs::Recorder`] trait.
//! * [`testkit`] — a deterministic property-testing driver used by every
//!   crate's invariant tests (no external `proptest` dependency).
//!
//! Everything here is plain, allocation-conscious synchronous Rust: the
//! whole reproduction is a deterministic discrete-event simulation, so there
//! is no async runtime anywhere in the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod codes;
pub mod complex;
pub mod correlate;
pub mod fft;
pub mod filter;
pub mod obs;
pub mod rng;
pub mod slicer;
pub mod slotstats;
pub mod stats;
pub mod stream;
pub mod testkit;

pub use complex::Complex;
pub use rng::SimRng;
