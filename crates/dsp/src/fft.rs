//! Radix-2 FFT for OFDM waveform synthesis.
//!
//! The downlink envelope model needs the statistics of a real 802.11 OFDM
//! time-domain envelope; `bs-wifi` synthesises symbol waveforms with a
//! 64-point IFFT built on this module. The implementation is the classic
//! iterative Cooley–Tukey with bit-reversal permutation — small, exact
//! enough for simulation, and free of external dependencies.

use crate::Complex;

/// In-place radix-2 decimation-in-time FFT.
///
/// # Panics
/// Panics if the length is not a power of two (or is zero).
pub fn fft(x: &mut [Complex]) {
    transform(x, false);
}

/// In-place inverse FFT (includes the 1/N normalisation).
///
/// # Panics
/// Panics if the length is not a power of two (or is zero).
pub fn ifft(x: &mut [Complex]) {
    transform(x, true);
    let n = x.len() as f64;
    for v in x.iter_mut() {
        *v = *v / n;
    }
}

fn transform(x: &mut [Complex], inverse: bool) {
    let n = x.len();
    assert!(n.is_power_of_two() && n > 0, "FFT length must be a power of two");

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            x.swap(i, j);
        }
    }

    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_polar(1.0, ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = x[start + k];
                let v = x[start + k + len / 2] * w;
                x[start + k] = u + v;
                x[start + k + len / 2] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Convenience: forward FFT of a borrowed slice into a new vector.
pub fn fft_copy(x: &[Complex]) -> Vec<Complex> {
    let mut v = x.to_vec();
    fft(&mut v);
    v
}

/// Convenience: inverse FFT of a borrowed slice into a new vector.
pub fn ifft_copy(x: &[Complex]) -> Vec<Complex> {
    let mut v = x.to_vec();
    ifft(&mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-9
    }

    /// Naive O(n²) DFT for cross-checking.
    fn dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|t| {
                        x[t] * Complex::from_polar(
                            1.0,
                            -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64,
                        )
                    })
                    .sum()
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        use crate::SimRng;
        let mut rng = SimRng::new(1).stream("fft");
        for &n in &[2usize, 4, 8, 16, 64] {
            let x: Vec<Complex> = (0..n).map(|_| rng.complex_gaussian(1.0)).collect();
            let fast = fft_copy(&x);
            let slow = dft(&x);
            for (a, b) in fast.iter().zip(&slow) {
                assert!(close(*a, *b), "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        use crate::SimRng;
        let mut rng = SimRng::new(2).stream("fft-inv");
        let x: Vec<Complex> = (0..128).map(|_| rng.complex_gaussian(1.0)).collect();
        let back = ifft_copy(&fft_copy(&x));
        for (a, b) in back.iter().zip(&x) {
            assert!(close(*a, *b));
        }
    }

    #[test]
    fn impulse_transforms_to_flat() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        fft(&mut x);
        for v in &x {
            assert!(close(*v, Complex::ONE));
        }
    }

    #[test]
    fn single_tone_transforms_to_impulse() {
        let n = 64;
        let k0 = 5;
        let x: Vec<Complex> = (0..n)
            .map(|t| {
                Complex::from_polar(1.0, 2.0 * std::f64::consts::PI * (k0 * t) as f64 / n as f64)
            })
            .collect();
        let y = fft_copy(&x);
        for (k, v) in y.iter().enumerate() {
            if k == k0 {
                assert!((v.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "leakage at bin {k}: {}", v.abs());
            }
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        use crate::SimRng;
        let mut rng = SimRng::new(3).stream("fft-parseval");
        let x: Vec<Complex> = (0..256).map(|_| rng.complex_gaussian(1.0)).collect();
        let time_energy: f64 = x.iter().map(|v| v.norm_sq()).sum();
        let y = fft_copy(&x);
        let freq_energy: f64 = y.iter().map(|v| v.norm_sq()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy);
    }

    #[test]
    fn linearity() {
        use crate::SimRng;
        let mut rng = SimRng::new(4).stream("fft-lin");
        let a: Vec<Complex> = (0..32).map(|_| rng.complex_gaussian(1.0)).collect();
        let b: Vec<Complex> = (0..32).map(|_| rng.complex_gaussian(1.0)).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft_copy(&a);
        let fb = fft_copy(&b);
        let fsum = fft_copy(&sum);
        for i in 0..32 {
            assert!(close(fsum[i], fa[i] + fb[i]));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut x = vec![Complex::ZERO; 6];
        fft(&mut x);
    }
}
