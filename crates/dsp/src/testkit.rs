//! A tiny deterministic property-testing driver.
//!
//! The workspace's invariant tests were originally written against
//! `proptest`; this module provides the same shape — "generate many random
//! inputs, assert an invariant on each" — with no external dependency and
//! fully deterministic inputs (every case's generator is a named
//! [`SimRng`] substream, so failures reproduce exactly on any machine).
//!
//! ```
//! use bs_dsp::testkit::check;
//! check("addition-commutes", 64, |g| {
//!     let a = g.f64_in(-1e6, 1e6);
//!     let b = g.f64_in(-1e6, 1e6);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::SimRng;

/// Per-case input generator handed to the [`check`] closure.
///
/// All draws come from a substream keyed by the property name and case
/// index, so adding cases or properties never perturbs existing ones.
pub struct Gen {
    rng: SimRng,
    case: u64,
}

impl Gen {
    /// The zero-based index of the current case (useful in assert messages).
    pub fn case(&self) -> u64 {
        self.case
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.uniform_range(lo, hi)
    }

    /// Uniform `usize` in `[lo, hi)`. Panics if the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "usize_in requires a non-empty range");
        lo + self.rng.index(hi - lo)
    }

    /// A fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.rng.chance(0.5)
    }

    /// Uniform byte.
    pub fn u8(&mut self) -> u8 {
        (self.rng.next_u32() >> 24) as u8
    }

    /// A vector of uniform `f64` values in `[lo, hi)` with a length drawn
    /// uniformly from `[min_len, max_len)`.
    pub fn vec_f64(&mut self, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
        let n = self.usize_in(min_len, max_len);
        (0..n).map(|_| self.f64_in(lo, hi)).collect()
    }

    /// A vector of uniform bytes with length in `[min_len, max_len)`.
    pub fn vec_u8(&mut self, min_len: usize, max_len: usize) -> Vec<u8> {
        let n = self.usize_in(min_len, max_len);
        (0..n).map(|_| self.u8()).collect()
    }

    /// A vector of coin flips with length in `[min_len, max_len)`.
    pub fn vec_bool(&mut self, min_len: usize, max_len: usize) -> Vec<bool> {
        let n = self.usize_in(min_len, max_len);
        (0..n).map(|_| self.bool()).collect()
    }
}

/// Runs `cases` deterministic random cases of a property.
///
/// `name` keys the random stream: two properties with different names see
/// independent inputs, and renaming a property (deliberately) re-rolls its
/// inputs. The closure asserts the invariant with ordinary `assert!`
/// macros; the failing case index is available via [`Gen::case`].
pub fn check(name: &str, cases: u64, mut property: impl FnMut(&mut Gen)) {
    // The fixed offset keeps property seeds disjoint from experiment
    // master seeds; the name picks the independent stream.
    let root = SimRng::new(0x7e57_ca5e).stream(name);
    for case in 0..cases {
        let mut g = Gen {
            rng: root.substream(case),
            case,
        };
        property(&mut g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<f64> = Vec::new();
        check("det", 10, |g| first.push(g.f64_in(0.0, 1.0)));
        let mut second: Vec<f64> = Vec::new();
        check("det", 10, |g| second.push(g.f64_in(0.0, 1.0)));
        assert_eq!(first, second);
    }

    #[test]
    fn different_names_see_different_inputs() {
        let mut a: Vec<f64> = Vec::new();
        check("alpha", 10, |g| a.push(g.f64_in(0.0, 1.0)));
        let mut b: Vec<f64> = Vec::new();
        check("beta", 10, |g| b.push(g.f64_in(0.0, 1.0)));
        assert_ne!(a, b);
    }

    #[test]
    fn generators_respect_bounds() {
        check("bounds", 200, |g| {
            let x = g.f64_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
            let n = g.usize_in(1, 7);
            assert!((1..7).contains(&n));
            let v = g.vec_u8(0, 9);
            assert!(v.len() < 9);
        });
    }
}
