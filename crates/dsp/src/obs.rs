//! Deterministic observability: stage spans, counters and gauges.
//!
//! Every pipeline stage in the reproduction (signal conditioning, alignment
//! search, sub-channel ranking, combining, slicing, the tag's comparator,
//! the reader's retry loop, …) can report what it did through a [`Recorder`].
//! The design constraints, in order of importance:
//!
//! 1. **Determinism.** Spans are measured in *simulated* microseconds taken
//!    from the scene clock (packet timestamps, envelope sample indices),
//!    never wall-clock time, and counters count discrete work items. A run
//!    therefore produces byte-identical observability output on any machine
//!    and under any `--jobs` parallelism.
//! 2. **Zero cost when off.** The default [`NullRecorder`] is a unit struct
//!    whose methods are empty and `#[inline]`; instrumented code paths make
//!    exactly the same RNG draws and arithmetic whether or not a recorder is
//!    armed, so golden fixtures are unaffected.
//! 3. **No dependencies.** Reports serialize to JSON with a tiny hand-rolled
//!    writer (sorted maps, `{:?}` floats that round-trip `f64` exactly).
//!
//! Armed recording uses [`MemRecorder`], which accumulates into an
//! [`ObsReport`]: spans in emission order, counters and gauges in sorted
//! (`BTreeMap`) order, so [`ObsReport::to_json`] is deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One completed stage timing, in simulated microseconds.
///
/// `items` counts the discrete work units the stage processed (packets,
/// envelope samples, candidate offsets, …) — a deterministic stand-in for
/// cycle counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Stage name, dotted-path style (`"uplink.align"`, `"tag.comparator"`).
    pub stage: String,
    /// Simulated start time of the stage's input window, µs.
    pub start_us: u64,
    /// Simulated end time of the stage's input window, µs.
    pub end_us: u64,
    /// Number of work items processed (packets, samples, candidates, …).
    pub items: u64,
}

impl Span {
    /// Simulated duration of the span in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Sink for deterministic observability events.
///
/// All methods have empty defaults, so a recorder only overrides what it
/// stores. Instrumented code receives `&mut dyn Recorder` and must behave
/// identically (same RNG draws, same results) whatever the recorder does.
pub trait Recorder {
    /// Whether events are being kept. Instrumented code may use this to
    /// skip *pure reporting* work (e.g. computing a weight entropy that is
    /// only ever recorded), never to change the simulation itself.
    fn armed(&self) -> bool {
        false
    }
    /// Record a completed stage span over simulated time `[start_us, end_us]`
    /// that processed `items` work units.
    fn span(&mut self, stage: &'static str, start_us: u64, end_us: u64, items: u64) {
        let _ = (stage, start_us, end_us, items);
    }
    /// Add `delta` to a named counter (created at zero on first use).
    fn add(&mut self, counter: &'static str, delta: u64) {
        let _ = (counter, delta);
    }
    /// Set a named gauge to `value` (last write wins).
    fn gauge(&mut self, gauge: &'static str, value: f64) {
        let _ = (gauge, value);
    }
}

/// The zero-cost default recorder: drops every event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

/// A recorder that accumulates events into an [`ObsReport`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemRecorder {
    report: ObsReport,
}

impl MemRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the recorder and return the accumulated report.
    pub fn into_report(self) -> ObsReport {
        self.report
    }

    /// Borrow the report accumulated so far.
    pub fn report(&self) -> &ObsReport {
        &self.report
    }
}

impl Recorder for MemRecorder {
    fn armed(&self) -> bool {
        true
    }

    fn span(&mut self, stage: &'static str, start_us: u64, end_us: u64, items: u64) {
        self.report.spans.push(Span {
            stage: stage.to_string(),
            start_us,
            end_us,
            items,
        });
    }

    fn add(&mut self, counter: &'static str, delta: u64) {
        *self.report.counters.entry(counter.to_string()).or_insert(0) += delta;
    }

    fn gauge(&mut self, gauge: &'static str, value: f64) {
        self.report.gauges.insert(gauge.to_string(), value);
    }
}

/// Everything one armed run observed: spans in emission order, counters and
/// gauges keyed by name in sorted order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsReport {
    /// Completed stage spans, in the order they were emitted.
    pub spans: Vec<Span>,
    /// Monotonic event counts by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-written gauge values by name.
    pub gauges: BTreeMap<String, f64>,
}

impl ObsReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.gauges.is_empty()
    }

    /// Value of a counter, zero if never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of a gauge, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// All spans recorded for one stage name.
    pub fn spans_for<'a>(&'a self, stage: &'a str) -> impl Iterator<Item = &'a Span> {
        self.spans.iter().filter(move |s| s.stage == stage)
    }

    /// Number of distinct stage names across all spans.
    pub fn distinct_stages(&self) -> usize {
        let mut names: Vec<&str> = self.spans.iter().map(|s| s.stage.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }

    /// Fold another report into this one: spans append, counters add,
    /// gauges take the other report's value (last write wins).
    pub fn merge(&mut self, other: &ObsReport) {
        self.spans.extend(other.spans.iter().cloned());
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
    }

    /// Deterministic JSON rendering:
    /// `{"spans":[{"stage":…,"start_us":…,"end_us":…,"items":…},…],`
    /// `"counters":{…},"gauges":{…}}`.
    ///
    /// Spans appear in emission order; counters and gauges in sorted key
    /// order. Gauge floats use `{:?}`, which round-trips `f64` exactly.
    pub fn to_json(&self) -> String {
        // ~64 bytes per span plus map entries; one allocation up front.
        let mut out = String::with_capacity(
            64 * self.spans.len() + 32 * (self.counters.len() + self.gauges.len()) + 48,
        );
        out.push_str("{\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":{},\"start_us\":{},\"end_us\":{},\"items\":{}}}",
                json_str(&s.stage),
                s.start_us,
                s.end_us,
                s.items
            );
        }
        out.push_str("],\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_str(k), v);
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{:?}", json_str(k), v);
        }
        out.push_str("}}");
        out
    }
}

/// Minimal JSON string escaping; names here are dotted identifiers but the
/// writer stays correct for arbitrary content.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObsReport {
        let mut rec = MemRecorder::new();
        rec.span("uplink.align", 100, 900, 7);
        rec.span("uplink.slice", 900, 1500, 30);
        rec.add("uplink.packets-binned", 30);
        rec.add("uplink.packets-binned", 12);
        rec.add("uplink.erasures", 2);
        rec.gauge("uplink.mrc-weight-entropy", 1.5);
        rec.gauge("uplink.mrc-weight-entropy", 1.25);
        rec.into_report()
    }

    #[test]
    fn null_recorder_is_unarmed_and_silent() {
        let mut rec = NullRecorder;
        assert!(!rec.armed());
        rec.span("x", 0, 1, 1);
        rec.add("x", 1);
        rec.gauge("x", 1.0);
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let r = sample();
        assert_eq!(r.counter("uplink.packets-binned"), 42);
        assert_eq!(r.counter("never-touched"), 0);
        assert_eq!(r.gauge("uplink.mrc-weight-entropy"), Some(1.25));
        assert_eq!(r.distinct_stages(), 2);
        assert_eq!(r.spans_for("uplink.align").count(), 1);
        assert_eq!(r.spans[0].duration_us(), 800);
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"spans\":["));
        // counters render in sorted key order
        let erasures = a.find("uplink.erasures").unwrap();
        let binned = a.find("uplink.packets-binned").unwrap();
        assert!(erasures < binned);
        assert!(a.contains("\"uplink.mrc-weight-entropy\":1.25"));
    }

    #[test]
    fn merge_adds_counters_appends_spans() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.spans.len(), 4);
        assert_eq!(a.counter("uplink.packets-binned"), 84);
        assert_eq!(a.gauge("uplink.mrc-weight-entropy"), Some(1.25));
    }

    #[test]
    fn empty_report_renders_empty_json() {
        let r = ObsReport::new();
        assert!(r.is_empty());
        assert_eq!(r.to_json(), "{\"spans\":[],\"counters\":{},\"gauges\":{}}");
    }

    #[test]
    fn json_escapes_control_and_quote() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
