//! Signal conditioning: moving-average detrending and ±1 normalisation.
//!
//! §3.2 step 1 of the paper removes slow temporal channel variation (people
//! moving, furniture, drift) by subtracting a moving average computed over a
//! 400 ms window, then normalises the zero-mean residual by the mean of its
//! absolute values so that the two tag states land near −1 and +1.
//!
//! Two flavours are provided:
//!
//! * [`condition`] — the offline (whole-record) version used when decoding a
//!   captured trace, matching the paper's evaluation methodology.
//! * [`SlidingConditioner`] — a streaming version with an explicit window in
//!   *samples*, for online operation.

/// Centred moving average with window `2·half + 1`, truncated at the edges.
///
/// Edge samples average over whatever part of the window is in range, so the
/// output has the same length as the input and no startup transient is
/// discarded (the paper decodes full captures).
///
/// The interior — every sample with a full window — is a flat
/// `(prefix[i+half+1] - prefix[i-half]) / (2·half+1)` map, computed through
/// the chunked kernels in [`crate::stream`] so the compiler can lane it;
/// only the `2·half` edge samples take the scalar truncated-window path.
/// Per element the arithmetic is identical either way, so the split is
/// bit-invisible.
pub fn moving_average(xs: &[f64], half: usize) -> Vec<f64> {
    let len = xs.len();
    if len == 0 {
        return Vec::new();
    }
    // Prefix sums for O(n) averaging (a sequential left fold — kept
    // scalar; reassociating it would change the rounding).
    let mut prefix = Vec::with_capacity(len + 1);
    prefix.push(0.0);
    for &x in xs {
        prefix.push(prefix.last().unwrap() + x);
    }
    let edge = |out: &mut Vec<f64>, i: usize| {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(len);
        out.push((prefix[hi] - prefix[lo]) / (hi - lo) as f64);
    };
    let (int_lo, int_hi) = if len > 2 * half { (half, len - half) } else { (0, 0) };
    let mut out = Vec::with_capacity(len);
    for i in 0..int_lo {
        edge(&mut out, i);
    }
    if int_hi > int_lo {
        let n = int_hi - int_lo;
        let diffs = crate::stream::subtract(&prefix[2 * half + 1..2 * half + 1 + n], &prefix[..n]);
        out.extend(crate::stream::scale_div(&diffs, (2 * half + 1) as f64));
    }
    for i in int_hi.max(int_lo)..len {
        edge(&mut out, i);
    }
    out
}

/// The paper's signal-conditioning transform (§3.2 step 1):
/// subtract a centred moving average (window `2·half + 1` samples), then
/// divide by the mean absolute residual so the two backscatter states map to
/// approximately ±1.
///
/// Returns all zeros if the residual is identically zero (e.g. constant
/// input), rather than dividing by zero.
///
/// The detrend and normalise maps run through the chunked
/// [`crate::stream::subtract`] / [`crate::stream::scale_div`] kernels —
/// element-for-element the same operations as the scalar loops they
/// replaced, so conditioned output is bit-identical; the normalisation
/// constant itself ([`crate::stats::mean_abs`]) stays a sequential fold.
pub fn condition(xs: &[f64], half: usize) -> Vec<f64> {
    let ma = moving_average(xs, half);
    let resid = crate::stream::subtract(xs, &ma);
    let scale = crate::stats::mean_abs(&resid);
    if scale == 0.0 {
        return vec![0.0; xs.len()];
    }
    crate::stream::scale_div(&resid, scale)
}

/// Streaming signal conditioner.
///
/// Keeps a trailing window of `window` samples; each pushed sample is
/// detrended by the current window mean and normalised by the window's mean
/// absolute residual. The first few outputs (before the window fills) use
/// the partial window, analogous to [`moving_average`]'s edge handling.
#[derive(Debug, Clone)]
pub struct SlidingConditioner {
    window: usize,
    buf: std::collections::VecDeque<f64>,
    sum: f64,
}

impl SlidingConditioner {
    /// Creates a conditioner with a trailing window of `window` samples.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "conditioner window must be positive");
        SlidingConditioner {
            window,
            buf: std::collections::VecDeque::with_capacity(window),
            sum: 0.0,
        }
    }

    /// Pushes a raw sample, returning the conditioned (zero-mean,
    /// unit-mean-abs) value.
    pub fn push(&mut self, x: f64) -> f64 {
        if self.buf.len() == self.window {
            self.sum -= self.buf.pop_front().unwrap();
        }
        self.buf.push_back(x);
        self.sum += x;
        let mean = self.sum / self.buf.len() as f64;
        let mean_abs_resid = self
            .buf
            .iter()
            .map(|v| (v - mean).abs())
            .sum::<f64>()
            / self.buf.len() as f64;
        if mean_abs_resid == 0.0 {
            0.0
        } else {
            (x - mean) / mean_abs_resid
        }
    }

    /// Number of samples currently buffered.
    pub fn fill(&self) -> usize {
        self.buf.len()
    }

    /// The configured window length.
    pub fn window(&self) -> usize {
        self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_of_constant_is_constant() {
        let xs = vec![3.0; 20];
        let ma = moving_average(&xs, 4);
        assert!(ma.iter().all(|&m| (m - 3.0).abs() < 1e-12));
    }

    #[test]
    fn moving_average_empty() {
        assert!(moving_average(&[], 5).is_empty());
    }

    #[test]
    fn moving_average_window_zero_is_identity() {
        let xs = [1.0, 2.0, -4.0];
        assert_eq!(moving_average(&xs, 0), xs.to_vec());
    }

    #[test]
    fn moving_average_matches_naive() {
        let xs: Vec<f64> = (0..50).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let half = 3;
        let fast = moving_average(&xs, half);
        for (i, &f) in fast.iter().enumerate() {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(xs.len());
            let naive: f64 = xs[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
            assert!((f - naive).abs() < 1e-12, "at {i}");
        }
    }

    #[test]
    fn moving_average_split_is_bitwise_identical_to_uniform_formula() {
        // The head/interior/tail split plus chunked kernels must compute
        // exactly what the original single per-index formula did.
        use crate::SimRng;
        let mut rng = SimRng::new(5).stream("filter-ma-bitwise");
        for len in [1usize, 2, 5, 8, 9, 40, 127] {
            for half in [0usize, 1, 3, 20, 80] {
                let xs: Vec<f64> = (0..len).map(|_| rng.gaussian(0.0, 5.0)).collect();
                let got = moving_average(&xs, half);
                let mut prefix = Vec::with_capacity(len + 1);
                prefix.push(0.0);
                for &x in &xs {
                    prefix.push(prefix.last().unwrap() + x);
                }
                for (i, g) in got.iter().enumerate() {
                    let lo = i.saturating_sub(half);
                    let hi = (i + half + 1).min(len);
                    let want = (prefix[hi] - prefix[lo]) / (hi - lo) as f64;
                    assert_eq!(
                        g.to_bits(),
                        want.to_bits(),
                        "len={len} half={half} i={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn condition_removes_slow_trend() {
        // Square wave riding on a slow ramp; conditioning should recover ±1.
        let n = 400;
        let xs: Vec<f64> = (0..n)
            .map(|i| {
                let trend = i as f64 * 0.01;
                let sq = if (i / 10) % 2 == 0 { 0.5 } else { -0.5 };
                trend + sq
            })
            .collect();
        let y = condition(&xs, 20);
        // Skip edges; interior values should be near ±1.
        let interior = &y[40..n - 40];
        let near_pm1 = interior
            .iter()
            .filter(|v| (v.abs() - 1.0).abs() < 0.35)
            .count();
        assert!(
            near_pm1 as f64 / interior.len() as f64 > 0.9,
            "only {near_pm1}/{} near ±1",
            interior.len()
        );
    }

    #[test]
    fn condition_constant_input_is_zero() {
        let xs = vec![7.5; 64];
        let y = condition(&xs, 8);
        assert!(y.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn condition_output_mean_abs_is_one() {
        let xs: Vec<f64> = (0..200).map(|i| ((i as f64) * 0.7).sin() * 4.0 + 10.0).collect();
        let y = condition(&xs, 25);
        let ma = crate::stats::mean_abs(&y);
        assert!((ma - 1.0).abs() < 1e-9, "mean abs {ma}");
    }

    #[test]
    fn sliding_conditioner_tracks_square_wave() {
        let mut c = SlidingConditioner::new(40);
        let mut outputs = Vec::new();
        for i in 0..400 {
            let sq = if (i / 10) % 2 == 0 { 1.0 } else { -1.0 };
            outputs.push(c.push(5.0 + 0.3 * sq));
        }
        // After warmup, output sign should track the square wave.
        let mut agree = 0;
        let mut total = 0;
        for (i, &y) in outputs.iter().enumerate().skip(80) {
            let sq = if (i / 10) % 2 == 0 { 1.0 } else { -1.0 };
            // skip transition edges
            if i % 10 >= 2 {
                total += 1;
                if y.signum() == sq {
                    agree += 1;
                }
            }
        }
        assert!(
            agree as f64 / total as f64 > 0.95,
            "agree {agree}/{total}"
        );
    }

    #[test]
    fn sliding_conditioner_constant_is_zero() {
        let mut c = SlidingConditioner::new(10);
        for _ in 0..30 {
            assert_eq!(c.push(2.5), 0.0);
        }
    }

    #[test]
    fn sliding_conditioner_window_caps_buffer() {
        let mut c = SlidingConditioner::new(8);
        for i in 0..100 {
            c.push(i as f64);
        }
        assert_eq!(c.fill(), 8);
        assert_eq!(c.window(), 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn sliding_conditioner_zero_window_panics() {
        SlidingConditioner::new(0);
    }
}
