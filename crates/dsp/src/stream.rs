//! Composable streaming blocks over bounded buffers.
//!
//! The paper's reader decodes a *continuous* packet process in real
//! time; the batch decoders in `bs-core` consume a complete capture per
//! call. This module provides the streaming substrate between the two:
//! small blocks in the FutureSDR `Kernel` shape — bounded internal
//! state, a [`StreamBlock::push`] that reports how much input it
//! accepted (backpressure is the caller seeing `accepted < offered`),
//! and a drain side for produced samples.
//!
//! Three kinds of item live here:
//!
//! * the block protocol — [`Sample`], [`Consumed`], [`StreamBlock`] —
//!   and two concrete blocks, [`BoundedQueue`] and [`MovingAvg`];
//! * [`CountMedian`], an exact incremental median for the integer
//!   inter-arrival statistics the decoders key their conditioning on;
//! * the chunked vector kernels ([`axpy`], [`subtract`], [`scale_div`])
//!   the decode hot path is written in terms of. They restructure
//!   per-element loops into flat fixed-width lanes the autovectorizer
//!   can pack, while performing **exactly** the same floating-point
//!   operation on each element in the same order — so the vectorized
//!   decode is bit-identical to the scalar reference (see DESIGN.md §5,
//!   "Streaming decode", for the argument).

use crate::slotstats::WindowStats;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// The sample type flowing between streaming blocks.
///
/// `f64`, not `f32`: the decoders carry a bit-exactness contract against
/// their straight-line references, and narrowing the stream would change
/// every rounding step. The vector kernels lane `f64` instead.
pub type Sample = f64;

/// How much of an offered slice a block accepted.
///
/// Backpressure is explicit and cooperative: a block never buffers more
/// than its bound, and the caller learns how far it got by comparing
/// `accepted` against what it offered.
///
/// ```
/// use bs_dsp::stream::Consumed;
///
/// let c = Consumed::all(3);
/// assert_eq!(c.accepted, 3);
/// assert!(!Consumed::none().any());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Consumed {
    /// Number of samples (or packets, for packet-granular feeders)
    /// accepted from the front of the offered slice.
    pub accepted: usize,
}

impl Consumed {
    /// Everything offered was accepted.
    ///
    /// ```
    /// # use bs_dsp::stream::Consumed;
    /// assert_eq!(Consumed::all(5).accepted, 5);
    /// ```
    pub fn all(n: usize) -> Self {
        Consumed { accepted: n }
    }

    /// Nothing was accepted — the block is full (backpressure).
    ///
    /// ```
    /// # use bs_dsp::stream::Consumed;
    /// assert_eq!(Consumed::none().accepted, 0);
    /// ```
    pub fn none() -> Self {
        Consumed { accepted: 0 }
    }

    /// Whether any samples were accepted.
    ///
    /// ```
    /// # use bs_dsp::stream::Consumed;
    /// assert!(Consumed::all(1).any());
    /// assert!(!Consumed::none().any());
    /// ```
    pub fn any(&self) -> bool {
        self.accepted > 0
    }
}

/// A streaming block: push samples in, drain produced samples out.
///
/// The contract, in the shape of FutureSDR's `Kernel::work`:
///
/// * `push` accepts a **prefix** of the offered slice and says how long
///   that prefix was; it never reorders, drops from the middle, or
///   blocks. `accepted < offered` is backpressure — retry the remainder
///   after draining.
/// * `drain` removes and returns everything the block has produced so
///   far; between drains the block's resident state stays within its
///   construction-time bound.
///
/// ```
/// use bs_dsp::stream::{MovingAvg, StreamBlock};
///
/// let mut ma = MovingAvg::new(2, 8);
/// ma.push(&[1.0, 3.0, 5.0]);
/// // Trailing window of 2: [1], [1,3], [3,5].
/// assert_eq!(ma.drain(), vec![1.0, 2.0, 4.0]);
/// ```
pub trait StreamBlock {
    /// Offers `samples`; returns how many were accepted from the front.
    fn push(&mut self, samples: &[Sample]) -> Consumed;

    /// Removes and returns the samples produced so far, in order.
    fn drain(&mut self) -> Vec<Sample>;
}

/// A bounded FIFO of samples: the simplest block, useful as the elastic
/// buffer between a fast producer and a slow consumer.
///
/// ```
/// use bs_dsp::stream::{BoundedQueue, StreamBlock};
///
/// let mut q = BoundedQueue::new(2);
/// assert_eq!(q.push(&[1.0, 2.0, 3.0]).accepted, 2); // backpressure
/// assert_eq!(q.drain(), vec![1.0, 2.0]);
/// assert_eq!(q.push(&[3.0]).accepted, 1); // space again after drain
/// ```
#[derive(Debug, Clone)]
pub struct BoundedQueue {
    buf: VecDeque<Sample>,
    capacity: usize,
}

impl BoundedQueue {
    /// A queue holding at most `capacity` samples.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    ///
    /// ```
    /// # use bs_dsp::stream::BoundedQueue;
    /// assert_eq!(BoundedQueue::new(4).capacity(), 4);
    /// ```
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            buf: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Samples currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the queue holds no samples.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The construction-time bound on resident samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl StreamBlock for BoundedQueue {
    fn push(&mut self, samples: &[Sample]) -> Consumed {
        let take = samples.len().min(self.capacity - self.buf.len());
        self.buf.extend(&samples[..take]);
        Consumed::all(take)
    }

    fn drain(&mut self) -> Vec<Sample> {
        self.buf.drain(..).collect()
    }
}

/// Streaming trailing moving average over the last `window` samples,
/// built on [`WindowStats`] so its running sum follows the same
/// left-fold accumulation order as a batch rebuild of the window.
///
/// Output sample `i` is the mean of input samples
/// `[i.saturating_sub(window-1), i]` — the warm-up outputs average the
/// partial window, matching how a ring fills. The output buffer is
/// bounded by `out_capacity`; a full output buffer backpressures
/// `push`.
///
/// ```
/// use bs_dsp::stream::{MovingAvg, StreamBlock};
///
/// let mut ma = MovingAvg::new(3, 4);
/// assert_eq!(ma.push(&[3.0, 3.0, 3.0, 9.0, 9.0]).accepted, 4); // out full
/// assert_eq!(ma.drain(), vec![3.0, 3.0, 3.0, 5.0]);
/// ma.push(&[9.0]);
/// assert_eq!(ma.drain(), vec![7.0]); // window now [3, 9, 9]
/// ```
#[derive(Debug, Clone)]
pub struct MovingAvg {
    win: WindowStats,
    out: Vec<Sample>,
    out_capacity: usize,
}

impl MovingAvg {
    /// A trailing average over `window` samples with an output buffer of
    /// `out_capacity`.
    ///
    /// # Panics
    /// Panics if `window == 0` or `out_capacity == 0`.
    pub fn new(window: usize, out_capacity: usize) -> Self {
        assert!(out_capacity > 0, "output capacity must be positive");
        MovingAvg {
            win: WindowStats::new(window),
            out: Vec::with_capacity(out_capacity),
            out_capacity,
        }
    }

    /// The window length being averaged over.
    pub fn window(&self) -> usize {
        self.win.capacity()
    }
}

impl StreamBlock for MovingAvg {
    fn push(&mut self, samples: &[Sample]) -> Consumed {
        let take = samples.len().min(self.out_capacity - self.out.len());
        for &x in &samples[..take] {
            self.win.push(x);
            // The window is never empty here, so the mean exists.
            self.out.push(self.win.mean().unwrap());
        }
        Consumed::all(take)
    }

    fn drain(&mut self) -> Vec<Sample> {
        std::mem::take(&mut self.out)
    }
}

/// Exact incremental median of a `u64` multiset, via a count map.
///
/// The decoders derive their conditioning window from the **median
/// inter-arrival gap** of the packet stream; the batch path computes it
/// by sorting all gaps and taking index `len / 2`. This type maintains
/// the same element online: `median()` walks the sorted count map to
/// the item at index `len / 2`, which is *identical* (not just close)
/// to the sort-then-index result, so a streaming accumulator derives
/// the same conditioning window the batch decode would.
///
/// ```
/// use bs_dsp::stream::CountMedian;
///
/// let mut m = CountMedian::new();
/// for gap in [300, 100, 200, 100] {
///     m.push(gap);
/// }
/// let mut sorted = vec![300, 100, 200, 100];
/// sorted.sort_unstable();
/// assert_eq!(m.median(), Some(sorted[sorted.len() / 2]));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CountMedian {
    counts: BTreeMap<u64, u64>,
    len: u64,
}

impl CountMedian {
    /// An empty multiset.
    pub fn new() -> Self {
        CountMedian::default()
    }

    /// Inserts one value. O(log distinct-values).
    pub fn push(&mut self, v: u64) {
        *self.counts.entry(v).or_insert(0) += 1;
        self.len += 1;
    }

    /// Number of values inserted so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether no values have been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The element at index `len / 2` of the sorted multiset — the
    /// upper median, matching `sorted[len / 2]` exactly. `None` when
    /// empty.
    pub fn median(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let target = self.len / 2;
        let mut seen = 0u64;
        for (&v, &c) in &self.counts {
            seen += c;
            if seen > target {
                return Some(v);
            }
        }
        unreachable!("count map totals disagree with len")
    }
}

// ---- chunked vector kernels ----

/// Lane width of the chunked kernels. 8 × f64 = one cache line; wide
/// enough for any SIMD unit the autovectorizer targets, and the
/// remainder loop is at most 7 scalar iterations.
pub const LANES: usize = 8;

/// `acc[i] += w * xs[i]` for every element — the MRC combining kernel.
///
/// Chunked into fixed [`LANES`]-wide blocks so the compiler can pack the
/// multiply-adds; each element still receives exactly one
/// `acc[i] + w * xs[i]` in index order, so folding channels through
/// repeated `axpy` calls reproduces the scalar per-packet
/// `Σ w_c · x_c[i]` accumulation **bit for bit** (same additions, same
/// order — chunking unrolls the loop, it never reassociates across
/// elements).
///
/// # Panics
/// Panics if the slices differ in length.
///
/// ```
/// use bs_dsp::stream::axpy;
///
/// let mut acc = vec![0.0; 3];
/// axpy(&mut acc, 2.0, &[1.0, 2.0, 3.0]);
/// axpy(&mut acc, -1.0, &[0.0, 1.0, 2.0]);
/// assert_eq!(acc, vec![2.0, 3.0, 4.0]);
/// ```
pub fn axpy(acc: &mut [f64], w: f64, xs: &[f64]) {
    assert_eq!(acc.len(), xs.len(), "axpy length mismatch");
    let mut a = acc.chunks_exact_mut(LANES);
    let mut x = xs.chunks_exact(LANES);
    for (ac, xc) in a.by_ref().zip(x.by_ref()) {
        for k in 0..LANES {
            ac[k] += w * xc[k];
        }
    }
    for (ac, &xv) in a.into_remainder().iter_mut().zip(x.remainder()) {
        *ac += w * xv;
    }
}

/// Element-wise `xs[i] - ys[i]` — the detrend kernel of the conditioner.
///
/// Same chunking (and the same bit-exactness argument) as [`axpy`].
///
/// # Panics
/// Panics if the slices differ in length.
///
/// ```
/// use bs_dsp::stream::subtract;
///
/// assert_eq!(subtract(&[3.0, 5.0], &[1.0, 2.0]), vec![2.0, 3.0]);
/// ```
pub fn subtract(xs: &[f64], ys: &[f64]) -> Vec<f64> {
    assert_eq!(xs.len(), ys.len(), "subtract length mismatch");
    let mut out = vec![0.0; xs.len()];
    let mut o = out.chunks_exact_mut(LANES);
    let mut x = xs.chunks_exact(LANES);
    let mut y = ys.chunks_exact(LANES);
    for ((oc, xc), yc) in o.by_ref().zip(x.by_ref()).zip(y.by_ref()) {
        for k in 0..LANES {
            oc[k] = xc[k] - yc[k];
        }
    }
    for ((ov, &xv), &yv) in o
        .into_remainder()
        .iter_mut()
        .zip(x.remainder())
        .zip(y.remainder())
    {
        *ov = xv - yv;
    }
    out
}

/// Element-wise `xs[i] / d` — the normalisation kernel of the
/// conditioner.
///
/// Divides rather than multiplying by a reciprocal: `x / d` and
/// `x * (1.0 / d)` round differently, and the conditioner's output is
/// pinned bitwise against the scalar reference.
///
/// ```
/// use bs_dsp::stream::scale_div;
///
/// assert_eq!(scale_div(&[2.0, 4.0, 6.0], 2.0), vec![1.0, 2.0, 3.0]);
/// ```
pub fn scale_div(xs: &[f64], d: f64) -> Vec<f64> {
    let mut out = vec![0.0; xs.len()];
    let mut o = out.chunks_exact_mut(LANES);
    let mut x = xs.chunks_exact(LANES);
    for (oc, xc) in o.by_ref().zip(x.by_ref()) {
        for k in 0..LANES {
            oc[k] = xc[k] / d;
        }
    }
    for (ov, &xv) in o.into_remainder().iter_mut().zip(x.remainder()) {
        *ov = xv / d;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    #[test]
    fn bounded_queue_backpressures_and_drains() {
        let mut q = BoundedQueue::new(3);
        assert!(q.is_empty());
        assert_eq!(q.push(&[1.0, 2.0]).accepted, 2);
        assert_eq!(q.push(&[3.0, 4.0]).accepted, 1);
        assert_eq!(q.push(&[4.0]), Consumed::none());
        assert_eq!(q.len(), 3);
        assert_eq!(q.drain(), vec![1.0, 2.0, 3.0]);
        assert_eq!(q.push(&[4.0]).accepted, 1);
        assert_eq!(q.drain(), vec![4.0]);
    }

    #[test]
    fn moving_avg_matches_direct_windowed_mean() {
        let mut rng = SimRng::new(7).stream("stream-ma");
        let xs: Vec<f64> = (0..200).map(|_| rng.gaussian(0.0, 3.0)).collect();
        let window = 13;
        let mut ma = MovingAvg::new(window, xs.len());
        assert_eq!(ma.push(&xs).accepted, xs.len());
        let got = ma.drain();
        for (i, &g) in got.iter().enumerate() {
            let lo = (i + 1).saturating_sub(window);
            let slice = &xs[lo..=i];
            let want = slice.iter().sum::<f64>() / slice.len() as f64;
            assert!((g - want).abs() < 1e-9, "i={i}: {g} vs {want}");
        }
    }

    #[test]
    fn moving_avg_backpressure_resumes_cleanly() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut ma = MovingAvg::new(2, 2);
        let mut out = Vec::new();
        let mut fed = 0;
        while fed < xs.len() {
            let c = ma.push(&xs[fed..]);
            fed += c.accepted;
            out.extend(ma.drain());
            assert!(c.any() || !out.is_empty());
        }
        out.extend(ma.drain());
        assert_eq!(out, vec![1.0, 1.5, 2.5, 3.5, 4.5]);
    }

    #[test]
    fn count_median_matches_sort_then_index() {
        let mut rng = SimRng::new(9).stream("stream-median");
        for round in 0..50 {
            let n = 1 + (round * 7) % 40;
            let mut m = CountMedian::new();
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                let v = rng.gaussian(500.0, 200.0).abs() as u64 % 17;
                m.push(v);
                vals.push(v);
                let mut sorted = vals.clone();
                sorted.sort_unstable();
                assert_eq!(m.median(), Some(sorted[sorted.len() / 2]));
                assert_eq!(m.len(), vals.len() as u64);
            }
        }
        assert_eq!(CountMedian::new().median(), None);
    }

    #[test]
    fn axpy_bitwise_matches_scalar_fold() {
        let mut rng = SimRng::new(11).stream("stream-axpy");
        for len in [0usize, 1, 7, 8, 9, 64, 100] {
            let rows: Vec<Vec<f64>> = (0..5)
                .map(|_| (0..len).map(|_| rng.gaussian(0.0, 1e3)).collect())
                .collect();
            let ws: Vec<f64> = (0..5).map(|_| rng.gaussian(0.0, 2.0)).collect();
            let mut acc = vec![0.0; len];
            for (row, &w) in rows.iter().zip(&ws) {
                axpy(&mut acc, w, row);
            }
            for i in 0..len {
                let mut want = 0.0;
                for (row, &w) in rows.iter().zip(&ws) {
                    want += w * row[i];
                }
                assert_eq!(acc[i].to_bits(), want.to_bits(), "len={len} i={i}");
            }
        }
    }

    #[test]
    fn subtract_and_scale_div_bitwise_match_scalar() {
        let mut rng = SimRng::new(12).stream("stream-elemwise");
        for len in [0usize, 1, 7, 8, 9, 33] {
            let xs: Vec<f64> = (0..len).map(|_| rng.gaussian(0.0, 1e3)).collect();
            let ys: Vec<f64> = (0..len).map(|_| rng.gaussian(0.0, 1e3)).collect();
            let d = rng.gaussian(1.0, 0.3).abs() + 0.1;
            let sub = subtract(&xs, &ys);
            let div = scale_div(&xs, d);
            for i in 0..len {
                assert_eq!(sub[i].to_bits(), (xs[i] - ys[i]).to_bits());
                assert_eq!(div[i].to_bits(), (xs[i] / d).to_bits());
            }
        }
    }
}
