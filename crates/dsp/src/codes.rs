//! Line codes used by the tag.
//!
//! * **Barker codes** — the prototype uses a 13-bit Barker code as its
//!   uplink preamble "for its good autocorrelation properties" (§6). We also
//!   provide the 7- and 11-chip codes for experimentation.
//! * **Orthogonal code pairs** — the long-range uplink (§3.4) represents the
//!   one and zero bits with two orthogonal length-L codes; the reader
//!   correlates with both and picks the larger. Correlating over L chips
//!   buys an SNR gain proportional to L, which is what extends the range to
//!   2.1 m in Fig. 20.

/// The 13-chip Barker code (peak sidelobe 1/13).
pub const BARKER13: [i8; 13] = [1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1];

/// The 11-chip Barker code.
pub const BARKER11: [i8; 11] = [1, 1, 1, -1, -1, -1, 1, -1, -1, 1, -1];

/// The 7-chip Barker code.
pub const BARKER7: [i8; 7] = [1, 1, 1, -1, -1, 1, -1];

/// Returns the Barker code of the given length, if one exists.
/// Defined lengths: 7, 11, 13.
pub fn barker(len: usize) -> Option<&'static [i8]> {
    match len {
        7 => Some(&BARKER7),
        11 => Some(&BARKER11),
        13 => Some(&BARKER13),
        _ => None,
    }
}

/// A pair of mutually-orthogonal ±1 codes of equal length, representing the
/// tag's one and zero bits on the long-range uplink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrthogonalPair {
    /// Code transmitted for a `1` bit.
    pub one: Vec<i8>,
    /// Code transmitted for a `0` bit.
    pub zero: Vec<i8>,
}

impl OrthogonalPair {
    /// Builds an orthogonal pair of length `len` (must be even and ≥ 2).
    ///
    /// Construction: the `one` code is an alternating ±1 square wave of
    /// period 2; the `zero` code is a square wave of period 4 truncated to
    /// `len`. For even `len` divisible by 4 these are exactly orthogonal;
    /// for even lengths not divisible by 4 we flip the final chip of `zero`
    /// to restore exact orthogonality. The codes are also both zero-mean,
    /// which makes them immune to residual DC left by signal conditioning.
    ///
    /// # Panics
    /// Panics if `len < 2` or `len` is odd.
    pub fn new(len: usize) -> Self {
        assert!(len >= 2 && len % 2 == 0, "code length must be even and >= 2");
        let one: Vec<i8> = (0..len).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
        let mut zero: Vec<i8> = (0..len)
            .map(|i| if (i / 2) % 2 == 0 { 1 } else { -1 })
            .collect();
        // Exact-orthogonality fixup for len % 4 == 2.
        let dot: i32 = one
            .iter()
            .zip(&zero)
            .map(|(&a, &b)| i32::from(a) * i32::from(b))
            .sum();
        if dot != 0 {
            // Flipping the last chip changes the dot product by ∓2·one[last].
            // For this construction |dot| == 2 when len % 4 == 2, so one flip
            // suffices.
            let last = len - 1;
            zero[last] = -zero[last];
            debug_assert_eq!(
                one.iter()
                    .zip(&zero)
                    .map(|(&a, &b)| i32::from(a) * i32::from(b))
                    .sum::<i32>(),
                0
            );
        }
        OrthogonalPair { one, zero }
    }

    /// Code length L.
    pub fn len(&self) -> usize {
        self.one.len()
    }

    /// Always false: codes have length ≥ 2 by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The code for the given bit value.
    pub fn code_for(&self, bit: bool) -> &[i8] {
        if bit {
            &self.one
        } else {
            &self.zero
        }
    }

    /// Expands a bit sequence into the chip sequence the tag transmits.
    pub fn encode(&self, bits: &[bool]) -> Vec<i8> {
        let mut chips = Vec::with_capacity(bits.len() * self.len());
        for &b in bits {
            chips.extend_from_slice(self.code_for(b));
        }
        chips
    }

    /// Decodes one bit from a window of `len()` conditioned channel samples
    /// by correlating with both codes and picking the larger (§3.4).
    /// Returns the bit and the winning correlation margin.
    ///
    /// # Panics
    /// Panics if `window.len() != self.len()`.
    pub fn decode_bit(&self, window: &[f64]) -> (bool, f64) {
        let c1 = crate::correlate::dot(window, &self.one);
        let c0 = crate::correlate::dot(window, &self.zero);
        ((c1 >= c0), (c1 - c0).abs())
    }
}

/// Autocorrelation peak-to-max-sidelobe ratio of a ±1 code — a quality
/// metric used in tests and available to callers tuning preambles.
pub fn sidelobe_ratio(code: &[i8]) -> f64 {
    let n = code.len();
    if n == 0 {
        return 0.0;
    }
    let mut max_side = 0i64;
    for lag in 1..n {
        let s: i64 = (0..n - lag)
            .map(|i| i64::from(code[i]) * i64::from(code[i + lag]))
            .sum();
        max_side = max_side.max(s.abs());
    }
    if max_side == 0 {
        f64::INFINITY
    } else {
        n as f64 / max_side as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barker13_is_13_chips_of_pm1() {
        assert_eq!(BARKER13.len(), 13);
        assert!(BARKER13.iter().all(|&c| c == 1 || c == -1));
    }

    #[test]
    fn barker_lookup() {
        assert_eq!(barker(13), Some(&BARKER13[..]));
        assert_eq!(barker(11), Some(&BARKER11[..]));
        assert_eq!(barker(7), Some(&BARKER7[..]));
        assert_eq!(barker(5), None);
    }

    #[test]
    fn all_barker_codes_have_unit_sidelobes() {
        for code in [&BARKER7[..], &BARKER11[..], &BARKER13[..]] {
            let n = code.len();
            for lag in 1..n {
                let s: i32 = (0..n - lag)
                    .map(|i| i32::from(code[i]) * i32::from(code[i + lag]))
                    .sum();
                assert!(s.abs() <= 1, "lag {lag} sidelobe {s} for len {n}");
            }
        }
    }

    #[test]
    fn barker13_sidelobe_ratio_is_13() {
        assert_eq!(sidelobe_ratio(&BARKER13), 13.0);
    }

    #[test]
    fn orthogonal_pair_is_orthogonal_for_many_lengths() {
        for len in (2..=160).step_by(2) {
            let p = OrthogonalPair::new(len);
            let dot: i32 = p
                .one
                .iter()
                .zip(&p.zero)
                .map(|(&a, &b)| i32::from(a) * i32::from(b))
                .sum();
            assert_eq!(dot, 0, "len {len}");
            assert_eq!(p.len(), len);
        }
    }

    #[test]
    fn orthogonal_pair_codes_are_near_zero_mean() {
        for len in [20usize, 150] {
            let p = OrthogonalPair::new(len);
            let s1: i32 = p.one.iter().map(|&c| i32::from(c)).sum();
            let s0: i32 = p.zero.iter().map(|&c| i32::from(c)).sum();
            assert_eq!(s1, 0, "one code len {len}");
            assert!(s0.abs() <= 2, "zero code len {len} sum {s0}");
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn orthogonal_pair_odd_length_panics() {
        OrthogonalPair::new(7);
    }

    #[test]
    fn encode_concatenates_codes() {
        let p = OrthogonalPair::new(4);
        let chips = p.encode(&[true, false]);
        assert_eq!(chips.len(), 8);
        assert_eq!(&chips[..4], &p.one[..]);
        assert_eq!(&chips[4..], &p.zero[..]);
    }

    #[test]
    fn decode_bit_recovers_clean_codes() {
        let p = OrthogonalPair::new(20);
        let one_sig: Vec<f64> = p.one.iter().map(|&c| f64::from(c)).collect();
        let zero_sig: Vec<f64> = p.zero.iter().map(|&c| f64::from(c)).collect();
        assert!(p.decode_bit(&one_sig).0);
        assert!(!p.decode_bit(&zero_sig).0);
    }

    #[test]
    fn decode_bit_survives_heavy_noise_at_long_length() {
        // The §3.4 claim: correlation over L chips gains SNR ∝ L. At chip
        // SNR far below 0 dB, a length-150 code still decodes.
        use crate::SimRng;
        let p = OrthogonalPair::new(150);
        let mut rng = SimRng::new(42).stream("code-noise");
        let mut errors = 0;
        let trials = 200;
        for t in 0..trials {
            let bit = t % 2 == 0;
            // Chip SNR ≈ -10 dB; correlation gain sqrt(L/2) ≈ 8.7 makes the
            // per-bit error probability Q(2.6) ≈ 0.5 %.
            let sig: Vec<f64> = p
                .code_for(bit)
                .iter()
                .map(|&c| 0.3 * f64::from(c) + rng.gaussian(0.0, 1.0))
                .collect();
            if p.decode_bit(&sig).0 != bit {
                errors += 1;
            }
        }
        assert!(errors <= 6, "errors {errors}/{trials}");
    }

    #[test]
    fn short_code_fails_where_long_code_succeeds() {
        // Monotonic benefit of code length — the mechanism behind Fig. 20.
        use crate::SimRng;
        let noise_sigma = 1.0;
        let amp = 0.25;
        let err_rate = |len: usize| {
            let p = OrthogonalPair::new(len);
            let mut rng = SimRng::new(7).stream("len-sweep").substream(len as u64);
            let trials = 400;
            let mut errors = 0;
            for t in 0..trials {
                let bit = t % 2 == 0;
                let sig: Vec<f64> = p
                    .code_for(bit)
                    .iter()
                    .map(|&c| amp * f64::from(c) + rng.gaussian(0.0, noise_sigma))
                    .collect();
                if p.decode_bit(&sig).0 != bit {
                    errors += 1;
                }
            }
            errors as f64 / trials as f64
        };
        let short = err_rate(2);
        let long = err_rate(200);
        assert!(
            long < short,
            "long-code BER {long} should beat short-code BER {short}"
        );
        assert!(long < 0.02, "long-code BER {long}");
    }

    #[test]
    fn sidelobe_ratio_edge_cases() {
        assert_eq!(sidelobe_ratio(&[]), 0.0);
        // A length-2 orthogonal-ish code [1, -1]: lag-1 autocorr = -1.
        assert_eq!(sidelobe_ratio(&[1, -1]), 2.0);
    }
}
