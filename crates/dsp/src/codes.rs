//! Line codes used by the tag, plus the finite-field arithmetic the
//! transport's forward-error-correction layer builds on.
//!
//! * **Barker codes** — the prototype uses a 13-bit Barker code as its
//!   uplink preamble "for its good autocorrelation properties" (§6). We also
//!   provide the 7- and 11-chip codes for experimentation.
//! * **Orthogonal code pairs** — the long-range uplink (§3.4) represents the
//!   one and zero bits with two orthogonal length-L codes; the reader
//!   correlates with both and picks the larger. Correlating over L chips
//!   buys an SNR gain proportional to L, which is what extends the range to
//!   2.1 m in Fig. 20.
//! * **[`gf256`]** — table-driven GF(2⁸) arithmetic (the AES/CD-ROM field,
//!   primitive polynomial `x⁸+x⁴+x³+x²+1`), the symbol field of the
//!   Reed-Solomon coder in `bs_net::fec`. Offline like everything else in
//!   the workspace: the log/antilog tables are built by a `const fn` at
//!   compile time, no external crate involved.

/// The 13-chip Barker code (peak sidelobe 1/13).
pub const BARKER13: [i8; 13] = [1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1];

/// The 11-chip Barker code.
pub const BARKER11: [i8; 11] = [1, 1, 1, -1, -1, -1, 1, -1, -1, 1, -1];

/// The 7-chip Barker code.
pub const BARKER7: [i8; 7] = [1, 1, 1, -1, -1, 1, -1];

/// Returns the Barker code of the given length, if one exists.
/// Defined lengths: 7, 11, 13.
pub fn barker(len: usize) -> Option<&'static [i8]> {
    match len {
        7 => Some(&BARKER7),
        11 => Some(&BARKER11),
        13 => Some(&BARKER13),
        _ => None,
    }
}

/// A pair of mutually-orthogonal ±1 codes of equal length, representing the
/// tag's one and zero bits on the long-range uplink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrthogonalPair {
    /// Code transmitted for a `1` bit.
    pub one: Vec<i8>,
    /// Code transmitted for a `0` bit.
    pub zero: Vec<i8>,
}

impl OrthogonalPair {
    /// Builds an orthogonal pair of length `len` (must be even and ≥ 2).
    ///
    /// Construction: the `one` code is an alternating ±1 square wave of
    /// period 2; the `zero` code is a square wave of period 4 truncated to
    /// `len`. For even `len` divisible by 4 these are exactly orthogonal;
    /// for even lengths not divisible by 4 we flip the final chip of `zero`
    /// to restore exact orthogonality. The codes are also both zero-mean,
    /// which makes them immune to residual DC left by signal conditioning.
    ///
    /// # Panics
    /// Panics if `len < 2` or `len` is odd.
    pub fn new(len: usize) -> Self {
        assert!(len >= 2 && len % 2 == 0, "code length must be even and >= 2");
        let one: Vec<i8> = (0..len).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
        let mut zero: Vec<i8> = (0..len)
            .map(|i| if (i / 2) % 2 == 0 { 1 } else { -1 })
            .collect();
        // Exact-orthogonality fixup for len % 4 == 2.
        let dot: i32 = one
            .iter()
            .zip(&zero)
            .map(|(&a, &b)| i32::from(a) * i32::from(b))
            .sum();
        if dot != 0 {
            // Flipping the last chip changes the dot product by ∓2·one[last].
            // For this construction |dot| == 2 when len % 4 == 2, so one flip
            // suffices.
            let last = len - 1;
            zero[last] = -zero[last];
            debug_assert_eq!(
                one.iter()
                    .zip(&zero)
                    .map(|(&a, &b)| i32::from(a) * i32::from(b))
                    .sum::<i32>(),
                0
            );
        }
        OrthogonalPair { one, zero }
    }

    /// Code length L.
    pub fn len(&self) -> usize {
        self.one.len()
    }

    /// Always false: codes have length ≥ 2 by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The code for the given bit value.
    pub fn code_for(&self, bit: bool) -> &[i8] {
        if bit {
            &self.one
        } else {
            &self.zero
        }
    }

    /// Expands a bit sequence into the chip sequence the tag transmits.
    pub fn encode(&self, bits: &[bool]) -> Vec<i8> {
        let mut chips = Vec::with_capacity(bits.len() * self.len());
        for &b in bits {
            chips.extend_from_slice(self.code_for(b));
        }
        chips
    }

    /// Decodes one bit from a window of `len()` conditioned channel samples
    /// by correlating with both codes and picking the larger (§3.4).
    /// Returns the bit and the winning correlation margin.
    ///
    /// # Panics
    /// Panics if `window.len() != self.len()`.
    pub fn decode_bit(&self, window: &[f64]) -> (bool, f64) {
        let c1 = crate::correlate::dot(window, &self.one);
        let c0 = crate::correlate::dot(window, &self.zero);
        ((c1 >= c0), (c1 - c0).abs())
    }
}

/// Table-driven arithmetic in GF(2⁸) with primitive polynomial
/// `x⁸+x⁴+x³+x²+1` (0x11D) and generator α = 2.
///
/// This is the symbol field of the Reed-Solomon coder in `bs_net::fec`.
/// The antilog table is doubled (512 entries) so products of two logs
/// never need a modulo: `EXP[LOG[a] + LOG[b]]` is always in range.
/// All tables are computed by a `const fn` at compile time.
///
/// ```
/// use bs_dsp::codes::gf256;
/// let a = 0x53u8;
/// let inv = gf256::inv(a);
/// assert_eq!(gf256::mul(a, inv), 1);
/// assert_eq!(gf256::add(a, a), 0); // characteristic 2: addition is XOR
/// ```
pub mod gf256 {
    /// Field order.
    pub const ORDER: usize = 256;

    /// The primitive polynomial `x⁸+x⁴+x³+x²+1`, as the reduction mask
    /// applied when a product overflows 8 bits.
    pub const POLY: u16 = 0x11D;

    const fn build_tables() -> ([u8; 512], [u8; 256]) {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        let mut i = 0usize;
        while i < 255 {
            exp[i] = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
            i += 1;
        }
        // Double the antilog table so EXP[la + lb] needs no reduction
        // (la + lb <= 508), and fill the seam at 255 with α⁰ = 1.
        while i < 512 {
            exp[i] = exp[i - 255];
            i += 1;
        }
        (exp, log)
    }

    const TABLES: ([u8; 512], [u8; 256]) = build_tables();

    /// Antilog table: `EXP[i] = α^i`, doubled to 512 entries.
    pub const EXP: [u8; 512] = TABLES.0;

    /// Log table: `LOG[x] = log_α(x)` for x ≠ 0; `LOG[0]` is 0 and must
    /// never be consulted (every accessor below guards the zero case).
    pub const LOG: [u8; 256] = TABLES.1;

    /// Field addition (= subtraction): XOR.
    #[inline]
    pub const fn add(a: u8, b: u8) -> u8 {
        a ^ b
    }

    /// Field multiplication via the log/antilog tables.
    #[inline]
    pub fn mul(a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
        }
    }

    /// Field division `a / b`.
    ///
    /// # Panics
    /// Panics on division by zero.
    #[inline]
    pub fn div(a: u8, b: u8) -> u8 {
        assert!(b != 0, "GF(256) division by zero");
        if a == 0 {
            0
        } else {
            EXP[255 + LOG[a as usize] as usize - LOG[b as usize] as usize]
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on `inv(0)`.
    #[inline]
    pub fn inv(a: u8) -> u8 {
        assert!(a != 0, "GF(256) inverse of zero");
        EXP[255 - LOG[a as usize] as usize]
    }

    /// `a` raised to the (possibly negative) power `n`.
    #[inline]
    pub fn pow(a: u8, n: i32) -> u8 {
        if a == 0 {
            return if n == 0 { 1 } else { 0 };
        }
        let l = i64::from(LOG[a as usize]) * i64::from(n);
        EXP[l.rem_euclid(255) as usize]
    }

    /// `α^i` for any integer exponent (taken mod 255).
    #[inline]
    pub fn alpha_pow(i: i32) -> u8 {
        EXP[(i.rem_euclid(255)) as usize]
    }

    /// Discrete log base α of a non-zero element.
    ///
    /// # Panics
    /// Panics on `log(0)`.
    #[inline]
    pub fn log(a: u8) -> u8 {
        assert!(a != 0, "GF(256) log of zero");
        LOG[a as usize]
    }

    /// Evaluates the polynomial `poly` (coefficients in descending
    /// degree order) at `x`, by Horner's rule.
    pub fn poly_eval(poly: &[u8], x: u8) -> u8 {
        let mut y = 0u8;
        for &c in poly {
            y = add(mul(y, x), c);
        }
        y
    }

    /// Product of two polynomials (descending-order coefficients).
    pub fn poly_mul(a: &[u8], b: &[u8]) -> Vec<u8> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u8; a.len() + b.len() - 1];
        for (i, &ca) in a.iter().enumerate() {
            if ca == 0 {
                continue;
            }
            for (j, &cb) in b.iter().enumerate() {
                out[i + j] ^= mul(ca, cb);
            }
        }
        out
    }
}

/// Autocorrelation peak-to-max-sidelobe ratio of a ±1 code — a quality
/// metric used in tests and available to callers tuning preambles.
pub fn sidelobe_ratio(code: &[i8]) -> f64 {
    let n = code.len();
    if n == 0 {
        return 0.0;
    }
    let mut max_side = 0i64;
    for lag in 1..n {
        let s: i64 = (0..n - lag)
            .map(|i| i64::from(code[i]) * i64::from(code[i + lag]))
            .sum();
        max_side = max_side.max(s.abs());
    }
    if max_side == 0 {
        f64::INFINITY
    } else {
        n as f64 / max_side as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barker13_is_13_chips_of_pm1() {
        assert_eq!(BARKER13.len(), 13);
        assert!(BARKER13.iter().all(|&c| c == 1 || c == -1));
    }

    #[test]
    fn barker_lookup() {
        assert_eq!(barker(13), Some(&BARKER13[..]));
        assert_eq!(barker(11), Some(&BARKER11[..]));
        assert_eq!(barker(7), Some(&BARKER7[..]));
        assert_eq!(barker(5), None);
    }

    #[test]
    fn all_barker_codes_have_unit_sidelobes() {
        for code in [&BARKER7[..], &BARKER11[..], &BARKER13[..]] {
            let n = code.len();
            for lag in 1..n {
                let s: i32 = (0..n - lag)
                    .map(|i| i32::from(code[i]) * i32::from(code[i + lag]))
                    .sum();
                assert!(s.abs() <= 1, "lag {lag} sidelobe {s} for len {n}");
            }
        }
    }

    #[test]
    fn barker13_sidelobe_ratio_is_13() {
        assert_eq!(sidelobe_ratio(&BARKER13), 13.0);
    }

    #[test]
    fn orthogonal_pair_is_orthogonal_for_many_lengths() {
        for len in (2..=160).step_by(2) {
            let p = OrthogonalPair::new(len);
            let dot: i32 = p
                .one
                .iter()
                .zip(&p.zero)
                .map(|(&a, &b)| i32::from(a) * i32::from(b))
                .sum();
            assert_eq!(dot, 0, "len {len}");
            assert_eq!(p.len(), len);
        }
    }

    #[test]
    fn orthogonal_pair_codes_are_near_zero_mean() {
        for len in [20usize, 150] {
            let p = OrthogonalPair::new(len);
            let s1: i32 = p.one.iter().map(|&c| i32::from(c)).sum();
            let s0: i32 = p.zero.iter().map(|&c| i32::from(c)).sum();
            assert_eq!(s1, 0, "one code len {len}");
            assert!(s0.abs() <= 2, "zero code len {len} sum {s0}");
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn orthogonal_pair_odd_length_panics() {
        OrthogonalPair::new(7);
    }

    #[test]
    fn encode_concatenates_codes() {
        let p = OrthogonalPair::new(4);
        let chips = p.encode(&[true, false]);
        assert_eq!(chips.len(), 8);
        assert_eq!(&chips[..4], &p.one[..]);
        assert_eq!(&chips[4..], &p.zero[..]);
    }

    #[test]
    fn decode_bit_recovers_clean_codes() {
        let p = OrthogonalPair::new(20);
        let one_sig: Vec<f64> = p.one.iter().map(|&c| f64::from(c)).collect();
        let zero_sig: Vec<f64> = p.zero.iter().map(|&c| f64::from(c)).collect();
        assert!(p.decode_bit(&one_sig).0);
        assert!(!p.decode_bit(&zero_sig).0);
    }

    #[test]
    fn decode_bit_survives_heavy_noise_at_long_length() {
        // The §3.4 claim: correlation over L chips gains SNR ∝ L. At chip
        // SNR far below 0 dB, a length-150 code still decodes.
        use crate::SimRng;
        let p = OrthogonalPair::new(150);
        let mut rng = SimRng::new(42).stream("code-noise");
        let mut errors = 0;
        let trials = 200;
        for t in 0..trials {
            let bit = t % 2 == 0;
            // Chip SNR ≈ -10 dB; correlation gain sqrt(L/2) ≈ 8.7 makes the
            // per-bit error probability Q(2.6) ≈ 0.5 %.
            let sig: Vec<f64> = p
                .code_for(bit)
                .iter()
                .map(|&c| 0.3 * f64::from(c) + rng.gaussian(0.0, 1.0))
                .collect();
            if p.decode_bit(&sig).0 != bit {
                errors += 1;
            }
        }
        assert!(errors <= 6, "errors {errors}/{trials}");
    }

    #[test]
    fn short_code_fails_where_long_code_succeeds() {
        // Monotonic benefit of code length — the mechanism behind Fig. 20.
        use crate::SimRng;
        let noise_sigma = 1.0;
        let amp = 0.25;
        let err_rate = |len: usize| {
            let p = OrthogonalPair::new(len);
            let mut rng = SimRng::new(7).stream("len-sweep").substream(len as u64);
            let trials = 400;
            let mut errors = 0;
            for t in 0..trials {
                let bit = t % 2 == 0;
                let sig: Vec<f64> = p
                    .code_for(bit)
                    .iter()
                    .map(|&c| amp * f64::from(c) + rng.gaussian(0.0, noise_sigma))
                    .collect();
                if p.decode_bit(&sig).0 != bit {
                    errors += 1;
                }
            }
            errors as f64 / trials as f64
        };
        let short = err_rate(2);
        let long = err_rate(200);
        assert!(
            long < short,
            "long-code BER {long} should beat short-code BER {short}"
        );
        assert!(long < 0.02, "long-code BER {long}");
    }

    #[test]
    fn sidelobe_ratio_edge_cases() {
        assert_eq!(sidelobe_ratio(&[]), 0.0);
        // A length-2 orthogonal-ish code [1, -1]: lag-1 autocorr = -1.
        assert_eq!(sidelobe_ratio(&[1, -1]), 2.0);
    }

    #[test]
    fn gf256_tables_are_consistent() {
        // α^0 = 1, tables round-trip, and the doubled antilog half
        // mirrors the first.
        assert_eq!(gf256::EXP[0], 1);
        for x in 1..=255u8 {
            assert_eq!(gf256::EXP[gf256::LOG[x as usize] as usize], x);
        }
        for i in 0..255usize {
            assert_eq!(gf256::EXP[i], gf256::EXP[i + 255]);
        }
    }

    #[test]
    fn gf256_mul_matches_carryless_reference() {
        // Bitwise carry-less multiply with 0x11D reduction, checked
        // against the table path over a spread of operands.
        fn slow_mul(mut a: u8, mut b: u8) -> u8 {
            let mut p = 0u8;
            while b != 0 {
                if b & 1 != 0 {
                    p ^= a;
                }
                let hi = a & 0x80 != 0;
                a <<= 1;
                if hi {
                    a ^= (gf256::POLY & 0xFF) as u8;
                }
                b >>= 1;
            }
            p
        }
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(11) {
                assert_eq!(gf256::mul(a, b), slow_mul(a, b), "{a} * {b}");
            }
        }
        assert_eq!(gf256::mul(0, 77), 0);
        assert_eq!(gf256::mul(77, 0), 0);
    }

    #[test]
    fn gf256_inverse_and_division() {
        for a in 1..=255u8 {
            let i = gf256::inv(a);
            assert_eq!(gf256::mul(a, i), 1, "inv({a})");
            assert_eq!(gf256::div(a, a), 1);
            assert_eq!(gf256::div(0, a), 0);
        }
    }

    #[test]
    fn gf256_pow_edge_cases() {
        assert_eq!(gf256::pow(0, 0), 1);
        assert_eq!(gf256::pow(0, 5), 0);
        assert_eq!(gf256::pow(2, 255), 1); // α has order 255
        assert_eq!(gf256::pow(2, -1), gf256::inv(2));
        assert_eq!(gf256::alpha_pow(-1), gf256::inv(2));
        assert_eq!(gf256::alpha_pow(255), 1);
    }

    #[test]
    fn gf256_poly_eval_and_mul() {
        // (x + 1)(x + 2) = x² + 3x + 2 in GF(256) (3 = 1 XOR 2).
        let p = gf256::poly_mul(&[1, 1], &[1, 2]);
        assert_eq!(p, vec![1, 3, 2]);
        // Roots: x = 1 and x = 2.
        assert_eq!(gf256::poly_eval(&p, 1), 0);
        assert_eq!(gf256::poly_eval(&p, 2), 0);
        assert_eq!(gf256::poly_eval(&[], 9), 0);
        assert!(gf256::poly_mul(&[], &[1]).is_empty());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn gf256_div_by_zero_panics() {
        gf256::div(3, 0);
    }
}
