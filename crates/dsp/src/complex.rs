//! A minimal complex-number type for baseband channel arithmetic.
//!
//! The channel simulator works with complex per-subcarrier frequency
//! responses (`H(f) ∈ ℂ`). We implement the handful of operations we need
//! rather than pulling in an external crate; this keeps the workspace's
//! dependency set to exactly what DESIGN.md justifies.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// ```
/// use bs_dsp::Complex;
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::from_polar(1.0, std::f64::consts::FRAC_PI_2);
/// assert!((b.re).abs() < 1e-12);
/// assert!(((a * b).abs() - a.abs()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a complex number from polar form `r·e^{jθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (cheaper than [`abs`](Self::abs)).
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians, in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Multiplicative inverse. Returns `NaN` components for zero input,
    /// mirroring `f64` division semantics.
    pub fn recip(self) -> Self {
        let d = self.norm_sq();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Returns true if either component is NaN.
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division via multiplication by the reciprocal is intentional.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl std::iter::Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.5, 4.0);
        let c = a + b - b;
        assert!(close(c.re, a.re) && close(c.im, a.im));
    }

    #[test]
    fn mul_matches_polar() {
        let a = Complex::from_polar(2.0, 0.3);
        let b = Complex::from_polar(3.0, 0.7);
        let c = a * b;
        assert!(close(c.abs(), 6.0));
        assert!(close(c.arg(), 1.0));
    }

    #[test]
    fn div_inverse_of_mul() {
        let a = Complex::new(3.0, 4.0);
        let b = Complex::new(-1.0, 2.0);
        let c = (a * b) / b;
        assert!(close(c.re, a.re) && close(c.im, a.im));
    }

    #[test]
    fn conj_negates_phase() {
        let a = Complex::from_polar(1.0, 0.4);
        assert!(close(a.conj().arg(), -0.4));
    }

    #[test]
    fn abs_and_norm_sq_consistent() {
        let a = Complex::new(3.0, 4.0);
        assert!(close(a.abs(), 5.0));
        assert!(close(a.norm_sq(), 25.0));
    }

    #[test]
    fn recip_times_self_is_one() {
        let a = Complex::new(0.3, -0.9);
        let p = a * a.recip();
        assert!(close(p.re, 1.0) && close(p.im, 0.0));
    }

    #[test]
    fn exp_of_j_pi_is_minus_one() {
        let e = Complex::new(0.0, PI).exp();
        assert!(close(e.re, -1.0));
        assert!(e.im.abs() < 1e-12);
    }

    #[test]
    fn from_polar_negative_angle() {
        let z = Complex::from_polar(2.0, -PI / 6.0);
        assert!(close(z.abs(), 2.0));
        assert!(close(z.arg(), -PI / 6.0));
    }

    #[test]
    fn sum_over_iterator() {
        let v = vec![Complex::ONE, Complex::I, Complex::new(1.0, 1.0)];
        let s: Complex = v.into_iter().sum();
        assert!(close(s.re, 2.0) && close(s.im, 2.0));
    }

    #[test]
    fn scalar_mul_commutes() {
        let a = Complex::new(1.0, -2.0);
        let l = 3.0 * a;
        let r = a * 3.0;
        assert_eq!(l, r);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2j");
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2j");
    }

    #[test]
    fn unit_roots_sum_to_zero() {
        // The N-th roots of unity sum to zero — a good exercise of polar
        // construction and accumulation accuracy.
        let n = 16;
        let s: Complex = (0..n)
            .map(|k| Complex::from_polar(1.0, 2.0 * PI * k as f64 / n as f64))
            .sum();
        assert!(s.abs() < 1e-12);
    }
}
