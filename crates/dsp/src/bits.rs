//! Bit/byte packing, CRC-8, and bit-error accounting.
//!
//! The tag's downlink frames carry a CRC (§4.1 — "the payload bits
//! (including the CRC)"); we use CRC-8/ATM (poly 0x07), a standard choice
//! for short sensor frames. BER accounting backs every evaluation figure.

/// Unpacks bytes into bits, most-significant bit first.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in (0..8).rev() {
            bits.push((b >> i) & 1 == 1);
        }
    }
    bits
}

/// Packs bits (MSB-first) into bytes. The final partial byte, if any, is
/// zero-padded on the right.
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(bits.len().div_ceil(8));
    for chunk in bits.chunks(8) {
        let mut b = 0u8;
        for (i, &bit) in chunk.iter().enumerate() {
            if bit {
                b |= 1 << (7 - i);
            }
        }
        bytes.push(b);
    }
    bytes
}

/// CRC-8/ATM (polynomial 0x07, init 0x00, no reflection, no xorout).
pub fn crc8(data: &[u8]) -> u8 {
    let mut crc = 0u8;
    for &b in data {
        crc ^= b;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// Hamming distance between two equal-length bit sequences.
///
/// # Panics
/// Panics if lengths differ.
pub fn hamming(a: &[bool], b: &[bool]) -> usize {
    assert_eq!(a.len(), b.len(), "hamming distance needs equal lengths");
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Bit-error-rate accumulator used by the evaluation harness.
///
/// Follows the paper's convention (§7.1): if zero errors are observed, the
/// reported BER is floored at `1 / bits` — the paper transmits 1800 bits and
/// reports ≈5 × 10⁻⁴ for error-free runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BerCounter {
    bits: u64,
    errors: u64,
}

impl BerCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        BerCounter::default()
    }

    /// Records `errors` bit errors out of `bits` compared bits.
    pub fn record(&mut self, errors: u64, bits: u64) {
        debug_assert!(errors <= bits);
        self.errors += errors;
        self.bits += bits;
    }

    /// Compares a decoded sequence against the transmitted one. Missing
    /// trailing bits (decoder produced fewer) count as errors; extra decoded
    /// bits are ignored.
    pub fn compare(&mut self, transmitted: &[bool], decoded: &[bool]) {
        let n = transmitted.len().min(decoded.len());
        let errs = hamming(&transmitted[..n], &decoded[..n]) as u64;
        let missing = (transmitted.len() - n) as u64;
        self.record(errs + missing, transmitted.len() as u64);
    }

    /// Compares where the decoder may emit erasures (`None`); erasures count
    /// as errors.
    pub fn compare_with_erasures(&mut self, transmitted: &[bool], decoded: &[Option<bool>]) {
        let n = transmitted.len().min(decoded.len());
        let mut errs = 0u64;
        for i in 0..n {
            match decoded[i] {
                Some(b) if b == transmitted[i] => {}
                _ => errs += 1,
            }
        }
        errs += (transmitted.len() - n) as u64;
        self.record(errs, transmitted.len() as u64);
    }

    /// Total bits compared.
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Total bit errors.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &BerCounter) {
        self.bits += other.bits;
        self.errors += other.errors;
    }

    /// The raw error ratio (0 when no bits compared).
    pub fn raw_ber(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.errors as f64 / self.bits as f64
        }
    }

    /// BER with the paper's zero-error floor of `1/bits`.
    pub fn ber(&self) -> f64 {
        if self.bits == 0 {
            return 0.0;
        }
        if self.errors == 0 {
            1.0 / self.bits as f64
        } else {
            self.raw_ber()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_bits_roundtrip() {
        let data = [0xA5u8, 0x00, 0xFF, 0x3C];
        let bits = bytes_to_bits(&data);
        assert_eq!(bits.len(), 32);
        assert_eq!(bits_to_bytes(&bits), data.to_vec());
    }

    #[test]
    fn bits_msb_first() {
        let bits = bytes_to_bits(&[0b1000_0001]);
        assert!(bits[0]);
        assert!(!bits[1]);
        assert!(bits[7]);
    }

    #[test]
    fn partial_byte_zero_padded() {
        let bits = [true, false, true]; // 101 -> 1010_0000
        assert_eq!(bits_to_bytes(&bits), vec![0b1010_0000]);
    }

    #[test]
    fn empty_roundtrip() {
        assert!(bytes_to_bits(&[]).is_empty());
        assert!(bits_to_bytes(&[]).is_empty());
    }

    #[test]
    fn crc8_known_vectors() {
        // CRC-8/ATM check value for "123456789" is 0xF4.
        assert_eq!(crc8(b"123456789"), 0xF4);
        assert_eq!(crc8(&[]), 0x00);
        assert_eq!(crc8(&[0x00]), 0x00);
    }

    #[test]
    fn crc8_detects_single_bit_flips() {
        let data = [0x12u8, 0x34, 0x56, 0x78];
        let good = crc8(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data;
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc8(&corrupt), good, "flip {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn hamming_basics() {
        assert_eq!(hamming(&[true, false], &[true, false]), 0);
        assert_eq!(hamming(&[true, false], &[false, true]), 2);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn hamming_mismatch_panics() {
        hamming(&[true], &[true, false]);
    }

    #[test]
    fn ber_counter_basic() {
        let mut c = BerCounter::new();
        c.record(3, 100);
        assert_eq!(c.errors(), 3);
        assert_eq!(c.bits(), 100);
        assert!((c.ber() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn ber_zero_error_floor_matches_paper() {
        // Paper: 1800 error-free bits → BER reported as ≈5e-4 (1/1800).
        let mut c = BerCounter::new();
        c.record(0, 1800);
        assert!((c.ber() - 1.0 / 1800.0).abs() < 1e-12);
        assert!(c.ber() > 5.0e-4 && c.ber() < 6.0e-4);
        assert_eq!(c.raw_ber(), 0.0);
    }

    #[test]
    fn ber_empty_is_zero() {
        let c = BerCounter::new();
        assert_eq!(c.ber(), 0.0);
        assert_eq!(c.raw_ber(), 0.0);
    }

    #[test]
    fn compare_counts_missing_as_errors() {
        let mut c = BerCounter::new();
        c.compare(&[true, true, true, true], &[true, false]);
        assert_eq!(c.errors(), 3); // one mismatch + two missing
        assert_eq!(c.bits(), 4);
    }

    #[test]
    fn compare_ignores_extra_decoded_bits() {
        let mut c = BerCounter::new();
        c.compare(&[true], &[true, false, false]);
        assert_eq!(c.errors(), 0);
        assert_eq!(c.bits(), 1);
    }

    #[test]
    fn compare_with_erasures() {
        let mut c = BerCounter::new();
        c.compare_with_erasures(
            &[true, false, true],
            &[Some(true), None, Some(false)],
        );
        assert_eq!(c.errors(), 2); // erasure + wrong bit
        assert_eq!(c.bits(), 3);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = BerCounter::new();
        a.record(1, 10);
        let mut b = BerCounter::new();
        b.record(2, 20);
        a.merge(&b);
        assert_eq!(a.errors(), 3);
        assert_eq!(a.bits(), 30);
    }
}
