//! Deterministic random-number streams for the simulation.
//!
//! Every stochastic component in the reproduction draws from a [`SimRng`]
//! stream derived from a master seed and a *name*. Two properties matter:
//!
//! 1. **Reproducibility** — the same master seed regenerates every figure
//!    bit-for-bit.
//! 2. **Stream independence** — adding a new consumer (e.g. a new noise
//!    source) never perturbs the draws seen by existing consumers, because
//!    each consumer owns a stream keyed by its own name. This is the classic
//!    "named substream" discipline from discrete-event simulation.
//!
//! The generator is an in-repo xoshiro256++ (the same algorithm `rand`'s
//! 64-bit `SmallRng` uses, seeded through SplitMix64), so the crate has no
//! external dependencies and the byte streams are stable across platforms
//! and toolchains. The distributions the channel and traffic models need are
//! implemented directly: Gaussian (Box–Muller), Rayleigh and exponential.

/// FNV-1a 64-bit hash, used to derive per-stream seeds from names.
///
/// Stable across platforms and Rust versions (unlike `std`'s `DefaultHasher`,
/// whose algorithm is unspecified), which keeps experiment outputs
/// reproducible everywhere.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The xoshiro256++ core: 256 bits of state, 64-bit output, sub-nanosecond
/// step. Fast and statistically strong — not cryptographic, which is fine
/// for a physics simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Expands a 64-bit seed into the 256-bit state with SplitMix64, the
    /// seeding recipe recommended by the xoshiro authors (and the one
    /// `rand 0.8` uses for `SmallRng::seed_from_u64`). SplitMix64 never
    /// yields four zero words, so the all-zero fixed point is unreachable.
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut s = [0u64; 4];
        for word in &mut s {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *word = z ^ (z >> 31);
        }
        Xoshiro256PlusPlus { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A deterministic random stream.
///
/// Construct the root stream with [`SimRng::new`], then derive independent
/// substreams with [`SimRng::stream`]:
///
/// ```
/// use bs_dsp::SimRng;
/// let mut root = SimRng::new(42);
/// let mut noise = root.stream("thermal-noise");
/// let mut fading = root.stream("fading");
/// // Draws from `noise` never affect `fading`.
/// let a = noise.gaussian(0.0, 1.0);
/// let b = fading.gaussian(0.0, 1.0);
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: Xoshiro256PlusPlus,
}

impl SimRng {
    /// Creates the root stream from a master seed.
    pub fn new(master_seed: u64) -> Self {
        SimRng {
            seed: master_seed,
            inner: Xoshiro256PlusPlus::seed_from_u64(master_seed),
        }
    }

    /// Derives an independent named substream.
    ///
    /// The substream's seed depends only on this stream's seed and `name`,
    /// never on how many values have been drawn, so call order does not
    /// matter.
    pub fn stream(&self, name: &str) -> SimRng {
        let mut h = fnv1a(name.as_bytes());
        h ^= self.seed.rotate_left(32);
        SimRng::new(h)
    }

    /// Derives an independent substream indexed by an integer (e.g. one
    /// stream per packet or per subcarrier).
    pub fn substream(&self, index: u64) -> SimRng {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&index.to_le_bytes());
        let mut h = fnv1a(&bytes);
        h ^= self.seed.rotate_left(17);
        SimRng::new(h)
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The next raw 64-bit word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// The next raw 32-bit word of the stream (high half of a 64-bit step).
    pub fn next_u32(&mut self) -> u32 {
        (self.inner.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes (little-endian 64-bit words).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.inner.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Uniform in `[0, 1)`, using the top 53 bits of one 64-bit step (the
    /// standard multiply-based conversion, exactly representable in an
    /// `f64`).
    pub fn uniform(&mut self) -> f64 {
        let value = self.inner.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    ///
    /// Unbiased via Lemire's widening-multiply rejection method.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() requires a non-empty range");
        let range = n as u64;
        // Reject the partial final copy of the range inside 2^64 so every
        // residue is equally likely.
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        loop {
            let v = self.inner.next_u64();
            let m = u128::from(v) * u128::from(range);
            let lo = m as u64;
            if lo <= zone {
                return (m >> 64) as usize;
            }
        }
    }

    /// A Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Gaussian with the given mean and standard deviation (Box–Muller).
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        // Box–Muller; one value per call keeps the stream stateless w.r.t.
        // cached spares, which keeps substream derivation order-insensitive.
        let u1: f64 = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.uniform();
        let mag = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * mag * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// A circularly-symmetric complex Gaussian with per-component standard
    /// deviation `std_dev` (i.e. total variance `2·std_dev²`).
    pub fn complex_gaussian(&mut self, std_dev: f64) -> crate::Complex {
        crate::Complex::new(self.gaussian(0.0, std_dev), self.gaussian(0.0, std_dev))
    }

    /// Rayleigh-distributed magnitude with scale parameter `sigma`
    /// (mode of the distribution). Used for multipath tap amplitudes and the
    /// OFDM envelope model.
    pub fn rayleigh(&mut self, sigma: f64) -> f64 {
        let u: f64 = loop {
            let u = self.uniform();
            if u < 1.0 {
                break u;
            }
        };
        sigma * (-2.0 * (1.0 - u).ln()).sqrt()
    }

    /// Exponentially-distributed value with the given mean. Used for
    /// Poisson packet inter-arrival times.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Pareto-distributed value with shape `alpha` and scale (minimum)
    /// `xmin`: heavy-tailed with tail index `alpha`. Used for the idle
    /// gaps of the "wild" ambient-traffic model — measured Wi-Fi idle
    /// periods are famously heavy-tailed, unlike the exponential gaps
    /// of a Poisson process.
    ///
    /// # Panics
    /// Panics if `alpha <= 0` or `xmin <= 0`.
    pub fn pareto(&mut self, alpha: f64, xmin: f64) -> f64 {
        assert!(alpha > 0.0 && xmin > 0.0, "pareto needs alpha > 0, xmin > 0");
        let u: f64 = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        xmin * u.powf(-1.0 / alpha)
    }

    /// Uniformly random phase in `[0, 2π)`.
    pub fn phase(&mut self) -> f64 {
        self.uniform() * 2.0 * std::f64::consts::PI
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn named_streams_are_stable_regardless_of_draws() {
        let root1 = SimRng::new(99);
        let mut root2 = SimRng::new(99);
        // Draw a bunch from root2 before deriving — must not matter.
        for _ in 0..50 {
            root2.uniform();
        }
        let mut s1 = root1.stream("noise");
        let mut s2 = root2.stream("noise");
        for _ in 0..20 {
            assert_eq!(s1.next_u64(), s2.next_u64());
        }
    }

    #[test]
    fn named_streams_differ_by_name() {
        let root = SimRng::new(5);
        let mut a = root.stream("alpha");
        let mut b = root.stream("beta");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn indexed_substreams_differ() {
        let root = SimRng::new(5);
        let mut a = root.substream(0);
        let mut b = root.substream(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn splitmix_seeding_matches_reference() {
        // Known-answer test for SplitMix64-expanded seed 0 feeding
        // xoshiro256++ (the algorithm `rand 0.8`'s 64-bit `SmallRng` uses).
        // Pinning the first two outputs freezes the generator's byte stream
        // forever: any change here silently re-rolls every figure.
        let mut rng = SimRng::new(0);
        assert_eq!(rng.next_u64(), 0x5317_5d61_490b_23df);
        assert_eq!(rng.next_u64(), 0x61da_6f3d_c380_d507);
    }

    #[test]
    fn uniform_is_half_open() {
        let mut rng = SimRng::new(3);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = SimRng::new(17);
        let mut b = SimRng::new(17);
        let mut buf = [0u8; 12];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u64().to_le_bytes();
        let w1 = b.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &w0);
        assert_eq!(&buf[8..], &w1[..4]);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SimRng::new(1234).stream("gauss-test");
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn rayleigh_mean_matches_theory() {
        // E[X] = sigma * sqrt(pi/2)
        let mut rng = SimRng::new(77).stream("rayleigh-test");
        let n = 200_000;
        let mean = (0..n).map(|_| rng.rayleigh(2.0)).sum::<f64>() / n as f64;
        let expect = 2.0 * (std::f64::consts::PI / 2.0f64).sqrt();
        assert!((mean - expect).abs() < 0.02, "mean {mean} expect {expect}");
    }

    #[test]
    fn exponential_mean_matches_theory() {
        let mut rng = SimRng::new(11).stream("exp-test");
        let n = 200_000;
        let mean = (0..n).map(|_| rng.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.08, "mean {mean}");
    }

    #[test]
    fn complex_gaussian_is_circular() {
        let mut rng = SimRng::new(31).stream("cg");
        let n = 100_000;
        let mut re_sum = 0.0;
        let mut im_sum = 0.0;
        let mut cross = 0.0;
        for _ in 0..n {
            let z = rng.complex_gaussian(1.0);
            re_sum += z.re;
            im_sum += z.im;
            cross += z.re * z.im;
        }
        assert!((re_sum / n as f64).abs() < 0.02);
        assert!((im_sum / n as f64).abs() < 0.02);
        assert!((cross / n as f64).abs() < 0.02); // components uncorrelated
    }

    #[test]
    fn chance_frequency() {
        let mut rng = SimRng::new(8).stream("chance");
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.chance(0.25)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.25).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn index_covers_range() {
        let mut rng = SimRng::new(8).stream("index");
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.index(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn index_is_unbiased_for_awkward_ranges() {
        // n = 3 leaves a partial copy of the range at the top of 2^64;
        // rejection must keep the residues uniform.
        let mut rng = SimRng::new(21).stream("lemire");
        let mut counts = [0u64; 3];
        let n = 300_000;
        for _ in 0..n {
            counts[rng.index(3)] += 1;
        }
        for &c in &counts {
            let freq = c as f64 / n as f64;
            assert!((freq - 1.0 / 3.0).abs() < 0.01, "freq {freq}");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn index_zero_panics() {
        SimRng::new(0).index(0);
    }

    #[test]
    fn fnv_hash_known_value() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(super::fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
