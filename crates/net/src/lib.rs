//! `bs-net` — the connectivity layer over the Wi-Fi Backscatter link.
//!
//! The paper promises *internet connectivity* for RF-powered devices;
//! the layers below this crate deliver one short frame per query. This
//! crate closes the gap with three pieces:
//!
//! * [`seg`] — segmentation/reassembly: arbitrary byte messages split
//!   into CRC-protected, sequence-numbered [`seg::Segment`]s and
//!   reassembled exactly, whatever the loss, duplication or reordering
//!   on the way;
//! * [`arq`] — a sliding-window ARQ transport: polls grant the tag
//!   burst windows, a cumulative + selective [`WindowAck`] rides the
//!   downlink, no-progress rounds back off through the link stack's
//!   [`RetryPolicy`] with seeded jitter, and the whole transfer is a
//!   deterministic function of its seeds;
//! * [`fec`] — forward error correction under the ARQ: an in-repo
//!   GF(256) Reed-Solomon coder applied across segment groups, so a
//!   window reconstructs lost segments from parity instead of paying a
//!   retransmission round trip — the difference between limping and
//!   living when the helper traffic goes heavy-tailed (enable with
//!   [`arq::TransportConfig::with_fec`], pick the rate from measured
//!   traffic with [`fec::FecConfig::for_traffic`]);
//! * [`gateway`] — N tags behind one reader: singulation via the
//!   existing inventory, deficit-round-robin service, per-tag rate
//!   adaptation, all on one simulated clock;
//! * [`fleet`] — deployment scale: hundreds of gateways and 10⁵–10⁶
//!   tags in a sharded discrete-event engine with inter-gateway
//!   interference and tag handoff, byte-identical for any worker
//!   count.
//!
//! The transport runs over any [`linkmodel::SegmentLink`]; use
//! [`linkmodel::SimLink`] for fast seeded sweeps (the `net` bench
//! figure) and [`linkmodel::PhyLink`] to drive the full PHY simulation.
//!
//! ```
//! use bs_net::prelude::*;
//!
//! let message: Vec<u8> = (0..300u32).map(|i| (i % 256) as u8).collect();
//! let plan = FaultPlan::preset("loss", 0.5, 7).unwrap();
//! let mut link = SimLink::new(plan, 42);
//! let t = run_transfer(&message, TransportConfig::default(), &mut link);
//! assert!(t.complete);
//! assert_eq!(t.delivered, Some(message));
//! ```
//!
//! [`WindowAck`]: wifi_backscatter::protocol::WindowAck
//! [`RetryPolicy`]: wifi_backscatter::protocol::RetryPolicy

pub mod arq;
pub mod fec;
pub mod fleet;
pub mod gateway;
pub mod linkmodel;
pub mod prelude;
pub mod seg;
