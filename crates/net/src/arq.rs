//! The sliding-window ARQ transport.
//!
//! One transfer moves an arbitrary byte message across the lossy
//! backscatter link in *rounds*. Each round the reader (which drives
//! everything — the tag is passive between polls):
//!
//! 1. transmits a poll — a [`Query`] whose `payload_bits` grants the tag
//!    an uplink burst of up to `window` unacknowledged segments;
//! 2. the tag backscatters those segments, oldest-unacked first;
//! 3. the reader feeds whatever decoded into its [`Reassembler`] and
//!    answers with a [`WindowAck`] carrying the cumulative sequence
//!    number plus a 32-bit selective-ACK bitmap.
//!
//! A lost poll wastes the round; a lost ACK makes the tag retransmit
//! segments the reader already holds (counted as duplicates). Rounds
//! that make no progress back off exponentially through the existing
//! [`RetryPolicy`], with a seeded ±jitter so paired runs stay
//! deterministic, and the policy's budget bounds the whole transfer.
//!
//! Stop-and-wait is the `window = 1` special case: every segment then
//! pays the full poll + ACK control overhead, which is exactly the gap
//! the `net` bench figure measures against `window ≥ 4`.

use crate::fec::{FecConfig, GroupCoder};
use crate::linkmodel::{SegmentFate, SegmentLink};
use crate::seg::{segment_message, Accept, Reassembler, Segment};
use bs_dsp::obs::{MemRecorder, NullRecorder, ObsReport, Recorder};
use bs_dsp::SimRng;
use wifi_backscatter::link::DegradationReport;
use wifi_backscatter::protocol::{Query, RetryPolicy, WindowAck, SUPPORTED_RATES_BPS};
use wifi_backscatter::report::RunReport;

/// Transport knobs for one transfer.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Address of the tag holding the message.
    pub tag_address: u8,
    /// Message identifier carried by every segment and ACK.
    pub msg_id: u8,
    /// Segments in flight per round; 1 = stop-and-wait.
    pub window: usize,
    /// Payload bytes per segment (1..=255).
    pub seg_payload_bytes: usize,
    /// Backoff and budget for no-progress rounds.
    pub retry: RetryPolicy,
    /// Hard cap on rounds, a backstop under pathological loss.
    pub max_rounds: u32,
    /// ± fractional jitter on each backoff, drawn from the seeded
    /// timeout stream (0 = none).
    pub timeout_jitter: f64,
    /// Seed for the transport's own randomness (timeout jitter); kept
    /// separate from link and fault seeds.
    pub seed: u64,
    /// Forward error correction across segment groups; disabled by
    /// default (plain ARQ, bit for bit the pre-FEC transport).
    pub fec: FecConfig,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            tag_address: 1,
            msg_id: 0,
            window: 8,
            seg_payload_bytes: 16,
            retry: RetryPolicy::default(),
            max_rounds: 4_096,
            timeout_jitter: 0.25,
            seed: 1,
            fec: FecConfig::none(),
        }
    }
}

impl TransportConfig {
    /// Sets the window (builder style).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Sets the per-segment payload size (builder style).
    pub fn with_seg_payload_bytes(mut self, bytes: usize) -> Self {
        self.seg_payload_bytes = bytes.clamp(1, 255);
        self
    }

    /// Sets the retry policy (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the transport seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Arms forward error correction (builder style). A disabled config
    /// ([`FecConfig::none`]) keeps the transport bit-identical to plain
    /// ARQ. With FEC enabled the segment payload is capped at 254 bytes
    /// (parity columns carry one extra length byte).
    ///
    /// FEC operates on segments, above the PHY: it composes with any
    /// [`wifi_backscatter::phy::PhyMode`] — presence captures and
    /// codeword-translation residue decoding alike — because the
    /// transport only sees segment fates, never how the bits crossed
    /// the air (see [`crate::linkmodel::PhyLink::with_phy`] and
    /// [`crate::gateway::GatewayConfig::with_phy`]).
    pub fn with_fec(mut self, fec: FecConfig) -> Self {
        self.fec = fec;
        if fec.is_enabled() {
            self.seg_payload_bytes = self.seg_payload_bytes.min(254);
        }
        self
    }
}

/// What one ARQ round accomplished — the unit the gateway scheduler
/// charges against a tag's deficit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundOutcome {
    /// Payload bytes put on the air this round (sent, not acked).
    pub sent_bytes: u64,
    /// Payload bytes newly acknowledged by this round's ACK.
    pub acked_bytes: u64,
    /// Segments retransmitted this round.
    pub retransmissions: u64,
    /// Simulated airtime this round consumed, backoff included (µs).
    pub airtime_us: u64,
    /// True when the receiver now holds the whole message.
    pub complete: bool,
}

/// The completed-transfer report: what arrived, what it cost, what
/// degraded. Implements [`RunReport`] so harness tooling reads it like
/// any other run.
#[derive(Debug, Clone, PartialEq)]
pub struct Transfer {
    /// The reassembled message; `None` if the transfer gave up.
    pub delivered: Option<Vec<u8>>,
    /// Bytes the sender offered.
    pub message_bytes: u64,
    /// Unique payload bytes that reached the receiver.
    pub delivered_bytes: u64,
    /// Segments the message was split into.
    pub segments_total: u16,
    /// True when `delivered` holds the complete message.
    pub complete: bool,
    /// Rounds the transfer ran.
    pub rounds: u32,
    /// Polls transmitted (= rounds; kept separate for clarity).
    pub polls_sent: u64,
    /// Segment transmissions, first attempts included.
    pub segments_sent: u64,
    /// Segment transmissions beyond each segment's first.
    pub retransmissions: u64,
    /// ACKs that repeated the previous round's state verbatim.
    pub duplicate_acks: u64,
    /// Duplicate segment arrivals the receiver dropped.
    pub duplicate_segments: u64,
    /// Rounds that ended head-of-line blocked.
    pub hol_stalls: u64,
    /// Segments reconstructed by the FEC layer instead of a
    /// retransmission round trip (0 with FEC disabled).
    pub fec_repairs: u64,
    /// Group-repair attempts that found more holes than parity could
    /// cover (the group waited for ARQ instead).
    pub fec_decode_fails: u64,
    /// Total simulated time, airtime + backoff (µs).
    pub airtime_us: u64,
    /// Faults fired and mitigations engaged, link-reported.
    pub degradation: DegradationReport,
    /// Observability report, populated only by the `*_observed` entry
    /// point.
    pub obs: Option<ObsReport>,
}

impl Transfer {
    /// Delivered-message bits per second of simulated time; 0 until
    /// anything both arrived and time passed.
    pub fn goodput_bps(&self) -> f64 {
        if self.airtime_us == 0 || !self.complete {
            return 0.0;
        }
        self.message_bytes as f64 * 8.0 / (self.airtime_us as f64 / 1e6)
    }
}

impl RunReport for Transfer {
    fn bits(&self) -> u64 {
        self.message_bytes * 8
    }

    fn bit_errors(&self) -> u64 {
        (self.message_bytes - self.delivered_bytes.min(self.message_bytes)) * 8
    }

    fn degradation(&self) -> &DegradationReport {
        &self.degradation
    }

    fn obs(&self) -> Option<&ObsReport> {
        self.obs.as_ref()
    }
}

/// The closest wire-encodable rate to an arbitrary chip rate — the
/// transport's safe path around [`Query::to_frame`]'s
/// `UnsupportedRate` error when rate adaptation lands between the four
/// §7.2 operating points.
pub fn nearest_supported_rate(bps: u64) -> u64 {
    *SUPPORTED_RATES_BPS
        .iter()
        .min_by_key(|&&r| r.abs_diff(bps))
        .expect("rate table is non-empty")
}

/// Sender + receiver state of one in-progress transfer. The gateway
/// steps many of these against one shared clock; [`run_transfer`] is the
/// single-tag convenience loop.
#[derive(Debug, Clone)]
pub struct TransportSession {
    cfg: TransportConfig,
    message: Vec<u8>,
    segments: Vec<Segment>,
    seg_bits: Vec<Vec<bool>>,
    sent_once: Vec<bool>,
    acked: Vec<bool>,
    rx: Reassembler,
    coder: Option<GroupCoder>,
    rng: SimRng,
    failed_rounds: u32,
    started_us: Option<u64>,
    waited_us: u64,
    rounds: u32,
    polls_sent: u64,
    segments_sent: u64,
    retransmissions: u64,
    duplicate_acks: u64,
    hol_stalls: u64,
    fec_repairs: u64,
    fec_decode_fails: u64,
    last_ack: Option<(u16, u32)>,
}

impl TransportSession {
    /// Prepares a transfer of `message` under `cfg`.
    pub fn new(message: &[u8], cfg: TransportConfig) -> Self {
        let (segments, coder) = if cfg.fec.is_enabled() {
            let coder = GroupCoder::for_message(
                message.len(),
                cfg.seg_payload_bytes.min(254),
                cfg.fec,
            );
            (coder.encode_message(cfg.msg_id, message), Some(coder))
        } else {
            (
                segment_message(cfg.msg_id, message, cfg.seg_payload_bytes),
                None,
            )
        };
        let total = segments.len() as u16;
        let seg_bits = segments.iter().map(Segment::to_bits).collect();
        let rng = SimRng::new(cfg.seed).stream("net-timeout");
        TransportSession {
            rx: Reassembler::new(cfg.msg_id, total),
            sent_once: vec![false; segments.len()],
            acked: vec![false; segments.len()],
            message: message.to_vec(),
            segments,
            seg_bits,
            coder,
            rng,
            cfg,
            failed_rounds: 0,
            started_us: None,
            waited_us: 0,
            rounds: 0,
            polls_sent: 0,
            segments_sent: 0,
            retransmissions: 0,
            duplicate_acks: 0,
            hol_stalls: 0,
            fec_repairs: 0,
            fec_decode_fails: 0,
            last_ack: None,
        }
    }

    /// True once the receiver holds every segment.
    pub fn complete(&self) -> bool {
        self.rx.complete()
    }

    /// Rounds run so far.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// True while the transfer may run another round: incomplete, under
    /// the round cap, within the retry budget.
    pub fn can_continue(&self) -> bool {
        !self.complete()
            && self.rounds < self.cfg.max_rounds
            && self.cfg.retry.within_budget(self.waited_us)
    }

    /// Payload bytes the next round would put on the air — what the
    /// gateway charges against a tag's deficit before serving it.
    pub fn next_round_bytes(&self) -> u64 {
        self.unacked_window()
            .iter()
            .map(|&i| self.segments[i].payload.len() as u64)
            .sum::<u64>()
            .max(1)
    }

    fn unacked_window(&self) -> Vec<usize> {
        let mut window: Vec<usize> = (0..self.segments.len())
            .filter(|&i| !self.acked[i])
            .take(self.cfg.window.max(1))
            .collect();
        // With FEC on, interleave the burst across code groups: helper
        // silence kills *consecutive transmissions*, and a window sent
        // in sequence order concentrates those holes in one group —
        // past its parity. Striping the order (position within group
        // first, group second) spreads a length-L outage over ~L/G
        // groups, each within erasure reach. Stable on (pos, group, seq)
        // so the order is deterministic and ARQ-alone is untouched.
        if let Some(coder) = &self.coder {
            let span = coder.group_size().max(1);
            window.sort_by_key(|&i| (i % span, i / span, i));
        }
        window
    }

    /// Runs one ARQ round over `link`, recording spans and counters on
    /// `rec`.
    pub fn step_round(&mut self, link: &mut dyn SegmentLink, rec: &mut dyn Recorder) -> RoundOutcome {
        if self.started_us.is_none() {
            self.started_us = Some(link.now_us());
            // The segmentation span: zero simulated duration (it is
            // reader-side computation), items = segments produced.
            let t = link.now_us();
            rec.span("net.segment", t, t, self.segments.len() as u64);
        }
        let round_start = link.now_us();
        self.rounds += 1;

        // Seeded-deterministic timeout: exponential backoff with ±jitter
        // before every no-progress retry round.
        if self.failed_rounds > 0 {
            let base = self.cfg.retry.backoff_us(self.failed_rounds) as f64;
            let jitter = 1.0 + self.cfg.timeout_jitter * (2.0 * self.rng.uniform() - 1.0);
            let wait = (base * jitter.max(0.0)) as u64;
            link.advance_us(wait);
        }

        // Poll: grant the tag a burst of up to `window` unacked segments.
        let window = self.unacked_window();
        let burst_bits: u64 = window.iter().map(|&i| self.seg_bits[i].len() as u64).sum();
        let rate = nearest_supported_rate(link.chip_rate_bps());
        let poll = Query {
            tag_address: self.cfg.tag_address,
            payload_bits: burst_bits.min(u16::MAX as u64) as u16,
            bit_rate_bps: rate,
            code_length: 1,
        };
        let poll_frame = poll
            .to_frame()
            .expect("nearest_supported_rate returns encodable rates");
        self.polls_sent += 1;
        rec.add("net.polls", 1);
        let poll_heard = link.send_control(&poll_frame, rec);

        let mut sent_bytes = 0u64;
        let mut retx_this_round = 0u64;
        let mut touched_groups: Vec<usize> = Vec::new();
        if poll_heard {
            // The tag's burst, oldest unacked first.
            let burst_start = link.now_us();
            for &i in &window {
                self.segments_sent += 1;
                rec.add("net.segments-sent", 1);
                if self.sent_once[i] {
                    self.retransmissions += 1;
                    retx_this_round += 1;
                    rec.add("net.retransmissions", 1);
                } else {
                    self.sent_once[i] = true;
                }
                sent_bytes += self.segments[i].payload.len() as u64;
                let fate = link.send_segment(&self.seg_bits[i], rec);
                if fate != SegmentFate::Lost {
                    if self.rx.accept(&self.segments[i]) == Accept::New {
                        if let Some(coder) = &self.coder {
                            touched_groups.push(coder.group_of(self.segments[i].seq));
                        }
                    }
                    if fate == SegmentFate::DeliveredTwice {
                        self.rx.accept(&self.segments[i]);
                    }
                }
            }
            if retx_this_round > 0 {
                rec.span("net.retx", burst_start, link.now_us(), retx_this_round);
            }
        }

        // FEC repair before the ACK is built: any group that can decode
        // fills its holes (data *and* parity) from parity, the ACK then
        // covers the reconstruction, and ARQ never retransmits those
        // segments. A touched group that still has more holes than
        // parity is a decode failure — it waits for another round.
        if let Some(coder) = &self.coder {
            touched_groups.sort_unstable();
            touched_groups.dedup();
            for g in 0..coder.groups() {
                let (first, d, p) = coder.group_span(g);
                let missing = (first..first + (d + p) as u16)
                    .filter(|&s| !self.rx.has(s))
                    .count();
                if missing == 0 {
                    continue;
                }
                if missing <= p {
                    let out = coder.repair_group(g, &mut self.rx);
                    if out.repaired > 0 {
                        self.fec_repairs += out.repaired;
                        rec.add("net.fec.repair", out.repaired);
                    }
                    if out.failed {
                        self.fec_decode_fails += 1;
                        rec.add("net.fec.decode_fail", 1);
                    }
                } else if touched_groups.binary_search(&g).is_ok() {
                    // New segments arrived but the group is still short:
                    // an attempted-and-failed repair.
                    self.fec_decode_fails += 1;
                    rec.add("net.fec.decode_fail", 1);
                }
            }
        }

        // The reader's acknowledgement. A repeat of the previous state is
        // a duplicate ACK (the tag learns nothing new from it).
        let ack = WindowAck {
            tag_address: self.cfg.tag_address,
            msg_id: self.cfg.msg_id,
            cumulative: self.rx.cumulative(),
            sack: self.rx.sack(),
        };
        if self.last_ack == Some((ack.cumulative, ack.sack)) {
            self.duplicate_acks += 1;
            rec.add("net.duplicate-acks", 1);
        }
        self.last_ack = Some((ack.cumulative, ack.sack));
        let ack_heard = link.send_control(&ack.to_frame(), rec);

        // The sender only learns what the ACK told it — a lost ACK means
        // next round retransmits segments the receiver already holds.
        let mut acked_bytes = 0u64;
        if ack_heard {
            for i in 0..self.segments.len() {
                if !self.acked[i] && ack.acks(self.segments[i].seq) {
                    self.acked[i] = true;
                    acked_bytes += self.segments[i].payload.len() as u64;
                }
            }
        }

        if self.rx.head_of_line_blocked() {
            self.hol_stalls += 1;
            rec.add("net.hol-stalls", 1);
        }
        if acked_bytes > 0 || self.complete() {
            self.failed_rounds = 0;
        } else {
            self.failed_rounds += 1;
        }
        self.waited_us += link.now_us() - round_start;
        rec.span("net.window", round_start, link.now_us(), window.len() as u64);

        RoundOutcome {
            sent_bytes,
            acked_bytes,
            retransmissions: retx_this_round,
            airtime_us: link.now_us() - round_start,
            complete: self.complete(),
        }
    }

    /// Closes the session into its [`Transfer`] report, draining the
    /// link's degradation accounting.
    pub fn finish(self, link: &mut dyn SegmentLink) -> Transfer {
        // With FEC the deliverable is the data slots alone (parity is
        // overhead, not payload); without it, the whole reassembly.
        let (delivered, delivered_bytes) = match &self.coder {
            Some(coder) => (coder.assemble_data(&self.rx), coder.data_bytes(&self.rx)),
            None => (self.rx.assemble(), self.rx.received_bytes()),
        };
        let complete = delivered.is_some();
        let started = self.started_us.unwrap_or_else(|| link.now_us());
        // `packets_duplicated` is the link's own count of on-air MAC
        // duplication. The receiver's `rx.duplicates` additionally
        // counts every retransmit that arrived after a SACK hole was
        // already filled — summing the two double-counted each on-air
        // duplicate and misread ordinary ARQ retransmissions as link
        // faults. The receiver-side dedup count is reported separately
        // as `duplicate_segments`.
        let degradation = link.take_degradation();
        Transfer {
            message_bytes: self.message.len() as u64,
            delivered_bytes,
            segments_total: self.segments.len() as u16,
            complete,
            delivered,
            rounds: self.rounds,
            polls_sent: self.polls_sent,
            segments_sent: self.segments_sent,
            retransmissions: self.retransmissions,
            duplicate_acks: self.duplicate_acks,
            duplicate_segments: self.rx.duplicates,
            hol_stalls: self.hol_stalls,
            fec_repairs: self.fec_repairs,
            fec_decode_fails: self.fec_decode_fails,
            airtime_us: link.now_us() - started,
            degradation,
            obs: None,
        }
    }
}

/// Transfers `message` over `link`, running rounds until completion, the
/// round cap, or the retry budget. Observe-enabled twin of
/// [`run_transfer`].
pub fn run_transfer_with(
    message: &[u8],
    cfg: TransportConfig,
    link: &mut dyn SegmentLink,
    rec: &mut dyn Recorder,
) -> Transfer {
    let mut session = TransportSession::new(message, cfg);
    while session.can_continue() {
        session.step_round(link, rec);
    }
    session.finish(link)
}

/// Transfers `message` over `link` with no observability overhead.
pub fn run_transfer(message: &[u8], cfg: TransportConfig, link: &mut dyn SegmentLink) -> Transfer {
    run_transfer_with(message, cfg, link, &mut NullRecorder)
}

/// Like [`run_transfer`] but attaches the [`ObsReport`] to the result.
pub fn run_transfer_observed(
    message: &[u8],
    cfg: TransportConfig,
    link: &mut dyn SegmentLink,
) -> Transfer {
    let mut rec = MemRecorder::new();
    let mut t = run_transfer_with(message, cfg, link, &mut rec);
    t.obs = Some(rec.into_report());
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linkmodel::SimLink;
    use bs_channel::faults::FaultPlan;

    fn msg(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 131 + 17) as u8).collect()
    }

    #[test]
    fn clean_link_single_round_per_window() {
        let mut link = SimLink::new(FaultPlan::none(), 1);
        let t = run_transfer(&msg(64), TransportConfig::default().with_window(8), &mut link);
        assert!(t.complete);
        assert_eq!(t.delivered.as_deref(), Some(&msg(64)[..]));
        assert_eq!(t.retransmissions, 0);
        assert_eq!(t.duplicate_segments, 0);
        assert_eq!(t.rounds, 1, "4 segments fit one window-8 round");
        assert!(t.is_clean());
        assert_eq!(t.ber(), 0.0);
    }

    #[test]
    fn lossy_link_still_delivers_exactly() {
        let plan = FaultPlan::preset("loss", 1.0, 21).unwrap();
        let mut link = SimLink::new(plan, 4);
        let message = msg(256);
        let t = run_transfer(&message, TransportConfig::default(), &mut link);
        assert!(t.complete, "30% loss must not defeat ARQ");
        assert_eq!(t.delivered, Some(message));
        assert!(t.retransmissions > 0, "loss must force retransmissions");
    }

    #[test]
    fn duplication_never_leaks_into_the_message() {
        let plan = FaultPlan::preset("dup", 1.0, 8).unwrap();
        let mut link = SimLink::new(plan, 2);
        let message = msg(200);
        let t = run_transfer(&message, TransportConfig::default(), &mut link);
        assert!(t.complete);
        assert_eq!(t.delivered, Some(message));
        assert!(t.duplicate_segments > 0, "the dup preset should duplicate");
    }

    #[test]
    fn stop_and_wait_needs_at_least_one_round_per_segment() {
        let mut link = SimLink::new(FaultPlan::none(), 1);
        let t = run_transfer(&msg(64), TransportConfig::default().with_window(1), &mut link);
        assert!(t.complete);
        assert_eq!(t.rounds, 4, "one segment per stop-and-wait round");
    }

    #[test]
    fn transfer_is_deterministic() {
        let plan = FaultPlan::preset("loss", 0.9, 13).unwrap();
        let run = || {
            let mut link = SimLink::new(plan.clone(), 7);
            run_transfer(&msg(300), TransportConfig::default(), &mut link)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn budget_bounds_a_dead_link() {
        let plan = FaultPlan::new(3)
            .with(bs_channel::faults::Fault::PacketLoss { prob: 1.0 })
            .with_severity(1.0);
        let mut link = SimLink::new(plan, 1);
        let cfg = TransportConfig {
            retry: RetryPolicy::default().with_budget_us(2_000_000),
            ..TransportConfig::default()
        };
        let t = run_transfer(&msg(64), cfg, &mut link);
        assert!(!t.complete);
        assert!(t.delivered.is_none());
        assert!(t.bit_errors() > 0, "undelivered bytes must count as errors");
        assert!(t.rounds < 4_096, "budget should stop it well before the cap");
    }

    #[test]
    fn observed_variant_records_spans_and_counters() {
        let plan = FaultPlan::preset("loss", 1.0, 5).unwrap();
        let mut link = SimLink::new(plan, 3);
        let t = run_transfer_observed(&msg(128), TransportConfig::default(), &mut link);
        let obs = t.obs.as_ref().expect("observed run must attach a report");
        assert!(obs.spans_for("net.segment").count() == 1);
        assert!(obs.spans_for("net.window").count() >= 1);
        assert_eq!(obs.counter("net.polls"), t.polls_sent);
        assert_eq!(obs.counter("net.segments-sent"), t.segments_sent);
        assert_eq!(obs.counter("net.retransmissions"), t.retransmissions);
    }

    #[test]
    fn duplicate_accounting_counts_each_on_air_event_once() {
        // Regression for the retransmit/SACK-hole double count: the
        // transfer's degradation must report exactly the link's own
        // duplication events, not link events + receiver-side dedup
        // drops summed.
        let plan = FaultPlan::preset("dup", 1.0, 8).unwrap();
        let mut link = SimLink::new(plan, 2);
        let t = run_transfer(&msg(400), TransportConfig::default(), &mut link);
        assert!(t.complete);
        assert!(t.duplicate_segments > 0, "the dup preset should duplicate");
        assert_eq!(
            t.degradation.packets_duplicated, t.duplicate_segments,
            "dup-only plan: every receiver dedup drop is one on-air MAC \
             duplicate, so the counts must match exactly (the old code \
             reported 2x)"
        );
    }

    #[test]
    fn loss_only_plan_reports_zero_link_duplication() {
        // A lost ACK makes the tag retransmit a segment the reader
        // already holds — a receiver-side duplicate that is *not* link
        // duplication and must not appear in the degradation report.
        let plan = FaultPlan::preset("loss", 1.0, 21).unwrap();
        let mut link = SimLink::new(plan, 8);
        let t = run_transfer(&msg(256), TransportConfig::default(), &mut link);
        assert!(t.complete);
        assert!(
            t.duplicate_segments > 0,
            "lost ACKs should cause retransmit-duplicates at the receiver"
        );
        assert_eq!(
            t.degradation.packets_duplicated, 0,
            "loss-only plan: no MAC duplication occurred on the air"
        );
    }

    #[test]
    fn fec_disabled_is_bit_identical_to_plain_arq() {
        let plan = FaultPlan::preset("loss", 0.8, 31).unwrap();
        let run = |cfg: TransportConfig| {
            let mut link = SimLink::new(plan.clone(), 9);
            run_transfer(&msg(300), cfg, &mut link)
        };
        let plain = run(TransportConfig::default());
        let nofec = run(TransportConfig::default().with_fec(crate::fec::FecConfig::none()));
        assert_eq!(plain, nofec);
    }

    #[test]
    fn fec_transfer_delivers_exactly_and_repairs() {
        let plan = FaultPlan::preset("loss", 1.0, 5).unwrap();
        let message = msg(600);
        let cfg = TransportConfig::default().with_fec(crate::fec::FecConfig::fixed(4, 2));
        let mut link = SimLink::new(plan, 11);
        let t = run_transfer(&message, cfg, &mut link);
        assert!(t.complete);
        assert_eq!(t.delivered, Some(message.clone()));
        assert_eq!(t.delivered_bytes, message.len() as u64);
        assert!(t.fec_repairs > 0, "30% loss should exercise repair");
        assert!(
            t.segments_total > (600u16).div_ceil(16),
            "wire total must include parity segments"
        );
    }

    #[test]
    fn fec_transfer_is_deterministic() {
        let plan = FaultPlan::preset("loss", 0.9, 13).unwrap();
        let cfg = TransportConfig::default().with_fec(crate::fec::FecConfig::fixed(8, 2));
        let run = || {
            let mut link = SimLink::new(plan.clone(), 7);
            run_transfer(&msg(500), cfg.clone(), &mut link)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fec_counters_reach_the_recorder() {
        let plan = FaultPlan::preset("loss", 1.0, 17).unwrap();
        let cfg = TransportConfig::default().with_fec(crate::fec::FecConfig::fixed(4, 2));
        let mut link = SimLink::new(plan, 3);
        let t = run_transfer_observed(&msg(800), cfg, &mut link);
        let obs = t.obs.as_ref().unwrap();
        assert_eq!(obs.counter("net.fec.repair"), t.fec_repairs);
        assert_eq!(obs.counter("net.fec.decode_fail"), t.fec_decode_fails);
        assert!(t.fec_repairs > 0);
    }

    #[test]
    fn nearest_supported_rate_snaps_sensibly() {
        assert_eq!(nearest_supported_rate(100), 100);
        assert_eq!(nearest_supported_rate(120), 100);
        assert_eq!(nearest_supported_rate(160), 200);
        assert_eq!(nearest_supported_rate(2_000), 1000);
        assert_eq!(nearest_supported_rate(0), 100);
        // And the snapped rate always encodes.
        let q = Query {
            tag_address: 0,
            payload_bits: 1,
            bit_rate_bps: nearest_supported_rate(123),
            code_length: 1,
        };
        assert!(q.to_frame().is_ok());
    }
}
