//! The gateway: N tags, one reader, fair service on simulated time.
//!
//! This is the "internet connectivity" topology of the paper's Figure 1:
//! many RF-powered tags share one reader, which relays their messages.
//! The gateway composes three existing mechanisms and one new one:
//!
//! 1. **Singulation** — a framed-slotted-ALOHA inventory
//!    ([`wifi_backscatter::multitag`]) discovers which tags are present
//!    and fixes the service order;
//! 2. **Per-tag transport** — each discovered tag gets its own
//!    [`TransportSession`] + [`SimLink`], so loss on one tag's channel
//!    never corrupts another's message;
//! 3. **Deficit round-robin** — each scheduler cycle tops up every
//!    incomplete tag's deficit by `quantum_bytes` and serves ARQ rounds
//!    while the deficit covers the round's payload bytes. A tag stuck
//!    retransmitting drains its quantum like any other traffic, so it
//!    cannot starve its neighbours (the scheduler invariant the
//!    conformance suite pins);
//! 4. **Per-tag rate adaptation** — after each served round the gateway
//!    re-estimates the tag's delivered cadence and steps the chip rate
//!    down via [`bs_wifi::rate_adapt::readapt_chip_rate`] when it has
//!    collapsed, mirroring the reactive mitigation the single-link
//!    session uses.
//!
//! All of it runs on one shared simulated clock: rounds are serialised
//! (one reader, one medium), every per-tag link is advanced to the
//! global clock before its round, and every random draw descends from
//! the run seed — so a gateway run is a pure function of
//! `(tags, config)`.

use crate::arq::{nearest_supported_rate, Transfer, TransportConfig, TransportSession};
use crate::linkmodel::{SegmentLink, SimLink};
use bs_channel::faults::FaultPlan;
use bs_dsp::obs::{MemRecorder, NullRecorder, ObsReport, Recorder};
use bs_dsp::SimRng;
use bs_tag::energy::{Capacitor, EnergyConfig, LISTEN_LOAD_UW, RESPOND_LOAD_UW};
use wifi_backscatter::link::DegradationReport;
use wifi_backscatter::multitag::{run_inventory_with, InventoryConfig, InventoryResult, InventoryTag};
use wifi_backscatter::phy::PhyConfig;
use wifi_backscatter::protocol::Query;
use wifi_backscatter::report::RunReport;

/// One tag the gateway serves.
#[derive(Debug, Clone)]
pub struct TagProfile {
    /// Link-layer address (must be unique across the deployment).
    pub address: u8,
    /// The message this tag wants delivered.
    pub message: Vec<u8>,
    /// Helper packet cadence this tag's channel sees (packets/s) — the
    /// §5 input to its initial rate selection.
    pub helper_pps: f64,
    /// The tag's energy supply. `None` (the default) models an immortal
    /// tag: the run is bit-identical to the pre-energy gateway. With a
    /// supply, the simulator tracks the tag's capacitor — a tag that
    /// cannot fund a response misses its poll and the reader observes
    /// silence.
    pub energy: Option<EnergyConfig>,
}

impl TagProfile {
    /// A tag at the paper's nominal cadence.
    pub fn new(address: u8, message: Vec<u8>) -> Self {
        TagProfile {
            address,
            message,
            helper_pps: 3_000.0,
            energy: None,
        }
    }

    /// Overrides the helper cadence (builder style).
    pub fn with_helper_pps(mut self, pps: f64) -> Self {
        self.helper_pps = pps;
        self
    }

    /// Arms the tag energy co-simulation (builder style).
    pub fn with_energy(mut self, energy: EnergyConfig) -> Self {
        self.energy = Some(energy);
        self
    }
}

/// How the scheduler treats tags that miss their polls.
///
/// The gateway never reads a tag's simulator-internal charge — that
/// information boundary is the point of the energy-aware design. All it
/// observes is silence, and [`PollingPolicy::EnergyAware`] turns the
/// *pattern* of silences into a backoff estimate of when the tag will
/// have harvested enough to answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PollingPolicy {
    /// Poll every incomplete tag every cycle, paying the control-exchange
    /// airtime for each silent one.
    #[default]
    Naive,
    /// After `k` consecutive silent polls, skip the tag for `2^k`
    /// scheduler cycles (capped) before probing again — wasted poll
    /// slots become charging time.
    EnergyAware,
}

/// Gateway configuration.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Template transport knobs; `tag_address` and `msg_id` are
    /// overridden per tag.
    pub transport: TransportConfig,
    /// Deficit round-robin quantum (payload bytes added per cycle).
    pub quantum_bytes: u64,
    /// Singulation parameters.
    pub inventory: InventoryConfig,
    /// Air-time charged per inventory slot (µs). [`Self::with_phy`]
    /// re-derives it from the mode's
    /// [`inventory_slot_us`](wifi_backscatter::phy::PhyCapabilities::inventory_slot_us).
    pub slot_us: u64,
    /// Fault plan applied to every tag's link.
    pub faults: FaultPlan,
    /// Measurements-per-bit target used for rate selection/adaptation.
    pub pkts_per_bit: u32,
    /// Margin for the §5 rate selection.
    pub rate_margin: f64,
    /// Cap on scheduler cycles (backstop under pathological loss).
    pub max_cycles: u32,
    /// Master seed: inventory, per-tag links and transports all derive
    /// from it.
    pub seed: u64,
    /// PHY mode every tag's link runs (default:
    /// [`PhyConfig::Presence`]). Rate selection, re-adaptation and the
    /// inventory slot length all follow this mode's
    /// [`wifi_backscatter::phy::PhyCapabilities`].
    pub phy: PhyConfig,
    /// How the scheduler reacts to silent polls (default:
    /// [`PollingPolicy::Naive`]). Irrelevant when no tag carries an
    /// energy supply — an immortal tag never misses a poll.
    pub polling: PollingPolicy,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            transport: TransportConfig::default(),
            quantum_bytes: 64,
            inventory: InventoryConfig::default(),
            slot_us: 2_500,
            faults: FaultPlan::none(),
            pkts_per_bit: 5,
            rate_margin: 0.9,
            max_cycles: 10_000,
            seed: 1,
            phy: PhyConfig::Presence,
            polling: PollingPolicy::Naive,
        }
    }
}

impl GatewayConfig {
    /// Sets the fault plan (builder style).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the master seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the DRR quantum (builder style).
    pub fn with_quantum_bytes(mut self, quantum: u64) -> Self {
        self.quantum_bytes = quantum.max(1);
        self
    }

    /// Arms forward error correction on every tag's transport (builder
    /// style): the template's segment payload is capped and the group
    /// code applied exactly as in
    /// [`TransportConfig::with_fec`](crate::arq::TransportConfig::with_fec).
    pub fn with_fec(mut self, fec: crate::fec::FecConfig) -> Self {
        self.transport = self.transport.with_fec(fec);
        self
    }

    /// Sets the PHY mode (builder style) and re-derives the inventory
    /// slot length from the mode's capabilities — codeword singulation
    /// replies ride short residue bursts instead of multi-packet
    /// presence captures, so its slots are much shorter.
    pub fn with_phy(mut self, phy: PhyConfig) -> Self {
        self.slot_us = phy.capabilities().inventory_slot_us;
        self.phy = phy;
        self
    }

    /// Sets the polling policy (builder style).
    pub fn with_polling(mut self, polling: PollingPolicy) -> Self {
        self.polling = polling;
        self
    }
}

/// Why a gateway run could not start.
///
/// The doc contract on [`TagProfile::address`] ("must be unique across
/// the deployment") used to be unenforced: a duplicate address made the
/// profile lookup after singulation silently pair *both* inventory
/// identifications with the first matching profile, so one tag's
/// message was reported delivered twice and the other's never sent.
/// The gateway now rejects the roster up front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum GatewayError {
    /// Two [`TagProfile`]s share a link-layer address.
    DuplicateAddress {
        /// The address that appears more than once.
        address: u8,
    },
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::DuplicateAddress { address } => write!(
                f,
                "duplicate tag address {address}: TagProfile.address must be \
                 unique across the deployment"
            ),
        }
    }
}

impl std::error::Error for GatewayError {}

/// Per-tag energy outcome, present iff the profile carried a supply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TagEnergyOutcome {
    /// Stored charge at the end of the run, µJ.
    pub final_charge_uj: f64,
    /// Awake→Dead transitions over the run.
    pub brownouts: u32,
    /// Post-brownout climbs back to Awake.
    pub recoveries: u32,
    /// Polls the reader transmitted that this tag could not answer.
    pub missed_polls: u32,
}

/// Per-tag outcome of a gateway run.
#[derive(Debug, Clone, PartialEq)]
pub struct TagOutcome {
    /// The tag's address.
    pub address: u8,
    /// Chip rate the tag ended on (bps; lower than it started if rate
    /// adaptation stepped it down).
    pub final_chip_rate_bps: u64,
    /// Scheduler rounds this tag was served.
    pub rounds_served: u32,
    /// The tag's transfer report.
    pub transfer: Transfer,
    /// Energy outcome, `None` for an immortal (supply-less) tag.
    pub energy: Option<TagEnergyOutcome>,
}

/// The whole gateway run: inventory, per-tag transfers, fairness.
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayRun {
    /// The singulation result that fixed the service order.
    pub inventory: InventoryResult,
    /// Per-tag outcomes, in discovery order.
    pub tags: Vec<TagOutcome>,
    /// Scheduler cycles executed.
    pub cycles: u32,
    /// Total simulated time, inventory included (µs).
    pub airtime_us: u64,
    /// Jain's fairness index over per-tag delivered bytes (1 = perfectly
    /// fair; 0 when nothing was delivered).
    pub fairness: f64,
    /// True when every discovered tag's message arrived completely.
    pub all_complete: bool,
    /// True when the [`GatewayConfig::max_cycles`] backstop cut the
    /// scheduler off while at least one session could still have run
    /// another round. A truncated run's incomplete transfers say nothing
    /// about the link — the simulation ran out of cycles, not the tags
    /// out of budget — which used to be inferable only by guessing from
    /// `all_complete`. The fleet report mirrors this per shard.
    pub truncated: bool,
    /// Poll slots the scheduler spent: served rounds plus wasted
    /// (silent) polls.
    pub polls: u64,
    /// Polls wasted on tags that had no energy to answer — each one
    /// costs a full control exchange of airtime.
    pub missed_polls: u64,
    /// Merged degradation accounting across every tag's link.
    pub degradation: DegradationReport,
    /// Observability report, populated only by
    /// [`run_gateway_observed`].
    pub obs: Option<ObsReport>,
}

impl GatewayRun {
    /// Total delivered-message bits per second of simulated time.
    pub fn aggregate_goodput_bps(&self) -> f64 {
        if self.airtime_us == 0 {
            return 0.0;
        }
        let bits: u64 = self
            .tags
            .iter()
            .filter(|t| t.transfer.complete)
            .map(|t| t.transfer.message_bytes * 8)
            .sum();
        bits as f64 / (self.airtime_us as f64 / 1e6)
    }
}

impl RunReport for GatewayRun {
    fn bits(&self) -> u64 {
        self.tags.iter().map(|t| t.transfer.bits()).sum()
    }

    fn bit_errors(&self) -> u64 {
        self.tags.iter().map(|t| t.transfer.bit_errors()).sum()
    }

    fn degradation(&self) -> &DegradationReport {
        &self.degradation
    }

    fn obs(&self) -> Option<&ObsReport> {
        self.obs.as_ref()
    }
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`, 1.0 for equal shares.
pub(crate) fn jain_index(shares: &[u64]) -> f64 {
    if shares.is_empty() {
        return 0.0;
    }
    let sum: f64 = shares.iter().map(|&x| x as f64).sum();
    let sq: f64 = shares.iter().map(|&x| (x as f64) * (x as f64)).sum();
    if sq == 0.0 {
        return 0.0;
    }
    sum * sum / (shares.len() as f64 * sq)
}

struct ServedTag {
    profile: TagProfile,
    session: TransportSession,
    link: SimLink,
    deficit: u64,
    rounds_served: u32,
    // Cadence estimate for rate re-adaptation: payload sent vs acked.
    sent_bytes: u64,
    acked_bytes: u64,
    // --- energy co-simulation (simulator-internal truth) ---
    capacitor: Option<Capacitor>,
    /// Simulated time up to which the capacitor has been integrated.
    energy_at_us: u64,
    missed_polls: u32,
    // --- scheduler-side estimator (observed silence only) ---
    consecutive_misses: u32,
    skip_until_cycle: u32,
}

impl ServedTag {
    /// Integrates the tag's supply forward to `up_to_us` at `load_uw`.
    fn integrate_energy(&mut self, up_to_us: u64, load_uw: f64) {
        let span = up_to_us.saturating_sub(self.energy_at_us);
        self.energy_at_us = self.energy_at_us.max(up_to_us);
        if let (Some(e), Some(c)) = (self.profile.energy, self.capacitor.as_mut()) {
            c.advance(span as f64, e.harvest_uw, load_uw);
        }
    }

    /// The idle load: the rx chain listening for a poll, when the policy
    /// allows it in the current state.
    fn idle_load_uw(&self) -> f64 {
        match (self.profile.energy, self.capacitor.as_ref()) {
            (Some(e), Some(c)) if e.policy.can_listen(c.state()) => LISTEN_LOAD_UW,
            _ => 0.0,
        }
    }

    /// Simulator-internal truth: can this tag answer a poll right now?
    /// The *scheduler* never calls this — it only sees the resulting
    /// silence.
    fn can_respond_now(&self) -> bool {
        match (self.profile.energy, self.capacitor.as_ref()) {
            (Some(e), Some(c)) => e.policy.can_respond(c.state()),
            _ => true,
        }
    }
}

/// Runs the gateway over `tags`, recording scheduler spans and counters
/// on `rec`. Observe-enabled twin of [`run_gateway`].
///
/// # Errors
/// [`GatewayError::DuplicateAddress`] if two profiles share an address —
/// the roster is rejected before any simulated time passes.
pub fn run_gateway_with(
    tags: &[TagProfile],
    cfg: &GatewayConfig,
    rec: &mut dyn Recorder,
) -> Result<GatewayRun, GatewayError> {
    // Reject ambiguous rosters up front: with a duplicate address the
    // post-inventory profile lookup would silently serve the first
    // matching profile for every identification of that address.
    let mut seen = [false; 256];
    for t in tags {
        if std::mem::replace(&mut seen[t.address as usize], true) {
            return Err(GatewayError::DuplicateAddress { address: t.address });
        }
    }

    let root = SimRng::new(cfg.seed);
    let caps = cfg.phy.capabilities();

    // Phase 1 — singulation: discover who is out there and in what
    // order they will be served. Audit note: the inventory clock used to
    // multiply slots by the raw config field inline; the accounting now
    // goes through `InventoryResult::airtime_us` so the slot length can
    // follow the PHY (see `GatewayConfig::with_phy`). A tag whose supply
    // cannot fund a reply at cold start is silent through singulation:
    // the reader never learns it exists.
    let inv_tags: Vec<InventoryTag> = tags
        .iter()
        .map(|t| {
            let powered = t.energy.is_none_or(|e| {
                e.policy.can_respond(Capacitor::new(e.capacitor).state())
            });
            let it = InventoryTag::new(t.address);
            if powered {
                it
            } else {
                it.unpowered()
            }
        })
        .collect();
    let mut inv_rng = root.stream("gateway-inventory");
    let inventory = run_inventory_with(&inv_tags, cfg.inventory, &mut inv_rng, rec);
    let mut clock_us = inventory.airtime_us(cfg.slot_us);

    // Phase 2 — one transport session + link per discovered tag.
    let mut served: Vec<ServedTag> = inventory
        .identified
        .iter()
        .filter_map(|&addr| tags.iter().find(|t| t.address == addr))
        .enumerate()
        .map(|(i, profile)| {
            // Audit note: initial rate selection used to call the
            // presence-only `select_bit_rate`; the capabilities pick
            // from the configured PHY's own rate table.
            let chip_rate =
                caps.select_rate_bps(profile.helper_pps, cfg.pkts_per_bit, cfg.rate_margin);
            let link_seed = root.stream("gateway-link").substream(i as u64).seed();
            let mut link = SimLink::new(cfg.faults.clone(), link_seed);
            link.set_chip_rate_bps(chip_rate);
            link.advance_us(clock_us);
            let tcfg = TransportConfig {
                tag_address: profile.address,
                msg_id: profile.address,
                seed: root
                    .stream("gateway-transport")
                    .substream(i as u64)
                    .seed(),
                ..cfg.transport.clone()
            };
            ServedTag {
                session: TransportSession::new(&profile.message, tcfg),
                capacitor: profile.energy.map(|e| Capacitor::new(e.capacitor)),
                profile: profile.clone(),
                link,
                deficit: 0,
                rounds_served: 0,
                sent_bytes: 0,
                acked_bytes: 0,
                energy_at_us: 0,
                missed_polls: 0,
                consecutive_misses: 0,
                skip_until_cycle: 0,
            }
        })
        .collect();
    // Tags listened through singulation; charge their supplies over it.
    for tag in &mut served {
        let load = tag.idle_load_uw();
        tag.integrate_energy(clock_us, load);
    }

    // Phase 3 — deficit round-robin on the shared clock.
    let mut cycles = 0u32;
    let mut polls = 0u64;
    let mut missed_polls = 0u64;
    while cycles < cfg.max_cycles && served.iter().any(|t| t.session.can_continue()) {
        cycles += 1;
        let cycle_start = clock_us;
        let mut serves = 0u64;
        for tag in served.iter_mut() {
            if !tag.session.can_continue() {
                tag.deficit = 0; // done: a finished flow banks nothing
                continue;
            }
            tag.deficit += cfg.quantum_bytes;
            // Energy-aware backoff: a tag the scheduler has marked as
            // (probably) charging keeps banking quantum but is not
            // polled, so its silence costs no airtime.
            if cfg.polling == PollingPolicy::EnergyAware && cycles < tag.skip_until_cycle {
                rec.add("net.energy-skips", 1);
                continue;
            }
            // Bring the supply forward to the poll instant: the tag was
            // idle-listening (or dead) since we last looked at it.
            let idle_load = tag.idle_load_uw();
            tag.integrate_energy(clock_us, idle_load);
            if !tag.can_respond_now() {
                // Wasted poll: the reader transmits the query, then holds
                // the medium for one segment's worth of response window
                // before concluding silence. That airtime burns either
                // way — this is the cost the energy-aware policy avoids.
                let poll = Query {
                    tag_address: tag.profile.address,
                    payload_bits: 0,
                    bit_rate_bps: nearest_supported_rate(tag.link.chip_rate_bps()),
                    code_length: 1,
                };
                let frame = poll.to_frame().expect("supported rate is encodable");
                let window_bits = cfg.transport.seg_payload_bytes * 8;
                clock_us += tag.link.control_air_us(&frame) + tag.link.segment_air_us(window_bits);
                polls += 1;
                missed_polls += 1;
                tag.missed_polls += 1;
                tag.consecutive_misses += 1;
                let idle_load = tag.idle_load_uw();
                tag.integrate_energy(clock_us, idle_load);
                if cfg.polling == PollingPolicy::EnergyAware {
                    let backoff = 1u32 << tag.consecutive_misses.min(3);
                    tag.skip_until_cycle = cycles.saturating_add(backoff);
                }
                rec.add("net.energy-missed-polls", 1);
                continue;
            }
            tag.consecutive_misses = 0;
            while tag.session.can_continue() && tag.deficit >= tag.session.next_round_bytes() {
                // One reader, one medium: bring this tag's link forward
                // to the global clock, serve a round, take the time.
                let link_now = tag.link.now_us();
                tag.link.advance_us(clock_us.saturating_sub(link_now));
                let outcome = tag.session.step_round(&mut tag.link, rec);
                clock_us = tag.link.now_us();
                polls += 1;
                // The round's span was spent receiving the burst grant
                // and transmitting the reply — charge the tx-heavy rate.
                tag.integrate_energy(clock_us, RESPOND_LOAD_UW);
                tag.deficit = tag.deficit.saturating_sub(outcome.sent_bytes);
                tag.rounds_served += 1;
                tag.sent_bytes += outcome.sent_bytes;
                tag.acked_bytes += outcome.acked_bytes;
                serves += 1;
                rec.add("net.sched-serves", 1);

                // Reactive per-tag rate adaptation: the delivery ratio
                // scales the §5 cadence estimate; a collapse steps the
                // chip rate down (never up — the adapter is one-way,
                // like the session's reactive mitigation). Audit note:
                // this used to call `readapt_chip_rate` directly,
                // halving against the presence floor whatever the PHY;
                // the capabilities step down the configured mode's own
                // rate table instead.
                if tag.sent_bytes >= 4 * cfg.quantum_bytes {
                    let delivery = tag.acked_bytes as f64 / tag.sent_bytes as f64;
                    let measured_pps = tag.profile.helper_pps * delivery;
                    if let Some(slower) = caps.readapt_rate(
                        tag.link.chip_rate_bps(),
                        measured_pps,
                        f64::from(cfg.pkts_per_bit),
                    ) {
                        tag.link.set_chip_rate_bps(slower);
                        rec.add("net.rate-readapts", 1);
                    }
                }
            }
        }
        rec.add("net.sched-cycles", 1);
        rec.span("net.sched", cycle_start, clock_us, serves);
    }

    // The loop above exits either because every session ran itself to
    // completion/budget-exhaustion, or because the cycle backstop fired
    // with work still pending — only the latter is a truncation.
    let truncated = served.iter().any(|t| t.session.can_continue());

    // Phase 4 — close every session into its report.
    let mut degradation = DegradationReport::default();
    let outcomes: Vec<TagOutcome> = served
        .into_iter()
        .map(|mut tag| {
            let final_rate = tag.link.chip_rate_bps();
            let transfer = tag.session.finish(&mut tag.link);
            degradation.merge(&transfer.degradation);
            let energy = tag.capacitor.as_ref().map(|c| TagEnergyOutcome {
                final_charge_uj: c.charge_uj(),
                brownouts: c.brownouts(),
                recoveries: c.recoveries(),
                missed_polls: tag.missed_polls,
            });
            TagOutcome {
                address: tag.profile.address,
                final_chip_rate_bps: final_rate,
                rounds_served: tag.rounds_served,
                transfer,
                energy,
            }
        })
        .collect();

    let delivered: Vec<u64> = outcomes
        .iter()
        .map(|t| t.transfer.delivered_bytes)
        .collect();
    Ok(GatewayRun {
        all_complete: !outcomes.is_empty() && outcomes.iter().all(|t| t.transfer.complete),
        fairness: jain_index(&delivered),
        tags: outcomes,
        cycles,
        airtime_us: clock_us,
        truncated,
        polls,
        missed_polls,
        inventory,
        degradation,
        obs: None,
    })
}

/// Runs the gateway with no observability overhead.
///
/// # Errors
/// [`GatewayError::DuplicateAddress`] if two profiles share an address.
pub fn run_gateway(tags: &[TagProfile], cfg: &GatewayConfig) -> Result<GatewayRun, GatewayError> {
    run_gateway_with(tags, cfg, &mut NullRecorder)
}

/// Like [`run_gateway`] but attaches the [`ObsReport`] to the result.
///
/// # Errors
/// [`GatewayError::DuplicateAddress`] if two profiles share an address.
pub fn run_gateway_observed(
    tags: &[TagProfile],
    cfg: &GatewayConfig,
) -> Result<GatewayRun, GatewayError> {
    let mut rec = MemRecorder::new();
    let mut run = run_gateway_with(tags, cfg, &mut rec)?;
    run.obs = Some(rec.into_report());
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize, bytes: usize) -> Vec<TagProfile> {
        (0..n)
            .map(|i| {
                TagProfile::new(
                    i as u8 + 1,
                    (0..bytes).map(|b| ((b + i * 7) % 251) as u8).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn clean_gateway_delivers_everything_fairly() {
        let run = run_gateway(&fleet(4, 128), &GatewayConfig::default()).unwrap();
        assert!(run.all_complete);
        assert_eq!(run.tags.len(), 4);
        for t in &run.tags {
            assert!(t.transfer.complete, "tag {} incomplete", t.address);
            assert_eq!(t.transfer.delivered_bytes, 128);
        }
        assert!(run.fairness > 0.99, "fairness {}", run.fairness);
        assert!(run.is_clean());
    }

    #[test]
    fn gateway_is_deterministic() {
        let cfg = GatewayConfig::default()
            .with_faults(FaultPlan::preset("loss", 0.8, 3).unwrap())
            .with_seed(42);
        let a = run_gateway(&fleet(3, 200), &cfg).unwrap();
        let b = run_gateway(&fleet(3, 200), &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn lossy_gateway_still_delivers_exact_bytes() {
        let cfg = GatewayConfig::default()
            .with_faults(FaultPlan::preset("loss", 1.0, 9).unwrap())
            .with_seed(7);
        let tags = fleet(3, 160);
        let run = run_gateway(&tags, &cfg).unwrap();
        assert!(run.all_complete, "ARQ must push through 30% loss");
        // `run.tags` is in discovery order — match by address.
        for t in &run.tags {
            let p = tags.iter().find(|p| p.address == t.address).unwrap();
            assert_eq!(t.transfer.delivered.as_ref(), Some(&p.message));
        }
    }

    #[test]
    fn starved_tag_rate_readapts_downward() {
        // A tag whose helper cadence is near the commanded rate's floor
        // plus heavy loss → the delivery-scaled cadence collapses and
        // the gateway steps the chip rate down.
        let mut tags = fleet(2, 256);
        tags[0].helper_pps = 600.0; // selects 100 bps at ppb 5, margin 0.9
        let cfg = GatewayConfig {
            faults: FaultPlan::preset("loss", 1.0, 5).unwrap()
                .with(bs_channel::faults::Fault::RateCollapse { keep: 0.2 }),
            seed: 11,
            ..GatewayConfig::default()
        };
        let run = run_gateway_observed(&tags, &cfg).unwrap();
        let obs = run.obs.as_ref().unwrap();
        assert!(
            obs.counter("net.rate-readapts") > 0,
            "collapsed cadence should trigger re-adaptation"
        );
        assert!(run.tags.iter().any(|t| t.final_chip_rate_bps < 100));
    }

    #[test]
    fn scheduler_spans_and_counters_recorded() {
        let run = run_gateway_observed(&fleet(3, 96), &GatewayConfig::default()).unwrap();
        let obs = run.obs.as_ref().unwrap();
        assert!(obs.spans_for("net.sched").count() >= 1);
        assert!(obs.counter("net.sched-cycles") >= 1);
        assert!(obs.counter("net.sched-serves") >= 3);
        // The per-tag transports also recorded through the same recorder.
        assert!(obs.counter("net.polls") >= 3);
    }

    #[test]
    fn fec_gateway_delivers_exactly_and_repairs() {
        let cfg = GatewayConfig::default()
            .with_faults(FaultPlan::preset("loss", 1.0, 13).unwrap())
            .with_seed(3)
            .with_fec(crate::fec::FecConfig::fixed(8, 2));
        let tags = fleet(3, 160);
        let run = run_gateway_observed(&tags, &cfg).unwrap();
        assert!(run.all_complete, "FEC gateway must deliver under loss");
        for t in &run.tags {
            let p = tags.iter().find(|p| p.address == t.address).unwrap();
            assert_eq!(t.transfer.delivered.as_ref(), Some(&p.message));
        }
        let repairs: u64 = run.tags.iter().map(|t| t.transfer.fec_repairs).sum();
        assert!(repairs > 0, "30% loss across 3 tags should repair something");
        assert_eq!(
            run.obs.as_ref().unwrap().counter("net.fec.repair"),
            repairs,
            "per-tag counters and the shared recorder must agree"
        );
    }

    #[test]
    fn codeword_gateway_selects_codeword_rates_and_short_slots() {
        // Audit sites D/E/F: a codeword gateway must pick from the
        // codeword rate table (25 kbps at the nominal 3000 pps cadence,
        // not the presence table's 1 kbps cap), charge the codeword's
        // short singulation slots, and still deliver everything.
        let cw = GatewayConfig::default().with_phy(PhyConfig::codeword());
        assert_eq!(
            cw.slot_us,
            PhyConfig::codeword().capabilities().inventory_slot_us,
            "with_phy must re-derive the inventory slot length"
        );
        let tags = fleet(3, 128);
        let run = run_gateway(&tags, &cw).unwrap();
        assert!(run.all_complete);
        for t in &run.tags {
            assert_eq!(
                t.final_chip_rate_bps, 25_000,
                "tag {} not on the codeword rate table",
                t.address
            );
        }
        // Same seed, same inventory outcome, but every phase is faster:
        // shorter slots and a ~25x uplink rate.
        let presence = run_gateway(&tags, &GatewayConfig::default()).unwrap();
        assert_eq!(run.inventory.slots, presence.inventory.slots);
        assert!(
            run.airtime_us < presence.airtime_us,
            "codeword {} us vs presence {} us",
            run.airtime_us,
            presence.airtime_us
        );
    }

    #[test]
    fn empty_fleet_is_a_clean_noop() {
        let run = run_gateway(&[], &GatewayConfig::default()).unwrap();
        assert!(!run.all_complete);
        assert!(run.tags.is_empty());
        assert_eq!(run.fairness, 0.0);
    }

    #[test]
    fn duplicate_addresses_are_rejected_not_mispaired() {
        // Regression: two tags at the same address used to both pair
        // with the first matching profile, double-reporting one message
        // and dropping the other. Now the roster is rejected up front.
        let mut tags = fleet(3, 64);
        tags[2].address = tags[0].address;
        let err = run_gateway(&tags, &GatewayConfig::default()).unwrap_err();
        assert_eq!(err, GatewayError::DuplicateAddress { address: 1 });
        assert!(err.to_string().contains("duplicate tag address 1"));
        // The observed twin takes the same gate.
        assert!(run_gateway_observed(&tags, &GatewayConfig::default()).is_err());
    }

    #[test]
    fn max_cycles_exhaustion_is_reported_as_truncated() {
        // Regression: a backstop-truncated run used to be
        // indistinguishable from a finished one except by inferring
        // from `all_complete`.
        let cfg = GatewayConfig {
            max_cycles: 2,
            faults: FaultPlan::preset("loss", 1.0, 3).unwrap(),
            ..GatewayConfig::default()
        };
        let run = run_gateway(&fleet(3, 400), &cfg).unwrap();
        assert!(run.truncated, "2 cycles cannot move 400 B under loss");
        assert!(!run.all_complete);

        let clean = run_gateway(&fleet(3, 64), &GatewayConfig::default()).unwrap();
        assert!(!clean.truncated, "a naturally finished run is not truncated");
        assert!(clean.all_complete);
    }

    fn starving_energy() -> EnergyConfig {
        // 10 µF at 2 V is a 20 µJ reservoir; harvesting 5 µW against an
        // 11 µW listen draw, the tag browns out while idling and crawls
        // back while dead.
        EnergyConfig {
            capacitor: bs_tag::energy::CapacitorConfig {
                capacitance_uf: 10.0,
                ..bs_tag::energy::CapacitorConfig::default()
            },
            harvest_uw: 5.0,
            policy: bs_tag::energy::EnergyPolicy::SleepUntilCharged,
        }
    }

    #[test]
    fn always_powered_energy_matches_energy_none() {
        let cfg = GatewayConfig::default()
            .with_faults(FaultPlan::preset("loss", 0.8, 3).unwrap())
            .with_seed(42);
        let plain = run_gateway(&fleet(4, 128), &cfg).unwrap();
        let powered_tags: Vec<TagProfile> = fleet(4, 128)
            .into_iter()
            .map(|t| t.with_energy(EnergyConfig::always_powered()))
            .collect();
        let powered = run_gateway(&powered_tags, &cfg).unwrap();
        assert_eq!(plain.airtime_us, powered.airtime_us);
        assert_eq!(plain.cycles, powered.cycles);
        assert_eq!(plain.polls, powered.polls);
        assert_eq!(powered.missed_polls, 0);
        assert_eq!(plain.fairness, powered.fairness);
        for (a, b) in plain.tags.iter().zip(powered.tags.iter()) {
            assert_eq!(a.transfer, b.transfer, "tag {} diverged", a.address);
            let e = b.energy.expect("supply armed");
            assert_eq!(e.brownouts, 0);
            assert_eq!(e.missed_polls, 0);
        }
    }

    #[test]
    fn starving_tag_browns_out_and_misses_polls() {
        let mut tags = fleet(4, 256);
        tags[0] = tags[0].clone().with_energy(starving_energy());
        let cfg = GatewayConfig::default()
            .with_faults(FaultPlan::preset("loss", 0.6, 7).unwrap())
            .with_seed(9);
        let run = run_gateway_observed(&tags, &cfg).unwrap();
        assert!(run.missed_polls > 0, "starving tag should miss polls");
        let e = run
            .tags
            .iter()
            .find(|t| t.address == 1)
            .and_then(|t| t.energy)
            .expect("tag 1 discovered with a supply");
        assert!(e.brownouts >= 1, "brownouts: {}", e.brownouts);
        assert_eq!(u64::from(e.missed_polls), run.missed_polls);
        assert_eq!(
            run.obs.as_ref().unwrap().counter("net.energy-missed-polls"),
            run.missed_polls
        );
        // The immortal tags are unaffected.
        for t in run.tags.iter().filter(|t| t.address != 1) {
            assert!(t.transfer.complete, "tag {} incomplete", t.address);
            assert!(t.energy.is_none());
        }
    }

    #[test]
    fn energy_aware_polling_beats_naive_on_paired_seed() {
        let mut tags = fleet(4, 256);
        tags[0] = tags[0].clone().with_energy(starving_energy());
        let base = GatewayConfig::default()
            .with_faults(FaultPlan::preset("loss", 0.6, 7).unwrap())
            .with_seed(9);
        let naive = run_gateway(&tags, &base).unwrap();
        let aware = run_gateway_observed(
            &tags,
            &base.clone().with_polling(PollingPolicy::EnergyAware),
        )
        .unwrap();
        assert!(
            aware.obs.as_ref().unwrap().counter("net.energy-skips") > 0,
            "the estimator should engage"
        );
        assert!(
            aware.missed_polls <= naive.missed_polls,
            "aware {} vs naive {} missed polls",
            aware.missed_polls,
            naive.missed_polls
        );
        assert!(
            aware.aggregate_goodput_bps() >= naive.aggregate_goodput_bps(),
            "aware {} vs naive {} bps",
            aware.aggregate_goodput_bps(),
            naive.aggregate_goodput_bps()
        );
    }

    #[test]
    fn dead_at_cold_start_tag_is_never_discovered() {
        let mut tags = fleet(3, 64);
        let mut supply = starving_energy();
        supply.capacitor.initial_fraction = 0.0;
        supply.harvest_uw = 0.0;
        tags[1] = tags[1].clone().with_energy(supply);
        let run = run_gateway(&tags, &GatewayConfig::default()).unwrap();
        assert_eq!(run.tags.len(), 2, "dead tag must stay invisible");
        assert!(run.tags.iter().all(|t| t.address != 2));
        assert_eq!(run.missed_polls, 0, "an unknown tag is never polled");
    }

    #[test]
    fn jain_index_math() {
        assert_eq!(jain_index(&[]), 0.0);
        assert_eq!(jain_index(&[0, 0]), 0.0);
        assert!((jain_index(&[5, 5, 5]) - 1.0).abs() < 1e-12);
        // One hog, three starved: 16/(4·100)… = (10)²/(4·(64+4+4+4)).
        let skewed = jain_index(&[8, 2, 0, 0]);
        assert!(skewed < 0.5, "{skewed}");
    }
}
