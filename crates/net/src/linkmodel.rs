//! The link abstraction the transport runs over, with three
//! implementations: a fast seeded loss model for benches and conformance
//! sweeps, a traffic-driven model whose losses follow the helper's
//! actual packet arrivals, and the full PHY simulation for end-to-end
//! validation.
//!
//! The ARQ machinery ([`crate::arq`]) only needs four things from a
//! link: deliver a downlink control frame or not, deliver an uplink
//! segment (possibly duplicated) or not, account airtime, and keep a
//! simulated clock. [`SimLink`] answers those with severity-scaled
//! Bernoulli draws derived from the same [`FaultPlan`] vocabulary the
//! rest of the stack uses — `packet-loss` drops, `rate-collapse`
//! starvation, `helper-outage` windows and `packet-duplication` — so a
//! transport sweep composes with the existing fault presets.
//! [`TrafficLink`] replaces the flat segment-loss draw with a helper
//! arrival trace (see [`WildTraffic`]): a segment dies when too few
//! helper packets land inside its on-air window, which turns
//! heavy-tailed idle gaps into the *bursty* loss process the FEC layer
//! exists to repair. [`PhyLink`] routes every frame through
//! `run_downlink_frame_with` and every segment through the actual
//! uplink decode chain.

use bs_channel::faults::{Fault, FaultPlan};
use bs_dsp::obs::Recorder;
use bs_dsp::SimRng;
use bs_tag::frame::DownlinkFrame;
use bs_wifi::traffic::WildTraffic;
use wifi_backscatter::link::{DegradationReport, DownlinkConfig, LinkConfig, MitigationPolicy};
use wifi_backscatter::phy::{run_downlink_frame_with, run_uplink_with, PhyConfig};

/// What happened to one uplink segment on the air.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentFate {
    /// Never decoded at the reader.
    Lost,
    /// Decoded once.
    Delivered,
    /// Decoded twice (MAC-level duplication): the receiver must
    /// deduplicate.
    DeliveredTwice,
}

/// The transport's view of a backscatter link.
///
/// All methods are deterministic functions of the construction seed and
/// the call sequence; the transport owns the call sequence, so a whole
/// transfer is replayable from its seed.
pub trait SegmentLink {
    /// Current simulated time (µs).
    fn now_us(&self) -> u64;

    /// Advances the simulated clock (airtime, turnaround, backoff).
    fn advance_us(&mut self, us: u64);

    /// Attempts a downlink control frame (poll or ACK); true = the other
    /// end decoded it.
    fn send_control(&mut self, frame: &DownlinkFrame, rec: &mut dyn Recorder) -> bool;

    /// Attempts one uplink segment given its on-air bits.
    fn send_segment(&mut self, bits: &[bool], rec: &mut dyn Recorder) -> SegmentFate;

    /// On-air time of a downlink control frame (µs).
    fn control_air_us(&self, frame: &DownlinkFrame) -> u64;

    /// On-air time of an uplink burst of `n_bits` bits (µs).
    fn segment_air_us(&self, n_bits: usize) -> u64;

    /// Current uplink chip rate (bits/s in plain mode).
    fn chip_rate_bps(&self) -> u64;

    /// Re-commands the uplink chip rate (rate adaptation).
    fn set_chip_rate_bps(&mut self, bps: u64);

    /// Takes the degradation accounting accumulated since the last call.
    fn take_degradation(&mut self) -> DegradationReport;
}

/// Fast seeded link model: Bernoulli frame outcomes whose probabilities
/// scale with [`FaultPlan`] severity, plus deterministic outage windows
/// on the shared simulated clock.
#[derive(Debug, Clone)]
pub struct SimLink {
    /// The armed fault plan; severity scales every probability.
    pub faults: FaultPlan,
    /// Downlink (reader→tag) bit rate, bits/s.
    pub downlink_bps: u64,
    /// Uplink chip rate, bits/s in plain mode.
    chip_rate_bps: u64,
    /// Turnaround gap charged around each airtime segment (µs).
    pub gap_us: u64,
    /// Fixed cost of every control exchange (µs): medium access, the
    /// CTS_to_SELF reservation fronting each downlink frame, and the
    /// tag's wake/settle turnaround. This is the per-round overhead a
    /// sliding window amortises over its burst — with it near zero,
    /// stop-and-wait would look artificially competitive.
    pub ctrl_overhead_us: u64,
    now_us: u64,
    rng: SimRng,
    report: DegradationReport,
}

impl SimLink {
    /// A link with the paper's nominal rates: 20 kbps downlink, 500 bps
    /// uplink, 200 µs turnaround. All randomness derives from `seed`
    /// (kept independent of the fault plan's own seed).
    pub fn new(faults: FaultPlan, seed: u64) -> Self {
        SimLink {
            rng: SimRng::new(seed ^ faults.seed.rotate_left(17)).stream("net-simlink"),
            faults,
            downlink_bps: 20_000,
            chip_rate_bps: 500,
            gap_us: 200,
            ctrl_overhead_us: 30_000,
            now_us: 0,
            report: DegradationReport::default(),
        }
    }

    /// Overrides the downlink and uplink rates.
    pub fn with_rates(mut self, downlink_bps: u64, chip_rate_bps: u64) -> Self {
        self.downlink_bps = downlink_bps.max(1);
        self.chip_rate_bps = chip_rate_bps.max(1);
        self
    }

    /// Per-segment uplink failure probability: downlink-style frame loss
    /// composed with rate-collapse starvation (a collapsed helper
    /// cadence starves the decoder of measurements for the whole
    /// segment).
    fn segment_loss_prob(&self) -> f64 {
        plan_segment_loss_prob(&self.faults)
    }

    /// Whole-segment duplication probability (MAC retransmission whose
    /// ACK was lost).
    fn dup_prob(&self) -> f64 {
        plan_dup_prob(&self.faults)
    }

    fn record_fault(&mut self, name: &str) {
        if !self.report.fired(name) {
            self.report.faults_fired.push(name.to_string());
        }
    }
}

/// Severity-scaled per-segment loss probability of a fault plan: frame
/// loss composed with rate-collapse starvation (a collapsed helper
/// cadence starves the decoder of measurements for the whole segment).
fn plan_segment_loss_prob(faults: &FaultPlan) -> f64 {
    let sev = faults.severity.clamp(0.0, 1.0);
    if sev <= 0.0 {
        return 0.0;
    }
    let mut keep = 1.0 - faults.frame_loss_prob();
    for f in &faults.faults {
        if let Fault::RateCollapse { keep: k } = *f {
            keep *= 1.0 - (sev * (1.0 - k.clamp(0.0, 1.0))).clamp(0.0, 1.0);
        }
    }
    (1.0 - keep).clamp(0.0, 1.0)
}

/// Severity-scaled whole-segment duplication probability of a fault plan.
fn plan_dup_prob(faults: &FaultPlan) -> f64 {
    let sev = faults.severity.clamp(0.0, 1.0);
    faults
        .faults
        .iter()
        .map(|f| match *f {
            Fault::PacketDuplication { prob } => (prob * sev).clamp(0.0, 1.0),
            _ => 0.0,
        })
        .fold(0.0, f64::max)
}

impl SegmentLink for SimLink {
    fn now_us(&self) -> u64 {
        self.now_us
    }

    fn advance_us(&mut self, us: u64) {
        self.now_us += us;
    }

    fn send_control(&mut self, frame: &DownlinkFrame, rec: &mut dyn Recorder) -> bool {
        let air = self.control_air_us(frame);
        let outage = self.faults.outage_at(self.now_us + air / 2);
        let lost = self.rng.chance(self.faults.frame_loss_prob());
        self.now_us += self.ctrl_overhead_us + air + self.gap_us;
        if outage || lost {
            self.report.packets_dropped += 1;
            self.record_fault(if outage { "helper-outage" } else { "packet-loss" });
            rec.add("net.control-lost", 1);
            return false;
        }
        true
    }

    fn send_segment(&mut self, bits: &[bool], rec: &mut dyn Recorder) -> SegmentFate {
        let air = self.segment_air_us(bits.len());
        let outage = self.faults.outage_at(self.now_us + air / 2);
        let lost = self.rng.chance(self.segment_loss_prob());
        let dup = self.rng.chance(self.dup_prob());
        self.now_us += air + self.gap_us;
        if outage || lost {
            self.report.packets_dropped += 1;
            self.record_fault(if outage { "helper-outage" } else { "packet-loss" });
            rec.add("net.segments-lost", 1);
            return SegmentFate::Lost;
        }
        if dup {
            self.report.packets_duplicated += 1;
            self.record_fault("packet-duplication");
            return SegmentFate::DeliveredTwice;
        }
        SegmentFate::Delivered
    }

    fn control_air_us(&self, frame: &DownlinkFrame) -> u64 {
        frame.to_bits().len() as u64 * 1_000_000 / self.downlink_bps.max(1)
    }

    fn segment_air_us(&self, n_bits: usize) -> u64 {
        n_bits as u64 * 1_000_000 / self.chip_rate_bps.max(1)
    }

    fn chip_rate_bps(&self) -> u64 {
        self.chip_rate_bps
    }

    fn set_chip_rate_bps(&mut self, bps: u64) {
        self.chip_rate_bps = bps.max(1);
    }

    fn take_degradation(&mut self) -> DegradationReport {
        std::mem::take(&mut self.report)
    }
}

/// A link whose uplink is gated by *when the helper actually talks*: a
/// pre-generated helper-packet arrival trace (usually from
/// [`WildTraffic`]) decides segment fate instead of a flat Bernoulli
/// draw.
///
/// Wi-Fi Backscatter's uplink only exists while helper packets are on
/// the air — the tag modulates its reflection of *their* energy. A
/// Poisson helper keeps every segment fed; a heavy-tailed one leaves
/// Pareto-length silences that starve whole bursts of segments at once.
/// That burstiness is exactly the loss process FEC-across-a-window
/// repairs and per-segment ARQ pays a full round trip for, so the
/// fec bench and conformance suite run over this link.
///
/// Mechanics: a segment of `n` bits needs at least
/// `ceil(n × min_pkts_per_bit)` helper packets inside its on-air window
/// or it is lost (recorded as the `helper-idle` fault). The trace wraps
/// cyclically past `horizon_us`, so arbitrarily long transfers replay
/// the same diurnal day. On top of the starvation gate the armed
/// [`FaultPlan`] composes exactly as in [`SimLink`] — severity-scaled
/// Bernoulli loss, duplication, outage windows — so fault presets sweep
/// identically across both links. Control frames are reader-transmitted
/// (the reader *is* a Wi-Fi device and needs no ambient traffic), so
/// they see only the fault plan, as in [`SimLink`].
#[derive(Debug, Clone)]
pub struct TrafficLink {
    /// The armed fault plan, composed on top of helper starvation.
    pub faults: FaultPlan,
    /// Downlink (reader→tag) bit rate, bits/s.
    pub downlink_bps: u64,
    /// Uplink chip rate, bits/s in plain mode.
    chip_rate_bps: u64,
    /// Turnaround gap charged around each airtime segment (µs).
    pub gap_us: u64,
    /// Fixed cost of every control exchange (µs). Unlike
    /// [`SimLink::ctrl_overhead_us`] (30 ms: medium access + the
    /// CTS_to_SELF reservation), this defaults to 3 s: on the
    /// traffic-driven link the tag is modelled as RF-powered, and every
    /// feedback round costs a harvest-recharge cycle — the tag trickles
    /// energy from ambient RF for seconds to afford decoding the next
    /// poll/ACK exchange. That recharge-scale round cost is precisely
    /// why cutting feedback rounds with FEC pays on this link where it
    /// would not on a battery-powered one.
    pub ctrl_overhead_us: u64,
    /// Helper packets the uplink decoder needs per bit, on average over
    /// a segment's on-air window. The paper's decoder integrates several
    /// helper packets per chip at high rates; 0.35 models an operating
    /// point where a segment survives moderate thinning but dies when an
    /// idle gap swallows a third of its airtime.
    pub min_pkts_per_bit: f64,
    /// Sorted helper-packet arrival times in `[0, horizon_us)`.
    arrivals: Vec<u64>,
    horizon_us: u64,
    now_us: u64,
    rng: SimRng,
    report: DegradationReport,
}

impl TrafficLink {
    /// A link driven by `traffic`'s arrival process over one cyclic
    /// `horizon_us` trace. Air rates match [`SimLink::new`]; the control
    /// overhead defaults to the RF-powered recharge scale (see
    /// [`TrafficLink::ctrl_overhead_us`]). The trace and the Bernoulli
    /// draws derive from independent substreams of `seed`.
    pub fn new(traffic: &WildTraffic, horizon_us: u64, faults: FaultPlan, seed: u64) -> Self {
        let mut gen_rng = SimRng::new(seed ^ faults.seed.rotate_left(17)).stream("net-traffic-gen");
        let arrivals = traffic.arrivals(horizon_us, &mut gen_rng);
        Self::from_arrivals(arrivals, horizon_us, faults, seed)
    }

    /// A link over an explicit arrival trace (must be sorted and within
    /// `[0, horizon_us)`); the constructor the tests use to pin the
    /// window arithmetic.
    pub fn from_arrivals(
        arrivals: Vec<u64>,
        horizon_us: u64,
        faults: FaultPlan,
        seed: u64,
    ) -> Self {
        assert!(horizon_us > 0, "horizon must be positive");
        assert!(
            arrivals.windows(2).all(|w| w[0] <= w[1]),
            "arrival trace must be sorted"
        );
        assert!(
            arrivals.last().is_none_or(|&t| t < horizon_us),
            "arrivals must fall inside the horizon"
        );
        TrafficLink {
            rng: SimRng::new(seed ^ faults.seed.rotate_left(17)).stream("net-trafficlink"),
            faults,
            downlink_bps: 20_000,
            chip_rate_bps: 500,
            gap_us: 200,
            ctrl_overhead_us: 3_000_000,
            min_pkts_per_bit: 0.35,
            arrivals,
            horizon_us,
            now_us: 0,
            report: DegradationReport::default(),
        }
    }

    /// Overrides the downlink and uplink rates.
    pub fn with_rates(mut self, downlink_bps: u64, chip_rate_bps: u64) -> Self {
        self.downlink_bps = downlink_bps.max(1);
        self.chip_rate_bps = chip_rate_bps.max(1);
        self
    }

    /// Overrides the decoder's helper-packet demand.
    pub fn with_min_pkts_per_bit(mut self, pkts: f64) -> Self {
        assert!(pkts >= 0.0, "demand must be non-negative");
        self.min_pkts_per_bit = pkts;
        self
    }

    /// The helper-packet arrival trace this link replays.
    pub fn arrivals(&self) -> &[u64] {
        &self.arrivals
    }

    /// Helper packets arriving in `[start_us, start_us + dur_us)`, with
    /// the trace wrapping cyclically at the horizon.
    pub fn packets_within(&self, start_us: u64, dur_us: u64) -> u64 {
        if self.arrivals.is_empty() {
            return 0;
        }
        let n = self.arrivals.len() as u64;
        let full_cycles = dur_us / self.horizon_us;
        let s = start_us % self.horizon_us;
        let rem = dur_us % self.horizon_us;
        let count_before = |t: u64| self.arrivals.partition_point(|&a| a < t) as u64;
        let partial = if s + rem <= self.horizon_us {
            count_before(s + rem) - count_before(s)
        } else {
            (n - count_before(s)) + count_before(s + rem - self.horizon_us)
        };
        full_cycles * n + partial
    }

    fn record_fault(&mut self, name: &str) {
        if !self.report.fired(name) {
            self.report.faults_fired.push(name.to_string());
        }
    }
}

impl SegmentLink for TrafficLink {
    fn now_us(&self) -> u64 {
        self.now_us
    }

    fn advance_us(&mut self, us: u64) {
        self.now_us += us;
    }

    fn send_control(&mut self, frame: &DownlinkFrame, rec: &mut dyn Recorder) -> bool {
        let air = self.control_air_us(frame);
        let outage = self.faults.outage_at(self.now_us + air / 2);
        let lost = self.rng.chance(self.faults.frame_loss_prob());
        self.now_us += self.ctrl_overhead_us + air + self.gap_us;
        if outage || lost {
            self.report.packets_dropped += 1;
            self.record_fault(if outage { "helper-outage" } else { "packet-loss" });
            rec.add("net.control-lost", 1);
            return false;
        }
        true
    }

    fn send_segment(&mut self, bits: &[bool], rec: &mut dyn Recorder) -> SegmentFate {
        let air = self.segment_air_us(bits.len());
        let need = (bits.len() as f64 * self.min_pkts_per_bit).ceil() as u64;
        let have = self.packets_within(self.now_us, air.max(1));
        let outage = self.faults.outage_at(self.now_us + air / 2);
        let lost = self.rng.chance(plan_segment_loss_prob(&self.faults));
        let dup = self.rng.chance(plan_dup_prob(&self.faults));
        self.now_us += air + self.gap_us;
        if have < need {
            self.report.packets_dropped += 1;
            self.record_fault("helper-idle");
            rec.add("net.segments-starved", 1);
            return SegmentFate::Lost;
        }
        if outage || lost {
            self.report.packets_dropped += 1;
            self.record_fault(if outage { "helper-outage" } else { "packet-loss" });
            rec.add("net.segments-lost", 1);
            return SegmentFate::Lost;
        }
        if dup {
            self.report.packets_duplicated += 1;
            self.record_fault("packet-duplication");
            return SegmentFate::DeliveredTwice;
        }
        SegmentFate::Delivered
    }

    fn control_air_us(&self, frame: &DownlinkFrame) -> u64 {
        frame.to_bits().len() as u64 * 1_000_000 / self.downlink_bps.max(1)
    }

    fn segment_air_us(&self, n_bits: usize) -> u64 {
        n_bits as u64 * 1_000_000 / self.chip_rate_bps.max(1)
    }

    fn chip_rate_bps(&self) -> u64 {
        self.chip_rate_bps
    }

    fn set_chip_rate_bps(&mut self, bps: u64) {
        self.chip_rate_bps = bps.max(1);
    }

    fn take_degradation(&mut self) -> DegradationReport {
        std::mem::take(&mut self.report)
    }
}

/// Full-PHY link: every control frame runs the downlink envelope
/// simulation and every segment runs the uplink capture/decode chain.
/// Orders of magnitude slower than [`SimLink`]; used by the end-to-end
/// tests and the gateway example to validate that the transport's
/// abstractions hold over the real stack.
#[derive(Debug, Clone)]
pub struct PhyLink {
    /// Reader↔tag distance (m).
    pub distance_m: f64,
    /// Downlink bit rate (bits/s).
    pub downlink_bps: u64,
    /// Packets-per-bit target for the uplink decoder.
    pub pkts_per_bit: u32,
    /// Injected faults, forwarded to both PHY directions.
    pub faults: FaultPlan,
    /// Mitigations armed on the uplink runs.
    pub mitigations: MitigationPolicy,
    /// PHY mode both directions run
    /// (default: [`PhyConfig::Presence`]). With a codeword PHY the
    /// uplink decodes tag bits from helper-frame demodulation residue
    /// instead of CSI presence captures; the downlink envelope channel
    /// is shared.
    pub phy: PhyConfig,
    chip_rate_bps: u64,
    seed: u64,
    attempt: u64,
    now_us: u64,
    report: DegradationReport,
}

impl PhyLink {
    /// A PHY link at `distance_m` with the given fault plan; `seed`
    /// isolates this link's channel noise from every other stream.
    pub fn new(distance_m: f64, faults: FaultPlan, seed: u64) -> Self {
        PhyLink {
            distance_m,
            downlink_bps: 20_000,
            pkts_per_bit: 5,
            faults,
            mitigations: MitigationPolicy::all(),
            phy: PhyConfig::Presence,
            chip_rate_bps: 100,
            seed,
            attempt: 0,
            now_us: 0,
            report: DegradationReport::default(),
        }
    }

    /// Sets the PHY mode (default: [`PhyConfig::Presence`]).
    pub fn with_phy(mut self, phy: PhyConfig) -> Self {
        self.phy = phy;
        self
    }

    fn next_seed(&mut self) -> u64 {
        self.attempt += 1;
        self.seed
            .wrapping_add(self.attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

impl SegmentLink for PhyLink {
    fn now_us(&self) -> u64 {
        self.now_us
    }

    fn advance_us(&mut self, us: u64) {
        self.now_us += us;
    }

    fn send_control(&mut self, frame: &DownlinkFrame, _rec: &mut dyn Recorder) -> bool {
        let cfg = DownlinkConfig::fig17(self.distance_m, self.downlink_bps, self.next_seed())
            .with_faults(self.faults.clone())
            .with_phy(self.phy.clone());
        self.now_us += self.control_air_us(frame) + 200;
        let (got, report) = run_downlink_frame_with(&cfg, frame, &mut bs_dsp::obs::NullRecorder);
        self.report.merge(&report);
        got.as_ref() == Some(frame)
    }

    fn send_segment(&mut self, bits: &[bool], _rec: &mut dyn Recorder) -> SegmentFate {
        let cfg = LinkConfig::fig10(
            self.distance_m,
            self.chip_rate_bps,
            self.pkts_per_bit,
            self.next_seed(),
        )
        .with_payload(bits.to_vec())
        .with_faults(self.faults.clone())
        .with_mitigations(self.mitigations)
        .with_phy(self.phy.clone());
        self.now_us += self.segment_air_us(bits.len()) + 200;
        let run = run_uplink_with(&cfg, &mut bs_dsp::obs::NullRecorder);
        self.report.merge(&run.degradation);
        if run.detected && run.ber.errors() == 0 {
            SegmentFate::Delivered
        } else {
            SegmentFate::Lost
        }
    }

    fn control_air_us(&self, frame: &DownlinkFrame) -> u64 {
        frame.to_bits().len() as u64 * 1_000_000 / self.downlink_bps.max(1)
    }

    fn segment_air_us(&self, n_bits: usize) -> u64 {
        n_bits as u64 * 1_000_000 / self.chip_rate_bps.max(1)
    }

    fn chip_rate_bps(&self) -> u64 {
        self.chip_rate_bps
    }

    fn set_chip_rate_bps(&mut self, bps: u64) {
        self.chip_rate_bps = bps.max(1);
    }

    fn take_degradation(&mut self) -> DegradationReport {
        std::mem::take(&mut self.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_dsp::obs::NullRecorder;

    fn frame() -> DownlinkFrame {
        DownlinkFrame::new(vec![0x03, 1, 2, 3])
    }

    #[test]
    fn clean_simlink_never_loses() {
        let mut link = SimLink::new(FaultPlan::none(), 42);
        let mut rec = NullRecorder;
        for _ in 0..100 {
            assert!(link.send_control(&frame(), &mut rec));
            assert_eq!(
                link.send_segment(&[true; 64], &mut rec),
                SegmentFate::Delivered
            );
        }
        assert!(link.take_degradation().is_clean());
    }

    #[test]
    fn simlink_is_deterministic() {
        let plan = FaultPlan::preset("loss", 0.8, 77).unwrap();
        let run = |seed| {
            let mut link = SimLink::new(plan.clone(), seed);
            let mut rec = NullRecorder;
            (0..200)
                .map(|_| link.send_segment(&[false; 32], &mut rec))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds should diverge");
    }

    #[test]
    fn loss_probability_scales_with_severity() {
        let count = |sev: f64| {
            let plan = FaultPlan::preset("loss", sev, 11).unwrap();
            let mut link = SimLink::new(plan, 3);
            let mut rec = NullRecorder;
            (0..2000)
                .filter(|_| link.send_segment(&[true; 16], &mut rec) == SegmentFate::Lost)
                .count()
        };
        let (lo, hi) = (count(0.2), count(1.0));
        assert!(lo < hi, "severity 0.2 lost {lo}, 1.0 lost {hi}");
        assert_eq!(count(0.0), 0);
    }

    #[test]
    fn collapse_composes_into_segment_loss() {
        let plan = FaultPlan::new(1).with(Fault::RateCollapse { keep: 0.25 });
        let link = SimLink::new(plan.clone().with_severity(1.0), 0);
        assert!(link.segment_loss_prob() > 0.5);
        let mild = SimLink::new(plan.with_severity(0.1), 0);
        assert!(mild.segment_loss_prob() < link.segment_loss_prob());
    }

    #[test]
    fn outage_window_kills_control_frames() {
        let plan = FaultPlan::preset("outage", 1.0, 5).unwrap();
        let mut link = SimLink::new(plan.clone(), 9);
        let mut rec = NullRecorder;
        // Walk the clock across several outage periods; some sends must
        // fall inside the silent window.
        let mut lost = 0;
        for _ in 0..50 {
            if !link.send_control(&frame(), &mut rec) {
                lost += 1;
            }
            link.advance_us(40_000);
        }
        assert!(lost > 0, "no control frame hit the outage window");
        assert!(link.take_degradation().fired("helper-outage"));
    }

    #[test]
    fn trafficlink_window_count_wraps_cyclically() {
        // Horizon 1000 µs, packets at 100/300/900.
        let link =
            TrafficLink::from_arrivals(vec![100, 300, 900], 1_000, FaultPlan::none(), 0);
        assert_eq!(link.packets_within(0, 1_000), 3);
        assert_eq!(link.packets_within(0, 200), 1);
        assert_eq!(link.packets_within(100, 200), 1); // [100, 300) half-open: excludes 300
        assert_eq!(link.packets_within(100, 201), 2); // [100, 301) includes both
        assert_eq!(link.packets_within(850, 300), 2); // wraps: 900 then 100
        assert_eq!(link.packets_within(0, 3_000), 9); // three full cycles
        assert_eq!(link.packets_within(850, 1_300), 5); // cycle + wrap remainder
        assert_eq!(link.packets_within(400, 100), 0);
    }

    #[test]
    fn dense_traffic_delivers_and_silence_starves() {
        let mut rec = NullRecorder;
        // One helper packet every 100 µs: a 64-bit segment at 500 bps is
        // 128 ms on the air and sees ~1280 packets — far above the
        // 64 × 0.25 = 16 it needs.
        let dense: Vec<u64> = (0..10_000).map(|i| i * 100).collect();
        let mut link = TrafficLink::from_arrivals(dense, 1_000_000, FaultPlan::none(), 1);
        for _ in 0..50 {
            assert_eq!(
                link.send_segment(&[true; 64], &mut rec),
                SegmentFate::Delivered
            );
        }
        assert!(link.take_degradation().is_clean());

        // An empty trace starves everything, and says why.
        let mut silent = TrafficLink::from_arrivals(vec![], 1_000_000, FaultPlan::none(), 1);
        assert_eq!(silent.send_segment(&[true; 64], &mut rec), SegmentFate::Lost);
        assert!(silent.take_degradation().fired("helper-idle"));
    }

    #[test]
    fn wild_traffic_starves_some_segments() {
        let mut rec = NullRecorder;
        let mut link = TrafficLink::new(
            &WildTraffic::wild(),
            600_000_000,
            FaultPlan::none(),
            7,
        );
        let fates: Vec<SegmentFate> = (0..200)
            .map(|_| link.send_segment(&[true; 64], &mut rec))
            .collect();
        let lost = fates.iter().filter(|f| **f == SegmentFate::Lost).count();
        assert!(lost > 0, "heavy-tailed helper never starved a segment");
        assert!(
            lost < fates.len(),
            "helper starved everything — trace or threshold is wrong"
        );
        assert!(link.take_degradation().fired("helper-idle"));
    }

    #[test]
    fn trafficlink_is_deterministic_and_composes_faults() {
        let plan = FaultPlan::preset("loss", 0.6, 21).unwrap();
        let run = |seed| {
            let mut link = TrafficLink::new(&WildTraffic::default(), 60_000_000, plan.clone(), seed);
            let mut rec = NullRecorder;
            (0..100)
                .map(|_| link.send_segment(&[false; 48], &mut rec))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seeds should diverge");
        // With a loss plan armed, Bernoulli losses fire on top of
        // starvation.
        let mut link = TrafficLink::new(&WildTraffic::default(), 60_000_000, plan, 3);
        let mut rec = NullRecorder;
        for _ in 0..200 {
            link.send_segment(&[false; 48], &mut rec);
        }
        assert!(link.take_degradation().fired("packet-loss"));
    }

    #[test]
    fn phylink_codeword_mode_delivers_segments() {
        // The full-PHY link routed through the codeword PHY still
        // satisfies the transport contract: close-range segments and
        // control frames are delivered, and the run is deterministic in
        // the seed.
        let mut rec = NullRecorder;
        let payload: Vec<bool> = (0..32).map(|i| (i * 7) % 3 == 0).collect();
        let mut link = PhyLink::new(0.3, FaultPlan::none(), 33).with_phy(PhyConfig::codeword());
        for _ in 0..3 {
            assert_eq!(
                link.send_segment(&payload, &mut rec),
                SegmentFate::Delivered
            );
        }
        assert!(link.send_control(&frame(), &mut rec));
        assert!(link.take_degradation().is_clean());
    }

    #[test]
    fn airtime_scales_with_rates() {
        let link = SimLink::new(FaultPlan::none(), 0).with_rates(20_000, 500);
        let f = frame();
        assert_eq!(link.control_air_us(&f), f.to_bits().len() as u64 * 50);
        assert_eq!(link.segment_air_us(100), 200_000);
        let fast = SimLink::new(FaultPlan::none(), 0).with_rates(20_000, 1000);
        assert_eq!(fast.segment_air_us(100), 100_000);
    }
}
