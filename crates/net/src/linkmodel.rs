//! The link abstraction the transport runs over, with two
//! implementations: a fast seeded loss model for benches and conformance
//! sweeps, and the full PHY simulation for end-to-end validation.
//!
//! The ARQ machinery ([`crate::arq`]) only needs four things from a
//! link: deliver a downlink control frame or not, deliver an uplink
//! segment (possibly duplicated) or not, account airtime, and keep a
//! simulated clock. [`SimLink`] answers those with severity-scaled
//! Bernoulli draws derived from the same [`FaultPlan`] vocabulary the
//! rest of the stack uses — `packet-loss` drops, `rate-collapse`
//! starvation, `helper-outage` windows and `packet-duplication` — so a
//! transport sweep composes with the existing fault presets. [`PhyLink`]
//! routes every frame through `run_downlink_frame_with` and every
//! segment through the actual uplink decode chain.

use bs_channel::faults::{Fault, FaultPlan};
use bs_dsp::obs::Recorder;
use bs_dsp::SimRng;
use bs_tag::frame::DownlinkFrame;
use wifi_backscatter::link::{
    run_downlink_frame_with, run_uplink_with, DegradationReport, DownlinkConfig, LinkConfig,
    MitigationPolicy,
};

/// What happened to one uplink segment on the air.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentFate {
    /// Never decoded at the reader.
    Lost,
    /// Decoded once.
    Delivered,
    /// Decoded twice (MAC-level duplication): the receiver must
    /// deduplicate.
    DeliveredTwice,
}

/// The transport's view of a backscatter link.
///
/// All methods are deterministic functions of the construction seed and
/// the call sequence; the transport owns the call sequence, so a whole
/// transfer is replayable from its seed.
pub trait SegmentLink {
    /// Current simulated time (µs).
    fn now_us(&self) -> u64;

    /// Advances the simulated clock (airtime, turnaround, backoff).
    fn advance_us(&mut self, us: u64);

    /// Attempts a downlink control frame (poll or ACK); true = the other
    /// end decoded it.
    fn send_control(&mut self, frame: &DownlinkFrame, rec: &mut dyn Recorder) -> bool;

    /// Attempts one uplink segment given its on-air bits.
    fn send_segment(&mut self, bits: &[bool], rec: &mut dyn Recorder) -> SegmentFate;

    /// On-air time of a downlink control frame (µs).
    fn control_air_us(&self, frame: &DownlinkFrame) -> u64;

    /// On-air time of an uplink burst of `n_bits` bits (µs).
    fn segment_air_us(&self, n_bits: usize) -> u64;

    /// Current uplink chip rate (bits/s in plain mode).
    fn chip_rate_bps(&self) -> u64;

    /// Re-commands the uplink chip rate (rate adaptation).
    fn set_chip_rate_bps(&mut self, bps: u64);

    /// Takes the degradation accounting accumulated since the last call.
    fn take_degradation(&mut self) -> DegradationReport;
}

/// Fast seeded link model: Bernoulli frame outcomes whose probabilities
/// scale with [`FaultPlan`] severity, plus deterministic outage windows
/// on the shared simulated clock.
#[derive(Debug, Clone)]
pub struct SimLink {
    /// The armed fault plan; severity scales every probability.
    pub faults: FaultPlan,
    /// Downlink (reader→tag) bit rate, bits/s.
    pub downlink_bps: u64,
    /// Uplink chip rate, bits/s in plain mode.
    chip_rate_bps: u64,
    /// Turnaround gap charged around each airtime segment (µs).
    pub gap_us: u64,
    /// Fixed cost of every control exchange (µs): medium access, the
    /// CTS_to_SELF reservation fronting each downlink frame, and the
    /// tag's wake/settle turnaround. This is the per-round overhead a
    /// sliding window amortises over its burst — with it near zero,
    /// stop-and-wait would look artificially competitive.
    pub ctrl_overhead_us: u64,
    now_us: u64,
    rng: SimRng,
    report: DegradationReport,
}

impl SimLink {
    /// A link with the paper's nominal rates: 20 kbps downlink, 500 bps
    /// uplink, 200 µs turnaround. All randomness derives from `seed`
    /// (kept independent of the fault plan's own seed).
    pub fn new(faults: FaultPlan, seed: u64) -> Self {
        SimLink {
            rng: SimRng::new(seed ^ faults.seed.rotate_left(17)).stream("net-simlink"),
            faults,
            downlink_bps: 20_000,
            chip_rate_bps: 500,
            gap_us: 200,
            ctrl_overhead_us: 30_000,
            now_us: 0,
            report: DegradationReport::default(),
        }
    }

    /// Overrides the downlink and uplink rates.
    pub fn with_rates(mut self, downlink_bps: u64, chip_rate_bps: u64) -> Self {
        self.downlink_bps = downlink_bps.max(1);
        self.chip_rate_bps = chip_rate_bps.max(1);
        self
    }

    /// Per-segment uplink failure probability: downlink-style frame loss
    /// composed with rate-collapse starvation (a collapsed helper
    /// cadence starves the decoder of measurements for the whole
    /// segment).
    fn segment_loss_prob(&self) -> f64 {
        let sev = self.faults.severity.clamp(0.0, 1.0);
        if sev <= 0.0 {
            return 0.0;
        }
        let mut keep = 1.0 - self.faults.frame_loss_prob();
        for f in &self.faults.faults {
            if let Fault::RateCollapse { keep: k } = *f {
                keep *= 1.0 - (sev * (1.0 - k.clamp(0.0, 1.0))).clamp(0.0, 1.0);
            }
        }
        (1.0 - keep).clamp(0.0, 1.0)
    }

    /// Whole-segment duplication probability (MAC retransmission whose
    /// ACK was lost).
    fn dup_prob(&self) -> f64 {
        let sev = self.faults.severity.clamp(0.0, 1.0);
        self.faults
            .faults
            .iter()
            .map(|f| match *f {
                Fault::PacketDuplication { prob } => (prob * sev).clamp(0.0, 1.0),
                _ => 0.0,
            })
            .fold(0.0, f64::max)
    }

    fn record_fault(&mut self, name: &str) {
        if !self.report.fired(name) {
            self.report.faults_fired.push(name.to_string());
        }
    }
}

impl SegmentLink for SimLink {
    fn now_us(&self) -> u64 {
        self.now_us
    }

    fn advance_us(&mut self, us: u64) {
        self.now_us += us;
    }

    fn send_control(&mut self, frame: &DownlinkFrame, rec: &mut dyn Recorder) -> bool {
        let air = self.control_air_us(frame);
        let outage = self.faults.outage_at(self.now_us + air / 2);
        let lost = self.rng.chance(self.faults.frame_loss_prob());
        self.now_us += self.ctrl_overhead_us + air + self.gap_us;
        if outage || lost {
            self.report.packets_dropped += 1;
            self.record_fault(if outage { "helper-outage" } else { "packet-loss" });
            rec.add("net.control-lost", 1);
            return false;
        }
        true
    }

    fn send_segment(&mut self, bits: &[bool], rec: &mut dyn Recorder) -> SegmentFate {
        let air = self.segment_air_us(bits.len());
        let outage = self.faults.outage_at(self.now_us + air / 2);
        let lost = self.rng.chance(self.segment_loss_prob());
        let dup = self.rng.chance(self.dup_prob());
        self.now_us += air + self.gap_us;
        if outage || lost {
            self.report.packets_dropped += 1;
            self.record_fault(if outage { "helper-outage" } else { "packet-loss" });
            rec.add("net.segments-lost", 1);
            return SegmentFate::Lost;
        }
        if dup {
            self.report.packets_duplicated += 1;
            self.record_fault("packet-duplication");
            return SegmentFate::DeliveredTwice;
        }
        SegmentFate::Delivered
    }

    fn control_air_us(&self, frame: &DownlinkFrame) -> u64 {
        frame.to_bits().len() as u64 * 1_000_000 / self.downlink_bps.max(1)
    }

    fn segment_air_us(&self, n_bits: usize) -> u64 {
        n_bits as u64 * 1_000_000 / self.chip_rate_bps.max(1)
    }

    fn chip_rate_bps(&self) -> u64 {
        self.chip_rate_bps
    }

    fn set_chip_rate_bps(&mut self, bps: u64) {
        self.chip_rate_bps = bps.max(1);
    }

    fn take_degradation(&mut self) -> DegradationReport {
        std::mem::take(&mut self.report)
    }
}

/// Full-PHY link: every control frame runs the downlink envelope
/// simulation and every segment runs the uplink capture/decode chain.
/// Orders of magnitude slower than [`SimLink`]; used by the end-to-end
/// tests and the gateway example to validate that the transport's
/// abstractions hold over the real stack.
#[derive(Debug, Clone)]
pub struct PhyLink {
    /// Reader↔tag distance (m).
    pub distance_m: f64,
    /// Downlink bit rate (bits/s).
    pub downlink_bps: u64,
    /// Packets-per-bit target for the uplink decoder.
    pub pkts_per_bit: u32,
    /// Injected faults, forwarded to both PHY directions.
    pub faults: FaultPlan,
    /// Mitigations armed on the uplink runs.
    pub mitigations: MitigationPolicy,
    chip_rate_bps: u64,
    seed: u64,
    attempt: u64,
    now_us: u64,
    report: DegradationReport,
}

impl PhyLink {
    /// A PHY link at `distance_m` with the given fault plan; `seed`
    /// isolates this link's channel noise from every other stream.
    pub fn new(distance_m: f64, faults: FaultPlan, seed: u64) -> Self {
        PhyLink {
            distance_m,
            downlink_bps: 20_000,
            pkts_per_bit: 5,
            faults,
            mitigations: MitigationPolicy::all(),
            chip_rate_bps: 100,
            seed,
            attempt: 0,
            now_us: 0,
            report: DegradationReport::default(),
        }
    }

    fn next_seed(&mut self) -> u64 {
        self.attempt += 1;
        self.seed
            .wrapping_add(self.attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

impl SegmentLink for PhyLink {
    fn now_us(&self) -> u64 {
        self.now_us
    }

    fn advance_us(&mut self, us: u64) {
        self.now_us += us;
    }

    fn send_control(&mut self, frame: &DownlinkFrame, _rec: &mut dyn Recorder) -> bool {
        let cfg = DownlinkConfig::fig17(self.distance_m, self.downlink_bps, self.next_seed())
            .with_faults(self.faults.clone());
        self.now_us += self.control_air_us(frame) + 200;
        let (got, report) = run_downlink_frame_with(&cfg, frame, &mut bs_dsp::obs::NullRecorder);
        self.report.merge(&report);
        got.as_ref() == Some(frame)
    }

    fn send_segment(&mut self, bits: &[bool], _rec: &mut dyn Recorder) -> SegmentFate {
        let cfg = LinkConfig::fig10(
            self.distance_m,
            self.chip_rate_bps,
            self.pkts_per_bit,
            self.next_seed(),
        )
        .with_payload(bits.to_vec())
        .with_faults(self.faults.clone())
        .with_mitigations(self.mitigations);
        self.now_us += self.segment_air_us(bits.len()) + 200;
        let run = run_uplink_with(&cfg, &mut bs_dsp::obs::NullRecorder);
        self.report.merge(&run.degradation);
        if run.detected && run.ber.errors() == 0 {
            SegmentFate::Delivered
        } else {
            SegmentFate::Lost
        }
    }

    fn control_air_us(&self, frame: &DownlinkFrame) -> u64 {
        frame.to_bits().len() as u64 * 1_000_000 / self.downlink_bps.max(1)
    }

    fn segment_air_us(&self, n_bits: usize) -> u64 {
        n_bits as u64 * 1_000_000 / self.chip_rate_bps.max(1)
    }

    fn chip_rate_bps(&self) -> u64 {
        self.chip_rate_bps
    }

    fn set_chip_rate_bps(&mut self, bps: u64) {
        self.chip_rate_bps = bps.max(1);
    }

    fn take_degradation(&mut self) -> DegradationReport {
        std::mem::take(&mut self.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_dsp::obs::NullRecorder;

    fn frame() -> DownlinkFrame {
        DownlinkFrame::new(vec![0x03, 1, 2, 3])
    }

    #[test]
    fn clean_simlink_never_loses() {
        let mut link = SimLink::new(FaultPlan::none(), 42);
        let mut rec = NullRecorder;
        for _ in 0..100 {
            assert!(link.send_control(&frame(), &mut rec));
            assert_eq!(
                link.send_segment(&[true; 64], &mut rec),
                SegmentFate::Delivered
            );
        }
        assert!(link.take_degradation().is_clean());
    }

    #[test]
    fn simlink_is_deterministic() {
        let plan = FaultPlan::preset("loss", 0.8, 77).unwrap();
        let run = |seed| {
            let mut link = SimLink::new(plan.clone(), seed);
            let mut rec = NullRecorder;
            (0..200)
                .map(|_| link.send_segment(&[false; 32], &mut rec))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds should diverge");
    }

    #[test]
    fn loss_probability_scales_with_severity() {
        let count = |sev: f64| {
            let plan = FaultPlan::preset("loss", sev, 11).unwrap();
            let mut link = SimLink::new(plan, 3);
            let mut rec = NullRecorder;
            (0..2000)
                .filter(|_| link.send_segment(&[true; 16], &mut rec) == SegmentFate::Lost)
                .count()
        };
        let (lo, hi) = (count(0.2), count(1.0));
        assert!(lo < hi, "severity 0.2 lost {lo}, 1.0 lost {hi}");
        assert_eq!(count(0.0), 0);
    }

    #[test]
    fn collapse_composes_into_segment_loss() {
        let plan = FaultPlan::new(1).with(Fault::RateCollapse { keep: 0.25 });
        let link = SimLink::new(plan.clone().with_severity(1.0), 0);
        assert!(link.segment_loss_prob() > 0.5);
        let mild = SimLink::new(plan.with_severity(0.1), 0);
        assert!(mild.segment_loss_prob() < link.segment_loss_prob());
    }

    #[test]
    fn outage_window_kills_control_frames() {
        let plan = FaultPlan::preset("outage", 1.0, 5).unwrap();
        let mut link = SimLink::new(plan.clone(), 9);
        let mut rec = NullRecorder;
        // Walk the clock across several outage periods; some sends must
        // fall inside the silent window.
        let mut lost = 0;
        for _ in 0..50 {
            if !link.send_control(&frame(), &mut rec) {
                lost += 1;
            }
            link.advance_us(40_000);
        }
        assert!(lost > 0, "no control frame hit the outage window");
        assert!(link.take_degradation().fired("helper-outage"));
    }

    #[test]
    fn airtime_scales_with_rates() {
        let link = SimLink::new(FaultPlan::none(), 0).with_rates(20_000, 500);
        let f = frame();
        assert_eq!(link.control_air_us(&f), f.to_bits().len() as u64 * 50);
        assert_eq!(link.segment_air_us(100), 200_000);
        let fast = SimLink::new(FaultPlan::none(), 0).with_rates(20_000, 1000);
        assert_eq!(fast.segment_air_us(100), 100_000);
    }
}
