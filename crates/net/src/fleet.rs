//! Fleet-scale simulation: many gateways, 10⁵–10⁶ tags, one seed.
//!
//! The paper's Figure-1 deployment is not one reader — it is a building
//! full of them, each relaying its tag population to the internet. This
//! module scales the single-reader [`gateway`](crate::gateway) to that
//! regime: gateways are laid out on a jittered grid, every tag lives
//! near a home gateway and associates with the nearest one in range,
//! and the simulation advances in *epochs*. Each epoch:
//!
//! 1. **Movement** — a seeded fraction of tags take a Gaussian step;
//! 2. **Handoff** — every tag re-evaluates its nearest gateway; moves
//!    are proposed per shard, then merged and applied in global tag-id
//!    order under a per-gateway address-space cap, so the outcome never
//!    depends on how the work was partitioned;
//! 3. **Interference** — each gateway's fault severity is raised by the
//!    coverage overlap with its loaded neighbours
//!    ([`bs_channel::geometry::coverage_overlap`]): two readers whose
//!    cells overlap steal each other's helper transmissions;
//! 4. **Service** — every gateway runs a full
//!    [`run_gateway`] pass over its
//!    current roster (singulation, per-tag ARQ, deficit round-robin,
//!    rate adaptation), uploading one fresh message per tag.
//!
//! # Sharding and determinism
//!
//! The flat per-entity control blocks (tag positions, associations,
//! per-gateway rosters) are partitioned into contiguous **shards**.
//! Workers claim shards through a single atomic cursor and report
//! results over an `mpsc` channel tagged with the shard index — there
//! are no mutexes or rwlocks anywhere on the hot path. Every random
//! draw descends from a stream keyed by the *entity's* coordinates
//! (tag id, gateway id, epoch), never by the worker or shard that
//! happened to compute it, and every cross-shard merge is applied in
//! global id order. Consequently a fleet run is a pure function of
//! the [`FleetConfig`] alone: byte-identical for any `jobs` count, and
//! per-tag outcomes are invariant under the shard-count choice (the
//! conformance suite pins both).
//!
//! ```
//! use bs_net::fleet::{run_fleet, FleetConfig};
//!
//! let cfg = FleetConfig::default().with_population(9, 6).with_seed(7);
//! let a = run_fleet(&cfg, 1).unwrap();
//! let b = run_fleet(&cfg, 4).unwrap();
//! assert_eq!(a.to_json(), b.to_json()); // worker count never shows
//! assert_eq!(a.tags, 54);
//! ```

use crate::gateway::{
    jain_index, run_gateway, GatewayConfig, GatewayError, TagEnergyOutcome, TagProfile,
};
use bs_channel::geometry::coverage_overlap;
use bs_dsp::stats::percentile_many;
use bs_dsp::SimRng;
use bs_tag::energy::{Capacitor, CapacitorConfig, EnergyConfig, EnergyPolicy, LISTEN_LOAD_UW};
use bs_tag::harvester::{harvested_uw, wifi_incident_dbm};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Hard per-gateway roster cap: the link-layer address is a `u8` and a
/// handful of values are reserved, so one reader can serve at most this
/// many tags per epoch. Handoffs that would overflow a gateway are
/// denied and retried in a later epoch.
pub const MAX_TAGS_PER_GATEWAY: usize = 250;

/// Why a fleet run could not start (or finish).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FleetError {
    /// The config asked for zero gateways.
    NoGateways,
    /// The config asked for zero tags per gateway.
    NoTags,
    /// The nominal population per gateway exceeds the link-layer
    /// address space ([`MAX_TAGS_PER_GATEWAY`]).
    TooManyTagsPerGateway {
        /// What the config asked for.
        requested: usize,
    },
    /// A per-gateway run was rejected (mirrors the single-gateway
    /// contract; unreachable when the fleet assigns addresses itself).
    Gateway(GatewayError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NoGateways => write!(f, "fleet config has zero gateways"),
            FleetError::NoTags => write!(f, "fleet config has zero tags per gateway"),
            FleetError::TooManyTagsPerGateway { requested } => write!(
                f,
                "{requested} tags per gateway exceeds the {MAX_TAGS_PER_GATEWAY}-address link-layer space"
            ),
            FleetError::Gateway(e) => write!(f, "gateway run rejected: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<GatewayError> for FleetError {
    fn from(e: GatewayError) -> Self {
        FleetError::Gateway(e)
    }
}

/// Fleet-wide energy model: how every tag in the population harvests,
/// stores and spends energy.
///
/// Each tag's harvest is a pure function of its grid position — the
/// incident power from its serving gateway's transmitter
/// ([`bs_tag::harvester::wifi_incident_dbm`] at the tag–gateway
/// distance, through the rectifier curve) plus a flat ambient floor
/// (TV-tower background, §6 of the paper). Tags re-derive their harvest
/// every epoch, so a tag that wanders away from its gateway starves and
/// one that wanders closer recovers. Initial charge is drawn per tag
/// from a tag-keyed stream (cold-start diversity), and charge persists
/// across epochs through the per-tag control blocks.
///
/// ```
/// use bs_net::fleet::FleetEnergyConfig;
///
/// let e = FleetEnergyConfig::default();
/// assert!(e.tx_power_dbm > 0.0 && e.ambient_uw >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetEnergyConfig {
    /// Gateway transmit power feeding each tag's harvester, dBm.
    pub tx_power_dbm: f64,
    /// Ambient harvest floor added on top of the Wi-Fi harvest, µW
    /// (TV-tower background; keeps distant tags crawling instead of
    /// flat-lining).
    pub ambient_uw: f64,
    /// Capacitor template every tag instantiates;
    /// [`CapacitorConfig::initial_fraction`] is overridden per tag by a
    /// seeded draw and thereafter by the persisted charge.
    pub capacitor: CapacitorConfig,
    /// Duty-cycling policy every tag runs.
    pub policy: EnergyPolicy,
}

impl Default for FleetEnergyConfig {
    fn default() -> Self {
        FleetEnergyConfig {
            tx_power_dbm: 36.0,
            ambient_uw: 2.0,
            capacitor: CapacitorConfig::default(),
            policy: EnergyPolicy::SleepUntilCharged,
        }
    }
}

impl FleetEnergyConfig {
    /// Steady-state harvest (µW) for a tag `distance_m` from its
    /// serving gateway: the Wi-Fi harvest at that range plus the
    /// ambient floor.
    pub fn harvest_uw_at(&self, distance_m: f64) -> f64 {
        harvested_uw(wifi_incident_dbm(self.tx_power_dbm, distance_m)) + self.ambient_uw
    }

    /// The immortal-tag fleet: capacitors are tracked but an enormous
    /// ambient harvest keeps them full and the policy never gates
    /// behaviour, so per-tag outcomes are bit-identical to running with
    /// [`FleetConfig::energy`]` = None` (the conformance suite pins
    /// this).
    pub fn always_powered() -> Self {
        FleetEnergyConfig {
            ambient_uw: 1e6,
            policy: EnergyPolicy::AlwaysPowered,
            ..FleetEnergyConfig::default()
        }
    }
}

/// Fleet configuration: topology, population, epochs, impairments.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of gateways (laid out on a jittered square grid).
    pub gateways: usize,
    /// Nominal tags per gateway (each tag starts near its home
    /// gateway); must stay within [`MAX_TAGS_PER_GATEWAY`].
    pub tags_per_gateway: usize,
    /// Grid pitch between adjacent gateways (m).
    pub gateway_spacing_m: f64,
    /// Each gateway's coverage radius (m) — drives both association
    /// range and inter-gateway interference overlap.
    pub coverage_radius_m: f64,
    /// Epochs to simulate; movement/handoff happen from epoch 1 on.
    pub epochs: u32,
    /// Fresh upload per tag per epoch (bytes).
    pub message_bytes: usize,
    /// Fraction of tags that move each epoch.
    pub mobility: f64,
    /// Standard deviation of one movement step (m, per axis).
    pub move_sigma_m: f64,
    /// Fault template every gateway's links inherit; its severity is
    /// the *noise floor* that interference raises per gateway. With an
    /// empty plan ([`bs_channel::faults::FaultPlan::none`]) interference
    /// has no fault to express and the fleet runs clean.
    pub faults: bs_channel::faults::FaultPlan,
    /// How strongly neighbour coverage overlap raises severity:
    /// `severity_g = base + gain · Σ_n overlap(d_gn) · load_n`.
    pub interference_gain: f64,
    /// Shard count for the flat control blocks (0 = auto: one shard
    /// per gateway up to 16). Deliberately *not* derived from the
    /// worker count, so the report is byte-identical for any `jobs`.
    /// Shard choice groups the [`ShardReport`]s but never changes
    /// per-tag outcomes.
    pub shards: usize,
    /// Per-gateway template (transport, inventory, PHY, `max_cycles`,
    /// polling policy); seed and faults are overridden per gateway per
    /// epoch.
    pub gateway: GatewayConfig,
    /// Energy co-simulation. `None` (the default) runs the immortal-tag
    /// fleet, bit-identical to the pre-energy engine. `Some` gives every
    /// tag a capacitor fed by distance-dependent harvest; browned-out
    /// tags miss polls (or whole inventories) and the per-tag
    /// [`TagRecord`] reports brownout/recovery counts.
    pub energy: Option<FleetEnergyConfig>,
    /// Master seed; every stream in the fleet descends from it.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            gateways: 16,
            tags_per_gateway: 8,
            gateway_spacing_m: 50.0,
            coverage_radius_m: 40.0,
            epochs: 2,
            message_bytes: 48,
            mobility: 0.2,
            move_sigma_m: 15.0,
            faults: bs_channel::faults::FaultPlan::none(),
            interference_gain: 0.15,
            shards: 0,
            gateway: GatewayConfig::default(),
            energy: None,
            seed: 1,
        }
    }
}

impl FleetConfig {
    /// Sets gateway count and nominal tags per gateway (builder style).
    pub fn with_population(mut self, gateways: usize, tags_per_gateway: usize) -> Self {
        self.gateways = gateways;
        self.tags_per_gateway = tags_per_gateway;
        self
    }

    /// Sets the master seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fault template (builder style).
    pub fn with_faults(mut self, faults: bs_channel::faults::FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the epoch count (builder style).
    pub fn with_epochs(mut self, epochs: u32) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the shard count (builder style); 0 = one shard per worker.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Arms the energy co-simulation (builder style).
    pub fn with_energy(mut self, energy: FleetEnergyConfig) -> Self {
        self.energy = Some(energy);
        self
    }

    fn total_tags(&self) -> usize {
        self.gateways * self.tags_per_gateway
    }
}

/// Flat per-tag outcome block, in global tag-id order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagRecord {
    /// Global tag id.
    pub tag: u32,
    /// Gateway the tag ended associated with.
    pub gateway: u32,
    /// Handoffs the tag performed across the run.
    pub handoffs: u32,
    /// Bytes delivered across all epochs.
    pub delivered_bytes: u64,
    /// Epochs in which the tag's upload completed.
    pub complete_epochs: u32,
    /// Epochs in which the tag's gateway hit its cycle backstop.
    pub truncated_epochs: u32,
    /// Last epoch's service latency (singulation + own transfer
    /// airtime, µs).
    pub last_latency_us: u64,
    /// Awake→Dead transitions across the run (0 when the energy model
    /// is off).
    pub brownouts: u32,
    /// Post-brownout climbs back to Awake across the run.
    pub recoveries: u32,
}

/// Per-shard aggregate, mirroring the per-gateway truncation flag at
/// the resolution the sharded engine actually ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index.
    pub shard: u32,
    /// Gateways this shard owned.
    pub gateways: u32,
    /// Gateway-epochs in this shard that hit the `max_cycles` backstop
    /// (mirrors [`GatewayRun::truncated`](crate::gateway::GatewayRun)).
    pub truncated_gateway_epochs: u32,
    /// Total airtime charged by this shard's gateways (µs).
    pub airtime_us: u64,
    /// Bytes delivered by this shard's gateways.
    pub delivered_bytes: u64,
}

/// The fleet run report: flat per-tag records, per-shard aggregates,
/// and the headline metrics (goodput, Jain fairness, latency tail).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRun {
    /// Gateways simulated.
    pub gateways: u32,
    /// Total tags simulated.
    pub tags: u32,
    /// Epochs simulated.
    pub epochs: u32,
    /// Shards the control blocks were partitioned into.
    pub shards: u32,
    /// Per-tag outcomes, in global tag-id order.
    pub tag_records: Vec<TagRecord>,
    /// Per-shard aggregates, in shard order.
    pub shard_reports: Vec<ShardReport>,
    /// Handoffs applied across the run.
    pub handoffs: u64,
    /// Handoffs denied by the per-gateway address-space cap.
    pub handoffs_denied: u64,
    /// Bytes delivered fleet-wide.
    pub delivered_bytes: u64,
    /// Every tag completed its upload in every epoch.
    pub all_complete: bool,
    /// Gateway-epochs that hit the cycle backstop (sum over shards).
    pub truncated_gateway_epochs: u32,
    /// Poll slots scheduled fleet-wide (served rounds + wasted polls).
    pub polls: u64,
    /// Poll slots wasted on tags that had no energy to answer.
    pub missed_polls: u64,
    /// Brownouts fleet-wide (sum over [`TagRecord::brownouts`]).
    pub brownouts: u64,
    /// Recoveries fleet-wide (sum over [`TagRecord::recoveries`]).
    pub recoveries: u64,
    /// Wall-clock airtime (µs): gateways run concurrently, so each
    /// epoch costs the *maximum* gateway airtime, summed over epochs.
    pub airtime_us: u64,
    /// Fleet goodput: delivered bits over wall-clock airtime.
    pub aggregate_goodput_bps: f64,
    /// Jain fairness over per-tag delivered bytes.
    pub fairness: f64,
    /// Median per-tag service latency (µs) over all tag-epochs.
    pub latency_us_p50: f64,
    /// 90th-percentile latency (µs).
    pub latency_us_p90: f64,
    /// 99th-percentile latency (µs).
    pub latency_us_p99: f64,
    /// FNV-1a digest over every [`TagRecord`] — two runs agree on every
    /// per-tag outcome iff their digests agree.
    pub digest: u64,
}

impl FleetRun {
    /// Renders the run as deterministic JSON: fixed field order, fixed
    /// float formatting, per-tag records included — byte-identical
    /// across `jobs` counts by construction (the conformance gate
    /// compares these strings).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.tag_records.len() * 64);
        s.push_str("{\n");
        s.push_str(&format!("  \"gateways\": {},\n", self.gateways));
        s.push_str(&format!("  \"tags\": {},\n", self.tags));
        s.push_str(&format!("  \"epochs\": {},\n", self.epochs));
        s.push_str(&format!("  \"shards\": {},\n", self.shards));
        s.push_str(&format!("  \"handoffs\": {},\n", self.handoffs));
        s.push_str(&format!("  \"handoffs_denied\": {},\n", self.handoffs_denied));
        s.push_str(&format!("  \"delivered_bytes\": {},\n", self.delivered_bytes));
        s.push_str(&format!("  \"all_complete\": {},\n", self.all_complete));
        s.push_str(&format!(
            "  \"truncated_gateway_epochs\": {},\n",
            self.truncated_gateway_epochs
        ));
        s.push_str(&format!("  \"polls\": {},\n", self.polls));
        s.push_str(&format!("  \"missed_polls\": {},\n", self.missed_polls));
        s.push_str(&format!("  \"brownouts\": {},\n", self.brownouts));
        s.push_str(&format!("  \"recoveries\": {},\n", self.recoveries));
        s.push_str(&format!("  \"airtime_us\": {},\n", self.airtime_us));
        s.push_str(&format!(
            "  \"aggregate_goodput_bps\": {:.3},\n",
            self.aggregate_goodput_bps
        ));
        s.push_str(&format!("  \"fairness\": {:.6},\n", self.fairness));
        s.push_str(&format!("  \"latency_us_p50\": {:.1},\n", self.latency_us_p50));
        s.push_str(&format!("  \"latency_us_p90\": {:.1},\n", self.latency_us_p90));
        s.push_str(&format!("  \"latency_us_p99\": {:.1},\n", self.latency_us_p99));
        s.push_str(&format!("  \"digest\": \"{:016x}\",\n", self.digest));
        s.push_str("  \"shard_reports\": [\n");
        for (i, r) in self.shard_reports.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"shard\": {}, \"gateways\": {}, \"truncated_gateway_epochs\": {}, \
                 \"airtime_us\": {}, \"delivered_bytes\": {}}}{}\n",
                r.shard,
                r.gateways,
                r.truncated_gateway_epochs,
                r.airtime_us,
                r.delivered_bytes,
                if i + 1 < self.shard_reports.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"tag_records\": [\n");
        for (i, t) in self.tag_records.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"tag\": {}, \"gateway\": {}, \"handoffs\": {}, \"delivered_bytes\": {}, \
                 \"complete_epochs\": {}, \"truncated_epochs\": {}, \"last_latency_us\": {}, \
                 \"brownouts\": {}, \"recoveries\": {}}}{}\n",
                t.tag,
                t.gateway,
                t.handoffs,
                t.delivered_bytes,
                t.complete_epochs,
                t.truncated_epochs,
                t.last_latency_us,
                t.brownouts,
                t.recoveries,
                if i + 1 < self.tag_records.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// FNV-1a 64 over the per-tag records.
fn digest_records(records: &[TagRecord]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for t in records {
        eat(t.tag as u64);
        eat(t.gateway as u64);
        eat(t.handoffs as u64);
        eat(t.delivered_bytes);
        eat(t.complete_epochs as u64);
        eat(t.truncated_epochs as u64);
        eat(t.last_latency_us);
        eat(t.brownouts as u64);
        eat(t.recoveries as u64);
    }
    h
}

// ---------------------------------------------------------------------
// Sharded runner
// ---------------------------------------------------------------------

/// Runs `chunk(i)` for every `i in 0..n`, spreading chunks over `jobs`
/// workers claimed through one atomic cursor, and returns the results
/// in chunk order. The per-chunk function sees only the chunk index, so
/// the partitioning cannot leak into the results; the channel is the
/// only cross-thread data path.
fn run_sharded<T, F>(jobs: usize, n: usize, chunk: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || n <= 1 {
        return (0..n).map(chunk).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            let tx = tx.clone();
            let cursor = &cursor;
            let chunk = &chunk;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // The receiver outlives the scope; a send can only fail
                // if the main thread panicked, which propagates anyway.
                let _ = tx.send((i, chunk(i)));
            });
        }
        drop(tx);
    });
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, v) in rx {
        out[i] = Some(v);
    }
    out.into_iter()
        .map(|o| o.expect("every chunk reports exactly once"))
        .collect()
}

/// Splits `0..n` into `shards` contiguous ranges (first remainder
/// shards are one longer).
fn shard_ranges(n: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    let shards = shards.max(1).min(n.max(1));
    let base = n / shards;
    let extra = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

// ---------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------

struct Topology {
    gw_pos: Vec<(f64, f64)>,
    /// Grid-cell buckets (cell edge = gateway spacing) for O(1)
    /// nearest-gateway candidate lookup.
    cells: std::collections::HashMap<(i64, i64), Vec<u32>>,
    cell_m: f64,
    side_m: f64,
}

impl Topology {
    fn build(cfg: &FleetConfig, root: &SimRng) -> Topology {
        let side = (cfg.gateways as f64).sqrt().ceil() as usize;
        let pitch = cfg.gateway_spacing_m;
        let pos_stream = root.stream("fleet.gw-pos");
        let mut gw_pos = Vec::with_capacity(cfg.gateways);
        let mut cells: std::collections::HashMap<(i64, i64), Vec<u32>> =
            std::collections::HashMap::new();
        for g in 0..cfg.gateways {
            let mut rng = pos_stream.substream(g as u64);
            let jitter = 0.2 * pitch;
            let x = ((g % side) as f64 + 0.5) * pitch + rng.uniform_range(-jitter, jitter);
            let y = ((g / side) as f64 + 0.5) * pitch + rng.uniform_range(-jitter, jitter);
            gw_pos.push((x, y));
            cells
                .entry(Self::cell_of(x, y, pitch))
                .or_default()
                .push(g as u32);
        }
        Topology {
            gw_pos,
            cells,
            cell_m: pitch,
            side_m: side as f64 * pitch,
        }
    }

    fn cell_of(x: f64, y: f64, cell_m: f64) -> (i64, i64) {
        ((x / cell_m).floor() as i64, (y / cell_m).floor() as i64)
    }

    /// Nearest gateway to `(x, y)`: ring-by-ring grid search, one extra
    /// ring past the first hit so a closer gateway in the next ring
    /// cannot be missed. Ties break on the lower gateway id, so the
    /// answer is a pure function of the positions.
    fn nearest_gateway(&self, x: f64, y: f64) -> u32 {
        let (cx, cy) = Self::cell_of(x, y, self.cell_m);
        let max_ring = (self.side_m / self.cell_m) as i64 + 2;
        let mut best: Option<(f64, u32)> = None;
        let mut settle_rings = 0;
        for ring in 0..=max_ring {
            if best.is_some() {
                settle_rings += 1;
                if settle_rings > 1 {
                    break;
                }
            }
            for dx in -ring..=ring {
                for dy in -ring..=ring {
                    if dx.abs() != ring && dy.abs() != ring {
                        continue; // interior cells were scanned in earlier rings
                    }
                    let Some(bucket) = self.cells.get(&(cx + dx, cy + dy)) else {
                        continue;
                    };
                    for &g in bucket {
                        let (gx, gy) = self.gw_pos[g as usize];
                        let d = ((x - gx).powi(2) + (y - gy).powi(2)).sqrt();
                        let better = match best {
                            None => true,
                            Some((bd, bg)) => d < bd || (d == bd && g < bg),
                        };
                        if better {
                            best = Some((d, g));
                        }
                    }
                }
            }
        }
        best.expect("at least one gateway exists").1
    }

    fn distance(&self, a: u32, b: u32) -> f64 {
        let (ax, ay) = self.gw_pos[a as usize];
        let (bx, by) = self.gw_pos[b as usize];
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// Gateways whose coverage disc can overlap `g`'s (distance
    /// < 2·radius), via the 3×3-plus cell neighbourhood.
    fn interference_neighbours(&self, g: u32, radius: f64) -> Vec<u32> {
        let (x, y) = self.gw_pos[g as usize];
        let (cx, cy) = Self::cell_of(x, y, self.cell_m);
        let reach = (2.0 * radius / self.cell_m).ceil() as i64;
        let mut out = Vec::new();
        for dx in -reach..=reach {
            for dy in -reach..=reach {
                let Some(bucket) = self.cells.get(&(cx + dx, cy + dy)) else {
                    continue;
                };
                for &n in bucket {
                    if n != g && self.distance(g, n) < 2.0 * radius {
                        out.push(n);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

// ---------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------

/// Flat per-tag control block (one per tag, owned by its shard during
/// parallel phases, mutated only between them on the coordinator).
#[derive(Debug, Clone)]
struct TagBlock {
    x: f64,
    y: f64,
    gateway: u32,
    helper_pps: f64,
    handoffs: u32,
    delivered_bytes: u64,
    complete_epochs: u32,
    truncated_epochs: u32,
    last_latency_us: u64,
    /// Stored energy persisted across epochs (µJ; unused when the
    /// energy model is off).
    charge_uj: f64,
    brownouts: u32,
    recoveries: u32,
}

/// One gateway's serviced epoch, reported back over the channel
/// (gateway identity is implicit: shard results return in gateway-id
/// order).
struct GwEpochResult {
    truncated: bool,
    airtime_us: u64,
    delivered_bytes: u64,
    polls: u64,
    missed_polls: u64,
    /// `(global tag id, delivered bytes, latency µs, complete, energy)`
    /// in roster order. Tags that were dead through singulation never
    /// appear here — the fleet advances their capacitors locally.
    outcomes: Vec<(u32, u64, u64, bool, Option<TagEnergyOutcome>)>,
}

/// Deterministic per-tag upload payload for one epoch.
fn tag_message(tag: u32, epoch: u32, bytes: usize) -> Vec<u8> {
    (0..bytes)
        .map(|i| {
            (i as u64)
                .wrapping_mul(131)
                .wrapping_add((tag as u64).wrapping_mul(31))
                .wrapping_add((epoch as u64).wrapping_mul(17)) as u8
        })
        .collect()
}

/// Runs the fleet on `jobs` worker threads. The result is byte-identical
/// for any `jobs`; see the module docs for the discipline that makes it
/// so.
///
/// # Errors
/// [`FleetError`] on an impossible population (zero gateways/tags, or a
/// nominal roster beyond the link-layer address space).
pub fn run_fleet(cfg: &FleetConfig, jobs: usize) -> Result<FleetRun, FleetError> {
    if cfg.gateways == 0 {
        return Err(FleetError::NoGateways);
    }
    if cfg.tags_per_gateway == 0 {
        return Err(FleetError::NoTags);
    }
    if cfg.tags_per_gateway > MAX_TAGS_PER_GATEWAY {
        return Err(FleetError::TooManyTagsPerGateway {
            requested: cfg.tags_per_gateway,
        });
    }

    let jobs = jobs.max(1);
    let shards = if cfg.shards == 0 {
        cfg.gateways.min(16)
    } else {
        cfg.shards
    };
    let root = SimRng::new(cfg.seed);
    let topo = Topology::build(cfg, &root);
    let n_tags = cfg.total_tags();

    // Seed the flat tag blocks: home placement + initial association.
    // Cold-start charge diversity comes from a tag-keyed stream — drawn
    // only when the energy model is on, so an energy-less fleet consumes
    // exactly the pre-energy RNG sequence.
    let place = root.stream("fleet.tag-pos");
    let helper = root.stream("fleet.helper");
    let charge_stream = root.stream("fleet.energy");
    let cap_capacity_uj = cfg.energy.map(|e| {
        0.5 * e.capacitor.capacitance_uf * e.capacitor.voltage * e.capacitor.voltage
    });
    let mut blocks: Vec<TagBlock> = (0..n_tags)
        .map(|t| {
            let home = (t % cfg.gateways) as u32;
            let (hx, hy) = topo.gw_pos[home as usize];
            let mut rng = place.substream(t as u64);
            let x = (hx + rng.gaussian(0.0, 0.5 * cfg.coverage_radius_m)).clamp(0.0, topo.side_m);
            let y = (hy + rng.gaussian(0.0, 0.5 * cfg.coverage_radius_m)).clamp(0.0, topo.side_m);
            let charge_uj = match cap_capacity_uj {
                Some(cap) => charge_stream.substream(t as u64).uniform_range(0.0, cap),
                None => 0.0,
            };
            TagBlock {
                x,
                y,
                gateway: topo.nearest_gateway(x, y),
                helper_pps: helper.substream(t as u64).uniform_range(1_200.0, 3_600.0),
                handoffs: 0,
                delivered_bytes: 0,
                complete_epochs: 0,
                truncated_epochs: 0,
                last_latency_us: 0,
                charge_uj,
                brownouts: 0,
                recoveries: 0,
            }
        })
        .collect();
    // The initial association may overflow a gateway's address space;
    // spill the overflow to its next-nearest neighbour in tag-id order
    // (the same deterministic rule the handoff cap uses).
    let mut loads = vec![0usize; cfg.gateways];
    for (t, b) in blocks.iter_mut().enumerate() {
        let g = b.gateway as usize;
        if loads[g] < MAX_TAGS_PER_GATEWAY {
            loads[g] += 1;
        } else {
            let home = (t % cfg.gateways) as u32;
            b.gateway = home;
            loads[home as usize] += 1;
        }
    }

    let tag_shards = shard_ranges(n_tags, shards);
    let gw_shards = shard_ranges(cfg.gateways, shards);
    let move_stream = root.stream("fleet.move");
    let run_stream = root.stream("fleet.gw-run");

    let mut total_handoffs = 0u64;
    let mut handoffs_denied = 0u64;
    let mut total_polls = 0u64;
    let mut total_missed_polls = 0u64;
    let mut airtime_us = 0u64;
    let mut latencies: Vec<f64> = Vec::with_capacity(n_tags * cfg.epochs as usize);
    let mut shard_truncated = vec![0u32; gw_shards.len()];
    let mut shard_airtime = vec![0u64; gw_shards.len()];
    let mut shard_delivered = vec![0u64; gw_shards.len()];
    let mut gw_for_shard = vec![0u32; gw_shards.len()];
    for (s, r) in gw_shards.iter().enumerate() {
        gw_for_shard[s] = r.len() as u32;
    }

    for epoch in 0..cfg.epochs {
        // Phase 1+2: movement (from epoch 1) and handoff proposals,
        // sharded over tag ranges. Each worker reads the shared blocks
        // and reports `(tag, new_x, new_y, proposed_gateway)` per shard.
        if epoch > 0 {
            let epoch_stream = move_stream.substream(epoch as u64);
            let proposals: Vec<Vec<(usize, f64, f64, u32)>> =
                run_sharded(jobs, tag_shards.len(), |s| {
                    let mut out = Vec::new();
                    for t in tag_shards[s].clone() {
                        let b = &blocks[t];
                        let mut rng = epoch_stream.substream(t as u64);
                        let (mut x, mut y) = (b.x, b.y);
                        if rng.chance(cfg.mobility) {
                            x = (x + rng.gaussian(0.0, cfg.move_sigma_m)).clamp(0.0, topo.side_m);
                            y = (y + rng.gaussian(0.0, cfg.move_sigma_m)).clamp(0.0, topo.side_m);
                        }
                        let best = topo.nearest_gateway(x, y);
                        if (x, y) != (b.x, b.y) || best != b.gateway {
                            out.push((t, x, y, best));
                        }
                    }
                    out
                });
            // Merge in shard order = global tag-id order; apply the
            // address-space cap deterministically.
            for shard in proposals {
                for (t, x, y, best) in shard {
                    blocks[t].x = x;
                    blocks[t].y = y;
                    let cur = blocks[t].gateway;
                    if best != cur {
                        // Only hand off if the new gateway is in reach
                        // or strictly closer than the old one.
                        if loads[best as usize] < MAX_TAGS_PER_GATEWAY {
                            loads[cur as usize] -= 1;
                            loads[best as usize] += 1;
                            blocks[t].gateway = best;
                            blocks[t].handoffs += 1;
                            total_handoffs += 1;
                        } else {
                            handoffs_denied += 1;
                        }
                    }
                }
            }
        }

        // Phase 3: interference — neighbour coverage overlap scales the
        // fault severity each gateway's links see this epoch. Pure
        // function of positions + loads, computed once on the
        // coordinator (it is O(gateways · neighbours), not O(tags)).
        let severity: Vec<f64> = (0..cfg.gateways)
            .map(|g| {
                let overlap: f64 = topo
                    .interference_neighbours(g as u32, cfg.coverage_radius_m)
                    .iter()
                    .map(|&n| {
                        let load = loads[n as usize] as f64 / cfg.tags_per_gateway as f64;
                        coverage_overlap(topo.distance(g as u32, n), cfg.coverage_radius_m) * load
                    })
                    .sum();
                (cfg.faults.severity + cfg.interference_gain * overlap).clamp(0.0, 1.0)
            })
            .collect();

        // Per-gateway rosters, built in global tag-id order so the
        // address assignment (1..=n in roster order) is deterministic.
        let mut rosters: Vec<Vec<u32>> = vec![Vec::new(); cfg.gateways];
        for (t, b) in blocks.iter().enumerate() {
            rosters[b.gateway as usize].push(t as u32);
        }

        // Phase 4: service — shards of gateways claimed through the
        // cursor, each gateway running a full single-reader pass.
        let epoch_runs = run_stream.substream(epoch as u64);
        let shard_results: Vec<Result<Vec<GwEpochResult>, GatewayError>> =
            run_sharded(jobs, gw_shards.len(), |s| {
                let mut out = Vec::with_capacity(gw_shards[s].len());
                for g in gw_shards[s].clone() {
                    let roster = &rosters[g];
                    if roster.is_empty() {
                        out.push(GwEpochResult {
                            truncated: false,
                            airtime_us: 0,
                            delivered_bytes: 0,
                            polls: 0,
                            missed_polls: 0,
                            outcomes: Vec::new(),
                        });
                        continue;
                    }
                    let (gx, gy) = topo.gw_pos[g];
                    let profiles: Vec<TagProfile> = roster
                        .iter()
                        .enumerate()
                        .map(|(i, &t)| {
                            let b = &blocks[t as usize];
                            // Energy is a pure function of the tag's
                            // block: persisted charge in, harvest from
                            // its current distance to this gateway.
                            let energy = cfg.energy.map(|e| {
                                let d = ((b.x - gx).powi(2) + (b.y - gy).powi(2)).sqrt();
                                EnergyConfig {
                                    capacitor: CapacitorConfig {
                                        initial_fraction: (b.charge_uj
                                            / cap_capacity_uj.expect("energy is on"))
                                        .clamp(0.0, 1.0),
                                        ..e.capacitor
                                    },
                                    harvest_uw: e.harvest_uw_at(d),
                                    policy: e.policy,
                                }
                            });
                            TagProfile {
                                address: (i + 1) as u8,
                                message: tag_message(t, epoch, cfg.message_bytes),
                                helper_pps: b.helper_pps,
                                energy,
                            }
                        })
                        .collect();
                    let mut gcfg = cfg.gateway.clone();
                    gcfg.seed = epoch_runs.substream(g as u64).seed();
                    let mut faults = cfg.faults.clone().with_severity(severity[g]);
                    faults.seed = epoch_runs.substream(g as u64).stream("faults").seed();
                    gcfg.faults = faults;
                    let run = run_gateway(&profiles, &gcfg)?;
                    let inv_air = run.inventory.airtime_us(gcfg.slot_us);
                    let outcomes = run
                        .tags
                        .iter()
                        .map(|o| {
                            let t = roster[o.address as usize - 1];
                            (
                                t,
                                o.transfer.delivered_bytes,
                                inv_air + o.transfer.airtime_us,
                                o.transfer.complete,
                                o.energy,
                            )
                        })
                        .collect();
                    out.push(GwEpochResult {
                        truncated: run.truncated,
                        airtime_us: run.airtime_us,
                        delivered_bytes: run
                            .tags
                            .iter()
                            .map(|o| o.transfer.delivered_bytes)
                            .sum(),
                        polls: run.polls,
                        missed_polls: run.missed_polls,
                        outcomes,
                    });
                }
                Ok(out)
            });

        // Apply in shard order (= gateway-id order).
        let mut epoch_wall_us = 0u64;
        for (s, shard) in shard_results.into_iter().enumerate() {
            let shard = shard?;
            for (g, r) in gw_shards[s].clone().zip(shard) {
                epoch_wall_us = epoch_wall_us.max(r.airtime_us);
                shard_airtime[s] += r.airtime_us;
                shard_delivered[s] += r.delivered_bytes;
                total_polls += r.polls;
                total_missed_polls += r.missed_polls;
                if r.truncated {
                    shard_truncated[s] += 1;
                    for &(t, ..) in &r.outcomes {
                        blocks[t as usize].truncated_epochs += 1;
                    }
                }
                // Roster tags that were dead through singulation never
                // reached the gateway — advance their capacitors here,
                // over the same service span, so a browned-out tag
                // keeps charging toward the next epoch's inventory.
                if let Some(e) = cfg.energy {
                    let capacity = cap_capacity_uj.expect("energy is on");
                    let served: std::collections::HashSet<u32> =
                        r.outcomes.iter().map(|o| o.0).collect();
                    let (gx, gy) = topo.gw_pos[g];
                    for &t in &rosters[g] {
                        if served.contains(&t) {
                            continue;
                        }
                        let b = &mut blocks[t as usize];
                        let mut cap = Capacitor::new(CapacitorConfig {
                            initial_fraction: (b.charge_uj / capacity).clamp(0.0, 1.0),
                            ..e.capacitor
                        });
                        let load = if e.policy.can_listen(cap.state()) {
                            LISTEN_LOAD_UW
                        } else {
                            0.0
                        };
                        let d = ((b.x - gx).powi(2) + (b.y - gy).powi(2)).sqrt();
                        cap.advance(r.airtime_us as f64, e.harvest_uw_at(d), load);
                        b.charge_uj = cap.charge_uj();
                        b.brownouts += cap.brownouts();
                        b.recoveries += cap.recoveries();
                    }
                }
                for (t, delivered, latency, complete, energy) in r.outcomes {
                    let b = &mut blocks[t as usize];
                    b.delivered_bytes += delivered;
                    b.last_latency_us = latency;
                    if complete {
                        b.complete_epochs += 1;
                    }
                    if let Some(e) = energy {
                        b.charge_uj = e.final_charge_uj;
                        b.brownouts += e.brownouts;
                        b.recoveries += e.recoveries;
                    }
                    latencies.push(latency as f64);
                }
            }
        }
        airtime_us += epoch_wall_us;
    }

    // Fold the flat blocks into the report.
    let tag_records: Vec<TagRecord> = blocks
        .iter()
        .enumerate()
        .map(|(t, b)| TagRecord {
            tag: t as u32,
            gateway: b.gateway,
            handoffs: b.handoffs,
            delivered_bytes: b.delivered_bytes,
            complete_epochs: b.complete_epochs,
            truncated_epochs: b.truncated_epochs,
            last_latency_us: b.last_latency_us,
            brownouts: b.brownouts,
            recoveries: b.recoveries,
        })
        .collect();
    let shard_reports: Vec<ShardReport> = (0..gw_shards.len())
        .map(|s| ShardReport {
            shard: s as u32,
            gateways: gw_for_shard[s],
            truncated_gateway_epochs: shard_truncated[s],
            airtime_us: shard_airtime[s],
            delivered_bytes: shard_delivered[s],
        })
        .collect();
    let delivered_bytes: u64 = tag_records.iter().map(|t| t.delivered_bytes).sum();
    let shares: Vec<u64> = tag_records.iter().map(|t| t.delivered_bytes).collect();
    let ps = percentile_many(&latencies, &[50.0, 90.0, 99.0]);
    let digest = digest_records(&tag_records);
    Ok(FleetRun {
        gateways: cfg.gateways as u32,
        tags: n_tags as u32,
        epochs: cfg.epochs,
        shards: gw_shards.len() as u32,
        all_complete: tag_records
            .iter()
            .all(|t| t.complete_epochs == cfg.epochs),
        truncated_gateway_epochs: shard_truncated.iter().sum(),
        handoffs: total_handoffs,
        handoffs_denied,
        polls: total_polls,
        missed_polls: total_missed_polls,
        brownouts: tag_records.iter().map(|t| t.brownouts as u64).sum(),
        recoveries: tag_records.iter().map(|t| t.recoveries as u64).sum(),
        delivered_bytes,
        airtime_us,
        aggregate_goodput_bps: if airtime_us > 0 {
            delivered_bytes as f64 * 8.0 / (airtime_us as f64 / 1e6)
        } else {
            0.0
        },
        fairness: jain_index(&shares),
        latency_us_p50: ps[0],
        latency_us_p90: ps[1],
        latency_us_p99: ps[2],
        digest,
        tag_records,
        shard_reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_channel::faults::FaultPlan;

    fn small() -> FleetConfig {
        FleetConfig::default()
            .with_population(9, 5)
            .with_epochs(2)
            .with_seed(11)
    }

    #[test]
    fn clean_fleet_delivers_every_message() {
        let run = run_fleet(&small(), 1).unwrap();
        assert_eq!(run.tags, 45);
        assert!(run.all_complete, "clean fleet must deliver everything");
        assert_eq!(run.truncated_gateway_epochs, 0);
        assert_eq!(
            run.delivered_bytes,
            45 * 2 * FleetConfig::default().message_bytes as u64
        );
        assert!(run.fairness > 0.99, "equal uploads → fairness {}", run.fairness);
        assert!(run.latency_us_p50 > 0.0 && run.latency_us_p99 >= run.latency_us_p50);
    }

    #[test]
    fn jobs_count_never_changes_the_bytes() {
        let cfg = small().with_faults(FaultPlan::preset("loss", 0.4, 5).unwrap());
        let a = run_fleet(&cfg, 1).unwrap();
        let b = run_fleet(&cfg, 4).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn shard_count_never_changes_per_tag_outcomes() {
        let base = small().with_faults(FaultPlan::preset("loss", 0.6, 9).unwrap());
        let one = run_fleet(&base.clone().with_shards(1), 2).unwrap();
        let five = run_fleet(&base.with_shards(5), 2).unwrap();
        assert_eq!(one.tag_records, five.tag_records);
        assert_eq!(one.digest, five.digest);
        // The shard grouping itself may differ — that is the point.
        assert_ne!(one.shard_reports.len(), five.shard_reports.len());
    }

    #[test]
    fn mobility_produces_handoffs_and_caps_hold() {
        let cfg = FleetConfig {
            mobility: 0.9,
            move_sigma_m: 60.0,
            epochs: 3,
            ..small()
        };
        let run = run_fleet(&cfg, 2).unwrap();
        assert!(run.handoffs > 0, "hot mobility must hand tags off");
        let mut loads = vec![0usize; cfg.gateways];
        for t in &run.tag_records {
            loads[t.gateway as usize] += 1;
        }
        assert!(loads.iter().all(|&l| l <= MAX_TAGS_PER_GATEWAY));
    }

    #[test]
    fn interference_degrades_crowded_fleets() {
        // Same population, gateways packed 4x closer: overlap severity
        // rises, so the crowded fleet pays more airtime per byte.
        let loose = FleetConfig {
            interference_gain: 0.6,
            faults: FaultPlan::preset("loss", 0.05, 3).unwrap(),
            ..small()
        };
        let crowded = FleetConfig {
            gateway_spacing_m: loose.gateway_spacing_m / 4.0,
            ..loose.clone()
        };
        let a = run_fleet(&loose, 1).unwrap();
        let b = run_fleet(&crowded, 1).unwrap();
        assert!(
            b.aggregate_goodput_bps < a.aggregate_goodput_bps,
            "crowded {} bps vs loose {} bps",
            b.aggregate_goodput_bps,
            a.aggregate_goodput_bps
        );
    }

    #[test]
    fn truncation_is_mirrored_per_shard() {
        let cfg = FleetConfig {
            gateway: GatewayConfig {
                max_cycles: 1,
                ..GatewayConfig::default()
            },
            faults: FaultPlan::preset("loss", 1.0, 7).unwrap(),
            message_bytes: 400,
            epochs: 1,
            ..small()
        }
        .with_shards(3);
        let run = run_fleet(&cfg, 2).unwrap();
        assert!(run.truncated_gateway_epochs > 0);
        assert_eq!(
            run.truncated_gateway_epochs,
            run.shard_reports
                .iter()
                .map(|s| s.truncated_gateway_epochs)
                .sum::<u32>(),
            "per-shard mirror must sum to the fleet total"
        );
        assert!(run.tag_records.iter().any(|t| t.truncated_epochs > 0));
        assert!(!run.all_complete);
    }

    #[test]
    fn config_validation_rejects_impossible_populations() {
        assert_eq!(
            run_fleet(&FleetConfig::default().with_population(0, 5), 1).unwrap_err(),
            FleetError::NoGateways
        );
        assert_eq!(
            run_fleet(&FleetConfig::default().with_population(4, 0), 1).unwrap_err(),
            FleetError::NoTags
        );
        assert_eq!(
            run_fleet(&FleetConfig::default().with_population(4, 251), 1).unwrap_err(),
            FleetError::TooManyTagsPerGateway { requested: 251 }
        );
        assert!(FleetError::from(GatewayError::DuplicateAddress { address: 9 })
            .to_string()
            .contains("duplicate tag address 9"));
    }

    /// A harvest regime scaled so a meaningful slice of the population
    /// browns out: low reader power, thin ambient floor, small caps.
    fn starving_fleet_energy() -> FleetEnergyConfig {
        FleetEnergyConfig {
            tx_power_dbm: 24.0,
            ambient_uw: 0.5,
            capacitor: bs_tag::energy::CapacitorConfig {
                capacitance_uf: 10.0,
                ..bs_tag::energy::CapacitorConfig::default()
            },
            policy: EnergyPolicy::SleepUntilCharged,
        }
    }

    #[test]
    fn always_powered_fleet_matches_energy_off() {
        let cfg = small().with_faults(FaultPlan::preset("loss", 0.4, 5).unwrap());
        let off = run_fleet(&cfg, 1).unwrap();
        let on = run_fleet(
            &cfg.clone().with_energy(FleetEnergyConfig::always_powered()),
            1,
        )
        .unwrap();
        assert_eq!(off.digest, on.digest, "immortal energy must be invisible");
        assert_eq!(off.tag_records, on.tag_records);
        assert_eq!(on.missed_polls, 0);
        assert_eq!(on.brownouts, 0);
    }

    #[test]
    fn intermittent_fleet_counts_brownouts_deterministically() {
        let cfg = small().with_energy(starving_fleet_energy());
        let a = run_fleet(&cfg, 1).unwrap();
        let b = run_fleet(&cfg, 4).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "jobs must not show through");
        assert!(a.brownouts > 0, "starving regime must brown tags out");
        assert_eq!(
            a.brownouts,
            a.tag_records.iter().map(|t| t.brownouts as u64).sum::<u64>()
        );
        assert_eq!(
            a.recoveries,
            a.tag_records.iter().map(|t| t.recoveries as u64).sum::<u64>()
        );
        assert!(a.missed_polls <= a.polls);
        assert!(
            !a.all_complete,
            "a browned-out population cannot deliver everything"
        );
    }

    #[test]
    fn json_is_stable_and_self_consistent() {
        let run = run_fleet(&small(), 2).unwrap();
        let j = run.to_json();
        assert!(j.contains(&format!("\"digest\": \"{:016x}\"", run.digest)));
        assert!(j.contains("\"tag_records\": ["));
        assert_eq!(j, run_fleet(&small(), 3).unwrap().to_json());
    }
}
