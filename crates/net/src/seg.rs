//! Segmentation and reassembly: arbitrary byte messages in and out of
//! CRC-protected, sequence-numbered link segments.
//!
//! The raw link moves one short frame per query (§4.1); internet
//! connectivity needs messages far larger than the 127-byte downlink
//! payload or the few-hundred-bit uplink burst a tag can sustain. A
//! [`Segment`] is the transport's wire unit: a 6-byte header, up to 255
//! payload bytes and a trailing CRC-8 over everything before it, so a
//! corrupted segment is dropped at the receiver instead of poisoning the
//! reassembled message.
//!
//! ```text
//! byte  0       1..3      3..5      5         6..6+len   6+len
//!      ┌───────┬─────────┬─────────┬─────────┬──────────┬───────┐
//!      │msg_id │ seq(BE) │total(BE)│ len     │ payload  │ crc8  │
//!      └───────┴─────────┴─────────┴─────────┴──────────┴───────┘
//! ```

use bs_dsp::bits::{bits_to_bytes, bytes_to_bits, crc8};
use std::fmt;

/// Header + CRC bytes a segment adds around its payload.
pub const SEGMENT_OVERHEAD_BYTES: usize = 7;

/// One transport segment: the unit of loss, retransmission and
/// acknowledgement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Message this segment belongs to (wraps at 256 in-flight messages).
    pub msg_id: u8,
    /// 0-based sequence number within the message.
    pub seq: u16,
    /// Total segments in the message (always ≥ 1, > `seq`).
    pub total: u16,
    /// Payload slice of the original message (≤ 255 bytes).
    pub payload: Vec<u8>,
}

/// Why a byte string failed to parse as a [`Segment`]. Parsing never
/// panics: a truncated or bit-flipped segment is data loss, not a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentError {
    /// Fewer bytes (or non-byte-aligned bits) than the fixed overhead.
    Truncated,
    /// The length field disagrees with the bytes present.
    BadLength,
    /// The CRC-8 check failed.
    BadCrc,
    /// `total` is zero or `seq` is not below `total`.
    BadSequence,
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::Truncated => write!(f, "segment truncated"),
            SegmentError::BadLength => write!(f, "segment length field mismatch"),
            SegmentError::BadCrc => write!(f, "segment CRC mismatch"),
            SegmentError::BadSequence => write!(f, "segment sequence out of range"),
        }
    }
}

impl std::error::Error for SegmentError {}

impl Segment {
    /// Serialises to the wire byte layout (header, payload, CRC).
    pub fn to_bytes(&self) -> Vec<u8> {
        debug_assert!(self.payload.len() <= 255, "payload exceeds length field");
        let mut out = Vec::with_capacity(SEGMENT_OVERHEAD_BYTES + self.payload.len());
        out.push(self.msg_id);
        out.push((self.seq >> 8) as u8);
        out.push((self.seq & 0xFF) as u8);
        out.push((self.total >> 8) as u8);
        out.push((self.total & 0xFF) as u8);
        out.push(self.payload.len() as u8);
        out.extend_from_slice(&self.payload);
        out.push(crc8(&out));
        out
    }

    /// Serialises to on-air bits (MSB-first per byte), whitened by
    /// [`scramble`], the form the tag actually backscatters.
    pub fn to_bits(&self) -> Vec<bool> {
        let mut bits = bytes_to_bits(&self.to_bytes());
        scramble(&mut bits);
        bits
    }

    /// Parses the wire byte layout; every malformation maps to a
    /// [`SegmentError`] — this function must never panic, whatever the
    /// input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Segment, SegmentError> {
        if bytes.len() < SEGMENT_OVERHEAD_BYTES {
            return Err(SegmentError::Truncated);
        }
        let len = bytes[5] as usize;
        if bytes.len() != SEGMENT_OVERHEAD_BYTES + len {
            return Err(SegmentError::BadLength);
        }
        let (body, crc) = bytes.split_at(bytes.len() - 1);
        if crc8(body) != crc[0] {
            return Err(SegmentError::BadCrc);
        }
        let seq = (u16::from(bytes[1]) << 8) | u16::from(bytes[2]);
        let total = (u16::from(bytes[3]) << 8) | u16::from(bytes[4]);
        if total == 0 || seq >= total {
            return Err(SegmentError::BadSequence);
        }
        Ok(Segment {
            msg_id: bytes[0],
            seq,
            total,
            payload: bytes[6..6 + len].to_vec(),
        })
    }

    /// Parses from on-air bits (descrambling first); a bit count that is
    /// not a whole number of bytes is a truncation.
    pub fn from_bits(bits: &[bool]) -> Result<Segment, SegmentError> {
        if bits.len() % 8 != 0 {
            return Err(SegmentError::Truncated);
        }
        let mut bits = bits.to_vec();
        scramble(&mut bits);
        Segment::from_bytes(&bits_to_bytes(&bits))
    }

    /// Wire size in bytes of a segment carrying `payload_len` bytes.
    pub fn wire_bytes(payload_len: usize) -> usize {
        SEGMENT_OVERHEAD_BYTES + payload_len
    }
}

/// Whitens on-air bits with the 802.11 additive scrambler (LFSR
/// `x^7 + x^4 + 1`, fixed nonzero seed). Segment headers start with long
/// zero runs (`msg_id` 0, `seq` 0, a zero `total` high byte) and the
/// envelope decoder loses its threshold over a transition-free stretch;
/// scrambling keeps the backscattered stream DC-balanced exactly the way
/// the Wi-Fi frames the tag piggybacks on are. XOR with a fixed
/// keystream is its own inverse, so the same call descrambles.
pub fn scramble(bits: &mut [bool]) {
    let mut state: u8 = 0x5D;
    for b in bits {
        let feedback = ((state >> 6) ^ (state >> 3)) & 1;
        *b ^= feedback == 1;
        state = ((state << 1) | feedback) & 0x7F;
    }
}

/// Splits `message` into segments of at most `max_payload` bytes each.
/// An empty message still produces one zero-length segment so that "send
/// nothing" remains acknowledgeable. Panics if `max_payload` is 0 or
/// above 255, or if the message needs more than `u16::MAX` segments —
/// those are configuration errors, not runtime conditions.
pub fn segment_message(msg_id: u8, message: &[u8], max_payload: usize) -> Vec<Segment> {
    assert!(
        (1..=255).contains(&max_payload),
        "segment payload must be 1..=255 bytes"
    );
    let total = message.len().div_ceil(max_payload).max(1);
    assert!(total <= u16::MAX as usize, "message needs too many segments");
    (0..total)
        .map(|i| Segment {
            msg_id,
            seq: i as u16,
            total: total as u16,
            payload: message[i * max_payload..(i * max_payload + max_payload).min(message.len())]
                .to_vec(),
        })
        .collect()
}

/// What [`Reassembler::accept`] did with a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accept {
    /// First copy of this sequence number: stored.
    New,
    /// Already held — a retransmission or link-level duplicate: dropped.
    Duplicate,
    /// Wrong message id or inconsistent `total`: dropped.
    Mismatch,
}

/// Receiver-side state: collects segments of one message in any order,
/// deduplicates, and exposes the cumulative + selective acknowledgement
/// the transport puts on the wire.
#[derive(Debug, Clone)]
pub struct Reassembler {
    msg_id: u8,
    total: u16,
    slots: Vec<Option<Vec<u8>>>,
    cumulative: u16,
    /// Duplicate segment arrivals dropped so far.
    pub duplicates: u64,
    /// Mismatched (foreign / inconsistent) segments dropped so far.
    pub mismatches: u64,
}

impl Reassembler {
    /// A reassembler expecting `total` segments of message `msg_id`.
    pub fn new(msg_id: u8, total: u16) -> Self {
        assert!(total >= 1, "a message has at least one segment");
        Reassembler {
            msg_id,
            total,
            slots: vec![None; total as usize],
            cumulative: 0,
            duplicates: 0,
            mismatches: 0,
        }
    }

    /// Offers one received segment.
    pub fn accept(&mut self, seg: &Segment) -> Accept {
        if seg.msg_id != self.msg_id || seg.total != self.total || seg.seq >= self.total {
            self.mismatches += 1;
            return Accept::Mismatch;
        }
        let slot = &mut self.slots[seg.seq as usize];
        if slot.is_some() {
            self.duplicates += 1;
            return Accept::Duplicate;
        }
        *slot = Some(seg.payload.clone());
        while (self.cumulative as usize) < self.slots.len()
            && self.slots[self.cumulative as usize].is_some()
        {
            self.cumulative += 1;
        }
        Accept::New
    }

    /// Segments with `seq < cumulative()` have all arrived.
    pub fn cumulative(&self) -> u16 {
        self.cumulative
    }

    /// Selective-ACK bitmap over the 32 sequence numbers after the
    /// cumulative head (bit `i` ⇔ `cumulative + 1 + i` held).
    pub fn sack(&self) -> u32 {
        let mut bits = 0u32;
        for i in 0..32u32 {
            let seq = self.cumulative as usize + 1 + i as usize;
            if seq < self.slots.len() && self.slots[seq].is_some() {
                bits |= 1 << i;
            }
        }
        bits
    }

    /// True when the segment with this sequence number has arrived (or
    /// been reconstructed).
    pub fn has(&self, seq: u16) -> bool {
        (seq as usize) < self.slots.len() && self.slots[seq as usize].is_some()
    }

    /// The held payload for `seq`, if any.
    pub fn payload_of(&self, seq: u16) -> Option<&[u8]> {
        self.slots.get(seq as usize)?.as_deref()
    }

    /// Fills an empty slot with a payload reconstructed by the FEC layer
    /// (not received off the air). Advances the cumulative head like a
    /// normal arrival but does **not** touch the duplicate counter — a
    /// repair is not an on-air event. Returns false (and stores nothing)
    /// if the slot is already held or `seq` is out of range.
    pub fn insert_repaired(&mut self, seq: u16, payload: Vec<u8>) -> bool {
        if seq >= self.total || self.slots[seq as usize].is_some() {
            return false;
        }
        self.slots[seq as usize] = Some(payload);
        while (self.cumulative as usize) < self.slots.len()
            && self.slots[self.cumulative as usize].is_some()
        {
            self.cumulative += 1;
        }
        true
    }

    /// Segments received so far (unique).
    pub fn received(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Payload bytes received so far (unique).
    pub fn received_bytes(&self) -> u64 {
        self.slots
            .iter()
            .flatten()
            .map(|p| p.len() as u64)
            .sum()
    }

    /// True once every segment has arrived.
    pub fn complete(&self) -> bool {
        self.cumulative == self.total
    }

    /// True while later segments are held but the window head is missing
    /// — the head-of-line stall the transport counts.
    pub fn head_of_line_blocked(&self) -> bool {
        !self.complete() && self.slots[self.cumulative as usize..].iter().any(|s| s.is_some())
    }

    /// The reassembled message once complete; `None` before that.
    pub fn assemble(&self) -> Option<Vec<u8>> {
        if !self.complete() {
            return None;
        }
        let mut out = Vec::new();
        for slot in &self.slots {
            out.extend_from_slice(slot.as_deref().unwrap_or_default());
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_sizes() {
        for len in [0usize, 1, 7, 16, 255] {
            let seg = Segment {
                msg_id: 7,
                seq: 3,
                total: 9,
                payload: (0..len).map(|i| (i * 31 + 5) as u8).collect(),
            };
            assert_eq!(Segment::from_bytes(&seg.to_bytes()), Ok(seg.clone()));
            assert_eq!(Segment::from_bits(&seg.to_bits()), Ok(seg));
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let seg = Segment {
            msg_id: 1,
            seq: 0,
            total: 2,
            payload: vec![0xAB, 0xCD, 0xEF],
        };
        let bits = seg.to_bits();
        for i in 0..bits.len() {
            let mut flipped = bits.clone();
            flipped[i] = !flipped[i];
            assert!(
                Segment::from_bits(&flipped).is_err(),
                "flip at bit {i} slipped through"
            );
        }
    }

    #[test]
    fn truncations_error_out() {
        let seg = Segment {
            msg_id: 1,
            seq: 1,
            total: 3,
            payload: vec![1, 2, 3, 4],
        };
        let bits = seg.to_bits();
        for cut in 0..bits.len() {
            assert!(Segment::from_bits(&bits[..cut]).is_err());
        }
    }

    #[test]
    fn scrambler_is_an_involution_and_breaks_zero_runs() {
        let mut bits = vec![false; 256];
        scramble(&mut bits);
        // The whitened stream must have no decoder-breaking runs: count
        // the longest stretch of identical bits.
        let mut longest = 0;
        let mut run = 0;
        let mut last = None;
        for &b in &bits {
            run = if last == Some(b) { run + 1 } else { 1 };
            longest = longest.max(run);
            last = Some(b);
        }
        assert!(longest <= 8, "scrambled all-zeros has a {longest}-bit run");
        scramble(&mut bits);
        assert_eq!(bits, vec![false; 256], "scramble must be its own inverse");
    }

    #[test]
    fn sequence_bounds_enforced() {
        let bad = Segment {
            msg_id: 0,
            seq: 5,
            total: 5,
            payload: vec![],
        };
        assert_eq!(Segment::from_bytes(&bad.to_bytes()), Err(SegmentError::BadSequence));
    }

    #[test]
    fn segmentation_reassembles_exactly() {
        let msg: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        let segs = segment_message(9, &msg, 16);
        assert_eq!(segs.len(), 64);
        let mut rx = Reassembler::new(9, segs.len() as u16);
        // Deliver in a scrambled order with duplicates.
        for k in (0..segs.len()).rev() {
            assert_eq!(rx.accept(&segs[k]), Accept::New);
            assert_eq!(rx.accept(&segs[k]), Accept::Duplicate);
        }
        assert!(rx.complete());
        assert_eq!(rx.assemble(), Some(msg));
        assert_eq!(rx.duplicates, 64);
    }

    #[test]
    fn empty_message_is_one_segment() {
        let segs = segment_message(0, &[], 16);
        assert_eq!(segs.len(), 1);
        assert!(segs[0].payload.is_empty());
        let mut rx = Reassembler::new(0, 1);
        rx.accept(&segs[0]);
        assert_eq!(rx.assemble(), Some(vec![]));
    }

    #[test]
    fn sack_tracks_out_of_order_receipts() {
        let msg = [0u8; 80];
        let segs = segment_message(3, &msg, 16); // 5 segments
        let mut rx = Reassembler::new(3, 5);
        rx.accept(&segs[0]);
        rx.accept(&segs[2]);
        rx.accept(&segs[4]);
        assert_eq!(rx.cumulative(), 1);
        // seq 2 is cumulative+1 → bit 0; seq 4 → bit 2.
        assert_eq!(rx.sack(), 0b101);
        assert!(rx.head_of_line_blocked());
        rx.accept(&segs[1]);
        assert_eq!(rx.cumulative(), 3);
        rx.accept(&segs[3]);
        assert!(rx.complete());
        assert!(!rx.head_of_line_blocked());
    }

    #[test]
    fn insert_repaired_fills_holes_without_counting_duplicates() {
        let msg = [7u8; 48];
        let segs = segment_message(4, &msg, 16); // 3 segments
        let mut rx = Reassembler::new(4, 3);
        rx.accept(&segs[0]);
        rx.accept(&segs[2]);
        assert_eq!(rx.cumulative(), 1);
        assert!(!rx.has(1));
        assert_eq!(rx.payload_of(1), None);
        assert!(rx.insert_repaired(1, segs[1].payload.clone()));
        assert_eq!(rx.cumulative(), 3, "repair must advance the head");
        assert!(rx.complete());
        assert_eq!(rx.duplicates, 0, "repairs are not duplicates");
        assert_eq!(rx.assemble(), Some(msg.to_vec()));
        // Repairing a held or out-of-range slot is refused.
        assert!(!rx.insert_repaired(1, vec![0]));
        assert!(!rx.insert_repaired(9, vec![0]));
        assert_eq!(rx.payload_of(2), Some(&segs[2].payload[..]));
        assert_eq!(rx.payload_of(9), None);
    }

    #[test]
    fn foreign_segments_are_mismatches() {
        let mut rx = Reassembler::new(1, 4);
        let other = Segment {
            msg_id: 2,
            seq: 0,
            total: 4,
            payload: vec![1],
        };
        assert_eq!(rx.accept(&other), Accept::Mismatch);
        let wrong_total = Segment {
            msg_id: 1,
            seq: 0,
            total: 5,
            payload: vec![1],
        };
        assert_eq!(rx.accept(&wrong_total), Accept::Mismatch);
        assert_eq!(rx.mismatches, 2);
    }
}
