//! Forward error correction across segment groups.
//!
//! ARQ alone recovers losses by retransmitting, and every retransmission
//! costs a poll + backoff round trip — painful when the helper traffic
//! that powers the link vanishes for a heavy-tailed idle gap and takes a
//! whole burst with it. GuardRider-style Reed-Solomon coding attacks the
//! same losses *in line*: each group of `k` data segments travels with
//! `p` parity segments, and any `k` of the `k+p` reconstruct the rest
//! without another round trip.
//!
//! Three layers live here:
//!
//! * [`ReedSolomon`] — a GF(256) RS(n,k) coder: systematic encode by
//!   LFSR synthetic division, Berlekamp–Massey + Forney decode with
//!   erasure support, built only on [`bs_dsp::codes::gf256`] (no
//!   external crates). Decode is *total*: any input either corrects to
//!   a verified codeword or returns [`FecError`] — never garbage, never
//!   a panic.
//! * [`FecConfig`] — the per-transfer code-rate choice, including the
//!   [`FecConfig::for_traffic`] rule that maps measured helper-traffic
//!   statistics (`bs_wifi::traffic::TrafficStats`) to a parity budget.
//! * [`GroupCoder`] — the segment-group layout: how a message's data
//!   segments are grouped, where parity segments sit in the sequence
//!   space, and how a [`Reassembler`] full of
//!   holes gets repaired.
//!
//! Segment loss is an *erasure* (the CRC-8 already converted corruption
//! into loss, and the receiver knows exactly which sequence numbers are
//! missing), so the coder runs at its full `p`-erasure capacity rather
//! than the `p/2`-error capacity.

use crate::seg::{Reassembler, Segment};
use bs_dsp::codes::gf256;
use bs_wifi::traffic::TrafficStats;
use std::fmt;

/// Why a Reed-Solomon operation failed. Decoding never panics and never
/// returns uncorrected data as if it were corrected: every failure mode
/// maps here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FecError {
    /// The codeword slice length does not match the code's `n`.
    WrongLength,
    /// An erasure position lies outside the codeword.
    ErasureOutOfRange,
    /// More erasures than parity symbols: unrecoverable by construction.
    TooManyErasures,
    /// The corruption exceeds the code's correction capacity (detected
    /// either structurally during decode or by the post-correction
    /// syndrome re-check).
    BeyondCapacity,
}

impl fmt::Display for FecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FecError::WrongLength => write!(f, "codeword length does not match the code"),
            FecError::ErasureOutOfRange => write!(f, "erasure position outside the codeword"),
            FecError::TooManyErasures => write!(f, "more erasures than parity symbols"),
            FecError::BeyondCapacity => write!(f, "corruption beyond correction capacity"),
        }
    }
}

impl std::error::Error for FecError {}

/// A systematic Reed-Solomon code over GF(256) with `n` total and `k`
/// data symbols (`n - k` parity), generator roots `α⁰..α^{n-k-1}`.
///
/// Corrects any combination of `e` errors and `f` erasures with
/// `2e + f ≤ n − k`. Codewords are `data || parity`.
///
/// ```
/// use bs_net::fec::ReedSolomon;
/// let rs = ReedSolomon::new(12, 8);
/// let mut cw = rs.encode(&[1, 2, 3, 4, 5, 6, 7, 8]);
/// cw[3] = 0xEE; // corrupt one symbol, position unknown to the decoder
/// assert_eq!(rs.decode(&mut cw, &[]), Ok(1));
/// assert_eq!(&cw[..8], &[1, 2, 3, 4, 5, 6, 7, 8]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReedSolomon {
    n: usize,
    k: usize,
    /// Generator polynomial, descending-degree coefficients, monic of
    /// degree `n - k`.
    gen: Vec<u8>,
}

impl ReedSolomon {
    /// Builds the RS(n, k) code.
    ///
    /// # Panics
    /// Panics unless `1 ≤ k < n ≤ 255` (a configuration error, not a
    /// runtime condition).
    pub fn new(n: usize, k: usize) -> Self {
        assert!(
            k >= 1 && k < n && n <= 255,
            "ReedSolomon needs 1 <= k < n <= 255, got n={n} k={k}"
        );
        let mut gen = vec![1u8];
        for i in 0..(n - k) {
            gen = gf256::poly_mul(&gen, &[1, gf256::alpha_pow(i as i32)]);
        }
        ReedSolomon { n, k, gen }
    }

    /// Total symbols per codeword.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Data symbols per codeword.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Parity symbols per codeword.
    pub fn parity_len(&self) -> usize {
        self.n - self.k
    }

    /// The parity symbols for a `k`-symbol data block: the remainder of
    /// `data(x)·x^{n−k}` divided by the generator polynomial, computed
    /// by LFSR-style synthetic division.
    ///
    /// # Panics
    /// Panics if `data.len() != k`.
    pub fn parity(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len(), self.k, "parity() needs exactly k data symbols");
        let nsym = self.parity_len();
        let mut rem = vec![0u8; nsym];
        for &d in data {
            let coef = gf256::add(d, rem[0]);
            rem.rotate_left(1);
            rem[nsym - 1] = 0;
            if coef != 0 {
                for (r, &g) in rem.iter_mut().zip(&self.gen[1..]) {
                    *r = gf256::add(*r, gf256::mul(g, coef));
                }
            }
        }
        rem
    }

    /// Systematic encode: `data || parity`.
    ///
    /// # Panics
    /// Panics if `data.len() != k`.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        let mut cw = Vec::with_capacity(self.n);
        cw.extend_from_slice(data);
        cw.extend_from_slice(&self.parity(data));
        cw
    }

    /// Syndromes `S_i = c(α^i)` for `i = 0..n−k`; all-zero ⇔ valid
    /// codeword.
    fn syndromes(&self, cw: &[u8]) -> Vec<u8> {
        (0..self.parity_len())
            .map(|i| gf256::poly_eval(cw, gf256::alpha_pow(i as i32)))
            .collect()
    }

    /// Corrects `cw` in place given the known-missing positions
    /// (`erasures`, as codeword indices `0..n`); unknown errors are
    /// located by Berlekamp–Massey. Returns the number of symbol
    /// positions corrected.
    ///
    /// Totality: on any input this either returns `Ok` with `cw` a
    /// verified codeword (post-correction syndromes re-checked) or
    /// returns `Err` with `cw` restored to the input — it never leaves
    /// garbage behind and never panics.
    pub fn decode(&self, cw: &mut [u8], erasures: &[usize]) -> Result<usize, FecError> {
        if cw.len() != self.n {
            return Err(FecError::WrongLength);
        }
        if erasures.iter().any(|&p| p >= self.n) {
            return Err(FecError::ErasureOutOfRange);
        }
        let mut erasures: Vec<usize> = erasures.to_vec();
        erasures.sort_unstable();
        erasures.dedup();
        let nsym = self.parity_len();
        if erasures.len() > nsym {
            return Err(FecError::TooManyErasures);
        }

        let synd = self.syndromes(cw);
        if synd.iter().all(|&s| s == 0) {
            return Ok(0);
        }

        let backup = cw.to_vec();
        match self.correct(cw, &synd, &erasures) {
            Ok(count) => {
                // The decisive totality check: BM happily produces a
                // plausible-looking "correction" beyond capacity; only a
                // re-verified syndrome proves we landed on a codeword.
                if self.syndromes(cw).iter().all(|&s| s == 0) {
                    Ok(count)
                } else {
                    cw.copy_from_slice(&backup);
                    Err(FecError::BeyondCapacity)
                }
            }
            Err(e) => {
                cw.copy_from_slice(&backup);
                Err(e)
            }
        }
    }

    /// The correction pipeline: Forney syndromes → Berlekamp–Massey →
    /// Chien search → Forney magnitudes. Positions are codeword indices;
    /// "coefficient positions" (`n−1−index`) are the exponent space the
    /// locator polynomial lives in.
    fn correct(&self, cw: &mut [u8], synd: &[u8], erasures: &[usize]) -> Result<usize, FecError> {
        let nsym = self.parity_len();

        // Forney syndromes: fold the known erasure locations out of the
        // syndromes so BM only has to find the unknown error positions.
        let mut fsynd = synd.to_vec();
        for &pos in erasures {
            let x = gf256::alpha_pow((self.n - 1 - pos) as i32);
            for j in 0..fsynd.len() - 1 {
                fsynd[j] = gf256::add(gf256::mul(fsynd[j], x), fsynd[j + 1]);
            }
        }

        // Berlekamp–Massey over the Forney syndromes. `err_loc` is the
        // error locator Λ(x), descending coefficients.
        let mut err_loc = vec![1u8];
        let mut old_loc = vec![1u8];
        for i in 0..nsym.saturating_sub(erasures.len()) {
            let mut delta = fsynd[i];
            for j in 1..err_loc.len() {
                if j > i {
                    // Older syndromes than S_0 do not exist; the naive
                    // port of the textbook loop would index fsynd[i-j]
                    // with i-j < 0 and wrap.
                    break;
                }
                delta = gf256::add(
                    delta,
                    gf256::mul(err_loc[err_loc.len() - 1 - j], fsynd[i - j]),
                );
            }
            old_loc.push(0);
            if delta != 0 {
                if old_loc.len() > err_loc.len() {
                    let new_loc: Vec<u8> = old_loc.iter().map(|&c| gf256::mul(c, delta)).collect();
                    old_loc = err_loc
                        .iter()
                        .map(|&c| gf256::mul(c, gf256::inv(delta)))
                        .collect();
                    err_loc = new_loc;
                }
                let shift = err_loc.len() - old_loc.len();
                for (j, &c) in old_loc.iter().enumerate() {
                    err_loc[shift + j] = gf256::add(err_loc[shift + j], gf256::mul(c, delta));
                }
            }
        }
        while err_loc.len() > 1 && err_loc[0] == 0 {
            err_loc.remove(0);
        }
        let errs = err_loc.len() - 1;
        if 2 * errs + erasures.len() > nsym {
            return Err(FecError::BeyondCapacity);
        }

        // Chien search: roots of Λ give the unknown error positions.
        let mut positions = erasures.to_vec();
        if errs > 0 {
            let mut found = 0usize;
            for i in 0..self.n {
                let x = gf256::alpha_pow(i as i32);
                // Λ(α^{-coef}) = 0 ⇔ error at coefficient position coef;
                // evaluating the reversed polynomial at α^{coef} is the
                // same test without inversions.
                let rev: Vec<u8> = err_loc.iter().rev().copied().collect();
                if gf256::poly_eval(&rev, x) == 0 {
                    positions.push(self.n - 1 - i);
                    found += 1;
                }
            }
            if found != errs {
                return Err(FecError::BeyondCapacity);
            }
        }
        positions.sort_unstable();
        positions.dedup();

        // Errata locator over every known-bad position, then the error
        // evaluator Ω(x) = S(x)·Λ(x) mod x^{deg+1}.
        let mut errata_loc = vec![1u8];
        for &pos in &positions {
            let x = gf256::alpha_pow((self.n - 1 - pos) as i32);
            errata_loc = gf256::poly_mul(&errata_loc, &[x, 1]);
        }
        // S(x) as a descending-order polynomial is the reversed syndrome
        // list with a trailing zero (the syndromes are the coefficients
        // of x¹..x^{nsym}, not x⁰.. — the classic off-by-one of the
        // fcr = 0 convention).
        let mut synd_rev: Vec<u8> = synd.iter().rev().copied().collect();
        synd_rev.push(0);
        let prod = gf256::poly_mul(&synd_rev, &errata_loc);
        let keep = errata_loc.len();
        let omega: Vec<u8> = prod[prod.len().saturating_sub(keep)..].to_vec();

        // Forney magnitudes.
        let xs: Vec<u8> = positions
            .iter()
            .map(|&pos| gf256::alpha_pow((self.n - 1 - pos) as i32))
            .collect();
        let mut corrected = 0usize;
        for (idx, &pos) in positions.iter().enumerate() {
            let xi = xs[idx];
            let xi_inv = gf256::inv(xi);
            // Λ'(Xi⁻¹) as the product form Π_{j≠i} (1 − Xi⁻¹·Xj).
            let mut loc_prime = 1u8;
            for (j, &xj) in xs.iter().enumerate() {
                if j != idx {
                    loc_prime = gf256::mul(loc_prime, gf256::add(1, gf256::mul(xi_inv, xj)));
                }
            }
            if loc_prime == 0 {
                return Err(FecError::BeyondCapacity);
            }
            let y = gf256::mul(xi, gf256::poly_eval(&omega, xi_inv));
            let magnitude = gf256::div(y, loc_prime);
            if magnitude != 0 {
                corrected += 1;
            }
            cw[pos] = gf256::add(cw[pos], magnitude);
        }
        Ok(corrected)
    }
}

/// The transport's code-rate choice: every group of `group_data` data
/// segments is followed by `group_parity` parity segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FecConfig {
    /// Data segments per group (`k`), 1..=64.
    pub group_data: usize,
    /// Parity segments per group (`p`), 0 disables FEC.
    pub group_parity: usize,
}

impl Default for FecConfig {
    fn default() -> Self {
        FecConfig {
            group_data: 8,
            group_parity: 0,
        }
    }
}

impl FecConfig {
    /// FEC disabled: the transport degenerates to plain ARQ, bit for
    /// bit.
    pub fn none() -> Self {
        FecConfig::default()
    }

    /// A fixed (k, p) group code.
    ///
    /// # Panics
    /// Panics unless `1 ≤ group_data ≤ 64` and `group_parity ≤ 64` —
    /// wider groups exceed the sequence-space and windowing assumptions.
    pub fn fixed(group_data: usize, group_parity: usize) -> Self {
        assert!(
            (1..=64).contains(&group_data) && group_parity <= 64,
            "FecConfig needs 1 <= group_data <= 64 and group_parity <= 64"
        );
        FecConfig {
            group_data,
            group_parity,
        }
    }

    /// True when parity segments will be generated.
    pub fn is_enabled(&self) -> bool {
        self.group_parity > 0
    }

    /// Code rate `k / (k + p)` (1.0 when disabled).
    pub fn rate(&self) -> f64 {
        self.group_data as f64 / (self.group_data + self.group_parity) as f64
    }

    /// The adaptive code-rate rule: picks a parity budget from measured
    /// helper-traffic statistics ([`bs_wifi::traffic::RateEstimator`]).
    ///
    /// The decision wants the *tail*, not the mean: a Poisson stream at
    /// the same mean rate rarely starves a whole segment, while a
    /// Pareto-gap stream with tail index near 1 regularly goes silent
    /// for multiples of the segment airtime and erases segments in
    /// bursts — exactly the loss process RS-across-the-group repairs and
    /// ARQ pays round trips for. The rule therefore keys on
    /// `tail_index` (heavier tail = smaller α = more parity) and
    /// `gap_cv` (burstiness), with the mean rate only gating the
    /// "plenty of traffic" fast path.
    ///
    /// All non-trivial tiers use the widest group (k = 64): pooling the
    /// parity across a whole window of windows means a burst erasure
    /// anywhere in the group draws on the *shared* budget, instead of
    /// overwhelming one small group while a neighbour's parity goes
    /// unused. Combined with the transport's interleaved send order and
    /// its stop-when-repairable behaviour (trailing parity a finished
    /// group never needed is never transmitted), wider is strictly
    /// kinder to bursts:
    ///
    /// | regime | test | parity (k = 64) |
    /// |---|---|---|
    /// | benign    | CV ≤ 1.5 and tail α > 2.5 | 0 (plain ARQ) |
    /// | bursty    | CV > 1.5 or tail α ≤ 2.5  | 12 (rate 0.84) |
    /// | wild      | tail α ≤ 1.8              | 24 (rate 0.73) |
    /// | starved   | tail α ≤ 1.3              | 32 (rate 0.67) |
    pub fn for_traffic(stats: &TrafficStats) -> Self {
        let k = 64;
        let alpha = stats.tail_index;
        let parity = if alpha <= 1.3 {
            32
        } else if alpha <= 1.8 {
            24
        } else if stats.gap_cv > 1.5 || alpha <= 2.5 {
            12
        } else {
            0
        };
        FecConfig {
            group_data: k,
            group_parity: parity,
        }
    }
}

/// What one group-repair attempt did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairOutcome {
    /// Segments (data and parity) reconstructed into the reassembler.
    pub repaired: u64,
    /// True when the group had too many holes to decode this time.
    pub failed: bool,
}

/// The segment-group layout: how a message maps onto interleaved data +
/// parity sequence numbers, and how received groups get repaired.
///
/// Group `g` owns the contiguous sequence range
/// `[g·(k+p), g·(k+p) + d + p)` with `d = k` except possibly in the last
/// group; data slots come first, then parity. Each data segment
/// contributes one column `[len, payload, 0-pad]` of `L+1` bytes (`L` =
/// `seg_payload_bytes`); the last group's absent data columns are
/// *known zeros* on both sides (a shortened code), not erasures. Parity
/// segments carry their `L+1` column bytes verbatim, so with FEC enabled
/// `L` must stay ≤ 254.
#[derive(Debug, Clone)]
pub struct GroupCoder {
    cfg: FecConfig,
    seg_payload: usize,
    data_total: u16,
    wire_total: u16,
    groups: usize,
    rs: ReedSolomon,
}

impl GroupCoder {
    /// Layout for a `message_len`-byte message split into
    /// `seg_payload`-byte segments under `cfg`.
    ///
    /// # Panics
    /// Panics if `cfg` is disabled, `seg_payload` is outside 1..=254, or
    /// the message needs more than `u16::MAX` wire segments.
    pub fn for_message(message_len: usize, seg_payload: usize, cfg: FecConfig) -> Self {
        assert!(cfg.is_enabled(), "GroupCoder needs an enabled FecConfig");
        assert!(
            (1..=254).contains(&seg_payload),
            "FEC needs seg_payload_bytes in 1..=254 (parity columns add one byte)"
        );
        let data_total = message_len.div_ceil(seg_payload).max(1);
        Self::from_data_total(data_total, seg_payload, cfg)
    }

    /// Layout reconstructed from a received `total` field — the
    /// receiver-side constructor (derives `data_total` from the wire
    /// count, which is unambiguous for any k, p).
    ///
    /// # Panics
    /// Panics on a `wire_total` no message under this `cfg` could
    /// produce.
    pub fn for_wire(wire_total: u16, seg_payload: usize, cfg: FecConfig) -> Self {
        assert!(cfg.is_enabled(), "GroupCoder needs an enabled FecConfig");
        let span = cfg.group_data + cfg.group_parity;
        let groups = (wire_total as usize).div_ceil(span);
        let data_total = (wire_total as usize)
            .checked_sub(groups * cfg.group_parity)
            .expect("wire_total too small for the configured parity");
        let c = Self::from_data_total(data_total, seg_payload, cfg);
        assert_eq!(c.wire_total, wire_total, "wire_total inconsistent with cfg");
        c
    }

    fn from_data_total(data_total: usize, seg_payload: usize, cfg: FecConfig) -> Self {
        let groups = data_total.div_ceil(cfg.group_data).max(1);
        let wire_total = data_total + groups * cfg.group_parity;
        assert!(
            wire_total <= u16::MAX as usize,
            "message needs too many wire segments"
        );
        GroupCoder {
            rs: ReedSolomon::new(cfg.group_data + cfg.group_parity, cfg.group_data),
            cfg,
            seg_payload,
            data_total: data_total as u16,
            wire_total: wire_total as u16,
            groups,
        }
    }

    /// Data segments (before parity).
    pub fn data_total(&self) -> u16 {
        self.data_total
    }

    /// Wire segments (data + parity) — the `total` every segment
    /// carries.
    pub fn wire_total(&self) -> u16 {
        self.wire_total
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Wire sequence numbers spanned by one full group (data + parity).
    pub fn group_size(&self) -> usize {
        self.cfg.group_data + self.cfg.group_parity
    }

    /// The group a wire sequence number belongs to.
    pub fn group_of(&self, seq: u16) -> usize {
        let span = self.cfg.group_data + self.cfg.group_parity;
        ((seq as usize) / span).min(self.groups - 1)
    }

    /// (first wire seq, data slots, parity slots) of group `g`.
    pub fn group_span(&self, g: usize) -> (u16, usize, usize) {
        let span = self.cfg.group_data + self.cfg.group_parity;
        let first = g * span;
        let data = if g + 1 == self.groups {
            self.data_total as usize - g * self.cfg.group_data
        } else {
            self.cfg.group_data
        };
        (first as u16, data, self.cfg.group_parity)
    }

    /// True when `seq` is a parity slot.
    pub fn is_parity(&self, seq: u16) -> bool {
        let g = self.group_of(seq);
        let (first, data, _) = self.group_span(g);
        seq >= first + data as u16
    }

    /// The 0-based data index of a data slot (`None` for parity).
    pub fn data_index(&self, seq: u16) -> Option<usize> {
        let g = self.group_of(seq);
        let (first, data, _) = self.group_span(g);
        let off = (seq - first) as usize;
        if off < data {
            Some(g * self.cfg.group_data + off)
        } else {
            None
        }
    }

    /// The `L+1`-byte column a data payload contributes to its group's
    /// codewords: length byte, payload, zero padding.
    fn column(&self, payload: &[u8]) -> Vec<u8> {
        debug_assert!(payload.len() <= self.seg_payload);
        let mut col = Vec::with_capacity(self.seg_payload + 1);
        col.push(payload.len() as u8);
        col.extend_from_slice(payload);
        col.resize(self.seg_payload + 1, 0);
        col
    }

    /// Splits `message` into the full wire segment list: data segments
    /// interleaved with their groups' parity segments, all carrying
    /// `total = wire_total`.
    pub fn encode_message(&self, msg_id: u8, message: &[u8]) -> Vec<Segment> {
        let l = self.seg_payload;
        let mut out = Vec::with_capacity(self.wire_total as usize);
        for g in 0..self.groups {
            let (first, data, parity) = self.group_span(g);
            // The k columns of this group's codewords (virtual all-zero
            // columns for the shortened tail).
            let mut cols: Vec<Vec<u8>> = Vec::with_capacity(self.cfg.group_data);
            for slot in 0..data {
                let di = g * self.cfg.group_data + slot;
                let lo = (di * l).min(message.len());
                let hi = ((di + 1) * l).min(message.len());
                let payload = &message[lo..hi];
                cols.push(self.column(payload));
                out.push(Segment {
                    msg_id,
                    seq: first + slot as u16,
                    total: self.wire_total,
                    payload: payload.to_vec(),
                });
            }
            cols.resize(self.cfg.group_data, vec![0u8; l + 1]);
            // Row-wise RS over the columns: parity column j, byte r.
            let mut parity_cols = vec![vec![0u8; l + 1]; parity];
            let mut row = vec![0u8; self.cfg.group_data];
            for r in 0..=l {
                for (c, col) in cols.iter().enumerate() {
                    row[c] = col[r];
                }
                for (j, pr) in self.rs.parity(&row).into_iter().enumerate() {
                    parity_cols[j][r] = pr;
                }
            }
            for (j, pc) in parity_cols.into_iter().enumerate() {
                out.push(Segment {
                    msg_id,
                    seq: first + (data + j) as u16,
                    total: self.wire_total,
                    payload: pc,
                });
            }
        }
        out
    }

    /// Attempts to reconstruct every missing slot of group `g` from the
    /// slots the reassembler holds. Missing slots are erasures; if they
    /// number more than the group's parity the attempt fails (and will
    /// be retried when more segments arrive). On success both data *and*
    /// parity slots are filled, so the group acks completely and ARQ
    /// stops touching it.
    pub fn repair_group(&self, g: usize, rx: &mut Reassembler) -> RepairOutcome {
        let (first, data, parity) = self.group_span(g);
        let n = self.cfg.group_data + self.cfg.group_parity;
        let l = self.seg_payload;
        let missing: Vec<usize> = (0..data + parity)
            .filter(|&s| !rx.has(first + s as u16))
            .collect();
        if missing.is_empty() {
            return RepairOutcome::default();
        }
        if missing.len() > self.cfg.group_parity {
            return RepairOutcome {
                repaired: 0,
                failed: true,
            };
        }

        // Codeword positions: 0..k data (shortened tail = known zeros),
        // k..n parity. Wire slot s maps to position s for data slots and
        // k + (s - data) for parity slots.
        let pos_of = |s: usize| if s < data { s } else { self.cfg.group_data + (s - data) };
        let erasures: Vec<usize> = missing.iter().map(|&s| pos_of(s)).collect();

        // One codeword per byte row, columns gathered from held slots.
        let mut cols: Vec<Vec<u8>> = vec![vec![0u8; l + 1]; n];
        for s in 0..data + parity {
            if let Some(payload) = rx.payload_of(first + s as u16) {
                cols[pos_of(s)] = if s < data {
                    self.column(payload)
                } else {
                    let mut c = payload.to_vec();
                    c.resize(l + 1, 0);
                    c
                };
            }
        }
        let mut repaired_cols: Vec<Vec<u8>> = vec![vec![0u8; l + 1]; missing.len()];
        let mut cw = vec![0u8; n];
        for r in 0..=l {
            for (p, col) in cols.iter().enumerate() {
                cw[p] = col[r];
            }
            for &e in &erasures {
                cw[e] = 0;
            }
            if self.rs.decode(&mut cw, &erasures).is_err() {
                return RepairOutcome {
                    repaired: 0,
                    failed: true,
                };
            }
            for (m, &e) in erasures.iter().enumerate() {
                repaired_cols[m][r] = cw[e];
            }
        }

        let mut repaired = 0u64;
        for (m, &s) in missing.iter().enumerate() {
            let col = &repaired_cols[m];
            let payload = if s < data {
                let len = col[0] as usize;
                if len > l {
                    // A decoded length byte outside the segment size
                    // means the repair is inconsistent; refuse it.
                    return RepairOutcome {
                        repaired,
                        failed: true,
                    };
                }
                col[1..1 + len].to_vec()
            } else {
                col.clone()
            };
            if rx.insert_repaired(first + s as u16, payload) {
                repaired += 1;
            }
        }
        RepairOutcome {
            repaired,
            failed: false,
        }
    }

    /// True once every *data* slot is held (parity may still be
    /// missing).
    pub fn data_complete(&self, rx: &Reassembler) -> bool {
        (0..self.wire_total)
            .filter(|&s| !self.is_parity(s))
            .all(|s| rx.has(s))
    }

    /// Unique data payload bytes held so far (what `delivered_bytes`
    /// should count — parity is overhead, not delivery).
    pub fn data_bytes(&self, rx: &Reassembler) -> u64 {
        (0..self.wire_total)
            .filter(|&s| !self.is_parity(s))
            .filter_map(|s| rx.payload_of(s))
            .map(|p| p.len() as u64)
            .sum()
    }

    /// The reassembled message from the data slots alone; `None` until
    /// [`Self::data_complete`].
    pub fn assemble_data(&self, rx: &Reassembler) -> Option<Vec<u8>> {
        if !self.data_complete(rx) {
            return None;
        }
        let mut out = Vec::new();
        for s in 0..self.wire_total {
            if !self.is_parity(s) {
                out.extend_from_slice(rx.payload_of(s)?);
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_dsp::SimRng;

    #[test]
    fn rs_roundtrip_clean() {
        let rs = ReedSolomon::new(15, 11);
        let data: Vec<u8> = (1..=11).collect();
        let mut cw = rs.encode(&data);
        assert_eq!(cw.len(), 15);
        assert_eq!(rs.decode(&mut cw, &[]), Ok(0));
        assert_eq!(&cw[..11], &data[..]);
    }

    #[test]
    fn rs_corrects_errors_to_half_parity() {
        let rs = ReedSolomon::new(20, 12);
        let data: Vec<u8> = (0..12).map(|i| (i * 37 + 5) as u8).collect();
        let clean = rs.encode(&data);
        let mut rng = SimRng::new(9).stream("fec-test");
        for errs in 0..=4usize {
            let mut cw = clean.clone();
            let mut hit = Vec::new();
            while hit.len() < errs {
                let p = rng.index(cw.len());
                if !hit.contains(&p) {
                    hit.push(p);
                    cw[p] ^= (rng.index(255) + 1) as u8;
                }
            }
            assert_eq!(rs.decode(&mut cw, &[]), Ok(errs), "errs {errs}");
            assert_eq!(cw, clean);
        }
    }

    #[test]
    fn rs_corrects_erasures_to_full_parity() {
        let rs = ReedSolomon::new(12, 8);
        let data = [9u8, 8, 7, 6, 5, 4, 3, 2];
        let clean = rs.encode(&data);
        let mut cw = clean.clone();
        for &p in &[0usize, 3, 9, 11] {
            cw[p] = 0xAA;
        }
        assert!(rs.decode(&mut cw, &[0, 3, 9, 11]).is_ok());
        assert_eq!(cw, clean);
    }

    #[test]
    fn rs_mixed_errors_and_erasures() {
        // 2e + f <= nsym with e = 2, f = 2, nsym = 6.
        let rs = ReedSolomon::new(16, 10);
        let data: Vec<u8> = (0..10).map(|i| (i + 100) as u8).collect();
        let clean = rs.encode(&data);
        let mut cw = clean.clone();
        cw[1] ^= 0x5A; // unknown error
        cw[8] ^= 0x11; // unknown error
        cw[4] = 0; // erasure
        cw[13] = 0; // erasure
        assert!(rs.decode(&mut cw, &[4, 13]).is_ok());
        assert_eq!(cw, clean);
    }

    #[test]
    fn rs_rejects_beyond_capacity() {
        let rs = ReedSolomon::new(12, 8);
        let data = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let clean = rs.encode(&data);
        // 3 unknown errors > nsym/2 = 2: must refuse, not fabricate.
        let mut cw = clean.clone();
        cw[0] ^= 1;
        cw[5] ^= 7;
        cw[10] ^= 9;
        let before = cw.clone();
        assert!(rs.decode(&mut cw, &[]).is_err());
        assert_eq!(cw, before, "failed decode must not mutate");
        // 5 erasures > nsym = 4.
        let mut cw = clean;
        assert_eq!(
            rs.decode(&mut cw, &[0, 1, 2, 3, 4]),
            Err(FecError::TooManyErasures)
        );
    }

    #[test]
    fn rs_wrong_length_and_bad_erasure() {
        let rs = ReedSolomon::new(10, 6);
        let mut short = vec![0u8; 9];
        assert_eq!(rs.decode(&mut short, &[]), Err(FecError::WrongLength));
        let mut cw = rs.encode(&[1, 2, 3, 4, 5, 6]);
        assert_eq!(rs.decode(&mut cw, &[10]), Err(FecError::ErasureOutOfRange));
    }

    #[test]
    fn config_rules() {
        assert!(!FecConfig::none().is_enabled());
        assert_eq!(FecConfig::none().rate(), 1.0);
        let c = FecConfig::fixed(8, 4);
        assert!(c.is_enabled());
        assert!((c.rate() - 8.0 / 12.0).abs() < 1e-12);
        // Traffic rule endpoints.
        let benign = TrafficStats {
            mean_pps: 800.0,
            gap_cv: 1.0,
            tail_index: 5.0,
            max_gap_us: 50_000,
        };
        assert!(!FecConfig::for_traffic(&benign).is_enabled());
        let wild = TrafficStats {
            mean_pps: 300.0,
            gap_cv: 3.0,
            tail_index: 1.2,
            max_gap_us: 5_000_000,
        };
        assert_eq!(FecConfig::for_traffic(&wild).group_parity, 32);
        let heavy = TrafficStats {
            mean_pps: 300.0,
            gap_cv: 2.0,
            tail_index: 1.6,
            max_gap_us: 1_000_000,
        };
        assert_eq!(FecConfig::for_traffic(&heavy).group_parity, 24);
        let bursty = TrafficStats {
            mean_pps: 500.0,
            gap_cv: 2.5,
            tail_index: 3.0,
            max_gap_us: 400_000,
        };
        assert_eq!(FecConfig::for_traffic(&bursty).group_parity, 12);
        for c in [
            FecConfig::for_traffic(&wild),
            FecConfig::for_traffic(&heavy),
            FecConfig::for_traffic(&bursty),
        ] {
            assert_eq!(c.group_data, 64, "adaptive tiers pool the widest group");
        }
    }

    #[test]
    fn group_layout_roundtrips() {
        // 100 bytes, L = 8 → 13 data segments; k = 4, p = 2 → 4 groups,
        // last group 1 data; wire span 4*6 - 3 + ... = 13 + 8 = 21.
        let cfg = FecConfig::fixed(4, 2);
        let c = GroupCoder::for_message(100, 8, cfg);
        assert_eq!(c.data_total(), 13);
        assert_eq!(c.groups(), 4);
        assert_eq!(c.wire_total(), 13 + 4 * 2);
        let via_wire = GroupCoder::for_wire(c.wire_total(), 8, cfg);
        assert_eq!(via_wire.data_total(), 13);
        // Span accounting covers every seq exactly once.
        let mut covered = vec![false; c.wire_total() as usize];
        for g in 0..c.groups() {
            let (first, d, p) = c.group_span(g);
            for s in first..first + (d + p) as u16 {
                assert!(!covered[s as usize]);
                covered[s as usize] = true;
                assert_eq!(c.group_of(s), g);
            }
        }
        assert!(covered.iter().all(|&x| x));
        // Data indices enumerate 0..data_total in seq order.
        let idx: Vec<usize> = (0..c.wire_total())
            .filter_map(|s| c.data_index(s))
            .collect();
        assert_eq!(idx, (0..13).collect::<Vec<_>>());
    }

    #[test]
    fn encode_then_full_erasure_repair() {
        let msg: Vec<u8> = (0..200u32).map(|i| (i * 13 % 251) as u8).collect();
        let cfg = FecConfig::fixed(6, 3);
        let c = GroupCoder::for_message(msg.len(), 16, cfg);
        let segs = c.encode_message(5, &msg);
        assert_eq!(segs.len(), c.wire_total() as usize);
        let mut rx = Reassembler::new(5, c.wire_total());
        // Drop up to p slots per group (data or parity, mixed), deliver
        // the rest.
        let mut rng = SimRng::new(77).stream("fec-drop");
        let mut dropped_any = false;
        for g in 0..c.groups() {
            let (first, d, p) = c.group_span(g);
            let drop: Vec<u16> = (0..3)
                .map(|_| first + rng.index(d + p) as u16)
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .take(p)
                .collect();
            for s in &segs[first as usize..(first as usize + d + p)] {
                if !drop.contains(&s.seq) {
                    rx.accept(s);
                } else {
                    dropped_any = true;
                }
            }
        }
        assert!(dropped_any);
        assert!(!rx.complete());
        let mut total_repaired = 0;
        for g in 0..c.groups() {
            let out = c.repair_group(g, &mut rx);
            assert!(!out.failed, "group {g} should repair");
            total_repaired += out.repaired;
        }
        assert!(total_repaired > 0);
        assert!(rx.complete(), "repair fills parity slots too");
        assert!(c.data_complete(&rx));
        assert_eq!(c.assemble_data(&rx), Some(msg.clone()));
        assert_eq!(c.data_bytes(&rx), msg.len() as u64);
    }

    #[test]
    fn repair_fails_gracefully_beyond_parity_then_recovers() {
        let msg = vec![0x42u8; 64];
        let cfg = FecConfig::fixed(4, 1);
        let c = GroupCoder::for_message(msg.len(), 16, cfg); // 4 data, 1 group? 64/16=4 → 1 group +1 parity
        let segs = c.encode_message(1, &msg);
        let mut rx = Reassembler::new(1, c.wire_total());
        // Deliver only half: too many holes.
        rx.accept(&segs[0]);
        rx.accept(&segs[1]);
        let out = c.repair_group(0, &mut rx);
        assert!(out.failed);
        assert_eq!(out.repaired, 0);
        // Two more arrive; now exactly one hole = parity capacity.
        rx.accept(&segs[2]);
        rx.accept(&segs[4]);
        let out = c.repair_group(0, &mut rx);
        assert!(!out.failed);
        assert_eq!(out.repaired, 1);
        assert_eq!(c.assemble_data(&rx), Some(msg));
    }

    #[test]
    fn shortened_last_group_repairs() {
        // 17 bytes, L = 16 → 2 data segments; k = 8 → one group with
        // d = 2 of 8, heavily shortened.
        let msg: Vec<u8> = (0..17).map(|i| i as u8 + 1).collect();
        let cfg = FecConfig::fixed(8, 2);
        let c = GroupCoder::for_message(msg.len(), 16, cfg);
        assert_eq!(c.data_total(), 2);
        assert_eq!(c.groups(), 1);
        let segs = c.encode_message(2, &msg);
        let mut rx = Reassembler::new(2, c.wire_total());
        // Lose both data segments; the two parity segments must rebuild
        // them (the 1-byte second segment exercises the len column).
        rx.accept(&segs[2]);
        rx.accept(&segs[3]);
        let out = c.repair_group(0, &mut rx);
        assert!(!out.failed);
        assert_eq!(out.repaired, 2);
        assert_eq!(c.assemble_data(&rx), Some(msg));
    }

    #[test]
    fn repair_is_a_noop_on_complete_groups() {
        let msg = vec![1u8; 32];
        let c = GroupCoder::for_message(msg.len(), 16, FecConfig::fixed(2, 1));
        let segs = c.encode_message(0, &msg);
        let mut rx = Reassembler::new(0, c.wire_total());
        for s in &segs {
            rx.accept(s);
        }
        let out = c.repair_group(0, &mut rx);
        assert_eq!(out, RepairOutcome::default());
    }
}
