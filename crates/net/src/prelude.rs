//! The blessed public surface of the connectivity layer.
//!
//! ```
//! use bs_net::prelude::*;
//! ```
//!
//! Everything a gateway application or experiment normally touches:
//! transfer/gateway entry points and their `*_observed` variants, the
//! configs, the link models, the FEC layer, and the wire types.
//! Re-exports of the handful of core types a transport caller always
//! needs ([`FaultPlan`], [`RetryPolicy`], [`RunReport`], [`WindowAck`])
//! ride along, as do the traffic-measurement types the FEC rate rule
//! consumes ([`WildTraffic`], [`RateEstimator`], [`TrafficStats`]), so
//! one import line suffices.
//!
//! The list is pinned by [`NET_PRELUDE_MANIFEST`] and guarded by the
//! same `api_snapshot` drift gate as the core prelude (golden fixture
//! `tests/golden/prelude_api.txt`, reblessed with `GOLDEN_BLESS=1`).

pub use crate::arq::{
    nearest_supported_rate, run_transfer, run_transfer_observed, run_transfer_with, RoundOutcome,
    Transfer, TransportConfig, TransportSession,
};
pub use crate::fec::{FecConfig, FecError, GroupCoder, ReedSolomon, RepairOutcome};
pub use crate::fleet::{
    run_fleet, FleetConfig, FleetEnergyConfig, FleetError, FleetRun, ShardReport, TagRecord,
    MAX_TAGS_PER_GATEWAY,
};
pub use crate::gateway::{
    run_gateway, run_gateway_observed, run_gateway_with, GatewayConfig, GatewayError, GatewayRun,
    PollingPolicy, TagEnergyOutcome, TagOutcome, TagProfile,
};
pub use crate::linkmodel::{PhyLink, SegmentFate, SegmentLink, SimLink, TrafficLink};
pub use crate::seg::{scramble, segment_message, Accept, Reassembler, Segment, SegmentError};
pub use bs_channel::faults::FaultPlan;
pub use bs_wifi::traffic::{RateEstimator, TrafficStats, WildTraffic};
pub use wifi_backscatter::protocol::{RetryPolicy, WindowAck};
pub use wifi_backscatter::report::RunReport;

/// The names this prelude exports, sorted — compared against the golden
/// fixture by the `api_snapshot` drift gate. Keep in lockstep with the
/// `pub use` lines above.
pub const NET_PRELUDE_MANIFEST: &[&str] = &[
    "Accept",
    "FaultPlan",
    "FecConfig",
    "FecError",
    "FleetConfig",
    "FleetEnergyConfig",
    "FleetError",
    "FleetRun",
    "GatewayConfig",
    "GatewayError",
    "GatewayRun",
    "GroupCoder",
    "MAX_TAGS_PER_GATEWAY",
    "PhyLink",
    "PollingPolicy",
    "RateEstimator",
    "Reassembler",
    "ReedSolomon",
    "RepairOutcome",
    "RetryPolicy",
    "RoundOutcome",
    "RunReport",
    "Segment",
    "SegmentError",
    "SegmentFate",
    "SegmentLink",
    "ShardReport",
    "SimLink",
    "TagEnergyOutcome",
    "TagOutcome",
    "TagProfile",
    "TagRecord",
    "TrafficLink",
    "TrafficStats",
    "Transfer",
    "TransportConfig",
    "TransportSession",
    "WildTraffic",
    "WindowAck",
    "nearest_supported_rate",
    "run_fleet",
    "run_gateway",
    "run_gateway_observed",
    "run_gateway_with",
    "run_transfer",
    "run_transfer_observed",
    "run_transfer_with",
    "scramble",
    "segment_message",
];

#[cfg(test)]
mod tests {
    use super::NET_PRELUDE_MANIFEST;

    #[test]
    fn manifest_is_sorted_and_unique() {
        for w in NET_PRELUDE_MANIFEST.windows(2) {
            assert!(w[0] < w[1], "manifest out of order near {:?}", w);
        }
    }

    #[test]
    fn prelude_names_resolve() {
        use super::*;
        let _ = TransportConfig::default();
        let _ = GatewayConfig::default();
        let _ = FleetEnergyConfig::default();
        let _ = PollingPolicy::default();
        let _ = SimLink::new(FaultPlan::none(), 1);
        let _ = FecConfig::fixed(8, 2);
        let _ = ReedSolomon::new(12, 8);
        let _ = WildTraffic::wild();
        let _ = RateEstimator::new();
        let _: fn(&[u8], TransportConfig, &mut dyn SegmentLink) -> Transfer = run_transfer;
    }
}
