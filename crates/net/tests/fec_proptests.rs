//! Property battery for the FEC layer: the GF(256) field axioms, the
//! Reed–Solomon coder's correction guarantees, and decode *totality*
//! (arbitrary corruption never panics and never silently returns
//! garbage beyond the code's capacity).
//!
//! All properties run on the deterministic [`bs_dsp::testkit::check`]
//! driver, so a failing case index reproduces exactly on any machine.

use bs_dsp::codes::gf256;
use bs_dsp::testkit::check;
use bs_net::fec::{FecError, ReedSolomon};

/// A random (n, k) code small enough to exercise every shape: parity
/// from 2 to 32, data from 1 to filling out n ≤ 255.
fn random_code(g: &mut bs_dsp::testkit::Gen) -> ReedSolomon {
    let parity = g.usize_in(2, 33);
    let k = g.usize_in(1, 223);
    ReedSolomon::new(k + parity, k)
}

/// Distinct positions in `[0, n)`, at most `max` of them.
fn distinct_positions(g: &mut bs_dsp::testkit::Gen, n: usize, max: usize) -> Vec<usize> {
    let want = g.usize_in(0, max + 1);
    let mut picked: Vec<usize> = Vec::new();
    while picked.len() < want {
        let p = g.usize_in(0, n);
        if !picked.contains(&p) {
            picked.push(p);
        }
    }
    picked
}

#[test]
fn gf256_field_axioms_hold() {
    check("gf256-axioms", 512, |g| {
        let (a, b, c) = (g.u8(), g.u8(), g.u8());
        // Additive group: XOR, self-inverse, identity 0.
        assert_eq!(gf256::add(a, b), gf256::add(b, a));
        assert_eq!(gf256::add(a, a), 0);
        assert_eq!(gf256::add(a, 0), a);
        // Multiplicative: commutative, associative, identity 1,
        // annihilator 0.
        assert_eq!(gf256::mul(a, b), gf256::mul(b, a));
        assert_eq!(
            gf256::mul(a, gf256::mul(b, c)),
            gf256::mul(gf256::mul(a, b), c)
        );
        assert_eq!(gf256::mul(a, 1), a);
        assert_eq!(gf256::mul(a, 0), 0);
        // Distributivity ties the two together.
        assert_eq!(
            gf256::mul(a, gf256::add(b, c)),
            gf256::add(gf256::mul(a, b), gf256::mul(a, c))
        );
        // Every non-zero element has a working inverse.
        if a != 0 {
            assert_eq!(gf256::mul(a, gf256::inv(a)), 1);
            assert_eq!(gf256::div(gf256::mul(a, b), a), b);
        }
    });
}

#[test]
fn rs_roundtrips_under_random_errors_within_capacity() {
    check("rs-error-roundtrip", 256, |g| {
        let rs = random_code(g);
        let data = g.vec_u8(rs.k(), rs.k() + 1);
        let clean = rs.encode(&data);
        let mut cw = clean.clone();
        // Up to ⌊(n−k)/2⌋ random errors at distinct positions; each
        // flips the byte to a *different* value, else it is no error.
        let positions = distinct_positions(g, rs.n(), rs.parity_len() / 2);
        for &p in &positions {
            let mut v = g.u8();
            while v == cw[p] {
                v = g.u8();
            }
            cw[p] = v;
        }
        let fixed = rs
            .decode(&mut cw, &[])
            .unwrap_or_else(|e| panic!("case {}: decode failed: {e}", g.case()));
        assert_eq!(fixed, positions.len(), "case {}", g.case());
        assert_eq!(cw, clean, "case {}", g.case());
    });
}

#[test]
fn rs_roundtrips_under_random_erasures_to_full_parity() {
    check("rs-erasure-roundtrip", 256, |g| {
        let rs = random_code(g);
        let data = g.vec_u8(rs.k(), rs.k() + 1);
        let clean = rs.encode(&data);
        let mut cw = clean.clone();
        // Up to n−k erasures: position known, value garbage.
        let positions = distinct_positions(g, rs.n(), rs.parity_len());
        for &p in &positions {
            cw[p] = g.u8();
        }
        let fixed = rs
            .decode(&mut cw, &positions)
            .unwrap_or_else(|e| panic!("case {}: decode failed: {e}", g.case()));
        assert!(fixed <= positions.len(), "case {}", g.case());
        assert_eq!(cw, clean, "case {}", g.case());
    });
}

#[test]
fn rs_roundtrips_under_mixed_errors_and_erasures() {
    check("rs-mixed-roundtrip", 256, |g| {
        let rs = random_code(g);
        let data = g.vec_u8(rs.k(), rs.k() + 1);
        let clean = rs.encode(&data);
        let mut cw = clean.clone();
        // 2·errors + erasures ≤ n−k: draw erasures first, then spend
        // what is left on errors at fresh positions.
        let erasures = distinct_positions(g, rs.n(), rs.parity_len());
        let budget = (rs.parity_len() - erasures.len()) / 2;
        let mut errors: Vec<usize> = Vec::new();
        while errors.len() < budget {
            let p = g.usize_in(0, rs.n());
            if !erasures.contains(&p) && !errors.contains(&p) {
                errors.push(p);
            }
        }
        for &p in &erasures {
            cw[p] = g.u8();
        }
        for &p in &errors {
            let mut v = g.u8();
            while v == cw[p] {
                v = g.u8();
            }
            cw[p] = v;
        }
        rs.decode(&mut cw, &erasures)
            .unwrap_or_else(|e| panic!("case {}: decode failed: {e}", g.case()));
        assert_eq!(cw, clean, "case {}", g.case());
    });
}

#[test]
fn rs_decode_is_total_on_arbitrary_corruption() {
    check("rs-totality", 256, |g| {
        let rs = random_code(g);
        let data = g.vec_u8(rs.k(), rs.k() + 1);
        let clean = rs.encode(&data);
        let mut cw = clean.clone();
        // Corrupt an arbitrary number of positions — often far beyond
        // capacity. Decode must never panic; when it claims success the
        // result must be a true codeword (zero syndromes), and when it
        // errs the input must be left exactly as handed in.
        let wrecked = distinct_positions(g, rs.n(), rs.n().min(3 * rs.parity_len()));
        for &p in &wrecked {
            cw[p] = g.u8();
        }
        let before = cw.clone();
        match rs.decode(&mut cw, &[]) {
            Ok(_) => {
                let recoded = rs.encode(&cw[..rs.k()]);
                assert_eq!(
                    recoded,
                    cw,
                    "case {}: decoder accepted a non-codeword",
                    g.case()
                );
            }
            Err(FecError::BeyondCapacity) => {
                assert_eq!(cw, before, "case {}: failed decode mutated input", g.case());
            }
            Err(e) => panic!("case {}: unexpected error {e}", g.case()),
        }
    });
}

#[test]
fn rs_rejects_malformed_inputs_without_panicking() {
    check("rs-bad-inputs", 64, |g| {
        let rs = random_code(g);
        // Wrong-length codeword.
        let mut short = vec![0u8; rs.n() - 1];
        assert_eq!(rs.decode(&mut short, &[]), Err(FecError::WrongLength));
        // Erasure position off the end.
        let mut cw = rs.encode(&vec![0u8; rs.k()]);
        assert_eq!(
            rs.decode(&mut cw, &[rs.n()]),
            Err(FecError::ErasureOutOfRange)
        );
        // More erasures than parity can carry.
        let too_many: Vec<usize> = (0..=rs.parity_len()).collect();
        if too_many.len() <= rs.n() {
            assert_eq!(
                rs.decode(&mut cw, &too_many),
                Err(FecError::TooManyErasures)
            );
        }
        let _ = g.u8();
    });
}
