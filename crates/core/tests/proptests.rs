//! Property-based tests for the core decoders and protocol,
//! driven by the deterministic in-repo [`bs_dsp::testkit`] generator.

use bs_dsp::testkit::check;
use bs_tag::frame::UplinkFrame;
use wifi_backscatter::longrange::{LongRangeConfig, LongRangeDecoder};
use wifi_backscatter::multitag::{run_inventory, InventoryConfig, InventoryTag};
use wifi_backscatter::protocol::{select_bit_rate, Query, SUPPORTED_RATES_BPS};
use wifi_backscatter::series::SeriesBundle;
use wifi_backscatter::trace;
use wifi_backscatter::uplink::{UplinkDecoder, UplinkDecoderConfig};

/// Builds a clean synthetic bundle carrying `payload` on every channel.
fn clean_bundle(payload: &[bool], channels: usize, amp: f64) -> SeriesBundle {
    let frame = UplinkFrame::new(payload.to_vec());
    let bits = frame.to_bits();
    let bit_us = 10_000u64;
    let gap = 500u64;
    let total = bits.len() as u64 * bit_us + 100_000;
    let t_us: Vec<u64> = (0..).map(|i| i * gap).take_while(|&t| t < total).collect();
    let series: Vec<Vec<f64>> = (0..channels)
        .map(|c| {
            let pol = if c % 2 == 0 { 1.0 } else { -1.0 };
            t_us.iter()
                .map(|&t| {
                    let slot = (t / bit_us) as usize;
                    let lv = match bits.get(slot) {
                        Some(&true) => amp * pol,
                        Some(&false) => -amp * pol,
                        None => 0.0,
                    };
                    // Deterministic dither so conditioning has variance to
                    // estimate.
                    10.0 + lv + 0.01 * ((t % 7) as f64 - 3.0)
                })
                .collect()
        })
        .collect();
    SeriesBundle { t_us, series }
}

/// Any payload decodes from a clean bundle — the decoder pipeline is
/// payload-agnostic.
#[test]
fn decoder_recovers_arbitrary_payloads() {
    check("decoder-recovers-payloads", 24, |g| {
        let payload = g.vec_bool(4, 48);
        let bundle = clean_bundle(&payload, 8, 0.5);
        let dec = UplinkDecoder::new(UplinkDecoderConfig::csi(100, payload.len()));
        let out = dec.decode(&bundle, 0).expect("clean bundle must decode");
        let got: Option<Vec<bool>> = out.bits.into_iter().collect();
        assert_eq!(got, Some(payload));
    });
}

/// Decoding is a pure function of the bundle.
#[test]
fn decode_is_deterministic() {
    check("decode-deterministic", 24, |g| {
        let payload = g.vec_bool(4, 32);
        let bundle = clean_bundle(&payload, 6, 0.4);
        let dec = UplinkDecoder::new(UplinkDecoderConfig::csi(100, payload.len()));
        let a = dec.decode(&bundle, 0);
        let b = dec.decode(&bundle, 0);
        assert_eq!(a, b);
    });
}

/// Trace round-trips preserve the bundle exactly.
#[test]
fn trace_roundtrip_exact() {
    check("trace-roundtrip", 24, |g| {
        let payload = g.vec_bool(1, 16);
        let channels = g.usize_in(1, 6);
        let bundle = clean_bundle(&payload, channels, 0.3);
        let text = trace::to_text(&bundle);
        let back = trace::from_text(&text).unwrap();
        assert_eq!(back, bundle);
    });
}

/// v2 traces round-trip the bundle *and* arbitrary observability
/// sidecars exactly; v1 tooling (`from_text`) still reads the body.
#[test]
fn v2_trace_roundtrip_exact() {
    use bs_dsp::obs::{MemRecorder, Recorder};
    const STAGES: &[&str] = &[
        "uplink.condition",
        "uplink.align",
        "uplink.combine",
        "uplink.slice",
        "downlink.envelope",
        "tag.comparator",
    ];
    const COUNTERS: &[&str] = &[
        "uplink.packets-binned",
        "uplink.erasures",
        "link.retries",
        "tag.frames-ok",
    ];
    const GAUGES: &[&str] = &["uplink.preamble-score", "tag.energy-uj"];
    check("v2-trace-roundtrip", 24, |g| {
        let payload = g.vec_bool(1, 12);
        let channels = g.usize_in(1, 4);
        let bundle = clean_bundle(&payload, channels, 0.3);
        let mut rec = MemRecorder::new();
        for _ in 0..g.usize_in(0, 8) {
            let start = g.usize_in(0, 1_000_000) as u64;
            let dur = g.usize_in(0, 500_000) as u64;
            let items = g.usize_in(0, 10_000) as u64;
            rec.span(STAGES[g.usize_in(0, STAGES.len() - 1)], start, start + dur, items);
        }
        for _ in 0..g.usize_in(0, 6) {
            rec.add(
                COUNTERS[g.usize_in(0, COUNTERS.len() - 1)],
                g.usize_in(0, usize::MAX >> 16) as u64,
            );
        }
        for _ in 0..g.usize_in(0, 4) {
            rec.gauge(GAUGES[g.usize_in(0, GAUGES.len() - 1)], g.f64_in(-1e6, 1e6));
        }
        let report = rec.into_report();
        let text = trace::to_text_v2(&bundle, &report);
        let cap = trace::load(&text).unwrap();
        assert_eq!(cap.version, 2);
        assert_eq!(cap.bundle, bundle);
        if report.is_empty() {
            assert!(cap.obs.is_none(), "empty report must load as None");
        } else {
            assert_eq!(cap.obs, Some(report));
        }
        // The v1 entry point still parses the v2 body, discarding sidecars.
        assert_eq!(trace::from_text(&text).unwrap(), bundle);
    });
}

/// Queries round-trip for any field values (within supported rates).
#[test]
fn query_roundtrip() {
    check("query-roundtrip", 256, |g| {
        let q = Query {
            tag_address: g.u8(),
            payload_bits: g.usize_in(1, 1024) as u16,
            bit_rate_bps: SUPPORTED_RATES_BPS[g.usize_in(0, 4)],
            code_length: g.usize_in(1, 512) as u16,
        };
        assert_eq!(Query::from_frame(&q.to_frame().unwrap()), Some(q));
    });
}

/// Rate selection is monotone in load and always supported.
#[test]
fn rate_selection_monotone() {
    check("rate-selection-monotone", 256, |g| {
        let load1 = g.f64_in(10.0, 10_000.0);
        let load2 = g.f64_in(10.0, 10_000.0);
        let m = g.usize_in(1, 40) as u32;
        let (lo, hi) = if load1 <= load2 {
            (load1, load2)
        } else {
            (load2, load1)
        };
        let r_lo = select_bit_rate(lo, m, 0.8);
        let r_hi = select_bit_rate(hi, m, 0.8);
        assert!(r_lo <= r_hi);
        assert!(SUPPORTED_RATES_BPS.contains(&r_lo));
        assert!(SUPPORTED_RATES_BPS.contains(&r_hi));
    });
}

/// Builds an arbitrary — often degenerate — bundle: few (possibly zero)
/// channels and packets, irregular timestamps with duplicates and long
/// dead-air gaps, and adversarial value modes (constant zero-variance
/// series, ±`f64::MAX` alternation, all-NaN, near-zero variance).
fn degenerate_bundle(g: &mut bs_dsp::testkit::Gen) -> SeriesBundle {
    let channels = g.usize_in(0, 5);
    let packets = g.usize_in(0, 60);
    let mut t = 0u64;
    let t_us: Vec<u64> = (0..packets)
        .map(|_| {
            t += match g.usize_in(0, 3) {
                0 => 0, // duplicate timestamp
                1 => g.usize_in(1, 900) as u64,
                2 => g.usize_in(1_000, 40_000) as u64,
                _ => g.usize_in(100_000, 400_000) as u64, // dead air
            };
            t
        })
        .collect();
    let mode = g.usize_in(0, 4);
    let series: Vec<Vec<f64>> = (0..channels)
        .map(|c| {
            (0..packets)
                .map(|p| match mode {
                    0 => 7.25, // constant: zero variance everywhere
                    1 => {
                        if p % 2 == 0 {
                            f64::MAX
                        } else {
                            -f64::MAX
                        }
                    }
                    2 => f64::NAN,
                    3 => (c + p) as f64 * 1e-300, // vanishing variance
                    _ => ((p * 37 + c * 11) % 13) as f64 - 6.0,
                })
                .collect()
        })
        .collect();
    SeriesBundle { t_us, series }
}

/// Neither decoder panics on degenerate input: empty and single-packet
/// bundles, constant series, NaN-poisoned channels, zero-variance
/// slots, sparse gaps. They may (and usually do) return `None` — they
/// must never unwind.
#[test]
fn decoders_never_panic_on_degenerate_bundles() {
    let uplink = |payload_bits: usize| {
        UplinkDecoder::new(UplinkDecoderConfig::csi(100, payload_bits))
    };
    let longrange =
        |payload_bits: usize| LongRangeDecoder::new(LongRangeConfig::new(4, 1_000, payload_bits));
    // Pinned edge cases first: zero packets, zero channels, one
    // NaN-valued packet.
    for bundle in [
        SeriesBundle {
            t_us: vec![],
            series: vec![],
        },
        SeriesBundle {
            t_us: vec![0, 10],
            series: vec![],
        },
        SeriesBundle {
            t_us: vec![0],
            series: vec![vec![f64::NAN]],
        },
    ] {
        let _ = uplink(4).decode(&bundle, 0);
        let _ = longrange(4).decode(&bundle, 0);
    }
    check("decoders-no-panic-degenerate", 64, |g| {
        let bundle = degenerate_bundle(g);
        let hint = g.usize_in(0, 200_000) as u64;
        let _ = uplink(g.usize_in(1, 12)).decode(&bundle, hint);
        let _ = longrange(g.usize_in(1, 6)).decode(&bundle, hint);
    });
}

/// The slot-indexed decode path is bit-identical to the straight-line
/// reference on arbitrary noise bundles — whether or not a frame is
/// actually present (`PartialEq` on the outputs compares every f64).
#[test]
fn indexed_decode_matches_reference_on_random_bundles() {
    check("indexed-matches-reference", 32, |g| {
        let channels = g.usize_in(1, 6);
        let packets = g.usize_in(1, 400);
        let mut t = 0u64;
        let t_us: Vec<u64> = (0..packets)
            .map(|_| {
                t += g.usize_in(1, 2_000) as u64;
                t
            })
            .collect();
        let series: Vec<Vec<f64>> = (0..channels)
            .map(|_| (0..packets).map(|_| 9.0 + g.f64_in(-5.0, 5.0)).collect())
            .collect();
        let bundle = SeriesBundle { t_us, series };
        let hint = g.usize_in(0, 50_000) as u64;

        let dec = UplinkDecoder::new(UplinkDecoderConfig::csi(1_000, g.usize_in(1, 8)));
        assert_eq!(dec.decode_reference(&bundle, hint), dec.decode(&bundle, hint));

        let lr = LongRangeDecoder::new(LongRangeConfig::new(4, 10_000, g.usize_in(1, 4)));
        assert_eq!(lr.decode_reference(&bundle, hint), lr.decode(&bundle, hint));
    });
}

/// Inventory always identifies every tag (distinct addresses, default
/// config) and never reports duplicates or ghosts.
#[test]
fn inventory_is_complete_and_sound() {
    check("inventory-complete-sound", 24, |g| {
        let n = g.usize_in(1, 40);
        let seed = g.case() ^ 0x1171;
        let tags: Vec<InventoryTag> = (0..n).map(|i| InventoryTag::new(i as u8)).collect();
        let mut rng = bs_dsp::SimRng::new(seed).stream("prop-inventory");
        let r = run_inventory(&tags, InventoryConfig::default(), &mut rng);
        assert!(r.complete(&tags), "missed tags (n={n})");
        let mut ids = r.identified.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicates reported");
        assert!(r.identified.iter().all(|a| (*a as usize) < n), "ghost tag");
    });
}

/// Acks and window ACKs round-trip for any field values, and each
/// parser rejects the other's frames.
#[test]
fn ack_and_window_ack_roundtrip() {
    use wifi_backscatter::protocol::{Ack, WindowAck};
    check("ack-window-ack-roundtrip", 256, |g| {
        let ack = Ack { tag_address: g.u8() };
        let wa = WindowAck {
            tag_address: g.u8(),
            msg_id: g.u8(),
            cumulative: ((u16::from(g.u8())) << 8) | u16::from(g.u8()),
            sack: u32::from_be_bytes([g.u8(), g.u8(), g.u8(), g.u8()]),
        };
        let ack_frame = ack.to_frame();
        let wa_frame = wa.to_frame();
        assert_eq!(Ack::from_frame(&ack_frame), Some(ack));
        assert_eq!(WindowAck::from_frame(&wa_frame), Some(wa));

        // Cross-parsing must fail on the opcode, not mis-decode.
        assert_eq!(Ack::from_frame(&wa_frame), None);
        assert_eq!(WindowAck::from_frame(&ack_frame), None);
    });
}

/// `Query::to_frame` is total: every bit rate yields `Ok` or the
/// `UnsupportedRate` error — never a panic.
#[test]
fn query_to_frame_is_total_over_rates() {
    use wifi_backscatter::error::{Error, ProtocolError};
    check("query-to-frame-total", 256, |g| {
        let bps = u64::from_be_bytes([
            g.u8(), g.u8(), g.u8(), g.u8(), g.u8(), g.u8(), g.u8(), g.u8(),
        ]);
        let q = Query {
            tag_address: g.u8(),
            payload_bits: g.usize_in(1, 1024) as u16,
            bit_rate_bps: bps,
            code_length: g.usize_in(1, 512) as u16,
        };
        match q.to_frame() {
            Ok(f) => {
                assert!(SUPPORTED_RATES_BPS.contains(&bps));
                assert_eq!(Query::from_frame(&f), Some(q));
            }
            Err(Error::Protocol(ProtocolError::UnsupportedRate { bps: got })) => {
                assert_eq!(got, bps);
                assert!(!SUPPORTED_RATES_BPS.contains(&bps));
            }
            Err(other) => panic!("unexpected error variant: {other}"),
        }
    });
}

/// Every protocol parser is total over arbitrary frame payloads and
/// bit-flipped/truncated frame bodies — garbage in, `None`/`Err` out,
/// never a panic.
#[test]
fn protocol_parsers_never_panic_on_corrupt_frames() {
    use bs_tag::frame::DownlinkFrame;
    use wifi_backscatter::protocol::{Ack, WindowAck};
    check("protocol-parsers-total", 512, |g| {
        // Arbitrary payload bytes wrapped in a well-formed frame.
        let f = DownlinkFrame::new(g.vec_u8(0, 16));
        let _ = Query::from_frame(&f);
        let _ = Ack::from_frame(&f);
        let _ = WindowAck::from_frame(&f);

        // A real frame's body bits, truncated and bit-flipped.
        let q = Query {
            tag_address: g.u8(),
            payload_bits: g.usize_in(1, 1024) as u16,
            bit_rate_bps: SUPPORTED_RATES_BPS[g.usize_in(0, SUPPORTED_RATES_BPS.len())],
            code_length: g.usize_in(1, 512) as u16,
        };
        let bits = q.to_frame().unwrap().to_bits();
        let body = &bits[16..]; // receiver strips the preamble
        let cut = g.usize_in(0, body.len() + 1);
        let _ = DownlinkFrame::from_body_bits(&body[..cut]);
        let mut flipped = body.to_vec();
        let i = g.usize_in(0, flipped.len());
        flipped[i] = !flipped[i];
        if let Ok(frame) = DownlinkFrame::from_body_bits(&flipped) {
            let _ = Query::from_frame(&frame);
            let _ = Ack::from_frame(&frame);
            let _ = WindowAck::from_frame(&frame);
        }
    });
}

/// Segment headers round-trip for arbitrary fields; truncations and
/// single-bit flips are always rejected without panicking.
#[test]
fn segment_header_roundtrip_and_corruption() {
    use bs_net::prelude::Segment;
    check("segment-roundtrip-fuzz", 256, |g| {
        let total = g.usize_in(1, 600) as u16;
        let seg = Segment {
            msg_id: g.u8(),
            seq: g.usize_in(0, total as usize) as u16,
            total,
            payload: g.vec_u8(0, 32),
        };
        assert_eq!(Segment::from_bytes(&seg.to_bytes()), Ok(seg.clone()));
        assert_eq!(Segment::from_bits(&seg.to_bits()), Ok(seg.clone()));

        let bits = seg.to_bits();
        let cut = g.usize_in(0, bits.len());
        assert!(Segment::from_bits(&bits[..cut]).is_err());
        let mut flipped = bits;
        let i = g.usize_in(0, flipped.len());
        flipped[i] = !flipped[i];
        assert!(Segment::from_bits(&flipped).is_err(), "flip at {i} accepted");

        // Arbitrary byte soup never panics either.
        let _ = Segment::from_bytes(&g.vec_u8(0, 64));
    });
}
