//! # wifi-backscatter — the Wi-Fi Backscatter system (SIGCOMM 2014)
//!
//! A full reproduction of *"Wi-Fi Backscatter: Internet Connectivity for
//! RF-Powered Devices"* (Kellogg, Parks, Gollakota, Smith, Wetherall,
//! SIGCOMM 2014), running on the simulated substrates in `bs-channel`,
//! `bs-wifi` and `bs-tag`. See DESIGN.md for the substitution map.
//!
//! Most applications should start from the [`prelude`]:
//!
//! ```
//! use wifi_backscatter::prelude::*;
//!
//! let cfg = LinkConfig::fig10(0.1, 100, 5, 42)
//!     .with_payload((0..16).map(|i| i % 3 == 0).collect());
//! let run = run_uplink(&cfg);
//! assert!(run.detected);
//! ```
//!
//! The paper's contribution — implemented unchanged on top of the
//! simulated hardware — lives here:
//!
//! * [`series`] — per-packet channel time series (CSI sub-channels ×
//!   antennas, or per-antenna RSSI) with MAC timestamps.
//! * [`uplink`] — the reader's uplink decoder (§3.2/§3.3): signal
//!   conditioning, good-sub-channel selection by preamble correlation,
//!   maximum-ratio combining by 1/σ², hysteresis thresholding and
//!   timestamp-binned majority voting. Decoding is available batch
//!   ([`uplink::UplinkDecoder::decode`]) or streaming
//!   ([`uplink::UplinkDecoder::stream`] → feed packets → `finish()`),
//!   with the two guaranteed bit-identical.
//! * [`longrange`] — the coded long-range decoder (§3.4): the tag expands
//!   each bit to an L-chip orthogonal code; the reader correlates.
//! * [`downlink`] — the reader's downlink encoder (§4.1): bits as packet /
//!   silence inside CTS_to_SELF reservations.
//! * [`protocol`] — the query-response link protocol (§2, §5): queries,
//!   responses, ACKs, and the N/M rate-selection rule for shared networks.
//! * [`link`] — an end-to-end simulator wiring scene + MAC + tag + reader
//!   together; this is the API the examples and every experiment harness
//!   use.
//! * [`phy`] — the PHY mode family: [`phy::PresencePhy`] (the paper's
//!   PHY, above) and [`phy::CodewordPhy`] (FreeRider-style codeword
//!   translation, [`codeword`]) behind object-safe traits; the routed
//!   `phy::run_*` entry points are what the prelude exports.
//!
//! Beyond the paper's evaluation, two extensions it explicitly points at:
//!
//! * [`multitag`] — EPC-Gen-2-style framed-slotted-ALOHA inventory for
//!   identifying multiple tags before querying them individually (§2).
//! * [`trace`] — capture save/load (v1 and the v2 format carrying
//!   observability sidecars), splitting capture from offline decoding the
//!   way the Intel CSI tool workflow does.
//! * [`session`] — the high-level [`session::Reader`] API: rate
//!   selection, query retransmission and the long-range fallback composed
//!   into one call.
//!
//! Cross-cutting layers added by the API consolidation:
//!
//! * [`obs`] (re-exported from `bs-dsp`) — the deterministic observability
//!   layer: per-stage spans in simulated time, counters and gauges behind
//!   the zero-cost [`obs::Recorder`] trait. Every `run_*` entry point has a
//!   `*_with` variant taking a recorder and an `*_observed` convenience
//!   returning the report attached to the run.
//! * [`error`] — the unified [`Error`] hierarchy; the old per-module error
//!   names are deprecated re-exports.
//! * [`report`] — the [`report::RunReport`] trait unifying
//!   [`UplinkRun`], [`DownlinkRun`] and [`session::QueryOutcome`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codeword;
pub mod downlink;
pub mod error;
pub mod link;
pub mod longrange;
pub mod multitag;
pub mod phy;
pub mod prelude;
pub mod protocol;
pub mod report;
pub mod series;
pub mod session;
pub mod trace;
pub mod uplink;

/// The deterministic observability layer (spans, counters, gauges),
/// re-exported from `bs-dsp` so `wifi_backscatter::obs::Recorder` is the
/// one canonical path.
pub use bs_dsp::obs;

/// The streaming building blocks (`StreamBlock`, `Consumed`, bounded
/// queues, chunked kernels), re-exported from `bs-dsp` so
/// `wifi_backscatter::stream::Consumed` is the one canonical path.
pub use bs_dsp::stream;

pub use error::Error;
pub use link::{DownlinkRun, LinkConfig, UplinkRun};
pub use session::{Reader, ReaderConfig};
pub use series::{SeriesAccumulator, SeriesBundle};
pub use uplink::{UplinkDecoder, UplinkDecoderConfig, UplinkStream};
