//! # wifi-backscatter — the Wi-Fi Backscatter system (SIGCOMM 2014)
//!
//! A full reproduction of *"Wi-Fi Backscatter: Internet Connectivity for
//! RF-Powered Devices"* (Kellogg, Parks, Gollakota, Smith, Wetherall,
//! SIGCOMM 2014), running on the simulated substrates in `bs-channel`,
//! `bs-wifi` and `bs-tag`. See DESIGN.md for the substitution map.
//!
//! The paper's contribution — implemented unchanged on top of the
//! simulated hardware — lives here:
//!
//! * [`series`] — per-packet channel time series (CSI sub-channels ×
//!   antennas, or per-antenna RSSI) with MAC timestamps.
//! * [`uplink`] — the reader's uplink decoder (§3.2/§3.3): signal
//!   conditioning, good-sub-channel selection by preamble correlation,
//!   maximum-ratio combining by 1/σ², hysteresis thresholding and
//!   timestamp-binned majority voting.
//! * [`longrange`] — the coded long-range decoder (§3.4): the tag expands
//!   each bit to an L-chip orthogonal code; the reader correlates.
//! * [`downlink`] — the reader's downlink encoder (§4.1): bits as packet /
//!   silence inside CTS_to_SELF reservations.
//! * [`protocol`] — the query-response link protocol (§2, §5): queries,
//!   responses, ACKs, and the N/M rate-selection rule for shared networks.
//! * [`link`] — an end-to-end simulator wiring scene + MAC + tag + reader
//!   together; this is the API the examples and every experiment harness
//!   use.
//!
//! Beyond the paper's evaluation, two extensions it explicitly points at:
//!
//! * [`multitag`] — EPC-Gen-2-style framed-slotted-ALOHA inventory for
//!   identifying multiple tags before querying them individually (§2).
//! * [`trace`] — capture save/load, splitting capture from offline
//!   decoding the way the Intel CSI tool workflow does.
//! * [`session`] — the high-level [`session::Reader`] API: rate
//!   selection, query retransmission and the long-range fallback composed
//!   into one call.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod downlink;
pub mod link;
pub mod longrange;
pub mod multitag;
pub mod protocol;
pub mod series;
pub mod session;
pub mod trace;
pub mod uplink;

pub use link::{DownlinkRun, LinkConfig, UplinkRun};
pub use session::{Reader, ReaderConfig};
pub use series::SeriesBundle;
pub use uplink::{UplinkDecoder, UplinkDecoderConfig};
