//! The unified error hierarchy for the crate.
//!
//! Earlier releases scattered error enums across modules
//! (`trace::TraceError`, `session::SessionError`, `downlink::EncodeError`).
//! They are now defined here, wrapped by one top-level [`Error`] with
//! `From` impls, so applications can hold a single error type:
//!
//! ```
//! use wifi_backscatter::error::Error;
//!
//! fn load(text: &str) -> Result<wifi_backscatter::SeriesBundle, Error> {
//!     Ok(wifi_backscatter::trace::from_text(text)?) // TraceError → Error
//! }
//! assert!(load("not a capture").is_err());
//! ```
//!
//! The old module paths still re-export these types, marked
//! `#[deprecated]`, for one release.

/// Errors from parsing a capture trace (see [`crate::trace`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The header line is missing or wrong.
    BadHeader,
    /// A data line has the wrong number of fields or an unparsable value.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// Timestamps are not non-decreasing.
    UnsortedTimestamps {
        /// 1-based line number where order broke.
        line: usize,
    },
    /// A v2 `#obs` sidecar line is malformed.
    BadObsLine {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadHeader => write!(f, "missing or invalid capture header"),
            TraceError::BadLine { line } => write!(f, "malformed data on line {line}"),
            TraceError::UnsortedTimestamps { line } => {
                write!(f, "timestamps go backwards at line {line}")
            }
            TraceError::BadObsLine { line } => {
                write!(f, "malformed #obs sidecar on line {line}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Errors a reader session can surface to the application (see
/// [`crate::session`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The downlink query was never acknowledged by a decodable response,
    /// even after all retries (tag out of range, unpowered, or absent).
    TagUnresponsive {
        /// Query transmissions attempted.
        attempts: u32,
    },
    /// A response was detected but never decoded cleanly.
    ResponseGarbled {
        /// Bit errors in the best attempt.
        best_bit_errors: u64,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::TagUnresponsive { attempts } => {
                write!(f, "tag unresponsive after {attempts} query attempts")
            }
            SessionError::ResponseGarbled { best_bit_errors } => {
                write!(f, "response garbled ({best_bit_errors} bit errors at best)")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Errors from downlink encoding (see [`crate::downlink`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// The frame's on-air length exceeds one CTS_to_SELF reservation; use
    /// [`crate::downlink::DownlinkEncoder::encode_multi`] with smaller
    /// frames.
    TooLongForReservation {
        /// Bits needed.
        needed: usize,
        /// Bits available in one reservation.
        available: usize,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::TooLongForReservation { needed, available } => write!(
                f,
                "frame needs {needed} bits but one 32 ms reservation fits {available}"
            ),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Errors from building protocol frames (see [`crate::protocol`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// The requested uplink bit rate is not one of
    /// [`crate::protocol::SUPPORTED_RATES_BPS`], so it has no wire
    /// encoding. Transports probing rates must handle this instead of
    /// crashing the reader.
    UnsupportedRate {
        /// The offending rate (bits/s).
        bps: u64,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::UnsupportedRate { bps } => {
                write!(f, "bit rate {bps} bps has no wire encoding")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// The crate-wide error type: every fallible public API converts into it
/// via `?`.
///
/// Marked `#[non_exhaustive]`: future releases may add variants without a
/// breaking change, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Capture trace parsing failed.
    Trace(TraceError),
    /// A reader session gave up.
    Session(SessionError),
    /// Downlink encoding failed.
    Encode(EncodeError),
    /// Protocol frame construction failed.
    Protocol(ProtocolError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Trace(e) => write!(f, "trace: {e}"),
            Error::Session(e) => write!(f, "session: {e}"),
            Error::Encode(e) => write!(f, "encode: {e}"),
            Error::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Trace(e) => Some(e),
            Error::Session(e) => Some(e),
            Error::Encode(e) => Some(e),
            Error::Protocol(e) => Some(e),
        }
    }
}

impl From<TraceError> for Error {
    fn from(e: TraceError) -> Self {
        Error::Trace(e)
    }
}

impl From<SessionError> for Error {
    fn from(e: SessionError) -> Self {
        Error::Session(e)
    }
}

impl From<EncodeError> for Error {
    fn from(e: EncodeError) -> Self {
        Error::Encode(e)
    }
}

impl From<ProtocolError> for Error {
    fn from(e: ProtocolError) -> Self {
        Error::Protocol(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_impls_wrap_each_leaf() {
        let t: Error = TraceError::BadHeader.into();
        assert_eq!(t, Error::Trace(TraceError::BadHeader));
        let s: Error = SessionError::TagUnresponsive { attempts: 2 }.into();
        assert!(matches!(s, Error::Session(_)));
        let e: Error = EncodeError::TooLongForReservation {
            needed: 10,
            available: 5,
        }
        .into();
        assert!(matches!(e, Error::Encode(_)));
        let p: Error = ProtocolError::UnsupportedRate { bps: 123 }.into();
        assert!(matches!(p, Error::Protocol(_)));
    }

    #[test]
    fn protocol_error_display_names_the_rate() {
        let e = Error::from(ProtocolError::UnsupportedRate { bps: 123 });
        let s = e.to_string();
        assert!(s.starts_with("protocol:"), "{s}");
        assert!(s.contains("123"), "{s}");
    }

    #[test]
    fn display_prefixes_the_domain() {
        let e = Error::from(TraceError::BadLine { line: 3 });
        let s = e.to_string();
        assert!(s.starts_with("trace:"), "{s}");
        assert!(s.contains('3'));
    }

    #[test]
    fn source_exposes_the_leaf() {
        use std::error::Error as _;
        let e = Error::from(SessionError::ResponseGarbled { best_bit_errors: 1 });
        assert!(e.source().unwrap().to_string().contains("garbled"));
    }

    #[test]
    fn question_mark_converts() {
        fn inner() -> Result<(), TraceError> {
            Err(TraceError::BadHeader)
        }
        fn outer() -> Result<(), Error> {
            inner()?;
            Ok(())
        }
        assert_eq!(outer(), Err(Error::Trace(TraceError::BadHeader)));
    }
}
