//! The blessed public surface, importable in one line.
//!
//! ```
//! use wifi_backscatter::prelude::*;
//! ```
//!
//! Everything an application or experiment normally touches is here: the
//! end-to-end `run_*` entry points and their `*_observed` variants, the
//! builder-style configs, the session [`Reader`], the unified [`Error`],
//! the [`RunReport`] trait and the observability types. Lower-level
//! mechanisms (modulators, channel scenes, MAC internals) stay behind
//! their module paths on purpose.
//!
//! The re-export list is pinned by [`PRELUDE_MANIFEST`] and guarded by the
//! `api_snapshot` test: adding or removing a name here is an API change
//! and must update the manifest (and the golden fixture) in the same
//! commit.

pub use crate::codeword::CodewordParams;
pub use crate::error::{EncodeError, Error, ProtocolError, SessionError, TraceError};
pub use crate::link::{
    capture_uplink, capture_uplink_with, DegradationReport, DownlinkConfig, DownlinkRun,
    LinkConfig, Measurement, MitigationPolicy, UplinkCapture, UplinkRun,
};
pub use crate::longrange::{LongRangeConfig, LongRangeDecoder, LongRangeOutput, LongRangeStream};
pub use crate::multitag::{
    run_inventory, run_inventory_with, InventoryConfig, InventoryResult, InventoryTag,
};
pub use crate::phy::{
    run_downlink_ber, run_downlink_ber_observed, run_downlink_ber_with, run_downlink_frame,
    run_downlink_frame_with, run_downlink_frame_with_report, run_uplink, run_uplink_observed,
    run_uplink_with, CodewordPhy, PhyCapabilities, PhyConfig, PhyDownlink, PhyMode, PhyUplink,
    PresencePhy,
};
pub use crate::protocol::{
    select_bit_rate, Ack, Query, RetryPolicy, WindowAck, SUPPORTED_RATES_BPS,
};
pub use crate::report::RunReport;
pub use crate::series::{SeriesAccumulator, SeriesBundle};
pub use crate::session::{QueryOutcome, Reader, ReaderConfig};
pub use crate::trace::LoadedCapture;
pub use crate::uplink::{
    Combining, DecodeOutput, UplinkDecoder, UplinkDecoderConfig, UplinkStream,
};
pub use bs_channel::faults::{FaultEvents, FaultPlan};
pub use bs_dsp::bits::BerCounter;
pub use bs_dsp::obs::{MemRecorder, NullRecorder, ObsReport, Recorder, Span};
pub use bs_dsp::stream::Consumed;
pub use bs_dsp::SimRng;
pub use bs_tag::energy::{Capacitor, CapacitorConfig, EnergyConfig, EnergyPolicy, EnergyState};
pub use bs_tag::frame::{DownlinkFrame, UplinkFrame};

/// The names this prelude exports, sorted — the contract the
/// `api_snapshot` drift gate compares against its golden fixture. Keep in
/// lockstep with the `pub use` lines above.
pub const PRELUDE_MANIFEST: &[&str] = &[
    "Ack",
    "BerCounter",
    "Capacitor",
    "CapacitorConfig",
    "CodewordParams",
    "CodewordPhy",
    "Combining",
    "Consumed",
    "DecodeOutput",
    "DegradationReport",
    "DownlinkConfig",
    "DownlinkFrame",
    "DownlinkRun",
    "EncodeError",
    "EnergyConfig",
    "EnergyPolicy",
    "EnergyState",
    "Error",
    "FaultEvents",
    "FaultPlan",
    "InventoryConfig",
    "InventoryResult",
    "InventoryTag",
    "LinkConfig",
    "LoadedCapture",
    "LongRangeConfig",
    "LongRangeDecoder",
    "LongRangeOutput",
    "LongRangeStream",
    "Measurement",
    "MemRecorder",
    "MitigationPolicy",
    "NullRecorder",
    "ObsReport",
    "PhyCapabilities",
    "PhyConfig",
    "PhyDownlink",
    "PhyMode",
    "PhyUplink",
    "PresencePhy",
    "ProtocolError",
    "Query",
    "QueryOutcome",
    "Reader",
    "ReaderConfig",
    "Recorder",
    "RetryPolicy",
    "RunReport",
    "SUPPORTED_RATES_BPS",
    "SeriesAccumulator",
    "SeriesBundle",
    "SessionError",
    "SimRng",
    "Span",
    "TraceError",
    "UplinkCapture",
    "UplinkDecoder",
    "UplinkDecoderConfig",
    "UplinkFrame",
    "UplinkRun",
    "UplinkStream",
    "WindowAck",
    "capture_uplink",
    "capture_uplink_with",
    "run_downlink_ber",
    "run_downlink_ber_observed",
    "run_downlink_ber_with",
    "run_downlink_frame",
    "run_downlink_frame_with",
    "run_downlink_frame_with_report",
    "run_inventory",
    "run_inventory_with",
    "run_uplink",
    "run_uplink_observed",
    "run_uplink_with",
    "select_bit_rate",
];

#[cfg(test)]
mod tests {
    use super::PRELUDE_MANIFEST;

    #[test]
    fn manifest_is_sorted_and_unique() {
        for w in PRELUDE_MANIFEST.windows(2) {
            assert!(w[0] < w[1], "manifest out of order near {:?}", w);
        }
    }

    #[test]
    fn prelude_names_resolve() {
        // Compile-time check that the headline names exist via the glob.
        use super::*;
        let _ = LinkConfig::fig10(0.3, 100, 5, 1);
        let _ = ReaderConfig::default();
        let _ = Capacitor::new(CapacitorConfig::default());
        let _ = EnergyConfig::always_powered();
        let _: fn(&LinkConfig) -> UplinkRun = run_uplink;
        let _ = NullRecorder;
    }
}
