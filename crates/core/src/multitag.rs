//! Multi-tag inventory: identifying several tags before querying them.
//!
//! The paper scopes its evaluation to a single tag but notes (§2) that
//! with several tags in range "the interrogator can use protocols similar
//! to EPC Gen-2 to identify these devices and then query each of them
//! individually". This module implements that missing piece as a framed
//! slotted-ALOHA inventory with EPC-style Q adaptation:
//!
//! 1. The reader broadcasts an inventory query carrying a frame size
//!    `2^Q` and a round seed (a downlink frame the tags decode with their
//!    envelope receivers).
//! 2. Every unidentified tag picks a slot by hashing its address with the
//!    round seed, and backscatters a short hello (address + CRC) in that
//!    slot using the normal uplink modulation.
//! 3. Per slot the reader observes *idle* (no preamble), *success* (one
//!    tag — decodes, is ACKed and leaves the round), or *collision* (two
//!    or more tags overlap; superposed switch waveforms garble the
//!    preamble/CRC). An optional capture effect lets a much-closer tag
//!    win a collision, as it does in real deployments.
//! 4. Between rounds the reader nudges Q up when collisions dominate and
//!    down when idles dominate (the EPC Q-algorithm).
//!
//! The slot outcomes here are protocol-level: the physical justification
//! (superposed two-tag modulation breaking the single-tag decoder) is
//! exercised by the channel-level tests in `tests/protocol_integration.rs`
//! and the uplink decoder's preamble threshold.

use bs_dsp::obs::{NullRecorder, Recorder};
use bs_dsp::SimRng;

/// A tag participating in inventory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InventoryTag {
    /// The tag's address (what inventory discovers).
    pub address: u8,
    /// Uplink signal strength relative to the strongest tag (linear,
    /// 0 < s ≤ 1). Drives the capture effect.
    pub relative_strength: f64,
    /// Whether the tag currently has the energy to reply. A browned-out
    /// tag is simply absent from its slots — the reader observes idles
    /// where it would have answered and cannot tell silence from absence
    /// (the energy co-simulation's information boundary).
    pub powered: bool,
}

impl InventoryTag {
    /// A tag with nominal strength, powered.
    pub fn new(address: u8) -> Self {
        InventoryTag {
            address,
            relative_strength: 1.0,
            powered: true,
        }
    }

    /// Marks the tag browned out: present in the deployment, silent on
    /// the air.
    pub fn unpowered(mut self) -> Self {
        self.powered = false;
        self
    }
}

/// Inventory configuration.
#[derive(Debug, Clone, Copy)]
pub struct InventoryConfig {
    /// Initial Q (frame size `2^Q` slots). EPC defaults to 4.
    pub initial_q: u32,
    /// Maximum Q.
    pub max_q: u32,
    /// Rounds before giving up.
    pub max_rounds: u32,
    /// Capture threshold: in a collision, if one tag's strength exceeds
    /// every other colliding tag's by this linear factor, the reader
    /// captures it anyway. `f64::INFINITY` disables capture.
    pub capture_ratio: f64,
}

impl Default for InventoryConfig {
    fn default() -> Self {
        InventoryConfig {
            initial_q: 4,
            max_q: 10,
            max_rounds: 32,
            capture_ratio: f64::INFINITY,
        }
    }
}

/// What the reader observed in one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotOutcome {
    /// No tag replied.
    Idle,
    /// Exactly one tag decoded (or one captured through a collision).
    Success {
        /// The identified tag.
        address: u8,
    },
    /// Multiple tags garbled each other.
    Collision,
}

/// Result of an inventory run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InventoryResult {
    /// Addresses identified, in discovery order.
    pub identified: Vec<u8>,
    /// Rounds executed.
    pub rounds: u32,
    /// Total slots elapsed (the air-time cost of inventory).
    pub slots: u64,
    /// Total collided slots.
    pub collisions: u64,
    /// Q at the end of the run.
    pub final_q: u32,
}

impl InventoryResult {
    /// True if every given tag was identified.
    pub fn complete(&self, tags: &[InventoryTag]) -> bool {
        tags.iter().all(|t| self.identified.contains(&t.address))
    }

    /// The inventory's airtime cost (µs) at a given slot length.
    ///
    /// Slot-count bookkeeping inside this module is PHY-neutral — a slot
    /// is a slot — but *pricing* those slots is not: a slot must fit one
    /// short reply, so its length follows the PHY's reply rate. Audit
    /// note: the gateway used to hardcode its 2 500 µs presence slot and
    /// multiply inline; callers should now pass
    /// [`PhyCapabilities::inventory_slot_us`] here.
    ///
    /// [`PhyCapabilities::inventory_slot_us`]: crate::phy::PhyCapabilities::inventory_slot_us
    pub fn airtime_us(&self, slot_us: u64) -> u64 {
        self.slots * slot_us
    }
}

/// Deterministic slot choice: FNV-style hash of (address, round seed),
/// avalanched, reduced to the frame size — the tag-side arithmetic is
/// trivial enough for an MSP430.
///
/// The avalanche finaliser is load-bearing: raw FNV-1a preserves the
/// lowest differing bit of its inputs through every step (xor keeps the
/// xor-difference; multiplying by an odd constant keeps the lowest set
/// bit of the difference), so two addresses differing by 2^k would
/// collide in *every* round whenever the frame size is ≤ 2^k. A property
/// test caught exactly this with addresses 0 and 16.
fn slot_of(address: u8, round_seed: u64, frame_size: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in [address, 0x5A]
        .iter()
        .copied()
        .chain(round_seed.to_le_bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // MurmurHash3 finaliser: full avalanche before the modulo.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h % frame_size
}

/// Runs one full inventory.
pub fn run_inventory(
    tags: &[InventoryTag],
    cfg: InventoryConfig,
    rng: &mut SimRng,
) -> InventoryResult {
    run_inventory_with(tags, cfg, rng, &mut NullRecorder)
}

/// [`run_inventory`] plus observability: counters `multitag.slots`,
/// `multitag.collisions` and `multitag.identified`. The inventory (slot
/// choices, Q trajectory, RNG draws) is bit-identical to
/// [`run_inventory`].
pub fn run_inventory_with(
    tags: &[InventoryTag],
    cfg: InventoryConfig,
    rng: &mut SimRng,
    rec: &mut dyn Recorder,
) -> InventoryResult {
    let mut pending: Vec<InventoryTag> = tags.to_vec();
    let mut identified = Vec::new();
    let mut q = cfg.initial_q.min(cfg.max_q);
    let mut slots = 0u64;
    let mut collisions = 0u64;
    let mut rounds = 0u32;

    while !pending.is_empty() && rounds < cfg.max_rounds {
        rounds += 1;
        let frame_size = 1u64 << q;
        let round_seed = rng.next_u64();
        let mut round_collisions = 0u64;
        let mut round_idles = 0u64;

        for slot in 0..frame_size {
            slots += 1;
            let in_slot: Vec<InventoryTag> = pending
                .iter()
                .copied()
                .filter(|t| t.powered && slot_of(t.address, round_seed, frame_size) == slot)
                .collect();
            let outcome = judge_slot(&in_slot, cfg.capture_ratio);
            match outcome {
                SlotOutcome::Idle => round_idles += 1,
                SlotOutcome::Success { address } => {
                    identified.push(address);
                    pending.retain(|t| t.address != address);
                }
                SlotOutcome::Collision => {
                    collisions += 1;
                    round_collisions += 1;
                }
            }
        }

        // EPC-style Q adjustment: grow on collision-heavy rounds, shrink
        // on idle-heavy ones.
        if round_collisions * 4 > frame_size {
            q = (q + 1).min(cfg.max_q);
        } else if round_idles * 2 > frame_size && q > 0 {
            q -= 1;
        }
    }

    rec.add("multitag.slots", slots);
    rec.add("multitag.collisions", collisions);
    rec.add("multitag.identified", identified.len() as u64);
    InventoryResult {
        identified,
        rounds,
        slots,
        collisions,
        final_q: q,
    }
}

/// Decides a slot's outcome from the tags that replied in it.
fn judge_slot(in_slot: &[InventoryTag], capture_ratio: f64) -> SlotOutcome {
    match in_slot {
        [] => SlotOutcome::Idle,
        [t] => SlotOutcome::Success { address: t.address },
        many => {
            // Capture: the strongest tag wins if it dominates all others.
            // total_cmp keeps the sort total even if a caller feeds a
            // NaN strength (a ratio against NaN then compares false, so
            // such a slot degrades to a plain collision instead of a
            // panic).
            let mut sorted: Vec<&InventoryTag> = many.iter().collect();
            sorted.sort_by(|a, b| b.relative_strength.total_cmp(&a.relative_strength));
            let strongest = sorted[0];
            let runner_up = sorted[1];
            if runner_up.relative_strength > 0.0
                && strongest.relative_strength / runner_up.relative_strength >= capture_ratio
            {
                SlotOutcome::Success {
                    address: strongest.address,
                }
            } else {
                SlotOutcome::Collision
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(n: usize) -> Vec<InventoryTag> {
        (0..n).map(|i| InventoryTag::new(i as u8)).collect()
    }

    fn rng(seed: u64) -> SimRng {
        SimRng::new(seed).stream("inventory-test")
    }

    #[test]
    fn single_tag_identified_in_one_round() {
        let t = tags(1);
        let r = run_inventory(&t, InventoryConfig::default(), &mut rng(1));
        assert!(r.complete(&t));
        assert_eq!(r.rounds, 1);
        assert_eq!(r.collisions, 0);
    }

    #[test]
    fn empty_population_is_trivial() {
        let r = run_inventory(&[], InventoryConfig::default(), &mut rng(2));
        assert!(r.identified.is_empty());
        assert_eq!(r.rounds, 0);
        assert_eq!(r.slots, 0);
        assert_eq!(r.airtime_us(2_500), 0);
    }

    #[test]
    fn airtime_scales_with_phy_slot_length() {
        // Audit site: inventory clock time used to hard-code the presence
        // slot length at the caller; the per-PHY slot duration now comes
        // from `PhyCapabilities::inventory_slot_us`.
        use crate::phy::PhyConfig;
        let t = tags(4);
        let r = run_inventory(&t, InventoryConfig::default(), &mut rng(5));
        let presence = PhyConfig::Presence.capabilities();
        let codeword = PhyConfig::codeword().capabilities();
        assert_eq!(r.airtime_us(presence.inventory_slot_us), r.slots * 2_500);
        assert_eq!(r.airtime_us(codeword.inventory_slot_us), r.slots * 400);
        assert!(
            r.airtime_us(codeword.inventory_slot_us) < r.airtime_us(presence.inventory_slot_us),
            "codeword slots are shorter than presence slots"
        );
    }

    #[test]
    fn ten_tags_all_identified() {
        let t = tags(10);
        let r = run_inventory(&t, InventoryConfig::default(), &mut rng(3));
        assert!(r.complete(&t), "identified {:?}", r.identified);
        // No duplicates.
        let mut sorted = r.identified.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn hundred_tags_identified_with_q_growth() {
        let t = tags(100);
        let cfg = InventoryConfig {
            initial_q: 3, // deliberately too small
            ..Default::default()
        };
        let r = run_inventory(&t, cfg, &mut rng(4));
        assert!(r.complete(&t), "missing {} tags", 100 - r.identified.len());
        assert!(r.final_q > 3, "Q never grew despite collisions");
        assert!(r.collisions > 0);
    }

    #[test]
    fn q_shrinks_for_tiny_population() {
        let t = tags(2);
        let cfg = InventoryConfig {
            initial_q: 8, // 256 slots for 2 tags
            ..Default::default()
        };
        let r = run_inventory(&t, cfg, &mut rng(5));
        assert!(r.complete(&t));
        assert!(r.final_q < 8, "Q never shrank despite idles");
    }

    #[test]
    fn slot_efficiency_is_reasonable() {
        // Slotted ALOHA peaks at ~1/e ≈ 0.37 tags per slot; with Q
        // adaptation a 50-tag inventory should finish well under 50/0.1
        // slots.
        let t = tags(50);
        let r = run_inventory(&t, InventoryConfig::default(), &mut rng(6));
        assert!(r.complete(&t));
        let efficiency = 50.0 / r.slots as f64;
        assert!(
            efficiency > 0.1,
            "only {:.3} tags/slot over {} slots",
            efficiency,
            r.slots
        );
    }

    #[test]
    fn capture_effect_resolves_unequal_tags() {
        // Two tags always colliding (tiny frame), one 10× stronger:
        // with capture enabled the strong one gets through; the weak one
        // is then alone and succeeds too.
        let t = vec![
            InventoryTag {
                address: 1,
                relative_strength: 1.0,
                powered: true,
            },
            InventoryTag {
                address: 2,
                relative_strength: 0.05,
                powered: true,
            },
        ];
        let cfg = InventoryConfig {
            initial_q: 0, // one slot per round: guaranteed collision
            max_q: 0,
            capture_ratio: 4.0,
            ..Default::default()
        };
        let r = run_inventory(&t, cfg, &mut rng(7));
        assert!(r.complete(&t));
        assert_eq!(r.identified[0], 1, "strong tag should be captured first");
    }

    #[test]
    fn no_capture_means_equal_tags_need_separate_slots() {
        let t = tags(2);
        let cfg = InventoryConfig {
            initial_q: 0,
            max_q: 0, // forever one slot: permanent collision
            max_rounds: 10,
            capture_ratio: f64::INFINITY,
        };
        let r = run_inventory(&t, cfg, &mut rng(8));
        assert!(!r.complete(&t), "two equal tags cannot share one slot");
        assert_eq!(r.rounds, 10);
    }

    #[test]
    fn slot_hash_is_uniformish() {
        let frame = 16u64;
        let mut counts = [0u32; 16];
        for addr in 0..=255u8 {
            counts[slot_of(addr, 12345, frame) as usize] += 1;
        }
        // 256 addresses over 16 slots: expect 16 each; allow wide slack.
        for (i, &c) in counts.iter().enumerate() {
            assert!((4..=40).contains(&c), "slot {i}: {c}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let t = tags(20);
        let a = run_inventory(&t, InventoryConfig::default(), &mut rng(9));
        let b = run_inventory(&t, InventoryConfig::default(), &mut rng(9));
        assert_eq!(a.identified, b.identified);
        assert_eq!(a.slots, b.slots);
    }

    #[test]
    fn judge_slot_cases() {
        assert_eq!(judge_slot(&[], 2.0), SlotOutcome::Idle);
        assert_eq!(
            judge_slot(&[InventoryTag::new(5)], 2.0),
            SlotOutcome::Success { address: 5 }
        );
        assert_eq!(
            judge_slot(&[InventoryTag::new(1), InventoryTag::new(2)], 2.0),
            SlotOutcome::Collision
        );
    }

    #[test]
    fn unpowered_tag_is_silent_and_unidentified() {
        // Three tags, one browned out: the powered two are identified,
        // the dead one never replies and the run exhausts its rounds
        // looking for it (the reader cannot tell silence from absence).
        let t = vec![
            InventoryTag::new(1),
            InventoryTag::new(2).unpowered(),
            InventoryTag::new(3),
        ];
        let cfg = InventoryConfig {
            max_rounds: 6,
            ..Default::default()
        };
        let r = run_inventory(&t, cfg, &mut rng(11));
        assert!(r.identified.contains(&1) && r.identified.contains(&3));
        assert!(!r.identified.contains(&2), "dead tag replied");
        assert!(!r.complete(&t));
        assert_eq!(r.rounds, 6, "reader must keep trying until max_rounds");
    }

    #[test]
    fn all_powered_matches_default_construction() {
        // `powered: true` is the constructor default, so energy-less
        // callers are bit-identical to the pre-energy inventory.
        let t = tags(12);
        assert!(t.iter().all(|x| x.powered));
        let a = run_inventory(&t, InventoryConfig::default(), &mut rng(12));
        let b = run_inventory(&t, InventoryConfig::default(), &mut rng(12));
        assert_eq!(a, b);
    }

    #[test]
    fn nan_strength_degrades_to_collision_without_panic() {
        // A NaN relative strength used to crash the capture sort's
        // partial_cmp().unwrap(); with a total order it must simply never
        // win a capture.
        let mut a = InventoryTag::new(1);
        a.relative_strength = f64::NAN;
        let mut b = InventoryTag::new(2);
        b.relative_strength = 0.5;
        assert_eq!(judge_slot(&[a, b], 2.0), SlotOutcome::Collision);
        assert_eq!(judge_slot(&[b, a], 2.0), SlotOutcome::Collision);
        // And a whole inventory run over NaN-strength tags still resolves
        // by retry alone.
        let mut ts = tags(3);
        for t in &mut ts {
            t.relative_strength = f64::NAN;
        }
        let cfg = InventoryConfig {
            capture_ratio: 2.0,
            ..Default::default()
        };
        let r = run_inventory(&ts, cfg, &mut rng(7));
        assert!(r.complete(&ts), "identified {:?}", r.identified);
    }
}
