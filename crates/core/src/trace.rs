//! Capture traces: save and load [`SeriesBundle`]s as plain text.
//!
//! The paper's workflow separates *capture* (the CSI tool logging packets
//! on the reader) from *decoding* (offline processing). This module gives
//! the reproduction the same split: a [`SeriesBundle`] serialises to a
//! simple line-oriented text format that survives a round trip exactly, so
//! captures can be archived, diffed, and re-decoded later — no serde
//! dependency needed for a numeric table.
//!
//! Format:
//!
//! ```text
//! # wifi-backscatter capture v1
//! # channels=<n> packets=<m>
//! <t_us> <ch0> <ch1> ... <chN-1>
//! ...
//! ```

use crate::series::SeriesBundle;

/// Errors from parsing a capture trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The header line is missing or wrong.
    BadHeader,
    /// A data line has the wrong number of fields or an unparsable value.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// Timestamps are not non-decreasing.
    UnsortedTimestamps {
        /// 1-based line number where order broke.
        line: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadHeader => write!(f, "missing or invalid capture header"),
            TraceError::BadLine { line } => write!(f, "malformed data on line {line}"),
            TraceError::UnsortedTimestamps { line } => {
                write!(f, "timestamps go backwards at line {line}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// The header magic of the capture format.
pub const MAGIC: &str = "# wifi-backscatter capture v1";

/// Serialises a bundle to the capture text format.
pub fn to_text(bundle: &SeriesBundle) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str(&format!(
        "# channels={} packets={}\n",
        bundle.channels(),
        bundle.packets()
    ));
    for (p, &t) in bundle.t_us.iter().enumerate() {
        out.push_str(&t.to_string());
        for ch in &bundle.series {
            out.push(' ');
            // 17 significant digits: f64 round-trips exactly.
            out.push_str(&format!("{:.17e}", ch[p]));
        }
        out.push('\n');
    }
    out
}

/// Parses a capture back into a bundle.
pub fn from_text(text: &str) -> Result<SeriesBundle, TraceError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l.trim() == MAGIC => {}
        _ => return Err(TraceError::BadHeader),
    }

    let mut t_us: Vec<u64> = Vec::new();
    let mut series: Vec<Vec<f64>> = Vec::new();
    for (i, line) in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let t: u64 = fields
            .next()
            .and_then(|f| f.parse().ok())
            .ok_or(TraceError::BadLine { line: i + 1 })?;
        if let Some(&last) = t_us.last() {
            if t < last {
                return Err(TraceError::UnsortedTimestamps { line: i + 1 });
            }
        }
        let values: Result<Vec<f64>, _> = fields.map(str::parse::<f64>).collect();
        let values = values.map_err(|_| TraceError::BadLine { line: i + 1 })?;
        if series.is_empty() {
            series = vec![Vec::new(); values.len()];
        } else if values.len() != series.len() {
            return Err(TraceError::BadLine { line: i + 1 });
        }
        t_us.push(t);
        for (c, v) in values.into_iter().enumerate() {
            series[c].push(v);
        }
    }
    Ok(SeriesBundle { t_us, series })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bundle() -> SeriesBundle {
        SeriesBundle {
            t_us: vec![0, 333, 666, 1000],
            series: vec![
                vec![1.0, 2.5, -0.125, 1e-9],
                vec![9.75, 9.5, 10.0, std::f64::consts::PI],
            ],
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let b = bundle();
        let text = to_text(&b);
        let back = from_text(&text).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn empty_bundle_roundtrips() {
        let b = SeriesBundle {
            t_us: vec![],
            series: vec![],
        };
        assert_eq!(from_text(&to_text(&b)).unwrap(), b);
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(from_text("0 1.0 2.0\n"), Err(TraceError::BadHeader));
        assert_eq!(from_text(""), Err(TraceError::BadHeader));
    }

    #[test]
    fn malformed_line_rejected() {
        let text = format!("{MAGIC}\n0 1.0\nnot-a-number 2.0\n");
        assert_eq!(from_text(&text), Err(TraceError::BadLine { line: 3 }));
    }

    #[test]
    fn inconsistent_width_rejected() {
        let text = format!("{MAGIC}\n0 1.0 2.0\n10 1.0\n");
        assert_eq!(from_text(&text), Err(TraceError::BadLine { line: 3 }));
    }

    #[test]
    fn backwards_time_rejected() {
        let text = format!("{MAGIC}\n100 1.0\n50 2.0\n");
        assert_eq!(
            from_text(&text),
            Err(TraceError::UnsortedTimestamps { line: 3 })
        );
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = format!("{MAGIC}\n# a comment\n\n0 1.0\n# more\n10 2.0\n");
        let b = from_text(&text).unwrap();
        assert_eq!(b.packets(), 2);
        assert_eq!(b.series[0], vec![1.0, 2.0]);
    }

    #[test]
    fn real_capture_decodes_after_roundtrip() {
        // Capture a real simulated exchange, serialise, re-load, decode.
        use crate::link::{capture_uplink, LinkConfig};
        use crate::uplink::{UplinkDecoder, UplinkDecoderConfig};
        let mut cfg = LinkConfig::fig10(0.10, 100, 30, 77);
        cfg.payload = (0..16).map(|i| i % 2 == 0).collect();
        let cap = capture_uplink(&cfg);
        let restored = from_text(&to_text(&cap.bundle)).unwrap();
        assert_eq!(restored, cap.bundle);
        let dec = UplinkDecoder::new(UplinkDecoderConfig::csi(100, 16));
        let out = dec.decode(&restored, cap.start_us).expect("no detection");
        assert_eq!(out.frame.unwrap().payload, cfg.payload);
    }

    #[test]
    fn error_display() {
        assert!(TraceError::BadHeader.to_string().contains("header"));
        assert!(TraceError::BadLine { line: 7 }.to_string().contains('7'));
    }
}
