//! Capture traces: save and load [`SeriesBundle`]s as plain text.
//!
//! The paper's workflow separates *capture* (the CSI tool logging packets
//! on the reader) from *decoding* (offline processing). This module gives
//! the reproduction the same split: a [`SeriesBundle`] serialises to a
//! simple line-oriented text format that survives a round trip exactly, so
//! captures can be archived, diffed, and re-decoded later — no serde
//! dependency needed for a numeric table.
//!
//! v1 format:
//!
//! ```text
//! # wifi-backscatter capture v1
//! # channels=<n> packets=<m>
//! <t_us> <ch0> <ch1> ... <chN-1>
//! ...
//! ```
//!
//! v2 adds optional observability sidecars — `#obs` comment lines carrying
//! the spans/counters/gauges an armed [`Recorder`](bs_dsp::obs::Recorder)
//! collected during the capture, so a profile travels with its trace:
//!
//! ```text
//! # wifi-backscatter capture v2
//! # channels=<n> packets=<m>
//! #obs span <stage> <start_us> <end_us> <items>
//! #obs counter <name> <value>
//! #obs gauge <name> <value>
//! <t_us> <ch0> <ch1> ... <chN-1>
//! ```
//!
//! Because v1 parsers skip every `#` line, a v2 body is *forward
//! compatible* with v1 tooling except for the header; [`load`] (and
//! [`from_text`]) auto-detect both versions, so archived v1 captures keep
//! parsing unchanged.

use crate::error as err;
use crate::series::SeriesBundle;
use bs_dsp::obs::{ObsReport, Span};
use std::fmt::Write as _;

/// Deprecated location of the trace error type.
#[deprecated(
    since = "0.2.0",
    note = "moved to `wifi_backscatter::error::TraceError` as part of the unified error hierarchy"
)]
pub use crate::error::TraceError;

/// The header magic of the v1 capture format.
pub const MAGIC: &str = "# wifi-backscatter capture v1";

/// The header magic of the v2 capture format (adds `#obs` sidecars).
pub const MAGIC_V2: &str = "# wifi-backscatter capture v2";

/// A capture parsed by the auto-detecting [`load`]: the sample bundle plus
/// any observability sidecars the file carried.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedCapture {
    /// The time/series table.
    pub bundle: SeriesBundle,
    /// Observability sidecars (`None` for v1 files and v2 files without
    /// `#obs` lines).
    pub obs: Option<ObsReport>,
    /// Format version parsed (1 or 2).
    pub version: u8,
}

/// Serialises a bundle to the v1 capture text format.
pub fn to_text(bundle: &SeriesBundle) -> String {
    let mut out = header(MAGIC, bundle);
    write_body(&mut out, bundle);
    out
}

/// Serialises a bundle plus an observability report to the v2 format.
///
/// The report's spans, counters and gauges become `#obs` sidecar lines in
/// deterministic order (spans as recorded, maps sorted), so the output is
/// byte-stable for a given run.
pub fn to_text_v2(bundle: &SeriesBundle, obs: &ObsReport) -> String {
    let mut out = header(MAGIC_V2, bundle);
    for s in &obs.spans {
        let _ = writeln!(
            out,
            "#obs span {} {} {} {}",
            s.stage, s.start_us, s.end_us, s.items
        );
    }
    for (k, v) in &obs.counters {
        let _ = writeln!(out, "#obs counter {k} {v}");
    }
    for (k, v) in &obs.gauges {
        // {:?} round-trips f64 exactly.
        let _ = writeln!(out, "#obs gauge {k} {v:?}");
    }
    write_body(&mut out, bundle);
    out
}

/// Header + one preallocation for the whole file.
fn header(magic: &str, bundle: &SeriesBundle) -> String {
    // ~25 bytes per value in scientific notation plus the timestamp column.
    let per_line = 12 + 25 * bundle.channels();
    let mut out = String::with_capacity(magic.len() + 40 + per_line * bundle.packets());
    out.push_str(magic);
    out.push('\n');
    let _ = writeln!(
        out,
        "# channels={} packets={}",
        bundle.channels(),
        bundle.packets()
    );
    out
}

/// Appends the numeric table shared by both versions.
fn write_body(out: &mut String, bundle: &SeriesBundle) {
    for (p, &t) in bundle.t_us.iter().enumerate() {
        let _ = write!(out, "{t}");
        for ch in &bundle.series {
            // 17 significant digits: f64 round-trips exactly.
            let _ = write!(out, " {:.17e}", ch[p]);
        }
        out.push('\n');
    }
}

/// Parses a capture (v1 or v2, auto-detected) back into a bundle,
/// discarding any v2 sidecars. Use [`load`] to keep them.
pub fn from_text(text: &str) -> Result<SeriesBundle, err::TraceError> {
    load(text).map(|c| c.bundle)
}

/// Auto-detecting loader: parses v1 and v2 captures, returning the bundle
/// together with any `#obs` sidecars a v2 file carried.
pub fn load(text: &str) -> Result<LoadedCapture, err::TraceError> {
    let mut lines = text.lines().enumerate();
    let version = match lines.next() {
        Some((_, l)) if l.trim() == MAGIC => 1,
        Some((_, l)) if l.trim() == MAGIC_V2 => 2,
        _ => return Err(err::TraceError::BadHeader),
    };

    let mut obs: Option<ObsReport> = None;
    let mut t_us: Vec<u64> = Vec::new();
    let mut series: Vec<Vec<f64>> = Vec::new();
    for (i, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("#obs ") {
            // v1 files treat #obs as a plain comment; v2 files parse it.
            if version >= 2 {
                parse_obs_line(rest, i + 1, obs.get_or_insert_with(ObsReport::new))?;
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let t: u64 = fields
            .next()
            .and_then(|f| f.parse().ok())
            .ok_or(err::TraceError::BadLine { line: i + 1 })?;
        if let Some(&last) = t_us.last() {
            if t < last {
                return Err(err::TraceError::UnsortedTimestamps { line: i + 1 });
            }
        }
        let values: Result<Vec<f64>, _> = fields.map(str::parse::<f64>).collect();
        let values = values.map_err(|_| err::TraceError::BadLine { line: i + 1 })?;
        if series.is_empty() {
            series = vec![Vec::new(); values.len()];
        } else if values.len() != series.len() {
            return Err(err::TraceError::BadLine { line: i + 1 });
        }
        t_us.push(t);
        for (c, v) in values.into_iter().enumerate() {
            series[c].push(v);
        }
    }
    Ok(LoadedCapture {
        bundle: SeriesBundle { t_us, series },
        obs,
        version,
    })
}

/// Parses one `#obs` sidecar payload (the part after the `#obs ` prefix).
fn parse_obs_line(rest: &str, line: usize, obs: &mut ObsReport) -> Result<(), err::TraceError> {
    let bad = err::TraceError::BadObsLine { line };
    let mut f = rest.split_whitespace();
    match f.next() {
        Some("span") => {
            let stage = f.next().ok_or(bad.clone())?;
            let start_us: u64 = f.next().and_then(|v| v.parse().ok()).ok_or(bad.clone())?;
            let end_us: u64 = f.next().and_then(|v| v.parse().ok()).ok_or(bad.clone())?;
            let items: u64 = f.next().and_then(|v| v.parse().ok()).ok_or(bad.clone())?;
            if f.next().is_some() {
                return Err(bad);
            }
            obs.spans.push(Span {
                stage: stage.to_string(),
                start_us,
                end_us,
                items,
            });
        }
        Some("counter") => {
            let name = f.next().ok_or(bad.clone())?;
            let value: u64 = f.next().and_then(|v| v.parse().ok()).ok_or(bad.clone())?;
            if f.next().is_some() {
                return Err(bad);
            }
            *obs.counters.entry(name.to_string()).or_insert(0) += value;
        }
        Some("gauge") => {
            let name = f.next().ok_or(bad.clone())?;
            let value: f64 = f.next().and_then(|v| v.parse().ok()).ok_or(bad.clone())?;
            if f.next().is_some() {
                return Err(bad);
            }
            obs.gauges.insert(name.to_string(), value);
        }
        _ => return Err(bad),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::TraceError;

    fn bundle() -> SeriesBundle {
        SeriesBundle {
            t_us: vec![0, 333, 666, 1000],
            series: vec![
                vec![1.0, 2.5, -0.125, 1e-9],
                vec![9.75, 9.5, 10.0, std::f64::consts::PI],
            ],
        }
    }

    fn report() -> ObsReport {
        use bs_dsp::obs::{MemRecorder, Recorder};
        let mut rec = MemRecorder::new();
        rec.span("uplink.capture", 0, 1000, 4);
        rec.span("uplink.slice", 600, 1000, 2);
        rec.add("uplink.packets-binned", 4);
        rec.add("uplink.erasures", 1);
        rec.gauge("uplink.mrc-weight-entropy", 0.625);
        rec.gauge("uplink.preamble-score", -3.5e-2);
        rec.into_report()
    }

    #[test]
    fn roundtrip_is_exact() {
        let b = bundle();
        let text = to_text(&b);
        let back = from_text(&text).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn v2_roundtrip_preserves_bundle_and_obs() {
        let b = bundle();
        let r = report();
        let text = to_text_v2(&b, &r);
        let cap = load(&text).unwrap();
        assert_eq!(cap.version, 2);
        assert_eq!(cap.bundle, b);
        assert_eq!(cap.obs.as_ref(), Some(&r));
        // from_text still works on v2, discarding the sidecars.
        assert_eq!(from_text(&text).unwrap(), b);
    }

    #[test]
    fn v1_load_reports_version_and_no_obs() {
        let cap = load(&to_text(&bundle())).unwrap();
        assert_eq!(cap.version, 1);
        assert!(cap.obs.is_none());
    }

    #[test]
    fn v1_parser_tolerates_obs_lines_as_comments() {
        // A v2 body pasted under a v1 header: sidecars are plain comments.
        let text = format!("{MAGIC}\n#obs span x 0 1 1\n0 1.0\n10 2.0\n");
        let cap = load(&text).unwrap();
        assert_eq!(cap.version, 1);
        assert!(cap.obs.is_none());
        assert_eq!(cap.bundle.packets(), 2);
    }

    #[test]
    fn v2_empty_report_roundtrips_as_none() {
        let text = to_text_v2(&bundle(), &ObsReport::new());
        let cap = load(&text).unwrap();
        assert_eq!(cap.version, 2);
        assert!(cap.obs.is_none());
    }

    #[test]
    fn malformed_obs_line_rejected_in_v2() {
        let text = format!("{MAGIC_V2}\n#obs span onlythree 0 1\n0 1.0\n");
        assert_eq!(load(&text), Err(TraceError::BadObsLine { line: 2 }));
        let text = format!("{MAGIC_V2}\n#obs widget w 1\n0 1.0\n");
        assert_eq!(load(&text), Err(TraceError::BadObsLine { line: 2 }));
        let text = format!("{MAGIC_V2}\n#obs counter c nan-ish\n0 1.0\n");
        assert_eq!(load(&text), Err(TraceError::BadObsLine { line: 2 }));
    }

    #[test]
    fn empty_bundle_roundtrips() {
        let b = SeriesBundle {
            t_us: vec![],
            series: vec![],
        };
        assert_eq!(from_text(&to_text(&b)).unwrap(), b);
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(from_text("0 1.0 2.0\n"), Err(TraceError::BadHeader));
        assert_eq!(from_text(""), Err(TraceError::BadHeader));
    }

    #[test]
    fn malformed_line_rejected() {
        let text = format!("{MAGIC}\n0 1.0\nnot-a-number 2.0\n");
        assert_eq!(from_text(&text), Err(TraceError::BadLine { line: 3 }));
    }

    #[test]
    fn inconsistent_width_rejected() {
        let text = format!("{MAGIC}\n0 1.0 2.0\n10 1.0\n");
        assert_eq!(from_text(&text), Err(TraceError::BadLine { line: 3 }));
    }

    #[test]
    fn backwards_time_rejected() {
        let text = format!("{MAGIC}\n100 1.0\n50 2.0\n");
        assert_eq!(
            from_text(&text),
            Err(TraceError::UnsortedTimestamps { line: 3 })
        );
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = format!("{MAGIC}\n# a comment\n\n0 1.0\n# more\n10 2.0\n");
        let b = from_text(&text).unwrap();
        assert_eq!(b.packets(), 2);
        assert_eq!(b.series[0], vec![1.0, 2.0]);
    }

    #[test]
    fn real_capture_decodes_after_roundtrip() {
        // Capture a real simulated exchange, serialise, re-load, decode.
        use crate::link::{capture_uplink, LinkConfig};
        use crate::uplink::{UplinkDecoder, UplinkDecoderConfig};
        let mut cfg = LinkConfig::fig10(0.10, 100, 30, 77);
        cfg.payload = (0..16).map(|i| i % 2 == 0).collect();
        let cap = capture_uplink(&cfg);
        let restored = from_text(&to_text(&cap.bundle)).unwrap();
        assert_eq!(restored, cap.bundle);
        let dec = UplinkDecoder::new(UplinkDecoderConfig::csi(100, 16));
        let out = dec.decode(&restored, cap.start_us).expect("no detection");
        assert_eq!(out.frame.unwrap().payload, cfg.payload);
    }

    #[test]
    fn error_display() {
        assert!(TraceError::BadHeader.to_string().contains("header"));
        assert!(TraceError::BadLine { line: 7 }.to_string().contains('7'));
        assert!(TraceError::BadObsLine { line: 9 }.to_string().contains('9'));
    }
}
