//! The high-level reader session: what a downstream application actually
//! calls.
//!
//! The lower modules expose each mechanism separately (encoder, decoder,
//! protocol frames, link simulation). A [`Reader`] composes them into the
//! paper's operational loop:
//!
//! 1. measure the network load and pick the tag's uplink rate (§5's N/M
//!    rule with a conservative margin);
//! 2. transmit the query on the downlink, retrying until the tag responds
//!    ("if the Wi-Fi Backscatter tag does not respond to the Wi-Fi
//!    reader's query, the reader re-transmits its packet until it gets a
//!    response", §4.1);
//! 3. decode the uplink response, falling back to the long-range coded
//!    mode if the plain response fails repeatedly;
//! 4. ACK.
//!
//! The session runs against the same simulated channel as everything
//! else; on real hardware the two `run_*` call sites are the only code
//! that would change.

use crate::error as err;
use crate::link::{
    DegradationReport, DownlinkConfig, LinkConfig, Measurement, MitigationPolicy, UplinkRun,
};
use crate::phy::{run_downlink_frame_with, run_uplink_with, PhyConfig};
use crate::protocol::{Ack, Query, RetryPolicy};
use crate::uplink::{UplinkDecoder, UplinkDecoderConfig, UplinkStream};
use bs_channel::faults::FaultPlan;
use bs_dsp::obs::{MemRecorder, NullRecorder, ObsReport, Recorder};
use bs_dsp::SimRng;
use bs_tag::energy::{Capacitor, EnergyConfig, LISTEN_LOAD_UW, RESPOND_LOAD_UW};

/// Former home of the session error type.
#[deprecated(
    since = "0.2.0",
    note = "moved to wifi_backscatter::error::SessionError as part of the unified error hierarchy"
)]
pub use crate::error::SessionError;

/// Session configuration.
#[derive(Debug, Clone)]
pub struct ReaderConfig {
    /// Tag↔reader distance in the simulated deployment (m).
    pub tag_distance_m: f64,
    /// Downlink bit rate (bps).
    pub downlink_bps: u64,
    /// Measured/assumed helper load (packets/s) — drives §5 rate selection.
    pub helper_pps: f64,
    /// Channel measurements the reader has access to.
    pub measurement: Measurement,
    /// Packets per bit the decoder wants (M in the §5 rule).
    pub pkts_per_bit: u32,
    /// Conservative margin for rate selection (< 1).
    pub rate_margin: f64,
    /// Maximum downlink query attempts before giving up.
    pub max_query_attempts: u32,
    /// Maximum uplink decode attempts per accepted query.
    pub max_response_attempts: u32,
    /// Code length for the long-range fallback (1 disables the fallback).
    pub fallback_code_length: usize,
    /// Injected faults; [`FaultPlan::none`] leaves the session untouched.
    pub faults: FaultPlan,
    /// Link-layer mitigations the reader arms (a production reader runs
    /// them all; conformance tests switch them off to measure the gap).
    pub mitigations: MitigationPolicy,
    /// Backoff schedule and time budget bounding the retry loops.
    pub retry: RetryPolicy,
    /// Which PHY mode the session's link exchanges run
    /// (default: [`PhyConfig::Presence`]). Rate selection, response
    /// airtime budgeting and the long-range fallback all follow this
    /// mode's [`crate::phy::PhyCapabilities`].
    pub phy: PhyConfig,
    /// The simulated tag's energy supply. `None` (the default) models an
    /// immortal tag and leaves the session bit-identical to the
    /// pre-energy behaviour. With a supply, a browned-out tag simply
    /// misses its poll: the reader observes silence and the existing
    /// [`RetryPolicy`] machinery does the rest.
    pub tag_energy: Option<EnergyConfig>,
}

impl Default for ReaderConfig {
    fn default() -> Self {
        ReaderConfig {
            tag_distance_m: 0.3,
            downlink_bps: 20_000,
            helper_pps: 1_500.0,
            measurement: Measurement::Csi,
            pkts_per_bit: 5,
            rate_margin: 0.8,
            max_query_attempts: 5,
            max_response_attempts: 3,
            fallback_code_length: 20,
            faults: FaultPlan::none(),
            mitigations: MitigationPolicy::all(),
            retry: RetryPolicy::default(),
            phy: PhyConfig::Presence,
            tag_energy: None,
        }
    }
}

impl ReaderConfig {
    /// Sets the tag↔reader distance (default: 0.3 m).
    pub fn with_distance_m(mut self, m: f64) -> Self {
        self.tag_distance_m = m;
        self
    }

    /// Sets the reader measurement (default: [`Measurement::Csi`]).
    pub fn with_measurement(mut self, measurement: Measurement) -> Self {
        self.measurement = measurement;
        self
    }

    /// Sets the long-range fallback code length (default: 20; 1 disables
    /// the fallback).
    pub fn with_fallback_code_length(mut self, l: usize) -> Self {
        self.fallback_code_length = l;
        self
    }

    /// Sets the injected fault plan (default: [`FaultPlan::none`]).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the armed mitigations (default: [`MitigationPolicy::all`]).
    pub fn with_mitigations(mut self, mitigations: MitigationPolicy) -> Self {
        self.mitigations = mitigations;
        self
    }

    /// Sets the retry backoff/budget policy (default:
    /// [`RetryPolicy::default`]).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the PHY mode (default: [`PhyConfig::Presence`]).
    pub fn with_phy(mut self, phy: PhyConfig) -> Self {
        self.phy = phy;
        self
    }

    /// Arms the tag energy co-simulation (default: `None`, an immortal
    /// tag).
    pub fn with_tag_energy(mut self, energy: EnergyConfig) -> Self {
        self.tag_energy = Some(energy);
        self
    }
}

/// Outcome of a successful query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The decoded payload bits.
    pub payload: Vec<bool>,
    /// The uplink rate the session commanded (bps).
    pub bit_rate_bps: u64,
    /// Downlink attempts used.
    pub query_attempts: u32,
    /// Uplink attempts used.
    pub response_attempts: u32,
    /// True if the long-range coded fallback was needed.
    pub used_fallback: bool,
    /// Faults and mitigations aggregated over every attempt.
    pub degradation: DegradationReport,
    /// Estimated time the session spent (airtime + backoff, µs) — what
    /// the [`RetryPolicy`] budget is charged against.
    pub waited_us: u64,
    /// Observability report, populated only by [`Reader::query_observed`];
    /// `None` everywhere else.
    pub obs: Option<ObsReport>,
}

/// A reader session.
#[derive(Debug, Clone)]
pub struct Reader {
    cfg: ReaderConfig,
    rng: SimRng,
    /// The simulated tag's storage capacitor, present iff the config
    /// carries a supply; persists across queries so a poll sequence sees
    /// the tag charge and discharge.
    tag_cap: Option<Capacitor>,
}

impl Reader {
    /// Creates a session.
    pub fn new(cfg: ReaderConfig, seed: u64) -> Self {
        Reader {
            tag_cap: cfg.tag_energy.map(|e| Capacitor::new(e.capacitor)),
            cfg,
            rng: SimRng::new(seed).stream("reader-session"),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ReaderConfig {
        &self.cfg
    }

    /// The simulated tag's capacitor, if the energy co-simulation is
    /// armed — what an experiment inspects for brownout/recovery counts.
    pub fn tag_capacitor(&self) -> Option<&Capacitor> {
        self.tag_cap.as_ref()
    }

    /// Lets simulated wall-clock pass between queries: the tag harvests
    /// (at listening load when its policy keeps the rx chain on) and the
    /// capacitor state machine runs. A no-op for energy-less sessions.
    pub fn idle_us(&mut self, span_us: u64) {
        let listening = self.tag_can_listen();
        self.advance_tag(span_us, if listening { LISTEN_LOAD_UW } else { 0.0 });
    }

    fn advance_tag(&mut self, span_us: u64, load_uw: f64) {
        if let (Some(e), Some(c)) = (self.cfg.tag_energy, self.tag_cap.as_mut()) {
            c.advance(span_us as f64, e.harvest_uw, load_uw);
        }
    }

    fn tag_can_listen(&self) -> bool {
        match (self.cfg.tag_energy, self.tag_cap.as_ref()) {
            (Some(e), Some(c)) => e.policy.can_listen(c.state()),
            _ => true,
        }
    }

    fn tag_can_respond(&self) -> bool {
        match (self.cfg.tag_energy, self.tag_cap.as_ref()) {
            (Some(e), Some(c)) => e.policy.can_respond(c.state()),
            _ => true,
        }
    }

    /// Queries `tag_address` for `payload_bits` bits and returns the
    /// decoded payload. `tag_payload` is what the simulated tag will send
    /// (on hardware this is, of course, unknown).
    pub fn query(
        &mut self,
        tag_address: u8,
        tag_payload: &[bool],
    ) -> Result<QueryOutcome, err::SessionError> {
        self.query_with(tag_address, tag_payload, &mut NullRecorder)
    }

    /// [`Self::query`] with an armed [`MemRecorder`]: a successful outcome
    /// carries `Some(ObsReport)` profiling every attempt of the exchange.
    /// The session's decisions and RNG draws are bit-identical to
    /// [`Self::query`].
    pub fn query_observed(
        &mut self,
        tag_address: u8,
        tag_payload: &[bool],
    ) -> Result<QueryOutcome, err::SessionError> {
        let mut rec = MemRecorder::new();
        let mut out = self.query_with(tag_address, tag_payload, &mut rec)?;
        out.obs = Some(rec.into_report());
        Ok(out)
    }

    /// [`Self::query`] plus observability threading through every downlink
    /// and uplink attempt, with session-level counters
    /// `session.query-attempts`, `session.response-attempts` and
    /// `session.fallback-engaged`.
    pub fn query_with(
        &mut self,
        tag_address: u8,
        tag_payload: &[bool],
        rec: &mut dyn Recorder,
    ) -> Result<QueryOutcome, err::SessionError> {
        // §5: pick the uplink rate from the network conditions — in the
        // configured PHY's own currency (packets per bit for presence,
        // symbols per bit for codeword translation). Audit note: this
        // used to call `select_bit_rate` directly, baking the presence
        // step table into the session.
        let caps = self.cfg.phy.capabilities();
        let bit_rate =
            caps.select_rate_bps(self.cfg.helper_pps, self.cfg.pkts_per_bit, self.cfg.rate_margin);

        // §4.1: retransmit the query until the tag decodes it — with
        // exponential backoff between attempts and a hard time budget so
        // a persistent fault degrades the session instead of hanging it.
        let retry = self.cfg.retry;
        let mut report = DegradationReport::default();
        let mut waited_us: u64 = 0;
        let query = Query {
            tag_address,
            payload_bits: tag_payload.len() as u16,
            // The wire format encodes an index into the presence rate
            // table; the capabilities map the selected rate onto an
            // encodable one (identity for presence, pinned for codeword
            // — see `PhyCapabilities::wire_rate_bps`).
            bit_rate_bps: caps.wire_rate_bps(bit_rate),
            code_length: 1,
        };
        // Infallible here: `wire_rate_bps` only returns rates from
        // `SUPPORTED_RATES_BPS`, all of which encode.
        let query_frame = query
            .to_frame()
            .expect("wire_rate_bps returns only supported rates");
        let query_air_us =
            query_frame.to_bits().len() as u64 * 1_000_000 / self.cfg.downlink_bps.max(1);
        let mut query_attempts = 0;
        let mut delivered = false;
        while query_attempts < self.cfg.max_query_attempts {
            if query_attempts > 0 {
                let backoff = retry.backoff_us(query_attempts);
                waited_us += backoff;
                // The tag keeps harvesting through the reader's backoff.
                self.idle_us(backoff);
                if !retry.within_budget(waited_us) {
                    break;
                }
            }
            query_attempts += 1;
            rec.add("session.query-attempts", 1);
            waited_us += query_air_us;
            // Energy co-simulation: the tag harvests over the query
            // airtime; if its policy keeps the radio off, the reader
            // observes pure silence — no downlink exchange is even
            // simulated, and the retry loop above supplies the reader's
            // reaction (backoff, budget, eventual TagUnresponsive).
            let tag_listening = self.tag_can_listen();
            self.advance_tag(query_air_us, if tag_listening { LISTEN_LOAD_UW } else { 0.0 });
            if !tag_listening {
                rec.add("session.energy-missed-polls", 1);
                continue;
            }
            let dl = DownlinkConfig {
                distance_m: self.cfg.tag_distance_m,
                bit_rate_bps: self.cfg.downlink_bps,
                tx_dbm: bs_channel::calib::READER_TX_DBM,
                seed: self.rng.next_u64_seed(),
                faults: self.cfg.faults.clone(),
                phy: self.cfg.phy.clone(),
            };
            let (got, dl_report) = run_downlink_frame_with(&dl, &query_frame, rec);
            report.merge(&dl_report);
            if let Some(frame) = got {
                if Query::from_frame(&frame).as_ref() == Some(&query) {
                    delivered = true;
                    break;
                }
            }
        }
        if !delivered {
            return Err(err::SessionError::TagUnresponsive {
                attempts: query_attempts,
            });
        }

        // Decode the response; retry (backed off, budget-gated), then fall
        // back to the coded mode.
        let mut best_errors = u64::MAX;
        let mut response_attempts = 0;
        for attempt in 0..self.cfg.max_response_attempts {
            if attempt > 0 {
                let backoff = retry.backoff_us(attempt);
                waited_us += backoff;
                self.idle_us(backoff);
                if !retry.within_budget(waited_us) {
                    break;
                }
            }
            response_attempts += 1;
            rec.add("session.response-attempts", 1);
            // Audit note: the budget charge used to assume the presence
            // capture's 1.2 s conditioning lead for every PHY; the
            // capabilities now own the per-mode formula.
            let response_air_us = caps.response_air_us(tag_payload.len(), bit_rate, 1);
            waited_us += response_air_us;
            // A tag that cannot fund its transmitter stays silent for
            // this attempt (it may still be listening and charging).
            let tag_responding = self.tag_can_respond();
            self.advance_tag(
                response_air_us,
                if tag_responding {
                    RESPOND_LOAD_UW
                } else if self.tag_can_listen() {
                    LISTEN_LOAD_UW
                } else {
                    0.0
                },
            );
            if !tag_responding {
                rec.add("session.energy-missed-polls", 1);
                continue;
            }
            let run = self.run_response(tag_payload, bit_rate, 1, rec);
            report.merge(&run.degradation);
            if run.perfect() {
                report.merge(&self.ack(tag_address, rec));
                return Ok(QueryOutcome {
                    payload: tag_payload.to_vec(),
                    bit_rate_bps: bit_rate,
                    query_attempts,
                    response_attempts,
                    used_fallback: false,
                    degradation: report,
                    waited_us,
                    obs: None,
                });
            }
            best_errors = best_errors.min(run.ber.errors());
        }

        // Long-range fallback (§3.4), if this PHY has one, it is enabled,
        // and the budget affords it. Audit note: the gate used to test
        // only `fallback_code_length`, silently running the presence
        // coded decoder whatever the PHY; orthogonal chip spreading is a
        // presence-mode mechanism, so `PhyCapabilities::coded_fallback`
        // now guards it.
        if caps.coded_fallback
            && self.cfg.fallback_code_length > 1
            && retry.within_budget(waited_us)
            && self.tag_can_respond()
        {
            response_attempts += 1;
            rec.add("session.response-attempts", 1);
            rec.add("session.fallback-engaged", 1);
            let fallback_air_us = caps.response_air_us(
                tag_payload.len(),
                bit_rate,
                self.cfg.fallback_code_length,
            );
            waited_us += fallback_air_us;
            self.advance_tag(fallback_air_us, RESPOND_LOAD_UW);
            let run = self.run_response(tag_payload, bit_rate, self.cfg.fallback_code_length, rec);
            report.merge(&run.degradation);
            if run.perfect() {
                report.merge(&self.ack(tag_address, rec));
                return Ok(QueryOutcome {
                    payload: tag_payload.to_vec(),
                    bit_rate_bps: bit_rate,
                    query_attempts,
                    response_attempts,
                    used_fallback: true,
                    degradation: report,
                    waited_us,
                    obs: None,
                });
            }
            best_errors = best_errors.min(run.ber.errors());
        }

        Err(err::SessionError::ResponseGarbled {
            best_bit_errors: best_errors,
        })
    }

    /// The uplink decoder this session would apply to a plain
    /// (uncoded) `payload_bits`-bit response: the §5 rate selection and
    /// the CSI/RSSI measurement mapping are exactly what the link layer's
    /// decode path uses, so a capture decoded through this decoder
    /// matches the session's own decoding bit for bit.
    ///
    /// This is a presence-PHY instrument — the codeword mode has no
    /// CSI/RSSI capture to re-decode — so it always mirrors the
    /// presence-configured session.
    pub fn response_decoder(&self, payload_bits: usize) -> UplinkDecoder {
        let bit_rate = crate::protocol::select_bit_rate(
            self.cfg.helper_pps,
            self.cfg.pkts_per_bit,
            self.cfg.rate_margin,
        );
        let dcfg = match self.cfg.measurement {
            Measurement::Csi => UplinkDecoderConfig::csi(bit_rate, payload_bits),
            Measurement::Rssi => UplinkDecoderConfig::rssi(bit_rate, payload_bits),
        };
        UplinkDecoder::new(dcfg)
    }

    /// Opens a streaming decode session for an expected response —
    /// [`Self::response_decoder`] composed with
    /// [`UplinkDecoder::stream`]. On hardware this is the entry point
    /// that consumes live per-packet CSI/RSSI as it arrives; packets are
    /// pushed with [`UplinkStream::feed_packet`] and the frame decoded on
    /// [`UplinkStream::finish`], bit-identical to batch-decoding the
    /// same capture.
    pub fn response_stream(
        &self,
        payload_bits: usize,
        channels: usize,
        start_hint_us: u64,
    ) -> UplinkStream {
        self.response_decoder(payload_bits).stream(channels, start_hint_us)
    }

    /// One uplink exchange at the current deployment geometry.
    ///
    /// Every retry/fallback attempt is a *fresh* capture (new seed, new
    /// packets), so there is nothing to share between attempts here; the
    /// per-capture [`crate::series::SlotIndex`] reuse — one conditioning
    /// pass and one set of slot statistics serving every drift-stretch
    /// re-decode of the same bundle — happens inside
    /// [`run_uplink_with`]'s decode loop.
    fn run_response(
        &mut self,
        payload: &[bool],
        bit_rate: u64,
        code_length: usize,
        rec: &mut dyn Recorder,
    ) -> UplinkRun {
        let mut cfg = LinkConfig::fig10(
            self.cfg.tag_distance_m,
            bit_rate,
            self.cfg.pkts_per_bit,
            self.rng.next_u64_seed(),
        );
        cfg.helper_pps = self.cfg.helper_pps;
        cfg.measurement = self.cfg.measurement;
        cfg.payload = payload.to_vec();
        cfg.code_length = code_length;
        cfg.faults = self.cfg.faults.clone();
        cfg.mitigations = self.cfg.mitigations;
        cfg.phy = self.cfg.phy.clone();
        run_uplink_with(&cfg, rec)
    }

    /// Sends the ACK (best effort; §4.1 notes it is a single short
    /// message) and reports what faults hit it.
    fn ack(&mut self, tag_address: u8, rec: &mut dyn Recorder) -> DegradationReport {
        let dl = DownlinkConfig {
            distance_m: self.cfg.tag_distance_m,
            bit_rate_bps: self.cfg.downlink_bps,
            tx_dbm: bs_channel::calib::READER_TX_DBM,
            seed: self.rng.next_u64_seed(),
            faults: self.cfg.faults.clone(),
            phy: self.cfg.phy.clone(),
        };
        let (_, report) = run_downlink_frame_with(&dl, &Ack { tag_address }.to_frame(), rec);
        report
    }
}

/// Small extension so the session can mint per-attempt seeds.
trait NextSeed {
    fn next_u64_seed(&mut self) -> u64;
}

impl NextSeed for SimRng {
    fn next_u64_seed(&mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::{Reader, ReaderConfig};
    use crate::error::SessionError;

    fn payload(n: usize) -> Vec<bool> {
        (0..n).map(|i| (i * 11) % 4 < 2).collect()
    }

    #[test]
    fn close_range_query_succeeds_first_try() {
        let mut r = Reader::new(ReaderConfig::default(), 1);
        let p = payload(24);
        let out = r.query(0x07, &p).expect("query failed");
        assert_eq!(out.payload, p);
        assert_eq!(out.query_attempts, 1);
        assert!(!out.used_fallback);
        assert!(out.bit_rate_bps >= 100);
        assert!(out.obs.is_none(), "plain query must not attach obs");
    }

    #[test]
    fn rate_selection_follows_load() {
        let mut slow = Reader::new(
            ReaderConfig {
                helper_pps: 600.0,
                ..Default::default()
            },
            2,
        );
        let mut fast = Reader::new(
            ReaderConfig {
                helper_pps: 6_000.0,
                ..Default::default()
            },
            3,
        );
        let p = payload(16);
        let a = slow.query(1, &p).unwrap();
        let b = fast.query(1, &p).unwrap();
        assert!(b.bit_rate_bps > a.bit_rate_bps, "{} vs {}", b.bit_rate_bps, a.bit_rate_bps);
    }

    #[test]
    fn mid_range_uses_fallback() {
        // 1.3 m: the plain decoder is unreliable, the L=20 fallback works.
        let mut r = Reader::new(
            ReaderConfig {
                tag_distance_m: 1.3,
                pkts_per_bit: 10,
                max_response_attempts: 1,
                fallback_code_length: 24,
                ..Default::default()
            },
            4,
        );
        let p = payload(12);
        match r.query(2, &p) {
            Ok(out) => {
                assert_eq!(out.payload, p);
                // Either the plain attempt got lucky or the fallback fired;
                // both count, but across seeds the fallback dominates.
            }
            Err(e) => panic!("query failed at 1.3 m: {e}"),
        }
    }

    #[test]
    fn out_of_downlink_range_reports_unresponsive() {
        let mut r = Reader::new(
            ReaderConfig {
                tag_distance_m: 6.0, // far past the downlink's ~3 m
                max_query_attempts: 3,
                ..Default::default()
            },
            5,
        );
        match r.query(3, &payload(8)) {
            Err(SessionError::TagUnresponsive { attempts }) => assert_eq!(attempts, 3),
            other => panic!("expected TagUnresponsive, got {other:?}"),
        }
    }

    #[test]
    fn marginal_downlink_retries_then_succeeds() {
        // 2.9 m: some query attempts fail, retries recover.
        let mut r = Reader::new(
            ReaderConfig {
                tag_distance_m: 2.9,
                max_query_attempts: 30,
                // Uplink at 2.9 m needs the coded fallback generously.
                fallback_code_length: 80,
                pkts_per_bit: 10,
                max_response_attempts: 1,
                ..Default::default()
            },
            6,
        );
        match r.query(4, &payload(8)) {
            Ok(out) => assert!(out.query_attempts >= 1),
            // Garbled uplink at 2.9 m is acceptable; unresponsive downlink
            // with 30 attempts would indicate a retry bug.
            Err(SessionError::ResponseGarbled { .. }) => {}
            Err(e @ SessionError::TagUnresponsive { .. }) => {
                panic!("downlink retries failed: {e}")
            }
        }
    }

    #[test]
    fn observed_query_matches_plain_and_profiles() {
        let p = payload(24);
        let mut plain = Reader::new(ReaderConfig::default(), 1);
        let mut observed = Reader::new(ReaderConfig::default(), 1);
        let a = plain.query(0x07, &p).expect("plain query failed");
        let b = observed.query_observed(0x07, &p).expect("observed query failed");
        assert_eq!(a.payload, b.payload);
        assert_eq!(a.query_attempts, b.query_attempts);
        assert_eq!(a.waited_us, b.waited_us);
        assert_eq!(a.degradation, b.degradation);
        let obs = b.obs.expect("observed query must attach obs");
        assert!(obs.counter("session.query-attempts") >= 1);
        assert!(obs.counter("session.response-attempts") >= 1);
        assert!(!obs.spans.is_empty(), "expected stage spans");
    }

    #[test]
    fn response_decoder_mirrors_session_rate_and_measurement() {
        use crate::link::Measurement;
        use crate::protocol::select_bit_rate;
        use crate::uplink::Combining;
        let cfg = ReaderConfig::default();
        let rate = select_bit_rate(cfg.helper_pps, cfg.pkts_per_bit, cfg.rate_margin);
        let csi = Reader::new(cfg.clone(), 1).response_decoder(16);
        assert_eq!(csi.config().payload_bits, 16);
        assert_eq!(csi.config().bit_duration_us, (1_000_000 / rate).max(1));
        assert_eq!(csi.config().combining, Combining::Mrc);
        let rssi = Reader::new(cfg.with_measurement(Measurement::Rssi), 1).response_decoder(16);
        assert_eq!(rssi.config().combining, Combining::BestSingle);
    }

    #[test]
    fn response_stream_feeds_and_finishes() {
        let r = Reader::new(ReaderConfig::default(), 1);
        let mut s = r.response_stream(8, 2, 0);
        assert!(s.feed_packet(0, &[1.0, 2.0]).any());
        assert!(s.finish().is_none()); // one packet: no detection
    }

    #[test]
    fn builders_configure_session() {
        let cfg = ReaderConfig::default()
            .with_distance_m(1.1)
            .with_fallback_code_length(40);
        assert_eq!(cfg.tag_distance_m, 1.1);
        assert_eq!(cfg.fallback_code_length, 40);
    }

    #[test]
    fn always_powered_energy_matches_energy_less_session() {
        use bs_tag::energy::EnergyConfig;
        let p = payload(24);
        let mut bare = Reader::new(ReaderConfig::default(), 1);
        let mut powered = Reader::new(
            ReaderConfig::default().with_tag_energy(EnergyConfig::always_powered()),
            1,
        );
        let a = bare.query(0x07, &p).expect("bare query failed");
        let b = powered.query(0x07, &p).expect("powered query failed");
        assert_eq!(a.payload, b.payload);
        assert_eq!(a.query_attempts, b.query_attempts);
        assert_eq!(a.waited_us, b.waited_us);
        assert_eq!(a.degradation, b.degradation);
    }

    #[test]
    fn dead_tag_misses_every_poll() {
        use bs_dsp::obs::MemRecorder;
        use bs_tag::energy::{CapacitorConfig, EnergyConfig, EnergyPolicy};
        let mut r = Reader::new(
            ReaderConfig::default().with_tag_energy(EnergyConfig {
                capacitor: CapacitorConfig {
                    initial_fraction: 0.0,
                    ..CapacitorConfig::default()
                },
                harvest_uw: 0.0,
                policy: EnergyPolicy::SleepUntilCharged,
            }),
            1,
        );
        let mut rec = MemRecorder::new();
        match r.query_with(0x07, &payload(8), &mut rec) {
            Err(SessionError::TagUnresponsive { attempts }) => {
                assert_eq!(attempts, ReaderConfig::default().max_query_attempts)
            }
            other => panic!("expected TagUnresponsive, got {other:?}"),
        }
        let obs = rec.into_report();
        assert_eq!(
            obs.counter("session.energy-missed-polls"),
            u64::from(ReaderConfig::default().max_query_attempts),
            "every poll against a dead tag must be a recorded miss"
        );
    }

    #[test]
    fn charging_tag_recovers_across_poll_sequence() {
        use bs_tag::energy::{CapacitorConfig, EnergyConfig, EnergyPolicy, EnergyState};
        // Start flat with a strong harvest: early polls miss, and after
        // enough idle time the tag wakes and answers.
        let mut r = Reader::new(
            ReaderConfig::default().with_tag_energy(EnergyConfig {
                capacitor: CapacitorConfig {
                    initial_fraction: 0.0,
                    ..CapacitorConfig::default()
                },
                harvest_uw: 60.0,
                policy: EnergyPolicy::SleepUntilCharged,
            }),
            1,
        );
        assert!(r.query(0x07, &payload(8)).is_err(), "flat tag must miss");
        // ~3 s at ~59 µW net fills well past the 120 µJ wake threshold.
        r.idle_us(3_000_000);
        assert_eq!(r.tag_capacitor().unwrap().state(), EnergyState::Awake);
        let out = r.query(0x07, &payload(8)).expect("recovered tag must answer");
        assert_eq!(out.payload, payload(8));
    }

    #[test]
    fn error_display() {
        let e = SessionError::TagUnresponsive { attempts: 4 };
        assert!(e.to_string().contains('4'));
        let g = SessionError::ResponseGarbled { best_bit_errors: 9 };
        assert!(g.to_string().contains('9'));
    }

    #[test]
    fn codeword_session_selects_codeword_rate_and_charges_no_lead() {
        // Audit sites A + C: with a codeword PHY the session must pick
        // from the codeword rate table (not the presence 100..1000 bps
        // steps) and must not charge the presence capture's 1.2 s
        // conditioning lead per response attempt.
        use crate::phy::PhyConfig;
        let mut r = Reader::new(
            ReaderConfig {
                helper_pps: 3_000.0,
                phy: PhyConfig::codeword(),
                ..Default::default()
            },
            11,
        );
        let p = payload(24);
        let out = r.query(0x07, &p).expect("codeword query failed");
        assert_eq!(out.payload, p);
        assert_eq!(
            out.bit_rate_bps, 25_000,
            "3000 pps x 42 sym/frame / 4 sym-per-bit x 0.8 -> 25 kbps step"
        );
        assert!(!out.used_fallback);
        // One query + one response, no conditioning lead: far under the
        // 1.2 s a single presence response attempt alone would charge.
        assert!(
            out.waited_us < 1_200_000,
            "codeword budget charged a presence-style lead: {} us",
            out.waited_us
        );
    }

    #[test]
    fn codeword_session_never_engages_coded_fallback() {
        // Audit site B: orthogonal chip spreading is a presence-mode
        // mechanism; a codeword session must not run it even when the
        // plain response fails. A permanent helper outage starves the
        // codeword uplink of symbols while leaving the (reader-transmitted)
        // downlink alive, so the query is delivered but every response
        // attempt fails.
        use crate::phy::PhyConfig;
        use bs_channel::faults::{Fault, FaultPlan};
        use bs_dsp::obs::MemRecorder;
        let outage = FaultPlan::new(9).with(Fault::HelperOutage {
            period_us: 1_000_000_000,
            outage_us: 1_000_000_000,
        });
        let mut r = Reader::new(
            ReaderConfig {
                phy: PhyConfig::codeword(),
                faults: outage,
                fallback_code_length: 20, // would enable fallback on presence
                ..Default::default()
            },
            12,
        );
        let mut rec = MemRecorder::new();
        let got = r.query_with(0x07, &payload(16), &mut rec);
        assert!(
            matches!(got, Err(SessionError::ResponseGarbled { .. })),
            "expected a garbled response under total outage, got {got:?}"
        );
        let obs = rec.into_report();
        assert_eq!(
            obs.counter("session.fallback-engaged"),
            0,
            "codeword session must never run the presence coded fallback"
        );
    }

    #[test]
    fn presence_session_fallback_still_charges_attempt() {
        // Companion to the codeword gate above: the same outage on a
        // presence session must still engage (and count) the coded
        // fallback, proving the `coded_fallback` capability gate did not
        // disable the presence path.
        use bs_channel::faults::{Fault, FaultPlan};
        use bs_dsp::obs::MemRecorder;
        let outage = FaultPlan::new(9).with(Fault::HelperOutage {
            period_us: 1_000_000_000,
            outage_us: 1_000_000_000,
        });
        let mut r = Reader::new(
            ReaderConfig {
                faults: outage,
                fallback_code_length: 20,
                max_response_attempts: 1,
                ..Default::default()
            },
            13,
        );
        let mut rec = MemRecorder::new();
        let got = r.query_with(0x07, &payload(16), &mut rec);
        assert!(got.is_err(), "total outage should defeat presence too");
        let obs = rec.into_report();
        assert_eq!(
            obs.counter("session.fallback-engaged"),
            1,
            "presence session must still attempt the coded fallback"
        );
    }
}
