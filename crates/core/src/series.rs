//! Per-packet channel time series.
//!
//! The uplink decoder is agnostic to whether its input is CSI or RSSI: both
//! are "one value per packet per channel, with a MAC timestamp". A
//! [`SeriesBundle`] holds that shape; constructors adapt the two
//! measurement types. CSI yields 90 *virtual sub-channels* (30 sub-channels
//! × 3 antennas — the paper treats antennas as extra sub-channels, §3.2),
//! RSSI yields one series per antenna (§3.3).

use bs_wifi::{CsiMeasurement, RssiMeasurement};

/// A bundle of synchronized per-packet series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesBundle {
    /// MAC timestamp (µs) of each packet, ascending.
    pub t_us: Vec<u64>,
    /// `series[channel][packet]`.
    pub series: Vec<Vec<f64>>,
}

impl SeriesBundle {
    /// Builds the bundle from per-packet CSI measurements.
    ///
    /// # Panics
    /// Panics if measurements have inconsistent shapes.
    pub fn from_csi(measurements: &[CsiMeasurement]) -> Self {
        if measurements.is_empty() {
            return SeriesBundle {
                t_us: Vec::new(),
                series: Vec::new(),
            };
        }
        let channels = measurements[0].antennas() * measurements[0].subchannels();
        let mut series = vec![Vec::with_capacity(measurements.len()); channels];
        let mut t_us = Vec::with_capacity(measurements.len());
        for m in measurements {
            let flat = m.flat();
            assert_eq!(flat.len(), channels, "inconsistent CSI shape");
            for (c, v) in flat.into_iter().enumerate() {
                series[c].push(v);
            }
            t_us.push(m.timestamp_us);
        }
        SeriesBundle { t_us, series }
    }

    /// Builds the bundle from per-packet RSSI measurements (values in dBm;
    /// the decoder's conditioning normalises scale away).
    pub fn from_rssi(measurements: &[RssiMeasurement]) -> Self {
        if measurements.is_empty() {
            return SeriesBundle {
                t_us: Vec::new(),
                series: Vec::new(),
            };
        }
        let channels = measurements[0].antennas();
        let mut series = vec![Vec::with_capacity(measurements.len()); channels];
        let mut t_us = Vec::with_capacity(measurements.len());
        for m in measurements {
            assert_eq!(m.rssi_dbm.len(), channels, "inconsistent RSSI shape");
            for (c, &v) in m.rssi_dbm.iter().enumerate() {
                series[c].push(v);
            }
            t_us.push(m.timestamp_us);
        }
        SeriesBundle { t_us, series }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.series.len()
    }

    /// Number of packets.
    pub fn packets(&self) -> usize {
        self.t_us.len()
    }

    /// Median inter-packet gap (µs); 0 if fewer than two packets. Used to
    /// convert the paper's 400 ms conditioning window into a packet count.
    pub fn median_gap_us(&self) -> u64 {
        if self.t_us.len() < 2 {
            return 0;
        }
        let mut gaps: Vec<u64> = self.t_us.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.sort_unstable();
        gaps[gaps.len() / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csi(t: u64, val: f64) -> CsiMeasurement {
        CsiMeasurement {
            timestamp_us: t,
            amplitude: vec![vec![val; 4]; 2],
        }
    }

    #[test]
    fn from_csi_shapes() {
        let ms = vec![csi(0, 1.0), csi(100, 2.0), csi(250, 3.0)];
        let b = SeriesBundle::from_csi(&ms);
        assert_eq!(b.channels(), 8);
        assert_eq!(b.packets(), 3);
        assert_eq!(b.series[0], vec![1.0, 2.0, 3.0]);
        assert_eq!(b.t_us, vec![0, 100, 250]);
    }

    #[test]
    fn from_rssi_shapes() {
        let ms = vec![
            RssiMeasurement {
                timestamp_us: 5,
                rssi_dbm: vec![-40.0, -42.0],
            },
            RssiMeasurement {
                timestamp_us: 15,
                rssi_dbm: vec![-41.0, -43.0],
            },
        ];
        let b = SeriesBundle::from_rssi(&ms);
        assert_eq!(b.channels(), 2);
        assert_eq!(b.series[1], vec![-42.0, -43.0]);
    }

    #[test]
    fn empty_inputs() {
        let b = SeriesBundle::from_csi(&[]);
        assert_eq!(b.channels(), 0);
        assert_eq!(b.packets(), 0);
        assert_eq!(b.median_gap_us(), 0);
        let r = SeriesBundle::from_rssi(&[]);
        assert_eq!(r.channels(), 0);
    }

    #[test]
    fn median_gap() {
        let ms = vec![csi(0, 0.0), csi(10, 0.0), csi(30, 0.0), csi(35, 0.0), csi(100, 0.0)];
        let b = SeriesBundle::from_csi(&ms);
        // gaps: 10, 20, 5, 65 → sorted 5,10,20,65 → median idx 2 = 20.
        assert_eq!(b.median_gap_us(), 20);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn inconsistent_shape_panics() {
        let a = csi(0, 1.0);
        let b = CsiMeasurement {
            timestamp_us: 1,
            amplitude: vec![vec![0.0; 3]; 2],
        };
        SeriesBundle::from_csi(&[a, b]);
    }
}
