//! Per-packet channel time series.
//!
//! The uplink decoder is agnostic to whether its input is CSI or RSSI: both
//! are "one value per packet per channel, with a MAC timestamp". A
//! [`SeriesBundle`] holds that shape; constructors adapt the two
//! measurement types. CSI yields 90 *virtual sub-channels* (30 sub-channels
//! × 3 antennas — the paper treats antennas as extra sub-channels, §3.2),
//! RSSI yields one series per antenna (§3.3).

use bs_dsp::filter::condition;
use bs_dsp::slotstats::{SlotPartition, SlotStats};
use bs_dsp::stream::{Consumed, CountMedian};
use bs_wifi::{CsiMeasurement, RssiMeasurement};
use std::ops::Range;
use std::rc::Rc;

/// A bundle of synchronized per-packet series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesBundle {
    /// MAC timestamp (µs) of each packet, ascending.
    pub t_us: Vec<u64>,
    /// `series[channel][packet]`.
    pub series: Vec<Vec<f64>>,
}

impl SeriesBundle {
    /// Builds the bundle from per-packet CSI measurements.
    ///
    /// # Panics
    /// Panics if measurements have inconsistent shapes.
    pub fn from_csi(measurements: &[CsiMeasurement]) -> Self {
        if measurements.is_empty() {
            return SeriesBundle {
                t_us: Vec::new(),
                series: Vec::new(),
            };
        }
        let channels = measurements[0].antennas() * measurements[0].subchannels();
        let mut series = vec![Vec::with_capacity(measurements.len()); channels];
        let mut t_us = Vec::with_capacity(measurements.len());
        for m in measurements {
            let flat = m.flat();
            assert_eq!(flat.len(), channels, "inconsistent CSI shape");
            for (c, v) in flat.into_iter().enumerate() {
                series[c].push(v);
            }
            t_us.push(m.timestamp_us);
        }
        SeriesBundle { t_us, series }
    }

    /// Builds the bundle from per-packet RSSI measurements (values in dBm;
    /// the decoder's conditioning normalises scale away).
    pub fn from_rssi(measurements: &[RssiMeasurement]) -> Self {
        if measurements.is_empty() {
            return SeriesBundle {
                t_us: Vec::new(),
                series: Vec::new(),
            };
        }
        let channels = measurements[0].antennas();
        let mut series = vec![Vec::with_capacity(measurements.len()); channels];
        let mut t_us = Vec::with_capacity(measurements.len());
        for m in measurements {
            assert_eq!(m.rssi_dbm.len(), channels, "inconsistent RSSI shape");
            for (c, &v) in m.rssi_dbm.iter().enumerate() {
                series[c].push(v);
            }
            t_us.push(m.timestamp_us);
        }
        SeriesBundle { t_us, series }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.series.len()
    }

    /// Number of packets.
    pub fn packets(&self) -> usize {
        self.t_us.len()
    }

    /// Median inter-packet gap (µs); 0 if fewer than two packets. Used to
    /// convert the paper's 400 ms conditioning window into a packet count.
    pub fn median_gap_us(&self) -> u64 {
        if self.t_us.len() < 2 {
            return 0;
        }
        let mut gaps: Vec<u64> = self.t_us.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.sort_unstable();
        gaps[gaps.len() / 2]
    }
}

/// Streaming builder for a [`SeriesBundle`]: packets are fed one at a
/// time (or in bundle-sized bursts) as they arrive on the air, with
/// explicit backpressure when a capacity bound is set.
///
/// This is the buffering half of the streaming decode path
/// (`UplinkDecoder::stream()` / `feed()` / `finish()`): a tag session is
/// one bounded frame, so the accumulator retains the session's packets —
/// O(1) memory *per tag session* — and `finish()` hands the completed
/// bundle to the batch decode chain, which is what makes streaming
/// bit-identical to batch by construction (the decoder's normalisation
/// scale and conditioning window are functions of the whole session; see
/// DESIGN.md §5 "Streaming decode").
///
/// The inter-arrival median the decoder derives its conditioning window
/// from is maintained incrementally ([`CountMedian`]), and equals the
/// batch [`SeriesBundle::median_gap_us`] exactly at every point.
#[derive(Debug, Clone)]
pub struct SeriesAccumulator {
    t_us: Vec<u64>,
    series: Vec<Vec<f64>>,
    capacity: Option<usize>,
    peak_resident: usize,
    gaps: CountMedian,
}

impl SeriesAccumulator {
    /// An unbounded accumulator for `channels` synchronized series.
    pub fn new(channels: usize) -> Self {
        SeriesAccumulator {
            t_us: Vec::new(),
            series: vec![Vec::new(); channels],
            capacity: None,
            peak_resident: 0,
            gaps: CountMedian::new(),
        }
    }

    /// An accumulator that accepts at most `max_packets` packets; further
    /// feeds report zero accepted (explicit backpressure) until the
    /// session is finished.
    pub fn with_capacity(channels: usize, max_packets: usize) -> Self {
        SeriesAccumulator {
            capacity: Some(max_packets),
            ..Self::new(channels)
        }
    }

    /// Number of channels the accumulator was created for.
    pub fn channels(&self) -> usize {
        self.series.len()
    }

    /// Packets accepted so far.
    pub fn packets(&self) -> usize {
        self.t_us.len()
    }

    /// The capacity bound, if one was set.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// High-water mark of resident packets. The accumulator never evicts
    /// (a session is one frame), so this equals [`Self::packets`]; it is
    /// reported separately so capacity planning reads the same metric a
    /// windowed variant would expose.
    pub fn peak_resident(&self) -> usize {
        self.peak_resident
    }

    /// Median inter-packet gap (µs) of everything fed so far — exactly
    /// [`SeriesBundle::median_gap_us`] of the equivalent batch bundle,
    /// maintained incrementally.
    pub fn median_gap_us(&self) -> u64 {
        if self.t_us.len() < 2 {
            return 0;
        }
        self.gaps.median().unwrap_or(0)
    }

    /// Offers one packet (its timestamp and one value per channel).
    /// Returns [`Consumed::none`] — the packet is **not** buffered — if
    /// the accumulator is at capacity or the timestamp would break the
    /// ascending axis the decoders rely on.
    ///
    /// # Panics
    /// Panics if `values` does not have one entry per channel.
    pub fn feed_packet(&mut self, t_us: u64, values: &[f64]) -> Consumed {
        assert_eq!(
            values.len(),
            self.channels(),
            "packet shape does not match accumulator channels"
        );
        if self.capacity.is_some_and(|c| self.t_us.len() >= c) {
            return Consumed::none();
        }
        if self.t_us.last().is_some_and(|&last| t_us < last) {
            return Consumed::none();
        }
        if let Some(&last) = self.t_us.last() {
            self.gaps.push(t_us - last);
        }
        self.t_us.push(t_us);
        for (s, &v) in self.series.iter_mut().zip(values) {
            s.push(v);
        }
        self.peak_resident = self.peak_resident.max(self.t_us.len());
        Consumed::all(1)
    }

    /// Offers every packet of `bundle` in order; returns how many were
    /// accepted (a prefix — feeding stops at the first rejection). The
    /// bulk path appends whole column slices, which is what lets the
    /// batch `decode()` route through feed/finish at memcpy cost.
    ///
    /// # Panics
    /// Panics if a non-empty bundle's channel count differs.
    pub fn feed(&mut self, bundle: &SeriesBundle) -> Consumed {
        if bundle.packets() == 0 {
            return Consumed::all(0);
        }
        assert_eq!(
            bundle.channels(),
            self.channels(),
            "bundle shape does not match accumulator channels"
        );
        let free = self
            .capacity
            .map_or(usize::MAX, |c| c.saturating_sub(self.t_us.len()));
        let mut take = bundle.packets().min(free);
        if let (Some(&last), Some(&first)) = (self.t_us.last(), bundle.t_us.first()) {
            if first < last {
                take = 0;
            }
        }
        if take == 0 {
            return Consumed::none();
        }
        if let (Some(&last), Some(&first)) = (self.t_us.last(), bundle.t_us.first()) {
            self.gaps.push(first - last);
        }
        for w in bundle.t_us[..take].windows(2) {
            self.gaps.push(w[1] - w[0]);
        }
        self.t_us.extend_from_slice(&bundle.t_us[..take]);
        for (s, col) in self.series.iter_mut().zip(&bundle.series) {
            s.extend_from_slice(&col[..take]);
        }
        self.peak_resident = self.peak_resident.max(self.t_us.len());
        Consumed::all(take)
    }

    /// Completes the session, yielding the batch bundle.
    pub fn into_bundle(self) -> SeriesBundle {
        SeriesBundle {
            t_us: self.t_us,
            series: self.series,
        }
    }
}

/// A per-bundle slot-statistics index: caches the conditioned channel
/// series and per-(bit-duration, phase) slot partitions with per-channel
/// binned statistics, so that the decoders' repeated window queries —
/// slot means for preamble/postamble correlation, within-slot variances
/// for MRC weights, majority-vote packet ranges — cost O(slots) after a
/// single O(packets) pass instead of one full scan each.
///
/// One index serves *all* decode attempts over the same capture: the
/// alignment search's candidates (which share at most two slot phases per
/// bit duration), the drift re-scan's stretched re-decodes (which share
/// the conditioned series — conditioning depends only on the window and
/// packet cadence, not the bit clock), and the long-range fallback.
///
/// Everything served from the index is **bit-exact** against the naive
/// full-scan formulations (see [`bs_dsp::slotstats`] for the contract):
/// the decoders' `decode_reference` paths exist to keep that honest.
#[derive(Debug)]
pub struct SlotIndex<'a> {
    bundle: &'a SeriesBundle,
    /// Conditioned series keyed by the conditioning half-window (packets).
    cond: Vec<(usize, Rc<Vec<Vec<f64>>>)>,
    grids: Vec<Grid>,
    visits: u64,
}

/// One slot grid: a fixed bit duration and slot phase (`base % width`)
/// over the bundle's timestamp axis, with lazily built per-channel stats.
#[derive(Debug)]
struct Grid {
    width_us: u64,
    residue_us: u64,
    partition: SlotPartition,
    stats: Vec<StatsEntry>,
}

/// Per-channel statistics for one conditioning half-window over a grid.
#[derive(Debug)]
struct StatsEntry {
    half: usize,
    per_channel: Vec<Option<SlotStats>>,
}

impl<'a> SlotIndex<'a> {
    /// Creates an (empty) index over a bundle; everything is built lazily
    /// on first use and cached for the bundle's lifetime.
    pub fn new(bundle: &'a SeriesBundle) -> Self {
        SlotIndex {
            bundle,
            cond: Vec::new(),
            grids: Vec::new(),
            visits: 0,
        }
    }

    /// The underlying bundle.
    pub fn bundle(&self) -> &'a SeriesBundle {
        self.bundle
    }

    /// Work meter: packets scanned building caches plus slots read
    /// answering queries. The decoders report the per-stage delta as obs
    /// span items, which is how the benches verify the alignment search
    /// stays O(packets + candidates·slots) instead of O(candidates·packets).
    pub fn visits(&self) -> u64 {
        self.visits
    }

    /// The conditioned series for a given conditioning half-window
    /// (packets), built once per distinct half-window and shared by every
    /// decode attempt on this capture.
    pub fn conditioned(&mut self, half: usize) -> Rc<Vec<Vec<f64>>> {
        if let Some((_, c)) = self.cond.iter().find(|(h, _)| *h == half) {
            return Rc::clone(c);
        }
        let cond: Vec<Vec<f64>> = self
            .bundle
            .series
            .iter()
            .map(|s| condition(s, half))
            .collect();
        self.visits += (self.bundle.channels() * self.bundle.packets()) as u64;
        let rc = Rc::new(cond);
        self.cond.push((half, Rc::clone(&rc)));
        rc
    }

    /// The contiguous packet-index range with `start_us ≤ t < end_us`
    /// (binary search on the ascending timestamp axis).
    pub fn packet_range(&self, start_us: u64, end_us: u64) -> Range<usize> {
        let lo = self.bundle.t_us.partition_point(|&t| t < start_us);
        let hi = self.bundle.t_us.partition_point(|&t| t < end_us);
        lo..hi.max(lo)
    }

    /// Pre-sizes the grid for slot width `width_us` and the phase of
    /// `start_us` to cover `[start_us, end_us)`. Callers that know their
    /// full query span up front (e.g. the alignment search, which asks
    /// about every candidate of a phase class) should call this once so
    /// the per-channel statistics are built over the union coverage
    /// instead of being rebuilt as the coverage grows.
    pub fn ensure_grid(&mut self, width_us: u64, start_us: u64, end_us: u64) {
        self.grid_idx(width_us, start_us, end_us);
    }

    /// Per-slot means of one conditioned channel over
    /// `[start_us, start_us + n_slots·width_us)`; `None` if any slot is
    /// empty — the same contract as the reference decoder's full-scan
    /// binning, and bit-exact against it.
    pub fn slot_means(
        &mut self,
        half: usize,
        channel: usize,
        start_us: u64,
        width_us: u64,
        n_slots: usize,
    ) -> Option<Vec<f64>> {
        let (gi, k0) = self.stats_at(half, channel, start_us, width_us, n_slots);
        let stats = self.grids[gi].stats_for(half, channel);
        self.visits += n_slots as u64;
        let mut means = Vec::with_capacity(n_slots);
        for k in k0..k0 + n_slots {
            means.push(stats.mean(k)?);
        }
        Some(means)
    }

    /// Mean within-slot variance of one conditioned channel over the
    /// window — the σ² of the paper's MRC weights; slots with < 2 packets
    /// are excluded, 1.0 if none qualify (matching the reference path).
    pub fn residual_variance(
        &mut self,
        half: usize,
        channel: usize,
        start_us: u64,
        width_us: u64,
        n_slots: usize,
    ) -> f64 {
        let (gi, k0) = self.stats_at(half, channel, start_us, width_us, n_slots);
        let stats = self.grids[gi].stats_for(half, channel);
        self.visits += n_slots as u64;
        let mut var_sum = 0.0;
        let mut n = 0usize;
        for k in k0..k0 + n_slots {
            if stats.count(k) >= 2 {
                var_sum += stats.variance(k);
                n += 1;
            }
        }
        if n == 0 {
            1.0
        } else {
            var_sum / n as f64
        }
    }

    /// Ensures grid + per-channel stats exist for the query window and
    /// returns `(grid index, first slot index of start_us)`.
    fn stats_at(
        &mut self,
        half: usize,
        channel: usize,
        start_us: u64,
        width_us: u64,
        n_slots: usize,
    ) -> (usize, usize) {
        // Materialise the conditioned series first (separate Rc, so the
        // grid borrow below cannot alias it).
        let cond = self.conditioned(half);
        let end = start_us.saturating_add((n_slots as u64).saturating_mul(width_us));
        let gi = self.grid_idx(width_us, start_us, end);
        let channels = self.bundle.channels();
        let grid = &mut self.grids[gi];
        let coverage = grid.partition.coverage_len() as u64;
        let ei = match grid.stats.iter().position(|e| e.half == half) {
            Some(i) => i,
            None => {
                grid.stats.push(StatsEntry {
                    half,
                    per_channel: vec![None; channels],
                });
                grid.stats.len() - 1
            }
        };
        if grid.stats[ei].per_channel[channel].is_none() {
            let built = SlotStats::build(&grid.partition, &cond[channel]);
            grid.stats[ei].per_channel[channel] = Some(built);
            self.visits += coverage;
        }
        let k0 = ((start_us - grid.partition.base_us()) / width_us) as usize;
        (gi, k0)
    }

    /// Finds (or builds / extends) the grid for `width_us` and the phase
    /// of `start_us`, covering at least `[start_us, end_us)`.
    fn grid_idx(&mut self, width_us: u64, start_us: u64, end_us: u64) -> usize {
        let residue = start_us % width_us;
        let idx = self
            .grids
            .iter()
            .position(|g| g.width_us == width_us && g.residue_us == residue);
        match idx {
            Some(i) => {
                // Cheap Rc clones so built stats can be re-derived below
                // without re-borrowing self.
                let cond_cache = self.cond.clone();
                let g = &mut self.grids[i];
                let base = g.partition.base_us().min(start_us);
                let cur_end = g
                    .partition
                    .base_us()
                    .saturating_add((g.partition.n_slots() as u64).saturating_mul(width_us));
                if base < g.partition.base_us() {
                    // Coverage grew on the low side: the slot anchor
                    // moved, so every slot re-bins — rebuild the
                    // partition over the union and invalidate the
                    // per-channel stats.
                    let end = cur_end.max(end_us);
                    let n_slots = (end - base).div_ceil(width_us) as usize;
                    g.partition = SlotPartition::build(&self.bundle.t_us, base, width_us, n_slots);
                    g.stats.clear();
                    self.visits += g.partition.coverage_len() as u64;
                } else if end_us > cur_end {
                    // Coverage grew on the high side only: the anchor is
                    // unchanged, so extend the partition incrementally
                    // and re-derive just the changed tail of every built
                    // per-channel statistic (bitwise identical to a full
                    // rebuild — see SlotStats::extend).
                    let n_slots = (end_us - base).div_ceil(width_us) as usize;
                    let from = g.partition.extend(&self.bundle.t_us, n_slots);
                    let tail_cov = if from < n_slots {
                        (g.partition.slot_range(n_slots - 1).end
                            - g.partition.slot_range(from).start) as u64
                    } else {
                        0
                    };
                    self.visits += tail_cov;
                    for e in &mut g.stats {
                        let cond = cond_cache
                            .iter()
                            .find(|(h, _)| *h == e.half)
                            .map(|(_, c)| Rc::clone(c))
                            .expect("stats were built from a cached conditioning");
                        for (ch, slot) in e.per_channel.iter_mut().enumerate() {
                            if let Some(stats) = slot {
                                stats.extend(&g.partition, &cond[ch], from);
                                self.visits += tail_cov;
                            }
                        }
                    }
                }
                i
            }
            None => {
                let n_slots = (end_us.max(start_us) - start_us).div_ceil(width_us) as usize;
                let partition =
                    SlotPartition::build(&self.bundle.t_us, start_us, width_us, n_slots);
                self.visits += partition.coverage_len() as u64;
                self.grids.push(Grid {
                    width_us,
                    residue_us: residue,
                    partition,
                    stats: Vec::new(),
                });
                self.grids.len() - 1
            }
        }
    }
}

impl Grid {
    /// The built stats for (half, channel); callers must have gone
    /// through [`SlotIndex::stats_at`] first.
    fn stats_for(&self, half: usize, channel: usize) -> &SlotStats {
        self.stats
            .iter()
            .find(|e| e.half == half)
            .and_then(|e| e.per_channel[channel].as_ref())
            .expect("stats_at builds before reads")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csi(t: u64, val: f64) -> CsiMeasurement {
        CsiMeasurement {
            timestamp_us: t,
            amplitude: vec![vec![val; 4]; 2],
        }
    }

    #[test]
    fn from_csi_shapes() {
        let ms = vec![csi(0, 1.0), csi(100, 2.0), csi(250, 3.0)];
        let b = SeriesBundle::from_csi(&ms);
        assert_eq!(b.channels(), 8);
        assert_eq!(b.packets(), 3);
        assert_eq!(b.series[0], vec![1.0, 2.0, 3.0]);
        assert_eq!(b.t_us, vec![0, 100, 250]);
    }

    #[test]
    fn from_rssi_shapes() {
        let ms = vec![
            RssiMeasurement {
                timestamp_us: 5,
                rssi_dbm: vec![-40.0, -42.0],
            },
            RssiMeasurement {
                timestamp_us: 15,
                rssi_dbm: vec![-41.0, -43.0],
            },
        ];
        let b = SeriesBundle::from_rssi(&ms);
        assert_eq!(b.channels(), 2);
        assert_eq!(b.series[1], vec![-42.0, -43.0]);
    }

    #[test]
    fn empty_inputs() {
        let b = SeriesBundle::from_csi(&[]);
        assert_eq!(b.channels(), 0);
        assert_eq!(b.packets(), 0);
        assert_eq!(b.median_gap_us(), 0);
        let r = SeriesBundle::from_rssi(&[]);
        assert_eq!(r.channels(), 0);
    }

    #[test]
    fn median_gap() {
        let ms = vec![csi(0, 0.0), csi(10, 0.0), csi(30, 0.0), csi(35, 0.0), csi(100, 0.0)];
        let b = SeriesBundle::from_csi(&ms);
        // gaps: 10, 20, 5, 65 → sorted 5,10,20,65 → median idx 2 = 20.
        assert_eq!(b.median_gap_us(), 20);
    }

    #[test]
    fn accumulator_feed_packet_matches_batch_bundle() {
        let ms = vec![csi(0, 1.0), csi(10, 2.0), csi(30, 3.0), csi(35, 4.0), csi(100, 5.0)];
        let batch = SeriesBundle::from_csi(&ms);
        let mut acc = SeriesAccumulator::new(batch.channels());
        for p in 0..batch.packets() {
            let values: Vec<f64> = batch.series.iter().map(|s| s[p]).collect();
            assert_eq!(acc.feed_packet(batch.t_us[p], &values).accepted, 1);
            assert_eq!(acc.median_gap_us(), {
                let partial = SeriesBundle {
                    t_us: batch.t_us[..=p].to_vec(),
                    series: batch.series.iter().map(|s| s[..=p].to_vec()).collect(),
                };
                partial.median_gap_us()
            });
        }
        assert_eq!(acc.peak_resident(), batch.packets());
        assert_eq!(acc.into_bundle(), batch);
    }

    #[test]
    fn accumulator_rejects_out_of_order_and_respects_capacity() {
        let mut acc = SeriesAccumulator::with_capacity(1, 2);
        assert_eq!(acc.capacity(), Some(2));
        assert_eq!(acc.feed_packet(100, &[1.0]).accepted, 1);
        // Out of order: rejected, not buffered.
        assert_eq!(acc.feed_packet(50, &[9.0]).accepted, 0);
        assert_eq!(acc.feed_packet(200, &[2.0]).accepted, 1);
        // At capacity: backpressure.
        assert!(!acc.feed_packet(300, &[3.0]).any());
        let b = acc.into_bundle();
        assert_eq!(b.t_us, vec![100, 200]);
        assert_eq!(b.series[0], vec![1.0, 2.0]);
    }

    #[test]
    fn accumulator_bulk_feed_takes_prefix_up_to_capacity() {
        let ms = vec![csi(0, 1.0), csi(10, 2.0), csi(20, 3.0), csi(30, 4.0)];
        let bundle = SeriesBundle::from_csi(&ms);
        let mut acc = SeriesAccumulator::with_capacity(bundle.channels(), 3);
        let c = acc.feed(&bundle);
        assert_eq!(c.accepted, 3);
        assert_eq!(acc.packets(), 3);
        // Further feeds are refused outright.
        assert!(!acc.feed(&bundle).any());
        let got = acc.into_bundle();
        assert_eq!(got.t_us, vec![0, 10, 20]);
        assert_eq!(got.median_gap_us(), 10);
    }

    #[test]
    fn accumulator_bulk_feed_matches_batch_and_tracks_seam_gap() {
        let ms = vec![csi(0, 1.0), csi(10, 2.0), csi(30, 3.0), csi(35, 4.0), csi(100, 5.0)];
        let batch = SeriesBundle::from_csi(&ms);
        let first = SeriesBundle {
            t_us: batch.t_us[..2].to_vec(),
            series: batch.series.iter().map(|s| s[..2].to_vec()).collect(),
        };
        let rest = SeriesBundle {
            t_us: batch.t_us[2..].to_vec(),
            series: batch.series.iter().map(|s| s[2..].to_vec()).collect(),
        };
        let mut acc = SeriesAccumulator::new(batch.channels());
        assert_eq!(acc.feed(&first).accepted, 2);
        assert_eq!(acc.feed(&rest).accepted, 3);
        assert_eq!(acc.median_gap_us(), batch.median_gap_us());
        assert_eq!(acc.into_bundle(), batch);
    }

    #[test]
    #[should_panic(expected = "shape does not match")]
    fn accumulator_wrong_shape_panics() {
        let mut acc = SeriesAccumulator::new(3);
        acc.feed_packet(0, &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn inconsistent_shape_panics() {
        let a = csi(0, 1.0);
        let b = CsiMeasurement {
            timestamp_us: 1,
            amplitude: vec![vec![0.0; 3]; 2],
        };
        SeriesBundle::from_csi(&[a, b]);
    }
}
