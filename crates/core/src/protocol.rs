//! The query-response link protocol (§2, §5).
//!
//! Wi-Fi Backscatter follows a request-response model like RFID: the reader
//! queries the tag on the downlink; the tag answers on the uplink at the
//! bit rate the query commanded. The reader picks that rate from the
//! current network conditions: if the helper delivers N packets/s and the
//! decoder wants M packets per bit, the tag can sustain N/M bits/s — scaled
//! by a conservative margin so that bursty traffic rarely starves a bit of
//! channel measurements (§5).

use crate::error::{Error, ProtocolError};
use bs_tag::frame::DownlinkFrame;

/// The uplink bit rates the prototype supports (§7.2 evaluates exactly
/// these).
pub const SUPPORTED_RATES_BPS: [u64; 4] = [100, 200, 500, 1000];

/// Opcode byte distinguishing downlink message types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Opcode {
    Query = 0x01,
    Ack = 0x02,
    WindowAck = 0x03,
}

/// A query from the reader to a tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Address of the tag being interrogated (EPC-Gen2-style singulation
    /// is out of scope, as in the paper; the address is a plain byte).
    pub tag_address: u8,
    /// Number of payload bits requested on the uplink.
    pub payload_bits: u16,
    /// Commanded uplink bit rate (bits/s).
    pub bit_rate_bps: u64,
    /// Code length for the long-range mode; 1 = plain (uncoded) mode.
    pub code_length: u16,
}

impl Query {
    /// Serialises into a downlink frame payload.
    ///
    /// Fails with [`ProtocolError::UnsupportedRate`] (wrapped in the
    /// unified [`Error`]) when `bit_rate_bps` is not one of
    /// [`SUPPORTED_RATES_BPS`]: the wire format only has indices for
    /// those four rates, and a transport probing rates must see an error,
    /// not a reader crash.
    pub fn to_frame(&self) -> Result<DownlinkFrame, Error> {
        let rate_idx = SUPPORTED_RATES_BPS
            .iter()
            .position(|&r| r == self.bit_rate_bps)
            .ok_or(ProtocolError::UnsupportedRate {
                bps: self.bit_rate_bps,
            })? as u8;
        Ok(DownlinkFrame::new(vec![
            Opcode::Query as u8,
            self.tag_address,
            (self.payload_bits >> 8) as u8,
            (self.payload_bits & 0xFF) as u8,
            rate_idx,
            (self.code_length >> 8) as u8,
            (self.code_length & 0xFF) as u8,
        ]))
    }

    /// Parses a query from a downlink frame; `None` if the frame is not a
    /// well-formed query.
    pub fn from_frame(frame: &DownlinkFrame) -> Option<Query> {
        let p = &frame.payload;
        if p.len() != 7 || p[0] != Opcode::Query as u8 {
            return None;
        }
        let rate = *SUPPORTED_RATES_BPS.get(p[4] as usize)?;
        let code_length = (u16::from(p[5]) << 8) | u16::from(p[6]);
        if code_length == 0 {
            return None;
        }
        Some(Query {
            tag_address: p[1],
            payload_bits: (u16::from(p[2]) << 8) | u16::from(p[3]),
            bit_rate_bps: rate,
            code_length,
        })
    }

    /// True if the query asks for the long-range coded uplink.
    pub fn is_coded(&self) -> bool {
        self.code_length > 1
    }
}

/// An ACK from the reader (the short retransmission-control message of
/// §4.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ack {
    /// Address of the tag being acknowledged.
    pub tag_address: u8,
}

impl Ack {
    /// Serialises into a downlink frame.
    pub fn to_frame(&self) -> DownlinkFrame {
        DownlinkFrame::new(vec![Opcode::Ack as u8, self.tag_address])
    }

    /// Parses an ACK.
    pub fn from_frame(frame: &DownlinkFrame) -> Option<Ack> {
        let p = &frame.payload;
        if p.len() != 2 || p[0] != Opcode::Ack as u8 {
            return None;
        }
        Some(Ack { tag_address: p[1] })
    }
}

/// A sliding-window ACK for the `bs-net` transport: cumulative sequence
/// acknowledgement plus a 32-bit selective-ACK bitmap, carried on the
/// downlink exactly like [`Ack`] but under its own opcode so the two
/// never cross-parse.
///
/// Semantics follow TCP SACK: every segment with `seq < cumulative` is
/// acknowledged, and bit `i` of `sack` (LSB first) acknowledges segment
/// `cumulative + 1 + i` — out-of-order receipts the receiver is holding
/// while the window head is still missing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowAck {
    /// Address of the tag whose segments are being acknowledged.
    pub tag_address: u8,
    /// Message the acknowledgement refers to (wraps at 256 messages).
    pub msg_id: u8,
    /// All segments with sequence number `< cumulative` are acknowledged.
    pub cumulative: u16,
    /// Bit `i` (LSB first) acknowledges segment `cumulative + 1 + i`.
    pub sack: u32,
}

impl WindowAck {
    /// Serialises into a downlink frame (9 payload bytes; infallible —
    /// every field value has a wire encoding).
    pub fn to_frame(&self) -> DownlinkFrame {
        DownlinkFrame::new(vec![
            Opcode::WindowAck as u8,
            self.tag_address,
            self.msg_id,
            (self.cumulative >> 8) as u8,
            (self.cumulative & 0xFF) as u8,
            (self.sack >> 24) as u8,
            (self.sack >> 16) as u8,
            (self.sack >> 8) as u8,
            (self.sack & 0xFF) as u8,
        ])
    }

    /// Parses a window ACK; `None` if the frame is not a well-formed
    /// window ACK.
    pub fn from_frame(frame: &DownlinkFrame) -> Option<WindowAck> {
        let p = &frame.payload;
        if p.len() != 9 || p[0] != Opcode::WindowAck as u8 {
            return None;
        }
        Some(WindowAck {
            tag_address: p[1],
            msg_id: p[2],
            cumulative: (u16::from(p[3]) << 8) | u16::from(p[4]),
            sack: (u32::from(p[5]) << 24)
                | (u32::from(p[6]) << 16)
                | (u32::from(p[7]) << 8)
                | u32::from(p[8]),
        })
    }

    /// True if this ACK acknowledges segment `seq`, either cumulatively
    /// or through the selective bitmap.
    pub fn acks(&self, seq: u16) -> bool {
        if seq < self.cumulative {
            return true;
        }
        let offset = u32::from(seq) - u32::from(self.cumulative);
        (1..=32).contains(&offset) && (self.sack >> (offset - 1)) & 1 == 1
    }
}

/// Frame-level retry schedule: exponential backoff between attempts plus
/// a per-session time budget. §4.1 says the reader "re-transmits its
/// packet until it gets a response"; unbounded retransmission is how real
/// deployments melt down under a persistent fault, so the session bounds
/// it twice — per-stage attempt caps (in `ReaderConfig`) and this overall
/// budget on accumulated airtime + backoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Wait before the first retry (µs).
    pub base_backoff_us: u64,
    /// Multiplier applied to the backoff per subsequent retry.
    pub backoff_factor: f64,
    /// Cap on any single backoff (µs).
    pub max_backoff_us: u64,
    /// Total per-query budget (µs) across backoffs and estimated airtime;
    /// once exceeded, no further attempts are started.
    pub budget_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_backoff_us: 2_000,
            backoff_factor: 2.0,
            max_backoff_us: 64_000,
            budget_us: 60_000_000,
        }
    }
}

impl RetryPolicy {
    /// Sets the wait before the first retry (default: 2 000 µs).
    pub fn with_base_backoff_us(mut self, us: u64) -> Self {
        self.base_backoff_us = us;
        self
    }

    /// Sets the per-retry backoff multiplier (default: 2.0).
    pub fn with_backoff_factor(mut self, factor: f64) -> Self {
        self.backoff_factor = factor;
        self
    }

    /// Sets the cap on any single backoff (default: 64 000 µs).
    pub fn with_max_backoff_us(mut self, us: u64) -> Self {
        self.max_backoff_us = us;
        self
    }

    /// Sets the total per-query budget (default: 60 s).
    pub fn with_budget_us(mut self, us: u64) -> Self {
        self.budget_us = us;
        self
    }

    /// Backoff before attempt number `attempt` (0-based; the initial
    /// transmission waits nothing, retry `n` waits
    /// `base · factor^(n-1)`, capped).
    pub fn backoff_us(&self, attempt: u32) -> u64 {
        if attempt == 0 {
            return 0;
        }
        let exp = self.backoff_factor.max(1.0).powi(attempt as i32 - 1);
        let backoff = (self.base_backoff_us as f64 * exp).min(self.max_backoff_us as f64);
        backoff as u64
    }

    /// True if a session that has spent `waited_us` may start another
    /// attempt.
    pub fn within_budget(&self, waited_us: u64) -> bool {
        waited_us < self.budget_us
    }
}

/// The §5 rate-selection rule: with the helper delivering `helper_pps`
/// packets/s and the decoder wanting `pkts_per_bit` measurements per bit,
/// pick the fastest supported rate not exceeding
/// `margin · helper_pps / pkts_per_bit`. The margin < 1 is the paper's
/// "conservative bit rate estimate" guarding against bursty traffic.
pub fn select_bit_rate(helper_pps: f64, pkts_per_bit: u32, margin: f64) -> u64 {
    assert!(pkts_per_bit > 0);
    let max_rate = margin * helper_pps / f64::from(pkts_per_bit);
    SUPPORTED_RATES_BPS
        .iter()
        .rev()
        .find(|&&r| (r as f64) <= max_rate)
        .copied()
        .unwrap_or(SUPPORTED_RATES_BPS[0])
}

/// How many packets per bit the decoder will see on average at a chosen
/// rate — used by tests and the harness to sanity-check selections.
pub fn expected_pkts_per_bit(helper_pps: f64, bit_rate_bps: u64) -> f64 {
    helper_pps / bit_rate_bps as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        let q = Query {
            tag_address: 0x42,
            payload_bits: 90,
            bit_rate_bps: 500,
            code_length: 1,
        };
        let f = q.to_frame().unwrap();
        assert_eq!(Query::from_frame(&f), Some(q));
    }

    #[test]
    fn coded_query_roundtrip() {
        let q = Query {
            tag_address: 1,
            payload_bits: 16,
            bit_rate_bps: 100,
            code_length: 150,
        };
        let f = q.to_frame().unwrap();
        let back = Query::from_frame(&f).unwrap();
        assert!(back.is_coded());
        assert_eq!(back.code_length, 150);
    }

    #[test]
    fn query_rejects_garbage() {
        assert_eq!(Query::from_frame(&DownlinkFrame::new(vec![0x01])), None);
        assert_eq!(Query::from_frame(&DownlinkFrame::new(vec![0xFF; 7])), None);
        // Bad rate index.
        let mut f = Query {
            tag_address: 0,
            payload_bits: 8,
            bit_rate_bps: 100,
            code_length: 1,
        }
        .to_frame()
        .unwrap();
        f.payload[4] = 9;
        assert_eq!(Query::from_frame(&f), None);
        // Zero code length.
        let mut g = Query {
            tag_address: 0,
            payload_bits: 8,
            bit_rate_bps: 100,
            code_length: 1,
        }
        .to_frame()
        .unwrap();
        g.payload[5] = 0;
        g.payload[6] = 0;
        assert_eq!(Query::from_frame(&g), None);
    }

    /// Regression: an unsupported rate used to panic the reader via
    /// `expect("unsupported bit rate")`; it now surfaces through the
    /// unified error type so transports can probe rates safely.
    #[test]
    fn query_unsupported_rate_is_an_error_not_a_panic() {
        for bps in [0, 99, 123, 999, 1001, u64::MAX] {
            let q = Query {
                tag_address: 0,
                payload_bits: 8,
                bit_rate_bps: bps,
                code_length: 1,
            };
            match q.to_frame() {
                Err(Error::Protocol(ProtocolError::UnsupportedRate { bps: got })) => {
                    assert_eq!(got, bps);
                }
                other => panic!("expected UnsupportedRate for {bps} bps, got {other:?}"),
            }
        }
        // Every supported rate still encodes.
        for bps in SUPPORTED_RATES_BPS {
            assert!(Query {
                tag_address: 0,
                payload_bits: 8,
                bit_rate_bps: bps,
                code_length: 1,
            }
            .to_frame()
            .is_ok());
        }
    }

    #[test]
    fn ack_roundtrip() {
        let a = Ack { tag_address: 7 };
        assert_eq!(Ack::from_frame(&a.to_frame()), Some(a));
        assert_eq!(Ack::from_frame(&DownlinkFrame::new(vec![0x01, 0x02])), None);
    }

    #[test]
    fn window_ack_roundtrip() {
        let w = WindowAck {
            tag_address: 9,
            msg_id: 200,
            cumulative: 0x1234,
            sack: 0xDEAD_BEEF,
        };
        assert_eq!(WindowAck::from_frame(&w.to_frame()), Some(w));
    }

    #[test]
    fn window_ack_rejects_garbage_and_other_opcodes() {
        assert_eq!(WindowAck::from_frame(&DownlinkFrame::new(vec![0x03])), None);
        let q = Query {
            tag_address: 1,
            payload_bits: 8,
            bit_rate_bps: 100,
            code_length: 1,
        }
        .to_frame()
        .unwrap();
        assert_eq!(WindowAck::from_frame(&q), None);
        let a = Ack { tag_address: 1 }.to_frame();
        assert_eq!(WindowAck::from_frame(&a), None);
        // And the reverse: a window ACK parses as neither Query nor Ack.
        let w = WindowAck {
            tag_address: 1,
            msg_id: 0,
            cumulative: 0,
            sack: 0,
        }
        .to_frame();
        assert_eq!(Query::from_frame(&w), None);
        assert_eq!(Ack::from_frame(&w), None);
    }

    #[test]
    fn window_ack_sack_semantics() {
        let w = WindowAck {
            tag_address: 0,
            msg_id: 0,
            cumulative: 5,
            sack: 0b101, // acks seqs 6 and 8
        };
        for seq in 0..5 {
            assert!(w.acks(seq), "cumulative should cover {seq}");
        }
        assert!(!w.acks(5), "the window head is by definition unacked");
        assert!(w.acks(6));
        assert!(!w.acks(7));
        assert!(w.acks(8));
        assert!(!w.acks(9));
        // Far beyond the bitmap: never acknowledged, never panics.
        assert!(!w.acks(u16::MAX));
        // Full bitmap at the top of the seq space stays in range.
        let top = WindowAck {
            tag_address: 0,
            msg_id: 0,
            cumulative: u16::MAX,
            sack: u32::MAX,
        };
        assert!(top.acks(0));
        assert!(!top.acks(u16::MAX));
    }

    #[test]
    fn ack_is_tiny() {
        // §4.1: the tag "can reduce the overhead of the ACK packet" — ours
        // is 2 payload bytes → 48 on-air bits, 2.4 ms at 50 µs/bit.
        let a = Ack { tag_address: 0 };
        assert_eq!(a.to_frame().to_bits().len(), 48);
    }

    #[test]
    fn rate_selection_matches_fig12_operating_points() {
        // Fig. 12: ~100 bps at 500 pkts/s, ~1 kbps at ~3000 pkts/s, with
        // ~5 packets/bit sufficing at short range.
        assert_eq!(select_bit_rate(500.0, 4, 0.9), 100);
        assert_eq!(select_bit_rate(3_000.0, 2, 0.9), 1000);
        assert_eq!(select_bit_rate(1_200.0, 4, 0.9), 200);
    }

    #[test]
    fn rate_selection_is_conservative_under_margin() {
        // Exactly at the boundary, a smaller margin must drop a tier.
        let generous = select_bit_rate(1000.0, 2, 1.0);
        let cautious = select_bit_rate(1000.0, 2, 0.5);
        assert!(cautious < generous, "{cautious} vs {generous}");
    }

    #[test]
    fn rate_selection_floors_at_slowest() {
        assert_eq!(select_bit_rate(10.0, 30, 0.8), 100);
    }

    #[test]
    fn rate_monotone_in_load() {
        let mut prev = 0;
        for pps in [200.0, 600.0, 1500.0, 4000.0, 12_000.0] {
            let r = select_bit_rate(pps, 3, 0.9);
            assert!(r >= prev, "rate decreased at {pps}");
            prev = r;
        }
        assert_eq!(prev, 1000);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_us(0), 0);
        assert_eq!(p.backoff_us(1), 2_000);
        assert_eq!(p.backoff_us(2), 4_000);
        assert_eq!(p.backoff_us(3), 8_000);
        // Far attempts hit the cap instead of overflowing.
        assert_eq!(p.backoff_us(20), p.max_backoff_us);
        assert_eq!(p.backoff_us(63), p.max_backoff_us);
    }

    #[test]
    fn budget_gates_attempts() {
        let p = RetryPolicy {
            budget_us: 10_000,
            ..Default::default()
        };
        assert!(p.within_budget(0));
        assert!(p.within_budget(9_999));
        assert!(!p.within_budget(10_000));
        assert!(!p.within_budget(1_000_000));
    }

    #[test]
    fn expected_pkts_per_bit_math() {
        assert_eq!(expected_pkts_per_bit(3000.0, 100), 30.0);
        assert_eq!(expected_pkts_per_bit(500.0, 100), 5.0);
    }

    #[test]
    fn combining_enum_exists_for_protocol_consumers() {
        // The query implies a decoding mode at the reader.
        let q = Query {
            tag_address: 0,
            payload_bits: 8,
            bit_rate_bps: 100,
            code_length: 1,
        };
        use crate::uplink::Combining;
        let mode = if q.is_coded() {
            None
        } else {
            Some(Combining::Mrc)
        };
        assert_eq!(mode, Some(Combining::Mrc));
    }
}
