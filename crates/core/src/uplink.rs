//! The reader's uplink decoder (§3.2, §3.3).
//!
//! Pipeline, exactly as the paper describes:
//!
//! 1. **Signal conditioning** — subtract a moving average (400 ms window)
//!    from each per-packet channel series and normalise by the mean
//!    absolute residual, mapping the tag's two states near ±1.
//! 2. **Frequency/spatial diversity** — bin packets into bit slots by MAC
//!    timestamp, correlate each (virtual) sub-channel's slot means with the
//!    known preamble, and keep the top-G sub-channels. The correlation also
//!    yields each channel's *polarity*: a reflection can raise or lower a
//!    given sub-channel's amplitude depending on the multipath phase, so
//!    the preamble tells the decoder which way each good channel swings.
//! 3. **Combining** — maximum-ratio combining: each selected channel is
//!    weighted by `polarity / σ²` where σ² is its per-packet noise variance
//!    (paper's `CSI_weighted = Σ CSIᵢ/σᵢ²`); the RSSI mode instead keeps the
//!    single best channel (§3.3).
//! 4. **Decoding** — hysteresis thresholds `µ ± σ/2` on the combined value
//!    reject the Intel card's spurious jumps; a majority vote across the
//!    packets of each timestamp-binned bit slot yields the bit.

use crate::series::{SeriesAccumulator, SeriesBundle, SlotIndex};
use bs_dsp::codes;
use bs_dsp::filter::condition;
use bs_dsp::obs::{NullRecorder, Recorder};
use bs_dsp::slicer::{majority, Decision, HysteresisSlicer};
use bs_dsp::stream::Consumed;
use bs_tag::frame::UplinkFrame;

/// How the decoder combines channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combining {
    /// Maximum-ratio combining across the top-G channels (CSI, §3.2).
    Mrc,
    /// The single best channel by preamble correlation (RSSI, §3.3).
    BestSingle,
    /// Equal-gain combining: polarity-corrected sum without the 1/σ²
    /// weights — the "naive approach" §3.2 argues against; kept for the
    /// ablation benches.
    EqualGain,
}

/// Decoder configuration.
#[derive(Debug, Clone)]
pub struct UplinkDecoderConfig {
    /// Tag bit duration (µs) — the reader commands the rate in its query.
    pub bit_duration_us: u64,
    /// Expected payload length in bits.
    pub payload_bits: usize,
    /// Conditioning moving-average window (µs); the paper uses 400 ms.
    pub conditioning_window_us: u64,
    /// Number of good channels kept by the selector (paper: 10).
    pub top_channels: usize,
    /// Alignment search span: the true frame start is searched within
    /// ± this many bit durations of the caller's hint.
    pub search_bits: u32,
    /// Minimum normalised preamble correlation for a detection.
    pub min_preamble_score: f64,
    /// Channel combining mode.
    pub combining: Combining,
    /// Use the µ ± σ/2 hysteresis slicer (§3.2 step 3). `false` falls back
    /// to the plain sign slicer — kept for the ablation benches showing
    /// why hysteresis exists (spurious Intel CSI jumps).
    pub use_hysteresis: bool,
}

impl UplinkDecoderConfig {
    /// The paper's CSI decoder configuration for a given bit rate/payload.
    pub fn csi(bit_rate_bps: u64, payload_bits: usize) -> Self {
        UplinkDecoderConfig {
            // Clamped to ≥ 1 µs: above 1 Mbps the integer division would
            // yield 0 and trip the constructor assert.
            bit_duration_us: (1_000_000 / bit_rate_bps.max(1)).max(1),
            payload_bits,
            conditioning_window_us: 400_000,
            top_channels: 10,
            search_bits: 2,
            min_preamble_score: 0.5,
            combining: Combining::Mrc,
            use_hysteresis: true,
        }
    }

    /// The paper's RSSI decoder configuration (§3.3).
    pub fn rssi(bit_rate_bps: u64, payload_bits: usize) -> Self {
        UplinkDecoderConfig {
            combining: Combining::BestSingle,
            top_channels: 1,
            ..UplinkDecoderConfig::csi(bit_rate_bps, payload_bits)
        }
    }

    /// Sets the conditioning moving-average window (default: 400 000 µs,
    /// the paper's 400 ms).
    pub fn with_conditioning_window_us(mut self, window_us: u64) -> Self {
        self.conditioning_window_us = window_us;
        self
    }

    /// Sets the number of channels the selector keeps (default: 10 for
    /// CSI, 1 for RSSI).
    pub fn with_top_channels(mut self, n: usize) -> Self {
        self.top_channels = n;
        self
    }

    /// Sets the alignment search span in bit durations (default: 2).
    pub fn with_search_bits(mut self, bits: u32) -> Self {
        self.search_bits = bits;
        self
    }

    /// Sets the minimum normalised preamble correlation for a detection
    /// (default: 0.5).
    pub fn with_min_preamble_score(mut self, score: f64) -> Self {
        self.min_preamble_score = score;
        self
    }

    /// Sets the channel-combining mode (default: [`Combining::Mrc`] for
    /// CSI, [`Combining::BestSingle`] for RSSI).
    pub fn with_combining(mut self, combining: Combining) -> Self {
        self.combining = combining;
        self
    }

    /// Enables or disables the µ ± σ/2 hysteresis slicer (default: on).
    pub fn with_hysteresis(mut self, on: bool) -> Self {
        self.use_hysteresis = on;
        self
    }
}

/// One selected channel with its combining weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectedChannel {
    /// Channel index within the bundle.
    pub index: usize,
    /// Normalised preamble correlation (absolute value).
    pub score: f64,
    /// Signed combining weight (`polarity / σ²`).
    pub weight: f64,
}

/// Shannon entropy (nats) of the normalised absolute combining weights —
/// near `ln(G)` when MRC spreads its trust over all G kept channels, near
/// 0 when a single channel dominates. Purely diagnostic (the
/// `uplink.mrc-weight-entropy` gauge).
fn weight_entropy(channels: &[SelectedChannel]) -> f64 {
    let total: f64 = channels.iter().map(|c| c.weight.abs()).sum();
    if total <= 0.0 {
        return 0.0;
    }
    -channels
        .iter()
        .map(|c| c.weight.abs() / total)
        .filter(|&p| p > 0.0)
        .map(|p| p * p.ln())
        .sum::<f64>()
}

/// Decoder output.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeOutput {
    /// Per-payload-bit decisions (`None` = erasure: no packets in the slot
    /// or a tied vote).
    pub bits: Vec<Option<bool>>,
    /// The payload as a frame, if every bit resolved.
    pub frame: Option<UplinkFrame>,
    /// Aligned frame start time (µs).
    pub start_us: u64,
    /// The channels the selector kept, best first.
    pub channels: Vec<SelectedChannel>,
    /// The best candidate's preamble score (mean of the kept channels).
    pub preamble_score: f64,
    /// Normalised correlation of the combined series against the
    /// postamble (§6: the frame's second timing anchor). Near 1 when the
    /// recovered bit clock still lines up at the *end* of the frame;
    /// collapses when it has drifted — the front-anchored preamble score
    /// cannot see that. 0 if any postamble slot held no packets.
    pub postamble_score: f64,
}

/// The uplink decoder; see the module docs for the pipeline.
#[derive(Debug, Clone)]
pub struct UplinkDecoder {
    cfg: UplinkDecoderConfig,
}

impl UplinkDecoder {
    /// Creates a decoder.
    pub fn new(cfg: UplinkDecoderConfig) -> Self {
        assert!(cfg.bit_duration_us > 0, "bit duration must be positive");
        assert!(cfg.top_channels > 0, "need at least one channel");
        UplinkDecoder { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &UplinkDecoderConfig {
        &self.cfg
    }

    /// Decodes one frame from the bundle. `start_hint_us` is the reader's
    /// estimate of when the tag's response begins (it sent the query, so it
    /// knows within a bit or two); the decoder refines the alignment by
    /// preamble correlation within ±`search_bits`.
    ///
    /// This is literally "feed everything, then finish" on the streaming
    /// path ([`Self::stream`]): the bundle is fed through a
    /// [`SeriesAccumulator`] in one bulk append and decoded by
    /// [`UplinkStream::finish`], so batch and streaming cannot diverge.
    pub fn decode(&self, bundle: &SeriesBundle, start_hint_us: u64) -> Option<DecodeOutput> {
        let mut stream = self.stream(bundle.channels(), start_hint_us);
        stream.feed(bundle);
        stream.finish()
    }

    /// Opens a streaming decode session: packets are pushed as they
    /// arrive ([`UplinkStream::feed_packet`] / [`UplinkStream::feed`]) and
    /// the frame is decoded on [`UplinkStream::finish`]. Bit-identical to
    /// calling [`Self::decode`] on the equivalent batch bundle.
    ///
    /// ```
    /// use wifi_backscatter::uplink::{UplinkDecoder, UplinkDecoderConfig};
    ///
    /// let dec = UplinkDecoder::new(UplinkDecoderConfig::csi(100, 8));
    /// let mut session = dec.stream(4, 0);
    /// assert_eq!(session.feed_packet(0, &[1.0, 2.0, 3.0, 4.0]).accepted, 1);
    /// assert!(session.finish().is_none()); // one packet: no detection
    /// ```
    pub fn stream(&self, channels: usize, start_hint_us: u64) -> UplinkStream {
        UplinkStream {
            decoder: self.clone(),
            acc: SeriesAccumulator::new(channels),
            start_hint_us,
        }
    }

    /// [`Self::stream`] with a hard bound on buffered packets: feeds past
    /// `max_packets` report zero accepted (explicit backpressure — see
    /// [`bs_dsp::stream::Consumed`]) and `finish()` decodes what was
    /// accepted.
    pub fn stream_bounded(
        &self,
        channels: usize,
        start_hint_us: u64,
        max_packets: usize,
    ) -> UplinkStream {
        UplinkStream {
            decoder: self.clone(),
            acc: SeriesAccumulator::with_capacity(channels, max_packets),
            start_hint_us,
        }
    }

    /// [`Self::decode`] plus observability: stage spans
    /// (`uplink.condition`, `uplink.align`, `uplink.combine`,
    /// `uplink.slice` — bounded by the bundle's simulated-time extent),
    /// selector counters (`uplink.channels-kept`, `uplink.channels-dropped`,
    /// `uplink.packets-binned`, `uplink.hysteresis-holds`,
    /// `uplink.erasures`) and gauges (`uplink.preamble-score`,
    /// `uplink.mrc-weight-entropy`). The `uplink.align` span's items count
    /// the slot-index work the search consumed (packets scanned into
    /// per-slot statistics plus slots read back), which is how the benches
    /// verify the search is O(packets), not O(candidates × packets). The
    /// decode itself is bit-identical to [`Self::decode`]; the recorder
    /// only observes.
    pub fn decode_with(
        &self,
        bundle: &SeriesBundle,
        start_hint_us: u64,
        rec: &mut dyn Recorder,
    ) -> Option<DecodeOutput> {
        let mut index = SlotIndex::new(bundle);
        self.decode_indexed(&mut index, start_hint_us, rec)
    }

    /// [`Self::decode_with`] against a caller-owned [`SlotIndex`], so
    /// repeated decode attempts over the *same capture* (the drift
    /// re-scan's stretch candidates, retry/fallback re-decodes) share the
    /// conditioned series and every slot-statistics build instead of
    /// re-scanning the packet stream per attempt. Output is bit-identical
    /// to [`Self::decode`] / [`Self::decode_reference`].
    pub fn decode_indexed(
        &self,
        index: &mut SlotIndex<'_>,
        start_hint_us: u64,
        rec: &mut dyn Recorder,
    ) -> Option<DecodeOutput> {
        let bundle = index.bundle();
        if bundle.packets() == 0 || bundle.channels() == 0 {
            return None;
        }
        let t_lo = *bundle.t_us.first().unwrap_or(&0);
        let t_hi = *bundle.t_us.last().unwrap_or(&0);
        let preamble: Vec<i8> = codes::BARKER13.to_vec();
        let total_bits = UplinkFrame::on_air_len(self.cfg.payload_bits);

        // 1. Signal conditioning (cached in the index across attempts).
        let half = self.conditioning_half_window(bundle);
        let conditioned = index.conditioned(half);
        rec.span("uplink.condition", t_lo, t_hi, bundle.channels() as u64);

        // 2. Alignment search + channel selection, served by the slot
        // index. Candidates are spaced by half a bit, so they fall into
        // (at most two) slot-phase classes; all candidates of a class
        // read the same per-channel statistics, built in one O(packets)
        // pass over the class's coverage.
        let bit = self.cfg.bit_duration_us;
        let step = (bit / 2).max(1);
        let span = self.cfg.search_bits as i64 * 2; // half-bit steps
        let cands: Vec<u64> = (-span..=span)
            .filter_map(|k| {
                let cand = start_hint_us as i64 + k * step as i64;
                (cand >= 0).then_some(cand as u64)
            })
            .collect();
        // Pre-size each phase class to its full query span (every
        // candidate's preamble window plus the winning frame's slicing
        // span) so per-channel statistics are built exactly once.
        let frame_span = total_bits as u64 * bit;
        let mut classes: Vec<(u64, u64, u64)> = Vec::new(); // (phase, lo, hi)
        for &cand in &cands {
            let phase = cand % bit;
            let hi = cand.saturating_add(frame_span);
            match classes.iter_mut().find(|e| e.0 == phase) {
                Some(e) => {
                    e.1 = e.1.min(cand);
                    e.2 = e.2.max(hi);
                }
                None => classes.push((phase, cand, hi)),
            }
        }
        let visits_before = index.visits();
        for &(_, lo, hi) in &classes {
            index.ensure_grid(bit, lo, hi);
        }
        let mut best: Option<(u64, Vec<SelectedChannel>, f64)> = None;
        for &cand in &cands {
            let Some((channels, score)) =
                self.rank_channels_indexed(index, half, cand, &preamble)
            else {
                continue;
            };
            if best.as_ref().is_none_or(|(_, _, s)| score > *s) {
                best = Some((cand, channels, score));
            }
        }
        rec.span("uplink.align", t_lo, t_hi, index.visits() - visits_before);
        let (start_us, channels, preamble_score) = best?;
        if preamble_score < self.cfg.min_preamble_score {
            return None;
        }
        rec.add("uplink.channels-kept", channels.len() as u64);
        rec.add(
            "uplink.channels-dropped",
            (bundle.channels() - channels.len()) as u64,
        );
        rec.gauge("uplink.preamble-score", preamble_score);
        rec.gauge("uplink.mrc-weight-entropy", weight_entropy(&channels));

        // 3. Combining: fold each selected channel into the accumulator
        // with the chunked axpy kernel. Folding whole channels in
        // selection order performs, per packet, the same
        // `0 + w₀·x₀ + w₁·x₁ + …` chain as the per-packet sum the
        // reference path computes — chunking unrolls across *packets*,
        // never reassociates across channels — so the combined series is
        // bit-identical to `decode_reference`'s.
        let mut combined = vec![0.0f64; bundle.packets()];
        for c in &channels {
            bs_dsp::stream::axpy(&mut combined, c.weight, &conditioned[c.index]);
        }
        rec.span("uplink.combine", t_lo, t_hi, bundle.packets() as u64);

        // 4. Hysteresis + timestamp-binned majority voting. The frame's
        // packets are one contiguous index range on the ascending
        // timestamp axis, as is each bit slot within it.
        let frame_range = index.packet_range(start_us, start_us + total_bits as u64 * bit);
        let frame_values: Vec<f64> = combined[frame_range.clone()].to_vec();
        let slicer = HysteresisSlicer::from_samples(&frame_values);
        rec.add("uplink.packets-binned", frame_range.len() as u64);

        let pre_len = preamble.len();
        let mut bits = Vec::with_capacity(self.cfg.payload_bits);
        let mut holds = 0u64;
        for slot in pre_len..pre_len + self.cfg.payload_bits {
            let lo = start_us + slot as u64 * bit;
            let hi = lo + bit;
            let decisions: Vec<Decision> = index
                .packet_range(lo, hi)
                .map(|p| {
                    if self.cfg.use_hysteresis {
                        slicer.decide(combined[p])
                    } else {
                        bs_dsp::slicer::sign_decision(combined[p])
                    }
                })
                .collect();
            holds += decisions
                .iter()
                .filter(|d| **d == Decision::Indeterminate)
                .count() as u64;
            bits.push(majority(&decisions));
        }
        rec.span(
            "uplink.slice",
            start_us,
            start_us + total_bits as u64 * bit,
            self.cfg.payload_bits as u64,
        );
        rec.add("uplink.hysteresis-holds", holds);
        rec.add(
            "uplink.erasures",
            bits.iter().filter(|b| b.is_none()).count() as u64,
        );

        let frame = if bits.iter().all(Option::is_some) {
            Some(UplinkFrame::new(bits.iter().map(|b| b.unwrap()).collect()))
        } else {
            None
        };

        // Postamble check on the combined series: the anchor sits where
        // clock error has had the whole frame to accumulate, so it
        // discriminates bit-clock candidates the preamble cannot.
        let postamble: Vec<i8> = preamble.iter().rev().copied().collect();
        let post_start = start_us + (pre_len + self.cfg.payload_bits) as u64 * bit;
        let postamble_score =
            series_slot_means(index, &combined, post_start, bit, postamble.len())
                .map(|means| bs_dsp::correlate::normalized(&means, &postamble))
                .unwrap_or(0.0);

        Some(DecodeOutput {
            bits,
            frame,
            start_us,
            channels,
            preamble_score,
            postamble_score,
        })
    }

    /// The straight-line reference decoder: the same pipeline as
    /// [`Self::decode`], but every slot query is a full pass over the
    /// packet stream — O(candidates × channels × packets) in the
    /// alignment search. Kept (and exercised by the conformance tests and
    /// benches) as the ground truth the indexed path must match bit for
    /// bit.
    pub fn decode_reference(
        &self,
        bundle: &SeriesBundle,
        start_hint_us: u64,
    ) -> Option<DecodeOutput> {
        if bundle.packets() == 0 || bundle.channels() == 0 {
            return None;
        }
        let preamble: Vec<i8> = codes::BARKER13.to_vec();
        let total_bits = UplinkFrame::on_air_len(self.cfg.payload_bits);

        // 1. Signal conditioning.
        let half = self.conditioning_half_window(bundle);
        let conditioned: Vec<Vec<f64>> = bundle
            .series
            .iter()
            .map(|s| condition(s, half))
            .collect();

        // 2. Alignment search + channel selection.
        let bit = self.cfg.bit_duration_us;
        let step = (bit / 2).max(1);
        let span = self.cfg.search_bits as i64 * 2; // half-bit steps
        let mut best: Option<(u64, Vec<SelectedChannel>, f64)> = None;
        for k in -span..=span {
            let cand = start_hint_us as i64 + k * step as i64;
            if cand < 0 {
                continue;
            }
            let cand = cand as u64;
            let Some((channels, score)) = self.rank_channels(bundle, &conditioned, cand, &preamble)
            else {
                continue;
            };
            if best.as_ref().is_none_or(|(_, _, s)| score > *s) {
                best = Some((cand, channels, score));
            }
        }
        let (start_us, channels, preamble_score) = best?;
        if preamble_score < self.cfg.min_preamble_score {
            return None;
        }

        // 3. Combining.
        let combined: Vec<f64> = (0..bundle.packets())
            .map(|p| channels.iter().map(|c| c.weight * conditioned[c.index][p]).sum())
            .collect();

        // 4. Hysteresis + timestamp-binned majority voting, over the
        // packets of the whole frame.
        let frame_packets: Vec<usize> = (0..bundle.packets())
            .filter(|&p| {
                let t = bundle.t_us[p];
                t >= start_us && t < start_us + total_bits as u64 * bit
            })
            .collect();
        let frame_values: Vec<f64> = frame_packets.iter().map(|&p| combined[p]).collect();
        let slicer = HysteresisSlicer::from_samples(&frame_values);

        let pre_len = preamble.len();
        let mut bits = Vec::with_capacity(self.cfg.payload_bits);
        for slot in pre_len..pre_len + self.cfg.payload_bits {
            let lo = start_us + slot as u64 * bit;
            let hi = lo + bit;
            let decisions: Vec<Decision> = frame_packets
                .iter()
                .filter(|&&p| bundle.t_us[p] >= lo && bundle.t_us[p] < hi)
                .map(|&p| {
                    if self.cfg.use_hysteresis {
                        slicer.decide(combined[p])
                    } else {
                        bs_dsp::slicer::sign_decision(combined[p])
                    }
                })
                .collect();
            bits.push(majority(&decisions));
        }

        let frame = if bits.iter().all(Option::is_some) {
            Some(UplinkFrame::new(bits.iter().map(|b| b.unwrap()).collect()))
        } else {
            None
        };

        // Postamble check on the combined series.
        let postamble: Vec<i8> = preamble.iter().rev().copied().collect();
        let post_start = start_us + (pre_len + self.cfg.payload_bits) as u64 * bit;
        let postamble_score = self
            .slot_means(bundle, &combined, post_start, postamble.len())
            .map(|means| bs_dsp::correlate::normalized(&means, &postamble))
            .unwrap_or(0.0);

        Some(DecodeOutput {
            bits,
            frame,
            start_us,
            channels,
            preamble_score,
            postamble_score,
        })
    }

    /// [`Self::rank_channels`] served by the slot index: identical
    /// selection, ranking and weighting, with the per-channel slot means
    /// and residual variances read from cached statistics.
    fn rank_channels_indexed(
        &self,
        index: &mut SlotIndex<'_>,
        half: usize,
        start_us: u64,
        preamble: &[i8],
    ) -> Option<(Vec<SelectedChannel>, f64)> {
        let n_slots = preamble.len();
        let bit = self.cfg.bit_duration_us;
        let mut ranked: Vec<(usize, f64, f64)> = Vec::new(); // (index, |corr|, signed)
        for i in 0..index.bundle().channels() {
            let Some(means) = index.slot_means(half, i, start_us, bit, n_slots) else {
                continue;
            };
            let corr = bs_dsp::correlate::normalized(&means, preamble);
            if !corr.is_finite() {
                continue;
            }
            ranked.push((i, corr.abs(), corr));
        }
        if ranked.is_empty() {
            return None;
        }
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        ranked.truncate(self.cfg.top_channels);

        let channels: Vec<SelectedChannel> = ranked
            .iter()
            .map(|&(i, score, signed)| {
                let var = index
                    .residual_variance(half, i, start_us, bit, n_slots)
                    .max(1e-6);
                let polarity = if signed >= 0.0 { 1.0 } else { -1.0 };
                let weight = match self.cfg.combining {
                    Combining::Mrc => polarity / var,
                    Combining::BestSingle | Combining::EqualGain => polarity,
                };
                SelectedChannel {
                    index: i,
                    score,
                    weight,
                }
            })
            .collect();
        let mean_score = channels.iter().map(|c| c.score).sum::<f64>() / channels.len() as f64;
        Some((channels, mean_score))
    }

    /// The conditioning half-window in packets, derived from the paper's
    /// 400 ms time window and the observed packet rate.
    fn conditioning_half_window(&self, bundle: &SeriesBundle) -> usize {
        let gap = bundle.median_gap_us().max(1);
        ((self.cfg.conditioning_window_us / 2) / gap).max(2) as usize
    }

    /// Per-slot mean of one conditioned channel over the preamble slots at
    /// a candidate start; `None` if any slot is empty.
    fn slot_means(
        &self,
        bundle: &SeriesBundle,
        channel: &[f64],
        start_us: u64,
        n_slots: usize,
    ) -> Option<Vec<f64>> {
        let bit = self.cfg.bit_duration_us;
        let mut sums = vec![0.0; n_slots];
        let mut counts = vec![0u32; n_slots];
        for (p, &t) in bundle.t_us.iter().enumerate() {
            if t < start_us {
                continue;
            }
            let slot = ((t - start_us) / bit) as usize;
            if slot >= n_slots {
                continue;
            }
            sums[slot] += channel[p];
            counts[slot] += 1;
        }
        if counts.contains(&0) {
            return None;
        }
        Some(
            sums.iter()
                .zip(&counts)
                .map(|(s, &c)| s / f64::from(c))
                .collect(),
        )
    }

    /// Ranks channels by preamble correlation at a candidate start.
    /// Returns the kept channels (with weights) and the mean absolute
    /// normalised correlation of the kept set.
    fn rank_channels(
        &self,
        bundle: &SeriesBundle,
        conditioned: &[Vec<f64>],
        start_us: u64,
        preamble: &[i8],
    ) -> Option<(Vec<SelectedChannel>, f64)> {
        let n_slots = preamble.len();
        let mut ranked: Vec<(usize, f64, f64)> = Vec::new(); // (index, |corr|, signed)
        for (i, ch) in conditioned.iter().enumerate() {
            let Some(means) = self.slot_means(bundle, ch, start_us, n_slots) else {
                continue;
            };
            let corr = bs_dsp::correlate::normalized(&means, preamble);
            // Zero-variance or overflowing series can produce a NaN/∞
            // correlation; such a channel carries no rankable signal, so
            // skip it rather than letting it poison the sort.
            if !corr.is_finite() {
                continue;
            }
            ranked.push((i, corr.abs(), corr));
        }
        if ranked.is_empty() {
            return None;
        }
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        ranked.truncate(self.cfg.top_channels);

        // Noise variance per kept channel: residual around the slot means
        // during the preamble.
        let channels: Vec<SelectedChannel> = ranked
            .iter()
            .map(|&(i, score, signed)| {
                let var = self
                    .residual_variance(bundle, &conditioned[i], start_us, n_slots)
                    .max(1e-6);
                let polarity = if signed >= 0.0 { 1.0 } else { -1.0 };
                let weight = match self.cfg.combining {
                    Combining::Mrc => polarity / var,
                    Combining::BestSingle | Combining::EqualGain => polarity,
                };
                SelectedChannel {
                    index: i,
                    score,
                    weight,
                }
            })
            .collect();
        let mean_score = channels.iter().map(|c| c.score).sum::<f64>() / channels.len() as f64;
        Some((channels, mean_score))
    }

    /// Mean within-slot variance of a channel over the preamble slots —
    /// the σ² of the paper's MRC weights.
    fn residual_variance(
        &self,
        bundle: &SeriesBundle,
        channel: &[f64],
        start_us: u64,
        n_slots: usize,
    ) -> f64 {
        let bit = self.cfg.bit_duration_us;
        let mut per_slot: Vec<Vec<f64>> = vec![Vec::new(); n_slots];
        for (p, &t) in bundle.t_us.iter().enumerate() {
            if t < start_us {
                continue;
            }
            let slot = ((t - start_us) / bit) as usize;
            if slot < n_slots {
                per_slot[slot].push(channel[p]);
            }
        }
        let mut var_sum = 0.0;
        let mut n = 0usize;
        for slot in per_slot.iter().filter(|s| s.len() >= 2) {
            var_sum += bs_dsp::stats::variance(slot);
            n += 1;
        }
        if n == 0 {
            1.0
        } else {
            var_sum / n as f64
        }
    }
}

/// A streaming uplink decode session: push packets as they arrive, decode
/// on [`Self::finish`].
///
/// The session buffers its packets in a [`SeriesAccumulator`] — one tag
/// response is one bounded frame, so memory is O(1) *per tag session* —
/// and `finish()` hands the completed bundle to the batch pipeline. That
/// "retain, then decode" shape is deliberate: the decoder's normalisation
/// scale and conditioning window are functions of the *whole* session
/// (see DESIGN.md §5 "Streaming decode"), so a decoder that discarded
/// early packets could not stay bit-identical to batch. With
/// [`UplinkDecoder::stream_bounded`] the buffer is capped and overflow is
/// surfaced as explicit backpressure ([`Consumed`]) instead of silent
/// divergence.
#[derive(Debug, Clone)]
pub struct UplinkStream {
    decoder: UplinkDecoder,
    acc: SeriesAccumulator,
    start_hint_us: u64,
}

impl UplinkStream {
    /// Offers one packet (MAC timestamp + one value per channel).
    /// Rejected — [`Consumed::none`], nothing buffered — if the session
    /// is at capacity or the timestamp runs backwards.
    ///
    /// # Panics
    /// Panics if `values` does not have one entry per channel.
    pub fn feed_packet(&mut self, t_us: u64, values: &[f64]) -> Consumed {
        self.acc.feed_packet(t_us, values)
    }

    /// Offers a burst of packets; accepts a prefix (all of it when
    /// unbounded and in order) and reports how many.
    ///
    /// # Panics
    /// Panics if a non-empty bundle's channel count differs.
    pub fn feed(&mut self, bundle: &SeriesBundle) -> Consumed {
        self.acc.feed(bundle)
    }

    /// Packets buffered so far.
    pub fn packets(&self) -> usize {
        self.acc.packets()
    }

    /// High-water mark of buffered packets — the session's resident-set
    /// figure reported by the stream bench.
    pub fn peak_resident(&self) -> usize {
        self.acc.peak_resident()
    }

    /// The reader's frame-start hint this session was opened with.
    pub fn start_hint_us(&self) -> u64 {
        self.start_hint_us
    }

    /// Completes the session and decodes the buffered packets —
    /// bit-identical to [`UplinkDecoder::decode`] on the same packets.
    pub fn finish(self) -> Option<DecodeOutput> {
        self.finish_with(&mut NullRecorder)
    }

    /// [`Self::finish`] with observability (same recorder contract as
    /// [`UplinkDecoder::decode_with`]).
    pub fn finish_with(self, rec: &mut dyn Recorder) -> Option<DecodeOutput> {
        let bundle = self.acc.into_bundle();
        self.decoder.decode_with(&bundle, self.start_hint_us, rec)
    }
}

/// Per-slot means of a *derived* series (e.g. the combined MRC series)
/// over contiguous packet ranges; `None` if any slot is empty. The
/// per-slot accumulation runs in packet order from a fresh 0.0, so the
/// result is bit-exact against the reference full-scan binning.
fn series_slot_means(
    index: &SlotIndex<'_>,
    series: &[f64],
    start_us: u64,
    width_us: u64,
    n_slots: usize,
) -> Option<Vec<f64>> {
    let mut means = Vec::with_capacity(n_slots);
    for k in 0..n_slots {
        let lo = start_us + k as u64 * width_us;
        let range = index.packet_range(lo, lo + width_us);
        if range.is_empty() {
            return None;
        }
        let count = range.len() as u32;
        let mut sum = 0.0;
        for p in range {
            sum += series[p];
        }
        means.push(sum / f64::from(count));
    }
    Some(means)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_dsp::SimRng;

    /// Builds a synthetic bundle (all knobs spelled out on purpose —
    /// each test names exactly the physics it perturbs): `n_channels` series over the frame's
    /// bits, `good` of them carrying the modulation at `amp` (with random
    /// polarity), the rest pure noise. Packets arrive every `gap_us`.
    #[allow(clippy::too_many_arguments)]
    fn synth_bundle(
        payload: &[bool],
        n_channels: usize,
        good: usize,
        amp: f64,
        noise: f64,
        gap_us: u64,
        bit_us: u64,
        start_us: u64,
        seed: u64,
    ) -> (SeriesBundle, Vec<bool>) {
        let frame = UplinkFrame::new(payload.to_vec());
        let bits = frame.to_bits();
        let mut rng = SimRng::new(seed).stream("uplink-synth");
        let total_us = start_us + bits.len() as u64 * bit_us + 50_000;
        let t_us: Vec<u64> = (0..).map(|i| i * gap_us).take_while(|&t| t < total_us).collect();
        let mut polarities = Vec::new();
        let series: Vec<Vec<f64>> = (0..n_channels)
            .map(|c| {
                let is_good = c < good;
                let polarity = if rng.chance(0.5) { 1.0 } else { -1.0 };
                polarities.push(polarity > 0.0);
                t_us
                    .iter()
                    .map(|&t| {
                        let level = if is_good && t >= start_us {
                            let slot = ((t - start_us) / bit_us) as usize;
                            match bits.get(slot) {
                                Some(&true) => amp * polarity,
                                Some(&false) => -amp * polarity,
                                None => 0.0,
                            }
                        } else {
                            0.0
                        };
                        // A baseline level plus slow drift plus noise.
                        10.0 + (t as f64 / 1e6).sin() * 0.5 + level + rng.gaussian(0.0, noise)
                    })
                    .collect()
            })
            .collect();
        (SeriesBundle { t_us, series }, polarities)
    }

    fn payload_90() -> Vec<bool> {
        (0..90).map(|i| (i * 13) % 7 < 3).collect()
    }

    #[test]
    fn decodes_clean_frame() {
        let payload = payload_90();
        // 30 packets/bit: gap 333 µs, bit 10 ms (100 bps).
        let (bundle, _) = synth_bundle(&payload, 20, 8, 0.5, 0.1, 333, 10_000, 100_000, 1);
        let dec = UplinkDecoder::new(UplinkDecoderConfig::csi(100, 90));
        let out = dec.decode(&bundle, 100_000).expect("no detection");
        let frame = out.frame.expect("erasures");
        assert_eq!(frame.payload, payload);
        assert!(out.preamble_score > 0.8, "score {}", out.preamble_score);
    }

    #[test]
    fn alignment_search_recovers_offset_start() {
        let payload = payload_90();
        let (bundle, _) = synth_bundle(&payload, 20, 8, 0.5, 0.1, 333, 10_000, 100_000, 2);
        let dec = UplinkDecoder::new(UplinkDecoderConfig::csi(100, 90));
        // Hint off by 1.5 bits.
        let out = dec.decode(&bundle, 115_000).expect("no detection");
        assert_eq!(out.frame.expect("erasures").payload, payload);
        assert!((out.start_us as i64 - 100_000i64).abs() <= 5_000, "start {}", out.start_us);
    }

    #[test]
    fn selector_finds_the_good_channels() {
        let payload = payload_90();
        let (bundle, _) = synth_bundle(&payload, 30, 6, 0.6, 0.1, 333, 10_000, 50_000, 3);
        let dec = UplinkDecoder::new(UplinkDecoderConfig::csi(100, 90));
        let out = dec.decode(&bundle, 50_000).unwrap();
        // The kept channels should be dominated by the first 6 (good) ones.
        let good_kept = out.channels.iter().filter(|c| c.index < 6).count();
        assert!(good_kept >= 5, "kept {:?}", out.channels);
    }

    #[test]
    fn polarity_inverted_channels_still_decode() {
        // All-good channels but forced mixed polarity (seeded); decoding
        // must agree with the transmitted payload, not the inverse.
        let payload = payload_90();
        for seed in 0..5 {
            let (bundle, _) = synth_bundle(&payload, 10, 10, 0.5, 0.15, 500, 10_000, 30_000, 100 + seed);
            let dec = UplinkDecoder::new(UplinkDecoderConfig::csi(100, 90));
            let out = dec.decode(&bundle, 30_000).expect("no detection");
            assert_eq!(out.frame.expect("erasures").payload, payload, "seed {seed}");
        }
    }

    #[test]
    fn mrc_beats_single_random_channel_at_high_noise() {
        let payload = payload_90();
        let mut mrc_errors = 0u64;
        let mut single_errors = 0u64;
        for seed in 0..8 {
            let (bundle, _) = synth_bundle(&payload, 30, 10, 0.45, 0.8, 333, 10_000, 0, 200 + seed);
            let dec = UplinkDecoder::new(UplinkDecoderConfig::csi(100, 90));
            if let Some(out) = dec.decode(&bundle, 0) {
                for (b, &want) in out.bits.iter().zip(&payload) {
                    if *b != Some(want) {
                        mrc_errors += 1;
                    }
                }
            } else {
                mrc_errors += payload.len() as u64;
            }
            // "Random sub-channel" baseline: channel 17 (noise-only here).
            let mut cfg = UplinkDecoderConfig::csi(100, 90);
            cfg.top_channels = 1;
            cfg.min_preamble_score = 0.0;
            let dec1 = UplinkDecoder::new(cfg);
            let one = SeriesBundle {
                t_us: bundle.t_us.clone(),
                series: vec![bundle.series[17].clone()],
            };
            if let Some(out) = dec1.decode(&one, 0) {
                for (b, &want) in out.bits.iter().zip(&payload) {
                    if *b != Some(want) {
                        single_errors += 1;
                    }
                }
            } else {
                single_errors += payload.len() as u64;
            }
        }
        assert!(
            mrc_errors < single_errors / 4,
            "mrc {mrc_errors} vs single {single_errors}"
        );
    }

    #[test]
    fn erasure_when_slot_has_no_packets() {
        let payload = vec![true, false, true, true];
        // Very sparse packets: gap 25 ms, bit 10 ms → many empty slots.
        let (bundle, _) = synth_bundle(&payload, 10, 6, 0.8, 0.05, 25_000, 10_000, 0, 4);
        let mut cfg = UplinkDecoderConfig::csi(100, 4);
        cfg.min_preamble_score = 0.0; // force attempt despite sparse slots
        let dec = UplinkDecoder::new(cfg);
        // With empty preamble slots the alignment may fail entirely (None)
        // or produce erasures; both are acceptable — what must not happen
        // is a confident wrong frame.
        if let Some(out) = dec.decode(&bundle, 0) {
            if let Some(f) = out.frame {
                assert_eq!(f.payload, payload);
            } else {
                assert!(out.bits.iter().any(Option::is_none));
            }
        }
    }

    #[test]
    fn no_detection_in_pure_noise() {
        let t_us: Vec<u64> = (0..3000).map(|i| i * 333).collect();
        let mut rng = SimRng::new(9).stream("noise-only");
        let series: Vec<Vec<f64>> = (0..30)
            .map(|_| t_us.iter().map(|_| 10.0 + rng.gaussian(0.0, 0.3)).collect())
            .collect();
        let bundle = SeriesBundle { t_us, series };
        let dec = UplinkDecoder::new(UplinkDecoderConfig::csi(100, 90));
        assert!(dec.decode(&bundle, 200_000).is_none());
    }

    #[test]
    fn rssi_mode_uses_single_channel() {
        let payload = payload_90();
        let (bundle, _) = synth_bundle(&payload, 3, 2, 0.6, 0.1, 333, 10_000, 20_000, 5);
        let dec = UplinkDecoder::new(UplinkDecoderConfig::rssi(100, 90));
        let out = dec.decode(&bundle, 20_000).expect("no detection");
        assert_eq!(out.channels.len(), 1);
        assert_eq!(out.frame.expect("erasures").payload, payload);
    }

    #[test]
    fn empty_bundle_is_none() {
        let dec = UplinkDecoder::new(UplinkDecoderConfig::csi(100, 8));
        let bundle = SeriesBundle {
            t_us: vec![],
            series: vec![],
        };
        assert!(dec.decode(&bundle, 0).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bit_duration_panics() {
        let mut cfg = UplinkDecoderConfig::csi(100, 8);
        cfg.bit_duration_us = 0;
        UplinkDecoder::new(cfg);
    }

    #[test]
    fn csi_config_clamps_bit_duration_above_1mbps() {
        // 2 Mbps: 1_000_000 / 2_000_000 truncates to 0, which used to
        // trip the constructor assert; the config must clamp to 1 µs.
        let cfg = UplinkDecoderConfig::csi(2_000_000, 8);
        assert_eq!(cfg.bit_duration_us, 1);
        UplinkDecoder::new(cfg); // must not panic
        let rssi = UplinkDecoderConfig::rssi(2_000_000, 8);
        assert_eq!(rssi.bit_duration_us, 1);
        UplinkDecoder::new(rssi);
    }

    #[test]
    fn nan_correlation_channel_is_skipped_not_fatal() {
        // One channel is pure NaN (a wedged sensor): its normalised
        // preamble correlation is NaN. The ranking must skip it — not
        // panic in the sort, not keep it — and still decode the clean
        // channels.
        let payload = payload_90();
        let (mut bundle, _) = synth_bundle(&payload, 10, 8, 0.5, 0.1, 333, 10_000, 100_000, 7);
        for v in &mut bundle.series[9] {
            *v = f64::NAN;
        }
        let dec = UplinkDecoder::new(UplinkDecoderConfig::csi(100, 90));
        let out = dec.decode(&bundle, 100_000).expect("no detection");
        assert!(out.channels.iter().all(|c| c.index != 9), "kept NaN channel");
        assert!(out.channels.iter().all(|c| c.score.is_finite()));
        assert_eq!(out.frame.as_ref().expect("erasures").payload, payload);
        // The reference path applies the same skip.
        let reference = dec.decode_reference(&bundle, 100_000).expect("no detection");
        assert_eq!(reference, out);
    }

    #[test]
    fn indexed_decode_matches_reference_bit_for_bit() {
        let payload = payload_90();
        for (seed, gap, hint) in [(11u64, 333u64, 100_000u64), (12, 1_100, 104_500), (13, 3_300, 95_000)] {
            let (bundle, _) = synth_bundle(&payload, 20, 8, 0.5, 0.4, gap, 10_000, 100_000, seed);
            for cfg in [
                UplinkDecoderConfig::csi(100, 90),
                UplinkDecoderConfig::rssi(100, 90),
                UplinkDecoderConfig::csi(100, 90).with_combining(Combining::EqualGain),
                UplinkDecoderConfig::csi(100, 90).with_hysteresis(false),
                UplinkDecoderConfig::csi(100, 90).with_search_bits(5),
            ] {
                let dec = UplinkDecoder::new(cfg);
                let a = dec.decode_reference(&bundle, hint);
                let b = dec.decode(&bundle, hint);
                assert_eq!(a, b, "seed {seed} gap {gap}");
            }
        }
    }

    #[test]
    fn shared_index_reuse_matches_fresh_decodes() {
        // One SlotIndex serving several decoders (the drift re-scan
        // pattern: same capture, different bit durations) must yield the
        // same outputs as fresh per-decode indexes.
        use bs_dsp::obs::NullRecorder;
        let payload = payload_90();
        let (bundle, _) = synth_bundle(&payload, 20, 8, 0.5, 0.3, 333, 10_000, 100_000, 21);
        let mut shared = crate::series::SlotIndex::new(&bundle);
        for bit_us in [10_000u64, 9_950, 10_050, 10_000] {
            let mut cfg = UplinkDecoderConfig::csi(100, 90);
            cfg.bit_duration_us = bit_us;
            let dec = UplinkDecoder::new(cfg);
            let fresh = dec.decode(&bundle, 100_000);
            let reused = dec.decode_indexed(&mut shared, 100_000, &mut NullRecorder);
            assert_eq!(fresh, reused, "bit_us {bit_us}");
        }
    }

    #[test]
    fn stream_feed_matches_batch_decode_bit_for_bit() {
        // Packet-at-a-time, burst-at-a-time, and single-shot feeding must
        // all produce exactly the batch decode() output.
        let payload = payload_90();
        let (bundle, _) = synth_bundle(&payload, 20, 8, 0.5, 0.3, 333, 10_000, 100_000, 31);
        let dec = UplinkDecoder::new(UplinkDecoderConfig::csi(100, 90));
        let batch = dec.decode(&bundle, 100_000);
        assert!(batch.is_some());

        let mut one_by_one = dec.stream(bundle.channels(), 100_000);
        for p in 0..bundle.packets() {
            let values: Vec<f64> = bundle.series.iter().map(|s| s[p]).collect();
            assert!(one_by_one.feed_packet(bundle.t_us[p], &values).any());
        }
        assert_eq!(one_by_one.peak_resident(), bundle.packets());
        assert_eq!(one_by_one.finish(), batch);

        let mut bursts = dec.stream(bundle.channels(), 100_000);
        let mut at = 0usize;
        for size in [1usize, 7, 64, 500, usize::MAX] {
            let hi = bundle.packets().min(at.saturating_add(size));
            let chunk = SeriesBundle {
                t_us: bundle.t_us[at..hi].to_vec(),
                series: bundle.series.iter().map(|s| s[at..hi].to_vec()).collect(),
            };
            assert_eq!(bursts.feed(&chunk).accepted, hi - at);
            at = hi;
        }
        assert_eq!(at, bundle.packets());
        assert_eq!(bursts.finish(), batch);
    }

    #[test]
    fn bounded_stream_applies_backpressure_and_decodes_prefix() {
        let payload = payload_90();
        let (bundle, _) = synth_bundle(&payload, 20, 8, 0.5, 0.3, 333, 10_000, 100_000, 32);
        let cap = bundle.packets() / 2;
        let dec = UplinkDecoder::new(UplinkDecoderConfig::csi(100, 90));
        let mut session = dec.stream_bounded(bundle.channels(), 100_000, cap);
        assert_eq!(session.feed(&bundle).accepted, cap);
        assert!(!session.feed(&bundle).any()); // full: explicit backpressure
        assert_eq!(session.packets(), cap);
        // The bounded session decodes exactly the prefix it accepted.
        let prefix = SeriesBundle {
            t_us: bundle.t_us[..cap].to_vec(),
            series: bundle.series.iter().map(|s| s[..cap].to_vec()).collect(),
        };
        assert_eq!(session.finish(), dec.decode(&prefix, 100_000));
    }

    #[test]
    fn more_packets_per_bit_decodes_at_higher_noise() {
        // The Fig. 10 mechanism: at a noise level where 3 packets/bit
        // fails, 30 packets/bit still decodes.
        let payload = payload_90();
        let errors_at = |gap_us: u64, seed: u64| -> u64 {
            let (bundle, _) = synth_bundle(&payload, 30, 10, 0.35, 1.0, gap_us, 10_000, 0, seed);
            let mut cfg = UplinkDecoderConfig::csi(100, 90);
            cfg.min_preamble_score = 0.0;
            let dec = UplinkDecoder::new(cfg);
            match dec.decode(&bundle, 0) {
                Some(out) => out
                    .bits
                    .iter()
                    .zip(&payload)
                    .filter(|(b, &w)| **b != Some(w))
                    .count() as u64,
                None => payload.len() as u64,
            }
        };
        let dense: u64 = (0..4).map(|s| errors_at(333, 300 + s)).sum(); // ~30 pkts/bit
        let sparse: u64 = (0..4).map(|s| errors_at(3_300, 400 + s)).sum(); // ~3 pkts/bit
        assert!(dense < sparse, "dense {dense} sparse {sparse}");
    }
}
