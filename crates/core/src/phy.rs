//! The PHY mode family: modulation, decode and rate adaptation behind
//! object-safe traits.
//!
//! The paper's reader has exactly one physical layer — presence/CSI on
//! the uplink, envelope on the downlink — and before this module the
//! whole stack above (`link`, `session`, `multitag`, `bs-net`) was
//! welded to it. The family splits the contract in three:
//!
//! * [`PhyUplink`] — run one tag→reader frame exchange over a
//!   [`LinkConfig`];
//! * [`PhyDownlink`] — run the reader→tag side over a
//!   [`DownlinkConfig`];
//! * [`PhyMode`] — both halves plus a [`PhyCapabilities`] descriptor.
//!
//! Two implementations ship:
//!
//! * [`PresencePhy`] — the paper's PHY, re-homed. Its output is
//!   bit-identical to the pre-trait code path (the conformance suite and
//!   the decode goldens pin this).
//! * [`CodewordPhy`] — FreeRider-style codeword translation
//!   ([`crate::codeword`]): the tag phase-flips individual 802.11
//!   symbols of in-flight helper frames and the reader decodes the flip
//!   sequence from the demodulation residue. Orders of magnitude faster,
//!   zero dedicated airtime.
//!
//! Callers pick a mode with [`LinkConfig::with_phy`] (and the session /
//! gateway equivalents); the [`run_uplink`] / `run_downlink_*` functions
//! here route through the configured mode and are what the prelude now
//! re-exports. The old direct functions in [`crate::link`] still exist
//! as `#[deprecated]` forwards.
//!
//! ## Why capabilities gate rate adaptation
//!
//! The §5 rate rules are not PHY-neutral: the presence mode's step table
//! (100–1000 bit/s) is the range a commanded tag oscillator can hold
//! while the decoder still gets multiple *packets* per bit, and its
//! re-adaptation halves a chip rate because halving doubles packets per
//! bit. Under codeword translation the currencies change — supply is
//! helper *symbols*, the tag has no free-running chip clock to halve,
//! and workable rates sit two orders of magnitude higher. Hardcoding
//! either table above the PHY boundary bakes one mode's physics into
//! mode-neutral layers, which is exactly the coupling this redesign
//! removes: the session and gateway now ask [`PhyCapabilities`] to
//! select, re-adapt, and wire-encode rates.

use crate::codeword::{run_codeword_uplink_with, CodewordParams, CODEWORD_RATE_STEPS_BPS};
use crate::link::{
    presence_downlink_ber_with, presence_downlink_frame_with, presence_uplink_with,
    DegradationReport, DownlinkConfig, DownlinkRun, LinkConfig, UplinkRun,
};
use crate::protocol::{select_bit_rate, SUPPORTED_RATES_BPS};
use bs_dsp::obs::{MemRecorder, NullRecorder, Recorder};
use bs_tag::frame::{DownlinkFrame, UplinkFrame};
use bs_wifi::rate_adapt::cadence_collapsed;

/// The uplink half of a PHY mode: one tag→reader frame exchange.
pub trait PhyUplink {
    /// Runs one uplink exchange under `cfg`, with observability threaded
    /// through `rec`. Implementations must keep every RNG draw
    /// independent of the recorder.
    fn uplink_with(&self, cfg: &LinkConfig, rec: &mut dyn Recorder) -> UplinkRun;
}

/// The downlink half of a PHY mode: the reader→tag side.
pub trait PhyDownlink {
    /// Measures raw downlink BER over `n_bits` random bits.
    fn downlink_ber_with(
        &self,
        cfg: &DownlinkConfig,
        n_bits: usize,
        rec: &mut dyn Recorder,
    ) -> DownlinkRun;

    /// Sends one framed downlink message end-to-end.
    fn downlink_frame_with(
        &self,
        cfg: &DownlinkConfig,
        frame: &DownlinkFrame,
        rec: &mut dyn Recorder,
    ) -> (Option<DownlinkFrame>, DegradationReport);
}

/// A complete PHY mode: both link directions plus a capability
/// descriptor the mode-neutral layers (session, gateway) consult.
pub trait PhyMode: PhyUplink + PhyDownlink {
    /// Short stable identifier (`"presence"`, `"codeword"`).
    fn name(&self) -> &'static str;

    /// What this mode can do and which rate rules apply to it.
    fn capabilities(&self) -> PhyCapabilities;
}

/// Internal discriminant carrying the mode-specific numbers the
/// capability methods need.
#[derive(Debug, Clone, PartialEq)]
enum CapabilityKind {
    Presence,
    Codeword { syms_per_bit: u64, syms_per_frame: u64 },
}

/// What a PHY mode can do, in the vocabulary the layers above the PHY
/// actually consume. Constructed by the mode (via
/// [`PhyMode::capabilities`] or [`PhyConfig::capabilities`]), never by
/// hand — the private discriminant keeps the rate rules tied to the
/// physics they model.
#[derive(Debug, Clone, PartialEq)]
pub struct PhyCapabilities {
    /// The mode's stable identifier.
    pub name: &'static str,
    /// True if tag bits ride inside existing data frames (codeword
    /// translation) rather than across dedicated helper packets.
    pub rides_data_frames: bool,
    /// True if the mode consumes helper airtime purpose-sent for the
    /// tag (the presence mode's CBR injection).
    pub dedicated_airtime: bool,
    /// True if the mode has a long-range orthogonal-coded fallback the
    /// session may retry with (§3.4 applies to the presence PHY only).
    pub coded_fallback: bool,
    /// The mode's supported tag bit rates (bits/s), ascending.
    pub rate_steps_bps: Vec<u64>,
    /// Conditioning lead the reader budgets before a response's first
    /// bit can land (µs) — the presence decoder's moving-average warmup;
    /// zero for codeword translation.
    pub response_lead_us: u64,
    /// Singulation slot length this PHY needs (µs): long enough for one
    /// short reply at the mode's base rate.
    pub inventory_slot_us: u64,
    kind: CapabilityKind,
}

impl PhyCapabilities {
    /// Capabilities of the paper's presence/CSI PHY.
    pub fn presence() -> Self {
        PhyCapabilities {
            name: "presence",
            rides_data_frames: false,
            dedicated_airtime: true,
            coded_fallback: true,
            rate_steps_bps: SUPPORTED_RATES_BPS.to_vec(),
            response_lead_us: 1_200_000,
            inventory_slot_us: 2_500,
            kind: CapabilityKind::Presence,
        }
    }

    /// Capabilities of the codeword-translation PHY for `params`.
    pub fn codeword(params: &CodewordParams) -> Self {
        PhyCapabilities {
            name: "codeword",
            rides_data_frames: true,
            dedicated_airtime: false,
            coded_fallback: false,
            rate_steps_bps: CODEWORD_RATE_STEPS_BPS.to_vec(),
            response_lead_us: 0,
            inventory_slot_us: 400,
            kind: CapabilityKind::Codeword {
                syms_per_bit: params.syms_per_bit(),
                syms_per_frame: crate::codeword::helper_frame_symbols(),
            },
        }
    }

    /// The §5 rate-selection rule in this mode's currency: the fastest
    /// step the offered helper traffic supports with `margin` headroom,
    /// or the slowest step if none qualifies.
    ///
    /// Presence counts *packets* per bit (`pkts_per_bit` measurements
    /// each); codeword counts *symbols* per bit, so `pkts_per_bit` is
    /// ignored there and the ceiling is
    /// `margin · helper_pps · syms_per_frame / syms_per_bit`.
    pub fn select_rate_bps(&self, helper_pps: f64, pkts_per_bit: u32, margin: f64) -> u64 {
        match &self.kind {
            CapabilityKind::Presence => select_bit_rate(helper_pps, pkts_per_bit, margin),
            CapabilityKind::Codeword {
                syms_per_bit,
                syms_per_frame,
            } => {
                let max_rate =
                    margin * helper_pps * *syms_per_frame as f64 / *syms_per_bit as f64;
                self.rate_steps_bps
                    .iter()
                    .rev()
                    .find(|&&r| (r as f64) <= max_rate)
                    .copied()
                    .unwrap_or(self.rate_steps_bps[0])
            }
        }
    }

    /// Rate re-adaptation when the measured helper cadence collapses
    /// below what selection assumed: `Some(lower_rate)` if stepping down
    /// helps, `None` if the cadence is healthy or the rate is already at
    /// the floor. Presence delegates to the §5 chip-halving rule
    /// ([`bs_wifi::rate_adapt::readapt_chip_rate`], floor 25 cps);
    /// codeword steps down its own table.
    pub fn readapt_rate(&self, current_bps: u64, measured_pps: f64, target_ppb: f64) -> Option<u64> {
        match &self.kind {
            CapabilityKind::Presence => {
                bs_wifi::rate_adapt::readapt_chip_rate(current_bps, measured_pps, target_ppb)
            }
            CapabilityKind::Codeword {
                syms_per_bit,
                syms_per_frame,
            } => {
                let expected_pps =
                    current_bps as f64 * *syms_per_bit as f64 / *syms_per_frame as f64;
                if !cadence_collapsed(measured_pps, expected_pps) {
                    return None;
                }
                self.rate_steps_bps
                    .iter()
                    .rev()
                    .find(|&&r| r < current_bps)
                    .copied()
            }
        }
    }

    /// Airtime the reader budgets for one uplink response of
    /// `payload_bits` at `bit_rate_bps` (µs): the on-air frame plus this
    /// mode's conditioning lead. `code_length` spreads presence bits
    /// only (the codeword mode has no coded fallback).
    pub fn response_air_us(&self, payload_bits: usize, bit_rate_bps: u64, code_length: usize) -> u64 {
        match &self.kind {
            CapabilityKind::Presence => {
                1_200_000
                    + ((payload_bits + 13) * code_length) as u64 * 1_000_000
                        / bit_rate_bps.max(1)
            }
            CapabilityKind::Codeword { .. } => {
                UplinkFrame::on_air_len(payload_bits) as u64 * 1_000_000 / bit_rate_bps.max(1)
            }
        }
    }

    /// The rate index the query wire format carries for a selected rate.
    /// The wire encodes an index into the presence table
    /// ([`SUPPORTED_RATES_BPS`]); presence rates map to themselves.
    /// Codeword rates never fit that table — the tag's clock is the
    /// helper's symbol train, so the field is vestigial and pins to the
    /// table's top entry to stay encodable.
    pub fn wire_rate_bps(&self, selected_bps: u64) -> u64 {
        match &self.kind {
            CapabilityKind::Presence => selected_bps,
            CapabilityKind::Codeword { .. } => *SUPPORTED_RATES_BPS
                .last()
                .expect("supported rate table is non-empty"),
        }
    }
}

/// Which PHY mode a link/session/gateway runs — the value callers put in
/// configs via `with_phy(...)`. [`PhyConfig::Presence`] is the default
/// everywhere, keeping pre-trait behaviour.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum PhyConfig {
    /// The paper's presence/CSI PHY (the baseline).
    #[default]
    Presence,
    /// FreeRider-style codeword translation with the given shape.
    Codeword(CodewordParams),
}

impl PhyConfig {
    /// Codeword translation at the default shape.
    pub fn codeword() -> Self {
        PhyConfig::Codeword(CodewordParams::default())
    }

    /// Instantiates the configured mode.
    pub fn mode(&self) -> Box<dyn PhyMode> {
        match self {
            PhyConfig::Presence => Box::new(PresencePhy),
            PhyConfig::Codeword(p) => Box::new(CodewordPhy::new(p.clone())),
        }
    }

    /// The configured mode's capabilities (without boxing).
    pub fn capabilities(&self) -> PhyCapabilities {
        match self {
            PhyConfig::Presence => PhyCapabilities::presence(),
            PhyConfig::Codeword(p) => PhyCapabilities::codeword(p),
        }
    }

    /// The configured mode's stable identifier.
    pub fn name(&self) -> &'static str {
        match self {
            PhyConfig::Presence => "presence",
            PhyConfig::Codeword(_) => "codeword",
        }
    }
}

/// The paper's presence/CSI PHY as a [`PhyMode`]. A unit struct — all
/// its state lives in the configs it is handed. Its decode path is the
/// pre-trait `link` code, moved, not rewritten: outputs are
/// bit-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PresencePhy;

impl PhyUplink for PresencePhy {
    fn uplink_with(&self, cfg: &LinkConfig, rec: &mut dyn Recorder) -> UplinkRun {
        presence_uplink_with(cfg, rec)
    }
}

impl PhyDownlink for PresencePhy {
    fn downlink_ber_with(
        &self,
        cfg: &DownlinkConfig,
        n_bits: usize,
        rec: &mut dyn Recorder,
    ) -> DownlinkRun {
        presence_downlink_ber_with(cfg, n_bits, rec)
    }

    fn downlink_frame_with(
        &self,
        cfg: &DownlinkConfig,
        frame: &DownlinkFrame,
        rec: &mut dyn Recorder,
    ) -> (Option<DownlinkFrame>, DegradationReport) {
        presence_downlink_frame_with(cfg, frame, rec)
    }
}

impl PhyMode for PresencePhy {
    fn name(&self) -> &'static str {
        "presence"
    }

    fn capabilities(&self) -> PhyCapabilities {
        PhyCapabilities::presence()
    }
}

/// The codeword-translation PHY as a [`PhyMode`]. The uplink rides
/// in-flight helper frames ([`crate::codeword`]); the downlink reuses
/// the presence envelope channel — the tag's wake/command receiver is
/// the same analog front end whichever way its uplink modulates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CodewordPhy {
    params: CodewordParams,
}

impl CodewordPhy {
    /// A codeword PHY with the given shape.
    pub fn new(params: CodewordParams) -> Self {
        CodewordPhy { params }
    }

    /// The configured shape.
    pub fn params(&self) -> &CodewordParams {
        &self.params
    }
}

impl PhyUplink for CodewordPhy {
    fn uplink_with(&self, cfg: &LinkConfig, rec: &mut dyn Recorder) -> UplinkRun {
        run_codeword_uplink_with(cfg, &self.params, rec)
    }
}

impl PhyDownlink for CodewordPhy {
    fn downlink_ber_with(
        &self,
        cfg: &DownlinkConfig,
        n_bits: usize,
        rec: &mut dyn Recorder,
    ) -> DownlinkRun {
        presence_downlink_ber_with(cfg, n_bits, rec)
    }

    fn downlink_frame_with(
        &self,
        cfg: &DownlinkConfig,
        frame: &DownlinkFrame,
        rec: &mut dyn Recorder,
    ) -> (Option<DownlinkFrame>, DegradationReport) {
        presence_downlink_frame_with(cfg, frame, rec)
    }
}

impl PhyMode for CodewordPhy {
    fn name(&self) -> &'static str {
        "codeword"
    }

    fn capabilities(&self) -> PhyCapabilities {
        PhyCapabilities::codeword(&self.params)
    }
}

/// Runs one uplink frame exchange through the PHY mode configured in
/// `cfg.phy`. This is the routed successor of
/// [`crate::link::run_uplink`].
pub fn run_uplink(cfg: &LinkConfig) -> UplinkRun {
    run_uplink_with(cfg, &mut NullRecorder)
}

/// [`run_uplink`] with an armed [`MemRecorder`]: the returned run
/// carries `Some(ObsReport)`. The run itself is bit-identical to
/// [`run_uplink`].
pub fn run_uplink_observed(cfg: &LinkConfig) -> UplinkRun {
    let mut rec = MemRecorder::new();
    let mut run = run_uplink_with(cfg, &mut rec);
    run.obs = Some(rec.into_report());
    run
}

/// [`run_uplink`] with observability threaded through `rec`.
pub fn run_uplink_with(cfg: &LinkConfig, rec: &mut dyn Recorder) -> UplinkRun {
    cfg.phy.mode().uplink_with(cfg, rec)
}

/// Measures raw downlink BER through the PHY mode configured in
/// `cfg.phy` (both shipped modes share the envelope downlink).
pub fn run_downlink_ber(cfg: &DownlinkConfig, n_bits: usize) -> DownlinkRun {
    run_downlink_ber_with(cfg, n_bits, &mut NullRecorder)
}

/// [`run_downlink_ber`] with an armed [`MemRecorder`].
pub fn run_downlink_ber_observed(cfg: &DownlinkConfig, n_bits: usize) -> DownlinkRun {
    let mut rec = MemRecorder::new();
    let mut run = run_downlink_ber_with(cfg, n_bits, &mut rec);
    run.obs = Some(rec.into_report());
    run
}

/// [`run_downlink_ber`] with observability threaded through `rec`.
pub fn run_downlink_ber_with(
    cfg: &DownlinkConfig,
    n_bits: usize,
    rec: &mut dyn Recorder,
) -> DownlinkRun {
    cfg.phy.mode().downlink_ber_with(cfg, n_bits, rec)
}

/// Sends one framed downlink message through the configured PHY mode.
pub fn run_downlink_frame(cfg: &DownlinkConfig, frame: &DownlinkFrame) -> Option<DownlinkFrame> {
    run_downlink_frame_with_report(cfg, frame).0
}

/// [`run_downlink_frame`] plus the [`DegradationReport`].
pub fn run_downlink_frame_with_report(
    cfg: &DownlinkConfig,
    frame: &DownlinkFrame,
) -> (Option<DownlinkFrame>, DegradationReport) {
    run_downlink_frame_with(cfg, frame, &mut NullRecorder)
}

/// [`run_downlink_frame_with_report`] with observability threaded
/// through `rec`.
pub fn run_downlink_frame_with(
    cfg: &DownlinkConfig,
    frame: &DownlinkFrame,
    rec: &mut dyn Recorder,
) -> (Option<DownlinkFrame>, DegradationReport) {
    cfg.phy.mode().downlink_frame_with(cfg, frame, rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presence_capabilities_mirror_the_section5_rules() {
        let caps = PhyCapabilities::presence();
        assert_eq!(caps.rate_steps_bps, SUPPORTED_RATES_BPS.to_vec());
        for (pps, ppb, margin) in [(1_500.0, 5, 0.8), (600.0, 5, 0.9), (12_000.0, 5, 0.8)] {
            assert_eq!(
                caps.select_rate_bps(pps, ppb, margin),
                select_bit_rate(pps, ppb, margin)
            );
        }
        for (cur, meas, tgt) in [(500u64, 40.0, 5.0), (500, 2_500.0, 5.0), (25, 1.0, 5.0)] {
            assert_eq!(
                caps.readapt_rate(cur, meas, tgt),
                bs_wifi::rate_adapt::readapt_chip_rate(cur, meas, tgt)
            );
        }
        assert_eq!(caps.wire_rate_bps(200), 200);
        // The session's historical response budget, exactly
        // (conditioning lead + (payload + framing) bits at 100 bps,
        // code_length 1).
        assert_eq!(
            caps.response_air_us(90, 100, 1),
            1_200_000 + (90 + 13) as u64 * 1_000_000 / 100
        );
    }

    #[test]
    fn codeword_capabilities_scale_with_symbol_supply() {
        let caps = PhyCapabilities::codeword(&CodewordParams::default());
        // 3 000 pps × 42 syms / 4 syms-per-bit × 0.8 margin = 25 200 →
        // top of the step table.
        assert_eq!(caps.select_rate_bps(3_000.0, 5, 0.8), 25_000);
        // 500 pps → 4 200 → 2 000.
        assert_eq!(caps.select_rate_bps(500.0, 5, 0.8), 2_000);
        // Starved traffic floors at the slowest step instead of
        // presence's 100 bps.
        assert_eq!(caps.select_rate_bps(10.0, 5, 0.8), 1_000);
        assert!(caps.rate_steps_bps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn codeword_readapt_steps_down_its_own_table() {
        let caps = PhyCapabilities::codeword(&CodewordParams::default());
        // Healthy cadence: 10 000 bps needs ~952 pps; measuring that
        // exact supply is no collapse.
        assert_eq!(caps.readapt_rate(10_000, 952.0, 5.0), None);
        // Collapsed to a tenth: step down one entry.
        assert_eq!(caps.readapt_rate(10_000, 95.0, 5.0), Some(5_000));
        // Already at the floor.
        assert_eq!(caps.readapt_rate(1_000, 1.0, 5.0), None);
    }

    #[test]
    fn codeword_wire_rate_is_always_encodable() {
        let caps = PhyCapabilities::codeword(&CodewordParams::default());
        for r in CODEWORD_RATE_STEPS_BPS {
            let wire = caps.wire_rate_bps(r);
            assert!(SUPPORTED_RATES_BPS.contains(&wire));
        }
    }

    #[test]
    fn codeword_response_budget_has_no_conditioning_lead() {
        let p = PhyCapabilities::presence();
        let c = PhyCapabilities::codeword(&CodewordParams::default());
        assert!(c.response_air_us(90, 25_000, 1) < 10_000);
        assert!(p.response_air_us(90, 1_000, 1) > 1_200_000);
    }

    #[test]
    fn config_routes_to_the_right_mode() {
        assert_eq!(PhyConfig::default(), PhyConfig::Presence);
        assert_eq!(PhyConfig::Presence.mode().name(), "presence");
        assert_eq!(PhyConfig::codeword().mode().name(), "codeword");
        assert_eq!(PhyConfig::codeword().capabilities().name, "codeword");
        assert!(PhyConfig::Presence.capabilities().coded_fallback);
        assert!(!PhyConfig::codeword().capabilities().coded_fallback);
    }
}
