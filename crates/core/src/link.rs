//! End-to-end link simulation: scene + MAC + tag + reader.
//!
//! This is the API every example and experiment harness uses. An uplink
//! run wires together:
//!
//! 1. traffic generation and the DCF medium (`bs-wifi::mac`) — *when do
//!    helper packets actually reach the reader?*,
//! 2. the tag's modulator (`bs-tag::modulator`) — *what state is the
//!    switch in when each packet flies?*,
//! 3. the propagation scene (`bs-channel::scene`) — *what channel does the
//!    reader see for that packet?*,
//! 4. the measurement model (`bs-wifi::csi` / `bs-wifi::rssi`), and
//! 5. the paper's decoder ([`crate::uplink`] / [`crate::longrange`]).
//!
//! A downlink run wires the encoder ([`crate::downlink`]) through the
//! tag-side envelope model and receiver circuit (`bs-tag`).

use crate::downlink::{DownlinkEncoder, DownlinkEncoderConfig};
use crate::longrange::{LongRangeConfig, LongRangeDecoder};
use crate::phy::PhyConfig;
use crate::series::{SeriesBundle, SlotIndex};
use crate::uplink::{UplinkDecoder, UplinkDecoderConfig};
use bs_channel::faults::{FaultEvents, FaultPlan};
use bs_channel::scene::{Scene, SceneConfig};
use bs_dsp::bits::BerCounter;
use bs_dsp::codes::OrthogonalPair;
use bs_dsp::obs::{NullRecorder, ObsReport, Recorder};
use bs_dsp::SimRng;
use bs_tag::envelope::{EnvelopeConfig, EnvelopeModel};
use bs_tag::frame::{DownlinkFrame, UplinkFrame};
use bs_tag::modulator::{Modulator, UplinkMode};
use bs_tag::receiver::{CircuitConfig, DownlinkDecoder, ReceiverCircuit};
use bs_wifi::mac::{Medium, Station, Transmission};
use bs_wifi::ofdm::csi_subchannel_offsets;
use bs_wifi::{CsiExtractor, RssiExtractor};

/// Which channel measurement the reader uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measurement {
    /// Per-sub-channel CSI from the Intel tool (§3.2).
    Csi,
    /// Per-antenna RSSI only (§3.3).
    Rssi,
}

/// Which of the link layer's fault mitigations are armed.
///
/// The mitigations compose; each engages only when its trigger condition
/// is observed, and every engagement is recorded in the run's
/// [`DegradationReport`]. With every flag off (the default) the link
/// behaves exactly as it did before fault injection existed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MitigationPolicy {
    /// Switch the reader to the §3.3 RSSI pipeline when the CSI feed is
    /// degraded (the Intel tool's wedge-and-repeat failure leaves RSSI
    /// flowing).
    pub csi_fallback: bool,
    /// Re-adapt the commanded packets-per-bit rate: proactively when the
    /// measured packet cadence collapses below what §5 rate selection
    /// assumed, and reactively (rate step-down retries) when decoded bits
    /// come back starved.
    pub rate_readapt: bool,
    /// Re-scan the decode with candidate chip-clock stretch factors to
    /// compensate tag oscillator drift.
    pub drift_rescan: bool,
}

impl MitigationPolicy {
    /// Every mitigation armed — what a robust production reader runs.
    pub fn all() -> Self {
        MitigationPolicy {
            csi_fallback: true,
            rate_readapt: true,
            drift_rescan: true,
        }
    }

    /// No mitigations (the pre-fault-injection behaviour).
    pub fn none() -> Self {
        MitigationPolicy::default()
    }

    /// Arms or disarms the CSI→RSSI fallback (default: off).
    pub fn with_csi_fallback(mut self, on: bool) -> Self {
        self.csi_fallback = on;
        self
    }

    /// Arms or disarms rate re-adaptation (default: off).
    pub fn with_rate_readapt(mut self, on: bool) -> Self {
        self.rate_readapt = on;
        self
    }

    /// Arms or disarms the drift re-scan (default: off).
    pub fn with_drift_rescan(mut self, on: bool) -> Self {
        self.drift_rescan = on;
        self
    }
}

/// What went wrong during a run and what the link layer did about it.
///
/// Attached to every [`UplinkRun`] and [`DownlinkRun`]; the bench harness
/// serialises it into each `RunRecord` JSON line. Fault names come from
/// `bs_channel::faults::Fault::name`; mitigation names are
/// `"csi-fallback"`, `"rate-readapt"` and `"drift-rescan"`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradationReport {
    /// Faults that observably fired, in first-fired order.
    pub faults_fired: Vec<String>,
    /// Mitigations that engaged, in first-engaged order.
    pub mitigations_engaged: Vec<String>,
    /// Packets removed by outage/collapse/loss, across all captures.
    pub packets_dropped: u64,
    /// Packets injected by duplication, across all captures.
    pub packets_duplicated: u64,
    /// Scheduled helper-outage time over the affected span (µs).
    pub outage_us: u64,
    /// CSI measurements replaced by stale repeats.
    pub frozen_packets: u64,
    /// Fractional tag clock drift the channel applied.
    pub drift_applied: f64,
    /// Stretch factor the drift re-scan settled on (0 = none needed).
    pub drift_compensation: f64,
    /// The re-adapted chip rate, if rate re-adaptation engaged (bps).
    pub readapted_rate_bps: Option<u64>,
    /// Rate step-down retries the reactive mitigation spent.
    pub retries_used: u32,
}

impl DegradationReport {
    /// True if `name` appears in [`DegradationReport::faults_fired`].
    pub fn fired(&self, name: &str) -> bool {
        self.faults_fired.iter().any(|f| f == name)
    }

    /// True if `name` appears in [`DegradationReport::mitigations_engaged`].
    pub fn engaged(&self, name: &str) -> bool {
        self.mitigations_engaged.iter().any(|m| m == name)
    }

    /// Records a mitigation engagement (idempotent).
    pub fn engage(&mut self, name: &str) {
        if !self.engaged(name) {
            self.mitigations_engaged.push(name.to_string());
        }
    }

    /// Folds one capture's fault events into the report.
    pub fn absorb(&mut self, events: &FaultEvents) {
        for name in &events.fired {
            if !self.fired(name) {
                self.faults_fired.push(name.clone());
            }
        }
        self.packets_dropped += events.packets_dropped;
        self.packets_duplicated += events.packets_duplicated;
        self.outage_us += events.outage_us;
        self.frozen_packets += events.frozen_packets;
        if events.drift_fraction.abs() > self.drift_applied.abs() {
            self.drift_applied = events.drift_fraction;
        }
    }

    /// Folds another report into this one (names union, counters add) —
    /// used by the session to aggregate over its attempts.
    pub fn merge(&mut self, other: &DegradationReport) {
        for name in &other.faults_fired {
            if !self.fired(name) {
                self.faults_fired.push(name.clone());
            }
        }
        for name in &other.mitigations_engaged {
            self.engage(name);
        }
        self.packets_dropped += other.packets_dropped;
        self.packets_duplicated += other.packets_duplicated;
        self.outage_us += other.outage_us;
        self.frozen_packets += other.frozen_packets;
        if other.drift_applied.abs() > self.drift_applied.abs() {
            self.drift_applied = other.drift_applied;
        }
        if other.drift_compensation.abs() > self.drift_compensation.abs() {
            self.drift_compensation = other.drift_compensation;
        }
        if other.readapted_rate_bps.is_some() {
            self.readapted_rate_bps = other.readapted_rate_bps;
        }
        self.retries_used += other.retries_used;
    }

    /// True if nothing fired and nothing engaged.
    pub fn is_clean(&self) -> bool {
        self.faults_fired.is_empty() && self.mitigations_engaged.is_empty()
    }

    /// Serialises the report as a JSON object (one line, no trailing
    /// newline) for the bench `RunRecord` stream. Names are fixed
    /// kebab-case identifiers, so no string escaping is needed.
    pub fn to_json(&self) -> String {
        let names = |v: &[String]| {
            let quoted: Vec<String> = v.iter().map(|n| format!("\"{n}\"")).collect();
            format!("[{}]", quoted.join(","))
        };
        format!(
            "{{\"faults_fired\":{},\"mitigations_engaged\":{},\"packets_dropped\":{},\
             \"packets_duplicated\":{},\"outage_us\":{},\"frozen_packets\":{},\
             \"drift_applied\":{:?},\"drift_compensation\":{:?},\
             \"readapted_rate_bps\":{},\"retries_used\":{}}}",
            names(&self.faults_fired),
            names(&self.mitigations_engaged),
            self.packets_dropped,
            self.packets_duplicated,
            self.outage_us,
            self.frozen_packets,
            self.drift_applied,
            self.drift_compensation,
            self.readapted_rate_bps
                .map_or("null".to_string(), |r| r.to_string()),
            self.retries_used,
        )
    }
}

/// Configuration of an end-to-end uplink run.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// The propagation scene (positions, path loss, tag RCS…).
    pub scene: SceneConfig,
    /// Master seed for the whole run.
    pub seed: u64,
    /// Offered load at the helper (packets/s).
    pub helper_pps: f64,
    /// Tag chip (switch-toggle) rate; equals the bit rate in plain mode.
    pub chip_rate_cps: u64,
    /// Uplink payload the tag sends.
    pub payload: Vec<bool>,
    /// CSI or RSSI at the reader.
    pub measurement: Measurement,
    /// Orthogonal code length; 1 = plain mode.
    pub code_length: usize,
    /// Extra contending stations `(offered_pps, payload_bytes)` to model a
    /// busy network.
    pub background: Vec<(f64, usize)>,
    /// If true, the reader uses every delivered packet regardless of
    /// sender (§5 "leveraging traffic from all Wi-Fi devices"); otherwise
    /// only the helper's.
    pub use_all_traffic: bool,
    /// Replace the Intel 5300 artifact model with an ideal CSI extractor
    /// (thermal estimation noise only) — for the ablation benches.
    pub ideal_csi: bool,
    /// Multiplier on the Intel spurious-jump probability (1.0 = the
    /// calibrated rate) — the hysteresis ablation raises this to make the
    /// glitch-rejection benefit measurable in short runs.
    pub csi_spurious_boost: f64,
    /// Injected faults; [`FaultPlan::none`] leaves the run untouched.
    pub faults: FaultPlan,
    /// Which mitigations the reader arms against those faults.
    pub mitigations: MitigationPolicy,
    /// Which PHY mode runs the exchange (default:
    /// [`PhyConfig::Presence`], the paper's PHY).
    pub phy: PhyConfig,
}

impl LinkConfig {
    /// The canonical Fig. 10 configuration: the standard uplink scene at
    /// `tag_reader_m`, 90-bit payload, helper injecting enough traffic for
    /// `pkts_per_bit` measurements per bit at `bit_rate_bps`.
    pub fn fig10(tag_reader_m: f64, bit_rate_bps: u64, pkts_per_bit: u32, seed: u64) -> Self {
        LinkConfig {
            scene: SceneConfig::uplink(tag_reader_m),
            seed,
            helper_pps: (bit_rate_bps * u64::from(pkts_per_bit)) as f64,
            chip_rate_cps: bit_rate_bps,
            payload: (0..90).map(|i| (i * 13) % 7 < 3).collect(),
            measurement: Measurement::Csi,
            code_length: 1,
            background: Vec::new(),
            use_all_traffic: false,
            ideal_csi: false,
            csi_spurious_boost: 1.0,
            faults: FaultPlan::none(),
            mitigations: MitigationPolicy::none(),
            phy: PhyConfig::Presence,
        }
    }

    /// Sets the uplink payload (default: the canonical 90-bit Fig. 10
    /// pattern).
    pub fn with_payload(mut self, payload: Vec<bool>) -> Self {
        self.payload = payload;
        self
    }

    /// Sets the reader measurement (default: [`Measurement::Csi`]).
    pub fn with_measurement(mut self, measurement: Measurement) -> Self {
        self.measurement = measurement;
        self
    }

    /// Sets the orthogonal code length (default: 1 = plain mode).
    pub fn with_code_length(mut self, code_length: usize) -> Self {
        self.code_length = code_length;
        self
    }

    /// Adds contending background stations `(offered_pps, payload_bytes)`
    /// (default: none).
    pub fn with_background(mut self, background: Vec<(f64, usize)>) -> Self {
        self.background = background;
        self
    }

    /// Lets the reader use every delivered packet regardless of sender
    /// (default: helper-only).
    pub fn with_all_traffic(mut self, on: bool) -> Self {
        self.use_all_traffic = on;
        self
    }

    /// Sets the injected fault plan (default: [`FaultPlan::none`]).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the armed mitigations (default: [`MitigationPolicy::none`]).
    pub fn with_mitigations(mut self, mitigations: MitigationPolicy) -> Self {
        self.mitigations = mitigations;
        self
    }

    /// Sets the PHY mode (default: [`PhyConfig::Presence`]). The
    /// `crate::phy::run_*` entry points dispatch on this.
    pub fn with_phy(mut self, phy: PhyConfig) -> Self {
        self.phy = phy;
        self
    }
}

/// Result of an uplink run.
#[derive(Debug, Clone)]
pub struct UplinkRun {
    /// The payload the tag transmitted.
    pub transmitted: Vec<bool>,
    /// The reader's per-bit decisions (`None` = erasure or no detection).
    pub decoded: Vec<Option<bool>>,
    /// Bit-error accounting (erasures count as errors).
    pub ber: BerCounter,
    /// True if the decoder detected the preamble at all.
    pub detected: bool,
    /// Packets the reader measured.
    pub packets_used: usize,
    /// Mean packets per bit actually observed.
    pub pkts_per_bit: f64,
    /// Which faults fired and which mitigations engaged.
    pub degradation: DegradationReport,
    /// Observability report, populated only by
    /// [`crate::phy::run_uplink_observed`]; `None` everywhere else so
    /// existing records stay byte-stable.
    pub obs: Option<ObsReport>,
    /// Simulated airtime of the (final) exchange (µs) — what goodput
    /// figures divide delivered bits by. For the presence PHY this is
    /// the capture window (conditioning lead + frame span + lead); for
    /// codeword translation it ends with the helper frame carrying the
    /// schedule's last symbol.
    pub elapsed_us: u64,
}

impl UplinkRun {
    /// Whether the frame decoded without a single bit error.
    pub fn perfect(&self) -> bool {
        self.ber.errors() == 0 && self.detected
    }
}

/// The raw material of an uplink exchange *before* decoding: what the
/// reader measured and when the tag transmitted. Exposed so experiments
/// can inspect raw CSI traces (Figs 3, 4, 6) or decode per-sub-channel
/// (Fig. 5) without duplicating the simulation plumbing.
#[derive(Debug, Clone)]
pub struct UplinkCapture {
    /// The measured per-packet series.
    pub bundle: SeriesBundle,
    /// The frame the tag transmitted.
    pub frame: UplinkFrame,
    /// When the tag's transmission started (µs).
    pub start_us: u64,
    /// Chip duration (µs).
    pub chip_us: u64,
    /// Mean packets per chip actually delivered during the frame.
    pub pkts_per_chip: f64,
    /// What the configured [`FaultPlan`] did during this capture.
    pub fault_events: FaultEvents,
}

/// Runs the simulation pipeline up to (but not including) decoding.
pub fn capture_uplink(cfg: &LinkConfig) -> UplinkCapture {
    capture_uplink_with(cfg, &mut NullRecorder)
}

/// [`capture_uplink`] plus observability: spans `uplink.mac` (the DCF
/// simulation over the run's simulated span, items = transmissions) and
/// `uplink.capture` (the measurement sweep, items = packets measured),
/// the traffic/fault counters from
/// [`bs_wifi::traffic::apply_faults_with`], the per-measurement counters
/// from the CSI/RSSI extractors, and `uplink.packets-delivered`. The
/// capture itself — every RNG draw included — is bit-identical to
/// [`capture_uplink`].
pub fn capture_uplink_with(cfg: &LinkConfig, rec: &mut dyn Recorder) -> UplinkCapture {
    assert!(cfg.code_length >= 1, "code length must be >= 1");
    let root = SimRng::new(cfg.seed);
    let frame = UplinkFrame::new(cfg.payload.clone());
    let chip_us = 1_000_000 / cfg.chip_rate_cps.max(1);
    let total_chips = frame.to_bits().len() * cfg.code_length;

    // Lead-in/out so the conditioning moving average has context.
    let lead_us: u64 = 600_000;
    let frame_span_us = total_chips as u64 * chip_us;
    let duration_us = lead_us + frame_span_us + lead_us;

    let plan = &cfg.faults;
    let mut events = FaultEvents::default();

    // 1. Traffic + MAC. Fault decorators thin (or thicken) the offered
    // arrival streams before DCF contention, exactly as a stalled or
    // congested sender would.
    let mut traffic_rng = root.stream("helper-traffic");
    let mut stations = vec![Station::data(
        bs_wifi::traffic::apply_faults_with(
            bs_wifi::traffic::cbr(cfg.helper_pps, duration_us, &mut traffic_rng),
            plan,
            "helper",
            &mut events,
            rec,
        ),
        1000,
        54.0,
    )];
    for (i, &(pps, bytes)) in cfg.background.iter().enumerate() {
        let mut rng = root.stream("background").substream(i as u64);
        stations.push(Station::data(
            bs_wifi::traffic::apply_faults_with(
                bs_wifi::traffic::poisson(pps, duration_us, &mut rng),
                plan,
                &format!("background-{i}"),
                &mut events,
                rec,
            ),
            bytes,
            54.0,
        ));
    }
    let mut medium = Medium::new(Default::default(), root.stream("mac"));
    let (timeline, _) = medium.simulate(&stations, duration_us);
    rec.span("uplink.mac", 0, duration_us, timeline.len() as u64);
    let packets: Vec<_> = timeline
        .iter()
        .filter(|t| !t.collided && (cfg.use_all_traffic || t.frame.src == 0))
        .map(|t| t.frame)
        .collect();
    rec.add("uplink.packets-delivered", packets.len() as u64);

    // 2-4. Tag modulation, channel, measurement.
    let mode = if cfg.code_length == 1 {
        UplinkMode::Plain
    } else {
        UplinkMode::Coded(OrthogonalPair::new(cfg.code_length))
    };
    let modulator = Modulator::from_chip_rate(&frame, cfg.chip_rate_cps, mode, lead_us);

    // The tag's chip clock runs fast by the drift fraction: sampling its
    // state at a *stretched* time makes its whole frame run short relative
    // to the reader's clock.
    let drift = plan.clock_drift();
    if drift != 0.0 {
        events.fire("clock-drift");
        events.drift_fraction = drift;
    }
    let tag_clock = move |t_us: u64| -> u64 {
        if drift == 0.0 {
            t_us
        } else {
            ((t_us as f64) * (1.0 + drift)).round().max(0.0) as u64
        }
    };

    let mut scene_cfg = cfg.scene.clone();
    if let Some(intf) = plan.interference() {
        if scene_cfg.interference.is_none() {
            scene_cfg.interference = Some(intf);
        }
        events.fire("interference-burst");
    }
    let mut scene = Scene::new(scene_cfg, &root.stream("scene"));
    let offsets = csi_subchannel_offsets();
    let bundle = match cfg.measurement {
        Measurement::Csi => {
            let csi_cfg = if cfg.ideal_csi {
                bs_wifi::csi::CsiConfig::ideal()
            } else {
                let mut c = bs_wifi::csi::CsiConfig::default();
                c.spurious_jump_prob *= cfg.csi_spurious_boost;
                c
            };
            let mut ex = CsiExtractor::new(csi_cfg, root.stream("csi"));
            let degrade = plan.degrades_sensor();
            let mut last: Option<bs_wifi::csi::CsiMeasurement> = None;
            let ms: Vec<_> = packets
                .iter()
                .map(|p| {
                    let state = modulator.state_at(tag_clock(p.timestamp_us));
                    let snap = scene.snapshot(p.timestamp_us as f64 / 1e6, state, &offsets);
                    let fresh = ex.measure_with(&snap, p.timestamp_us, rec);
                    if degrade && plan.sensor_frozen_at(p.timestamp_us) {
                        if let Some(prev) = &last {
                            events.fire("sensor-degradation");
                            events.frozen_packets += 1;
                            let mut stale = prev.clone();
                            stale.timestamp_us = p.timestamp_us;
                            return stale;
                        }
                    }
                    last = Some(fresh.clone());
                    fresh
                })
                .collect();
            SeriesBundle::from_csi(&ms)
        }
        Measurement::Rssi => {
            // The wedge hits the CSI tool; RSSI keeps flowing. Still
            // record that the fault is active so a fallback run's report
            // names the fault it side-stepped.
            if plan.degrades_sensor() {
                events.fire("sensor-degradation");
            }
            let mut ex = RssiExtractor::new(root.stream("rssi"));
            let ms: Vec<_> = packets
                .iter()
                .map(|p| {
                    let state = modulator.state_at(tag_clock(p.timestamp_us));
                    let snap = scene.snapshot(p.timestamp_us as f64 / 1e6, state, &offsets);
                    ex.measure_with(&snap, p.timestamp_us, rec)
                })
                .collect();
            SeriesBundle::from_rssi(&ms)
        }
    };

    rec.span("uplink.capture", 0, duration_us, packets.len() as u64);
    let frame_packets = packets
        .iter()
        .filter(|p| p.timestamp_us >= lead_us && p.timestamp_us < lead_us + frame_span_us)
        .count();
    UplinkCapture {
        bundle,
        frame,
        start_us: lead_us,
        chip_us,
        pkts_per_chip: frame_packets as f64 / total_chips as f64,
        fault_events: events,
    }
}

/// One decode of a capture, compared against alternatives purely by
/// receiver-observable criteria (detection, erasure count, preamble
/// score) — the mitigations must never peek at the true payload.
struct DecodeAttempt {
    decoded: Vec<Option<bool>>,
    detected: bool,
    erasures: usize,
    score: f64,
    stretch: f64,
}

impl DecodeAttempt {
    fn better_than(&self, other: &DecodeAttempt) -> bool {
        if self.detected != other.detected {
            return self.detected;
        }
        if self.erasures != other.erasures {
            return self.erasures < other.erasures;
        }
        self.score > other.score + 1e-12
    }
}

/// Decodes `capture` once against a shared per-capture [`SlotIndex`],
/// optionally compensating a candidate clock stretch: a tag running fast
/// by fraction `stretch` produces bits shorter by the same fraction on
/// the reader's clock. All stretch candidates (and the long-range
/// fallback) re-decode the *same* capture, so they share the index's
/// conditioned series and slot statistics instead of re-scanning the
/// packet stream per attempt.
fn decode_capture(
    cfg: &LinkConfig,
    capture: &UplinkCapture,
    index: &mut SlotIndex<'_>,
    stretch: f64,
    rec: &mut dyn Recorder,
) -> DecodeAttempt {
    rec.add("uplink.decode-attempts", 1);
    let (decoded, detected, score) = if cfg.code_length == 1 {
        let mut dcfg = match cfg.measurement {
            Measurement::Csi => UplinkDecoderConfig::csi(cfg.chip_rate_cps, cfg.payload.len()),
            Measurement::Rssi => UplinkDecoderConfig::rssi(cfg.chip_rate_cps, cfg.payload.len()),
        };
        if stretch != 0.0 {
            let stretched = (dcfg.bit_duration_us as f64 / (1.0 + stretch)).round();
            dcfg.bit_duration_us = stretched.max(1.0) as u64;
        }
        match UplinkDecoder::new(dcfg).decode_indexed(index, capture.start_us, rec) {
            // Both timing anchors count: the preamble alone cannot tell a
            // right bit clock from a wrong one (error accumulates over
            // the frame; the front anchor sees none of it), so a stretch
            // candidate must also keep the postamble aligned to win.
            Some(out) => (out.bits, true, out.preamble_score + out.postamble_score),
            None => (vec![None; cfg.payload.len()], false, 0.0),
        }
    } else {
        let lcfg = LongRangeConfig {
            chip_duration_us: capture.chip_us,
            code: OrthogonalPair::new(cfg.code_length),
            payload_bits: cfg.payload.len(),
            conditioning_window_us: 400_000,
            top_channels: 10,
        };
        match LongRangeDecoder::new(lcfg).decode_indexed(index, capture.start_us, rec) {
            Some(out) => (out.bits, true, 1.0),
            None => (vec![None; cfg.payload.len()], false, 0.0),
        }
    };
    let erasures = decoded.iter().filter(|b| b.is_none()).count();
    DecodeAttempt {
        decoded,
        detected,
        erasures,
        score,
        stretch,
    }
}

/// Candidate clock-stretch factors the drift re-scan tries, nominal first
/// so an undrifted capture keeps its baseline decode on ties.
const DRIFT_CANDIDATES: [f64; 7] = [0.0, 0.005, -0.005, 0.01, -0.01, 0.02, -0.02];

/// Runs one end-to-end uplink frame exchange, routed through the PHY
/// mode configured in `cfg.phy`.
#[deprecated(
    since = "0.8.0",
    note = "use wifi_backscatter::phy::run_uplink — routed through the configured PhyMode"
)]
pub fn run_uplink(cfg: &LinkConfig) -> UplinkRun {
    crate::phy::run_uplink(cfg)
}

/// [`run_uplink`] with an armed [`MemRecorder`](bs_dsp::obs::MemRecorder): the
/// returned run carries
/// `Some(ObsReport)` with the full span/counter/gauge profile of the
/// exchange. The run itself (bits, BER, degradation) is bit-identical to
/// [`run_uplink`].
#[deprecated(
    since = "0.8.0",
    note = "use wifi_backscatter::phy::run_uplink_observed — routed through the configured PhyMode"
)]
pub fn run_uplink_observed(cfg: &LinkConfig) -> UplinkRun {
    crate::phy::run_uplink_observed(cfg)
}

/// [`run_uplink`] plus observability threading.
#[deprecated(
    since = "0.8.0",
    note = "use wifi_backscatter::phy::run_uplink_with — routed through the configured PhyMode"
)]
pub fn run_uplink_with(cfg: &LinkConfig, rec: &mut dyn Recorder) -> UplinkRun {
    crate::phy::run_uplink_with(cfg, rec)
}

/// The presence/CSI uplink exchange — the body behind
/// [`crate::phy::PresencePhy`]. This is the pre-trait `run_uplink_with`
/// code path, moved verbatim: all capture and decode instrumentation,
/// plus the link-level counters `link.retries` and
/// `link.mitigations-engaged`, engaging whatever armed mitigations the
/// observed degradation calls for. Every RNG draw is identical whatever
/// the recorder.
pub(crate) fn presence_uplink_with(cfg: &LinkConfig, rec: &mut dyn Recorder) -> UplinkRun {
    let mut report = DegradationReport::default();
    let mut eff = cfg.clone();

    // CSI→RSSI fallback: the reader knows its CSI tool is wedging (the
    // feed repeats stale reports), so it switches to the §3.3 RSSI
    // pipeline before capturing.
    if eff.mitigations.csi_fallback
        && eff.measurement == Measurement::Csi
        && eff.faults.degrades_sensor()
    {
        eff.measurement = Measurement::Rssi;
        report.engage("csi-fallback");
    }

    let mut capture = capture_uplink_with(&eff, rec);
    report.absorb(&capture.fault_events);

    // Proactive re-adaptation: the delivered cadence is observable before
    // decoding; if it collapsed below what §5 rate selection assumed,
    // re-run the exchange at a chip rate the surviving cadence supports.
    if eff.mitigations.rate_readapt && eff.code_length == 1 && eff.chip_rate_cps > 0 {
        let target_ppb = eff.helper_pps / eff.chip_rate_cps as f64;
        let measured_pps = capture.pkts_per_chip * eff.chip_rate_cps as f64;
        if let Some(new_rate) =
            bs_wifi::rate_adapt::readapt_chip_rate(eff.chip_rate_cps, measured_pps, target_ppb)
        {
            eff.chip_rate_cps = new_rate;
            report.engage("rate-readapt");
            report.readapted_rate_bps = Some(new_rate);
            capture = capture_uplink_with(&eff, rec);
            report.absorb(&capture.fault_events);
        }
    }

    // Drift re-scan: with a drift fault armed, decode under candidate
    // stretch factors and keep the best by observable criteria.
    let stretches: &[f64] =
        if eff.mitigations.drift_rescan && eff.code_length == 1 && eff.faults.clock_drift() != 0.0 {
            report.engage("drift-rescan");
            &DRIFT_CANDIDATES
        } else {
            &DRIFT_CANDIDATES[..1]
        };
    let decode_best =
        |cfg_eff: &LinkConfig, capture: &UplinkCapture, rec: &mut dyn Recorder| -> DecodeAttempt {
            // One slot index per capture: the stretch candidates all
            // re-decode the same bundle, so conditioning (which does not
            // depend on the bit clock) and any shared slot statistics
            // are computed once.
            let mut index = SlotIndex::new(&capture.bundle);
            let mut best: Option<DecodeAttempt> = None;
            for &s in stretches {
                let attempt = decode_capture(cfg_eff, capture, &mut index, s, rec);
                best = match best {
                    Some(b) if !attempt.better_than(&b) => Some(b),
                    _ => Some(attempt),
                };
            }
            best.expect("at least one stretch candidate")
        };

    let mut best = decode_best(&eff, &capture, rec);

    // Reactive rate step-down: undetected or erasure-ridden decodes mean
    // the bits were starved of measurements; retry at half rate (bounded
    // attempts, floored) and keep the retry only if observably better.
    if eff.mitigations.rate_readapt && eff.code_length == 1 {
        let mut retries = 0u32;
        while retries < 2 && (!best.detected || best.erasures > 0) && eff.chip_rate_cps > 25 {
            retries += 1;
            eff.chip_rate_cps = (eff.chip_rate_cps / 2).max(25);
            report.engage("rate-readapt");
            report.retries_used += 1;
            capture = capture_uplink_with(&eff, rec);
            report.absorb(&capture.fault_events);
            let attempt = decode_best(&eff, &capture, rec);
            if attempt.better_than(&best) {
                report.readapted_rate_bps = Some(eff.chip_rate_cps);
                best = attempt;
            }
        }
    }
    report.drift_compensation = best.stretch;
    rec.add("link.retries", u64::from(report.retries_used));
    rec.add(
        "link.mitigations-engaged",
        report.mitigations_engaged.len() as u64,
    );

    let mut ber = BerCounter::new();
    ber.compare_with_erasures(&cfg.payload, &best.decoded);
    // The final capture's simulated window: lead + frame span + lead.
    let frame_span_us =
        capture.frame.to_bits().len() as u64 * eff.code_length as u64 * capture.chip_us;
    UplinkRun {
        transmitted: cfg.payload.clone(),
        decoded: best.decoded,
        ber,
        detected: best.detected,
        packets_used: capture.bundle.packets(),
        pkts_per_bit: capture.pkts_per_chip * cfg.code_length as f64,
        degradation: report,
        obs: None,
        elapsed_us: 2 * capture.start_us + frame_span_us,
    }
}

/// Configuration of a downlink run.
#[derive(Debug, Clone)]
pub struct DownlinkConfig {
    /// Reader→tag distance (m).
    pub distance_m: f64,
    /// Downlink bit rate (bits/s): 20 000, 10 000 or 5 000 in the paper.
    pub bit_rate_bps: u64,
    /// Reader transmit power (dBm); the paper uses +16 dBm.
    pub tx_dbm: f64,
    /// Master seed.
    pub seed: u64,
    /// Injected faults; [`FaultPlan::none`] leaves the run untouched.
    pub faults: FaultPlan,
    /// Which PHY mode runs the exchange (default:
    /// [`PhyConfig::Presence`]; both shipped modes share the envelope
    /// downlink).
    pub phy: PhyConfig,
}

impl DownlinkConfig {
    /// The Fig. 17 configuration at a given distance and rate.
    pub fn fig17(distance_m: f64, bit_rate_bps: u64, seed: u64) -> Self {
        DownlinkConfig {
            distance_m,
            bit_rate_bps,
            tx_dbm: bs_channel::calib::READER_TX_DBM,
            seed,
            faults: FaultPlan::none(),
            phy: PhyConfig::Presence,
        }
    }

    /// Sets the reader transmit power (default: the paper's +16 dBm).
    pub fn with_tx_dbm(mut self, tx_dbm: f64) -> Self {
        self.tx_dbm = tx_dbm;
        self
    }

    /// Sets the injected fault plan (default: [`FaultPlan::none`]).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the PHY mode (default: [`PhyConfig::Presence`]).
    pub fn with_phy(mut self, phy: PhyConfig) -> Self {
        self.phy = phy;
        self
    }

    /// Received signal power at the tag (mW): transmit power through the
    /// standard path-loss model times this run's small-scale fading
    /// realisation (Rician, as every placement in a real room sits in a
    /// different multipath fade — this is what spreads the Fig. 17 BER
    /// curves over tens of centimetres instead of a hard cliff).
    pub fn rx_mw(&self) -> f64 {
        let pl = bs_channel::pathloss::LogDistance {
            exponent: bs_channel::calib::PATHLOSS_EXPONENT,
            freq_hz: bs_channel::pathloss::WIFI_CH6_HZ,
        };
        let mut mp_rng = SimRng::new(self.seed).stream("dl-multipath");
        // Strong-LOS Rician: reader and tag face each other a couple of
        // metres apart, so the fade spread is mild (±1–2 dB).
        let mp = bs_channel::multipath::Multipath::generate(
            &bs_channel::multipath::MultipathConfig {
                k_factor: 10.0,
                ..Default::default()
            },
            &mut mp_rng,
        );
        let fade = mp.response(0.0).norm_sq();
        bs_channel::pathloss::dbm_to_mw(self.tx_dbm) * pl.power_gain(self.distance_m) * fade
    }
}

/// Result of a raw-BER downlink run.
#[derive(Debug, Clone)]
pub struct DownlinkRun {
    /// Bit-error accounting.
    pub ber: BerCounter,
    /// Bits transmitted.
    pub bits_sent: usize,
    /// Which faults fired during the run.
    pub degradation: DegradationReport,
    /// Observability report, populated only by
    /// [`run_downlink_ber_observed`]; `None` everywhere else.
    pub obs: Option<ObsReport>,
}

/// Measures raw downlink BER over `n_bits` random bits at the configured
/// distance/rate (the Fig. 17 experiment).
#[deprecated(
    since = "0.8.0",
    note = "use wifi_backscatter::phy::run_downlink_ber — routed through the configured PhyMode"
)]
pub fn run_downlink_ber(cfg: &DownlinkConfig, n_bits: usize) -> DownlinkRun {
    crate::phy::run_downlink_ber(cfg, n_bits)
}

/// [`run_downlink_ber`] with an armed [`MemRecorder`](bs_dsp::obs::MemRecorder):
/// the returned run
/// carries `Some(ObsReport)`. The BER itself is bit-identical to
/// [`run_downlink_ber`].
#[deprecated(
    since = "0.8.0",
    note = "use wifi_backscatter::phy::run_downlink_ber_observed — routed through the configured PhyMode"
)]
pub fn run_downlink_ber_observed(cfg: &DownlinkConfig, n_bits: usize) -> DownlinkRun {
    crate::phy::run_downlink_ber_observed(cfg, n_bits)
}

/// [`run_downlink_ber`] plus observability threading.
#[deprecated(
    since = "0.8.0",
    note = "use wifi_backscatter::phy::run_downlink_ber_with — routed through the configured PhyMode"
)]
pub fn run_downlink_ber_with(
    cfg: &DownlinkConfig,
    n_bits: usize,
    rec: &mut dyn Recorder,
) -> DownlinkRun {
    crate::phy::run_downlink_ber_with(cfg, n_bits, rec)
}

/// The presence/envelope raw-BER downlink — the body behind
/// [`crate::phy::PresencePhy`] (and, the downlink being shared, behind
/// `CodewordPhy` too): a `downlink.envelope` span over the simulated
/// trace, the tag comparator span and transition counter from
/// [`ReceiverCircuit::run_with`], counters `downlink.bits-sent` /
/// `downlink.bit-errors`, and the tag's energy ledger gauges
/// (`tag.energy-uj`, `tag.mean-uw`) for the receive window. Every RNG
/// draw is identical whatever the recorder.
pub(crate) fn presence_downlink_ber_with(
    cfg: &DownlinkConfig,
    n_bits: usize,
    rec: &mut dyn Recorder,
) -> DownlinkRun {
    let root = SimRng::new(cfg.seed);
    let mut bit_rng = root.stream("dl-bits");
    let bits: Vec<bool> = (0..n_bits).map(|_| bit_rng.chance(0.5)).collect();
    let bit_us = 1_000_000 / cfg.bit_rate_bps.max(1);

    let mut report = DegradationReport::default();
    let intf = cfg.faults.interference();
    let intf_mw = intf.map_or(0.0, |i| bs_channel::pathloss::dbm_to_mw(i.power_dbm));
    if intf.is_some() {
        report.faults_fired.push("interference-burst".to_string());
    }

    let env_cfg = EnvelopeConfig::default();
    let mut env = EnvelopeModel::new(env_cfg, root.stream("dl-envelope"));
    let signal_mw = cfg.rx_mw();
    let bit_samples = bit_us as usize; // 1 µs samples
    let schedule = bs_tag::envelope::bit_schedule(&bits, bit_samples, signal_mw);
    let n_samples = bits.len() * bit_samples + 100;
    let trace = env.trace(n_samples, |i| {
        let base = schedule(i);
        match &intf {
            Some(ic) if ic.active_at(i as f64 / 1e6) => base + intf_mw,
            _ => base,
        }
    });

    rec.span("downlink.envelope", 0, n_samples as u64, n_samples as u64);

    let mut circuit = ReceiverCircuit::new(CircuitConfig::default());
    let comparator = circuit.run_with(&trace, rec);
    let mut dec = DownlinkDecoder::new(bit_us as f64, 1.0);
    let decoded = dec.slice_bits(&comparator, 0.0, bits.len());

    let mut ber = BerCounter::new();
    ber.compare(&bits, &decoded);
    rec.add("downlink.bits-sent", bits.len() as u64);
    rec.add("downlink.bit-errors", ber.errors());

    // The tag-side energy story of this receive window: analog rx front
    // end on for the whole trace, one mid-bit sample per sliced bit, MCU
    // otherwise asleep (§4.2's duty-cycled firmware).
    let mut ledger = bs_tag::power::EnergyLedger::new();
    ledger.analog(n_samples as f64, true, false);
    ledger.samples(bits.len() as u64);
    ledger.mcu_sleep(n_samples as f64);
    ledger.record(rec);

    DownlinkRun {
        ber,
        bits_sent: bits.len(),
        degradation: report,
        obs: None,
    }
}

/// Sends one framed downlink message end-to-end and reports whether the
/// tag's full pipeline (preamble match + mid-bit slicing + CRC) recovered
/// it.
#[deprecated(
    since = "0.8.0",
    note = "use wifi_backscatter::phy::run_downlink_frame — routed through the configured PhyMode"
)]
pub fn run_downlink_frame(cfg: &DownlinkConfig, frame: &DownlinkFrame) -> Option<DownlinkFrame> {
    crate::phy::run_downlink_frame(cfg, frame)
}

/// [`run_downlink_frame`] plus a [`DegradationReport`] naming the faults
/// that hit the exchange.
#[deprecated(
    since = "0.8.0",
    note = "use wifi_backscatter::phy::run_downlink_frame_with_report — routed through the configured PhyMode"
)]
pub fn run_downlink_frame_with_report(
    cfg: &DownlinkConfig,
    frame: &DownlinkFrame,
) -> (Option<DownlinkFrame>, DegradationReport) {
    crate::phy::run_downlink_frame_with_report(cfg, frame)
}

/// [`run_downlink_frame_with_report`] plus observability threading.
#[deprecated(
    since = "0.8.0",
    note = "use wifi_backscatter::phy::run_downlink_frame_with — routed through the configured PhyMode"
)]
pub fn run_downlink_frame_with(
    cfg: &DownlinkConfig,
    frame: &DownlinkFrame,
    rec: &mut dyn Recorder,
) -> (Option<DownlinkFrame>, DegradationReport) {
    crate::phy::run_downlink_frame_with(cfg, frame, rec)
}

/// The presence/envelope framed-downlink exchange — the body behind
/// both shipped PHY modes (the wake/command channel is shared). An
/// armed [`Fault::PacketLoss`] can swallow the whole short query burst
/// (the frame-level loss the session layer retries around); an armed
/// interference burst raises the envelope floor under the frame.
/// Observability: a `downlink.encode` span over the transmission's
/// on-air extent, the tag comparator instrumentation from
/// [`ReceiverCircuit::run_with`], and counters
/// `downlink.frames-attempted` / `downlink.frames-recovered` /
/// `downlink.frames-lost`. The exchange is bit-identical whatever the
/// recorder.
///
/// [`Fault::PacketLoss`]: bs_channel::faults::Fault::PacketLoss
pub(crate) fn presence_downlink_frame_with(
    cfg: &DownlinkConfig,
    frame: &DownlinkFrame,
    rec: &mut dyn Recorder,
) -> (Option<DownlinkFrame>, DegradationReport) {
    let mut report = DegradationReport::default();
    rec.add("downlink.frames-attempted", 1);
    let loss = cfg.faults.frame_loss_prob();
    if loss > 0.0 {
        let mut rng = SimRng::new(cfg.seed ^ cfg.faults.seed).stream("dl-frame-loss");
        if rng.chance(loss) {
            report.faults_fired.push("packet-loss".to_string());
            report.packets_dropped += 1;
            rec.add("downlink.frames-lost", 1);
            return (None, report);
        }
    }
    let intf = cfg.faults.interference();
    let intf_mw = intf.map_or(0.0, |i| bs_channel::pathloss::dbm_to_mw(i.power_dbm));
    if intf.is_some() {
        report.faults_fired.push("interference-burst".to_string());
    }

    let root = SimRng::new(cfg.seed);
    let encoder = DownlinkEncoder::new(DownlinkEncoderConfig::at_rate(cfg.bit_rate_bps, 0));
    let tx = match encoder.encode(frame, 2_000) {
        Ok(tx) => tx,
        Err(_) => return (None, report),
    };
    rec.span("downlink.encode", 2_000, tx.end_us, frame.payload.len() as u64);

    let env_cfg = EnvelopeConfig::default();
    let mut env = EnvelopeModel::new(env_cfg, root.stream("dl-frame-env"));
    let signal_mw = cfg.rx_mw();
    let n_samples = (tx.end_us + 2_000) as usize;
    let trace = env.trace(n_samples, |i| {
        let base = if tx.on_air(i as u64) { signal_mw } else { 0.0 };
        match &intf {
            Some(ic) if ic.active_at(i as f64 / 1e6) => base + intf_mw,
            _ => base,
        }
    });
    let mut circuit = ReceiverCircuit::new(CircuitConfig::default());
    let comparator = circuit.run_with(&trace, rec);
    let bit_us = 1_000_000 / cfg.bit_rate_bps.max(1);
    let mut dec = DownlinkDecoder::new(bit_us as f64, 1.0);
    let got = dec
        .decode_stream(&comparator, frame.payload.len())
        .into_iter()
        .next();
    dec.stats.record(rec);
    if got.is_some() {
        rec.add("downlink.frames-recovered", 1);
    }
    (got, report)
}

/// Merges a MAC timeline into on-air energy intervals and returns the
/// comparator transition list a tag near the AP would see — the
/// event-driven path used for the hours-long Fig. 18 false-positive
/// experiment (a sample-level trace would be needlessly slow at strong
/// signal).
pub fn timeline_to_transitions(timeline: &[Transmission], merge_gap_us: u64) -> Vec<(u64, bool)> {
    let mut intervals: Vec<(u64, u64)> = timeline
        .iter()
        .map(|t| (t.frame.timestamp_us, t.frame.end_us()))
        .collect();
    intervals.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::new();
    for (s, e) in intervals {
        match merged.last_mut() {
            Some(last) if s <= last.1 + merge_gap_us => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    let mut transitions = Vec::with_capacity(merged.len() * 2);
    for (s, e) in merged {
        transitions.push((s, true));
        transitions.push((e, false));
    }
    transitions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phy::{run_downlink_ber, run_downlink_frame, run_uplink};
    use bs_channel::fading::FadingConfig;

    #[test]
    fn uplink_decodes_at_5cm() {
        // Fig. 3's regime: tag at 5 cm, 30 packets/bit — must decode
        // cleanly.
        let mut cfg = LinkConfig::fig10(0.05, 100, 30, 42);
        cfg.payload = (0..30).map(|i| i % 2 == 0).collect();
        let run = run_uplink(&cfg);
        assert!(run.detected, "no preamble detection at 5 cm");
        assert_eq!(run.ber.errors(), 0, "decoded {:?}", run.decoded);
        assert!(run.pkts_per_bit > 20.0, "pkts/bit {}", run.pkts_per_bit);
    }

    #[test]
    fn uplink_fails_far_without_coding() {
        // At 2 m the plain decoder must be essentially broken (Fig. 6).
        let mut cfg = LinkConfig::fig10(2.0, 100, 30, 43);
        cfg.payload = (0..30).map(|i| i % 2 == 0).collect();
        let run = run_uplink(&cfg);
        let ber = run.ber.raw_ber();
        assert!(
            !run.detected || ber > 0.05,
            "plain decode unexpectedly good at 2 m: ber {ber}"
        );
    }

    #[test]
    fn rssi_works_close() {
        let mut cfg = LinkConfig::fig10(0.05, 100, 30, 44);
        cfg.measurement = Measurement::Rssi;
        cfg.payload = (0..30).map(|i| (i * 3) % 5 < 2).collect();
        let run = run_uplink(&cfg);
        assert!(run.detected);
        assert!(
            run.ber.raw_ber() < 0.05,
            "rssi ber {} at 5 cm",
            run.ber.raw_ber()
        );
    }

    #[test]
    fn coded_mode_extends_range() {
        // At 1.2 m: plain decoding degraded, L=24 coding much better.
        let payload: Vec<bool> = (0..10).map(|i| i % 3 == 0).collect();
        let mut plain_err = 0u64;
        let mut coded_err = 0u64;
        for seed in 0..3 {
            let mut p = LinkConfig::fig10(1.2, 100, 10, 100 + seed);
            p.payload = payload.clone();
            plain_err += run_uplink(&p).ber.errors();

            let mut c = LinkConfig::fig10(1.2, 100, 10, 100 + seed);
            c.payload = payload.clone();
            c.code_length = 24;
            coded_err += run_uplink(&c).ber.errors();
        }
        assert!(
            coded_err <= plain_err,
            "coded {coded_err} vs plain {plain_err}"
        );
        assert!(coded_err <= 2, "coded errors {coded_err}");
    }

    #[test]
    fn downlink_clean_at_half_meter() {
        // "Clean" allows a single noise-tail bit flip in 2 000: seeds
        // routinely produce 0 or 1 errors here (BER ≤ 5e-4), well below
        // the Fig. 17 floor.
        let cfg = DownlinkConfig::fig17(0.5, 20_000, 7);
        let run = run_downlink_ber(&cfg, 2_000);
        assert!(run.ber.errors() <= 1, "ber {}", run.ber.raw_ber());
    }

    #[test]
    fn downlink_degrades_with_distance() {
        let near = run_downlink_ber(&DownlinkConfig::fig17(1.0, 20_000, 8), 2_000);
        let far = run_downlink_ber(&DownlinkConfig::fig17(4.0, 20_000, 8), 2_000);
        assert!(
            far.ber.raw_ber() > near.ber.raw_ber(),
            "near {} far {}",
            near.ber.raw_ber(),
            far.ber.raw_ber()
        );
        assert!(far.ber.raw_ber() > 0.05, "4 m should be broken");
    }

    #[test]
    fn downlink_frame_roundtrip_at_1m() {
        let frame = DownlinkFrame::new(vec![0x11, 0x22, 0x33, 0x44]);
        let got = run_downlink_frame(&DownlinkConfig::fig17(1.0, 20_000, 9), &frame);
        assert_eq!(got, Some(frame));
    }

    #[test]
    fn downlink_frame_fails_out_of_range() {
        let frame = DownlinkFrame::new(vec![0x11, 0x22]);
        let got = run_downlink_frame(&DownlinkConfig::fig17(6.0, 20_000, 10), &frame);
        assert_eq!(got, None);
    }

    #[test]
    fn timeline_transitions_merge_back_to_back() {
        use bs_wifi::frame::{FrameKind, WifiFrame};
        let mk = |t: u64, d: u64| Transmission {
            frame: WifiFrame {
                kind: FrameKind::Data,
                src: 0,
                timestamp_us: t,
                duration_us: d,
            },
            collided: false,
        };
        let tl = vec![mk(0, 100), mk(102, 100), mk(500, 50)];
        let tr = timeline_to_transitions(&tl, 4);
        assert_eq!(tr, vec![(0, true), (202, false), (500, true), (550, false)]);
    }

    #[test]
    fn static_fading_uplink_still_decodes() {
        // Conditioning exists to remove fading; without fading decoding
        // must also work.
        let mut cfg = LinkConfig::fig10(0.1, 100, 30, 45);
        cfg.scene.fading = FadingConfig::static_channel();
        cfg.payload = (0..20).map(|i| i % 4 < 2).collect();
        let run = run_uplink(&cfg);
        assert!(run.detected);
        assert_eq!(run.ber.errors(), 0);
    }
}
