//! The reader's downlink encoder (§4.1).
//!
//! The reader can only transmit Wi-Fi packets; the tag can only detect
//! energy. So the reader encodes a `1` as the presence of a short Wi-Fi
//! packet and a `0` as an equal-length silence, and reserves the medium
//! with a CTS_to_SELF first so that other (protocol-unaware) Wi-Fi devices
//! do not fill the silences. The 802.11 standard caps one reservation at
//! 32 ms; messages that don't fit are split across multiple reservations,
//! one complete frame per reservation.

use crate::error as err;
use bs_tag::frame::DownlinkFrame;
use bs_wifi::frame::{FrameKind, StationId, WifiFrame, MAX_NAV_US};

/// Former home of the encode error type.
#[deprecated(
    since = "0.2.0",
    note = "moved to wifi_backscatter::error::EncodeError as part of the unified error hierarchy"
)]
pub use crate::error::EncodeError;

/// Downlink encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DownlinkEncoderConfig {
    /// Bit duration = marker packet duration = silence duration (µs).
    /// Paper rates: 50 µs → 20 kbps, 100 µs → 10 kbps, 200 µs → 5 kbps.
    pub bit_duration_us: u64,
    /// The reader's station id on the medium.
    pub reader: StationId,
    /// Airtime of the CTS_to_SELF control frame itself (µs).
    pub cts_duration_us: u64,
    /// Guard silence between the CTS frame and the first data bit (µs),
    /// letting the tag's comparator settle.
    pub guard_us: u64,
}

impl DownlinkEncoderConfig {
    /// A configuration at the given bit rate (bits/s).
    pub fn at_rate(bit_rate_bps: u64, reader: StationId) -> Self {
        assert!(bit_rate_bps > 0);
        DownlinkEncoderConfig {
            bit_duration_us: 1_000_000 / bit_rate_bps,
            reader,
            cts_duration_us: 30,
            guard_us: 100,
        }
    }

    /// The downlink bit rate (bits/s).
    pub fn bit_rate_bps(&self) -> u64 {
        1_000_000 / self.bit_duration_us
    }

    /// How many bits fit in one CTS_to_SELF reservation.
    pub fn bits_per_reservation(&self) -> usize {
        ((MAX_NAV_US - self.guard_us) / self.bit_duration_us) as usize
    }
}

/// A fully-scheduled downlink transmission.
#[derive(Debug, Clone, PartialEq)]
pub struct DownlinkTransmission {
    /// Every frame the reader puts on the air (CTS_to_SELF reservations
    /// and the marker packets for `1` bits), in time order. Feed these to
    /// the MAC medium as pre-scheduled transmissions.
    pub frames: Vec<WifiFrame>,
    /// The encoded bit sequence.
    pub bits: Vec<bool>,
    /// Start time (µs) of each bit interval.
    pub bit_starts_us: Vec<u64>,
    /// When the first data bit begins.
    pub data_start_us: u64,
    /// When the transmission (including NAV) ends.
    pub end_us: u64,
}

impl DownlinkTransmission {
    /// Signal-presence at time `t_us`: true while a marker packet (or CTS)
    /// is on the air. This drives the tag-side envelope model.
    pub fn on_air(&self, t_us: u64) -> bool {
        // Frames are in time order; linear scan is fine for tests, but the
        // envelope loop calls this per microsecond — binary search on start.
        let idx = self
            .frames
            .partition_point(|f| f.timestamp_us <= t_us);
        if idx == 0 {
            return false;
        }
        let f = &self.frames[idx - 1];
        t_us < f.end_us()
    }
}

/// The downlink encoder.
#[derive(Debug, Clone, Copy)]
pub struct DownlinkEncoder {
    cfg: DownlinkEncoderConfig,
}

impl DownlinkEncoder {
    /// Creates an encoder.
    pub fn new(cfg: DownlinkEncoderConfig) -> Self {
        assert!(cfg.bit_duration_us > 0);
        DownlinkEncoder { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> DownlinkEncoderConfig {
        self.cfg
    }

    /// Encodes one frame into a scheduled transmission starting at
    /// `start_us`.
    pub fn encode(
        &self,
        frame: &DownlinkFrame,
        start_us: u64,
    ) -> Result<DownlinkTransmission, err::EncodeError> {
        let bits = frame.to_bits();
        let capacity = self.cfg.bits_per_reservation();
        if bits.len() > capacity {
            return Err(err::EncodeError::TooLongForReservation {
                needed: bits.len(),
                available: capacity,
            });
        }
        let bit = self.cfg.bit_duration_us;
        let nav = self.cfg.guard_us + bits.len() as u64 * bit;
        let mut frames = vec![WifiFrame {
            kind: FrameKind::CtsToSelf { nav_us: nav },
            src: self.cfg.reader,
            timestamp_us: start_us,
            duration_us: self.cfg.cts_duration_us,
        }];
        let data_start = start_us + self.cfg.cts_duration_us + self.cfg.guard_us;
        let mut bit_starts = Vec::with_capacity(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            let t = data_start + i as u64 * bit;
            bit_starts.push(t);
            if b {
                frames.push(WifiFrame {
                    kind: FrameKind::DownlinkMarker,
                    src: self.cfg.reader,
                    timestamp_us: t,
                    duration_us: bit,
                });
            }
        }
        let end = data_start + bits.len() as u64 * bit;
        Ok(DownlinkTransmission {
            frames,
            bits,
            bit_starts_us: bit_starts,
            data_start_us: data_start,
            end_us: end,
        })
    }

    /// Encodes a sequence of frames, one CTS_to_SELF reservation per frame,
    /// separated by `gap_us` of idle medium (during which normal traffic
    /// proceeds).
    pub fn encode_multi(
        &self,
        frames: &[DownlinkFrame],
        start_us: u64,
        gap_us: u64,
    ) -> Result<Vec<DownlinkTransmission>, err::EncodeError> {
        let mut out = Vec::with_capacity(frames.len());
        let mut t = start_us;
        for f in frames {
            let tx = self.encode(f, t)?;
            t = tx.end_us + gap_us;
            out.push(tx);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::{DownlinkEncoder, DownlinkEncoderConfig};
    use crate::error::EncodeError;
    use bs_tag::frame::DownlinkFrame;
    use bs_wifi::frame::{FrameKind, MAX_NAV_US};

    fn encoder(rate: u64) -> DownlinkEncoder {
        DownlinkEncoder::new(DownlinkEncoderConfig::at_rate(rate, 0))
    }

    #[test]
    fn rates_map_to_paper_bit_durations() {
        assert_eq!(DownlinkEncoderConfig::at_rate(20_000, 0).bit_duration_us, 50);
        assert_eq!(DownlinkEncoderConfig::at_rate(10_000, 0).bit_duration_us, 100);
        assert_eq!(DownlinkEncoderConfig::at_rate(5_000, 0).bit_duration_us, 200);
    }

    #[test]
    fn marker_frames_match_one_bits() {
        let f = DownlinkFrame::new(vec![0xF0]);
        let tx = encoder(20_000).encode(&f, 1_000).unwrap();
        let markers = tx
            .frames
            .iter()
            .filter(|fr| fr.kind == FrameKind::DownlinkMarker)
            .count();
        let ones = tx.bits.iter().filter(|&&b| b).count();
        assert_eq!(markers, ones);
        // CTS first.
        assert!(matches!(tx.frames[0].kind, FrameKind::CtsToSelf { .. }));
        assert_eq!(tx.frames[0].timestamp_us, 1_000);
    }

    #[test]
    fn nav_covers_whole_message() {
        let f = DownlinkFrame::new(vec![1, 2, 3, 4]);
        let tx = encoder(20_000).encode(&f, 0).unwrap();
        let nav = tx.frames[0].nav_us();
        let msg_span = tx.end_us - tx.frames[0].end_us();
        assert!(nav >= msg_span, "nav {nav} < span {msg_span}");
        assert!(nav <= MAX_NAV_US);
    }

    #[test]
    fn bit_starts_are_contiguous() {
        let f = DownlinkFrame::new(vec![0xAA, 0x55]);
        let tx = encoder(10_000).encode(&f, 500).unwrap();
        assert_eq!(tx.bit_starts_us.len(), tx.bits.len());
        for w in tx.bit_starts_us.windows(2) {
            assert_eq!(w[1] - w[0], 100);
        }
        assert_eq!(tx.bit_starts_us[0], tx.data_start_us);
    }

    #[test]
    fn on_air_tracks_markers_and_silences() {
        let f = DownlinkFrame::new(vec![0b1010_0000]);
        let tx = encoder(20_000).encode(&f, 1_000).unwrap();
        // Preamble starts with five 1s: first data bit is on the air.
        assert!(tx.on_air(tx.data_start_us + 10));
        // Find a 0 bit and check silence mid-bit.
        let zero_idx = tx.bits.iter().position(|&b| !b).unwrap();
        assert!(!tx.on_air(tx.bit_starts_us[zero_idx] + 25));
        // Before the transmission begins: silent.
        assert!(!tx.on_air(500));
    }

    #[test]
    fn paper_example_is_about_4ms() {
        // 64-bit payload (8 bytes): 96 on-air bits at 50 µs ≈ 4.8 ms, fits
        // easily in one 32 ms reservation.
        let f = DownlinkFrame::new(vec![0; 8]);
        let tx = encoder(20_000).encode(&f, 0).unwrap();
        let span_ms = (tx.end_us - tx.data_start_us) as f64 / 1000.0;
        assert!((4.0..=5.0).contains(&span_ms), "{span_ms} ms");
    }

    #[test]
    fn oversize_frame_rejected() {
        // At 5 kbps (200 µs bits) one reservation fits ~159 bits; a 32-byte
        // payload needs 16+8+256+8 = 288 bits.
        let f = DownlinkFrame::new(vec![0; 32]);
        match encoder(5_000).encode(&f, 0) {
            Err(EncodeError::TooLongForReservation { needed, available }) => {
                assert_eq!(needed, 288);
                assert!(available < needed);
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn encode_multi_spaces_reservations() {
        let frames = vec![
            DownlinkFrame::new(vec![1]),
            DownlinkFrame::new(vec![2]),
        ];
        let txs = encoder(20_000).encode_multi(&frames, 0, 5_000).unwrap();
        assert_eq!(txs.len(), 2);
        assert_eq!(txs[1].frames[0].timestamp_us, txs[0].end_us + 5_000);
    }

    #[test]
    fn error_display() {
        let e = EncodeError::TooLongForReservation {
            needed: 100,
            available: 50,
        };
        assert!(e.to_string().contains("100"));
    }
}
