//! The long-range coded uplink decoder (§3.4).
//!
//! Past ~65 cm the two CSI levels merge into the noise (Fig. 6) and the
//! per-packet slicer breaks down. The tag then represents each bit with one
//! of two orthogonal L-chip codes; the reader correlates the conditioned
//! channel series with both codes over each bit window and outputs the bit
//! whose code correlates more strongly. Correlation over L chips buys an
//! SNR gain ∝ L, which extends the range to 1.6 m at L = 20 and ~2.1 m at
//! L ≈ 150 (Fig. 20) without the tag doing anything more expensive than
//! toggling its switch L× as often.

use crate::series::SeriesBundle;
use bs_dsp::codes::OrthogonalPair;
use bs_dsp::filter::condition;
use bs_dsp::obs::{NullRecorder, Recorder};
use bs_tag::frame::UplinkFrame;

/// Long-range decoder configuration.
#[derive(Debug, Clone)]
pub struct LongRangeConfig {
    /// Chip duration (µs) — the original bit duration divided by L.
    pub chip_duration_us: u64,
    /// The code pair in use.
    pub code: OrthogonalPair,
    /// Expected payload length (bits).
    pub payload_bits: usize,
    /// Conditioning window (µs), as in the plain decoder.
    pub conditioning_window_us: u64,
    /// Channels combined per bit ("picks the Wi-Fi sub-channels that
    /// provide the maximum correlation peaks", §3.4).
    pub top_channels: usize,
}

impl LongRangeConfig {
    /// A standard configuration: code length `l`, chip rate chosen so each
    /// chip still spans several Wi-Fi packets at `chip_rate_cps` chips/s.
    pub fn new(l: usize, chip_rate_cps: u64, payload_bits: usize) -> Self {
        LongRangeConfig {
            chip_duration_us: 1_000_000 / chip_rate_cps.max(1),
            code: OrthogonalPair::new(l),
            payload_bits,
            conditioning_window_us: 400_000,
            top_channels: 10,
        }
    }
}

/// Long-range decode output.
#[derive(Debug, Clone, PartialEq)]
pub struct LongRangeOutput {
    /// Payload bit decisions (always `Some` — correlation never abstains —
    /// kept as `Option` for interface parity with the plain decoder).
    pub bits: Vec<Option<bool>>,
    /// The payload as a frame.
    pub frame: Option<UplinkFrame>,
    /// Channel indices used, best first.
    pub channels: Vec<usize>,
}

/// The long-range correlation decoder.
#[derive(Debug, Clone)]
pub struct LongRangeDecoder {
    cfg: LongRangeConfig,
}

impl LongRangeDecoder {
    /// Creates a decoder.
    pub fn new(cfg: LongRangeConfig) -> Self {
        assert!(cfg.chip_duration_us > 0, "chip duration must be positive");
        LongRangeDecoder { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &LongRangeConfig {
        &self.cfg
    }

    /// Correlates one channel's conditioned series against one code over
    /// the bit window starting at `bit_start_us`: each packet contributes
    /// `x[p] · code[chip(t_p)]`.
    fn correlate_bit(
        &self,
        bundle: &SeriesBundle,
        channel: &[f64],
        bit_start_us: u64,
        code: &[i8],
    ) -> f64 {
        let l = code.len() as u64;
        let chip = self.cfg.chip_duration_us;
        let end = bit_start_us + l * chip;
        let mut acc = 0.0;
        for (p, &t) in bundle.t_us.iter().enumerate() {
            if t < bit_start_us || t >= end {
                continue;
            }
            let c = ((t - bit_start_us) / chip) as usize;
            acc += channel[p] * f64::from(code[c]);
        }
        acc
    }

    /// Per-bit signed margin `corr(one) − corr(zero)` for one channel.
    fn bit_margin(
        &self,
        bundle: &SeriesBundle,
        channel: &[f64],
        bit_start_us: u64,
    ) -> f64 {
        let c1 = self.correlate_bit(bundle, channel, bit_start_us, &self.cfg.code.one);
        let c0 = self.correlate_bit(bundle, channel, bit_start_us, &self.cfg.code.zero);
        c1 - c0
    }

    /// Decodes one frame starting exactly at `start_us` (the reader timed
    /// the query, and chip-level alignment is maintained by the tag's bit
    /// clock).
    pub fn decode(&self, bundle: &SeriesBundle, start_us: u64) -> Option<LongRangeOutput> {
        self.decode_with(bundle, start_us, &mut NullRecorder)
    }

    /// [`Self::decode`] plus observability: a `uplink.correlate` span over
    /// the bundle's simulated-time extent (items = channel × bit
    /// correlations evaluated) and the selector counters
    /// (`uplink.channels-kept`, `uplink.channels-dropped`). Decoding is
    /// bit-identical to [`Self::decode`].
    pub fn decode_with(
        &self,
        bundle: &SeriesBundle,
        start_us: u64,
        rec: &mut dyn Recorder,
    ) -> Option<LongRangeOutput> {
        if bundle.packets() == 0 || bundle.channels() == 0 {
            return None;
        }
        let t_lo = *bundle.t_us.first().unwrap_or(&0);
        let t_hi = *bundle.t_us.last().unwrap_or(&0);
        let gap = bundle.median_gap_us().max(1);
        let half = ((self.cfg.conditioning_window_us / 2) / gap).max(2) as usize;
        let conditioned: Vec<Vec<f64>> = bundle
            .series
            .iter()
            .map(|s| condition(s, half))
            .collect();

        let preamble = bs_tag::frame::uplink_preamble();
        let bit_us = self.cfg.code.len() as u64 * self.cfg.chip_duration_us;

        // Rank channels by how well the *known preamble* decodes on them,
        // capturing each channel's polarity at the same time.
        let mut ranked: Vec<(usize, f64, f64)> = Vec::new(); // (idx, quality, polarity)
        for (i, ch) in conditioned.iter().enumerate() {
            let mut agree = 0.0;
            for (b, &bit) in preamble.iter().enumerate() {
                let m = self.bit_margin(bundle, ch, start_us + b as u64 * bit_us);
                agree += if bit { m } else { -m };
            }
            ranked.push((i, agree.abs(), agree.signum()));
        }
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        ranked.truncate(self.cfg.top_channels);
        if ranked.is_empty() || ranked[0].1 == 0.0 {
            return None;
        }
        rec.add("uplink.channels-kept", ranked.len() as u64);
        rec.add(
            "uplink.channels-dropped",
            (bundle.channels() - ranked.len()) as u64,
        );

        // Decode payload bits with the polarity-corrected combined margin.
        let pre_len = preamble.len();
        let correlations =
            (conditioned.len() * preamble.len() + ranked.len() * self.cfg.payload_bits) as u64;
        rec.span("uplink.correlate", t_lo, t_hi, correlations);
        let mut bits = Vec::with_capacity(self.cfg.payload_bits);
        for b in 0..self.cfg.payload_bits {
            let bit_start = start_us + (pre_len + b) as u64 * bit_us;
            let combined: f64 = ranked
                .iter()
                .map(|&(i, quality, pol)| quality * pol * self.bit_margin(bundle, &conditioned[i], bit_start))
                .sum();
            bits.push(Some(combined > 0.0));
        }
        let frame = Some(UplinkFrame::new(
            bits.iter().map(|b| b.unwrap()).collect(),
        ));
        Some(LongRangeOutput {
            bits,
            frame,
            channels: ranked.iter().map(|&(i, _, _)| i).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_dsp::SimRng;

    /// Synthetic long-range bundle: very weak modulation buried in noise.
    fn synth(
        payload: &[bool],
        l: usize,
        amp: f64,
        noise: f64,
        gap_us: u64,
        chip_us: u64,
        seed: u64,
    ) -> SeriesBundle {
        let frame = UplinkFrame::new(payload.to_vec());
        let bits = frame.to_bits();
        let pair = OrthogonalPair::new(l);
        let chips: Vec<bool> = bits
            .iter()
            .flat_map(|&b| pair.code_for(b).iter().map(|&c| c > 0).collect::<Vec<_>>())
            .collect();
        let total_us = chips.len() as u64 * chip_us + 100_000;
        let t_us: Vec<u64> = (0..).map(|i| i * gap_us).take_while(|&t| t < total_us).collect();
        let mut rng = SimRng::new(seed).stream("lr-synth");
        let series: Vec<Vec<f64>> = (0..12)
            .map(|c| {
                let good = c < 6;
                let polarity = if c % 2 == 0 { 1.0 } else { -1.0 };
                t_us
                    .iter()
                    .map(|&t| {
                        let level = if good {
                            let chip = (t / chip_us) as usize;
                            match chips.get(chip) {
                                Some(&true) => amp * polarity,
                                Some(&false) => -amp * polarity,
                                None => 0.0,
                            }
                        } else {
                            0.0
                        };
                        20.0 + level + rng.gaussian(0.0, noise)
                    })
                    .collect()
            })
            .collect();
        SeriesBundle { t_us, series }
    }

    fn cfg(l: usize, chip_us: u64, payload: usize) -> LongRangeConfig {
        LongRangeConfig {
            chip_duration_us: chip_us,
            code: OrthogonalPair::new(l),
            payload_bits: payload,
            conditioning_window_us: 400_000,
            top_channels: 6,
        }
    }

    #[test]
    fn decodes_below_slicer_threshold() {
        // Amplitude 0.15 vs noise 1.0: per-packet SNR ≈ −16 dB — hopeless
        // for the plain slicer, easy for L=100 correlation with ~3 packets
        // per chip.
        let payload: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
        let bundle = synth(&payload, 100, 0.15, 1.0, 333, 1_000, 1);
        let dec = LongRangeDecoder::new(cfg(100, 1_000, 16));
        let out = dec.decode(&bundle, 0).expect("no detection");
        assert_eq!(out.frame.unwrap().payload, payload);
    }

    #[test]
    fn longer_codes_tolerate_more_noise() {
        let payload: Vec<bool> = (0..12).map(|i| i % 2 == 0).collect();
        let errors = |l: usize, seed: u64| -> usize {
            let bundle = synth(&payload, l, 0.08, 1.0, 333, 1_000, seed);
            let dec = LongRangeDecoder::new(cfg(l, 1_000, 12));
            match dec.decode(&bundle, 0) {
                Some(out) => out
                    .bits
                    .iter()
                    .zip(&payload)
                    .filter(|(b, &w)| **b != Some(w))
                    .count(),
                None => payload.len(),
            }
        };
        let short: usize = (0..6).map(|s| errors(8, 10 + s)).sum();
        let long: usize = (0..6).map(|s| errors(120, 20 + s)).sum();
        assert!(long < short, "long {long} short {short}");
    }

    #[test]
    fn good_channels_selected() {
        let payload: Vec<bool> = (0..8).map(|i| i % 2 == 1).collect();
        let bundle = synth(&payload, 60, 0.3, 0.5, 333, 1_000, 3);
        let dec = LongRangeDecoder::new(cfg(60, 1_000, 8));
        let out = dec.decode(&bundle, 0).unwrap();
        let good = out.channels.iter().filter(|&&c| c < 6).count();
        assert!(good >= 5, "channels {:?}", out.channels);
    }

    #[test]
    fn empty_bundle_is_none() {
        let dec = LongRangeDecoder::new(cfg(20, 1_000, 8));
        assert!(dec
            .decode(
                &SeriesBundle {
                    t_us: vec![],
                    series: vec![]
                },
                0
            )
            .is_none());
    }

    #[test]
    fn mixed_polarity_channels_decode() {
        // The synth helper alternates channel polarity; correctness across
        // several seeds shows the polarity correction works.
        let payload: Vec<bool> = (0..10).map(|i| (i * 7) % 4 < 2).collect();
        for seed in 0..5 {
            let bundle = synth(&payload, 80, 0.2, 0.6, 333, 1_000, 50 + seed);
            let dec = LongRangeDecoder::new(cfg(80, 1_000, 10));
            let out = dec.decode(&bundle, 0).expect("no detection");
            assert_eq!(out.frame.unwrap().payload, payload, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chip_duration_panics() {
        let mut c = cfg(20, 1_000, 8);
        c.chip_duration_us = 0;
        LongRangeDecoder::new(c);
    }
}
