//! The long-range coded uplink decoder (§3.4).
//!
//! Past ~65 cm the two CSI levels merge into the noise (Fig. 6) and the
//! per-packet slicer breaks down. The tag then represents each bit with one
//! of two orthogonal L-chip codes; the reader correlates the conditioned
//! channel series with both codes over each bit window and outputs the bit
//! whose code correlates more strongly. Correlation over L chips buys an
//! SNR gain ∝ L, which extends the range to 1.6 m at L = 20 and ~2.1 m at
//! L ≈ 150 (Fig. 20) without the tag doing anything more expensive than
//! toggling its switch L× as often.

use crate::series::{SeriesAccumulator, SeriesBundle, SlotIndex};
use bs_dsp::codes::OrthogonalPair;
use bs_dsp::filter::condition;
use bs_dsp::obs::{NullRecorder, Recorder};
use bs_dsp::stream::Consumed;
use bs_tag::frame::UplinkFrame;

/// Long-range decoder configuration.
#[derive(Debug, Clone)]
pub struct LongRangeConfig {
    /// Chip duration (µs) — the original bit duration divided by L.
    pub chip_duration_us: u64,
    /// The code pair in use.
    pub code: OrthogonalPair,
    /// Expected payload length (bits).
    pub payload_bits: usize,
    /// Conditioning window (µs), as in the plain decoder.
    pub conditioning_window_us: u64,
    /// Channels combined per bit ("picks the Wi-Fi sub-channels that
    /// provide the maximum correlation peaks", §3.4).
    pub top_channels: usize,
}

impl LongRangeConfig {
    /// A standard configuration: code length `l`, chip rate chosen so each
    /// chip still spans several Wi-Fi packets at `chip_rate_cps` chips/s.
    pub fn new(l: usize, chip_rate_cps: u64, payload_bits: usize) -> Self {
        LongRangeConfig {
            // Clamped to ≥ 1 µs: above 1 Mchip/s the integer division
            // would yield 0 and trip the constructor assert.
            chip_duration_us: (1_000_000 / chip_rate_cps.max(1)).max(1),
            code: OrthogonalPair::new(l),
            payload_bits,
            conditioning_window_us: 400_000,
            top_channels: 10,
        }
    }
}

/// Long-range decode output.
#[derive(Debug, Clone, PartialEq)]
pub struct LongRangeOutput {
    /// Payload bit decisions. `None` is an erasure: the bit's window held
    /// no packets at all, so the correlator had nothing to correlate —
    /// the same erasure semantics as the plain decoder's empty slots.
    pub bits: Vec<Option<bool>>,
    /// The payload as a frame; `None` if any bit was erased.
    pub frame: Option<UplinkFrame>,
    /// Channel indices used, best first.
    pub channels: Vec<usize>,
}

/// The long-range correlation decoder.
#[derive(Debug, Clone)]
pub struct LongRangeDecoder {
    cfg: LongRangeConfig,
}

impl LongRangeDecoder {
    /// Creates a decoder.
    pub fn new(cfg: LongRangeConfig) -> Self {
        assert!(cfg.chip_duration_us > 0, "chip duration must be positive");
        LongRangeDecoder { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &LongRangeConfig {
        &self.cfg
    }

    /// Correlates one channel's conditioned series against one code over
    /// the bit window starting at `bit_start_us`: each packet contributes
    /// `x[p] · code[chip(t_p)]`.
    fn correlate_bit(
        &self,
        bundle: &SeriesBundle,
        channel: &[f64],
        bit_start_us: u64,
        code: &[i8],
    ) -> f64 {
        let l = code.len() as u64;
        let chip = self.cfg.chip_duration_us;
        let end = bit_start_us + l * chip;
        let mut acc = 0.0;
        for (p, &t) in bundle.t_us.iter().enumerate() {
            if t < bit_start_us || t >= end {
                continue;
            }
            let c = ((t - bit_start_us) / chip) as usize;
            acc += channel[p] * f64::from(code[c]);
        }
        acc
    }

    /// Per-bit signed margin `corr(one) − corr(zero)` for one channel.
    fn bit_margin(
        &self,
        bundle: &SeriesBundle,
        channel: &[f64],
        bit_start_us: u64,
    ) -> f64 {
        let c1 = self.correlate_bit(bundle, channel, bit_start_us, &self.cfg.code.one);
        let c0 = self.correlate_bit(bundle, channel, bit_start_us, &self.cfg.code.zero);
        c1 - c0
    }

    /// Decodes one frame starting exactly at `start_us` (the reader timed
    /// the query, and chip-level alignment is maintained by the tag's bit
    /// clock).
    ///
    /// Routed through the streaming path ([`Self::stream`]): feed the
    /// whole bundle, then finish — so batch and streaming cannot diverge.
    pub fn decode(&self, bundle: &SeriesBundle, start_us: u64) -> Option<LongRangeOutput> {
        let mut stream = self.stream(bundle.channels(), start_us);
        stream.feed(bundle);
        stream.finish()
    }

    /// Opens a streaming long-range decode session; same contract as
    /// [`crate::uplink::UplinkDecoder::stream`], with the frame decoded by
    /// the chip-correlation pipeline on [`LongRangeStream::finish`].
    pub fn stream(&self, channels: usize, start_us: u64) -> LongRangeStream {
        LongRangeStream {
            decoder: self.clone(),
            acc: SeriesAccumulator::new(channels),
            start_us,
        }
    }

    /// [`Self::stream`] with a hard bound on buffered packets (explicit
    /// backpressure past `max_packets`).
    pub fn stream_bounded(
        &self,
        channels: usize,
        start_us: u64,
        max_packets: usize,
    ) -> LongRangeStream {
        LongRangeStream {
            decoder: self.clone(),
            acc: SeriesAccumulator::with_capacity(channels, max_packets),
            start_us,
        }
    }

    /// [`Self::decode`] plus observability: a `uplink.correlate` span over
    /// the bundle's simulated-time extent (items = packets visited by the
    /// chip correlations — linear in the frame's packets, not in
    /// channels × bits × packets) and the selector counters
    /// (`uplink.channels-kept`, `uplink.channels-dropped`). Decoding is
    /// bit-identical to [`Self::decode`].
    pub fn decode_with(
        &self,
        bundle: &SeriesBundle,
        start_us: u64,
        rec: &mut dyn Recorder,
    ) -> Option<LongRangeOutput> {
        let mut index = SlotIndex::new(bundle);
        self.decode_indexed(&mut index, start_us, rec)
    }

    /// [`Self::decode_with`] against a caller-owned [`SlotIndex`], sharing
    /// the conditioned series (and window lookups) with other decode
    /// attempts on the same capture. Each bit window is a contiguous
    /// packet range on the ascending timestamp axis, so the per-chip
    /// correlations iterate exactly the window's packets — in packet
    /// order, keeping the accumulation bit-exact against
    /// [`Self::decode_reference`] — instead of scanning the whole stream
    /// per (channel, bit, code).
    pub fn decode_indexed(
        &self,
        index: &mut SlotIndex<'_>,
        start_us: u64,
        rec: &mut dyn Recorder,
    ) -> Option<LongRangeOutput> {
        let bundle = index.bundle();
        if bundle.packets() == 0 || bundle.channels() == 0 {
            return None;
        }
        let t_lo = *bundle.t_us.first().unwrap_or(&0);
        let t_hi = *bundle.t_us.last().unwrap_or(&0);
        let gap = bundle.median_gap_us().max(1);
        let half = ((self.cfg.conditioning_window_us / 2) / gap).max(2) as usize;
        let conditioned = index.conditioned(half);

        let preamble = bs_tag::frame::uplink_preamble();
        let bit_us = self.cfg.code.len() as u64 * self.cfg.chip_duration_us;
        let mut visited = 0u64;

        // The bit windows are channel-independent: resolve each one to
        // its packet range once, up front.
        let window = |b: u64| {
            let lo = start_us + b * bit_us;
            index.packet_range(lo, lo.saturating_add(bit_us))
        };
        let pre_ranges: Vec<_> = (0..preamble.len() as u64).map(&window).collect();

        // Rank channels by how well the *known preamble* decodes on them,
        // capturing each channel's polarity at the same time.
        let mut ranked: Vec<(usize, f64, f64)> = Vec::new(); // (idx, quality, polarity)
        for (i, ch) in conditioned.iter().enumerate() {
            let mut agree = 0.0;
            for (b, &bit) in preamble.iter().enumerate() {
                let bit_start = start_us + b as u64 * bit_us;
                let m = self.margin_in_range(bundle, ch, pre_ranges[b].clone(), bit_start);
                visited += 2 * pre_ranges[b].len() as u64;
                agree += if bit { m } else { -m };
            }
            // A NaN/∞ quality cannot be ranked meaningfully: skip the
            // channel, as the plain decoder's selector does.
            if !agree.is_finite() {
                continue;
            }
            ranked.push((i, agree.abs(), agree.signum()));
        }
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        ranked.truncate(self.cfg.top_channels);
        if ranked.is_empty() || ranked[0].1 == 0.0 {
            return None;
        }
        rec.add("uplink.channels-kept", ranked.len() as u64);
        rec.add(
            "uplink.channels-dropped",
            (bundle.channels() - ranked.len()) as u64,
        );

        // Decode payload bits with the polarity-corrected combined margin.
        // A window with zero packets is an erasure — correlating nothing
        // must not pass for a confident bit.
        let pre_len = preamble.len();
        let mut bits = Vec::with_capacity(self.cfg.payload_bits);
        for b in 0..self.cfg.payload_bits {
            let bit_start = start_us + (pre_len + b) as u64 * bit_us;
            let range = window((pre_len + b) as u64);
            if range.is_empty() {
                bits.push(None);
                continue;
            }
            visited += 2 * (range.len() * ranked.len()) as u64;
            let combined: f64 = ranked
                .iter()
                .map(|&(i, quality, pol)| {
                    quality * pol * self.margin_in_range(bundle, &conditioned[i], range.clone(), bit_start)
                })
                .sum();
            bits.push(Some(combined > 0.0));
        }
        rec.span("uplink.correlate", t_lo, t_hi, visited);
        let frame = if bits.iter().all(Option::is_some) {
            Some(UplinkFrame::new(
                bits.iter().map(|b| b.unwrap()).collect(),
            ))
        } else {
            None
        };
        Some(LongRangeOutput {
            bits,
            frame,
            channels: ranked.iter().map(|&(i, _, _)| i).collect(),
        })
    }

    /// The straight-line reference decoder: same pipeline and same
    /// outputs as [`Self::decode`], but every chip correlation is a full
    /// pass over the packet stream. Kept as the ground truth the indexed
    /// path must match bit for bit.
    pub fn decode_reference(&self, bundle: &SeriesBundle, start_us: u64) -> Option<LongRangeOutput> {
        if bundle.packets() == 0 || bundle.channels() == 0 {
            return None;
        }
        let gap = bundle.median_gap_us().max(1);
        let half = ((self.cfg.conditioning_window_us / 2) / gap).max(2) as usize;
        let conditioned: Vec<Vec<f64>> = bundle
            .series
            .iter()
            .map(|s| condition(s, half))
            .collect();

        let preamble = bs_tag::frame::uplink_preamble();
        let bit_us = self.cfg.code.len() as u64 * self.cfg.chip_duration_us;

        let mut ranked: Vec<(usize, f64, f64)> = Vec::new(); // (idx, quality, polarity)
        for (i, ch) in conditioned.iter().enumerate() {
            let mut agree = 0.0;
            for (b, &bit) in preamble.iter().enumerate() {
                let m = self.bit_margin(bundle, ch, start_us + b as u64 * bit_us);
                agree += if bit { m } else { -m };
            }
            if !agree.is_finite() {
                continue;
            }
            ranked.push((i, agree.abs(), agree.signum()));
        }
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        ranked.truncate(self.cfg.top_channels);
        if ranked.is_empty() || ranked[0].1 == 0.0 {
            return None;
        }

        let pre_len = preamble.len();
        let mut bits = Vec::with_capacity(self.cfg.payload_bits);
        for b in 0..self.cfg.payload_bits {
            let bit_start = start_us + (pre_len + b) as u64 * bit_us;
            let end = bit_start.saturating_add(bit_us);
            let occupied = bundle
                .t_us
                .iter()
                .any(|&t| t >= bit_start && t < end);
            if !occupied {
                bits.push(None);
                continue;
            }
            let combined: f64 = ranked
                .iter()
                .map(|&(i, quality, pol)| quality * pol * self.bit_margin(bundle, &conditioned[i], bit_start))
                .sum();
            bits.push(Some(combined > 0.0));
        }
        let frame = if bits.iter().all(Option::is_some) {
            Some(UplinkFrame::new(
                bits.iter().map(|b| b.unwrap()).collect(),
            ))
        } else {
            None
        };
        Some(LongRangeOutput {
            bits,
            frame,
            channels: ranked.iter().map(|&(i, _, _)| i).collect(),
        })
    }

    /// [`Self::bit_margin`] restricted to the window's contiguous packet
    /// range: the two code correlations accumulate over exactly the
    /// packets of `range` in order, making the result bit-exact against
    /// the full-scan version while doing only O(window) work.
    fn margin_in_range(
        &self,
        bundle: &SeriesBundle,
        channel: &[f64],
        range: std::ops::Range<usize>,
        bit_start_us: u64,
    ) -> f64 {
        let chip = self.cfg.chip_duration_us;
        let mut c1 = 0.0;
        for p in range.clone() {
            let c = ((bundle.t_us[p] - bit_start_us) / chip) as usize;
            c1 += channel[p] * f64::from(self.cfg.code.one[c]);
        }
        let mut c0 = 0.0;
        for p in range {
            let c = ((bundle.t_us[p] - bit_start_us) / chip) as usize;
            c0 += channel[p] * f64::from(self.cfg.code.zero[c]);
        }
        c1 - c0
    }
}

/// A streaming long-range decode session: push packets as they arrive,
/// decode on [`Self::finish`]. Buffering and equivalence semantics are
/// identical to [`crate::uplink::UplinkStream`] — the session retains one
/// bounded frame of packets and hands the completed bundle to the batch
/// correlator, so streaming is bit-identical to [`LongRangeDecoder::decode`]
/// by construction.
#[derive(Debug, Clone)]
pub struct LongRangeStream {
    decoder: LongRangeDecoder,
    acc: SeriesAccumulator,
    start_us: u64,
}

impl LongRangeStream {
    /// Offers one packet; [`Consumed::none`] (nothing buffered) if at
    /// capacity or the timestamp runs backwards.
    ///
    /// # Panics
    /// Panics if `values` does not have one entry per channel.
    pub fn feed_packet(&mut self, t_us: u64, values: &[f64]) -> Consumed {
        self.acc.feed_packet(t_us, values)
    }

    /// Offers a burst of packets; accepts a prefix and reports how many.
    ///
    /// # Panics
    /// Panics if a non-empty bundle's channel count differs.
    pub fn feed(&mut self, bundle: &SeriesBundle) -> Consumed {
        self.acc.feed(bundle)
    }

    /// Packets buffered so far.
    pub fn packets(&self) -> usize {
        self.acc.packets()
    }

    /// High-water mark of buffered packets.
    pub fn peak_resident(&self) -> usize {
        self.acc.peak_resident()
    }

    /// Completes the session and decodes the buffered packets —
    /// bit-identical to [`LongRangeDecoder::decode`] on the same packets.
    pub fn finish(self) -> Option<LongRangeOutput> {
        self.finish_with(&mut NullRecorder)
    }

    /// [`Self::finish`] with observability (same recorder contract as
    /// [`LongRangeDecoder::decode_with`]).
    pub fn finish_with(self, rec: &mut dyn Recorder) -> Option<LongRangeOutput> {
        let bundle = self.acc.into_bundle();
        self.decoder.decode_with(&bundle, self.start_us, rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_dsp::SimRng;

    /// Synthetic long-range bundle: very weak modulation buried in noise.
    fn synth(
        payload: &[bool],
        l: usize,
        amp: f64,
        noise: f64,
        gap_us: u64,
        chip_us: u64,
        seed: u64,
    ) -> SeriesBundle {
        let frame = UplinkFrame::new(payload.to_vec());
        let bits = frame.to_bits();
        let pair = OrthogonalPair::new(l);
        let chips: Vec<bool> = bits
            .iter()
            .flat_map(|&b| pair.code_for(b).iter().map(|&c| c > 0).collect::<Vec<_>>())
            .collect();
        let total_us = chips.len() as u64 * chip_us + 100_000;
        let t_us: Vec<u64> = (0..).map(|i| i * gap_us).take_while(|&t| t < total_us).collect();
        let mut rng = SimRng::new(seed).stream("lr-synth");
        let series: Vec<Vec<f64>> = (0..12)
            .map(|c| {
                let good = c < 6;
                let polarity = if c % 2 == 0 { 1.0 } else { -1.0 };
                t_us
                    .iter()
                    .map(|&t| {
                        let level = if good {
                            let chip = (t / chip_us) as usize;
                            match chips.get(chip) {
                                Some(&true) => amp * polarity,
                                Some(&false) => -amp * polarity,
                                None => 0.0,
                            }
                        } else {
                            0.0
                        };
                        20.0 + level + rng.gaussian(0.0, noise)
                    })
                    .collect()
            })
            .collect();
        SeriesBundle { t_us, series }
    }

    fn cfg(l: usize, chip_us: u64, payload: usize) -> LongRangeConfig {
        LongRangeConfig {
            chip_duration_us: chip_us,
            code: OrthogonalPair::new(l),
            payload_bits: payload,
            conditioning_window_us: 400_000,
            top_channels: 6,
        }
    }

    #[test]
    fn decodes_below_slicer_threshold() {
        // Amplitude 0.15 vs noise 1.0: per-packet SNR ≈ −16 dB — hopeless
        // for the plain slicer, easy for L=100 correlation with ~3 packets
        // per chip.
        let payload: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
        let bundle = synth(&payload, 100, 0.15, 1.0, 333, 1_000, 1);
        let dec = LongRangeDecoder::new(cfg(100, 1_000, 16));
        let out = dec.decode(&bundle, 0).expect("no detection");
        assert_eq!(out.frame.unwrap().payload, payload);
    }

    #[test]
    fn longer_codes_tolerate_more_noise() {
        let payload: Vec<bool> = (0..12).map(|i| i % 2 == 0).collect();
        let errors = |l: usize, seed: u64| -> usize {
            let bundle = synth(&payload, l, 0.08, 1.0, 333, 1_000, seed);
            let dec = LongRangeDecoder::new(cfg(l, 1_000, 12));
            match dec.decode(&bundle, 0) {
                Some(out) => out
                    .bits
                    .iter()
                    .zip(&payload)
                    .filter(|(b, &w)| **b != Some(w))
                    .count(),
                None => payload.len(),
            }
        };
        let short: usize = (0..6).map(|s| errors(8, 10 + s)).sum();
        let long: usize = (0..6).map(|s| errors(120, 20 + s)).sum();
        assert!(long < short, "long {long} short {short}");
    }

    #[test]
    fn good_channels_selected() {
        let payload: Vec<bool> = (0..8).map(|i| i % 2 == 1).collect();
        let bundle = synth(&payload, 60, 0.3, 0.5, 333, 1_000, 3);
        let dec = LongRangeDecoder::new(cfg(60, 1_000, 8));
        let out = dec.decode(&bundle, 0).unwrap();
        let good = out.channels.iter().filter(|&&c| c < 6).count();
        assert!(good >= 5, "channels {:?}", out.channels);
    }

    #[test]
    fn empty_bundle_is_none() {
        let dec = LongRangeDecoder::new(cfg(20, 1_000, 8));
        assert!(dec
            .decode(
                &SeriesBundle {
                    t_us: vec![],
                    series: vec![]
                },
                0
            )
            .is_none());
    }

    #[test]
    fn mixed_polarity_channels_decode() {
        // The synth helper alternates channel polarity; correctness across
        // several seeds shows the polarity correction works.
        let payload: Vec<bool> = (0..10).map(|i| (i * 7) % 4 < 2).collect();
        for seed in 0..5 {
            let bundle = synth(&payload, 80, 0.2, 0.6, 333, 1_000, 50 + seed);
            let dec = LongRangeDecoder::new(cfg(80, 1_000, 10));
            let out = dec.decode(&bundle, 0).expect("no detection");
            assert_eq!(out.frame.unwrap().payload, payload, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chip_duration_panics() {
        let mut c = cfg(20, 1_000, 8);
        c.chip_duration_us = 0;
        LongRangeDecoder::new(c);
    }

    #[test]
    fn config_clamps_chip_duration_above_1mcps() {
        // 2 Mchip/s: 1_000_000 / 2_000_000 truncates to 0, which used to
        // trip the constructor assert; the config must clamp to 1 µs.
        let c = LongRangeConfig::new(8, 2_000_000, 4);
        assert_eq!(c.chip_duration_us, 1);
        LongRangeDecoder::new(c); // must not panic
    }

    #[test]
    fn empty_bit_window_is_erasure_not_false() {
        // Knock every packet out of payload bit 1's window: the decoder
        // must emit an erasure there (not a confident `false`) and
        // withhold the frame.
        let payload = vec![true, true, true];
        let bundle = synth(&payload, 4, 0.5, 0.1, 333, 1_000, 9);
        let bit_us = 4 * 1_000u64;
        let pre_len = bs_tag::frame::uplink_preamble().len();
        let lo = (pre_len as u64 + 1) * bit_us;
        let hi = lo + bit_us;
        let keep: Vec<usize> = (0..bundle.packets())
            .filter(|&p| bundle.t_us[p] < lo || bundle.t_us[p] >= hi)
            .collect();
        let gapped = SeriesBundle {
            t_us: keep.iter().map(|&p| bundle.t_us[p]).collect(),
            series: bundle
                .series
                .iter()
                .map(|s| keep.iter().map(|&p| s[p]).collect())
                .collect(),
        };
        let dec = LongRangeDecoder::new(cfg(4, 1_000, 3));
        let out = dec.decode(&gapped, 0).expect("no detection");
        assert_eq!(out.bits[1], None, "empty window must erase");
        assert!(out.bits[0].is_some() && out.bits[2].is_some());
        assert!(out.frame.is_none(), "frame must wait for all bits");
        assert_eq!(dec.decode_reference(&gapped, 0), Some(out));
    }

    #[test]
    fn stream_feed_matches_batch_decode_bit_for_bit() {
        let payload: Vec<bool> = (0..10).map(|i| i % 3 != 0).collect();
        let bundle = synth(&payload, 40, 0.2, 0.6, 333, 1_000, 41);
        let dec = LongRangeDecoder::new(cfg(40, 1_000, 10));
        let batch = dec.decode(&bundle, 0);
        assert!(batch.is_some());
        let mut session = dec.stream(bundle.channels(), 0);
        for p in 0..bundle.packets() {
            let values: Vec<f64> = bundle.series.iter().map(|s| s[p]).collect();
            assert!(session.feed_packet(bundle.t_us[p], &values).any());
        }
        assert_eq!(session.packets(), bundle.packets());
        assert_eq!(session.finish(), batch);
    }

    #[test]
    fn bounded_stream_backpressure() {
        let payload: Vec<bool> = (0..6).map(|i| i % 2 == 0).collect();
        let bundle = synth(&payload, 20, 0.3, 0.4, 333, 1_000, 42);
        let cap = bundle.packets() / 3;
        let dec = LongRangeDecoder::new(cfg(20, 1_000, 6));
        let mut session = dec.stream_bounded(bundle.channels(), 0, cap);
        assert_eq!(session.feed(&bundle).accepted, cap);
        assert!(!session.feed(&bundle).any());
        let prefix = SeriesBundle {
            t_us: bundle.t_us[..cap].to_vec(),
            series: bundle.series.iter().map(|s| s[..cap].to_vec()).collect(),
        };
        assert_eq!(session.finish(), dec.decode(&prefix, 0));
    }

    #[test]
    fn indexed_decode_matches_reference_bit_for_bit() {
        let payload: Vec<bool> = (0..10).map(|i| i % 3 != 0).collect();
        for (l, gap, seed) in [(20usize, 333u64, 31u64), (60, 1_100, 32), (8, 4_500, 33)] {
            let bundle = synth(&payload, l, 0.2, 0.8, gap, 1_000, seed);
            let dec = LongRangeDecoder::new(cfg(l, 1_000, 10));
            let a = dec.decode_reference(&bundle, 0);
            let b = dec.decode(&bundle, 0);
            assert_eq!(a, b, "l {l} gap {gap} seed {seed}");
        }
    }
}
