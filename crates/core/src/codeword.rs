//! The codeword-translation uplink: decode plumbing for
//! [`crate::phy::CodewordPhy`].
//!
//! Where the presence uplink ([`crate::uplink`]) treats every helper
//! packet as one CSI/RSSI sample of the tag's slow switch state, the
//! codeword uplink rides *inside* the helper's frames: the tag applies a
//! π phase flip to individual 802.11 symbols
//! ([`bs_tag::codeword::CodewordModulator`]), the flip maps each CCK
//! codeword onto another valid codeword ([`bs_wifi::symbol`]), and the
//! reader — which decodes the helper's frame anyway — recovers the
//! tag's flip sequence from the demodulation residue. Tag bits arrive at
//! a fraction of the helper's *symbol* rate instead of a fraction of its
//! *packet* rate, which is where the orders-of-magnitude goodput gap
//! between the two PHY modes comes from.
//!
//! The simulation reuses the presence pipeline's traffic, fault and MAC
//! stages verbatim (same generators, same fault decorators, same DCF
//! medium) so both PHYs face the identical air. Downstream of the MAC it
//! diverges: no Scene snapshots, no CSI/RSSI extractor — just per-symbol
//! flip decisions with an error rate set by the deployment geometry
//! ([`bs_wifi::symbol::residue_excess_db`]).
//!
//! Semantics under the shared [`crate::link::LinkConfig`]:
//!
//! * `scene`, `seed`, `helper_pps`, `payload`, `background`,
//!   `use_all_traffic` and `faults` mean exactly what they mean for the
//!   presence PHY. Background frames still *clock* the tag (it
//!   carrier-senses every transmission) but the reader can only read
//!   residue from frames it demodulates, so with `use_all_traffic` off a
//!   background frame's symbols become erasures.
//! * `chip_rate_cps`, `measurement`, `code_length`, `ideal_csi` and
//!   `csi_spurious_boost` are presence-PHY knobs and are ignored.
//! * `mitigations` is ignored: the presence mitigations (CSI fallback,
//!   chip-rate halving, drift re-scan) patch failure modes this PHY does
//!   not have — see `PhyCapabilities` for what replaces them. Clock
//!   drift in particular is moot because the helper's own symbol train
//!   is the tag's clock.

use crate::link::{DegradationReport, LinkConfig, UplinkRun};
use bs_channel::faults::FaultEvents;
use bs_dsp::bits::BerCounter;
use bs_dsp::obs::Recorder;
use bs_dsp::SimRng;
use bs_tag::codeword::CodewordModulator;
use bs_tag::frame::{uplink_preamble, UplinkFrame};
use bs_wifi::mac::{Medium, Station};
use bs_wifi::symbol::{data_frame_symbols, flip_error_prob, residue_excess_db, symbols_in};

/// The helper frame size the link simulations use (bytes).
pub const HELPER_FRAME_BYTES: usize = 1000;

/// The helper PHY rate the link simulations use (Mbit/s).
pub const HELPER_RATE_MBPS: f64 = 54.0;

/// Tag bit rates (bits/s) the codeword mode's rate adaptation steps
/// through, ascending. These are *decode* rates the symbol supply must
/// cover — unlike the presence mode's
/// [`SUPPORTED_RATES_BPS`](crate::protocol::SUPPORTED_RATES_BPS) they
/// never appear on the query wire (the tag's chip clock is the helper's
/// symbol train, not a commanded oscillator rate).
pub const CODEWORD_RATE_STEPS_BPS: [u64; 6] = [1_000, 2_000, 5_000, 10_000, 25_000, 50_000];

/// Symbols one helper data frame carries at the link's standard
/// frame shape (1000 bytes at 54 Mbit/s → 42 symbols).
pub fn helper_frame_symbols() -> u64 {
    data_frame_symbols(HELPER_FRAME_BYTES, HELPER_RATE_MBPS)
}

/// Shape of the codeword-translation uplink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodewordParams {
    /// Times each on-air frame bit is repeated as a chip.
    pub chips_per_bit: u32,
    /// Helper symbols each chip is held for (the reader majority-votes
    /// the per-symbol flip decisions inside a chip).
    pub sym_per_chip: u32,
    /// Barker-13 preamble mismatches the detector tolerates.
    pub preamble_max_errors: usize,
}

impl Default for CodewordParams {
    fn default() -> Self {
        CodewordParams {
            chips_per_bit: 2,
            sym_per_chip: 2,
            preamble_max_errors: 2,
        }
    }
}

impl CodewordParams {
    /// Helper symbols consumed per tag bit.
    pub fn syms_per_bit(&self) -> u64 {
        u64::from(self.chips_per_bit.max(1)) * u64::from(self.sym_per_chip.max(1))
    }
}

/// Runs one codeword-translation uplink frame exchange. See the module
/// docs for which [`LinkConfig`] fields apply. Every RNG draw is
/// independent of the recorder, so results are bit-identical whatever
/// `rec` is.
pub fn run_codeword_uplink_with(
    cfg: &LinkConfig,
    params: &CodewordParams,
    rec: &mut dyn Recorder,
) -> UplinkRun {
    let root = SimRng::new(cfg.seed);
    let frame = UplinkFrame::new(cfg.payload.clone());
    let modulator = CodewordModulator::new(&frame, params.chips_per_bit, params.sym_per_chip);
    let total_chips = modulator.total_chips();
    let needed_syms = modulator.total_symbols();
    let spc = u64::from(modulator.sym_per_chip());

    // Window sizing: the schedule needs `needed_syms` helper symbols;
    // allow 2× headroom over the nominal supply plus a fixed tail so
    // moderate fault-thinning still completes within the window.
    let syms_per_sec = (cfg.helper_pps * helper_frame_symbols() as f64).max(1.0);
    let duration_us = ((needed_syms as f64 / syms_per_sec) * 2e6) as u64 + 100_000;

    // Traffic + MAC: the exact decorator chain of the presence capture,
    // so a FaultPlan thins/duplicates arrivals identically for both PHYs.
    let plan = &cfg.faults;
    let mut events = FaultEvents::default();
    let mut traffic_rng = root.stream("helper-traffic");
    let mut stations = vec![Station::data(
        bs_wifi::traffic::apply_faults_with(
            bs_wifi::traffic::cbr(cfg.helper_pps, duration_us, &mut traffic_rng),
            plan,
            "helper",
            &mut events,
            rec,
        ),
        HELPER_FRAME_BYTES,
        HELPER_RATE_MBPS,
    )];
    for (i, &(pps, bytes)) in cfg.background.iter().enumerate() {
        let mut rng = root.stream("background").substream(i as u64);
        stations.push(Station::data(
            bs_wifi::traffic::apply_faults_with(
                bs_wifi::traffic::poisson(pps, duration_us, &mut rng),
                plan,
                &format!("background-{i}"),
                &mut events,
                rec,
            ),
            bytes,
            54.0,
        ));
    }
    let mut medium = Medium::new(Default::default(), root.stream("mac"));
    let (timeline, _) = medium.simulate(&stations, duration_us);
    rec.span("phy.codeword.mac", 0, duration_us, timeline.len() as u64);

    // An interference burst raises the residue floor while it is active;
    // the other sensor faults target the Intel CSI tool and do not touch
    // this decode path. Clock drift is moot (symbol-clocked tag).
    let intf = plan.interference();
    if intf.is_some() {
        events.fire("interference-burst");
    }
    let p_base = flip_error_prob(residue_excess_db(
        cfg.scene.d_helper_tag(),
        cfg.scene.d_tag_reader(),
    ));

    // Walk the timeline: every non-collided frame clocks the tag's
    // symbol cursor; only frames the reader demodulates contribute flip
    // observations.
    let mut noise = root.stream("codeword-residue");
    let mut ones = vec![0u32; total_chips];
    let mut seen = vec![0u32; total_chips];
    let mut cursor: u64 = 0;
    let mut frames_used = 0usize;
    let mut last_frame_end = 0u64;
    for t in timeline.iter().filter(|t| !t.collided) {
        if cursor >= needed_syms {
            break;
        }
        let usable = cfg.use_all_traffic || t.frame.src == 0;
        let p_err = match &intf {
            Some(ic) if ic.active_at(t.frame.timestamp_us as f64 / 1e6) => {
                (p_base + 0.25).min(0.5)
            }
            _ => p_base,
        };
        let mut consumed = false;
        for _ in 0..symbols_in(t.frame.duration_us) {
            if cursor >= needed_syms {
                break;
            }
            let chip = (cursor / spc) as usize;
            let flip = modulator.flip_at_symbol(cursor).unwrap_or(false);
            cursor += 1;
            consumed = true;
            if usable {
                // observed = true flip XOR decision error.
                let observed = flip != noise.chance(p_err);
                seen[chip] += 1;
                if observed {
                    ones[chip] += 1;
                }
            }
        }
        if consumed {
            last_frame_end = t.frame.end_us();
            if usable {
                frames_used += 1;
            }
        }
    }
    let elapsed_us = if cursor >= needed_syms && last_frame_end > 0 {
        last_frame_end
    } else {
        duration_us
    };

    // Chip = majority of its per-symbol observations; unseen or tied
    // chips are erasures.
    let chips: Vec<Option<bool>> = (0..total_chips)
        .map(|c| {
            if ones[c] * 2 > seen[c] {
                Some(true)
            } else if seen[c] > 0 && ones[c] * 2 < seen[c] {
                Some(false)
            } else {
                None
            }
        })
        .collect();
    let chip_erasures = chips.iter().filter(|c| c.is_none()).count();
    rec.add("phy.codeword.symbols-consumed", cursor);
    rec.add("phy.codeword.frames-used", frames_used as u64);
    rec.add("phy.codeword.chip-erasures", chip_erasures as u64);

    // Bit = majority over its chips, ignoring erasures.
    let cpb = params.chips_per_bit.max(1) as usize;
    let n_bits = frame.to_bits().len();
    let bits: Vec<Option<bool>> = (0..n_bits)
        .map(|i| {
            let (mut hi, mut lo) = (0u32, 0u32);
            for c in &chips[i * cpb..(i + 1) * cpb] {
                match c {
                    Some(true) => hi += 1,
                    Some(false) => lo += 1,
                    None => {}
                }
            }
            match hi.cmp(&lo) {
                std::cmp::Ordering::Greater => Some(true),
                std::cmp::Ordering::Less => Some(false),
                std::cmp::Ordering::Equal => None,
            }
        })
        .collect();

    // Detection: the decoded Barker-13 preamble must match within the
    // configured tolerance (erasures count as mismatches).
    let preamble = uplink_preamble();
    let mismatches = preamble
        .iter()
        .enumerate()
        .filter(|&(i, &b)| bits.get(i).copied().flatten() != Some(b))
        .count();
    let detected = mismatches <= params.preamble_max_errors;
    let decoded: Vec<Option<bool>> = if detected {
        bits[preamble.len()..preamble.len() + cfg.payload.len()].to_vec()
    } else {
        vec![None; cfg.payload.len()]
    };

    let mut report = DegradationReport::default();
    report.absorb(&events);
    let mut ber = BerCounter::new();
    ber.compare_with_erasures(&cfg.payload, &decoded);
    UplinkRun {
        transmitted: cfg.payload.clone(),
        decoded,
        ber,
        detected,
        packets_used: frames_used,
        pkts_per_bit: frames_used as f64 / cfg.payload.len().max(1) as f64,
        degradation: report,
        obs: None,
        elapsed_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_dsp::obs::NullRecorder;

    fn cfg(seed: u64) -> LinkConfig {
        LinkConfig::fig10(0.8, 100, 5, seed)
            .with_payload((0..64).map(|i| (i * 7) % 5 < 2).collect())
    }

    #[test]
    fn roundtrips_in_the_benign_regime() {
        for seed in [3, 17, 91] {
            let run = run_codeword_uplink_with(&cfg(seed), &CodewordParams::default(), &mut NullRecorder);
            assert!(run.detected, "no detection at seed {seed}");
            assert_eq!(run.ber.errors(), 0, "errors at seed {seed}: {:?}", run.decoded);
        }
    }

    #[test]
    fn elapsed_is_a_tiny_fraction_of_presence_airtime() {
        // 64 bits at 3 000 pps ride a handful of frames — well under
        // 50 ms, where the presence exchange spends 1.2 s on
        // conditioning lead alone.
        let mut c = cfg(5);
        c.helper_pps = 3_000.0;
        let run = run_codeword_uplink_with(&c, &CodewordParams::default(), &mut NullRecorder);
        assert!(run.detected);
        assert!(run.elapsed_us < 50_000, "elapsed {}", run.elapsed_us);
    }

    #[test]
    fn far_geometry_breaks_the_residue_decisions() {
        let mut c = cfg(11);
        c.scene = bs_channel::scene::SceneConfig::uplink(12.0);
        let run = run_codeword_uplink_with(&c, &CodewordParams::default(), &mut NullRecorder);
        assert!(
            !run.detected || run.ber.raw_ber() > 0.1,
            "12 m should be broken: ber {}",
            run.ber.raw_ber()
        );
    }

    #[test]
    fn background_frames_clock_but_do_not_inform() {
        // Helper-only reader with heavy background: the tag's schedule is
        // consumed partly by frames the reader cannot demodulate, so chip
        // erasures must appear; with use_all_traffic the same air decodes
        // cleanly.
        let mut c = cfg(23);
        c.background = vec![(2_000.0, 800)];
        let blind = run_codeword_uplink_with(&c, &CodewordParams::default(), &mut NullRecorder);
        let mut all = c.clone();
        all.use_all_traffic = true;
        let open = run_codeword_uplink_with(&all, &CodewordParams::default(), &mut NullRecorder);
        assert!(open.detected);
        assert_eq!(open.ber.errors(), 0);
        let blind_erasures = blind.decoded.iter().filter(|b| b.is_none()).count();
        assert!(
            blind_erasures > 0 || blind.ber.errors() > 0 || !blind.detected,
            "blind run should lose symbols to background frames"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = CodewordParams::default();
        let a = run_codeword_uplink_with(&cfg(77), &p, &mut NullRecorder);
        let b = run_codeword_uplink_with(&cfg(77), &p, &mut NullRecorder);
        assert_eq!(a.decoded, b.decoded);
        assert_eq!(a.elapsed_us, b.elapsed_us);
        let c = run_codeword_uplink_with(&cfg(78), &p, &mut NullRecorder);
        assert!(a.decoded != c.decoded || a.elapsed_us != c.elapsed_us);
    }
}
