//! A single lens over every kind of run result.
//!
//! [`UplinkRun`], [`DownlinkRun`] and [`QueryOutcome`] grew independently
//! and expose their accounting in three shapes. [`RunReport`] is the
//! common denominator the bench harness and downstream tooling read: how
//! many bits, how many errors, what degraded, and the observability
//! report if one was attached.

use crate::link::{DegradationReport, DownlinkRun, UplinkRun};
use crate::session::QueryOutcome;
use bs_dsp::obs::ObsReport;

/// Common read-only view of a completed run.
pub trait RunReport {
    /// Payload bits the run accounted (transmitted and compared).
    fn bits(&self) -> u64;

    /// Bit errors (erasures included where the run counts them).
    fn bit_errors(&self) -> u64;

    /// Faults fired and mitigations engaged during the run.
    fn degradation(&self) -> &DegradationReport;

    /// The observability report, if the run was produced by an
    /// `*_observed` entry point.
    fn obs(&self) -> Option<&ObsReport>;

    /// Bit error rate; 0 when no bits were accounted.
    fn ber(&self) -> f64 {
        let bits = self.bits();
        if bits == 0 {
            0.0
        } else {
            self.bit_errors() as f64 / bits as f64
        }
    }

    /// True if every bit came through clean and nothing degraded.
    fn is_clean(&self) -> bool {
        self.bit_errors() == 0 && self.degradation().is_clean()
    }
}

impl RunReport for UplinkRun {
    fn bits(&self) -> u64 {
        self.ber.bits()
    }

    fn bit_errors(&self) -> u64 {
        self.ber.errors()
    }

    fn degradation(&self) -> &DegradationReport {
        &self.degradation
    }

    fn obs(&self) -> Option<&ObsReport> {
        self.obs.as_ref()
    }
}

impl RunReport for DownlinkRun {
    fn bits(&self) -> u64 {
        self.ber.bits()
    }

    fn bit_errors(&self) -> u64 {
        self.ber.errors()
    }

    fn degradation(&self) -> &DegradationReport {
        &self.degradation
    }

    fn obs(&self) -> Option<&ObsReport> {
        self.obs.as_ref()
    }
}

impl RunReport for QueryOutcome {
    fn bits(&self) -> u64 {
        self.payload.len() as u64
    }

    /// A [`QueryOutcome`] only exists for a perfectly-decoded response
    /// (garbled sessions surface [`crate::error::SessionError`] instead),
    /// so its error count is zero by construction.
    fn bit_errors(&self) -> u64 {
        0
    }

    fn degradation(&self) -> &DegradationReport {
        &self.degradation
    }

    fn obs(&self) -> Option<&ObsReport> {
        self.obs.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{DownlinkConfig, LinkConfig};
    use crate::phy::{run_downlink_ber, run_uplink};

    #[test]
    fn uplink_run_reports() {
        let cfg = LinkConfig::fig10(0.05, 100, 30, 42)
            .with_payload((0..20).map(|i| i % 2 == 0).collect());
        let run = run_uplink(&cfg);
        let r: &dyn RunReport = &run;
        assert_eq!(r.bits(), 20);
        assert_eq!(r.bit_errors(), run.ber.errors());
        assert!(r.obs().is_none());
        assert_eq!(r.ber(), run.ber.raw_ber());
    }

    #[test]
    fn downlink_run_reports() {
        let run = run_downlink_ber(&DownlinkConfig::fig17(0.5, 20_000, 7), 500);
        let r: &dyn RunReport = &run;
        assert_eq!(r.bits(), 500);
        assert!(r.ber() < 0.05);
    }

    #[test]
    fn ber_of_empty_run_is_zero() {
        struct Empty(DegradationReport);
        impl RunReport for Empty {
            fn bits(&self) -> u64 {
                0
            }
            fn bit_errors(&self) -> u64 {
                0
            }
            fn degradation(&self) -> &DegradationReport {
                &self.0
            }
            fn obs(&self) -> Option<&ObsReport> {
                None
            }
        }
        let e = Empty(DegradationReport::default());
        assert_eq!(e.ber(), 0.0);
        assert!(e.is_clean());
    }
}
