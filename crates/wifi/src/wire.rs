//! Byte-level 802.11 MAC frame formats, smoltcp-style.
//!
//! The discrete-event simulation works with [`crate::frame::WifiFrame`]
//! timing records, but the system also needs the *on-air byte formats* of
//! the frames it relies on: the CTS_to_SELF control frame that reserves
//! the medium for the downlink (§4.1), the beacons the reader can decode
//! the uplink from (§7.5), ACKs, and plain data frames. This module gives
//! each a typed representation with `emit`/`parse` and an FCS (CRC-32)
//! check, mirroring smoltcp's `Repr` idiom: parsing never panics, every
//! malformed input maps to a [`WireError`].

/// Errors from parsing a wire frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the fixed header needs.
    Truncated,
    /// The FCS at the tail does not match the computed CRC-32.
    BadFcs {
        /// CRC computed over the frame body.
        computed: u32,
        /// CRC carried in the frame.
        received: u32,
    },
    /// The frame-control field does not identify the expected frame type.
    WrongType,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadFcs { computed, received } => {
                write!(f, "FCS mismatch: computed {computed:#010x}, received {received:#010x}")
            }
            WireError::WrongType => write!(f, "unexpected frame type"),
        }
    }
}

impl std::error::Error for WireError {}

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// A deterministic locally-administered address derived from a station
    /// id (handy for simulations).
    pub fn from_station(id: usize) -> MacAddr {
        let b = (id as u32).to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// IEEE CRC-32 (as used by the 802.11 FCS): reflected, init and xorout
/// `0xFFFF_FFFF`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

/// 802.11 frame-control values for the frame types the system uses
/// (protocol version 0; type/subtype packed per the standard's bit
/// layout: `subtype << 4 | type << 2 | version`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
// Digit groups mirror the subtype/type/version field boundaries, not bytes.
#[allow(clippy::unusual_byte_groupings)]
pub enum FrameType {
    /// Management / beacon (type 00, subtype 1000).
    Beacon = 0b1000_00_00,
    /// Control / CTS (type 01, subtype 1100).
    Cts = 0b1100_01_00,
    /// Control / ACK (type 01, subtype 1101).
    Ack = 0b1101_01_00,
    /// Data (type 10, subtype 0000).
    Data = 0b0000_10_00,
}

impl FrameType {
    /// Decodes the first frame-control byte.
    pub fn from_fc(b: u8) -> Option<FrameType> {
        match b {
            x if x == FrameType::Beacon as u8 => Some(FrameType::Beacon),
            x if x == FrameType::Cts as u8 => Some(FrameType::Cts),
            x if x == FrameType::Ack as u8 => Some(FrameType::Ack),
            x if x == FrameType::Data as u8 => Some(FrameType::Data),
            _ => None,
        }
    }
}

fn check_fcs(buf: &[u8]) -> Result<(), WireError> {
    if buf.len() < 4 {
        return Err(WireError::Truncated);
    }
    let body = &buf[..buf.len() - 4];
    let received = u32::from_le_bytes(buf[buf.len() - 4..].try_into().unwrap());
    let computed = crc32(body);
    if computed != received {
        return Err(WireError::BadFcs { computed, received });
    }
    Ok(())
}

fn push_fcs(buf: &mut Vec<u8>) {
    let fcs = crc32(buf);
    buf.extend_from_slice(&fcs.to_le_bytes());
}

/// A CTS frame (14 bytes on the wire). A CTS_to_SELF is simply a CTS whose
/// receiver address is the sender's own (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtsRepr {
    /// Receiver address (== the sender itself for CTS_to_SELF).
    pub ra: MacAddr,
    /// NAV duration in µs (the field the standard caps at 32 767).
    pub duration_us: u16,
}

impl CtsRepr {
    /// Wire length in bytes.
    pub const LEN: usize = 14;

    /// Serialises the frame.
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(Self::LEN);
        buf.push(FrameType::Cts as u8);
        buf.push(0); // flags
        buf.extend_from_slice(&self.duration_us.to_le_bytes());
        buf.extend_from_slice(&self.ra.0);
        push_fcs(&mut buf);
        buf
    }

    /// Parses and verifies a frame.
    pub fn parse(buf: &[u8]) -> Result<CtsRepr, WireError> {
        if buf.len() < Self::LEN {
            return Err(WireError::Truncated);
        }
        check_fcs(&buf[..Self::LEN])?;
        if FrameType::from_fc(buf[0]) != Some(FrameType::Cts) {
            return Err(WireError::WrongType);
        }
        Ok(CtsRepr {
            duration_us: u16::from_le_bytes([buf[2], buf[3]]),
            ra: MacAddr(buf[4..10].try_into().unwrap()),
        })
    }
}

/// An ACK frame (14 bytes on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckRepr {
    /// Receiver address.
    pub ra: MacAddr,
}

impl AckRepr {
    /// Wire length in bytes.
    pub const LEN: usize = 14;

    /// Serialises the frame.
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(Self::LEN);
        buf.push(FrameType::Ack as u8);
        buf.push(0);
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&self.ra.0);
        push_fcs(&mut buf);
        buf
    }

    /// Parses and verifies a frame.
    pub fn parse(buf: &[u8]) -> Result<AckRepr, WireError> {
        if buf.len() < Self::LEN {
            return Err(WireError::Truncated);
        }
        check_fcs(&buf[..Self::LEN])?;
        if FrameType::from_fc(buf[0]) != Some(FrameType::Ack) {
            return Err(WireError::WrongType);
        }
        Ok(AckRepr {
            ra: MacAddr(buf[4..10].try_into().unwrap()),
        })
    }
}

/// A data frame: 24-byte MAC header, payload, FCS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataRepr {
    /// Destination.
    pub dst: MacAddr,
    /// Source.
    pub src: MacAddr,
    /// BSSID.
    pub bssid: MacAddr,
    /// Sequence number (12 bits).
    pub seq: u16,
    /// NAV duration, µs.
    pub duration_us: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl DataRepr {
    /// Header + FCS overhead in bytes.
    pub const OVERHEAD: usize = 24 + 4;

    /// Serialises the frame.
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(Self::OVERHEAD + self.payload.len());
        buf.push(FrameType::Data as u8);
        buf.push(0);
        buf.extend_from_slice(&self.duration_us.to_le_bytes());
        buf.extend_from_slice(&self.dst.0);
        buf.extend_from_slice(&self.src.0);
        buf.extend_from_slice(&self.bssid.0);
        buf.extend_from_slice(&((self.seq & 0x0FFF) << 4).to_le_bytes());
        buf.extend_from_slice(&self.payload);
        push_fcs(&mut buf);
        buf
    }

    /// Parses and verifies a frame.
    pub fn parse(buf: &[u8]) -> Result<DataRepr, WireError> {
        if buf.len() < Self::OVERHEAD {
            return Err(WireError::Truncated);
        }
        check_fcs(buf)?;
        if FrameType::from_fc(buf[0]) != Some(FrameType::Data) {
            return Err(WireError::WrongType);
        }
        Ok(DataRepr {
            duration_us: u16::from_le_bytes([buf[2], buf[3]]),
            dst: MacAddr(buf[4..10].try_into().unwrap()),
            src: MacAddr(buf[10..16].try_into().unwrap()),
            bssid: MacAddr(buf[16..22].try_into().unwrap()),
            seq: u16::from_le_bytes([buf[22], buf[23]]) >> 4,
            payload: buf[24..buf.len() - 4].to_vec(),
        })
    }
}

/// A beacon frame: management header, 64-bit TSF timestamp, beacon
/// interval (in 1024 µs TUs), capabilities, FCS. The TSF timestamp is the
/// clock the paper's reader uses to bin channel measurements into bit
/// intervals (§3.2, §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeaconRepr {
    /// Source (the AP).
    pub src: MacAddr,
    /// BSSID.
    pub bssid: MacAddr,
    /// Sequence number (12 bits).
    pub seq: u16,
    /// TSF timestamp, µs.
    pub timestamp_us: u64,
    /// Beacon interval in time units of 1024 µs (default 100 → 102.4 ms).
    pub interval_tu: u16,
}

impl BeaconRepr {
    /// Wire length in bytes (no tagged IEs — the simulation doesn't need
    /// SSIDs).
    pub const LEN: usize = 24 + 8 + 2 + 2 + 4;

    /// Serialises the frame.
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(Self::LEN);
        buf.push(FrameType::Beacon as u8);
        buf.push(0);
        buf.extend_from_slice(&0u16.to_le_bytes()); // duration
        buf.extend_from_slice(&MacAddr::BROADCAST.0); // DA
        buf.extend_from_slice(&self.src.0);
        buf.extend_from_slice(&self.bssid.0);
        buf.extend_from_slice(&((self.seq & 0x0FFF) << 4).to_le_bytes());
        buf.extend_from_slice(&self.timestamp_us.to_le_bytes());
        buf.extend_from_slice(&self.interval_tu.to_le_bytes());
        buf.extend_from_slice(&0x0401u16.to_le_bytes()); // ESS capability
        push_fcs(&mut buf);
        buf
    }

    /// Parses and verifies a frame.
    pub fn parse(buf: &[u8]) -> Result<BeaconRepr, WireError> {
        if buf.len() < Self::LEN {
            return Err(WireError::Truncated);
        }
        check_fcs(&buf[..Self::LEN])?;
        if FrameType::from_fc(buf[0]) != Some(FrameType::Beacon) {
            return Err(WireError::WrongType);
        }
        Ok(BeaconRepr {
            src: MacAddr(buf[10..16].try_into().unwrap()),
            bssid: MacAddr(buf[16..22].try_into().unwrap()),
            seq: u16::from_le_bytes([buf[22], buf[23]]) >> 4,
            timestamp_us: u64::from_le_bytes(buf[24..32].try_into().unwrap()),
            interval_tu: u16::from_le_bytes([buf[32], buf[33]]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(i: usize) -> MacAddr {
        MacAddr::from_station(i)
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32/ISO-HDLC of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
    }

    #[test]
    fn mac_addr_display_and_broadcast() {
        assert_eq!(MacAddr::BROADCAST.to_string(), "ff:ff:ff:ff:ff:ff");
        assert_eq!(mac(1).to_string(), "02:00:00:00:00:01");
        assert_ne!(mac(1), mac(2));
    }

    #[test]
    fn cts_roundtrip() {
        let r = CtsRepr {
            ra: mac(3),
            duration_us: 31_999,
        };
        let bytes = r.emit();
        assert_eq!(bytes.len(), CtsRepr::LEN);
        assert_eq!(CtsRepr::parse(&bytes), Ok(r));
    }

    #[test]
    fn cts_to_self_has_own_address() {
        // A CTS_to_SELF is a CTS addressed to the sender itself.
        let me = mac(9);
        let r = CtsRepr {
            ra: me,
            duration_us: 4_000,
        };
        let parsed = CtsRepr::parse(&r.emit()).unwrap();
        assert_eq!(parsed.ra, me);
    }

    #[test]
    fn ack_roundtrip() {
        let r = AckRepr { ra: mac(7) };
        assert_eq!(AckRepr::parse(&r.emit()), Ok(r));
    }

    #[test]
    fn data_roundtrip() {
        let r = DataRepr {
            dst: mac(1),
            src: mac(2),
            bssid: mac(0),
            seq: 0x123,
            duration_us: 44,
            payload: (0..100u8).collect(),
        };
        let bytes = r.emit();
        assert_eq!(bytes.len(), DataRepr::OVERHEAD + 100);
        assert_eq!(DataRepr::parse(&bytes), Ok(r));
    }

    #[test]
    fn data_empty_payload_roundtrip() {
        let r = DataRepr {
            dst: mac(1),
            src: mac(2),
            bssid: mac(0),
            seq: 0,
            duration_us: 0,
            payload: vec![],
        };
        assert_eq!(DataRepr::parse(&r.emit()), Ok(r));
    }

    #[test]
    fn beacon_roundtrip() {
        let r = BeaconRepr {
            src: mac(0),
            bssid: mac(0),
            seq: 0xABC,
            timestamp_us: 1_234_567_890_123,
            interval_tu: 100,
        };
        let bytes = r.emit();
        assert_eq!(bytes.len(), BeaconRepr::LEN);
        assert_eq!(BeaconRepr::parse(&bytes), Ok(r));
    }

    #[test]
    fn fcs_detects_any_corruption() {
        let r = DataRepr {
            dst: mac(1),
            src: mac(2),
            bssid: mac(0),
            seq: 7,
            duration_us: 44,
            payload: vec![0xAA; 16],
        };
        let good = r.emit();
        for i in 0..good.len() - 4 {
            let mut bad = good.clone();
            bad[i] ^= 0x01;
            match DataRepr::parse(&bad) {
                Err(WireError::BadFcs { .. }) | Err(WireError::WrongType) => {}
                other => panic!("corruption at byte {i} not caught: {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_inputs_rejected() {
        assert_eq!(CtsRepr::parse(&[0u8; 5]), Err(WireError::Truncated));
        assert_eq!(AckRepr::parse(&[]), Err(WireError::Truncated));
        assert_eq!(DataRepr::parse(&[0u8; 20]), Err(WireError::Truncated));
        assert_eq!(BeaconRepr::parse(&[0u8; 30]), Err(WireError::Truncated));
    }

    #[test]
    fn wrong_type_rejected() {
        let cts = CtsRepr {
            ra: mac(1),
            duration_us: 10,
        }
        .emit();
        assert_eq!(AckRepr::parse(&cts), Err(WireError::WrongType));
        let ack = AckRepr { ra: mac(1) }.emit();
        assert_eq!(CtsRepr::parse(&ack), Err(WireError::WrongType));
    }

    #[test]
    fn seq_is_12_bits() {
        let r = DataRepr {
            dst: mac(1),
            src: mac(2),
            bssid: mac(0),
            seq: 0xFFFF, // overlong; truncated to 12 bits on emit
            duration_us: 0,
            payload: vec![],
        };
        let parsed = DataRepr::parse(&r.emit()).unwrap();
        assert_eq!(parsed.seq, 0x0FFF);
    }

    #[test]
    fn frame_type_decoding() {
        assert_eq!(FrameType::from_fc(FrameType::Data as u8), Some(FrameType::Data));
        assert_eq!(FrameType::from_fc(0xFF), None);
    }

    #[test]
    fn error_display() {
        assert!(WireError::Truncated.to_string().contains("truncated"));
        assert!(WireError::BadFcs {
            computed: 1,
            received: 2
        }
        .to_string()
        .contains("FCS"));
    }
}
