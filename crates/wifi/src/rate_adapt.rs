//! SNR-driven Wi-Fi rate adaptation (§9 / Fig. 19).
//!
//! The paper stress-tests whether the tag's channel modulation hurts a
//! normal Wi-Fi transmitter–receiver pair and finds it does not: "Wi-Fi
//! uses rate adaptation and can easily adapt for the small variations in
//! the channel quality". We reproduce that with a standard SNR-threshold
//! MCS table plus hysteresis, and a saturation-throughput estimate that
//! accounts for MAC overheads.

/// One entry of the 802.11g/n (20 MHz, single stream) rate table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mcs {
    /// PHY rate, Mbps.
    pub rate_mbps: f64,
    /// Minimum SNR (dB) for ~90 % delivery at this rate.
    pub min_snr_db: f64,
}

/// The 802.11g OFDM rate set with standard SNR thresholds.
pub const RATE_TABLE: [Mcs; 8] = [
    Mcs { rate_mbps: 6.0, min_snr_db: 6.0 },
    Mcs { rate_mbps: 9.0, min_snr_db: 7.8 },
    Mcs { rate_mbps: 12.0, min_snr_db: 9.0 },
    Mcs { rate_mbps: 18.0, min_snr_db: 10.8 },
    Mcs { rate_mbps: 24.0, min_snr_db: 17.0 },
    Mcs { rate_mbps: 36.0, min_snr_db: 18.8 },
    Mcs { rate_mbps: 48.0, min_snr_db: 24.0 },
    Mcs { rate_mbps: 54.0, min_snr_db: 24.6 },
];

/// Picks the fastest MCS whose threshold the SNR clears (the slowest rate
/// if none do).
pub fn best_rate(snr_db: f64) -> Mcs {
    RATE_TABLE
        .iter()
        .rev()
        .find(|m| snr_db >= m.min_snr_db)
        .copied()
        .unwrap_or(RATE_TABLE[0])
}

/// MAC-efficiency model: the fraction of airtime that carries payload at a
/// given PHY rate for 1500-byte frames (DIFS + backoff + PHY overhead +
/// ACK amortised). Faster rates waste proportionally more on overhead.
pub fn mac_efficiency(rate_mbps: f64) -> f64 {
    let payload_us = 1500.0 * 8.0 / rate_mbps;
    let overhead_us = 28.0 + 67.5 + 20.0 + 44.0; // DIFS + mean backoff + PHY + ACK(+SIFS)
    payload_us / (payload_us + overhead_us)
}

/// UDP goodput (MB/s, as Fig. 19's y-axis) at saturation for the given SNR.
pub fn saturation_goodput_mbytes(snr_db: f64) -> f64 {
    let mcs = best_rate(snr_db);
    mcs.rate_mbps * mac_efficiency(mcs.rate_mbps) / 8.0
}

/// Fraction of the expected packet cadence below which the reader treats
/// the helper as *collapsed* rather than merely bursty. The §5 margin
/// already absorbs ordinary DCF shortfall (delivered ≈ 0.4–1.0 × offered
/// under contention), so the trigger sits well below that band.
pub const CADENCE_COLLAPSE_FRACTION: f64 = 0.35;

/// True if the measured packet cadence has collapsed relative to the
/// cadence the §5 rate selection assumed.
pub fn cadence_collapsed(measured_pps: f64, expected_pps: f64) -> bool {
    expected_pps > 0.0 && measured_pps < CADENCE_COLLAPSE_FRACTION * expected_pps
}

/// The backscatter-side re-adaptation rule: when the measured helper
/// cadence (`measured_pps`) has collapsed below what the commanded chip
/// rate assumed, pick the fastest halving of `current_cps` that restores
/// at least `target_ppb` measurements per chip at the measured cadence.
/// Returns `None` when the cadence is healthy or no slower rate helps;
/// the floor is 25 chips/s (16× below the slowest §7.2 rate — past that
/// the session should fail loudly instead of crawling).
pub fn readapt_chip_rate(current_cps: u64, measured_pps: f64, target_ppb: f64) -> Option<u64> {
    let expected_pps = current_cps as f64 * target_ppb;
    if !cadence_collapsed(measured_pps, expected_pps) {
        return None;
    }
    let mut rate = current_cps;
    while rate > 25 && measured_pps / (rate as f64) < target_ppb {
        rate = (rate / 2).max(25);
    }
    (rate < current_cps).then_some(rate)
}

/// A rate adapter with hysteresis: the rate only moves up when the SNR
/// clears the next threshold by `up_margin_db`, and only moves down when it
/// falls `down_margin_db` below the current threshold. This is what absorbs
/// the tag's small channel perturbation.
#[derive(Debug, Clone, Copy)]
pub struct RateAdapter {
    idx: usize,
    up_margin_db: f64,
    down_margin_db: f64,
}

impl Default for RateAdapter {
    fn default() -> Self {
        RateAdapter {
            idx: 0,
            up_margin_db: 1.0,
            down_margin_db: 1.0,
        }
    }
}

impl RateAdapter {
    /// Creates an adapter starting at the lowest rate.
    pub fn new(up_margin_db: f64, down_margin_db: f64) -> Self {
        RateAdapter {
            idx: 0,
            up_margin_db,
            down_margin_db,
        }
    }

    /// Feeds one SNR observation; returns the rate now in use.
    pub fn observe(&mut self, snr_db: f64) -> Mcs {
        // Move up while the next rate's threshold is cleared with margin.
        while self.idx + 1 < RATE_TABLE.len()
            && snr_db >= RATE_TABLE[self.idx + 1].min_snr_db + self.up_margin_db
        {
            self.idx += 1;
        }
        // Move down while below the current rate's threshold with margin.
        while self.idx > 0 && snr_db < RATE_TABLE[self.idx].min_snr_db - self.down_margin_db {
            self.idx -= 1;
        }
        RATE_TABLE[self.idx]
    }

    /// The current rate without feeding a new observation.
    pub fn current(&self) -> Mcs {
        RATE_TABLE[self.idx]
    }

    /// Goodput (MB/s) at the current rate under saturation.
    pub fn goodput_mbytes(&self) -> f64 {
        let m = self.current();
        m.rate_mbps * mac_efficiency(m.rate_mbps) / 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_monotone() {
        for w in RATE_TABLE.windows(2) {
            assert!(w[0].rate_mbps < w[1].rate_mbps);
            assert!(w[0].min_snr_db < w[1].min_snr_db);
        }
    }

    #[test]
    fn best_rate_extremes() {
        assert_eq!(best_rate(-10.0).rate_mbps, 6.0);
        assert_eq!(best_rate(40.0).rate_mbps, 54.0);
        assert_eq!(best_rate(20.0).rate_mbps, 36.0);
    }

    #[test]
    fn mac_efficiency_decreases_with_rate() {
        assert!(mac_efficiency(6.0) > mac_efficiency(54.0));
        assert!(mac_efficiency(54.0) > 0.4 && mac_efficiency(54.0) < 0.8);
    }

    #[test]
    fn goodput_in_fig19_range() {
        // Fig. 19's y-axis tops out around 3.5–4 MB/s at close range.
        let g = saturation_goodput_mbytes(35.0);
        assert!((3.0..=4.5).contains(&g), "goodput {g} MB/s");
    }

    #[test]
    fn adapter_climbs_to_snr_appropriate_rate() {
        let mut a = RateAdapter::default();
        let r = a.observe(30.0);
        assert_eq!(r.rate_mbps, 54.0);
    }

    #[test]
    fn adapter_drops_on_poor_snr() {
        let mut a = RateAdapter::default();
        a.observe(30.0);
        // At 8 dB the adapter settles at 12 Mbps (threshold 9 dB) thanks to
        // the 1 dB down-hysteresis margin.
        let r = a.observe(8.0);
        assert!(r.rate_mbps <= 12.0, "rate {}", r.rate_mbps);
        // Without the hysteresis margin it would drop further.
        let mut strict = RateAdapter::new(0.0, 0.0);
        strict.observe(30.0);
        assert!(strict.observe(8.0).rate_mbps <= 9.0);
    }

    #[test]
    fn hysteresis_absorbs_small_fluctuation() {
        // ±0.6 dB wiggle (tag-scale perturbation) around a rate boundary
        // must not change the selected rate once the adapter has settled
        // (the 1 dB up + 1 dB down margins exceed the 1.2 dB peak-to-peak
        // wiggle).
        let mut a = RateAdapter::default();
        for i in 0..10 {
            let wiggle = if i % 2 == 0 { 0.6 } else { -0.6 };
            a.observe(24.8 + wiggle);
        }
        let settled = a.current().rate_mbps;
        for i in 0..100 {
            let wiggle = if i % 2 == 0 { 0.6 } else { -0.6 };
            let r = a.observe(24.8 + wiggle);
            assert_eq!(r.rate_mbps, settled, "rate flapped at i={i}");
        }
    }

    #[test]
    fn healthy_cadence_never_readapts() {
        // Delivered ≈ offered: nothing to do.
        assert_eq!(readapt_chip_rate(100, 1000.0, 10.0), None);
        // Ordinary DCF shortfall (43 % delivered) stays above the trigger.
        assert_eq!(readapt_chip_rate(1000, 2_600.0, 6.0), None);
    }

    #[test]
    fn collapsed_cadence_steps_down_until_ppb_restored() {
        // keep=0.25 collapse at 100 cps × 10 ppb: 250 pps delivered needs
        // 25 cps to see 10 packets per chip again.
        assert_eq!(readapt_chip_rate(100, 250.0, 10.0), Some(25));
        // A milder collapse stops as soon as the target ppb is restored.
        assert_eq!(readapt_chip_rate(1000, 2_000.0, 6.0), Some(250));
    }

    #[test]
    fn readapt_floors_at_25_cps() {
        let r = readapt_chip_rate(100, 1.0, 10.0);
        assert_eq!(r, Some(25));
    }

    #[test]
    fn without_hysteresis_rate_flaps() {
        let mut a = RateAdapter::new(0.0, 0.0);
        let mut rates = std::collections::HashSet::new();
        for i in 0..20 {
            let wiggle = if i % 2 == 0 { 0.6 } else { -0.6 };
            rates.insert(a.observe(24.3 + wiggle).rate_mbps as u64);
        }
        assert!(rates.len() > 1, "expected flapping without hysteresis");
    }
}
