//! Typed Wi-Fi frames and airtime arithmetic.
//!
//! The simulation doesn't need byte-accurate 802.11 headers; it needs the
//! *timing* and *identity* of frames: who sent them, when, for how long,
//! and whether they reserve the medium (CTS_to_SELF, §4.1). Frame kinds and
//! durations follow the 802.11g/n figures the paper quotes: the smallest
//! useful packet is ≈40 µs at 54 Mbps, and CTS_to_SELF can reserve up to
//! 32 ms.

/// Station identifier within a simulated collision domain.
pub type StationId = usize;

/// PHY preamble + PLCP header duration for OFDM (802.11g/n), µs.
pub const PHY_OVERHEAD_US: u64 = 20;

/// Maximum NAV reservation a CTS_to_SELF may establish (§4.1: 32 ms).
pub const MAX_NAV_US: u64 = 32_000;

/// The kinds of frames the simulation distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// A unicast data frame.
    Data,
    /// A periodic AP beacon (§7.5).
    Beacon,
    /// A CTS_to_SELF reservation covering `nav_us` after the frame.
    CtsToSelf {
        /// NAV duration in µs the frame reserves for its sender.
        nav_us: u64,
    },
    /// A link-layer acknowledgement.
    Ack,
    /// A downlink "marker" packet used by the Wi-Fi Backscatter reader to
    /// encode a `1` bit toward the tag (§4.1).
    DownlinkMarker,
}

/// A transmitted Wi-Fi frame as observed on the medium.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WifiFrame {
    /// What kind of frame this is.
    pub kind: FrameKind,
    /// Transmitting station.
    pub src: StationId,
    /// MAC timestamp: transmission start, µs since simulation start. This
    /// is the per-packet timestamp the paper's reader uses to bin channel
    /// measurements into bit intervals (§3.2, §5).
    pub timestamp_us: u64,
    /// Time on air, µs (including PHY overhead).
    pub duration_us: u64,
}

impl WifiFrame {
    /// End of the transmission, µs.
    pub fn end_us(&self) -> u64 {
        self.timestamp_us + self.duration_us
    }

    /// The NAV this frame sets for *other* stations, if any.
    pub fn nav_us(&self) -> u64 {
        match self.kind {
            FrameKind::CtsToSelf { nav_us } => nav_us.min(MAX_NAV_US),
            _ => 0,
        }
    }
}

/// Time on air (µs) of a payload of `bytes` at `rate_mbps`, including PHY
/// overhead. Rounds the symbol payload time up to a whole microsecond.
pub fn airtime_us(bytes: usize, rate_mbps: f64) -> u64 {
    assert!(rate_mbps > 0.0, "rate must be positive");
    let bits = (bytes * 8) as f64;
    PHY_OVERHEAD_US + (bits / rate_mbps).ceil() as u64
}

/// The smallest packet a commodity card can send: ~40 µs at 54 Mbps
/// (§4.1). Used as the downlink marker duration floor.
pub fn min_packet_us() -> u64 {
    airtime_us(136, 54.0) // ≈ 20 µs PHY + ~20 µs payload
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airtime_of_1500_bytes_at_54mbps() {
        // 12000 bits / 54 Mbps ≈ 222 µs + 20 µs PHY.
        let t = airtime_us(1500, 54.0);
        assert!((242..=244).contains(&t), "{t}");
    }

    #[test]
    fn airtime_monotone_in_size() {
        assert!(airtime_us(100, 54.0) < airtime_us(1000, 54.0));
    }

    #[test]
    fn airtime_monotone_in_rate() {
        assert!(airtime_us(1500, 54.0) < airtime_us(1500, 6.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn airtime_zero_rate_panics() {
        airtime_us(100, 0.0);
    }

    #[test]
    fn min_packet_is_about_40us() {
        let t = min_packet_us();
        assert!((38..=42).contains(&t), "{t}");
    }

    #[test]
    fn frame_end_and_nav() {
        let f = WifiFrame {
            kind: FrameKind::CtsToSelf { nav_us: 4_000 },
            src: 0,
            timestamp_us: 100,
            duration_us: 44,
        };
        assert_eq!(f.end_us(), 144);
        assert_eq!(f.nav_us(), 4_000);
        let d = WifiFrame {
            kind: FrameKind::Data,
            src: 1,
            timestamp_us: 0,
            duration_us: 244,
        };
        assert_eq!(d.nav_us(), 0);
    }

    #[test]
    fn nav_clamped_to_standard_maximum() {
        let f = WifiFrame {
            kind: FrameKind::CtsToSelf { nav_us: 1_000_000 },
            src: 0,
            timestamp_us: 0,
            duration_us: 44,
        };
        assert_eq!(f.nav_us(), MAX_NAV_US);
    }
}
