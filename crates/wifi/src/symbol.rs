//! Symbol-level model of a helper frame for codeword-translation
//! backscatter (the FreeRider-style PHY behind
//! `wifi_backscatter::phy::CodewordPhy`).
//!
//! The presence/CSI PHY treats a Wi-Fi packet as one indivisible
//! measurement. Codeword translation goes below the packet: an 802.11b
//! transmission is a train of spread-spectrum symbols, each one of a
//! small codeword set, and a backscatter tag switching its antenna
//! impedance *during* the frame multiplies every covered symbol by an
//! extra phase term. For CCK and DBPSK codeword sets that phase flip
//! maps each codeword onto *another valid codeword* — the flipped frame
//! still demodulates, and a receiver that knows (or re-derives) the
//! original symbol stream reads the tag's flip sequence out of the
//! demodulation residue. The helper's own data rides through untouched
//! after the receiver strips the flips; the tag gets a channel with
//! **zero dedicated airtime**.
//!
//! This module models exactly the pieces the simulator needs:
//!
//! * the coarse symbol clock ([`SYMBOL_US`]) and how many symbols a
//!   frame of a given airtime carries;
//! * the codeword translation itself ([`translate`] /
//!   [`observed_flip`]) — a phase flip toggles the phase MSB of the
//!   4-bit CCK codeword index;
//! * the flip-decision error model ([`flip_error_prob`] over
//!   [`residue_excess_db`]): the tag's reflected sideband must clear
//!   the receiver's residue floor, and the margin falls with
//!   helper→tag and tag→reader distance.
//!
//! Everything here is a pure function — determinism and seeding stay
//! with the callers.

use crate::frame::airtime_us;

/// Coarse symbol duration the codeword model uses (µs). Real 802.11b
/// symbols are 0.727–8 µs depending on rate; 4 µs is the CCK-5.5/11
/// scale and keeps symbol counts proportional to airtime without
/// per-rate bookkeeping.
pub const SYMBOL_US: u64 = 4;

/// The phase MSB of the 4-bit CCK codeword index: a π phase flip by the
/// tag lands the symbol on the codeword with this bit toggled.
pub const PHASE_FLIP_MASK: u8 = 0x8;

/// Symbols carried by `duration_us` of airtime.
pub fn symbols_in(duration_us: u64) -> u64 {
    duration_us / SYMBOL_US
}

/// Symbols carried by one data frame of `payload_bytes` at `rate_mbps`
/// — [`crate::frame::airtime_us`] quantised to the symbol clock.
pub fn data_frame_symbols(payload_bytes: usize, rate_mbps: f64) -> u64 {
    symbols_in(airtime_us(payload_bytes, rate_mbps))
}

/// The codeword the air carries when the helper transmits `codeword`
/// (a 4-bit CCK index) and the tag's switch state applies (`flip`) or
/// does not apply a π phase shift. Translation is an involution: two
/// flips restore the original.
pub fn translate(codeword: u8, flip: bool) -> u8 {
    debug_assert!(codeword < 16, "CCK codeword index is 4 bits");
    if flip {
        codeword ^ PHASE_FLIP_MASK
    } else {
        codeword
    }
}

/// The receiver's flip decision: compare the demodulated codeword
/// against the one the helper actually sent (known from decoding the
/// frame itself) and report whether the tag's phase flip separates
/// them.
pub fn observed_flip(tx_codeword: u8, rx_codeword: u8) -> bool {
    (tx_codeword ^ rx_codeword) & PHASE_FLIP_MASK != 0
}

/// Margin (dB) of the tag's reflected sideband over the receiver's
/// residue-decision floor, from the deployment geometry.
///
/// The flip decision rides on energy that travelled
/// helper → tag → reader, so the margin falls with the tag→reader
/// path (log-distance, the calibrated indoor exponent 2.6) and, more
/// gently, with the helper→tag path (normalised to the §7.1 layout's
/// 3 m — the incident field sets how much the reflection perturbs the
/// composite symbol). Calibrated so the margin is comfortable
/// (> 20 dB) inside ~1.5 m, thinning through 4 m and gone near 8 m —
/// the codeword mode reaches metres where the plain presence uplink
/// dies at tens of centimetres, mirroring FreeRider's reported range.
pub fn residue_excess_db(d_helper_tag_m: f64, d_tag_reader_m: f64) -> f64 {
    let d_tr = d_tag_reader_m.max(0.05);
    let d_ht = d_helper_tag_m.max(0.05);
    26.0 - 26.0 * d_tr.log10() - 13.0 * (d_ht / 3.0).log10()
}

/// Probability the receiver decides a single symbol's flip wrongly,
/// given the residue margin: a logistic waterfall, ~0 above ~15 dB,
/// 0.25 at 0 dB, saturating at coin-flip (0.5) deep below the floor.
pub fn flip_error_prob(excess_db: f64) -> f64 {
    0.5 / (1.0 + (0.45 * excess_db).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_counts_follow_airtime() {
        // 1000-byte data frame at 54 Mbps: 169 µs → 42 symbols.
        assert_eq!(data_frame_symbols(1000, 54.0), 42);
        assert_eq!(symbols_in(0), 0);
        assert_eq!(symbols_in(SYMBOL_US * 7 + 3), 7);
    }

    #[test]
    fn translation_is_an_involution_and_stays_in_the_codebook() {
        for cw in 0u8..16 {
            assert_eq!(translate(translate(cw, true), true), cw);
            assert_eq!(translate(cw, false), cw);
            assert!(translate(cw, true) < 16);
            assert_ne!(translate(cw, true), cw, "flip must move the codeword");
        }
    }

    #[test]
    fn observed_flip_recovers_the_tag_bit() {
        for cw in 0u8..16 {
            for flip in [false, true] {
                assert_eq!(observed_flip(cw, translate(cw, flip)), flip);
            }
        }
    }

    #[test]
    fn residue_margin_falls_with_distance() {
        let near = residue_excess_db(3.0, 0.5);
        let mid = residue_excess_db(3.0, 2.0);
        let far = residue_excess_db(3.0, 8.0);
        assert!(near > mid && mid > far, "{near} {mid} {far}");
        assert!(near > 20.0, "near margin {near}");
        assert!(far < 5.0, "far margin {far}");
        // A closer helper illuminates the tag harder.
        assert!(residue_excess_db(1.0, 2.0) > residue_excess_db(6.0, 2.0));
    }

    #[test]
    fn flip_error_waterfall() {
        assert!(flip_error_prob(25.0) < 1e-4);
        assert!((flip_error_prob(0.0) - 0.25).abs() < 1e-12);
        assert!(flip_error_prob(-20.0) > 0.49);
        // Monotone decreasing in the margin.
        let mut last = 0.51;
        for db in -10..=30 {
            let p = flip_error_prob(f64::from(db));
            assert!(p < last, "not monotone at {db} dB");
            last = p;
        }
    }

    #[test]
    fn benign_geometry_supports_clean_chips() {
        // The conformance suite round-trips payloads at the §7.1 layout
        // with the reader ≤ 1 m out; the per-symbol error rate there must
        // be negligible even before majority voting.
        let p = flip_error_prob(residue_excess_db(3.0, 1.0));
        assert!(p < 1e-4, "per-symbol error {p} too high for clean chips");
    }
}
