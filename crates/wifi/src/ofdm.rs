//! 802.11 OFDM subcarrier layout (20 MHz) and the Intel CSI grouping.
//!
//! A 20 MHz 802.11n channel has a 64-point FFT with subcarriers spaced
//! 312.5 kHz apart; 52 subcarriers carry data/pilots at indices ±1..±26
//! (HT mode uses ±1..±28, but the Intel CSI tool's reporting grid is what
//! matters here). The Intel 5300 CSI tool reports channel state for **30
//! grouped sub-channels** — every second subcarrier of the occupied set —
//! which is the grid all of the paper's uplink processing runs on.

/// Subcarrier spacing of 20 MHz 802.11 OFDM (Hz).
pub const SUBCARRIER_SPACING_HZ: f64 = 312_500.0;

/// Number of occupied (data + pilot) subcarriers in a 20 MHz channel.
pub const OCCUPIED_SUBCARRIERS: usize = 52;

/// Number of grouped sub-channels reported by the Intel 5300 CSI tool.
pub const CSI_SUBCHANNELS: usize = 30;

/// Number of receive antennas on the Intel 5300.
pub const INTEL5300_ANTENNAS: usize = 3;

/// The FFT-bin indices (relative to DC) of the 30 sub-channels the Intel
/// CSI tool reports for a 20 MHz channel: every other subcarrier from −28
/// to +28, skipping DC.
///
/// This matches the tool's grouping (`Ng = 2`): bins
/// −28, −26, …, −2, −1(skip DC)… in practice the tool reports
/// [−28, −26, ..., −2, −1? ] — we use the symmetric grid
/// −28, −26, …, −2, +2, …, +28 minus one bin to land on exactly 30 entries,
/// keeping the grid symmetric and DC-free.
pub fn csi_subchannel_bins() -> Vec<i32> {
    // 15 bins on each side: -29 + 2k for k in 1..=14 gives -27..-1; use
    // odd bins ±1, ±3, ..., ±29 → 30 bins, symmetric, DC-free, spanning
    // the occupied band.
    let mut bins: Vec<i32> = (0..15).map(|k| -(29 - 2 * k)).collect();
    bins.extend((0..15).map(|k| 1 + 2 * k));
    bins
}

/// Frequency offsets (Hz from the carrier) of the 30 CSI sub-channels.
pub fn csi_subchannel_offsets() -> Vec<f64> {
    csi_subchannel_bins()
        .iter()
        .map(|&b| f64::from(b) * SUBCARRIER_SPACING_HZ)
        .collect()
}

/// Frequency offsets of all 52 occupied subcarriers (±1..±26).
pub fn occupied_offsets() -> Vec<f64> {
    let mut bins: Vec<i32> = (1..=26).map(|k| -k).collect();
    bins.extend(1..=26);
    bins.sort_unstable();
    bins.iter()
        .map(|&b| f64::from(b) * SUBCARRIER_SPACING_HZ)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_subchannels() {
        let bins = csi_subchannel_bins();
        assert_eq!(bins.len(), CSI_SUBCHANNELS);
    }

    #[test]
    fn bins_are_symmetric_and_dc_free() {
        let bins = csi_subchannel_bins();
        assert!(!bins.contains(&0));
        for &b in &bins {
            assert!(bins.contains(&-b), "missing mirror of {b}");
        }
    }

    #[test]
    fn bins_span_the_band() {
        let bins = csi_subchannel_bins();
        assert_eq!(*bins.iter().min().unwrap(), -29);
        assert_eq!(*bins.iter().max().unwrap(), 29);
    }

    #[test]
    fn offsets_within_10mhz() {
        for &f in &csi_subchannel_offsets() {
            assert!(f.abs() < 10e6, "offset {f}");
        }
    }

    #[test]
    fn offsets_sorted_and_distinct() {
        let offs = csi_subchannel_offsets();
        assert!(offs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn occupied_is_52() {
        let offs = occupied_offsets();
        assert_eq!(offs.len(), OCCUPIED_SUBCARRIERS);
        assert!(offs.windows(2).all(|w| w[0] < w[1]));
    }
}
