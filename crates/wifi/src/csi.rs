//! The Intel 5300 CSI measurement model.
//!
//! The paper's reader uses the Intel CSI tool \[13\] to obtain per-packet
//! channel state for 30 grouped sub-channels on each of 3 antennas. Real
//! reported CSI differs from the true channel in ways the decoder was
//! explicitly designed around, all modelled here:
//!
//! * **estimation noise** — CSI is estimated from the packet preamble, so
//!   each measurement carries complex noise scaled by 1/SNR;
//! * **quantisation** — the tool reports 8-bit components; we quantise the
//!   amplitude grid;
//! * **spurious jumps** — "the Intel cards used in our experiments report
//!   spurious changes in the CSI once every so often … even in a static
//!   network" (§3.2); modelled as rare per-packet multiplicative glitches,
//!   which is what the hysteresis slicer exists to reject;
//! * **a weak antenna** — "one of the antennas on our Intel device almost
//!   always reported significantly low CSI values" (§7.1).

use bs_channel::scene::ChannelSnapshot;
use bs_dsp::obs::{NullRecorder, Recorder};
use bs_dsp::SimRng;

/// Scaling from channel amplitude to "Intel CSI units". Calibrated so the
/// reported values land in the paper's observed span (§7.3: "the average
/// CSI values span 3–50 across these locations").
pub const CSI_AMPLITUDE_SCALE: f64 = 4000.0;

/// Amplitude quantisation step in CSI units (8-bit component resolution at
/// typical amplitudes).
pub const CSI_QUANT_STEP: f64 = 0.05;

/// Channel-estimation processing gain (linear): two LTF symbols plus
/// frequency smoothing.
pub const CSI_ESTIMATION_GAIN: f64 = 4.0;

/// Common-mode per-packet gain jitter (fraction of amplitude): AGC and
/// transmit-power-control wobble shared by all sub-channels of one antenna.
/// Correlated noise like this is why the paper's conditioning operates per
/// sub-channel time series rather than across the band.
pub const CSI_GAIN_JITTER: f64 = 0.06;

/// Independent per-sub-channel per-packet jitter (fraction of amplitude):
/// phase noise, interpolation and reporting error.
pub const CSI_SUBCHANNEL_JITTER: f64 = 0.10;

/// Configuration of the CSI extractor.
#[derive(Debug, Clone, Copy)]
pub struct CsiConfig {
    /// Probability per packet of a spurious glitch on one antenna.
    pub spurious_jump_prob: f64,
    /// Multiplicative magnitude of a glitch.
    pub spurious_jump_scale: f64,
    /// Amplitude scale applied to the weak antenna.
    pub weak_antenna_scale: f64,
    /// Index of the weak antenna, if any.
    pub weak_antenna: Option<usize>,
    /// Common-mode multiplicative jitter per antenna per packet (fraction).
    pub gain_jitter: f64,
    /// Independent multiplicative jitter per sub-channel (fraction).
    pub subchannel_jitter: f64,
    /// Amplitude quantisation step in CSI units (0 disables quantisation).
    pub quant_step: f64,
}

impl Default for CsiConfig {
    fn default() -> Self {
        CsiConfig {
            spurious_jump_prob: bs_channel::calib::CSI_SPURIOUS_JUMP_PROB,
            spurious_jump_scale: bs_channel::calib::CSI_SPURIOUS_JUMP_SCALE,
            weak_antenna_scale: bs_channel::calib::WEAK_ANTENNA_SCALE,
            weak_antenna: Some(bs_channel::calib::WEAK_ANTENNA_INDEX),
            gain_jitter: CSI_GAIN_JITTER,
            subchannel_jitter: CSI_SUBCHANNEL_JITTER,
            quant_step: CSI_QUANT_STEP,
        }
    }
}

impl CsiConfig {
    /// An idealised extractor with none of the Intel artifacts — only the
    /// unavoidable thermal estimation noise remains (useful for ablation
    /// benches).
    pub fn ideal() -> Self {
        CsiConfig {
            spurious_jump_prob: 0.0,
            spurious_jump_scale: 0.0,
            weak_antenna_scale: 1.0,
            weak_antenna: None,
            gain_jitter: 0.0,
            subchannel_jitter: 0.0,
            quant_step: 0.0,
        }
    }
}

/// One per-packet CSI report.
#[derive(Debug, Clone, PartialEq)]
pub struct CsiMeasurement {
    /// MAC timestamp of the packet this CSI came from (µs).
    pub timestamp_us: u64,
    /// `amplitude[antenna][subchannel]` in CSI units.
    pub amplitude: Vec<Vec<f64>>,
}

impl CsiMeasurement {
    /// Number of antennas.
    pub fn antennas(&self) -> usize {
        self.amplitude.len()
    }

    /// Number of sub-channels per antenna.
    pub fn subchannels(&self) -> usize {
        self.amplitude.first().map_or(0, Vec::len)
    }

    /// Flattens antennas × sub-channels into one list of "virtual
    /// sub-channels", the way the paper's decoder treats multiple antennas
    /// as additional sub-channels (§3.2 step 1).
    pub fn flat(&self) -> Vec<f64> {
        self.amplitude.iter().flatten().copied().collect()
    }
}

/// Produces [`CsiMeasurement`]s from true channel snapshots.
#[derive(Debug, Clone)]
pub struct CsiExtractor {
    cfg: CsiConfig,
    rng: SimRng,
}

impl CsiExtractor {
    /// Creates an extractor with the given artifact configuration.
    pub fn new(cfg: CsiConfig, rng: SimRng) -> Self {
        CsiExtractor { cfg, rng }
    }

    /// Creates an extractor with the default Intel 5300 artifact model.
    pub fn intel5300(rng: SimRng) -> Self {
        CsiExtractor::new(CsiConfig::default(), rng)
    }

    /// Measures the CSI a card would report for one received packet.
    pub fn measure(&mut self, snap: &ChannelSnapshot, timestamp_us: u64) -> CsiMeasurement {
        self.measure_with(snap, timestamp_us, &mut NullRecorder)
    }

    /// [`Self::measure`] plus observability: counts each measurement
    /// (`wifi.csi-measurements`) and each spurious Intel glitch
    /// (`wifi.csi-spurious-jumps`) into `rec`. The measurement itself —
    /// including every RNG draw — is identical to [`Self::measure`].
    pub fn measure_with(
        &mut self,
        snap: &ChannelSnapshot,
        timestamp_us: u64,
        rec: &mut dyn Recorder,
    ) -> CsiMeasurement {
        // Per-component noise std of the channel estimate:
        // Ĥ = H + n/√P, n per-component variance N/(2·G_est).
        let noise_std = (snap.noise_mw_per_subcarrier
            / (2.0 * CSI_ESTIMATION_GAIN * snap.tx_mw_per_subcarrier))
            .sqrt();

        // At most one antenna glitches per packet.
        let glitch_antenna = if self.rng.chance(self.cfg.spurious_jump_prob) {
            Some(self.rng.index(snap.h.len()))
        } else {
            None
        };
        rec.add("wifi.csi-measurements", 1);
        if glitch_antenna.is_some() {
            rec.add("wifi.csi-spurious-jumps", 1);
        }

        let amplitude = snap
            .h
            .iter()
            .enumerate()
            .map(|(ant, row)| {
                let ant_scale = match self.cfg.weak_antenna {
                    Some(w) if w == ant => self.cfg.weak_antenna_scale,
                    _ => 1.0,
                };
                let glitch = match glitch_antenna {
                    Some(g) if g == ant => {
                        if self.rng.chance(0.5) {
                            1.0 + self.cfg.spurious_jump_scale
                        } else {
                            1.0 - self.cfg.spurious_jump_scale
                        }
                    }
                    _ => 1.0,
                };
                // AGC / TPC wobble: common to every sub-channel of this
                // antenna for this packet.
                let common = 1.0 + self.rng.gaussian(0.0, self.cfg.gain_jitter);
                row.iter()
                    .map(|&h| {
                        let est = h + self.rng.complex_gaussian(noise_std);
                        let indep = 1.0 + self.rng.gaussian(0.0, self.cfg.subchannel_jitter);
                        let amp = est.abs()
                            * CSI_AMPLITUDE_SCALE
                            * ant_scale
                            * glitch
                            * common
                            * indep;
                        if self.cfg.quant_step > 0.0 {
                            (amp / self.cfg.quant_step).round() * self.cfg.quant_step
                        } else {
                            amp
                        }
                    })
                    .collect()
            })
            .collect();

        CsiMeasurement {
            timestamp_us,
            amplitude,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_channel::fading::FadingConfig;
    use bs_channel::scene::{Scene, SceneConfig};
    use bs_channel::TagState;

    fn scene(d: f64, seed: u64) -> Scene {
        let mut cfg = SceneConfig::uplink(d);
        cfg.fading = FadingConfig::static_channel();
        Scene::new(cfg, &SimRng::new(seed))
    }

    fn offsets() -> Vec<f64> {
        crate::ofdm::csi_subchannel_offsets()
    }

    #[test]
    fn measurement_shape() {
        let mut s = scene(0.3, 1);
        let snap = s.snapshot(0.0, TagState::Absorb, &offsets());
        let mut ex = CsiExtractor::intel5300(SimRng::new(2));
        let m = ex.measure(&snap, 42);
        assert_eq!(m.antennas(), 3);
        assert_eq!(m.subchannels(), 30);
        assert_eq!(m.timestamp_us, 42);
        assert_eq!(m.flat().len(), 90);
    }

    #[test]
    fn amplitudes_in_paper_range() {
        // §7.3: "the average CSI values span 3–50 across these locations."
        let mut s = scene(0.3, 3);
        let snap = s.snapshot(0.0, TagState::Absorb, &offsets());
        let mut ex = CsiExtractor::intel5300(SimRng::new(4));
        let m = ex.measure(&snap, 0);
        let mean: f64 = m.amplitude[0].iter().sum::<f64>() / 30.0;
        assert!((1.0..=60.0).contains(&mean), "mean CSI {mean}");
    }

    #[test]
    fn weak_antenna_reports_low() {
        let mut s = scene(0.3, 5);
        let snap = s.snapshot(0.0, TagState::Absorb, &offsets());
        let mut ex = CsiExtractor::intel5300(SimRng::new(6));
        let m = ex.measure(&snap, 0);
        let mean = |a: usize| m.amplitude[a].iter().sum::<f64>() / 30.0;
        assert!(
            mean(2) < 0.5 * mean(0).min(mean(1)),
            "weak antenna not weak: {} vs {} {}",
            mean(2),
            mean(0),
            mean(1)
        );
    }

    #[test]
    fn quantisation_grid_respected() {
        let mut s = scene(0.3, 7);
        let snap = s.snapshot(0.0, TagState::Absorb, &offsets());
        let mut ex = CsiExtractor::intel5300(SimRng::new(8));
        let m = ex.measure(&snap, 0);
        for &a in &m.flat() {
            let steps = a / CSI_QUANT_STEP;
            assert!((steps - steps.round()).abs() < 1e-9, "amp {a} off-grid");
        }
    }

    #[test]
    fn ideal_config_has_no_glitches() {
        let mut s = scene(0.3, 9);
        let snap = s.snapshot(0.0, TagState::Absorb, &offsets());
        // With estimation noise present measurements still vary, but no
        // antenna is scaled down and no glitch occurs; verify weak antenna
        // parity.
        let mut ex = CsiExtractor::new(CsiConfig::ideal(), SimRng::new(10));
        let m = ex.measure(&snap, 0);
        let mean = |a: usize| m.amplitude[a].iter().sum::<f64>() / 30.0;
        assert!(mean(2) > 0.3 * mean(0), "{} vs {}", mean(2), mean(0));
    }

    #[test]
    fn spurious_jumps_occur_at_configured_rate() {
        let mut s = scene(0.3, 11);
        let snap = s.snapshot(0.0, TagState::Absorb, &offsets());
        let cfg = CsiConfig {
            spurious_jump_prob: 0.2,
            spurious_jump_scale: 0.5,
            ..CsiConfig::ideal()
        };
        let mut ex = CsiExtractor::new(cfg, SimRng::new(12));
        // Per-antenna baseline means from an ideal extractor on the same
        // snapshot (antennas fade independently, so baselines differ).
        let mut ideal = CsiExtractor::new(CsiConfig::ideal(), SimRng::new(13));
        let base = ideal.measure(&snap, 0);
        let base_mean: Vec<f64> = (0..3)
            .map(|a| base.amplitude[a].iter().sum::<f64>() / 30.0)
            .collect();
        let mut glitched = 0;
        let n = 2000;
        for i in 0..n {
            let m = ex.measure(&snap, i);
            for (amps, base) in m.amplitude.iter().zip(&base_mean) {
                let mean: f64 = amps.iter().sum::<f64>() / 30.0;
                if (mean - base).abs() > 0.25 * base {
                    glitched += 1;
                    break;
                }
            }
        }
        let rate = glitched as f64 / n as f64;
        assert!((0.12..=0.28).contains(&rate), "glitch rate {rate}");
    }

    #[test]
    fn noisier_at_longer_helper_distance() {
        // Helper farther away → lower SNR → noisier CSI (relative). Uses
        // the ideal config so only thermal estimation noise remains.
        let offsets = offsets();
        let spread = |helper_x: f64| -> f64 {
            let mut cfg = SceneConfig::uplink(0.3);
            cfg.helper = bs_channel::Point::new(helper_x, 0.0);
            cfg.fading = FadingConfig::static_channel();
            let mut s = Scene::new(cfg, &SimRng::new(20));
            let snap = s.snapshot(0.0, TagState::Absorb, &offsets);
            let mut ex = CsiExtractor::new(CsiConfig::ideal(), SimRng::new(21));
            // Relative std of repeated measurements of subchannel 0, ant 0.
            let vals: Vec<f64> = (0..200)
                .map(|i| ex.measure(&snap, i).amplitude[0][0])
                .collect();
            bs_dsp::stats::variance(&vals).sqrt() / bs_dsp::stats::mean(&vals)
        };
        let near = spread(3.0);
        let far = spread(20.0);
        assert!(far > near, "far {far} near {near}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut s = scene(0.3, 30);
        let snap = s.snapshot(0.0, TagState::Reflect, &offsets());
        let mut a = CsiExtractor::intel5300(SimRng::new(31));
        let mut b = CsiExtractor::intel5300(SimRng::new(31));
        assert_eq!(a.measure(&snap, 5), b.measure(&snap, 5));
    }
}
