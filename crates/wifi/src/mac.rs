//! A discrete-event CSMA/CA (DCF) simulation of one collision domain.
//!
//! The uplink evaluation depends on *when the helper's packets actually go
//! on the air* under contention — bursty Wi-Fi traffic is why the paper
//! bins channel measurements by packet timestamp (§3.2, §5) and why the
//! achievable bit rate tracks network load (Figs 12, 15). This module
//! simulates the 802.11 distributed coordination function at the level that
//! matters for those figures: DIFS sensing, slotted random backoff with
//! binary exponential doubling on collision, NAV reservations from
//! CTS_to_SELF, and per-frame air times.
//!
//! Collided frames remain in the timeline (their energy is still on the
//! air, which the tag's envelope detector sees) but are flagged so
//! receiver-side processing can discard them.

use crate::frame::{FrameKind, StationId, WifiFrame};
use bs_dsp::SimRng;

/// MAC timing parameters (802.11g OFDM defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacConfig {
    /// Slot time, µs.
    pub slot_us: u64,
    /// DIFS, µs.
    pub difs_us: u64,
    /// Minimum contention window (slots).
    pub cw_min: u32,
    /// Maximum contention window (slots).
    pub cw_max: u32,
    /// Retry limit before a frame is dropped.
    pub retry_limit: u32,
}

impl Default for MacConfig {
    fn default() -> Self {
        MacConfig {
            slot_us: 9,
            difs_us: 28,
            cw_min: 15,
            cw_max: 1023,
            retry_limit: 7,
        }
    }
}

/// A station contending on the medium.
#[derive(Debug, Clone)]
pub struct Station {
    /// Times (µs) at which frames become ready to send, ascending.
    pub arrivals: Vec<u64>,
    /// Payload size of each frame (bytes).
    pub payload_bytes: usize,
    /// PHY rate (Mbps).
    pub rate_mbps: f64,
    /// Kind of frames this station sends.
    pub kind: FrameKind,
}

impl Station {
    /// A station sending fixed-size data frames at the given PHY rate.
    pub fn data(arrivals: Vec<u64>, payload_bytes: usize, rate_mbps: f64) -> Self {
        Station {
            arrivals,
            payload_bytes,
            rate_mbps,
            kind: FrameKind::Data,
        }
    }

    /// A beaconing AP: 50-byte beacons at 6 Mbps (beacons go out at a base
    /// rate on real networks).
    pub fn beaconing(arrivals: Vec<u64>) -> Self {
        Station {
            arrivals,
            payload_bytes: 50,
            rate_mbps: 6.0,
            kind: FrameKind::Beacon,
        }
    }
}

/// One frame as it appeared on the air.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transmission {
    /// The frame.
    pub frame: WifiFrame,
    /// True if this frame overlapped another (both are corrupted for
    /// receivers, but their energy is still present on the medium).
    pub collided: bool,
}

/// The shared medium; runs the DCF simulation.
#[derive(Debug, Clone)]
pub struct Medium {
    cfg: MacConfig,
    rng: SimRng,
}

/// Simulation outcome statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MacStats {
    /// Frames delivered without collision.
    pub delivered: u64,
    /// Frame transmissions that collided.
    pub collisions: u64,
    /// Frames dropped after exceeding the retry limit.
    pub dropped: u64,
}

impl Medium {
    /// Creates a medium with the given MAC parameters and randomness.
    pub fn new(cfg: MacConfig, rng: SimRng) -> Self {
        Medium { cfg, rng }
    }

    /// Creates a medium with default 802.11g parameters.
    pub fn with_seed(seed: u64) -> Self {
        Medium::new(MacConfig::default(), SimRng::new(seed).stream("mac"))
    }

    /// Runs DCF until `until_us`, returning the transmission timeline in
    /// time order plus aggregate statistics.
    pub fn simulate(&mut self, stations: &[Station], until_us: u64) -> (Vec<Transmission>, MacStats) {
        let n = stations.len();
        let mut next_idx = vec![0usize; n];
        let mut retries = vec![0u32; n];
        let mut out = Vec::new();
        let mut stats = MacStats::default();
        // When the medium (including any NAV) becomes idle.
        let mut free_at: u64 = 0;

        loop {
            // Earliest pending arrival per station.
            let pending: Vec<Option<u64>> = (0..n)
                .map(|i| stations[i].arrivals.get(next_idx[i]).copied())
                .collect();
            let min_ready = match pending.iter().flatten().min() {
                Some(&m) => m,
                None => break,
            };
            if min_ready >= until_us {
                break;
            }
            // Contention begins after the medium has been idle for DIFS
            // following both the last transmission and the first arrival.
            let contention_start = free_at.max(min_ready) + self.cfg.difs_us;
            // Stations whose frame arrived by the end of DIFS contend.
            let contenders: Vec<usize> = (0..n)
                .filter(|&i| matches!(pending[i], Some(t) if t <= contention_start))
                .collect();
            debug_assert!(!contenders.is_empty());

            // Each contender draws a backoff slot count.
            let draws: Vec<(usize, u64)> = contenders
                .iter()
                .map(|&i| {
                    let cw = (self.cfg.cw_min << retries[i].min(10)).min(self.cfg.cw_max);
                    (i, u64::from(self.rng.index(cw as usize + 1) as u32))
                })
                .collect();
            let min_slot = draws.iter().map(|&(_, s)| s).min().unwrap();
            let winners: Vec<usize> = draws
                .iter()
                .filter(|&&(_, s)| s == min_slot)
                .map(|&(i, _)| i)
                .collect();

            let tx_start = contention_start + min_slot * self.cfg.slot_us;
            if tx_start >= until_us {
                break;
            }

            let collided = winners.len() > 1;
            let mut busy_end = tx_start;
            for &w in &winners {
                let st = &stations[w];
                let duration = crate::frame::airtime_us(st.payload_bytes, st.rate_mbps);
                let frame = WifiFrame {
                    kind: st.kind,
                    src: w as StationId,
                    timestamp_us: tx_start,
                    duration_us: duration,
                };
                busy_end = busy_end.max(frame.end_us() + frame.nav_us());
                out.push(Transmission { frame, collided });
                if collided {
                    stats.collisions += 1;
                    retries[w] += 1;
                    if retries[w] > self.cfg.retry_limit {
                        stats.dropped += 1;
                        retries[w] = 0;
                        next_idx[w] += 1; // give up on this frame
                    }
                } else {
                    stats.delivered += 1;
                    retries[w] = 0;
                    next_idx[w] += 1;
                }
            }
            free_at = busy_end;
        }
        (out, stats)
    }

    /// The MAC configuration in use.
    pub fn config(&self) -> MacConfig {
        self.cfg
    }
}

/// Counts delivered (non-collided) frames from a given station.
pub fn delivered_from(timeline: &[Transmission], src: StationId) -> Vec<WifiFrame> {
    timeline
        .iter()
        .filter(|t| !t.collided && t.frame.src == src)
        .map(|t| t.frame)
        .collect()
}

/// Counts all delivered frames regardless of sender.
pub fn all_delivered(timeline: &[Transmission]) -> Vec<WifiFrame> {
    timeline
        .iter()
        .filter(|t| !t.collided)
        .map(|t| t.frame)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic;

    fn medium(seed: u64) -> Medium {
        Medium::with_seed(seed)
    }

    #[test]
    fn single_station_delivers_everything() {
        let arrivals: Vec<u64> = (0..100).map(|i| i * 2_000).collect();
        let st = Station::data(arrivals, 1500, 54.0);
        let (timeline, stats) = medium(1).simulate(&[st], 250_000);
        assert_eq!(stats.collisions, 0);
        assert_eq!(stats.delivered, 100);
        assert_eq!(timeline.len(), 100);
        // Frames must not overlap.
        for w in timeline.windows(2) {
            assert!(w[1].frame.timestamp_us >= w[0].frame.end_us());
        }
    }

    #[test]
    fn timeline_is_time_ordered() {
        let a = Station::data((0..200).map(|i| i * 500).collect(), 500, 54.0);
        let b = Station::data((0..200).map(|i| 100 + i * 500).collect(), 500, 54.0);
        let (timeline, _) = medium(2).simulate(&[a, b], 150_000);
        for w in timeline.windows(2) {
            assert!(w[0].frame.timestamp_us <= w[1].frame.timestamp_us);
        }
    }

    #[test]
    fn two_saturated_stations_share_the_medium() {
        let mk = |offset: u64| Station::data((0..1000).map(|i| offset + i * 200).collect(), 1500, 54.0);
        let (timeline, stats) = medium(3).simulate(&[mk(0), mk(50)], 300_000);
        let from0 = delivered_from(&timeline, 0).len();
        let from1 = delivered_from(&timeline, 1).len();
        assert!(from0 > 0 && from1 > 0);
        // Rough fairness: within a factor of 2.
        let ratio = from0 as f64 / from1 as f64;
        assert!((0.5..=2.0).contains(&ratio), "ratio {ratio}");
        assert!(stats.collisions > 0, "saturated stations should collide sometimes");
    }

    #[test]
    fn collisions_marked_and_kept_in_timeline() {
        let mk = || Station::data((0..500).map(|i| i * 300).collect(), 1500, 54.0);
        let (timeline, stats) = medium(4).simulate(&[mk(), mk(), mk()], 400_000);
        let collided = timeline.iter().filter(|t| t.collided).count() as u64;
        assert_eq!(collided, stats.collisions);
        assert!(collided > 0);
        // all_delivered excludes them.
        assert_eq!(
            all_delivered(&timeline).len() as u64,
            stats.delivered
        );
    }

    #[test]
    fn cts_to_self_nav_blocks_other_stations() {
        // Station 0 sends one CTS_to_SELF with a 10 ms NAV at t=0; station 1
        // has packets queued throughout. No station-1 frame may start inside
        // the NAV window.
        let cts = Station {
            arrivals: vec![0],
            payload_bytes: 14,
            rate_mbps: 24.0,
            kind: FrameKind::CtsToSelf { nav_us: 10_000 },
        };
        let data = Station::data((0..50).map(|i| i * 100).collect(), 500, 54.0);
        let (timeline, _) = medium(5).simulate(&[cts, data], 30_000);
        let cts_frame = timeline
            .iter()
            .find(|t| matches!(t.frame.kind, FrameKind::CtsToSelf { .. }))
            .expect("cts frame");
        let nav_end = cts_frame.frame.end_us() + 10_000;
        for t in &timeline {
            if t.frame.src == 1 {
                assert!(
                    t.frame.timestamp_us >= nav_end || t.frame.end_us() <= cts_frame.frame.timestamp_us,
                    "data frame at {} violates NAV ending {nav_end}",
                    t.frame.timestamp_us
                );
            }
        }
    }

    #[test]
    fn offered_load_controls_throughput() {
        // Higher offered load → more delivered packets per second, up to
        // saturation (the mechanism behind Fig. 12's x-axis).
        let rng = SimRng::new(6);
        let duration = 1_000_000; // 1 s
        let rate_of = |pps: f64| -> usize {
            let arr = traffic::poisson(pps, duration, &mut rng.stream("load").substream(pps as u64));
            let st = Station::data(arr, 1500, 54.0);
            let (timeline, _) = medium(7).simulate(&[st], duration);
            timeline.len()
        };
        let slow = rate_of(200.0);
        let fast = rate_of(2000.0);
        assert!((150..=250).contains(&slow), "slow {slow}");
        assert!((1700..=2300).contains(&fast), "fast {fast}");
    }

    #[test]
    fn beacons_go_out_on_schedule() {
        let arrivals = traffic::beacons(102_400, 1_024_000);
        let ap = Station::beaconing(arrivals);
        let (timeline, stats) = medium(8).simulate(&[ap], 1_024_000);
        assert_eq!(stats.delivered, 10);
        for (i, t) in timeline.iter().enumerate() {
            assert_eq!(t.frame.kind, FrameKind::Beacon);
            // Close to the nominal schedule (within DIFS + backoff slack).
            let nominal = i as u64 * 102_400;
            assert!(t.frame.timestamp_us >= nominal);
            assert!(t.frame.timestamp_us < nominal + 1_000);
        }
    }

    #[test]
    fn empty_station_list_is_empty_timeline() {
        let (timeline, stats) = medium(9).simulate(&[], 1_000_000);
        assert!(timeline.is_empty());
        assert_eq!(stats, MacStats::default());
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            vec![
                Station::data((0..100).map(|i| i * 700).collect(), 1000, 54.0),
                Station::data((0..100).map(|i| 350 + i * 700).collect(), 1000, 54.0),
            ]
        };
        let (t1, s1) = medium(10).simulate(&mk(), 100_000);
        let (t2, s2) = medium(10).simulate(&mk(), 100_000);
        assert_eq!(t1, t2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn retry_limit_eventually_drops() {
        // Two stations with identical deterministic arrival storms and a
        // tiny CW force repeated collisions; with retry_limit 0 every
        // collision drops the frame.
        let cfg = MacConfig {
            cw_min: 0,
            cw_max: 0,
            retry_limit: 0,
            ..Default::default()
        };
        let mut m = Medium::new(cfg, SimRng::new(11));
        let mk = || Station::data(vec![0, 10, 20], 100, 54.0);
        let (_, stats) = m.simulate(&[mk(), mk()], 100_000);
        assert!(stats.dropped > 0);
    }
}
