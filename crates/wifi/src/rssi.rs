//! Per-packet RSSI measurement (§3.3).
//!
//! Most commodity chipsets expose only RSSI: one coarse number per packet
//! (or per antenna on MIMO receivers) summarising total received power
//! across the whole 20 MHz band. Compared with CSI, two things are lost:
//! frequency resolution (backscatter perturbations on different subcarriers
//! can partially cancel) and amplitude resolution (1 dB quantisation). That
//! is exactly why the paper measures a shorter RSSI uplink range (~30 cm vs
//! ~65 cm, Fig. 10).

use bs_channel::scene::ChannelSnapshot;
use bs_dsp::obs::{NullRecorder, Recorder};
use bs_dsp::SimRng;

/// RSSI quantisation step (dB) — commodity cards report integer dBm.
pub const RSSI_QUANT_DB: f64 = 1.0;

/// Per-packet RSSI measurement noise (dB, std) before quantisation: AGC
/// and estimation jitter.
pub const RSSI_JITTER_DB: f64 = 0.35;

/// One per-packet RSSI report.
#[derive(Debug, Clone, PartialEq)]
pub struct RssiMeasurement {
    /// MAC timestamp of the packet (µs).
    pub timestamp_us: u64,
    /// RSSI per antenna (dBm, quantised).
    pub rssi_dbm: Vec<f64>,
}

impl RssiMeasurement {
    /// Number of antenna chains reported.
    pub fn antennas(&self) -> usize {
        self.rssi_dbm.len()
    }
}

/// Produces [`RssiMeasurement`]s from true channel snapshots.
#[derive(Debug, Clone)]
pub struct RssiExtractor {
    rng: SimRng,
    quant_db: f64,
    jitter_db: f64,
}

impl RssiExtractor {
    /// Creates an extractor with standard quantisation and jitter.
    pub fn new(rng: SimRng) -> Self {
        RssiExtractor {
            rng,
            quant_db: RSSI_QUANT_DB,
            jitter_db: RSSI_JITTER_DB,
        }
    }

    /// Creates an extractor with custom quantisation/jitter (for ablation).
    pub fn with_params(rng: SimRng, quant_db: f64, jitter_db: f64) -> Self {
        RssiExtractor {
            rng,
            quant_db,
            jitter_db,
        }
    }

    /// Measures per-antenna RSSI for one received packet.
    pub fn measure(&mut self, snap: &ChannelSnapshot, timestamp_us: u64) -> RssiMeasurement {
        self.measure_with(snap, timestamp_us, &mut NullRecorder)
    }

    /// [`Self::measure`] plus observability: counts each measurement into
    /// `rec` (`wifi.rssi-measurements`). The measurement itself is
    /// identical to [`Self::measure`].
    pub fn measure_with(
        &mut self,
        snap: &ChannelSnapshot,
        timestamp_us: u64,
        rec: &mut dyn Recorder,
    ) -> RssiMeasurement {
        rec.add("wifi.rssi-measurements", 1);
        let n_sc = snap.h.first().map_or(0, Vec::len) as f64;
        let rssi_dbm = (0..snap.h.len())
            .map(|ant| {
                // Total signal power across the band plus in-band noise.
                let sig_mw = snap.rx_power_mw(ant);
                let noise_mw = snap.noise_mw_per_subcarrier * n_sc;
                let raw_dbm = bs_channel::pathloss::mw_to_dbm(sig_mw + noise_mw);
                let jittered = raw_dbm + self.rng.gaussian(0.0, self.jitter_db);
                if self.quant_db > 0.0 {
                    (jittered / self.quant_db).round() * self.quant_db
                } else {
                    jittered
                }
            })
            .collect();
        RssiMeasurement {
            timestamp_us,
            rssi_dbm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bs_channel::fading::FadingConfig;
    use bs_channel::scene::{Scene, SceneConfig};
    use bs_channel::TagState;

    fn scene(d: f64, seed: u64) -> Scene {
        let mut cfg = SceneConfig::uplink(d);
        cfg.fading = FadingConfig::static_channel();
        Scene::new(cfg, &SimRng::new(seed))
    }

    fn offsets() -> Vec<f64> {
        crate::ofdm::csi_subchannel_offsets()
    }

    #[test]
    fn rssi_is_quantised_to_1db() {
        let mut s = scene(0.3, 1);
        let snap = s.snapshot(0.0, TagState::Absorb, &offsets());
        let mut ex = RssiExtractor::new(SimRng::new(2));
        let m = ex.measure(&snap, 7);
        assert_eq!(m.antennas(), 3);
        assert_eq!(m.timestamp_us, 7);
        for &r in &m.rssi_dbm {
            assert!((r - r.round()).abs() < 1e-9, "rssi {r} not integer dBm");
        }
    }

    #[test]
    fn rssi_in_plausible_range() {
        let mut s = scene(0.3, 3);
        let snap = s.snapshot(0.0, TagState::Absorb, &offsets());
        let mut ex = RssiExtractor::new(SimRng::new(4));
        let m = ex.measure(&snap, 0);
        for &r in &m.rssi_dbm[..2] {
            assert!((-90.0..=-30.0).contains(&r), "rssi {r} dBm");
        }
    }

    #[test]
    fn rssi_decreases_with_helper_distance() {
        let offs = offsets();
        let rssi_at = |x: f64| -> f64 {
            let mut cfg = SceneConfig::uplink(0.3);
            cfg.helper = bs_channel::Point::new(x, 0.0);
            cfg.fading = FadingConfig::static_channel();
            // Average several seeds to wash out small-scale fading.
            (0..8)
                .map(|seed| {
                    let mut s = Scene::new(cfg.clone(), &SimRng::new(100 + seed));
                    let snap = s.snapshot(0.0, TagState::Absorb, &offs);
                    let mut ex = RssiExtractor::new(SimRng::new(200 + seed));
                    ex.measure(&snap, 0).rssi_dbm[0]
                })
                .sum::<f64>()
                / 8.0
        };
        assert!(rssi_at(3.0) > rssi_at(9.0) + 5.0);
    }

    #[test]
    fn unquantised_extractor_sees_backscatter_differential() {
        // With quantisation off, the reflect/absorb RSSI difference at 5 cm
        // must be visible.
        let mut s = scene(0.05, 5);
        let offs = offsets();
        let a = s.snapshot(0.0, TagState::Reflect, &offs);
        let b = s.snapshot(0.0, TagState::Absorb, &offs);
        let mut ex = RssiExtractor::with_params(SimRng::new(6), 0.0, 0.0);
        let ra = ex.measure(&a, 0).rssi_dbm[0];
        let rb = ex.measure(&b, 0).rssi_dbm[0];
        assert!((ra - rb).abs() > 0.05, "differential {} dB", ra - rb);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut s = scene(0.3, 7);
        let snap = s.snapshot(0.0, TagState::Reflect, &offsets());
        let mut a = RssiExtractor::new(SimRng::new(8));
        let mut b = RssiExtractor::new(SimRng::new(8));
        assert_eq!(a.measure(&snap, 1), b.measure(&snap, 1));
    }
}
