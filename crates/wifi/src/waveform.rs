//! Symbol-level OFDM waveform synthesis.
//!
//! The tag's envelope detector sees the *time-domain* 802.11 waveform,
//! whose instantaneous power fluctuates with a high peak-to-average ratio
//! (§4.2 of the paper cites OFDM's PAPR as the reason naive
//! average-energy detection fails). `bs-tag`'s envelope model approximates
//! the detector's view with pre-averaged Gamma fluctuations; this module
//! synthesises real OFDM symbols (random QPSK/16-QAM on the 52 occupied
//! subcarriers, 64-point IFFT, cyclic prefix) so the approximation can be
//! *validated* instead of assumed — see the statistics tests at the
//! bottom and [`power_fluctuation_shape`].

use crate::ofdm::{occupied_offsets, OCCUPIED_SUBCARRIERS, SUBCARRIER_SPACING_HZ};
use bs_dsp::fft::ifft;
use bs_dsp::{Complex, SimRng};

/// Samples per OFDM symbol body (the 64-point IFFT grid; 3.2 µs at
/// 20 MS/s).
pub const FFT_SIZE: usize = 64;

/// Cyclic-prefix samples (0.8 µs at 20 MS/s).
pub const CP_LEN: usize = 16;

/// Sample rate of the synthesised waveform (20 MHz complex baseband).
pub const SAMPLE_RATE_HZ: f64 = FFT_SIZE as f64 * SUBCARRIER_SPACING_HZ;

/// Constellation used on the data subcarriers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Constellation {
    /// QPSK (6–18 Mbps rates).
    Qpsk,
    /// 16-QAM (24–36 Mbps rates).
    Qam16,
}

impl Constellation {
    /// Draws one unit-average-power constellation point.
    fn draw(self, rng: &mut SimRng) -> Complex {
        match self {
            Constellation::Qpsk => {
                let re = if rng.chance(0.5) { 1.0 } else { -1.0 };
                let im = if rng.chance(0.5) { 1.0 } else { -1.0 };
                Complex::new(re, im).scale(std::f64::consts::FRAC_1_SQRT_2)
            }
            Constellation::Qam16 => {
                // Levels ±1, ±3 scaled to unit average power (E|x|² = 10).
                let lv = [-3.0, -1.0, 1.0, 3.0];
                let re = lv[rng.index(4)];
                let im = lv[rng.index(4)];
                Complex::new(re, im).scale(1.0 / 10.0f64.sqrt())
            }
        }
    }
}

/// Synthesises one OFDM symbol (CP + body) with random data on the 52
/// occupied subcarriers; unit average power over the body.
pub fn ofdm_symbol(constellation: Constellation, rng: &mut SimRng) -> Vec<Complex> {
    let mut bins = vec![Complex::ZERO; FFT_SIZE];
    for &off in &occupied_offsets() {
        let k = (off / SUBCARRIER_SPACING_HZ).round() as i64;
        let idx = if k >= 0 { k as usize } else { (FFT_SIZE as i64 + k) as usize };
        bins[idx] = constellation.draw(rng);
    }
    let mut time = bins;
    ifft(&mut time);
    // Normalise to unit average power: the IFFT of 52 unit-power bins over
    // 64 samples has mean power 52/64².
    let scale = (FFT_SIZE as f64 * FFT_SIZE as f64 / OCCUPIED_SUBCARRIERS as f64).sqrt();
    for v in time.iter_mut() {
        *v = v.scale(scale);
    }
    let mut out = Vec::with_capacity(CP_LEN + FFT_SIZE);
    out.extend_from_slice(&time[FFT_SIZE - CP_LEN..]);
    out.extend_from_slice(&time);
    out
}

/// Synthesises the instantaneous-power trace of an `n_symbols`-symbol
/// packet (mW per unit transmit power), at the native 20 MS/s.
pub fn packet_power(n_symbols: usize, constellation: Constellation, rng: &mut SimRng) -> Vec<f64> {
    let mut out = Vec::with_capacity(n_symbols * (CP_LEN + FFT_SIZE));
    for _ in 0..n_symbols {
        out.extend(ofdm_symbol(constellation, rng).iter().map(|v| v.norm_sq()));
    }
    out
}

/// Peak-to-average power ratio (linear) of a power trace.
pub fn papr(power: &[f64]) -> f64 {
    let mean = bs_dsp::stats::mean(power);
    let peak = power.iter().cloned().fold(0.0, f64::max);
    if mean > 0.0 {
        peak / mean
    } else {
        0.0
    }
}

/// Averages a native-rate power trace into `block` consecutive-sample
/// blocks — what a detector that responds slower than the chip rate
/// effectively sees. `block = 20` ≈ 1 µs at 20 MS/s.
pub fn block_average(power: &[f64], block: usize) -> Vec<f64> {
    assert!(block > 0);
    power
        .chunks_exact(block)
        .map(|c| c.iter().sum::<f64>() / block as f64)
        .collect()
}

/// The effective Gamma shape parameter of `block`-sample-averaged OFDM
/// power: `shape = 1 / CV²`. This is the empirical counterpart of
/// `bs-tag`'s `EnvelopeConfig::papr_shape` — the envelope model's
/// pre-averaging assumption can be checked against a real waveform.
pub fn power_fluctuation_shape(block: usize, n_symbols: usize, rng: &mut SimRng) -> f64 {
    let p = packet_power(n_symbols, Constellation::Qpsk, rng);
    let avg = block_average(&p, block);
    let mean = bs_dsp::stats::mean(&avg);
    let var = bs_dsp::stats::variance(&avg);
    if var > 0.0 {
        mean * mean / var
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> SimRng {
        SimRng::new(seed).stream("waveform")
    }

    #[test]
    fn symbol_has_cp_structure() {
        let mut r = rng(1);
        let s = ofdm_symbol(Constellation::Qpsk, &mut r);
        assert_eq!(s.len(), CP_LEN + FFT_SIZE);
        // The cyclic prefix repeats the symbol tail exactly.
        for i in 0..CP_LEN {
            assert!(
                (s[i] - s[FFT_SIZE + i]).abs() < 1e-9,
                "CP mismatch at {i}"
            );
        }
    }

    #[test]
    fn symbol_power_is_normalised() {
        let mut r = rng(2);
        let mut mean = 0.0;
        let n = 200;
        for _ in 0..n {
            let s = ofdm_symbol(Constellation::Qpsk, &mut r);
            mean += s[CP_LEN..].iter().map(|v| v.norm_sq()).sum::<f64>()
                / (FFT_SIZE as f64 * n as f64);
        }
        assert!((mean - 1.0).abs() < 0.05, "mean power {mean}");
    }

    #[test]
    fn qam16_unit_power_too() {
        let mut r = rng(3);
        let s = packet_power(100, Constellation::Qam16, &mut r);
        let mean = bs_dsp::stats::mean(&s);
        assert!((mean - 1.0).abs() < 0.1, "mean power {mean}");
    }

    #[test]
    fn papr_is_high_at_native_rate() {
        // §4.2 / [20]: OFDM has a high peak-to-average ratio — at the
        // native sample rate, peaks of 6–12 dB over a packet are typical.
        let mut r = rng(4);
        let p = packet_power(50, Constellation::Qpsk, &mut r);
        let ratio = papr(&p);
        assert!(ratio > 4.0, "PAPR {ratio} too low for OFDM");
        assert!(ratio < 30.0, "PAPR {ratio} implausibly high");
    }

    #[test]
    fn instantaneous_power_is_nearly_exponential() {
        // 52 superposed subcarriers → CLT → complex Gaussian → power is
        // exponential: CV ≈ 1, i.e. Gamma shape ≈ 1 per native sample.
        let mut r = rng(5);
        let shape = power_fluctuation_shape(1, 400, &mut r);
        assert!((0.8..=1.3).contains(&shape), "native shape {shape}");
    }

    #[test]
    fn microsecond_averaging_smooths_ideal_ofdm() {
        // Calibration note for `EnvelopeConfig::papr_shape`: averaging
        // 1 µs (20 native samples) of an *ideal* OFDM waveform yields a
        // Gamma shape of ~20–25 — i.e. pure OFDM is quite smooth at the
        // detector's timescale. The envelope model's much lumpier default
        // (shape 3) is therefore not an OFDM-PAPR prediction: it stands
        // in for multipath-induced symbol-to-symbol variation and the
        // diode detector's own noise near its sensitivity floor, which
        // this clean-waveform synthesis does not include.
        let mut r = rng(6);
        let shape = power_fluctuation_shape(20, 400, &mut r);
        assert!(
            (12.0..=40.0).contains(&shape),
            "1 µs-averaged ideal-OFDM Gamma shape {shape}"
        );
    }

    #[test]
    fn longer_averaging_smooths_further() {
        let mut r = rng(7);
        let s1 = power_fluctuation_shape(20, 400, &mut r);
        let s2 = power_fluctuation_shape(80, 400, &mut r);
        assert!(s2 > s1, "4 µs shape {s2} should exceed 1 µs shape {s1}");
    }

    #[test]
    fn block_average_arithmetic() {
        let p = vec![1.0, 3.0, 2.0, 4.0, 10.0];
        assert_eq!(block_average(&p, 2), vec![2.0, 3.0]); // trailing sample dropped
    }

    #[test]
    #[should_panic]
    fn zero_block_panics() {
        block_average(&[1.0], 0);
    }
}
