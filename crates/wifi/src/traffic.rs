//! Offered-load generators.
//!
//! Every generator returns a sorted list of frame-ready times in µs, which
//! a [`crate::mac::Station`] then contends with. The profiles mirror the
//! paper's workloads:
//!
//! * [`cbr`] — controlled injection with an inter-packet delay, as the
//!   evaluation does to sweep the helper's transmission rate (§7.2,
//!   Fig. 12: 240–3070 packets/s).
//! * [`poisson`] — memoryless background traffic.
//! * [`bursty_onoff`] — heavy-tailed ON/OFF bursts ("Internet traffic in
//!   general is known for its bursty nature", §5).
//! * [`OfficeLoadProfile`] — the diurnal office load behind Fig. 15
//!   (12:00–20:00, load between ~100 and ~1100 packets/s).
//! * [`streaming`] — a Pandora-like audio stream (Fig. 18's background
//!   traffic).
//! * [`beacons`] — the AP's fixed beacon schedule (Fig. 16).
//!
//! Any generator's output can be wrapped in a `bs_channel::FaultPlan`
//! via [`apply_faults`] to model helper outages, rate collapse, loss and
//! duplication; the decorated stream keeps the generator contract
//! (sorted, within the horizon, seed-reproducible).

use bs_channel::faults::{FaultEvents, FaultPlan};
use bs_dsp::obs::Recorder;
use bs_dsp::SimRng;

/// Constant-bit-rate arrivals: `rate_pps` packets per second with ±10 %
/// uniform jitter, from 0 to `until_us`.
pub fn cbr(rate_pps: f64, until_us: u64, rng: &mut SimRng) -> Vec<u64> {
    assert!(rate_pps > 0.0, "rate must be positive");
    let period = 1e6 / rate_pps;
    let mut out = Vec::new();
    let mut t = 0.0f64;
    while (t as u64) < until_us {
        out.push(t as u64);
        t += period * rng.uniform_range(0.9, 1.1);
    }
    out
}

/// Poisson arrivals at `rate_pps` packets per second.
pub fn poisson(rate_pps: f64, until_us: u64, rng: &mut SimRng) -> Vec<u64> {
    assert!(rate_pps > 0.0, "rate must be positive");
    let mean_gap = 1e6 / rate_pps;
    let mut out = Vec::new();
    let mut t = rng.exponential(mean_gap);
    while (t as u64) < until_us {
        out.push(t as u64);
        t += rng.exponential(mean_gap);
    }
    out
}

/// ON/OFF bursty arrivals: exponential ON periods (mean `mean_on_us`)
/// during which packets arrive at `on_rate_pps`, separated by exponential
/// OFF periods (mean `mean_off_us`).
pub fn bursty_onoff(
    on_rate_pps: f64,
    mean_on_us: f64,
    mean_off_us: f64,
    until_us: u64,
    rng: &mut SimRng,
) -> Vec<u64> {
    assert!(on_rate_pps > 0.0, "rate must be positive");
    let mean_gap = 1e6 / on_rate_pps;
    let mut out = Vec::new();
    let mut t = 0.0f64;
    loop {
        let on_end = t + rng.exponential(mean_on_us);
        while t < on_end {
            if (t as u64) >= until_us {
                return out;
            }
            out.push(t as u64);
            t += rng.exponential(mean_gap);
        }
        t = on_end + rng.exponential(mean_off_us);
        if (t as u64) >= until_us {
            return out;
        }
    }
}

/// The diurnal office network-load profile used to reproduce Fig. 15.
///
/// Fig. 15 plots the building AP's packets-per-second between 12:00 and
/// 20:00: moderate at lunch, peaking mid-afternoon (~1000+ packets/s),
/// tailing off into the evening. The profile below is a piecewise-linear
/// envelope with those features.
#[derive(Debug, Clone, Copy, Default)]
pub struct OfficeLoadProfile;

impl OfficeLoadProfile {
    /// Mean offered load (packets/s) at `hour` (fractional, 24 h clock).
    pub fn load_pps(&self, hour: f64) -> f64 {
        // Anchor points (hour, pps) mirroring the Fig. 15 load curve.
        const ANCHORS: [(f64, f64); 7] = [
            (11.0, 250.0),
            (12.0, 400.0),
            (13.0, 550.0),
            (14.0, 750.0),
            (16.0, 1050.0),
            (18.0, 600.0),
            (20.0, 200.0),
        ];
        let h = hour.clamp(ANCHORS[0].0, ANCHORS[ANCHORS.len() - 1].0);
        for w in ANCHORS.windows(2) {
            let (h0, p0) = w[0];
            let (h1, p1) = w[1];
            if h <= h1 {
                let frac = (h - h0) / (h1 - h0);
                return p0 + frac * (p1 - p0);
            }
        }
        ANCHORS[ANCHORS.len() - 1].1
    }

    /// Poisson arrivals over a window of `duration_us` starting at `hour`,
    /// with the rate taken from the profile at the window start (windows in
    /// the Fig. 15 experiment are 10-minute slots, over which the load is
    /// approximately constant).
    pub fn arrivals(&self, hour: f64, duration_us: u64, rng: &mut SimRng) -> Vec<u64> {
        poisson(self.load_pps(hour), duration_us, rng)
    }
}

/// A Pandora-like audio stream: `bitrate_kbps` delivered in `packet_bytes`
/// packets arriving in periodic bursts (one burst per `burst_period_us`,
/// enough packets per burst to sustain the bitrate).
pub fn streaming(
    bitrate_kbps: f64,
    packet_bytes: usize,
    burst_period_us: u64,
    until_us: u64,
    rng: &mut SimRng,
) -> Vec<u64> {
    assert!(bitrate_kbps > 0.0 && packet_bytes > 0);
    let bits_per_burst = bitrate_kbps * 1e3 * (burst_period_us as f64 / 1e6);
    let pkts_per_burst = (bits_per_burst / (packet_bytes * 8) as f64).ceil() as usize;
    let mut out = Vec::new();
    let mut burst_start = 0u64;
    while burst_start < until_us {
        let mut t = burst_start as f64 + rng.uniform_range(0.0, 500.0);
        for _ in 0..pkts_per_burst {
            if (t as u64) >= until_us {
                break;
            }
            out.push(t as u64);
            t += rng.uniform_range(200.0, 500.0); // back-to-backish
        }
        burst_start += burst_period_us;
    }
    out.sort_unstable();
    out
}

/// Decorates a generator's arrival stream with a [`FaultPlan`]: outage
/// windows silence it, collapse/loss thin it, duplication thickens it.
/// `stream` names the stream (distinct stations must use distinct names
/// so their fault randomness is independent); what fired is recorded in
/// `events`. With an empty plan this is the identity.
pub fn apply_faults(
    arrivals: Vec<u64>,
    plan: &FaultPlan,
    stream: &str,
    events: &mut FaultEvents,
) -> Vec<u64> {
    if plan.is_empty() {
        arrivals
    } else {
        plan.apply_arrivals(&arrivals, stream, events)
    }
}

/// [`apply_faults`] plus observability: counts the offered and surviving
/// arrivals and the per-stream drop/duplicate deltas into `rec`
/// (`traffic.arrivals-offered`, `traffic.arrivals-delivered`,
/// `traffic.packets-dropped`, `traffic.packets-duplicated`). The decorated
/// stream is identical to [`apply_faults`]'s for the same inputs.
pub fn apply_faults_with(
    arrivals: Vec<u64>,
    plan: &FaultPlan,
    stream: &str,
    events: &mut FaultEvents,
    rec: &mut dyn Recorder,
) -> Vec<u64> {
    let offered = arrivals.len() as u64;
    let dropped_before = events.packets_dropped;
    let duplicated_before = events.packets_duplicated;
    let out = apply_faults(arrivals, plan, stream, events);
    rec.add("traffic.arrivals-offered", offered);
    rec.add("traffic.arrivals-delivered", out.len() as u64);
    rec.add("traffic.packets-dropped", events.packets_dropped - dropped_before);
    rec.add(
        "traffic.packets-duplicated",
        events.packets_duplicated - duplicated_before,
    );
    out
}

/// Beacon schedule: one beacon every `interval_us` (the 802.11 default TBTT
/// is 102.4 ms), from 0 to `until_us`.
pub fn beacons(interval_us: u64, until_us: u64) -> Vec<u64> {
    assert!(interval_us > 0, "beacon interval must be positive");
    (0..)
        .map(|i| i * interval_us)
        .take_while(|&t| t < until_us)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(1337).stream("traffic-test")
    }

    #[test]
    fn cbr_rate_is_accurate() {
        let arr = cbr(1000.0, 1_000_000, &mut rng());
        assert!((950..=1050).contains(&arr.len()), "{}", arr.len());
        assert!(arr.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn poisson_rate_is_accurate() {
        let arr = poisson(500.0, 4_000_000, &mut rng());
        let rate = arr.len() as f64 / 4.0;
        assert!((450.0..=550.0).contains(&rate), "{rate}");
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn poisson_interarrival_cv_is_one() {
        // Coefficient of variation of exponential gaps ≈ 1.
        let arr = poisson(1000.0, 10_000_000, &mut rng());
        let gaps: Vec<f64> = arr.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let mean = bs_dsp::stats::mean(&gaps);
        let cv = bs_dsp::stats::variance(&gaps).sqrt() / mean;
        assert!((0.9..=1.1).contains(&cv), "cv {cv}");
    }

    #[test]
    fn bursty_is_burstier_than_poisson() {
        let mut r = rng();
        let bursty = bursty_onoff(3000.0, 50_000.0, 150_000.0, 10_000_000, &mut r);
        let gaps: Vec<f64> = bursty.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let mean = bs_dsp::stats::mean(&gaps);
        let cv = bs_dsp::stats::variance(&gaps).sqrt() / mean;
        assert!(cv > 1.5, "bursty cv {cv} should exceed poisson's 1.0");
    }

    #[test]
    fn bursty_respects_horizon() {
        let arr = bursty_onoff(1000.0, 10_000.0, 10_000.0, 100_000, &mut rng());
        assert!(arr.iter().all(|&t| t < 100_000));
    }

    #[test]
    fn office_profile_peaks_midafternoon() {
        let p = OfficeLoadProfile;
        let noon = p.load_pps(12.0);
        let peak = p.load_pps(16.0);
        let evening = p.load_pps(20.0);
        assert!(peak > noon, "peak {peak} noon {noon}");
        assert!(peak > evening);
        assert!((100.0..=1200.0).contains(&noon));
        assert!(peak > 900.0, "peak {peak}");
    }

    #[test]
    fn office_profile_clamps_out_of_range() {
        let p = OfficeLoadProfile;
        assert_eq!(p.load_pps(3.0), p.load_pps(11.0));
        assert_eq!(p.load_pps(23.0), p.load_pps(20.0));
    }

    #[test]
    fn office_arrivals_track_profile() {
        let p = OfficeLoadProfile;
        let mut r = rng();
        let lunch = p.arrivals(12.0, 2_000_000, &mut r).len() as f64 / 2.0;
        let peak = p.arrivals(16.0, 2_000_000, &mut r).len() as f64 / 2.0;
        assert!(peak > lunch * 1.5, "peak {peak} lunch {lunch}");
    }

    #[test]
    fn streaming_sustains_bitrate() {
        // 128 kbps with 500-byte packets = 32 packets/s.
        let arr = streaming(128.0, 500, 100_000, 5_000_000, &mut rng());
        let pps = arr.len() as f64 / 5.0;
        assert!((30.0..=45.0).contains(&pps), "pps {pps}");
    }

    #[test]
    fn beacons_are_exactly_periodic() {
        let b = beacons(102_400, 1_024_000);
        assert_eq!(b.len(), 10);
        assert!(b.windows(2).all(|w| w[1] - w[0] == 102_400));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn beacons_zero_interval_panics() {
        beacons(0, 1000);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = poisson(700.0, 1_000_000, &mut SimRng::new(5));
        let b = poisson(700.0, 1_000_000, &mut SimRng::new(5));
        assert_eq!(a, b);
    }
}
