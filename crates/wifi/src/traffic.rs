//! Offered-load generators.
//!
//! Every generator returns a sorted list of frame-ready times in µs, which
//! a [`crate::mac::Station`] then contends with. The profiles mirror the
//! paper's workloads:
//!
//! * [`cbr`] — controlled injection with an inter-packet delay, as the
//!   evaluation does to sweep the helper's transmission rate (§7.2,
//!   Fig. 12: 240–3070 packets/s).
//! * [`poisson`] — memoryless background traffic.
//! * [`bursty_onoff`] — heavy-tailed ON/OFF bursts ("Internet traffic in
//!   general is known for its bursty nature", §5).
//! * [`OfficeLoadProfile`] — the diurnal office load behind Fig. 15
//!   (12:00–20:00, load between ~100 and ~1100 packets/s).
//! * [`streaming`] — a Pandora-like audio stream (Fig. 18's background
//!   traffic).
//! * [`beacons`] — the AP's fixed beacon schedule (Fig. 16).
//! * [`WildTraffic`] — uncontrolled real-world traffic: heavy-tailed
//!   Pareto idle gaps, exponential active bursts, a diurnal load
//!   envelope and a channel-capacity cap over competing stations. The
//!   workload GuardRider-style FEC (`bs_net::fec`) is tuned against.
//!
//! [`RateEstimator`] closes the loop: it measures an arrival stream's
//! rate, burstiness and idle-gap tail index ([`TrafficStats`]), which
//! the transport's `FecConfig::for_traffic` rule converts into a code
//! rate.
//!
//! Any generator's output can be wrapped in a `bs_channel::FaultPlan`
//! via [`apply_faults`] to model helper outages, rate collapse, loss and
//! duplication; the decorated stream keeps the generator contract
//! (sorted, within the horizon, seed-reproducible).

use bs_channel::faults::{FaultEvents, FaultPlan};
use bs_dsp::obs::Recorder;
use bs_dsp::SimRng;

/// Constant-bit-rate arrivals: `rate_pps` packets per second with ±10 %
/// uniform jitter, from 0 to `until_us`.
pub fn cbr(rate_pps: f64, until_us: u64, rng: &mut SimRng) -> Vec<u64> {
    assert!(rate_pps > 0.0, "rate must be positive");
    let period = 1e6 / rate_pps;
    let mut out = Vec::new();
    let mut t = 0.0f64;
    while (t as u64) < until_us {
        out.push(t as u64);
        t += period * rng.uniform_range(0.9, 1.1);
    }
    out
}

/// Poisson arrivals at `rate_pps` packets per second.
pub fn poisson(rate_pps: f64, until_us: u64, rng: &mut SimRng) -> Vec<u64> {
    assert!(rate_pps > 0.0, "rate must be positive");
    let mean_gap = 1e6 / rate_pps;
    let mut out = Vec::new();
    let mut t = rng.exponential(mean_gap);
    while (t as u64) < until_us {
        out.push(t as u64);
        t += rng.exponential(mean_gap);
    }
    out
}

/// ON/OFF bursty arrivals: exponential ON periods (mean `mean_on_us`)
/// during which packets arrive at `on_rate_pps`, separated by exponential
/// OFF periods (mean `mean_off_us`).
pub fn bursty_onoff(
    on_rate_pps: f64,
    mean_on_us: f64,
    mean_off_us: f64,
    until_us: u64,
    rng: &mut SimRng,
) -> Vec<u64> {
    assert!(on_rate_pps > 0.0, "rate must be positive");
    let mean_gap = 1e6 / on_rate_pps;
    let mut out = Vec::new();
    let mut t = 0.0f64;
    loop {
        let on_end = t + rng.exponential(mean_on_us);
        while t < on_end {
            if (t as u64) >= until_us {
                return out;
            }
            out.push(t as u64);
            t += rng.exponential(mean_gap);
        }
        t = on_end + rng.exponential(mean_off_us);
        if (t as u64) >= until_us {
            return out;
        }
    }
}

/// The diurnal office network-load profile used to reproduce Fig. 15.
///
/// Fig. 15 plots the building AP's packets-per-second between 12:00 and
/// 20:00: moderate at lunch, peaking mid-afternoon (~1000+ packets/s),
/// tailing off into the evening. The profile below is a piecewise-linear
/// envelope with those features.
#[derive(Debug, Clone, Copy, Default)]
pub struct OfficeLoadProfile;

impl OfficeLoadProfile {
    /// Mean offered load (packets/s) at `hour` (fractional, 24 h clock).
    pub fn load_pps(&self, hour: f64) -> f64 {
        // Anchor points (hour, pps) mirroring the Fig. 15 load curve.
        const ANCHORS: [(f64, f64); 7] = [
            (11.0, 250.0),
            (12.0, 400.0),
            (13.0, 550.0),
            (14.0, 750.0),
            (16.0, 1050.0),
            (18.0, 600.0),
            (20.0, 200.0),
        ];
        let h = hour.clamp(ANCHORS[0].0, ANCHORS[ANCHORS.len() - 1].0);
        for w in ANCHORS.windows(2) {
            let (h0, p0) = w[0];
            let (h1, p1) = w[1];
            if h <= h1 {
                let frac = (h - h0) / (h1 - h0);
                return p0 + frac * (p1 - p0);
            }
        }
        ANCHORS[ANCHORS.len() - 1].1
    }

    /// Poisson arrivals over a window of `duration_us` starting at `hour`,
    /// with the rate taken from the profile at the window start (windows in
    /// the Fig. 15 experiment are 10-minute slots, over which the load is
    /// approximately constant).
    pub fn arrivals(&self, hour: f64, duration_us: u64, rng: &mut SimRng) -> Vec<u64> {
        poisson(self.load_pps(hour), duration_us, rng)
    }
}

/// A Pandora-like audio stream: `bitrate_kbps` delivered in `packet_bytes`
/// packets arriving in periodic bursts (one burst per `burst_period_us`,
/// enough packets per burst to sustain the bitrate).
pub fn streaming(
    bitrate_kbps: f64,
    packet_bytes: usize,
    burst_period_us: u64,
    until_us: u64,
    rng: &mut SimRng,
) -> Vec<u64> {
    assert!(bitrate_kbps > 0.0 && packet_bytes > 0);
    let bits_per_burst = bitrate_kbps * 1e3 * (burst_period_us as f64 / 1e6);
    let pkts_per_burst = (bits_per_burst / (packet_bytes * 8) as f64).ceil() as usize;
    let mut out = Vec::new();
    let mut burst_start = 0u64;
    while burst_start < until_us {
        let mut t = burst_start as f64 + rng.uniform_range(0.0, 500.0);
        for _ in 0..pkts_per_burst {
            if (t as u64) >= until_us {
                break;
            }
            out.push(t as u64);
            t += rng.uniform_range(200.0, 500.0); // back-to-backish
        }
        burst_start += burst_period_us;
    }
    out.sort_unstable();
    out
}

/// Decorates a generator's arrival stream with a [`FaultPlan`]: outage
/// windows silence it, collapse/loss thin it, duplication thickens it.
/// `stream` names the stream (distinct stations must use distinct names
/// so their fault randomness is independent); what fired is recorded in
/// `events`. With an empty plan this is the identity.
pub fn apply_faults(
    arrivals: Vec<u64>,
    plan: &FaultPlan,
    stream: &str,
    events: &mut FaultEvents,
) -> Vec<u64> {
    if plan.is_empty() {
        arrivals
    } else {
        plan.apply_arrivals(&arrivals, stream, events)
    }
}

/// [`apply_faults`] plus observability: counts the offered and surviving
/// arrivals and the per-stream drop/duplicate deltas into `rec`
/// (`traffic.arrivals-offered`, `traffic.arrivals-delivered`,
/// `traffic.packets-dropped`, `traffic.packets-duplicated`). The decorated
/// stream is identical to [`apply_faults`]'s for the same inputs.
pub fn apply_faults_with(
    arrivals: Vec<u64>,
    plan: &FaultPlan,
    stream: &str,
    events: &mut FaultEvents,
    rec: &mut dyn Recorder,
) -> Vec<u64> {
    let offered = arrivals.len() as u64;
    let dropped_before = events.packets_dropped;
    let duplicated_before = events.packets_duplicated;
    let out = apply_faults(arrivals, plan, stream, events);
    rec.add("traffic.arrivals-offered", offered);
    rec.add("traffic.arrivals-delivered", out.len() as u64);
    rec.add("traffic.packets-dropped", events.packets_dropped - dropped_before);
    rec.add(
        "traffic.packets-duplicated",
        events.packets_duplicated - duplicated_before,
    );
    out
}

/// The "wild" ambient-traffic model: what the helper network looks like
/// when nobody is injecting packets for the tag's benefit.
///
/// Measured Wi-Fi idle periods are heavy-tailed — most gaps are short,
/// but the distribution's tail is Pareto-like, so multi-second silences
/// arrive regularly rather than exponentially rarely. The model
/// alternates exponential *active* periods (aggregate Poisson arrivals
/// from `stations` competing stations, capped at `capacity_pps`) with
/// Pareto(`gap_alpha`, `gap_xmin_us`) *idle* gaps, under an optional
/// diurnal load envelope. Small `gap_alpha` = heavier tail = nastier
/// traffic: at `gap_alpha ≤ 1` the gap distribution has infinite mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WildTraffic {
    /// Competing stations contributing load.
    pub stations: usize,
    /// Each station's packet rate while active (packets/s).
    pub per_station_pps: f64,
    /// Channel capacity cap on the aggregate rate (packets/s).
    pub capacity_pps: f64,
    /// Pareto tail index of the idle gaps (smaller = heavier tail).
    pub gap_alpha: f64,
    /// Minimum idle gap (µs) — the Pareto scale parameter.
    pub gap_xmin_us: f64,
    /// Mean active-period length (µs), exponentially distributed.
    pub mean_active_us: f64,
    /// Hour of day at t = 0 for the diurnal envelope (24 h clock).
    pub start_hour: f64,
    /// Apply the diurnal load envelope (off = stationary process).
    pub diurnal: bool,
}

impl Default for WildTraffic {
    fn default() -> Self {
        WildTraffic {
            stations: 6,
            per_station_pps: 150.0,
            capacity_pps: 3_000.0,
            gap_alpha: 2.0,
            gap_xmin_us: 3_000.0,
            mean_active_us: 60_000.0,
            start_hour: 14.0,
            diurnal: true,
        }
    }
}

impl WildTraffic {
    /// The bench "wild" preset: tail index 1.2 (deep heavy tail, long
    /// silences common), few stations. This is the regime where
    /// FEC-across-groups beats retransmission by construction — a
    /// single Pareto silence erases a burst of segments at once and
    /// ARQ pays a full poll + backoff round trip per recovery.
    pub fn wild() -> Self {
        WildTraffic {
            stations: 3,
            per_station_pps: 120.0,
            gap_alpha: 1.2,
            gap_xmin_us: 8_000.0,
            mean_active_us: 40_000.0,
            ..WildTraffic::default()
        }
    }

    /// Diurnal load factor in `[0.25, 1.0]` at `hour` — a sinusoid
    /// peaking mid-afternoon (16:00), bottoming out pre-dawn (04:00),
    /// the smooth analogue of [`OfficeLoadProfile`].
    pub fn load_factor(&self, hour: f64) -> f64 {
        if !self.diurnal {
            return 1.0;
        }
        let phase = (hour - 16.0) / 24.0 * 2.0 * std::f64::consts::PI;
        0.625 + 0.375 * phase.cos()
    }

    /// The aggregate arrival rate (packets/s) at simulated time `t_us`.
    pub fn rate_at(&self, t_us: u64) -> f64 {
        let hour = self.start_hour + t_us as f64 / 3.6e9;
        (self.stations as f64 * self.per_station_pps * self.load_factor(hour))
            .min(self.capacity_pps)
            .max(1.0)
    }

    /// Generates sorted arrival times in `[0, until_us)`. Deterministic
    /// in `rng`'s state like every other generator here.
    pub fn arrivals(&self, until_us: u64, rng: &mut SimRng) -> Vec<u64> {
        assert!(self.gap_alpha > 0.0 && self.gap_xmin_us > 0.0);
        let mut out = Vec::new();
        let mut t = 0.0f64;
        loop {
            // Active period: Poisson arrivals at the (possibly diurnal)
            // aggregate rate.
            let active_end = t + rng.exponential(self.mean_active_us);
            while t < active_end {
                if (t as u64) >= until_us {
                    return out;
                }
                out.push(t as u64);
                let mean_gap = 1e6 / self.rate_at(t as u64);
                t += rng.exponential(mean_gap);
            }
            // Idle gap: the heavy tail.
            t = active_end + rng.pareto(self.gap_alpha, self.gap_xmin_us);
            if (t as u64) >= until_us {
                return out;
            }
        }
    }
}

/// What [`RateEstimator::measure`] reports about an arrival stream —
/// the inputs to the transport's code-rate rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficStats {
    /// Mean arrival rate over the horizon (packets/s).
    pub mean_pps: f64,
    /// Coefficient of variation of the inter-arrival gaps: ≈1 for
    /// Poisson, ≫1 for bursty/heavy-tailed streams.
    pub gap_cv: f64,
    /// Hill estimate of the gap distribution's tail index; small values
    /// (≤ 2) mean Pareto-like silences, large values a light tail.
    pub tail_index: f64,
    /// Longest observed gap (µs) — the worst silence a transfer must
    /// survive.
    pub max_gap_us: u64,
}

/// Measures the helper-packet arrival process the way a reader can:
/// watch the channel for a while, then summarise rate, burstiness and
/// the idle-gap tail. Pure function of the observed arrivals — no
/// model knowledge — so it works identically on synthetic and replayed
/// traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateEstimator {
    /// Fraction of the largest gaps fed to the Hill tail estimator.
    pub tail_fraction: f64,
}

impl Default for RateEstimator {
    fn default() -> Self {
        RateEstimator {
            tail_fraction: 0.10,
        }
    }
}

impl RateEstimator {
    /// An estimator with the default 10 % Hill tail fraction.
    pub fn new() -> Self {
        RateEstimator::default()
    }

    /// Summarises `arrivals` (sorted, µs) observed over `horizon_us`.
    ///
    /// Fewer than 3 arrivals reports a starved channel: zero-ish rate,
    /// `gap_cv` 0 and a tail index of 1.0 (treat as maximally heavy —
    /// if the observation window saw nothing, assume the worst).
    pub fn measure(&self, arrivals: &[u64], horizon_us: u64) -> TrafficStats {
        let horizon_s = (horizon_us.max(1)) as f64 / 1e6;
        if arrivals.len() < 3 {
            return TrafficStats {
                mean_pps: arrivals.len() as f64 / horizon_s,
                gap_cv: 0.0,
                tail_index: 1.0,
                max_gap_us: horizon_us,
            };
        }
        let gaps: Vec<f64> = arrivals
            .windows(2)
            .map(|w| (w[1].saturating_sub(w[0])) as f64)
            .collect();
        let mean = bs_dsp::stats::mean(&gaps);
        let sd = bs_dsp::stats::variance(&gaps).sqrt();
        let gap_cv = if mean > 0.0 { sd / mean } else { 0.0 };
        let max_gap_us = gaps.iter().fold(0.0f64, |a, &g| a.max(g)) as u64;

        // Hill estimator over the top `tail_fraction` of the gaps:
        // α̂ = m / Σ ln(g_(i) / g_(m)), the maximum-likelihood tail
        // index of a Pareto sample.
        let mut sorted = gaps.clone();
        sorted.sort_by(|a, b| b.total_cmp(a));
        let m = ((sorted.len() as f64 * self.tail_fraction) as usize)
            .clamp(2, sorted.len() - 1);
        let floor = sorted[m].max(1.0);
        let sum_log: f64 = sorted[..m]
            .iter()
            .map(|&g| (g.max(1.0) / floor).ln())
            .sum();
        let tail_index = if sum_log > 0.0 {
            m as f64 / sum_log
        } else {
            f64::INFINITY
        };

        TrafficStats {
            mean_pps: arrivals.len() as f64 / horizon_s,
            gap_cv,
            tail_index,
            max_gap_us,
        }
    }
}

/// Beacon schedule: one beacon every `interval_us` (the 802.11 default TBTT
/// is 102.4 ms), from 0 to `until_us`.
pub fn beacons(interval_us: u64, until_us: u64) -> Vec<u64> {
    assert!(interval_us > 0, "beacon interval must be positive");
    (0..)
        .map(|i| i * interval_us)
        .take_while(|&t| t < until_us)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(1337).stream("traffic-test")
    }

    #[test]
    fn cbr_rate_is_accurate() {
        let arr = cbr(1000.0, 1_000_000, &mut rng());
        assert!((950..=1050).contains(&arr.len()), "{}", arr.len());
        assert!(arr.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn poisson_rate_is_accurate() {
        let arr = poisson(500.0, 4_000_000, &mut rng());
        let rate = arr.len() as f64 / 4.0;
        assert!((450.0..=550.0).contains(&rate), "{rate}");
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn poisson_interarrival_cv_is_one() {
        // Coefficient of variation of exponential gaps ≈ 1.
        let arr = poisson(1000.0, 10_000_000, &mut rng());
        let gaps: Vec<f64> = arr.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let mean = bs_dsp::stats::mean(&gaps);
        let cv = bs_dsp::stats::variance(&gaps).sqrt() / mean;
        assert!((0.9..=1.1).contains(&cv), "cv {cv}");
    }

    #[test]
    fn bursty_is_burstier_than_poisson() {
        let mut r = rng();
        let bursty = bursty_onoff(3000.0, 50_000.0, 150_000.0, 10_000_000, &mut r);
        let gaps: Vec<f64> = bursty.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let mean = bs_dsp::stats::mean(&gaps);
        let cv = bs_dsp::stats::variance(&gaps).sqrt() / mean;
        assert!(cv > 1.5, "bursty cv {cv} should exceed poisson's 1.0");
    }

    #[test]
    fn bursty_respects_horizon() {
        let arr = bursty_onoff(1000.0, 10_000.0, 10_000.0, 100_000, &mut rng());
        assert!(arr.iter().all(|&t| t < 100_000));
    }

    #[test]
    fn office_profile_peaks_midafternoon() {
        let p = OfficeLoadProfile;
        let noon = p.load_pps(12.0);
        let peak = p.load_pps(16.0);
        let evening = p.load_pps(20.0);
        assert!(peak > noon, "peak {peak} noon {noon}");
        assert!(peak > evening);
        assert!((100.0..=1200.0).contains(&noon));
        assert!(peak > 900.0, "peak {peak}");
    }

    #[test]
    fn office_profile_clamps_out_of_range() {
        let p = OfficeLoadProfile;
        assert_eq!(p.load_pps(3.0), p.load_pps(11.0));
        assert_eq!(p.load_pps(23.0), p.load_pps(20.0));
    }

    #[test]
    fn office_arrivals_track_profile() {
        let p = OfficeLoadProfile;
        let mut r = rng();
        let lunch = p.arrivals(12.0, 2_000_000, &mut r).len() as f64 / 2.0;
        let peak = p.arrivals(16.0, 2_000_000, &mut r).len() as f64 / 2.0;
        assert!(peak > lunch * 1.5, "peak {peak} lunch {lunch}");
    }

    #[test]
    fn streaming_sustains_bitrate() {
        // 128 kbps with 500-byte packets = 32 packets/s.
        let arr = streaming(128.0, 500, 100_000, 5_000_000, &mut rng());
        let pps = arr.len() as f64 / 5.0;
        assert!((30.0..=45.0).contains(&pps), "pps {pps}");
    }

    #[test]
    fn beacons_are_exactly_periodic() {
        let b = beacons(102_400, 1_024_000);
        assert_eq!(b.len(), 10);
        assert!(b.windows(2).all(|w| w[1] - w[0] == 102_400));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn beacons_zero_interval_panics() {
        beacons(0, 1000);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = poisson(700.0, 1_000_000, &mut SimRng::new(5));
        let b = poisson(700.0, 1_000_000, &mut SimRng::new(5));
        assert_eq!(a, b);
    }

    /// FNV-1a over the arrival times — the byte-stability fingerprint
    /// for the golden-regression pins below.
    fn fnv(xs: &[u64]) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for &x in xs {
            for b in x.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
        }
        h
    }

    #[test]
    fn pandora_and_beacon_goldens_are_byte_unchanged() {
        // Adding WildTraffic/RateEstimator must not perturb the existing
        // generators: these fingerprints pin the exact arrival streams
        // (values captured before the wild-traffic code landed).
        let s = streaming(128.0, 500, 100_000, 5_000_000, &mut rng());
        assert_eq!(s.len(), 200);
        assert_eq!(fnv(&s), 0x230288ec57db73ac, "streaming stream drifted");
        let b = beacons(102_400, 10_240_000);
        assert_eq!(b.len(), 100);
        assert_eq!(fnv(&b), 0xd1350f27a3cb077f, "beacon stream drifted");
        let mut rng2 = SimRng::new(2024).stream("pandora");
        let p = streaming(192.0, 1000, 250_000, 8_000_000, &mut rng2);
        assert_eq!(p.len(), 192);
        assert_eq!(fnv(&p), 0xa1af412dd48b6799, "pandora stream drifted");
    }

    #[test]
    fn wild_traffic_is_sorted_bounded_and_deterministic() {
        let w = WildTraffic::wild();
        let a = w.arrivals(5_000_000, &mut SimRng::new(3).stream("wild"));
        let b = w.arrivals(5_000_000, &mut SimRng::new(3).stream("wild"));
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.iter().all(|&t| t < 5_000_000));
        assert!(a.windows(2).all(|g| g[0] <= g[1]));
    }

    #[test]
    fn wild_gap_tail_index_matches_configuration() {
        // Statistical pin: the Hill estimate over the generated idle
        // gaps must recover the configured Pareto tail index within
        // tolerance. The estimator sees active-period exponential gaps
        // too, but the top decile is dominated by the Pareto silences.
        for (alpha, lo, hi) in [(1.2f64, 0.8, 1.7), (2.0, 1.3, 2.8)] {
            let w = WildTraffic {
                gap_alpha: alpha,
                diurnal: false,
                ..WildTraffic::wild()
            };
            let mut r = SimRng::new(11).stream("wild-tail").substream(alpha.to_bits());
            let arr = w.arrivals(600_000_000, &mut r);
            let stats = RateEstimator::new().measure(&arr, 600_000_000);
            assert!(
                (lo..=hi).contains(&stats.tail_index),
                "alpha {alpha}: hill {} outside [{lo}, {hi}]",
                stats.tail_index
            );
            assert!(stats.gap_cv > 1.5, "wild cv {} should be bursty", stats.gap_cv);
        }
    }

    #[test]
    fn wild_mean_rate_matches_configuration() {
        // Second statistical pin: the realised mean rate tracks the
        // configured active rate × duty cycle within tolerance.
        let w = WildTraffic {
            diurnal: false,
            gap_alpha: 2.5, // finite-mean tail so duty cycle converges
            ..WildTraffic::wild()
        };
        let mut r = SimRng::new(4).stream("wild-rate");
        let horizon = 400_000_000u64;
        let arr = w.arrivals(horizon, &mut r);
        let stats = RateEstimator::new().measure(&arr, horizon);
        let active_rate = (w.stations as f64 * w.per_station_pps).min(w.capacity_pps);
        // Duty cycle = mean_active / (mean_active + mean_gap), with the
        // Pareto mean gap α·xmin/(α−1).
        let mean_gap = w.gap_alpha * w.gap_xmin_us / (w.gap_alpha - 1.0);
        let duty = w.mean_active_us / (w.mean_active_us + mean_gap);
        let expect = active_rate * duty;
        assert!(
            (stats.mean_pps - expect).abs() / expect < 0.25,
            "mean {} vs expected {expect}",
            stats.mean_pps
        );
    }

    #[test]
    fn poisson_tail_reads_light_and_wild_reads_heavy() {
        // The discrimination the code-rate rule depends on: the
        // estimator must separate Poisson from wild traffic.
        let mut r = rng();
        let horizon = 120_000_000u64;
        let p = poisson(400.0, horizon, &mut r);
        let sp = RateEstimator::new().measure(&p, horizon);
        let w = WildTraffic::wild().arrivals(horizon, &mut r);
        let sw = RateEstimator::new().measure(&w, horizon);
        assert!(
            sp.tail_index > 2.5,
            "poisson hill {} should read light-tailed",
            sp.tail_index
        );
        assert!(
            sw.tail_index < 2.0,
            "wild hill {} should read heavy-tailed",
            sw.tail_index
        );
        assert!((0.9..=1.1).contains(&sp.gap_cv), "poisson cv {}", sp.gap_cv);
        assert!(sw.max_gap_us > sp.max_gap_us);
    }

    #[test]
    fn estimator_handles_starved_streams() {
        let s = RateEstimator::new().measure(&[], 1_000_000);
        assert_eq!(s.mean_pps, 0.0);
        assert_eq!(s.tail_index, 1.0, "empty window must read as worst case");
        assert_eq!(s.max_gap_us, 1_000_000);
        let s2 = RateEstimator::new().measure(&[5, 17], 1_000_000);
        assert!(s2.mean_pps > 0.0);
        assert_eq!(s2.tail_index, 1.0);
    }

    #[test]
    fn diurnal_envelope_shapes_the_rate() {
        let w = WildTraffic::default();
        assert!(w.load_factor(16.0) > w.load_factor(4.0));
        assert!((w.load_factor(16.0) - 1.0).abs() < 1e-9);
        assert!((w.load_factor(4.0) - 0.25).abs() < 1e-9);
        let flat = WildTraffic {
            diurnal: false,
            ..WildTraffic::default()
        };
        assert_eq!(flat.load_factor(16.0), 1.0);
        assert_eq!(flat.load_factor(4.0), 1.0);
        // rate_at caps at capacity.
        let hot = WildTraffic {
            stations: 100,
            per_station_pps: 1_000.0,
            ..WildTraffic::default()
        };
        assert_eq!(hot.rate_at(0), hot.capacity_pps);
    }
}
