//! # bs-wifi — Wi-Fi substrate for the Wi-Fi Backscatter reproduction
//!
//! Simulated replacements for the commodity Wi-Fi hardware the paper runs
//! on: Intel Wi-Fi Link 5300 cards (reader/helper), a Linksys WRT54GL AP,
//! and the building's 802.11 network.
//!
//! * [`ofdm`] — the 20 MHz 802.11 OFDM subcarrier layout and the Intel CSI
//!   tool's 30 grouped sub-channels.
//! * [`frame`] — typed Wi-Fi frames, airtime computation, timestamps and
//!   the CTS_to_SELF reservation frame used by the downlink (§4.1).
//! * [`mac`] — a discrete-event CSMA/CA (DCF) simulation of a shared
//!   collision domain: backoff, collisions, beacons, NAV reservations.
//! * [`traffic`] — offered-load models: controlled injection (§7.2),
//!   Poisson, bursty ON/OFF, the diurnal office profile behind Fig. 15 and
//!   a streaming client (Fig. 18).
//! * [`csi`] — the Intel 5300 CSI measurement model, including estimation
//!   noise, amplitude quantisation, the spurious level jumps and the weak
//!   third antenna that the paper's decoder must tolerate (§3.2, §7.1).
//! * [`rssi`] — per-packet RSSI with 1 dB quantisation (§3.3).
//! * [`rate_adapt`] — an SNR-driven rate-adaptation model used to show the
//!   tag's impact on normal Wi-Fi traffic is absorbed (Fig. 19, §9).
//! * [`symbol`] — the sub-frame symbol model for codeword-translation
//!   backscatter (FreeRider-style): symbol clock, phase-flip codeword
//!   mapping and the residue-decision error model.
//! * [`wire`] — byte-level 802.11 frame formats (CTS/ACK/data/beacon) with
//!   FCS, smoltcp-style typed encode/parse.
//! * [`waveform`] — symbol-level OFDM synthesis (QAM + IFFT + cyclic
//!   prefix) validating the tag-side envelope model's PAPR statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csi;
pub mod frame;
pub mod mac;
pub mod ofdm;
pub mod rate_adapt;
pub mod rssi;
pub mod symbol;
pub mod traffic;
pub mod waveform;
pub mod wire;

pub use csi::{CsiExtractor, CsiMeasurement};
pub use frame::{FrameKind, WifiFrame};
pub use mac::{Medium, Transmission};
pub use rssi::{RssiExtractor, RssiMeasurement};
