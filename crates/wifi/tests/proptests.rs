//! Property-based tests for the Wi-Fi substrate's invariants.

use bs_wifi::frame::{airtime_us, FrameKind, WifiFrame, MAX_NAV_US};
use bs_wifi::mac::{all_delivered, MacConfig, Medium, Station};
use bs_wifi::rate_adapt::{best_rate, mac_efficiency, RateAdapter, RATE_TABLE};
use bs_wifi::traffic;
use bs_dsp::SimRng;
use proptest::prelude::*;

proptest! {
    // ---- frames ----

    #[test]
    fn airtime_positive_and_monotone(
        bytes in 1usize..3000,
        extra in 1usize..1000,
        rate_x10 in 60u32..540,
    ) {
        let rate = f64::from(rate_x10) / 10.0;
        let a = airtime_us(bytes, rate);
        let b = airtime_us(bytes + extra, rate);
        prop_assert!(a > 0);
        prop_assert!(b >= a);
    }

    #[test]
    fn nav_is_always_clamped(nav in any::<u64>()) {
        let f = WifiFrame {
            kind: FrameKind::CtsToSelf { nav_us: nav },
            src: 0,
            timestamp_us: 0,
            duration_us: 30,
        };
        prop_assert!(f.nav_us() <= MAX_NAV_US);
    }

    // ---- MAC ----

    #[test]
    fn mac_frames_never_overlap(
        seed in any::<u64>(),
        pps1 in 50.0f64..1500.0,
        pps2 in 50.0f64..1500.0,
    ) {
        let rng = SimRng::new(seed);
        let s1 = Station::data(
            traffic::poisson(pps1, 200_000, &mut rng.stream("s1")),
            800,
            54.0,
        );
        let s2 = Station::data(
            traffic::poisson(pps2, 200_000, &mut rng.stream("s2")),
            800,
            54.0,
        );
        let mut medium = Medium::new(MacConfig::default(), rng.stream("m"));
        let (timeline, stats) = medium.simulate(&[s1, s2], 200_000);
        // Non-collided frames never overlap in time.
        let ok = all_delivered(&timeline);
        for w in ok.windows(2) {
            prop_assert!(
                w[1].timestamp_us >= w[0].end_us(),
                "{} < {}", w[1].timestamp_us, w[0].end_us()
            );
        }
        // Accounting adds up.
        prop_assert_eq!(
            stats.delivered + stats.collisions,
            timeline.len() as u64
        );
    }

    #[test]
    fn mac_delivers_at_most_offered(seed in any::<u64>(), pps in 10.0f64..3000.0) {
        let rng = SimRng::new(seed);
        let arrivals = traffic::poisson(pps, 500_000, &mut rng.stream("a"));
        let offered = arrivals.len();
        let st = Station::data(arrivals, 1000, 54.0);
        let mut medium = Medium::new(MacConfig::default(), rng.stream("m"));
        let (timeline, _) = medium.simulate(&[st], 500_000);
        prop_assert!(timeline.len() <= offered);
    }

    // ---- traffic ----

    #[test]
    fn generators_sorted_and_bounded(
        seed in any::<u64>(),
        pps in 1.0f64..5000.0,
    ) {
        let mut rng = SimRng::new(seed);
        for arr in [
            traffic::cbr(pps, 300_000, &mut rng),
            traffic::poisson(pps, 300_000, &mut rng),
            traffic::bursty_onoff(pps.max(100.0), 20_000.0, 40_000.0, 300_000, &mut rng),
        ] {
            prop_assert!(arr.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(arr.iter().all(|&t| t < 300_000));
        }
    }

    #[test]
    fn office_profile_bounded(h in 0.0f64..24.0) {
        let p = traffic::OfficeLoadProfile.load_pps(h);
        prop_assert!((100.0..=1200.0).contains(&p), "{p}");
    }

    // ---- rate adaptation ----

    #[test]
    fn best_rate_monotone_in_snr(a in -10.0f64..45.0, b in -10.0f64..45.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(best_rate(lo).rate_mbps <= best_rate(hi).rate_mbps);
    }

    #[test]
    fn adapter_always_in_table(snrs in proptest::collection::vec(-20.0f64..50.0, 1..100)) {
        let mut ad = RateAdapter::default();
        for s in snrs {
            let r = ad.observe(s);
            prop_assert!(RATE_TABLE.iter().any(|m| m.rate_mbps == r.rate_mbps));
        }
    }

    #[test]
    fn mac_efficiency_in_unit_interval(rate_x10 in 60u32..540) {
        let e = mac_efficiency(f64::from(rate_x10) / 10.0);
        prop_assert!(e > 0.0 && e < 1.0);
    }
}
