//! Property-based tests for the Wi-Fi substrate's invariants,
//! driven by the deterministic in-repo [`bs_dsp::testkit`] generator.

use bs_dsp::testkit::check;
use bs_dsp::SimRng;
use bs_wifi::frame::{airtime_us, FrameKind, WifiFrame, MAX_NAV_US};
use bs_wifi::mac::{all_delivered, MacConfig, Medium, Station};
use bs_wifi::rate_adapt::{best_rate, mac_efficiency, RateAdapter, RATE_TABLE};
use bs_wifi::traffic;

// ---- frames ----

#[test]
fn airtime_positive_and_monotone() {
    check("airtime-monotone", 256, |g| {
        let bytes = g.usize_in(1, 3000);
        let extra = g.usize_in(1, 1000);
        let rate = g.usize_in(60, 540) as f64 / 10.0;
        let a = airtime_us(bytes, rate);
        let b = airtime_us(bytes + extra, rate);
        assert!(a > 0);
        assert!(b >= a);
    });
}

#[test]
fn nav_is_always_clamped() {
    check("nav-clamped", 256, |g| {
        let nav = g.case().wrapping_mul(0x2545_f491_4f6c_dd1d);
        let f = WifiFrame {
            kind: FrameKind::CtsToSelf { nav_us: nav },
            src: 0,
            timestamp_us: 0,
            duration_us: 30,
        };
        assert!(f.nav_us() <= MAX_NAV_US);
    });
}

// ---- MAC ----

#[test]
fn mac_frames_never_overlap() {
    check("mac-no-overlap", 24, |g| {
        let seed = g.case() ^ 0x3ac011;
        let pps1 = g.f64_in(50.0, 1500.0);
        let pps2 = g.f64_in(50.0, 1500.0);
        let rng = SimRng::new(seed);
        let s1 = Station::data(
            traffic::poisson(pps1, 200_000, &mut rng.stream("s1")),
            800,
            54.0,
        );
        let s2 = Station::data(
            traffic::poisson(pps2, 200_000, &mut rng.stream("s2")),
            800,
            54.0,
        );
        let mut medium = Medium::new(MacConfig::default(), rng.stream("m"));
        let (timeline, stats) = medium.simulate(&[s1, s2], 200_000);
        // Non-collided frames never overlap in time.
        let ok = all_delivered(&timeline);
        for w in ok.windows(2) {
            assert!(
                w[1].timestamp_us >= w[0].end_us(),
                "{} < {}",
                w[1].timestamp_us,
                w[0].end_us()
            );
        }
        // Accounting adds up.
        assert_eq!(stats.delivered + stats.collisions, timeline.len() as u64);
    });
}

#[test]
fn mac_delivers_at_most_offered() {
    check("mac-at-most-offered", 24, |g| {
        let seed = g.case() ^ 0x0ff312;
        let pps = g.f64_in(10.0, 3000.0);
        let rng = SimRng::new(seed);
        let arrivals = traffic::poisson(pps, 500_000, &mut rng.stream("a"));
        let offered = arrivals.len();
        let st = Station::data(arrivals, 1000, 54.0);
        let mut medium = Medium::new(MacConfig::default(), rng.stream("m"));
        let (timeline, _) = medium.simulate(&[st], 500_000);
        assert!(timeline.len() <= offered);
    });
}

// ---- traffic ----

#[test]
fn generators_sorted_and_bounded() {
    check("traffic-sorted-bounded", 48, |g| {
        let seed = g.case() ^ 0x7aff1c;
        let pps = g.f64_in(1.0, 5000.0);
        let mut rng = SimRng::new(seed);
        for arr in [
            traffic::cbr(pps, 300_000, &mut rng),
            traffic::poisson(pps, 300_000, &mut rng),
            traffic::bursty_onoff(pps.max(100.0), 20_000.0, 40_000.0, 300_000, &mut rng),
        ] {
            assert!(arr.windows(2).all(|w| w[0] <= w[1]));
            assert!(arr.iter().all(|&t| t < 300_000));
        }
    });
}

#[test]
fn generators_are_seed_reproducible() {
    check("traffic-seed-reproducible", 32, |g| {
        let seed = g.case() ^ 0x5eed;
        let pps = g.f64_in(10.0, 2000.0);
        let gen_all = |seed: u64| -> Vec<Vec<u64>> {
            let rng = SimRng::new(seed);
            vec![
                traffic::cbr(pps, 250_000, &mut rng.stream("cbr")),
                traffic::poisson(pps, 250_000, &mut rng.stream("poisson")),
                traffic::bursty_onoff(pps.max(100.0), 15_000.0, 30_000.0, 250_000, &mut rng.stream("bursty")),
                traffic::streaming(128.0, 800, 60_000, 250_000, &mut rng.stream("stream")),
                traffic::beacons(102_400, 250_000),
            ]
        };
        assert_eq!(gen_all(seed), gen_all(seed));
    });
}

#[test]
fn streaming_and_beacons_sorted_and_bounded() {
    check("stream-beacon-sorted-bounded", 64, |g| {
        let seed = g.case() ^ 0xbea0c;
        let kbps = g.f64_in(32.0, 512.0);
        let mut rng = SimRng::new(seed);
        for arr in [
            traffic::streaming(kbps, 800, 60_000, 300_000, &mut rng),
            traffic::beacons(g.usize_in(10_000, 200_000) as u64, 300_000),
        ] {
            assert!(arr.windows(2).all(|w| w[0] <= w[1]));
            assert!(arr.iter().all(|&t| t < 300_000));
        }
    });
}

// ---- fault-wrapped traffic ----

#[test]
fn fault_wrapped_generators_keep_the_contract() {
    use bs_channel::faults::{FaultEvents, FaultPlan};
    // Whatever a plan does to a stream, the decorated output must still
    // honour the generator contract: sorted, within `until_us`, and
    // byte-reproducible from (plan seed, stream name) alone.
    check("traffic-fault-wrapped", 24, |g| {
        let seed = g.case() ^ 0xfa017;
        let pps = g.f64_in(100.0, 2000.0);
        let severity = g.f64_in(0.0, 1.0);
        let scenario = ["outage", "collapse", "loss", "dup", "all"][g.usize_in(0, 4)];
        let plan = FaultPlan::preset(scenario, severity, seed).unwrap();
        let base = traffic::cbr(pps, 300_000, &mut SimRng::new(seed).stream("base"));

        let mut e1 = FaultEvents::default();
        let out = traffic::apply_faults(base.clone(), &plan, "helper", &mut e1);
        assert!(out.windows(2).all(|w| w[0] <= w[1]), "unsorted after faults");
        assert!(out.iter().all(|&t| t < 300_000), "arrival past until_us");

        let mut e2 = FaultEvents::default();
        let again = traffic::apply_faults(base.clone(), &plan, "helper", &mut e2);
        assert_eq!(out, again, "fault decoration not reproducible");
        assert_eq!(e1, e2, "fault events not reproducible");

        // The books balance: output size = input - dropped + duplicated.
        assert_eq!(
            out.len() as i64,
            base.len() as i64 - e1.packets_dropped as i64 + e1.packets_duplicated as i64,
            "fault accounting does not balance"
        );

        // A zero-severity or empty plan is the identity, with no events.
        let mut e3 = FaultEvents::default();
        let inert = plan.clone().with_severity(0.0);
        assert_eq!(traffic::apply_faults(base.clone(), &inert, "helper", &mut e3), base);
        assert_eq!(e3, FaultEvents::default());
    });
}

#[test]
fn office_profile_bounded() {
    check("office-profile-bounded", 256, |g| {
        let h = g.f64_in(0.0, 24.0);
        let p = traffic::OfficeLoadProfile.load_pps(h);
        assert!((100.0..=1200.0).contains(&p), "{p}");
    });
}

// ---- rate adaptation ----

#[test]
fn best_rate_monotone_in_snr() {
    check("best-rate-monotone", 256, |g| {
        let a = g.f64_in(-10.0, 45.0);
        let b = g.f64_in(-10.0, 45.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(best_rate(lo).rate_mbps <= best_rate(hi).rate_mbps);
    });
}

#[test]
fn adapter_always_in_table() {
    check("adapter-in-table", 128, |g| {
        let snrs = g.vec_f64(-20.0, 50.0, 1, 100);
        let mut ad = RateAdapter::default();
        for s in snrs {
            let r = ad.observe(s);
            assert!(RATE_TABLE.iter().any(|m| m.rate_mbps == r.rate_mbps));
        }
    });
}

#[test]
fn mac_efficiency_in_unit_interval() {
    check("mac-efficiency-unit", 256, |g| {
        let e = mac_efficiency(g.usize_in(60, 540) as f64 / 10.0);
        assert!(e > 0.0 && e < 1.0);
    });
}
