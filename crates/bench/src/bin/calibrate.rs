//! Calibration sweep: uplink BER vs distance for CSI and RSSI, and
//! downlink BER vs distance per rate. Each distance is one harness job,
//! so the sweep uses every core; rows print in distance order regardless
//! of worker count (the `bs_bench::harness` determinism guarantee).
use bs_bench::harness::{run_jobs, Job, JobOutput};
use wifi_backscatter::link::{LinkConfig, Measurement};
use wifi_backscatter::phy::run_uplink;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("uplink");
    let jobs = match which {
        "uplink" => uplink_jobs(),
        "downlink" => downlink_jobs(),
        _ => {
            eprintln!("unknown: {which}");
            std::process::exit(2);
        }
    };
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    match which {
        "uplink" => println!("# d_cm  ber_csi30  ber_rssi30  pkts_per_bit"),
        _ => println!("# d_cm  ber20k  ber10k  ber5k"),
    }
    for record in run_jobs(jobs, workers) {
        for line in &record.lines {
            println!("{line}");
        }
    }
}

fn uplink_jobs() -> Vec<Job> {
    [5u32, 15, 30, 45, 65, 100, 150, 200]
        .into_iter()
        .map(|d_cm| Job {
            fig: "calibrate-uplink".into(),
            section: 0,
            label: format!("uplink d={d_cm}cm"),
            seed: 1000,
            work: Box::new(move || {
                let mut ber_csi = bs_dsp::bits::BerCounter::new();
                let mut ber_rssi = bs_dsp::bits::BerCounter::new();
                let mut ppb = 0.0;
                let runs = 4;
                for seed in 0..runs {
                    let mut cfg = LinkConfig::fig10(d_cm as f64 / 100.0, 100, 30, 1000 + seed);
                    cfg.payload = (0..45).map(|i| (i * 13) % 7 < 3).collect();
                    let r = run_uplink(&cfg);
                    ber_csi.merge(&r.ber);
                    ppb += r.pkts_per_bit / runs as f64;
                    let mut cfg2 = cfg.clone();
                    cfg2.measurement = Measurement::Rssi;
                    cfg2.seed = 2000 + seed;
                    let r2 = run_uplink(&cfg2);
                    ber_rssi.merge(&r2.ber);
                }
                JobOutput {
                    lines: vec![format!(
                        "{d_cm}  {:.4}  {:.4}  {ppb:.1}",
                        ber_csi.raw_ber(),
                        ber_rssi.raw_ber()
                    )],
                    metrics: vec![
                        ("ber_csi".into(), ber_csi.raw_ber()),
                        ("ber_rssi".into(), ber_rssi.raw_ber()),
                    ],
                    work_items: runs * 45 * 30 * 2,
                    ..JobOutput::default()
                }
            }),
        })
        .collect()
}

fn downlink_jobs() -> Vec<Job> {
    use wifi_backscatter::link::DownlinkConfig;
    use wifi_backscatter::phy::run_downlink_ber;
    [50u32, 100, 150, 200, 213, 250, 290, 320, 350]
        .into_iter()
        .map(|d_cm| Job {
            fig: "calibrate-downlink".into(),
            section: 0,
            label: format!("downlink d={d_cm}cm"),
            seed: 3000,
            work: Box::new(move || {
                let mut row = format!("{d_cm}");
                let mut metrics = Vec::new();
                for rate in [20_000u64, 10_000, 5_000] {
                    let mut ber = bs_dsp::bits::BerCounter::new();
                    for seed in 0..10 {
                        let cfg = DownlinkConfig::fig17(d_cm as f64 / 100.0, rate, 3000 + seed);
                        ber.merge(&run_downlink_ber(&cfg, 2000).ber);
                    }
                    row.push_str(&format!("  {:.4}", ber.raw_ber()));
                    metrics.push((format!("ber_{rate}bps"), ber.raw_ber()));
                }
                JobOutput {
                    lines: vec![row],
                    metrics,
                    work_items: 3 * 10 * 2000,
                    ..JobOutput::default()
                }
            }),
        })
        .collect()
}
