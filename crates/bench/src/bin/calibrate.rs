//! Calibration sweep: uplink BER vs distance for CSI and RSSI.
use wifi_backscatter::link::{run_uplink, LinkConfig, Measurement};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("uplink");
    match which {
        "uplink" => uplink(),
        "downlink" => downlink(),
        _ => eprintln!("unknown: {which}"),
    }
}

fn uplink() {
    println!("# d_cm  ber_csi30  ber_rssi30  pkts_per_bit");
    for d_cm in [5u32, 15, 30, 45, 65, 100, 150, 200] {
        let mut ber_csi = bs_dsp::bits::BerCounter::new();
        let mut ber_rssi = bs_dsp::bits::BerCounter::new();
        let mut ppb = 0.0;
        let runs = 4;
        for seed in 0..runs {
            let mut cfg = LinkConfig::fig10(d_cm as f64 / 100.0, 100, 30, 1000 + seed);
            cfg.payload = (0..45).map(|i| (i * 13) % 7 < 3).collect();
            let r = run_uplink(&cfg);
            ber_csi.merge(&r.ber);
            ppb += r.pkts_per_bit / runs as f64;
            let mut cfg2 = cfg.clone();
            cfg2.measurement = Measurement::Rssi;
            cfg2.seed = 2000 + seed;
            let r2 = run_uplink(&cfg2);
            ber_rssi.merge(&r2.ber);
        }
        println!("{d_cm}  {:.4}  {:.4}  {ppb:.1}", ber_csi.raw_ber(), ber_rssi.raw_ber());
    }
}

fn downlink() {
    use wifi_backscatter::link::{run_downlink_ber, DownlinkConfig};
    println!("# d_cm  ber20k  ber10k  ber5k");
    for d_cm in [50u32, 100, 150, 200, 213, 250, 290, 320, 350] {
        let mut row = format!("{d_cm}");
        for rate in [20_000u64, 10_000, 5_000] {
            let mut ber = bs_dsp::bits::BerCounter::new();
            for seed in 0..10 {
                let cfg = DownlinkConfig::fig17(d_cm as f64 / 100.0, rate, 3000 + seed);
                ber.merge(&run_downlink_ber(&cfg, 2000).ber);
            }
            row.push_str(&format!("  {:.4}", ber.raw_ber()));
        }
        println!("{row}");
    }
}
