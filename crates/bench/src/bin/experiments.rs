//! Regenerates every figure of the paper's evaluation, in parallel.
//!
//! ```text
//! experiments all                    # every figure, paper-faithful effort
//! experiments quick                  # every figure at reduced run counts
//! experiments fig10 [seed]           # one figure (positional, back-compat)
//! experiments --figs fig10,fig17     # a subset
//! experiments --jobs 8               # worker count (default: all cores)
//! experiments --seed 42              # master seed (default 20140817)
//! experiments --json out/            # also write out/records.jsonl
//! ```
//!
//! Output is gnuplot-style whitespace-separated tables on stdout, one
//! section per figure, with `#` comment headers — byte-identical for any
//! `--jobs` value (the harness guarantee; see `bs_bench::harness`).
//! EXPERIMENTS.md records a captured run against the paper's numbers and
//! documents the JSON-lines schema behind `--json`.

use bs_bench::harness::{plan, render, run_jobs, Effort, ALL_FIGURES};

/// Parsed command line.
struct Cli {
    figs: Vec<String>,
    effort: Effort,
    seed: u64,
    jobs: usize,
    json_dir: Option<String>,
}

fn main() {
    let cli = match parse(std::env::args().skip(1).collect()) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: experiments [all|quick|<fig>] [seed] \
                       [--figs a,b] [--jobs N] [--seed S] [--json DIR]");
            std::process::exit(2);
        }
    };

    let plan = match plan(&cli.figs, &cli.effort, cli.seed) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let sections = plan.sections;
    let records = run_jobs(plan.jobs, cli.jobs);
    print!("{}", render(&sections, &records));

    if let Some(dir) = cli.json_dir {
        let path = std::path::Path::new(&dir).join("records.jsonl");
        let mut body = String::new();
        for r in &records {
            body.push_str(&r.to_json_line());
            body.push('\n');
        }
        if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, body)) {
            eprintln!("error: writing {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("# wrote {} records to {}", records.len(), path.display());
    }
}

/// Parses flags plus the legacy positional `[mode] [seed]` form.
fn parse(args: Vec<String>) -> Result<Cli, String> {
    let mut figs: Option<Vec<String>> = None;
    let mut effort: Option<Effort> = None;
    let mut seed: Option<u64> = None;
    let mut jobs: Option<usize> = None;
    let mut json_dir = None;
    let mut positional = Vec::new();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--figs" => {
                figs = Some(flag_value("--figs")?.split(',').map(str::to_string).collect());
            }
            "--jobs" => {
                let v = flag_value("--jobs")?;
                jobs = Some(v.parse().map_err(|_| format!("bad --jobs value '{v}'"))?);
            }
            "--seed" => {
                let v = flag_value("--seed")?;
                seed = Some(v.parse().map_err(|_| format!("bad --seed value '{v}'"))?);
            }
            "--json" => json_dir = Some(flag_value("--json")?),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            _ => positional.push(arg),
        }
    }

    // Legacy positional form: `experiments [all|quick|<fig>] [seed]`.
    match positional.first().map(String::as_str) {
        None => {}
        Some("all") => effort = Some(Effort::full()),
        Some("quick") => effort = Some(Effort::quick()),
        Some(fig) => {
            if figs.is_some() {
                return Err("give either a positional figure or --figs, not both".into());
            }
            figs = Some(vec![fig.to_string()]);
        }
    }
    if let Some(s) = positional.get(1) {
        if seed.is_some() {
            return Err("give either a positional seed or --seed, not both".into());
        }
        seed = Some(s.parse().map_err(|_| format!("bad seed '{s}'"))?);
    }
    if positional.len() > 2 {
        return Err(format!("unexpected argument '{}'", positional[2]));
    }

    Ok(Cli {
        figs: figs.unwrap_or_else(|| ALL_FIGURES.iter().map(|f| f.to_string()).collect()),
        effort: effort.unwrap_or_else(Effort::quick),
        seed: seed.unwrap_or(20140817), // SIGCOMM'14 began August 17, 2014
        jobs: jobs.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }),
        json_dir,
    })
}
