//! Regenerates every figure of the paper's evaluation.
//!
//! ```text
//! experiments all            # every figure (slow: tens of minutes)
//! experiments quick          # every figure at reduced run counts
//! experiments fig3 [seed]    # one figure
//! ```
//!
//! Output is gnuplot-style whitespace-separated tables on stdout, one
//! section per figure, with `#` comment headers. EXPERIMENTS.md records a
//! captured run against the paper's numbers.

use bs_bench::experiments::{ablation, ambient, coexistence, downlink, power, uplink};
use wifi_backscatter::link::Measurement;

struct Effort {
    runs: u64,
    dl_kbits: usize,
    fig19_s: f64,
    fp_hours: Vec<f64>,
    office_step_h: f64,
}

impl Effort {
    fn full() -> Self {
        Effort {
            runs: 20,
            dl_kbits: 200,
            fig19_s: 120.0,
            fp_hours: vec![10.0, 12.0, 14.0, 16.0, 18.0],
            office_step_h: 0.5,
        }
    }
    fn quick() -> Self {
        Effort {
            runs: 4,
            dl_kbits: 24,
            fig19_s: 20.0,
            fp_hours: vec![14.0],
            office_step_h: 2.0,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("quick");
    let seed: u64 = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20140817); // SIGCOMM'14 began August 17, 2014

    let effort = if which == "all" {
        Effort::full()
    } else {
        Effort::quick()
    };

    let run_all = matches!(which, "all" | "quick");
    let want = |name: &str| run_all || which == name;

    if want("fig3") {
        fig3(seed);
    }
    if want("fig4") {
        fig4(seed);
    }
    if want("fig5") {
        fig5(seed);
    }
    if want("fig6") {
        fig6(seed);
    }
    if want("fig10") {
        fig10(seed, &effort);
    }
    if want("fig11") {
        fig11(seed, &effort);
    }
    if want("fig12") {
        fig12(seed, &effort);
    }
    if want("fig14") {
        fig14(seed, &effort);
    }
    if want("fig15") {
        fig15(seed, &effort);
    }
    if want("fig16") {
        fig16(seed, &effort);
    }
    if want("fig17") {
        fig17(seed, &effort);
    }
    if want("fig18") {
        fig18(seed, &effort);
    }
    if want("fig19") {
        fig19(seed, &effort);
    }
    if want("fig20") {
        fig20(seed, &effort);
    }
    if want("power") {
        power_exp();
    }
    if want("ablation") {
        ablation_exp(seed, &effort);
    }
}

fn ablation_exp(seed: u64, e: &Effort) {
    let runs = e.runs.min(6);
    println!("\n# === Ablations: what each design choice buys ===");
    println!("# variant  ber");
    println!("# -- combining at 55 cm --");
    for r in ablation::combining_ablation(0.55, runs, seed) {
        println!("{}  {:.2e}", r.variant.replace(' ', "_"), r.ber);
    }
    println!("# -- slicer at 45 cm --");
    for r in ablation::hysteresis_ablation(runs, seed) {
        println!("{}  {:.2e}", r.variant.replace(' ', "_"), r.ber);
    }
    println!("# -- measurement artifacts at 65 cm --");
    for r in ablation::artifact_ablation(0.65, runs, seed) {
        println!("{}  {:.2e}", r.variant.replace(' ', "_"), r.ber);
    }
    println!("# -- conditioning window under strong fading, 35 cm --");
    for r in ablation::conditioning_ablation(runs, seed) {
        println!("{}  {:.2e}", r.variant.replace(' ', "_"), r.ber);
    }
}

fn fig3(seed: u64) {
    println!("\n# === Fig 3: raw CSI, tag at 5 cm (two distinct levels expected) ===");
    let t = uplink::raw_csi_trace(0.05, 3000, seed);
    println!("# sub-channel {} | separation (gap/std) = {:.2}", t.subchannel, t.separation);
    println!("# packet  csi_amplitude");
    for (i, a) in t.amplitude.iter().enumerate().step_by(10) {
        println!("{i}  {a:.3}");
    }
}

fn fig4(seed: u64) {
    for (label, d_m) in [("5 cm (paper's setup)", 0.05), ("10 cm", 0.10)] {
        println!("\n# === Fig 4 @ {label}: PDFs of normalised channel values, 30 sub-channels ===");
        let pdfs = uplink::normalized_pdfs(d_m, 42_000, seed);
        let bimodal = pdfs.iter().filter(|p| p.bimodal).count();
        println!(
            "# {bimodal}/30 sub-channels bimodal (paper: 'about 30 percent' show two Gaussians at +/-1; \
             see EXPERIMENTS.md for the close-range deviation)"
        );
        println!("# subchannel  bin_center  density");
        for p in &pdfs {
            for &(c, d) in p.pdf.iter().step_by(4) {
                println!("{}  {c:.2}  {d:.4}", p.subchannel);
            }
        }
    }
}

fn fig5(seed: u64) {
    println!("\n# === Fig 5: sub-channels with BER < 1e-2 vs distance ===");
    println!("# distance_cm  n_good  good_subchannels");
    for (d, good) in uplink::good_subchannels_vs_distance(&[5, 15, 25, 35, 45, 55, 65], seed) {
        let list: Vec<String> = good.iter().map(|g| g.to_string()).collect();
        println!("{d}  {}  {}", good.len(), list.join(","));
    }
}

fn fig6(seed: u64) {
    println!("\n# === Fig 6: raw CSI, tag at 1 m (levels merge into noise) ===");
    let t = uplink::raw_csi_trace(1.0, 3000, seed);
    println!("# sub-channel {} | separation (gap/std) = {:.2}", t.subchannel, t.separation);
    println!("# packet  csi_amplitude");
    for (i, a) in t.amplitude.iter().enumerate().step_by(10) {
        println!("{i}  {a:.3}");
    }
}

fn fig10(seed: u64, e: &Effort) {
    let distances = [5, 15, 25, 35, 45, 55, 65];
    for (label, m) in [("a: CSI", Measurement::Csi), ("b: RSSI", Measurement::Rssi)] {
        println!("\n# === Fig 10{label}: uplink BER vs distance ===");
        println!("# distance_cm  pkts_per_bit  ber");
        for p in uplink::uplink_ber_vs_distance(m, &distances, &[3, 6, 30], e.runs, seed) {
            println!("{}  {}  {:.2e}", p.distance_cm, p.pkts_per_bit, p.ber);
        }
    }
}

fn fig11(seed: u64, e: &Effort) {
    println!("\n# === Fig 11: frequency diversity (our algorithm vs random sub-channel) ===");
    println!("# distance_cm  ber_ours  ber_random");
    for (d, ours, random) in
        uplink::frequency_diversity(&[5, 15, 25, 35, 45, 55, 65], e.runs, seed)
    {
        println!("{d}  {ours:.2e}  {random:.2e}");
    }
}

fn fig12(seed: u64, e: &Effort) {
    println!("\n# === Fig 12: achievable bit rate vs helper transmission rate ===");
    println!("# helper_pps  achievable_bps");
    for (pps, bps) in uplink::bitrate_vs_helper_rate(
        &[240, 500, 1000, 1500, 2000, 2500, 3070],
        e.runs.min(5),
        seed,
    ) {
        println!("{pps}  {bps}");
    }
}

fn fig14(seed: u64, e: &Effort) {
    println!("\n# === Fig 14: packet delivery probability vs helper location ===");
    println!("# location  delivery_probability");
    for (loc, p) in uplink::delivery_vs_helper_location(e.runs, seed) {
        println!("{loc}  {p:.2}");
    }
}

fn fig15(seed: u64, e: &Effort) {
    println!("\n# === Fig 15: achievable bit rate from ambient office traffic ===");
    println!("# hour  load_pps  achievable_bps");
    for s in ambient::ambient_office(e.office_step_h, e.runs.min(3), seed) {
        println!("{:.1}  {:.0}  {}", s.hour, s.load_pps, s.achievable_bps);
    }
}

fn fig16(seed: u64, e: &Effort) {
    println!("\n# === Fig 16: achievable bit rate from beacons only (RSSI) ===");
    println!("# beacons_per_s  achievable_bps");
    for (b, r) in ambient::beacons_only(&[10, 20, 30, 40, 50, 60, 70], e.runs.min(3), seed) {
        println!("{b}  {r}");
    }
}

fn fig17(seed: u64, e: &Effort) {
    println!("\n# === Fig 17: downlink BER vs distance ===");
    println!("# distance_cm  rate_bps  ber");
    let distances = [50, 100, 150, 200, 213, 250, 290, 320, 350];
    for p in downlink::downlink_ber_vs_distance(
        &distances,
        &[20_000, 10_000, 5_000],
        e.dl_kbits,
        e.runs,
        seed,
    ) {
        println!("{}  {}  {:.2e}", p.distance_cm, p.bit_rate_bps, p.ber);
    }
}

fn fig18(seed: u64, e: &Effort) {
    println!("\n# === Fig 18: downlink false positives per hour ===");
    println!("# hour  false_positives_per_hour");
    for s in downlink::downlink_false_positives(&e.fp_hours, seed) {
        println!("{:.0}  {:.0}", s.hour, s.per_hour);
    }
}

fn fig19(seed: u64, e: &Effort) {
    for d_cm in [5u32, 30] {
        println!("\n# === Fig 19 ({d_cm} cm): Wi-Fi goodput with/without the tag ===");
        println!("# location  activity  goodput_MBps");
        let points =
            coexistence::throughput_with_tag(d_cm, &coexistence::fig19_activities(), e.fig19_s, seed);
        for p in &points {
            let label = match p.activity {
                coexistence::TagActivity::Absent => "none".to_string(),
                coexistence::TagActivity::Modulating { bit_rate_bps } => {
                    format!("{bit_rate_bps}bps")
                }
            };
            println!("{}  {}  {:.2}", p.location, label, p.goodput_mbytes);
        }
        let (per_loc, mean) = coexistence::relative_impact(&points);
        println!("# per-location max impact: {per_loc:?}");
        println!("# mean relative impact of tag: {:.1}%", mean * 100.0);
    }
}

fn fig20(seed: u64, e: &Effort) {
    println!("\n# === Fig 20: correlation length needed vs distance ===");
    println!("# distance_cm  correlation_length");
    for (d, l) in uplink::correlation_length_vs_distance(
        &[80, 100, 120, 140, 160, 180, 200, 210, 220],
        &[1, 2, 4, 10, 20, 40, 80, 150],
        e.runs.min(3),
        seed,
    ) {
        match l {
            Some(l) => println!("{d}  {l}"),
            None => println!("{d}  >150"),
        }
    }
}

fn power_exp() {
    println!("\n# === Section 6 power & harvesting ===");
    println!("# scenario | harvested_uW | load_uW | duty");
    for r in power::power_table() {
        println!(
            "{}  {:.2}  {:.2}  {:.2}",
            r.scenario.replace(' ', "_"),
            r.harvested_uw,
            r.load_uw,
            r.duty
        );
    }
}
