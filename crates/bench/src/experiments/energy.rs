//! Energy sweep: delivered goodput, poll-waste and brownout rate versus
//! harvest regime × polling policy.
//!
//! This backs the harness's `energy` figure (not a paper figure — §6 of
//! the paper measures the prototype's power budget; this measures what
//! that budget *does* to a deployment once the harvest-store-spend loop
//! is closed). Every point runs the sharded fleet with the energy
//! co-simulation armed: tags harvest from their grid distance to the
//! reader, store in a small capacitor, brown out when the balance goes
//! negative and miss their polls until they recover. The two polling
//! policies are run on **paired seeds** — same topology, same initial
//! charges, same fault draws — so the only difference between a `naive`
//! and an `aware` row is the scheduler's reaction to silence.
//!
//! Seed partitioning follows the harness contract: per-tag initial
//! charge comes from a tag-keyed stream and harvest is a pure function
//! of position, so a point reproduces byte-identically whatever the
//! worker count.

use bs_channel::faults::FaultPlan;
use bs_net::fleet::{run_fleet, FleetConfig, FleetEnergyConfig, FleetRun};
use bs_net::gateway::{run_gateway, GatewayConfig, GatewayRun, PollingPolicy, TagProfile};
use bs_tag::energy::{CapacitorConfig, EnergyConfig, EnergyPolicy};

/// The figure's harvest regimes: `(name, reader tx dBm, ambient µW)`.
/// The listen draw is 10 µW, so `strong`'s ambient floor sustains a
/// listening tag anywhere in the cell, `weak` starves the cell edge
/// (RF harvest must make up the deficit), and `famine` browns out most
/// of the population.
pub const REGIMES: &[(&str, f64, f64)] = &[
    ("strong", 36.0, 12.0),
    ("weak", 30.0, 4.0),
    ("famine", 24.0, 0.5),
];

/// Figure deployment: `(gateways, tags_per_gateway)` — small enough for
/// the debug-profile budget, large enough for a distance spread.
pub const POPULATION: (usize, usize) = (9, 6);

/// Epochs per figure point.
pub const EPOCHS: u32 = 2;

/// The figure's storage element: a 10 µF capacitor (20 µJ full) so the
/// harvest regimes separate within one epoch instead of after hours of
/// simulated time.
pub fn small_cap() -> CapacitorConfig {
    CapacitorConfig {
        capacitance_uf: 10.0,
        ..CapacitorConfig::default()
    }
}

/// One measured energy point.
#[derive(Debug, Clone)]
pub struct EnergyPoint {
    /// Harvest regime name (see [`REGIMES`]).
    pub regime: &'static str,
    /// Polling policy the gateways ran.
    pub policy: PollingPolicy,
    /// Total tags.
    pub tags: u32,
    /// Aggregate goodput (bits per wall-clock simulated second).
    pub goodput_bps: f64,
    /// Bytes delivered fleet-wide.
    pub delivered_bytes: u64,
    /// Poll slots scheduled fleet-wide.
    pub polls: u64,
    /// Poll slots wasted on silent (browned-out) tags.
    pub missed_polls: u64,
    /// `missed_polls / polls` (0 when no polls were scheduled).
    pub poll_waste: f64,
    /// Brownouts per tag across the run.
    pub brownout_rate: f64,
    /// Recoveries fleet-wide.
    pub recoveries: u64,
    /// The run's per-tag FNV digest (the determinism fingerprint).
    pub digest: u64,
}

/// The sweep's deployment for one `(regime, policy)` cell: the standard
/// fleet with the energy model armed and a small storage element.
pub fn energy_fleet_config(
    tx_power_dbm: f64,
    ambient_uw: f64,
    polling: PollingPolicy,
    seed: u64,
) -> FleetConfig {
    let mut cfg = FleetConfig::default()
        .with_population(POPULATION.0, POPULATION.1)
        .with_epochs(EPOCHS)
        .with_faults(FaultPlan::preset("loss", 0.2, seed ^ 0xE4E2_6100).expect("known preset"))
        .with_seed(seed)
        .with_energy(FleetEnergyConfig {
            tx_power_dbm,
            ambient_uw,
            capacitor: small_cap(),
            policy: EnergyPolicy::SleepUntilCharged,
        });
    cfg.gateway.polling = polling;
    cfg
}

/// Measures one `(regime, policy)` cell; the paired seed means the
/// `naive` and `aware` rows of a regime differ only in scheduling.
pub fn energy_point(
    regime: &'static str,
    tx_power_dbm: f64,
    ambient_uw: f64,
    policy: PollingPolicy,
    seed: u64,
) -> EnergyPoint {
    let run = run_fleet(&energy_fleet_config(tx_power_dbm, ambient_uw, policy, seed), 1)
        .expect("sweep population fits the address space");
    point_of(regime, policy, &run)
}

/// Folds a [`FleetRun`] into the figure's point shape.
pub fn point_of(regime: &'static str, policy: PollingPolicy, run: &FleetRun) -> EnergyPoint {
    EnergyPoint {
        regime,
        policy,
        tags: run.tags,
        goodput_bps: run.aggregate_goodput_bps,
        delivered_bytes: run.delivered_bytes,
        polls: run.polls,
        missed_polls: run.missed_polls,
        poll_waste: if run.polls > 0 {
            run.missed_polls as f64 / run.polls as f64
        } else {
            0.0
        },
        brownout_rate: run.brownouts as f64 / run.tags.max(1) as f64,
        recoveries: run.recoveries,
        digest: run.digest,
    }
}

/// The starving-tag acceptance scenario: one immortal tag with a long
/// transfer keeps the reader busy while three starving tags — 47 µF
/// reservoirs against a 2 µW trickle that cannot cover the 10 µW listen
/// draw — drain, brown out and stay dark for seconds at a stretch. A
/// naive scheduler keeps burning query-plus-window airtime on their
/// silence every cycle; the energy-aware backoff converts most of those
/// slots into service for the tag that can still talk.
pub fn starving_tags(harvest_uw: f64) -> Vec<TagProfile> {
    (0..4u8)
        .map(|i| {
            let bytes = if i == 0 { 2048 } else { 256 };
            let profile = TagProfile::new(
                i + 1,
                (0..bytes)
                    .map(|b: usize| ((b + i as usize * 7) % 251) as u8)
                    .collect(),
            );
            if i == 0 {
                profile // one immortal tag keeps the gateway busy
            } else {
                profile.with_energy(EnergyConfig {
                    capacitor: CapacitorConfig {
                        capacitance_uf: 47.0,
                        ..CapacitorConfig::default()
                    },
                    harvest_uw,
                    policy: EnergyPolicy::SleepUntilCharged,
                })
            }
        })
        .collect()
}

/// The starving scenario's trickle harvest (µW): far below the listen
/// draw, so a browned-out tag needs tens of simulated seconds to crawl
/// back to its wake threshold.
pub const STARVING_HARVEST_UW: f64 = 2.0;

/// Runs the starving scenario under both policies on one paired seed:
/// `(naive, aware)`.
pub fn starving_pair(harvest_uw: f64, seed: u64) -> (GatewayRun, GatewayRun) {
    let tags = starving_tags(harvest_uw);
    let base = GatewayConfig::default()
        .with_faults(FaultPlan::preset("loss", 0.3, 7).expect("known preset"))
        .with_seed(seed);
    let naive = run_gateway(&tags, &base).expect("distinct addresses");
    let aware = run_gateway(&tags, &base.with_polling(PollingPolicy::EnergyAware))
        .expect("distinct addresses");
    (naive, aware)
}

/// `missed_polls / polls` of one gateway run.
pub fn poll_waste(run: &GatewayRun) -> f64 {
    if run.polls == 0 {
        return 0.0;
    }
    run.missed_polls as f64 / run.polls as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_point_is_deterministic_and_worker_invariant() {
        let (_, tx, amb) = REGIMES[2];
        let cfg = energy_fleet_config(tx, amb, PollingPolicy::Naive, 5);
        let a = run_fleet(&cfg, 1).unwrap();
        let b = run_fleet(&cfg, 4).unwrap();
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn famine_wastes_polls_where_strong_does_not() {
        let strong = energy_point("strong", REGIMES[0].1, REGIMES[0].2, PollingPolicy::Naive, 9);
        let famine = energy_point("famine", REGIMES[2].1, REGIMES[2].2, PollingPolicy::Naive, 9);
        assert!(
            famine.poll_waste > strong.poll_waste,
            "famine {:.3} vs strong {:.3} poll waste",
            famine.poll_waste,
            strong.poll_waste
        );
        assert!(
            famine.goodput_bps < strong.goodput_bps,
            "famine {:.1} bps must trail strong {:.1} bps",
            famine.goodput_bps,
            strong.goodput_bps
        );
        assert!(famine.brownout_rate > 0.0);
    }

    #[test]
    fn starving_scenario_meets_the_acceptance_shape() {
        let (naive, aware) = starving_pair(STARVING_HARVEST_UW, 3);
        assert!(
            poll_waste(&naive) >= 0.30,
            "naive must waste ≥30% of slots, got {:.3}",
            poll_waste(&naive)
        );
        assert!(
            aware.missed_polls * 2 <= naive.missed_polls,
            "aware must recover ≥ half the wasted slots: {} vs {}",
            aware.missed_polls,
            naive.missed_polls
        );
        assert!(aware.aggregate_goodput_bps() >= naive.aggregate_goodput_bps());
        assert!(!naive.truncated && !aware.truncated);
    }
}
