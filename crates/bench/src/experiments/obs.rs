//! Stage-profiling runs: the `obs` figure.
//!
//! Not a paper figure — this arms a [`MemRecorder`](bs_dsp::obs::MemRecorder)
//! on representative
//! uplink, downlink and session runs and reports where the simulated time
//! and work went, stage by stage. It is the worked example for the
//! observability layer (EXPERIMENTS.md §"Reading a stage profile") and the
//! one harness figure whose records carry an `"obs"` JSON object.
//!
//! Everything recorded is simulated time and discrete work counts, so the
//! profile obeys the same determinism contract as every other figure: the
//! per-run seeds derive from the point coordinates alone and the output is
//! byte-identical under any `--jobs`.

use bs_dsp::obs::ObsReport;
use wifi_backscatter::link::{DownlinkConfig, LinkConfig, Measurement};
use wifi_backscatter::phy::{run_downlink_ber_observed, run_uplink_observed};
use wifi_backscatter::session::{Reader, ReaderConfig};

/// One profiled operating point: the merged observability report across
/// its runs plus the headline result the profile belongs to.
#[derive(Debug, Clone)]
pub struct ObsPoint {
    /// Merged report: spans append per run, counters add, gauges keep the
    /// last run's value.
    pub report: ObsReport,
    /// Raw BER across the runs (0 for session profiles, which only
    /// complete on clean decodes).
    pub ber: f64,
    /// Runs merged into the report.
    pub runs: u64,
}

impl ObsPoint {
    /// Renders the per-stage table lines: one line per distinct stage with
    /// span count, total items and total simulated microseconds.
    pub fn stage_lines(&self) -> Vec<String> {
        let mut stages: Vec<&str> = self.report.spans.iter().map(|s| s.stage.as_str()).collect();
        stages.sort_unstable();
        stages.dedup();
        stages
            .iter()
            .map(|stage| {
                let (mut n, mut items, mut us) = (0u64, 0u64, 0u64);
                for s in self.report.spans_for(stage) {
                    n += 1;
                    items += s.items;
                    us += s.duration_us();
                }
                format!("{stage}  {n}  {items}  {us}")
            })
            .collect()
    }
}

/// Per-run seed derivation shared by all profiles (same golden-ratio
/// stride as the fault sweep, so profiles pair with it when needed).
fn run_seed(seed: u64, r: u64) -> u64 {
    seed.wrapping_add(r.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Profiles the CSI uplink pipeline at `d_m` metres over `runs` channel
/// realisations.
pub fn uplink_profile(d_m: f64, runs: u64, seed: u64) -> ObsPoint {
    let mut report = ObsReport::new();
    let mut ber = bs_dsp::bits::BerCounter::new();
    for r in 0..runs {
        let mut cfg = LinkConfig::fig10(d_m, 100, 10, run_seed(seed, r));
        cfg.measurement = Measurement::Csi;
        cfg.payload = (0..30).map(|i| (i * 3) % 7 < 3).collect();
        let run = run_uplink_observed(&cfg);
        ber.merge(&run.ber);
        report.merge(run.obs.as_ref().expect("observed run must carry a report"));
    }
    ObsPoint {
        report,
        ber: ber.raw_ber(),
        runs,
    }
}

/// Profiles the downlink envelope/comparator pipeline at `d_m` metres and
/// `rate_bps`, `bits` payload bits per run.
pub fn downlink_profile(d_m: f64, rate_bps: u64, bits: usize, runs: u64, seed: u64) -> ObsPoint {
    let mut report = ObsReport::new();
    let mut ber = bs_dsp::bits::BerCounter::new();
    for r in 0..runs {
        let cfg = DownlinkConfig::fig17(d_m, rate_bps, run_seed(seed, r));
        let run = run_downlink_ber_observed(&cfg, bits);
        ber.merge(&run.ber);
        report.merge(run.obs.as_ref().expect("observed run must carry a report"));
    }
    ObsPoint {
        report,
        ber: ber.raw_ber(),
        runs,
    }
}

/// Profiles full query/response sessions (downlink query, uplink
/// response, ACK) at close range, where every query completes.
pub fn session_profile(runs: u64, seed: u64) -> ObsPoint {
    let mut report = ObsReport::new();
    let mut completed = 0u64;
    for r in 0..runs {
        let mut reader = Reader::new(ReaderConfig::default(), run_seed(seed, r));
        let payload: Vec<bool> = (0..16).map(|i| i % 3 != 1).collect();
        let out = reader
            .query_observed(0x2A, &payload)
            .expect("close-range session must complete");
        completed += 1;
        report.merge(out.obs.as_ref().expect("observed query must carry a report"));
    }
    ObsPoint {
        report,
        ber: 0.0,
        runs: completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uplink_profile_is_deterministic_and_rich() {
        let a = uplink_profile(0.1, 2, 7);
        let b = uplink_profile(0.1, 2, 7);
        assert_eq!(a.report, b.report);
        assert_eq!(a.report.to_json(), b.report.to_json());
        assert!(a.report.distinct_stages() >= 4, "{:?}", a.report.spans);
        assert!(a.report.counter("uplink.packets-delivered") > 0);
        assert_eq!(a.report.counter("uplink.decode-attempts"), 2);
    }

    #[test]
    fn downlink_profile_reaches_tag_stages() {
        let p = downlink_profile(0.5, 20_000, 200, 1, 11);
        assert!(p.report.spans_for("downlink.envelope").count() > 0);
        assert!(p.report.spans_for("tag.comparator").count() > 0);
        assert!(p.report.counter("downlink.bits-sent") >= 200);
        assert!(p.report.gauge("tag.energy-uj").is_some());
    }

    #[test]
    fn session_profile_spans_both_directions() {
        let p = session_profile(1, 3);
        assert_eq!(p.runs, 1);
        assert!(p.report.counter("session.query-attempts") >= 1);
        assert!(p.report.spans_for("downlink.encode").count() > 0);
        assert!(p.report.spans_for("uplink.slice").count() > 0);
    }

    #[test]
    fn stage_lines_are_sorted_and_cover_every_stage() {
        let p = uplink_profile(0.1, 1, 5);
        let lines = p.stage_lines();
        assert_eq!(lines.len(), p.report.distinct_stages());
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
    }
}
