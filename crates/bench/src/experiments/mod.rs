//! Experiment runners, one per figure of the paper's evaluation.
//!
//! | module | figures |
//! |---|---|
//! | [`uplink`] | 3, 4, 5, 6, 10, 11, 12, 14, 20 |
//! | [`ambient`] | 15, 16 |
//! | [`downlink`] | 17, 18 |
//! | [`coexistence`] | 19 |
//! | [`power`] | §6 power/harvesting claims |
//! | [`ablation`] | design-choice ablations (combining, hysteresis, artifacts, conditioning) |
//! | [`faults`] | fault-injection sweep: degradation with mitigations off vs on |
//! | [`net`] | transport sweep: goodput vs loss severity × ARQ window over `bs-net` |
//! | [`fec`] | FEC sweep: goodput vs traffic regime × coding scheme over `TrafficLink` |
//! | [`fleet`] | fleet sweep: aggregate goodput, fairness and tail latency vs deployment population over `bs_net::fleet` |
//! | [`phy`] | PHY mode sweep: tag goodput vs helper-traffic rate, presence vs codeword translation |
//! | [`obs`] | stage profiling: per-stage spans/counters from armed-recorder runs |
//! | [`stream`] | streaming-decode equivalence: batch vs chunked feed/finish, peak resident window |
//! | [`energy`] | energy sweep: goodput, poll waste and brownout rate vs harvest regime × polling policy |

pub mod ablation;
pub mod ambient;
pub mod coexistence;
pub mod downlink;
pub mod energy;
pub mod faults;
pub mod fec;
pub mod fleet;
pub mod net;
pub mod obs;
pub mod phy;
pub mod power;
pub mod stream;
pub mod uplink;

/// Finds the fastest rate among `candidates` whose measured BER stays
/// below `target_ber`, given a closure that measures BER at a rate.
/// Returns 0 if none qualifies.
pub fn achievable_rate(
    candidates: &[u64],
    target_ber: f64,
    mut ber_at: impl FnMut(u64) -> f64,
) -> u64 {
    let mut sorted: Vec<u64> = candidates.to_vec();
    sorted.sort_unstable();
    let mut best = 0;
    for &rate in &sorted {
        if ber_at(rate) < target_ber {
            best = rate;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn achievable_rate_picks_fastest_passing() {
        // BER grows with rate; threshold passes 100 and 200 only.
        let r = achievable_rate(&[1000, 100, 500, 200], 1e-2, |rate| rate as f64 / 25_000.0);
        assert_eq!(r, 200);
    }

    #[test]
    fn achievable_rate_none_passes() {
        let r = achievable_rate(&[100, 200], 1e-2, |_| 1.0);
        assert_eq!(r, 0);
    }

    #[test]
    fn achievable_rate_all_pass() {
        let r = achievable_rate(&[100, 200, 500], 1e-2, |_| 0.0);
        assert_eq!(r, 500);
    }
}
