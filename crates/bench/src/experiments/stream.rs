//! The `stream` figure: streaming-decode equivalence and resident-set
//! evidence.
//!
//! Each point captures one fig-10 uplink frame, decodes it batch
//! ([`UplinkDecoder::decode`]) and again through the streaming session
//! ([`UplinkDecoder::stream`] → feed in `chunk`-packet bursts →
//! `finish()`), and reports whether the two outputs are bit-for-bit
//! identical together with the session's peak resident window. The
//! comparison is pure decode output — no wall-clock numbers — so the
//! figure stays byte-identical under any `--jobs` count (the wall-clock
//! side of the streaming story lives in the `stream_micro` bench smoke,
//! which writes `BENCH_stream.json`).

use wifi_backscatter::link::{capture_uplink, LinkConfig, Measurement};
use wifi_backscatter::series::SeriesBundle;
use wifi_backscatter::uplink::{UplinkDecoder, UplinkDecoderConfig};

/// One measured point of the `stream` figure.
pub struct StreamPoint {
    /// Packets in the captured frame (also what the streaming session
    /// buffers, so `peak_resident == packets` when nothing is rejected).
    pub packets: u64,
    /// High-water mark of the streaming session's buffered packets.
    pub peak_resident: u64,
    /// Streaming and batch decode agreed bit for bit (the tentpole
    /// contract; a `false` here is a decoder bug).
    pub identical: bool,
    /// The batch decode found a frame at all.
    pub detected: bool,
    /// Payload bits that decoded wrong or unresolved, against the
    /// transmitted payload.
    pub bit_errors: u64,
}

/// Captures one close-range fig-10 frame and decodes it both ways,
/// feeding the streaming session in `chunk`-packet bursts
/// (`chunk = 0` means one call with the whole capture). The seed
/// arithmetic is keyed on the measurement only — every chunk size of a
/// measurement decodes the *same* capture, so the table rows differ only
/// in burst size — and any scheduling of the points reproduces the
/// serial sweep bit for bit.
pub fn stream_point(measurement: Measurement, chunk: usize, seed: u64) -> StreamPoint {
    let kind = match measurement {
        Measurement::Csi => 1u64,
        Measurement::Rssi => 2u64,
    };
    let mut cfg = LinkConfig::fig10(0.15, 100, 10, seed + kind * 1009);
    cfg.measurement = measurement;
    let capture = capture_uplink(&cfg);
    let dcfg = match measurement {
        Measurement::Csi => UplinkDecoderConfig::csi(100, cfg.payload.len()),
        Measurement::Rssi => UplinkDecoderConfig::rssi(100, cfg.payload.len()),
    };
    let dec = UplinkDecoder::new(dcfg);

    let batch = dec.decode(&capture.bundle, capture.start_us);

    let mut stream = dec.stream(capture.bundle.channels(), capture.start_us);
    let packets = capture.bundle.packets();
    let step = if chunk == 0 { packets.max(1) } else { chunk };
    let mut at = 0usize;
    while at < packets {
        let end = (at + step).min(packets);
        let burst = SeriesBundle {
            t_us: capture.bundle.t_us[at..end].to_vec(),
            series: capture
                .bundle
                .series
                .iter()
                .map(|s| s[at..end].to_vec())
                .collect(),
        };
        let consumed = stream.feed(&burst);
        assert_eq!(consumed.accepted, end - at, "unbounded session must accept");
        at = end;
    }
    let peak_resident = stream.peak_resident() as u64;
    let streamed = stream.finish();

    let identical = streamed == batch;
    let detected = batch.is_some();
    let bit_errors = match &batch {
        Some(out) => cfg
            .payload
            .iter()
            .zip(&out.bits)
            .filter(|&(&sent, got)| *got != Some(sent))
            .count() as u64,
        None => cfg.payload.len() as u64,
    };
    StreamPoint {
        packets: packets as u64,
        peak_resident,
        identical,
        detected,
        bit_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_point_is_identical_and_deterministic() {
        let a = stream_point(Measurement::Csi, 64, 7);
        assert!(a.identical);
        assert!(a.detected);
        assert_eq!(a.peak_resident, a.packets);
        let b = stream_point(Measurement::Csi, 64, 7);
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.bit_errors, b.bit_errors);
    }

    #[test]
    fn stream_point_chunk_size_does_not_change_the_outcome() {
        let one = stream_point(Measurement::Rssi, 1, 7);
        assert!(one.identical, "per-packet streaming must match batch");
        let whole = stream_point(Measurement::Rssi, 0, 7);
        assert!(whole.identical, "whole-capture feed must match batch");
        // Same measurement → same capture, whatever the burst size.
        assert_eq!(one.packets, whole.packets);
        assert_eq!(one.bit_errors, whole.bit_errors);
    }
}
