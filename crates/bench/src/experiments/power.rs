//! §6 power and harvesting claims: the tag power budget, continuous
//! operation at one foot from the reader, and the 50 % duty cycle at 10 km
//! from a TV tower.

use bs_tag::harvester::{duty_cycle, harvested_uw, wifi_incident_dbm, TvTower};
use bs_tag::power::{RX_CIRCUIT_UW, TX_CIRCUIT_UW};

/// One row of the power-budget table.
#[derive(Debug, Clone)]
pub struct PowerRow {
    /// Scenario label.
    pub scenario: String,
    /// Harvested power (µW).
    pub harvested_uw: f64,
    /// Load (µW).
    pub load_uw: f64,
    /// Resulting duty cycle (1.0 = continuous).
    pub duty: f64,
}

/// Regenerates the §6 harvesting table: Wi-Fi at several distances and TV
/// at several ranges, against the analog circuits' load and the
/// full-system load.
pub fn power_table() -> Vec<PowerRow> {
    let analog = TX_CIRCUIT_UW + RX_CIRCUIT_UW;
    let full_system = analog + 5.0; // + duty-cycled MCU average
    let mut rows = Vec::new();
    for (label, d) in [("Wi-Fi @ 1 ft", 0.3048), ("Wi-Fi @ 1 m", 1.0), ("Wi-Fi @ 3 m", 3.0)] {
        let h = harvested_uw(wifi_incident_dbm(16.0, d));
        rows.push(PowerRow {
            scenario: format!("{label} vs tx+rx circuits"),
            harvested_uw: h,
            load_uw: analog,
            duty: duty_cycle(h, analog),
        });
    }
    let tv = TvTower::default();
    for (label, d) in [("TV @ 5 km", 5_000.0), ("TV @ 10 km", 10_000.0), ("TV @ 20 km", 20_000.0)]
    {
        let h = tv.harvested_uw(d);
        rows.push(PowerRow {
            scenario: format!("{label} vs full system"),
            harvested_uw: h,
            load_uw: full_system,
            duty: duty_cycle(h, full_system),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_reproduces_paper_claims() {
        let rows = power_table();
        let find = |s: &str| rows.iter().find(|r| r.scenario.contains(s)).unwrap();
        // §6: continuous at one foot.
        assert_eq!(find("1 ft").duty, 1.0);
        // §6: ~50 % duty at 10 km TV.
        let tv = find("10 km");
        assert!((0.25..=0.85).contains(&tv.duty), "duty {}", tv.duty);
        // Wi-Fi harvesting alone fails at 3 m.
        assert!(find("3 m").duty < 1.0);
    }
}
