//! Fig. 19: effect of the tag's modulation on a normal Wi-Fi
//! transmitter–receiver pair with rate adaptation.
//!
//! The paper stress-tests a UDP flow (Lenovo laptop → Linksys AP) with the
//! tag continuously modulating right next to the receiver, and finds the
//! throughput differences stay within the measurement variance because
//! rate adaptation absorbs the small channel perturbation. We reproduce
//! this by simulating the pair's SNR trajectory through the scene — with
//! the tag absent, at 100 bps and at 1 kbps — and feeding it to the
//! hysteresis rate adapter.

use bs_channel::geometry::{Testbed, TestbedLocation};
use bs_channel::scene::{Scene, SceneConfig};
use bs_channel::TagState;
use bs_dsp::SimRng;
use bs_wifi::ofdm::csi_subchannel_offsets;
use bs_wifi::rate_adapt::RateAdapter;

/// Tag behaviour during a coexistence run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagActivity {
    /// Tag absent (baseline).
    Absent,
    /// Continuously modulating at the given bit rate.
    Modulating {
        /// Tag bit rate (bps).
        bit_rate_bps: u64,
    },
}

/// One Fig. 19 measurement.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputPoint {
    /// Wi-Fi transmitter location (2–5 in the Fig. 13 testbed).
    pub location: u32,
    /// Tag↔receiver distance (cm): 5 or 30 in the paper.
    pub tag_distance_cm: u32,
    /// Tag activity.
    pub activity: TagActivity,
    /// Mean UDP goodput (MB/s) over the two-minute run.
    pub goodput_mbytes: f64,
}

/// Runs the Fig. 19 experiment: for each transmitter location and each tag
/// activity, simulate `duration_s` of per-packet SNR observations (500
/// observations/s, mirroring the paper's 500 ms logging granularity well
/// oversampled) through the rate adapter and report mean goodput.
pub fn throughput_with_tag(
    tag_distance_cm: u32,
    activities: &[TagActivity],
    duration_s: f64,
    seed: u64,
) -> Vec<ThroughputPoint> {
    (0..TestbedLocation::HELPER_LOCATIONS.len())
        .flat_map(|i| throughput_at_location(tag_distance_cm, i, activities, duration_s, seed))
        .collect()
}

/// Fig. 19, one transmitter location: the goodput points for every tag
/// activity with the Wi-Fi transmitter at location `index + 2`. The scene
/// seed depends only on `(seed, index)`, so per-location jobs reproduce
/// the [`throughput_with_tag`] sweep exactly.
pub fn throughput_at_location(
    tag_distance_cm: u32,
    index: usize,
    activities: &[TagActivity],
    duration_s: f64,
    seed: u64,
) -> Vec<ThroughputPoint> {
    let tb = Testbed::new();
    let offsets = csi_subchannel_offsets();
    let mut out = Vec::new();
    {
        let (i, loc) = (index, TestbedLocation::HELPER_LOCATIONS[index]);
        for &activity in activities {
            // Receiver at location 1, transmitter at `loc`, tag next to
            // the receiver. The transmitter is a laptop (≈7 dBm effective
            // EIRP from an internal antenna) in a cluttered office
            // (exponent 3.0, 10 dB interior wall) — this is what gives the
            // far locations their lower rates in Fig. 19.
            let mut cfg = SceneConfig::uplink(tag_distance_cm as f64 / 100.0);
            cfg.helper = tb.position(loc);
            cfg.reader = tb.position(TestbedLocation::Loc1);
            cfg.tag = bs_channel::Point::new(
                cfg.reader.x + tag_distance_cm as f64 / 100.0,
                cfg.reader.y,
            );
            cfg.helper_tx_dbm = 7.0;
            cfg.pathloss.exponent = 3.0;
            cfg.walls = tb
                .walls()
                .iter()
                .map(|w| bs_channel::geometry::Wall::new(w.a, w.b, 14.0))
                .collect();
            let mut scene = Scene::new(cfg, &SimRng::new(seed + i as u64 * 17));

            let mut adapter = RateAdapter::default();
            let samples = (duration_s * 500.0) as u64;
            let mut goodput_sum = 0.0;
            for s in 0..samples {
                let t = s as f64 / 500.0;
                let state = match activity {
                    TagActivity::Absent => TagState::Absorb,
                    TagActivity::Modulating { bit_rate_bps } => {
                        let bit = (t * bit_rate_bps as f64) as u64;
                        TagState::from_bit(bit % 2 == 0)
                    }
                };
                let snap = scene.snapshot(t, state, &offsets);
                let snr_db = 10.0 * snap.mean_snr(0).log10();
                adapter.observe(snr_db);
                goodput_sum += adapter.goodput_mbytes();
            }
            out.push(ThroughputPoint {
                location: i as u32 + 2,
                tag_distance_cm,
                activity,
                goodput_mbytes: goodput_sum / samples as f64,
            });
        }
    }
    out
}

/// Convenience: the three Fig. 19 scenarios.
pub fn fig19_activities() -> Vec<TagActivity> {
    vec![
        TagActivity::Absent,
        TagActivity::Modulating { bit_rate_bps: 100 },
        TagActivity::Modulating { bit_rate_bps: 1000 },
    ]
}

/// Per-location relative throughput deviation caused by the tag, and the
/// mean across locations — the headline number of §9 ("mostly within the
/// variance"). A location whose SNR happens to sit exactly on a rate
/// boundary can show a one-tier swing (the paper sees the same at its
/// heavily-utilised location 5); the mean is the robust summary.
pub fn relative_impact(points: &[ThroughputPoint]) -> (Vec<(u32, f64)>, f64) {
    let mut per_loc = Vec::new();
    for loc in [2u32, 3, 4, 5] {
        let base = points
            .iter()
            .find(|p| p.location == loc && p.activity == TagActivity::Absent)
            .map(|p| p.goodput_mbytes);
        let Some(base) = base else { continue };
        let mut worst: f64 = 0.0;
        for p in points.iter().filter(|p| p.location == loc) {
            if base > 0.0 {
                worst = worst.max((p.goodput_mbytes - base).abs() / base);
            }
        }
        per_loc.push((loc, worst));
    }
    let mean = if per_loc.is_empty() {
        0.0
    } else {
        per_loc.iter().map(|&(_, v)| v).sum::<f64>() / per_loc.len() as f64
    };
    (per_loc, mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_impact_is_negligible() {
        let points = throughput_with_tag(5, &fig19_activities(), 10.0, 41);
        assert_eq!(points.len(), 12);
        let (per_loc, mean) = relative_impact(&points);
        assert!(
            mean < 0.10,
            "tag changed mean throughput by {:.1}% ({per_loc:?})",
            mean * 100.0
        );
    }

    #[test]
    fn goodput_decreases_with_tx_distance() {
        let points = throughput_with_tag(5, &[TagActivity::Absent], 10.0, 42);
        let g2 = points.iter().find(|p| p.location == 2).unwrap().goodput_mbytes;
        let g5 = points.iter().find(|p| p.location == 5).unwrap().goodput_mbytes;
        assert!(g2 > g5, "loc2 {g2} loc5 {g5} (NLOS location should drop a rate tier)");
        // Fig. 19's axis: up to ~4 MB/s.
        assert!(g2 <= 4.5 && g2 > 1.0, "g2 {g2}");
    }
}
