//! Fleet sweep: aggregate goodput, Jain fairness and tail latency
//! versus deployment population.
//!
//! This backs the harness's `fleet` figure (not a paper figure — the
//! paper evaluates one reader; this measures the Figure-1 deployment
//! `bs_net::fleet` scales that reader to). Every point runs a full
//! sharded fleet — jittered gateway grid, tag mobility with handoff,
//! interference from coverage overlap — at a fixed loss floor, so the
//! figure shows how the headline metrics bend as the population grows
//! from hundreds to tens of thousands of tags.
//!
//! Seed partitioning follows the harness contract: every random draw in
//! the fleet derives from `(seed, entity id, epoch)` alone, so a point
//! reproduces byte-identically whatever the worker count — the figure
//! jobs run the engine single-threaded and let the harness scheduler
//! own the parallelism. Wall-clock scaling across engine workers is the
//! `fleet_micro` bench's job (`BENCH_fleet.json`), not the figure's:
//! wall times are the one non-deterministic output the harness tables
//! must never contain.

use bs_channel::faults::FaultPlan;
use bs_net::fleet::{run_fleet, FleetConfig, FleetRun};

/// The figure's population sweep: `(gateways, tags_per_gateway)`, kept
/// within the debug-profile budget. The 10⁵-tag acceptance point
/// (500 × 200) lives in the `fleet_micro` release bench.
pub const POPULATIONS: &[(usize, usize)] = &[(25, 40), (100, 40), (250, 80)];

/// Epochs per figure point: enough for one movement/handoff round on
/// top of the initial service pass.
pub const EPOCHS: u32 = 2;

/// One measured fleet point.
#[derive(Debug, Clone)]
pub struct FleetPoint {
    /// Gateways in the deployment.
    pub gateways: usize,
    /// Total tags.
    pub tags: u32,
    /// Aggregate goodput (bits per wall-clock simulated second).
    pub goodput_bps: f64,
    /// Jain fairness over per-tag delivered bytes.
    pub fairness: f64,
    /// Median per-tag service latency (µs).
    pub p50_us: f64,
    /// 99th-percentile per-tag service latency (µs).
    pub p99_us: f64,
    /// Handoffs applied across the run.
    pub handoffs: u64,
    /// Gateway-epochs that hit the cycle backstop.
    pub truncated_gateway_epochs: u32,
    /// Every tag completed every epoch.
    pub all_complete: bool,
    /// The run's per-tag FNV digest (the determinism fingerprint).
    pub digest: u64,
}

/// The sweep's standard deployment: a mild loss floor for interference
/// to build on, nominal mobility, the default gateway template.
pub fn fleet_config(gateways: usize, tags_per_gateway: usize, seed: u64) -> FleetConfig {
    FleetConfig::default()
        .with_population(gateways, tags_per_gateway)
        .with_epochs(EPOCHS)
        .with_faults(
            FaultPlan::preset("loss", 0.2, seed ^ 0xF1EE_7000).expect("known preset"),
        )
        .with_seed(seed)
}

/// Measures one population point on `jobs` engine workers (the result
/// is independent of `jobs` by the fleet's determinism contract).
pub fn fleet_point(gateways: usize, tags_per_gateway: usize, jobs: usize, seed: u64) -> FleetPoint {
    let run = run_fleet(&fleet_config(gateways, tags_per_gateway, seed), jobs)
        .expect("sweep populations fit the address space");
    point_of(gateways, &run)
}

/// Folds a [`FleetRun`] into the figure's point shape.
pub fn point_of(gateways: usize, run: &FleetRun) -> FleetPoint {
    FleetPoint {
        gateways,
        tags: run.tags,
        goodput_bps: run.aggregate_goodput_bps,
        fairness: run.fairness,
        p50_us: run.latency_us_p50,
        p99_us: run.latency_us_p99,
        handoffs: run.handoffs,
        truncated_gateway_epochs: run.truncated_gateway_epochs,
        all_complete: run.all_complete,
        digest: run.digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_point_is_deterministic_and_worker_invariant() {
        let a = fleet_point(9, 6, 1, 5);
        let b = fleet_point(9, 6, 4, 5);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.goodput_bps, b.goodput_bps);
        assert_eq!(a.p99_us, b.p99_us);
    }

    #[test]
    fn mild_loss_floor_still_delivers() {
        let pt = fleet_point(9, 6, 2, 11);
        assert!(pt.all_complete, "severity-0.2 fleet must deliver");
        assert_eq!(pt.truncated_gateway_epochs, 0);
        assert!(pt.fairness > 0.9);
        assert!(pt.p99_us >= pt.p50_us && pt.p50_us > 0.0);
    }
}
